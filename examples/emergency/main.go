// Emergency response: the paper's motivating disaster scenario (§II.C,
// §V.A). An infrastructure-based vehicular cloud serves traffic
// normally; mid-run a scripted earthquake — a fault plan injected
// through the deterministic fault engine — knocks out every RSU radio
// and crashes the controller processes with the hardware. The authority
// flips the region into emergency mode, a dynamic (pure V2V) cloud
// self-organizes, and the workload keeps flowing.
//
//	go run ./examples/emergency
package main

import (
	"fmt"
	"log"
	"time"

	vcloud "vcloud"
	"vcloud/internal/geo"
	"vcloud/internal/routing"
	"vcloud/internal/sim"
	ivc "vcloud/internal/vcloud"
	"vcloud/internal/vnet"
)

func main() {
	s, err := vcloud.NewHighwayScenario(vcloud.HighwayOptions{Seed: 3, Vehicles: 50})
	if err != nil {
		log.Fatal(err)
	}
	// Roadside infrastructure: three RSUs along the corridor.
	for _, x := range []float64{500, 1500, 2500} {
		if _, err := s.AddRSU(geo.Point{X: x, Y: 15}); err != nil {
			log.Fatal(err)
		}
	}

	// Phase 1: an infrastructure-based cloud coordinated by the RSUs.
	infraStats := &vcloud.CloudStats{}
	infra, err := vcloud.DeployCloud(s, vcloud.Infrastructure, infraStats)
	if err != nil {
		log.Fatal(err)
	}

	// The earthquake, scripted before the clock starts: at t=75s every
	// RSU radio goes dark and the controller processes die with the
	// hardware. Descending kill indices: each kill removes one live
	// controller, so the remaining ones shift down.
	inj, err := vcloud.NewFaultInjector(s)
	if err != nil {
		log.Fatal(err)
	}
	inj.OnControllerKill(func(idx int) {
		ctls := infra.ActiveControllers()
		if idx >= 0 && idx < len(ctls) {
			ctls[idx].Crash()
		}
	})
	quake, err := vcloud.ParseFaultPlan(`
		75s rsu-down 0; 75s rsu-down 1; 75s rsu-down 2
		75s kill-controller 2; 75s kill-controller 1; 75s kill-controller 0
	`)
	if err != nil {
		log.Fatal(err)
	}
	if err := inj.Schedule(quake); err != nil {
		log.Fatal(err)
	}

	if err := s.Start(); err != nil {
		log.Fatal(err)
	}
	if err := s.RunFor(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	submit := func(cloud *vcloud.Cloud, n int) {
		for i := 0; i < n; i++ {
			_ = cloud.SubmitAnywhere(vcloud.Task{Ops: 1500, InputBytes: 2000, OutputBytes: 500}, nil)
		}
	}
	submit(infra, 20)
	if err := s.RunFor(60 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 (infrastructure healthy): %d/%d tasks completed\n",
		infraStats.Completed.Value(), infraStats.Submitted.Value())

	// --- The scripted earthquake strikes at t=75s while the clock runs.
	if err := s.RunFor(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n*** disaster: all RSUs destroyed ***")
	for _, line := range inj.Log() {
		fmt.Println("  fault:", line)
	}
	if live := len(infra.ActiveControllers()); live != 0 {
		log.Fatalf("expected every infrastructure controller dead, %d still live", live)
	}

	// Phase 2: the authority declares emergency mode and vehicles
	// self-organize into a dynamic cloud over pure V2V links.
	dynStats := &vcloud.CloudStats{}
	dyn, err := ivc.Deploy(s, ivc.Dynamic, ivc.DeployConfig{Handover: true}, dynStats)
	if err != nil {
		log.Fatal(err)
	}
	dyn.SetEmergency(true)
	if err := s.RunFor(15 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic cloud formed: %d controller(s) without any infrastructure\n",
		len(dyn.ActiveControllers()))

	inEmergency := 0
	for _, m := range dyn.Members {
		if m.Emergency() {
			inEmergency++
		}
	}
	fmt.Printf("emergency mode propagated to %d/%d members\n", inEmergency, len(dyn.Members))

	submit(dyn, 20)
	if err := s.RunFor(90 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2 (V2V only): %d/%d tasks completed\n",
		dynStats.Completed.Value(), dynStats.Submitted.Value())

	// Phase 3: geocast an evacuation notice into the damage zone — the
	// region-addressed dissemination of §V.A, still with zero
	// infrastructure.
	var rstats routing.Stats
	reached := 0
	gcs := map[vcloud.VehicleID]*routing.Geocast{}
	for _, id := range s.VehicleIDs() {
		node, _ := s.Node(id)
		gc, err := routing.NewGeocast(node, &rstats, func(from vnet.Addr, data any, lat sim.Time) {
			reached++
		})
		if err != nil {
			log.Fatal(err)
		}
		gcs[id] = gc
	}
	origin := s.VehicleIDs()[0]
	zone := geo.Point{X: 1500, Y: 0}
	if err := gcs[origin].SendRegion(zone, 800, 400, "EVACUATE: bridge out at km 1.5"); err != nil {
		log.Fatal(err)
	}
	if err := s.RunFor(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	inZone := 0
	for _, id := range s.VehicleIDs() {
		if st, ok := s.Mobility.State(id); ok && st.Pos.Dist(zone) <= 800 {
			inZone++
		}
	}
	fmt.Printf("phase 3: evacuation geocast reached %d vehicles (%d currently in the zone), %d transmissions\n",
		reached, inZone, rstats.Transmissions.Value())

	fmt.Println("\nthe dynamic v-cloud kept computing after the infrastructure died —")
	fmt.Println("the availability argument of the paper's Fig. 2 and §IV.A.2.")
}
