// Parking-lot datacenter: the stationary vehicular cloud of Arif et
// al. [4] — long-term parked vehicles at an airport pool their storage
// into a datacenter. Files are replicated across vehicles; as owners
// return and drive away (churn), the replica manager re-replicates to
// keep data available.
//
//	go run ./examples/parkinglot
package main

import (
	"fmt"
	"log"
	"time"

	vcloud "vcloud"
	ivc "vcloud/internal/vcloud"
	"vcloud/internal/vnet"
)

func main() {
	s, err := vcloud.NewParkingLotScenario(vcloud.ParkingLotOptions{Seed: 5, Vehicles: 30})
	if err != nil {
		log.Fatal(err)
	}
	stats := &vcloud.CloudStats{}
	cloud, err := vcloud.DeployCloud(s, vcloud.Stationary, stats)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Start(); err != nil {
		log.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	gate := cloud.Controllers[0]
	fmt.Printf("airport lot datacenter: %d parked vehicles joined via the gate RSU\n",
		gate.NumMembers())

	// Store 20 "flight record" files at replication factor 3 across the
	// parked fleet.
	online := map[vnet.Addr]bool{}
	for _, a := range gate.Members() {
		online[a] = true
	}
	rstats := &ivc.ReplicaStats{}
	rm, err := ivc.NewReplicaManager(3, func(a vnet.Addr) bool { return online[a] }, rstats)
	if err != nil {
		log.Fatal(err)
	}
	members := gate.Members()
	for i := 0; i < 20; i++ {
		rot := append(append([]vnet.Addr(nil), members[i%len(members):]...), members[:i%len(members)]...)
		placed := rm.Store(ivc.FileID(fmt.Sprintf("flight-%03d", i)), 4<<20, rot)
		if placed < 3 {
			fmt.Printf("  file %d under-replicated: %d copies\n", i, placed)
		}
	}
	fmt.Println("stored 20 files × 3 replicas")

	// Owners come back: every 10 simulated minutes a few vehicles leave;
	// fresh arrivals replace them. We simulate the churn on the online
	// set and let the manager repair.
	rng := s.Kernel.NewStream("departures")
	for round := 1; round <= 5; round++ {
		// Three random members drive away.
		for i := 0; i < 3 && len(members) > 0; i++ {
			victim := members[rng.Intn(len(members))]
			online[victim] = false
		}
		created := rm.Repair(members)
		served := 0
		for i := 0; i < 20; i++ {
			if rm.Read(ivc.FileID(fmt.Sprintf("flight-%03d", i))) {
				served++
			}
		}
		fmt.Printf("round %d: 3 departures, repair created %d replicas, %d/20 files readable\n",
			round, created, served)
		if err := s.RunFor(10 * time.Second); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\ntotals: availability %.1f%%, %d re-replications, %.0f MB moved\n",
		rstats.Availability()*100, rstats.ReReplicas.Value(),
		float64(rstats.BytesMoved.Value())/(1<<20))

	// The lot also computes: submit a few storage-side batch jobs.
	done := 0
	for i := 0; i < 10; i++ {
		_ = cloud.SubmitAnywhere(vcloud.Task{Ops: 3000, InputBytes: 1 << 16, OutputBytes: 1024},
			func(r vcloud.TaskResult) {
				if r.OK {
					done++
				}
			})
	}
	if err := s.RunFor(60 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch jobs on parked fleet: %d/10 completed\n", done)
}
