// Secure authentication showcase (Fig. 5): two vehicles mutually
// authenticate under each of the three protocol families — pseudonym,
// group and hybrid — while an eavesdropper listens and the TA revokes a
// misbehaving vehicle mid-run. Printed: latency, bytes on air, CRL work,
// what the eavesdropper could link, and who can trace whom.
//
//	go run ./examples/secureauth
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"vcloud/internal/attack"
	"vcloud/internal/auth"
	"vcloud/internal/cryptoprim"
	"vcloud/internal/geo"
	"vcloud/internal/pki"
	"vcloud/internal/radio"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

func main() {
	for _, scheme := range []auth.Scheme{auth.Pseudonym, auth.Group, auth.Hybrid} {
		demo(scheme)
		fmt.Println()
	}
}

func demo(scheme auth.Scheme) {
	kernel := sim.NewKernel(9)
	bounds := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000})
	medium, err := radio.NewMedium(kernel, bounds, radio.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	ta, err := pki.New("TA", rand.New(rand.NewSource(9)), pki.Config{PoolSize: 10})
	if err != nil {
		log.Fatal(err)
	}
	// 50 revoked vehicles pre-populate the CRL (10 pseudonyms each).
	for i := 0; i < 50; i++ {
		id := pki.VehicleIdentity(fmt.Sprintf("revoked-%d", i))
		if _, err := ta.Enroll(id); err != nil {
			log.Fatal(err)
		}
		if err := ta.RevokeVehicle(id); err != nil {
			log.Fatal(err)
		}
	}
	// Hybrid revocation: verifiers cache the TA's trapdoor tags and
	// refresh when the revocation version changes.
	var tagsVersion uint64
	var tags map[[32]byte]struct{}
	anchors := auth.Anchors{
		RootKey:  ta.RootKey(),
		GroupKey: ta.GroupKey(),
		CRL:      ta.CRL(),
		CRLMode:  auth.CRLLinear,
		GroupRevoked: func(sig cryptoprim.GroupSig) (bool, int) {
			return !ta.GroupManager().CheckNotRevoked(sig), 50
		},
		HybridRevoked: func(id [32]byte) bool {
			if tags == nil || tagsVersion != ta.RevocationVersion() {
				tagsVersion = ta.RevocationVersion()
				tags = ta.HybridRevocationTags(1024)
			}
			_, revoked := tags[id]
			return revoked
		},
	}

	met := &auth.Metrics{}
	mkVehicle := func(addr vnet.Addr, name string, x float64) *auth.Authenticator {
		pos := geo.Point{X: x, Y: 100}
		medium.UpdatePosition(addr, pos)
		node, err := vnet.NewNode(kernel, medium, addr, vnet.Config{}, func() (geo.Point, float64, float64) {
			return pos, 0, 0
		})
		if err != nil {
			log.Fatal(err)
		}
		enr, err := ta.Enroll(pki.VehicleIdentity(name))
		if err != nil {
			log.Fatal(err)
		}
		a, err := auth.New(node, enr, anchors, scheme, auth.CostModel{}, met)
		if err != nil {
			log.Fatal(err)
		}
		return a
	}
	alice := mkVehicle(1, "alice-"+scheme.String(), 100)
	_ = mkVehicle(2, "bob-"+scheme.String(), 200)

	// An eavesdropper parked between them hears every frame.
	spy, err := attack.NewEavesdropper(medium, radio.NodeID(1<<24), geo.Point{X: 150, Y: 120})
	if err != nil {
		log.Fatal(err)
	}

	// Ten mutual handshakes.
	for i := 0; i < 10; i++ {
		i := i
		kernel.At(sim.Time(i)*200*time.Millisecond, func() {
			_ = alice.Authenticate(2, nil)
		})
	}
	if err := kernel.Run(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== %s (CRL: %d revoked pseudonyms)\n", scheme, ta.CRL().Len())
	fmt.Printf("   handshakes: %d ok / %d attempted, p50 latency %.2f ms\n",
		met.Successes.Value(), met.Attempts.Value(), met.Latency.Percentile(50))
	fmt.Printf("   cost: %.0f bytes and %.1f CRL-entry scans per handshake\n",
		float64(met.BytesSent.Value())/float64(met.Successes.Value()),
		float64(met.CRLScanned.Value())/float64(met.Successes.Value()))
	fmt.Printf("   eavesdropper overheard %d auth frames — payloads are signatures,\n", spy.Captured["auth.req"]+spy.Captured["auth.resp"])

	switch scheme {
	case auth.Pseudonym:
		fmt.Println("   identities rotate per handshake; only the TA can trace serial→vehicle")
	case auth.Group:
		fmt.Printf("   one group of %d members; the group manager can open every signature\n",
			ta.GroupManager().NumMembers())
	case auth.Hybrid:
		fmt.Println("   group-verified with one-time trapdoor IDs; only the TA traces, no CRL on vehicles")
	}

	// Mid-run revocation: alice turns malicious and the TA revokes her.
	if err := ta.RevokeVehicle(pki.VehicleIdentity("alice-" + scheme.String())); err != nil {
		log.Fatal(err)
	}
	before := met.Successes.Value()
	_ = alice.Authenticate(2, nil)
	if err := kernel.Run(kernel.Now() + 5*time.Second); err != nil {
		log.Fatal(err)
	}
	if met.Successes.Value() == before {
		fmt.Println("   after revocation: alice's handshake was rejected ✔")
	} else {
		fmt.Println("   after revocation: alice STILL authenticated ✘")
	}
}
