// Content sharing with sticky policies: an infotainment scenario where
// a vehicle shares road-condition video wrapped in a data–policy
// package (§V.C). The policy travels with the data: cluster heads with
// level-3 automation may read it anywhere; ordinary buffer nodes only
// inside the originating district; emergency responders anywhere once
// emergency mode is on. Every access — allowed or denied — lands in the
// package's tamper-evident audit chain.
//
//	go run ./examples/contentshare
package main

import (
	"fmt"
	"log"
	"math/rand"

	"vcloud/internal/access"
	"vcloud/internal/cryptoprim"
	"vcloud/internal/geo"
)

const (
	attrHead      access.AttributeID = "traffic/role:cluster-head"
	attrAuto3     access.AttributeID = "vendor/automation:3+"
	attrBuffer    access.AttributeID = "traffic/role:buffer-node"
	attrResponder access.AttributeID = "city/role:responder"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Two independent attribute authorities — no single party can
	// deanonymize or decrypt everything (§IV.C, [24]).
	traffic, err := access.NewAuthority("traffic", rng)
	if err != nil {
		log.Fatal(err)
	}
	vendor, err := access.NewAuthority("vendor", rng)
	if err != nil {
		log.Fatal(err)
	}
	city, err := access.NewAuthority("city", rng)
	if err != nil {
		log.Fatal(err)
	}
	lookup := func(id access.AttributeID) (access.AttrKey, bool) {
		switch id {
		case attrHead, attrBuffer:
			return traffic.Grant(id), true
		case attrAuto3:
			return vendor.Grant(id), true
		case attrResponder:
			return city.Grant(id), true
		}
		return access.AttrKey{}, false
	}

	// The owner composes the policy and seals the package. The owner
	// signs with a pseudonym key: consumers verify integrity without
	// learning who shared it.
	district := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 2000, Y: 2000})
	policy := access.Policy{
		Resource: "roadvideo/ice-on-A4",
		Rules: []access.Rule{
			{ // heads with high automation: anywhere
				Action: access.Read,
				AnyOf:  []access.Clause{{attrHead, attrAuto3}},
			},
			{ // buffer nodes: only inside the district, and slowly
				Action:  access.Read,
				AnyOf:   []access.Clause{{attrBuffer}},
				Context: access.ContextRule{Area: &district, MaxSpeed: 20},
			},
			{ // responders: anywhere, but only during an emergency
				Action:  access.Read,
				AnyOf:   []access.Clause{{attrResponder}},
				Context: access.ContextRule{EmergencyOnly: true},
			},
		},
	}
	ownerKey, err := cryptoprim.GenerateKey(rng)
	if err != nil {
		log.Fatal(err)
	}
	video := []byte("H264 frames: black ice near km 14, lane 2")
	pkg, err := access.Seal("roadvideo/ice-on-A4", video, policy, 42, ownerKey, lookup, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sealed data-policy package: 3 read clauses, owner-signed")

	open := func(who string, ring *access.Keyring, ctx access.Context) {
		var token [32]byte
		rng.Read(token[:]) // anonymous one-time accessor token
		data, d, err := pkg.Open(ring, ctx, token)
		if err != nil {
			fmt.Printf("  %-28s DENIED (%v; clauses checked: %d)\n", who, errShort(err), d.ClausesChecked)
			return
		}
		fmt.Printf("  %-28s OK -> %q\n", who, data)
	}

	// A cluster head with automation 3 reads from anywhere.
	head := access.NewKeyring()
	head.Add(traffic.Grant(attrHead))
	head.Add(vendor.Grant(attrAuto3))
	open("cluster head (automation 3)", head, access.Context{Pos: geo.Point{X: 9000, Y: 0}, Now: 1})

	// A buffer node inside the district, driving slowly: allowed.
	buf := access.NewKeyring()
	buf.Add(traffic.Grant(attrBuffer))
	open("buffer node, in district", buf, access.Context{Pos: geo.Point{X: 800, Y: 900}, Speed: 10, Now: 2})

	// The same buffer node outside the district: denied.
	open("buffer node, outside", buf, access.Context{Pos: geo.Point{X: 5000, Y: 0}, Speed: 10, Now: 3})

	// A responder in normal times: denied. In an emergency: granted in
	// the same evaluation pass — §III.C's millisecond escalation.
	resp := access.NewKeyring()
	resp.Add(city.Grant(attrResponder))
	open("responder, normal mode", resp, access.Context{Pos: geo.Point{X: 5000, Y: 0}, Now: 4})
	open("responder, EMERGENCY", resp, access.Context{Pos: geo.Point{X: 5000, Y: 0}, Emergency: true, Now: 5})

	// Revocation: the traffic authority revokes the buffer-node
	// attribute (epoch bump). A re-sealed package rejects old keys.
	traffic.Revoke(attrBuffer)
	pkg2, err := access.Seal("roadvideo/ice-on-A4", video, policy, 43, ownerKey, lookup, rng)
	if err != nil {
		log.Fatal(err)
	}
	var token [32]byte
	rng.Read(token[:])
	if _, _, err := pkg2.Open(buf, access.Context{Pos: geo.Point{X: 800, Y: 900}, Speed: 10, Now: 6}, token); err != nil {
		fmt.Printf("  %-28s DENIED after revocation (%v)\n", "buffer node, stale keys", errShort(err))
	}

	// The audit trail recorded everything, tamper-evidently.
	fmt.Printf("\naudit chain: %d entries, intact=%v\n", len(pkg.Audit), pkg.VerifyAudit() == -1)
	for i, e := range pkg.Audit {
		fmt.Printf("  #%d t=%d allowed=%v accessor=%x…\n", i, e.At, e.Allowed, e.AccessorToken[:4])
	}
}

func errShort(err error) string {
	s := err.Error()
	if len(s) > 60 {
		return s[:60] + "…"
	}
	return s
}
