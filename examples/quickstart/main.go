// Quickstart: build a highway scenario, let vehicles self-organize into
// a dynamic vehicular cloud (no infrastructure at all), and offload a
// batch of computation tasks into it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	vcloud "vcloud"
)

func main() {
	// 1. A 3 km two-direction highway with 40 vehicles driving IDM
	//    car-following dynamics. Everything is seeded: re-running
	//    reproduces the exact same virtual world.
	s, err := vcloud.NewHighwayScenario(vcloud.HighwayOptions{Seed: 7, Vehicles: 40})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Deploy a *dynamic* vehicular cloud: vehicles cluster by
	//    mobility similarity, cluster heads become cloud controllers,
	//    members pool their CPU/storage/sensors.
	stats := &vcloud.CloudStats{}
	cloud, err := vcloud.DeployCloud(s, vcloud.Dynamic, stats)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Start the world and give clustering a few seconds to converge.
	if err := s.Start(); err != nil {
		log.Fatal(err)
	}
	if err := s.RunFor(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 10s: %d cloud controller(s) elected\n", len(cloud.ActiveControllers()))

	// 4. Offload 20 tasks (e.g. sensor-fusion jobs) into the cloud.
	for i := 0; i < 20; i++ {
		id := i
		err := cloud.SubmitAnywhere(
			vcloud.Task{Ops: 2000, InputBytes: 4000, OutputBytes: 1000},
			func(r vcloud.TaskResult) {
				status := "completed"
				if !r.OK {
					status = "FAILED (" + string(r.Reason) + ")"
				}
				fmt.Printf("  task %2d %s in %v (handovers=%d retries=%d)\n",
					id, status, r.Latency.Round(time.Millisecond), r.Handovers, r.Retries)
			})
		if err != nil {
			fmt.Printf("  task %2d not accepted: %v\n", id, err)
		}
	}

	// 5. Run for two simulated minutes and summarize.
	if err := s.RunFor(2 * time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompletion: %d/%d (%.0f%%), p50 latency %.0f ms\n",
		stats.Completed.Value(), stats.Submitted.Value(),
		stats.CompletionRate()*100, stats.Latency.Percentile(50))
}
