module vcloud

go 1.22
