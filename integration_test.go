package vcloud_test

// End-to-end integration: the complete secure vehicular cloud of the
// paper's Fig. 3 assembled on one highway — PKI-enrolled vehicles form a
// dynamic cloud through authenticated joins, offload tasks with
// incentive settlement, disseminate and validate hazard reports under a
// coordinated liar, while an eavesdropper and a revoked vehicle probe
// the security boundary.

import (
	"math/rand"
	"testing"
	"time"

	"vcloud/internal/attack"
	"vcloud/internal/auth"
	"vcloud/internal/geo"
	"vcloud/internal/mobility"
	"vcloud/internal/pki"
	"vcloud/internal/radio"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/trust"
	"vcloud/internal/vcloud"
)

func TestEndToEndSecureVehicularCloud(t *testing.T) {
	// --- World: a 3 km highway with 30 vehicles.
	net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 3000, Segments: 3, SpeedLimit: 25, Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.New(scenario.Spec{Seed: 21, Network: net, NumVehicles: 30})
	if err != nil {
		t.Fatal(err)
	}

	// --- PKI: everyone will enroll with the TA during secure deploy.
	ta, err := pki.New("TA", rand.New(rand.NewSource(21)), pki.Config{PoolSize: 10})
	if err != nil {
		t.Fatal(err)
	}

	// --- Secure dynamic cloud with incentives.
	stats := &vcloud.Stats{}
	met := &auth.Metrics{}
	ledger := vcloud.NewLedger()
	sd, err := vcloud.DeploySecure(s, vcloud.Dynamic, vcloud.DeployConfig{
		Handover:  true,
		DwellMode: mobility.DwellRouteAware,
		Controller: vcloud.ControllerConfig{
			Ledger:     ledger,
			RetryLimit: 5,
		},
	}, vcloud.Security{TA: ta, Scheme: auth.Hybrid, Metrics: met}, stats)
	if err != nil {
		t.Fatal(err)
	}

	// --- Trust layer: every vehicle reports and evaluates hazards.
	evaluators := make(map[mobility.VehicleID]*trust.Evaluator)
	reporters := make(map[mobility.VehicleID]*trust.Reporter)
	decisions := make(map[mobility.VehicleID][]trust.Decision)
	for _, id := range s.VehicleIDs() {
		node, _ := s.Node(id)
		ev, err := trust.NewEvaluator(node, trust.EvaluatorConfig{
			Validator: trust.PathDiverse{Inner: trust.DistanceWeighted{}},
			Deadline:  2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		vid := id
		ev.OnDecision(func(d trust.Decision) { decisions[vid] = append(decisions[vid], d) })
		evaluators[id] = ev
		rep, err := trust.NewReporter(node)
		if err != nil {
			t.Fatal(err)
		}
		reporters[id] = rep
	}

	// --- Adversaries: an eavesdropper and, later, a revoked insider.
	spy, err := attack.NewEavesdropper(s.Medium, radio.NodeID(1<<24), geo.Point{X: 1500, Y: 15})
	if err != nil {
		t.Fatal(err)
	}

	// --- Run: formation phase.
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	ctls := sd.ActiveControllers()
	if len(ctls) == 0 {
		t.Fatal("no dynamic cloud formed")
	}
	totalMembers := 0
	for _, c := range ctls {
		totalMembers += c.NumMembers()
	}
	if totalMembers == 0 {
		t.Fatal("no members joined the secure cloud")
	}
	if met.Successes.Value() == 0 {
		t.Fatal("no authentication handshakes succeeded")
	}
	t.Logf("formation: %d controllers, %d members, %d successful handshakes",
		len(ctls), totalMembers, met.Successes.Value())

	// --- Workload with incentive settlement.
	client := s.VehicleIDs()[0]
	clientAddr := vcloudAddr(client)
	submitted := 0
	for i := 0; i < 15; i++ {
		var best *vcloud.Controller
		for _, c := range sd.ActiveControllers() {
			if best == nil || c.NumMembers() > best.NumMembers() {
				best = c
			}
		}
		if best == nil {
			continue
		}
		if _, err := best.SubmitFor(clientAddr, vcloud.Task{Ops: 2000, InputBytes: 1000, OutputBytes: 500}, nil); err == nil {
			submitted++
		}
	}
	if submitted == 0 {
		t.Fatal("no tasks submitted")
	}
	if err := s.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if stats.Completed.Value() == 0 {
		t.Fatalf("no tasks completed (failed=%d)", stats.Failed.Value())
	}
	if ledger.TotalVolume() == 0 {
		t.Error("incentive ledger recorded no settlements")
	}
	if ledger.Verify() != -1 {
		t.Error("ledger chain broken")
	}
	t.Logf("workload: %d/%d tasks completed, %d credits settled",
		stats.Completed.Value(), submitted, ledger.TotalVolume())

	// --- Hazard: an icy patch at x=1500. Vehicles near it report truth;
	// a coordinated liar (3 Sybil-ish echoes on one path) denies it.
	hazard := geo.Point{X: 1500, Y: 0}
	eventAt := s.Kernel.Now()
	reported := 0
	for _, id := range s.VehicleIDs() {
		st, ok := s.Mobility.State(id)
		if !ok || st.Pos.Dist(hazard) > 400 {
			continue
		}
		var tok trust.Token
		tok[0] = byte(id)
		claim := true
		if reported == 0 {
			// The first reporter is the liar, repeating its denial.
			claim = false
			for k := 0; k < 3; k++ {
				reporters[id].Report("ice", hazard, eventAt, claim, tok)
			}
		} else {
			reporters[id].Report("ice", hazard, eventAt, claim, tok)
		}
		reported++
	}
	if reported < 4 {
		t.Fatalf("only %d vehicles near the hazard; scenario too sparse", reported)
	}
	if err := s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	correct, wrong := 0, 0
	for _, ds := range decisions {
		for _, d := range ds {
			if d.Unknown {
				continue
			}
			if d.EventReal {
				correct++
			} else {
				wrong++
			}
		}
	}
	if correct == 0 {
		t.Fatal("no vehicle validated the hazard")
	}
	if wrong > correct {
		t.Errorf("liar won: %d wrong vs %d correct decisions", wrong, correct)
	}
	t.Logf("trust: %d correct / %d wrong hazard decisions across the fleet", correct, wrong)

	// --- The eavesdropper saw plenty but learned only ciphertext-grade
	// content: beacons and protocol envelopes.
	if spy.TotalCaptured() == 0 {
		t.Error("eavesdropper heard nothing despite sitting mid-corridor")
	}

	// --- Revocation: vehicle veh-5 turns malicious; after revocation it
	// cannot re-join any cloud.
	if err := ta.RevokeVehicle("veh-5"); err != nil {
		t.Fatal(err)
	}
	// Force re-authorization by expiring memberships: run long enough
	// for churn to move vehicle 5 between clusters.
	failsBefore := met.Failures.Value()
	if err := s.RunFor(45 * time.Second); err != nil {
		t.Fatal(err)
	}
	if met.Failures.Value() == failsBefore {
		t.Log("note: revoked vehicle did not attempt re-authentication during the window (mobility dependent)")
	}
	t.Logf("post-revocation: %d handshake failures recorded", met.Failures.Value()-failsBefore)
}

// vcloudAddr maps a vehicle ID to its network address.
func vcloudAddr(id mobility.VehicleID) radio.NodeID { return radio.NodeID(id) }
