// Package vcloud is a vehicular-cloud simulation and orchestration
// library: a from-scratch Go reproduction of the system envisioned in
//
//	Kang, Lin, Bertino, Tonguz. "From Autonomous Vehicles to Vehicular
//	Clouds: Challenges of Management, Security and Dependability."
//	IEEE ICDCS 2019.
//
// It provides, on top of a deterministic discrete-event kernel:
//
//   - road networks, IDM vehicle mobility and a lossy DSRC-like radio;
//   - VANET clustering (lowest-ID, mobility-similarity, multi-hop
//     passive) and routing (MoZo, greedy-geographic, AODV, epidemic);
//   - the three vehicular-cloud architectures of the paper's Fig. 4
//     (stationary, infrastructure-based, dynamic) with dwell-aware task
//     scheduling, task handover and file replication;
//   - privacy-preserving security: pseudonym/group/hybrid
//     authentication over a TA-rooted PKI, attribute-based access
//     control with sticky data–policy packages, and real-time message
//     trustworthiness validation;
//   - reliability-aware multi-stage DAG jobs: criticality-driven
//     selective replication, stage-output pipelining with fenced
//     handoff, an ETSI-MEC RSU edge tier and graceful degradation;
//   - congestion-aware offloading: a delay-gradient (GCC-style)
//     bandwidth estimator over a contended FIFO uplink, and a placement
//     governor with deadline admission control, bounded queues,
//     optional-first load shedding and live per-tier estimates;
//   - a geo-sharded parallel event kernel: the world partitions into a
//     fixed grid of geographic shards, each advancing its own kernel,
//     synchronized with conservative lookahead windows — bit-for-bit
//     identical model output at any shard count (internal/sim/shard.go,
//     internal/shardworld);
//   - the adversary models of the paper's §III threat list, and the
//     E1–E17 experiment suite that operationalizes every figure and
//     claim (see DESIGN.md and EXPERIMENTS.md).
//
// This root package is the public facade: it re-exports the library's
// main types under one import and offers high-level constructors for
// the common scenarios. The examples/ directory shows complete
// programs; internal packages remain importable inside this module for
// advanced composition.
package vcloud

import (
	"fmt"
	mrand "math/rand"
	"time"

	"vcloud/internal/auth"
	"vcloud/internal/chaos"
	"vcloud/internal/cluster"
	"vcloud/internal/experiments"
	"vcloud/internal/faults"
	"vcloud/internal/geo"
	"vcloud/internal/mobility"
	"vcloud/internal/pki"
	"vcloud/internal/radio"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/shardworld"
	"vcloud/internal/sim"
	"vcloud/internal/store"
	"vcloud/internal/vcloud"
	"vcloud/internal/vnet"
)

// Core simulation types.
type (
	// Scenario is a wired simulation: kernel, radio, mobility and one
	// network node per vehicle.
	Scenario = scenario.Scenario
	// ScenarioSpec configures scenario construction.
	ScenarioSpec = scenario.Spec
	// Point is a 2-D position in meters.
	Point = geo.Point
	// Duration is virtual simulation time.
	Duration = sim.Time
	// Node is a network endpoint in the simulated VANET (vehicles and
	// RSUs each own one; Scenario.AddRSU returns the RSU's node).
	Node = vnet.Node
	// VehicleID identifies a vehicle.
	VehicleID = mobility.VehicleID
	// Profile describes a vehicle's driving and equipment profile.
	Profile = mobility.Profile
)

// Vehicular-cloud types.
type (
	// Cloud is a deployed vehicular cloud (controllers + members).
	Cloud = vcloud.Deployment
	// CloudConfig tunes a deployment.
	CloudConfig = vcloud.DeployConfig
	// CloudStats aggregates task outcomes.
	CloudStats = vcloud.Stats
	// Task is a unit of offloadable computation.
	Task = vcloud.Task
	// TaskResult reports a finished task.
	TaskResult = vcloud.TaskResult
	// Architecture selects stationary / infrastructure / dynamic.
	Architecture = vcloud.Architecture
	// DependabilityPolicy configures redundant execution: replica count,
	// majority voting, backoff retries and trust-gated placement.
	DependabilityPolicy = vcloud.DependabilityPolicy
)

// The three Fig. 4 architectures.
const (
	Stationary     = vcloud.Stationary
	Infrastructure = vcloud.Infrastructure
	Dynamic        = vcloud.Dynamic
)

// Multi-stage DAG job types (reliability-aware execution; see
// internal/vcloud/dag.go and the DESIGN.md "Dependable DAG execution"
// section).
type (
	// JobSpec is a multi-stage job: a DAG of stages with a replica
	// budget, per-stage retry policy, optional deadline and the
	// whole-job-restart strawman toggle.
	JobSpec = vcloud.JobSpec
	// StageSpec is one stage of a job DAG.
	StageSpec = vcloud.StageSpec
	// JobID identifies a submitted job.
	JobID = vcloud.JobID
	// JobResult reports a finished job with per-stage outcomes.
	JobResult = vcloud.JobResult
	// StageOutcome records one stage's final status and holders.
	StageOutcome = vcloud.StageOutcome
	// StageStatus is a stage's lifecycle state.
	StageStatus = vcloud.StageStatus
	// FailReason is the structured cause attached to failed tasks and
	// jobs (deadline, retries-exhausted, no-eligible-member, …).
	FailReason = vcloud.FailReason
	// EdgeConfig sizes an RSU-hosted ETSI-MEC edge server.
	EdgeConfig = vcloud.EdgeConfig
	// EdgeServer is a fixed-infrastructure cloud member hosted on an RSU.
	EdgeServer = vcloud.EdgeServer
)

// Stage lifecycle states.
const (
	StageWaiting   = vcloud.StageWaiting
	StageRunning   = vcloud.StageRunning
	StageDone      = vcloud.StageDone
	StageAbandoned = vcloud.StageAbandoned
	StageFailed    = vcloud.StageFailed
)

// Structured failure reasons.
const (
	ReasonNone              = vcloud.ReasonNone
	ReasonRetriesExhausted  = vcloud.ReasonRetriesExhausted
	ReasonDeadline          = vcloud.ReasonDeadline
	ReasonNoEligibleMember  = vcloud.ReasonNoEligibleMember
	ReasonNoQuorum          = vcloud.ReasonNoQuorum
	ReasonControllerStopped = vcloud.ReasonControllerStopped
	ReasonUplinkDown        = vcloud.ReasonUplinkDown
	ReasonStageFailed       = vcloud.ReasonStageFailed
	ReasonAdmission         = vcloud.ReasonAdmission
	ReasonBackpressure      = vcloud.ReasonBackpressure
	ReasonShed              = vcloud.ReasonShed
)

// NewEdgeServer attaches an ETSI-MEC edge server to an RSU node; it
// joins the surrounding cloud as a churn-proof, dwell-exempt member.
func NewEdgeServer(node *Node, cfg EdgeConfig, stats *CloudStats) (*EdgeServer, error) {
	return vcloud.NewEdgeServer(node, cfg, stats)
}

// Shared-channel radio types (the congestion-controlled uplink the
// placement governor instruments; see internal/radio).
type (
	// Uplink is the point-to-cloud link shared by all vehicles under
	// coverage: with Contended set, transfers serialize at the link's
	// bandwidth, queue FIFO behind its backlog and tail-drop past
	// MaxQueueDelay — the channel a congestion controller can observe.
	Uplink = radio.Uplink
	// UplinkParams configures an uplink.
	UplinkParams = radio.UplinkParams
	// UplinkSender is one traffic source's handle on a shared uplink;
	// exchanges routed through it feed a GCC-style delay-gradient
	// bandwidth estimator.
	UplinkSender = radio.Sender
	// BWEConfig tunes a bandwidth estimator.
	BWEConfig = radio.BWEConfig
	// BWEstimator is the delay-gradient (trendline + adaptive threshold
	// + AIMD) bandwidth estimator.
	BWEstimator = radio.BWEstimator
)

// NewUplink creates a healthy uplink on the scenario's kernel.
func NewUplink(s *Scenario, params UplinkParams) (*Uplink, error) {
	return radio.NewUplink(s.Kernel, params)
}

// DefaultUplinkParams returns LTE-flavoured uplink defaults.
func DefaultUplinkParams() UplinkParams { return radio.DefaultUplinkParams() }

// Congestion-aware offload placement (the §III resource-management
// challenge under a shared, lossy uplink; see internal/radio/gcc.go for
// the delay-gradient bandwidth estimator and internal/vcloud/governor.go
// for the placement governor).
type (
	// Governor is the deadline-aware placement governor: it routes each
	// task to the execution tier with the best modeled completion time,
	// admission-rejects work that cannot make its deadline anywhere,
	// bounds per-tier queues, and sheds optional work first under
	// overload.
	Governor = vcloud.Governor
	// GovernorConfig wires a governor's tiers and knobs.
	GovernorConfig = vcloud.GovernorConfig
	// GovernorTier describes one execution tier: its backend, nameplate
	// capacity model, and (optionally) the live congestion-feedback
	// sender riding its uplink.
	GovernorTier = vcloud.GovernorTier
	// ExecTier identifies an execution tier (vehicle / RSU edge / cloud).
	ExecTier = vcloud.Tier
	// TierEstimate is one tier's live capacity estimate as published on
	// the epoch-fenced estimate feed.
	TierEstimate = vcloud.TierEstimate
	// EstimateFeed periodically publishes a tier's estimates as fenced
	// cluster messages (see EstimateSource).
	EstimateFeed = vcloud.EstimateFeed
	// EstimateSource is anything that can be polled for a TierEstimate.
	EstimateSource = vcloud.EstimateSource
	// CloudBackend is the governor's execution-tier contract.
	CloudBackend = vcloud.Backend
	// RemoteCloud executes tasks across an uplink on a remote
	// datacenter.
	RemoteCloud = vcloud.RemoteCloud
	// DeploymentBackend adapts a vehicular-cloud Deployment to the
	// governor's backend contract.
	DeploymentBackend = vcloud.DeploymentBackend
)

// The governor's execution tiers.
const (
	TierVehicle = vcloud.TierVehicle
	TierEdge    = vcloud.TierEdge
	TierCloud   = vcloud.TierCloud
	NumTiers    = vcloud.NumTiers
)

// NewGovernor builds a placement governor over the given tiers. Tiers
// with a Sender get live delay-gradient bandwidth, loss and queue-delay
// estimates; tiers without one are priced from nameplate figures and
// the governor's own backlog.
func NewGovernor(s *Scenario, cfg GovernorConfig, stats *CloudStats) (*Governor, error) {
	return vcloud.NewGovernor(s.Kernel, cfg, stats)
}

// NewRemoteCloud builds a conventional-cloud backend behind the uplink
// (no congestion feedback — the legacy infinite-pipe model).
func NewRemoteCloud(name string, s *Scenario, uplink *Uplink, cpu float64, stats *CloudStats) (*RemoteCloud, error) {
	return vcloud.NewRemoteCloud(name, s.Kernel, uplink, cpu, stats)
}

// NewRemoteCloudSender builds a conventional-cloud backend whose
// exchanges ride an estimator-backed UplinkSender, feeding the
// governor's live view of the channel.
func NewRemoteCloudSender(name string, s *Scenario, sender *UplinkSender, cpu float64, stats *CloudStats) (*RemoteCloud, error) {
	return vcloud.NewRemoteCloudSender(name, s.Kernel, sender, cpu, stats)
}

// Security types (the §V.A secure v-cloud architecture).
type (
	// Security configures authenticated cloud formation.
	Security = vcloud.Security
	// SecureCloud is a deployment whose membership is authentication-gated.
	SecureCloud = vcloud.SecureDeployment
	// AuthMetrics aggregates handshake telemetry.
	AuthMetrics = auth.Metrics
	// TrustedAuthority is the PKI root all vehicles enroll with.
	TrustedAuthority = pki.TA
	// Ledger is the incentive credit ledger.
	Ledger = vcloud.Ledger
)

// Fault-injection types (the dependability drill subsystem; see
// internal/faults for the plan language).
type (
	// FaultPlan is an ordered, deterministic fault schedule.
	FaultPlan = faults.Plan
	// FaultEvent is one scheduled fault.
	FaultEvent = faults.Event
	// FaultInjector binds fault plans to a scenario.
	FaultInjector = faults.Injector
)

// ParseFaultPlan reads a fault plan in the textual plan language, e.g.
// "30s rsu-down 0; 45s partition 1500,0 400 20s; 60s loss 0.3 10s".
func ParseFaultPlan(text string) (FaultPlan, error) { return faults.Parse(text) }

// NewFaultInjector creates a fault injector over the scenario; schedule
// plans on it before or during the run.
func NewFaultInjector(s *Scenario) (*FaultInjector, error) { return faults.NewInjector(s) }

// Storage-service types (the §III.A data-storage service over churn;
// see internal/store).
type (
	// StorageBackend is the quorum storage contract: replicated or
	// erasure-coded objects over cluster members.
	StorageBackend = store.Backend
	// StorageConfig tunes replication/erasure factors, quorum sizes,
	// consistency level and placement policy.
	StorageConfig = store.Config
	// StorageView is the membership/reachability view a backend places
	// against (wire a controller's StorageView or a FuncView).
	StorageView = store.View
	// StorageStats counts writes, reads, repairs and bytes moved.
	StorageStats = store.Stats
)

// NewReplicatedStore builds a whole-copy quorum backend (W+R>N strict
// intersection unless cfg.Sloppy).
func NewReplicatedStore(cfg StorageConfig, v StorageView, st *StorageStats) (StorageBackend, error) {
	return store.NewReplicated(cfg, v, st)
}

// NewErasureCodedStore builds a (K, M) Reed–Solomon backend: any K of
// K+M fragments reconstruct an object.
func NewErasureCodedStore(cfg StorageConfig, v StorageView, st *StorageStats) (StorageBackend, error) {
	return store.NewErasureCoded(cfg, v, st)
}

// Experiment types.
type (
	// ExperimentConfig tunes an experiment run.
	ExperimentConfig = experiments.Config
	// ExperimentResult is one experiment's table and named values.
	ExperimentResult = experiments.Result
)

// HighwayOptions configures NewHighwayScenario.
type HighwayOptions struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// LengthM is the corridor length (default 3000 m).
	LengthM float64
	// SpeedLimit in m/s (default 27 ≈ 100 km/h).
	SpeedLimit float64
	// Vehicles is the population (default 40).
	Vehicles int
}

// NewHighwayScenario builds the standard two-direction highway corridor
// used by most experiments.
func NewHighwayScenario(opts HighwayOptions) (*Scenario, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.LengthM <= 0 {
		opts.LengthM = 3000
	}
	if opts.SpeedLimit <= 0 {
		opts.SpeedLimit = 27
	}
	if opts.Vehicles <= 0 {
		opts.Vehicles = 40
	}
	net, err := roadnet.Highway(roadnet.HighwaySpec{
		LengthM:    opts.LengthM,
		Segments:   3,
		SpeedLimit: opts.SpeedLimit,
		Lanes:      2,
	})
	if err != nil {
		return nil, err
	}
	return scenario.New(scenario.Spec{Seed: opts.Seed, Network: net, NumVehicles: opts.Vehicles})
}

// CityOptions configures NewCityScenario.
type CityOptions struct {
	Seed     int64
	Blocks   int     // grid is Blocks×Blocks intersections (default 5)
	BlockM   float64 // intersection spacing (default 200 m)
	Vehicles int     // default 50
}

// NewCityScenario builds a Manhattan-grid urban scenario.
func NewCityScenario(opts CityOptions) (*Scenario, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Blocks < 2 {
		opts.Blocks = 5
	}
	if opts.BlockM <= 0 {
		opts.BlockM = 200
	}
	if opts.Vehicles <= 0 {
		opts.Vehicles = 50
	}
	net, err := roadnet.Grid(roadnet.GridSpec{
		Rows: opts.Blocks, Cols: opts.Blocks, Spacing: opts.BlockM, SpeedLimit: 13.9, Lanes: 1,
	})
	if err != nil {
		return nil, err
	}
	return scenario.New(scenario.Spec{Seed: opts.Seed, Network: net, NumVehicles: opts.Vehicles})
}

// ParkingLotOptions configures NewParkingLotScenario.
type ParkingLotOptions struct {
	Seed     int64
	Aisles   int // default 4
	Vehicles int // parked vehicles, default 30
}

// NewParkingLotScenario builds the stationary-cloud scenario: parked
// vehicles plus a gate RSU acting as the coordinator ([4]'s airport
// datacenter).
func NewParkingLotScenario(opts ParkingLotOptions) (*Scenario, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Aisles < 1 {
		opts.Aisles = 4
	}
	if opts.Vehicles <= 0 {
		opts.Vehicles = 30
	}
	net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: opts.Aisles, AisleLenM: 200, AisleGapM: 40})
	if err != nil {
		return nil, err
	}
	s, err := scenario.New(scenario.Spec{Seed: opts.Seed, Network: net, NumVehicles: opts.Vehicles, Parked: true})
	if err != nil {
		return nil, err
	}
	if _, err := s.AddRSU(geo.Point{X: 0, Y: 0}); err != nil {
		return nil, err
	}
	return s, nil
}

// DeployCloud assembles a vehicular cloud of the given architecture over
// the scenario with sensible defaults: mobility clustering for dynamic
// clouds, route-aware dwell estimation and handover enabled.
func DeployCloud(s *Scenario, arch Architecture, stats *CloudStats) (*Cloud, error) {
	if stats == nil {
		return nil, fmt.Errorf("vcloud: stats must not be nil")
	}
	return vcloud.Deploy(s, arch, vcloud.DeployConfig{
		Handover:    true,
		DwellMode:   mobility.DwellRouteAware,
		ClusterAlgo: cluster.MobilitySimilarity{},
	}, stats)
}

// NewTrustedAuthority creates a PKI trusted authority with a
// deterministic key derived from seed.
func NewTrustedAuthority(name string, seed int64) (*TrustedAuthority, error) {
	return pki.New(name, mrand.New(mrand.NewSource(seed)), pki.Config{})
}

// DeploySecureCloud assembles an authentication-gated vehicular cloud
// (§V.A): vehicles enroll with the TA, mutually authenticate with
// controllers before joining, and revoked vehicles are excluded.
func DeploySecureCloud(s *Scenario, arch Architecture, ta *TrustedAuthority, met *AuthMetrics, stats *CloudStats) (*SecureCloud, error) {
	return vcloud.DeploySecure(s, arch, vcloud.DeployConfig{
		Handover:    true,
		DwellMode:   mobility.DwellRouteAware,
		ClusterAlgo: cluster.MobilitySimilarity{},
	}, vcloud.Security{TA: ta, Metrics: met}, stats)
}

// RunExperiment executes one of the paper-reproduction experiments
// (E1–E17) and returns its table and named values.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentResult, error) {
	for _, r := range experiments.All() {
		if r.ID == id {
			return r.Run(cfg)
		}
	}
	return nil, fmt.Errorf("vcloud: unknown experiment %q (valid: E1..E17)", id)
}

// Geo-sharded parallel kernel types (see internal/sim/shard.go for the
// conservative-lookahead coordinator and internal/shardworld for the
// composed scenario).
type (
	// ShardedKernel runs one simulation across N geographic shards — one
	// event kernel per shard, synchronized in conservative lookahead
	// windows with a fixed cross-shard merge order, so results are
	// bit-for-bit identical to a serial kernel at any shard count.
	ShardedKernel = sim.ShardedKernel
	// ShardWorldConfig parameterizes a geo-sharded beaconing scenario.
	ShardWorldConfig = shardworld.Config
	// ShardWorldResult is a finished sharded run: shard-invariant sampled
	// output plus sharding and performance telemetry.
	ShardWorldResult = shardworld.Result
	// ShardOutage silences beacons from a region for a tick interval.
	ShardOutage = shardworld.Outage
	// ShardSampleRow is one fleet-wide counter sample.
	ShardSampleRow = shardworld.SampleRow
)

// NewShardedKernel creates a sharded kernel: n shards, conservative
// lookahead L. Cross-shard events must be injected at least L ahead.
func NewShardedKernel(seed int64, n int, lookahead Duration) (*ShardedKernel, error) {
	return sim.NewShardedKernel(seed, n, lookahead)
}

// DefaultShardWorldConfig returns the standard sharded-world scenario.
func DefaultShardWorldConfig(seed int64, shards int) ShardWorldConfig {
	return shardworld.DefaultConfig(seed, shards)
}

// RunShardWorld executes the geo-sharded beaconing scenario and returns
// its result; equal configs (including shard count changes) reproduce
// the model output bit-for-bit — compare ShardWorldResult.Checksum.
func RunShardWorld(cfg ShardWorldConfig) (*ShardWorldResult, error) { return shardworld.Run(cfg) }

// Chaos-soak types (the long-horizon invariant harness; see
// internal/chaos).
type (
	// SoakConfig tunes a chaos soak run.
	SoakConfig = chaos.SoakConfig
	// SoakReport is a finished soak's counters, violations and
	// reproducibility checksum.
	SoakReport = chaos.Report
)

// RunSoak executes a seeded chaos soak: randomized crashes, partitions,
// loss bursts, controller kills and Byzantine flips over a long horizon,
// with dependability invariants asserted continuously. An empty
// Violations slice in the report is the pass criterion; equal configs
// reproduce runs bit-for-bit (compare Checksum).
func RunSoak(cfg SoakConfig) (*SoakReport, error) { return chaos.Soak(cfg) }

// Sharded-kernel storm-soak types (see internal/chaos/shard.go).
type (
	// ShardSoakConfig tunes the sharded-kernel storm soak: seeded storm
	// episodes (churn + roaming beacon outages), each run sharded and
	// serial with bit-for-bit output equality as the armed invariant.
	ShardSoakConfig = chaos.ShardSoakConfig
	// ShardSoakReport is the storm soak's outcome; empty Violations is
	// the pass criterion.
	ShardSoakReport = chaos.ShardSoakReport
)

// RunShardSoak executes the sharded-kernel storm soak.
func RunShardSoak(cfg ShardSoakConfig) (*ShardSoakReport, error) { return chaos.RunShardSoak(cfg) }

// Experiments lists the available experiment IDs with their titles.
func Experiments() map[string]string {
	out := make(map[string]string)
	for _, r := range experiments.All() {
		out[r.ID] = r.Name
	}
	return out
}

// Seconds converts a float seconds count to virtual time.
func Seconds(s float64) Duration { return Duration(s * float64(time.Second)) }
