// Command vcloudlint statically enforces the simulator's determinism and
// fencing contracts (DESIGN.md, "Determinism contract"). It runs five
// analyzers over the module's production sources:
//
//	nowallclock   no time.Now/Sleep/After/Since in sim-driven packages
//	noglobalrand  no global math/rand source, no unseeded rand.New
//	nomaporder    no map-iteration-ordered appends/sends/writes
//	nogoroutine   no go statements or sync primitives in kernel code
//	epochstamp    no Epoch-carrying message literals with Epoch unset
//
// Usage:
//
//	go run ./cmd/vcloudlint ./...
//	go run ./cmd/vcloudlint -only nowallclock,epochstamp ./...
//	go run ./cmd/vcloudlint -list
//
// A finding can be suppressed at the call site with a justification:
//
//	start := time.Now() //vcloudlint:allow nowallclock profiling telemetry
//
// The directive covers its own line and the line below; the reason is
// mandatory and a missing one is itself reported. Exit status: 0 clean,
// 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vcloud/internal/analysis/loader"
	"vcloud/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("vcloudlint", flag.ContinueOnError)
	var (
		only = fs.String("only", "", "comma-separated analyzer names to run; empty = all")
		list = fs.Bool("list", false, "list analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: vcloudlint [-only a,b] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range suite.Suite() {
			fmt.Printf("%-14s %s\n", e.Analyzer.Name, e.Analyzer.Doc)
		}
		return 0
	}

	keep, err := parseOnly(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcloudlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, ".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcloudlint:", err)
		return 2
	}
	findings, err := suite.Run(fset, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcloudlint:", err)
		return 2
	}

	wd, _ := os.Getwd()
	n := 0
	for _, f := range findings {
		if keep != nil && !keep[f.Analyzer] {
			continue
		}
		n++
		fmt.Printf("%s:%d:%d: [%s] %s\n", relPath(wd, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "vcloudlint: %d finding(s)\n", n)
		return 1
	}
	return 0
}

// parseOnly validates -only against the suite's analyzer names (plus
// "allow", the malformed-directive pseudo-analyzer).
func parseOnly(only string) (map[string]bool, error) {
	if only == "" {
		return nil, nil
	}
	valid := map[string]bool{"allow": true}
	for _, e := range suite.Suite() {
		valid[e.Analyzer.Name] = true
	}
	keep := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !valid[name] {
			names := make([]string, 0, len(valid))
			for n := range valid {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(names, ", "))
		}
		keep[name] = true
	}
	return keep, nil
}

func relPath(wd, path string) string {
	if wd == "" {
		return path
	}
	if rel, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
