// Command vcloudlint statically enforces the simulator's determinism and
// fencing contracts (DESIGN.md, "Determinism contract"). It runs eight
// analyzers over the module's production sources:
//
//	nowallclock   no time.Now/Sleep/After/Since in sim-driven packages
//	noglobalrand  no global math/rand source, no unseeded rand.New
//	nomaporder    no map-iteration-ordered appends/sends/writes
//	nogoroutine   no go statements or sync primitives in kernel code
//	epochstamp    no Epoch-carrying message literals with Epoch unset
//	exhaustenum   switches over module enums cover every member or default
//	shardpure     nothing reachable from a shard callback is impure
//	hotalloc      //vcloudlint:hotpath functions are allocation-free
//
// shardpure and hotalloc are interprocedural: they build one call graph
// over every loaded package (internal/analysis/interproc) and chase
// effects across package boundaries, reporting the deep effect site with
// the call chain that reaches it.
//
// Usage:
//
//	go run ./cmd/vcloudlint ./...
//	go run ./cmd/vcloudlint -only nowallclock,epochstamp ./...
//	go run ./cmd/vcloudlint -json ./...
//	go run ./cmd/vcloudlint -list
//
// -json emits the findings as a JSON array of {file,line,col,analyzer,
// message} objects in the same deterministic (file, line, col, analyzer)
// order as the text output; CI uses it to attach findings to the diff.
//
// A finding can be suppressed at the call site with a justification:
//
//	start := time.Now() //vcloudlint:allow nowallclock profiling telemetry
//
// The directive covers its own line and the line below; the reason is
// mandatory and a missing one is itself reported — as is a stale
// directive that no longer suppresses anything. Exit status: 0 clean,
// 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vcloud/internal/analysis/loader"
	"vcloud/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("vcloudlint", flag.ContinueOnError)
	var (
		only   = fs.String("only", "", "comma-separated analyzer names to run; empty = all")
		list   = fs.Bool("list", false, "list analyzers and exit")
		asJSON = fs.Bool("json", false, "emit findings as a JSON array instead of text")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: vcloudlint [-only a,b] [-json] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range suite.Suite() {
			fmt.Printf("%-14s %s\n", e.Analyzer.Name, e.Analyzer.Doc)
		}
		return 0
	}

	keep, err := parseOnly(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcloudlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, ".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcloudlint:", err)
		return 2
	}
	findings, err := suite.Run(fset, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcloudlint:", err)
		return 2
	}

	wd, _ := os.Getwd()
	// Findings arrive from the suite already sorted by (file, line, col,
	// analyzer); both output forms preserve that order, so runs are
	// byte-identical.
	kept := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		if keep != nil && !keep[f.Analyzer] {
			continue
		}
		kept = append(kept, jsonFinding{
			File:     relPath(wd, f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(kept); err != nil {
			fmt.Fprintln(os.Stderr, "vcloudlint:", err)
			return 2
		}
	} else {
		for _, f := range kept {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(kept) > 0 {
		fmt.Fprintf(os.Stderr, "vcloudlint: %d finding(s)\n", len(kept))
		return 1
	}
	return 0
}

// jsonFinding is the -json output record. Field order is the sort order.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// parseOnly validates -only against the suite's analyzer names (plus
// "allow", the malformed-directive pseudo-analyzer).
func parseOnly(only string) (map[string]bool, error) {
	if only == "" {
		return nil, nil
	}
	valid := map[string]bool{"allow": true}
	for _, e := range suite.Suite() {
		valid[e.Analyzer.Name] = true
	}
	keep := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !valid[name] {
			names := make([]string, 0, len(valid))
			for n := range valid {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(names, ", "))
		}
		keep[name] = true
	}
	return keep, nil
}

func relPath(wd, path string) string {
	if wd == "" {
		return path
	}
	if rel, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
