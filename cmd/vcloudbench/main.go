// Command vcloudbench runs the paper-reproduction experiment suite
// (E1–E13) and prints the result tables that back EXPERIMENTS.md.
//
// Usage:
//
//	vcloudbench                 # run everything, full size
//	vcloudbench -quick          # smaller populations/durations
//	vcloudbench -only E4,E5     # a subset
//	vcloudbench -seed 7         # different seed (results reproduce per seed)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vcloud/internal/experiments"
)

func main() {
	var (
		seed  = flag.Int64("seed", 42, "random seed; equal seeds reproduce runs exactly")
		quick = flag.Bool("quick", false, "shrink populations and durations")
		only  = flag.String("only", "", "comma-separated experiment ids (e.g. E1,E5); empty = all")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	failed := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Printf("== %s: %s (seed=%d quick=%v)\n", r.ID, r.Name, *seed, *quick)
		start := time.Now()
		res, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Println(res.Table.String())
		fmt.Printf("(%s wall time: %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
