// Command vcloudbench runs the paper-reproduction experiment suite
// (E1–E17) and prints the result tables that back EXPERIMENTS.md.
//
// Usage:
//
//	vcloudbench                 # run everything, full size
//	vcloudbench -quick          # smaller populations/durations
//	vcloudbench -only E4,E5     # a subset
//	vcloudbench -seed 7         # different seed (results reproduce per seed)
//	vcloudbench -parallel 8     # worker-pool width (default: GOMAXPROCS)
//	vcloudbench -benchjson BENCH.json      # machine-readable perf report
//	vcloudbench -compare BENCH_seed.json   # fail on >25% normalized events/sec regression
//	vcloudbench -shards 8       # add the geo-sharded kernel scaling sweep (1,2,4,8 shards)
//	vcloudbench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiments and their per-configuration sweep points run across a
// bounded worker pool; every sweep point builds its own kernel, and
// tables are assembled in sweep order, so stdout is byte-identical at
// any -parallel value (run timing goes to stderr). Per-seed results
// reproduce exactly.
//
// -shards N runs a large-fleet beaconing scenario on the geo-sharded
// kernel at every power-of-two shard count up to N, verifies the model
// output is bit-for-bit identical at every count, and emits a
// ShardScaling section (wall events/sec, busy wall, critical-path wall
// and speedup, cross-shard traffic) into the -benchjson report — the
// committed BENCH_shard.json. The sweep prints to stderr only, so
// stdout stays byte-identical with and without -shards. A -compare
// baseline carrying a ShardScaling section gates these points too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"vcloud/internal/experiments"
	"vcloud/internal/shardworld"
)

// benchExperiment is one experiment's entry in the -benchjson report.
type benchExperiment struct {
	ID           string             `json:"id"`
	Title        string             `json:"title"`
	WallMs       float64            `json:"wall_ms"`
	KernelEvents uint64             `json:"kernel_events"`
	KernelWallMs float64            `json:"kernel_wall_ms"`
	EventsPerSec float64            `json:"events_per_sec"`
	Values       map[string]float64 `json:"values,omitempty"`
	Error        string             `json:"error,omitempty"`
}

// shardPoint is one shard count's entry in the -shards scaling sweep.
// EventsPerSec is measured wall throughput (core-count dependent);
// CritPathSpeedup is the parallelism the decomposition exposes — busy
// wall over critical-path wall, the speedup realized when one core per
// shard exists. Checksum must be identical across every point.
type shardPoint struct {
	Shards          int     `json:"shards"`
	Vehicles        int     `json:"vehicles"`
	Ticks           int     `json:"ticks"`
	WallMs          float64 `json:"wall_ms"`
	Events          uint64  `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	BusyWallMs      float64 `json:"busy_wall_ms"`
	CritPathWallMs  float64 `json:"crit_path_wall_ms"`
	CritPathSpeedup float64 `json:"crit_path_speedup"`
	CrossEvents     uint64  `json:"cross_events"`
	Handoffs        int64   `json:"handoffs"`
	Checksum        string  `json:"checksum"`
	Identical       bool    `json:"identical"`
}

// benchReport is the top-level -benchjson document.
type benchReport struct {
	Seed         int64             `json:"seed"`
	Quick        bool              `json:"quick"`
	Parallel     int               `json:"parallel"`
	TotalWallMs  float64           `json:"total_wall_ms"`
	Experiments  []benchExperiment `json:"experiments"`
	ShardScaling []shardPoint      `json:"shard_scaling,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		seed       = flag.Int64("seed", 42, "random seed; equal seeds reproduce runs exactly")
		quick      = flag.Bool("quick", false, "shrink populations and durations")
		only       = flag.String("only", "", "comma-separated experiment ids (e.g. E1,E5); empty = all")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool width for experiments and sweep points (1 = serial)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		benchjson  = flag.String("benchjson", "", "write a JSON perf report (wall time, kernel events/sec, headline metrics) to this file")
		compare    = flag.String("compare", "", "compare this run's kernel events/sec against a baseline -benchjson report; fail on a >25% normalized regression")
		shards     = flag.Int("shards", 0, "run the geo-sharded kernel scaling sweep at power-of-two shard counts up to N (0 = off); fails unless output is bit-for-bit identical at every count")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "vcloudbench: unexpected positional arguments: %v\n", flag.Args())
		flag.Usage()
		return 2
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "vcloudbench: -parallel must be at least 1, got %d\n", *parallel)
		return 2
	}
	if *shards < 0 || *shards == 1 {
		fmt.Fprintln(os.Stderr, "vcloudbench: -shards must be 0 (off) or at least 2")
		return 2
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	wantAll := len(want) == 0
	var runners []experiments.Runner
	for _, r := range experiments.All() {
		if wantAll || want[r.ID] {
			runners = append(runners, r)
			delete(want, r.ID)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for id := range want {
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "vcloudbench: unknown experiment ids in -only: %s\n", strings.Join(unknown, ","))
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcloudbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "vcloudbench:", err)
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "vcloudbench: closing cpu profile:", cerr)
			}
			return 1
		}
		// A truncated or unflushed profile is worse than no profile, so a
		// failed close turns an otherwise-clean run into a failure.
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "vcloudbench: closing cpu profile:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Parallel: *parallel}

	// The pool: workers pull experiment indices; the main goroutine
	// prints each experiment's block as soon as it — and everything
	// before it — is done, so stdout order never depends on timing.
	type outcome struct {
		res  *experiments.Result
		err  error
		wall time.Duration
	}
	outs := make([]outcome, len(runners))
	done := make([]chan struct{}, len(runners))
	for i := range done {
		done[i] = make(chan struct{})
	}
	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(runners) {
		workers = len(runners)
	}
	totalStart := time.Now()
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(runners) {
					return
				}
				start := time.Now()
				res, err := runners[i].Run(cfg)
				outs[i] = outcome{res: res, err: err, wall: time.Since(start)}
				close(done[i])
			}
		}()
	}

	report := benchReport{Seed: *seed, Quick: *quick, Parallel: *parallel}
	failed := 0
	for i, r := range runners {
		<-done[i]
		o := outs[i]
		fmt.Printf("== %s: %s (seed=%d quick=%v)\n", r.ID, r.Name, *seed, *quick)
		entry := benchExperiment{ID: r.ID, Title: r.Name, WallMs: float64(o.wall.Microseconds()) / 1000}
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, o.err)
			entry.Error = o.err.Error()
			report.Experiments = append(report.Experiments, entry)
			failed++
			continue
		}
		fmt.Println(o.res.Table.String())
		fmt.Println()
		fmt.Fprintf(os.Stderr, "(%s wall time: %v, %d kernel events, %.0f events/sec)\n",
			r.ID, o.wall.Round(time.Millisecond), o.res.KernelEvents, o.res.EventsPerSec())
		entry.KernelEvents = o.res.KernelEvents
		entry.KernelWallMs = float64(o.res.KernelWall.Microseconds()) / 1000
		entry.EventsPerSec = o.res.EventsPerSec()
		entry.Values = o.res.Values
		report.Experiments = append(report.Experiments, entry)
	}
	if *shards >= 2 {
		points, err := runShardScaling(*seed, *quick, *shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcloudbench:", err)
			return 1
		}
		report.ShardScaling = points
		for _, p := range points {
			if !p.Identical {
				failed++
			}
		}
	}
	report.TotalWallMs = float64(time.Since(totalStart).Microseconds()) / 1000
	fmt.Fprintf(os.Stderr, "(total wall time: %v, parallel=%d)\n",
		time.Since(totalStart).Round(time.Millisecond), *parallel)

	if *benchjson != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcloudbench:", err)
			return 1
		}
		if err := os.WriteFile(*benchjson, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "vcloudbench:", err)
			return 1
		}
	}
	if *memprofile != "" {
		if err := writeMemProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "vcloudbench:", err)
			return 1
		}
	}
	if *compare != "" {
		if err := compareBaseline(*compare, &report); err != nil {
			fmt.Fprintln(os.Stderr, "vcloudbench:", err)
			return 1
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// runShardScaling runs the -shards sweep: one large-fleet beaconing
// scenario on the geo-sharded kernel at shard counts 1, 2, 4, ... up to
// maxShards (maxShards itself included even when not a power of two).
// Every count must reproduce the serial model output bit-for-bit; a
// divergent point is marked Identical=false and fails the run. All
// output goes to stderr so stdout stays the experiment tables alone.
func runShardScaling(seed int64, quick bool, maxShards int) ([]shardPoint, error) {
	var counts []int
	for n := 1; n <= maxShards; n *= 2 {
		counts = append(counts, n)
	}
	if counts[len(counts)-1] != maxShards {
		counts = append(counts, maxShards)
	}

	base := shardworld.DefaultConfig(seed, 1)
	if quick {
		base.Vehicles, base.Ticks, base.SampleEvery, base.WorldSize = 160, 64, 16, 3000
	} else {
		base.Vehicles, base.Ticks, base.SampleEvery, base.WorldSize = 600, 160, 32, 6000
	}

	var points []shardPoint
	var serial string
	fmt.Fprintf(os.Stderr, "shard scaling: %d vehicles, %d ticks, seed=%d\n", base.Vehicles, base.Ticks, seed)
	for _, n := range counts {
		cfg := base
		cfg.Shards = n
		res, err := shardworld.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("shard scaling at %d shards: %w", n, err)
		}
		if n == 1 {
			serial = res.Comparable()
		}
		p := shardPoint{
			Shards:          n,
			Vehicles:        res.Vehicles,
			Ticks:           res.Ticks,
			WallMs:          float64(res.Wall.Microseconds()) / 1000,
			Events:          res.Processed,
			EventsPerSec:    res.EventsPerSec(),
			BusyWallMs:      float64(res.BusyWall.Microseconds()) / 1000,
			CritPathWallMs:  float64(res.CritPath.Microseconds()) / 1000,
			CritPathSpeedup: res.CritPathSpeedup(),
			CrossEvents:     res.CrossEvents,
			Handoffs:        res.Handoffs,
			Checksum:        fmt.Sprintf("%016x", res.Checksum),
			Identical:       res.Comparable() == serial,
		}
		points = append(points, p)
		verdict := "identical"
		if !p.Identical {
			verdict = "DIVERGED"
		}
		fmt.Fprintf(os.Stderr,
			"shards=%-2d events/sec %9.0f  critpath speedup %.2fx  cross=%d handoffs=%d checksum=%s %s\n",
			n, p.EventsPerSec, p.CritPathSpeedup, p.CrossEvents, p.Handoffs, p.Checksum, verdict)
	}
	return points, nil
}

// regressionTolerance is how far below the fleet-normalized baseline an
// experiment's kernel events/sec may fall before -compare fails.
const regressionTolerance = 0.25

// minCompareWallMs is the least measured kernel wall time (baseline and
// current both) an experiment needs before its events/sec is worth
// comparing: below this, scheduler noise dwarfs any real regression.
const minCompareWallMs = 50

// withShardPoints returns a report's experiment entries plus one
// pseudo-experiment per shard-scaling point, so a baseline carrying a
// ShardScaling section gates sharded throughput through the same
// normalized-ratio flow. The key carries the shard and vehicle counts:
// points from differently-sized sweeps never compare. Busy wall stands
// in for kernel wall (it is the sweep's actual compute time).
func withShardPoints(r *benchReport) []benchExperiment {
	out := make([]benchExperiment, 0, len(r.Experiments)+len(r.ShardScaling))
	out = append(out, r.Experiments...)
	for _, p := range r.ShardScaling {
		out = append(out, benchExperiment{
			ID:           fmt.Sprintf("SHARD%d/v%d", p.Shards, p.Vehicles),
			KernelEvents: p.Events,
			KernelWallMs: p.BusyWallMs,
			EventsPerSec: p.EventsPerSec,
		})
	}
	return out
}

// compareBaseline checks this run's per-experiment kernel throughput
// against a baseline -benchjson report. Absolute events/sec depends on
// the machine, so each experiment's current/baseline ratio is divided by
// the fleet-wide mean ratio first: a uniformly slower box cancels out,
// while one experiment regressing relative to the rest does not. A
// normalized ratio below 1 - regressionTolerance fails the run.
func compareBaseline(path string, cur *benchReport) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseEntries := withShardPoints(&base)
	baseline := make(map[string]benchExperiment, len(baseEntries))
	for _, e := range baseEntries {
		if e.Error == "" && e.EventsPerSec > 0 {
			baseline[e.ID] = e
		}
	}
	type pair struct {
		id    string
		ratio float64
	}
	var pairs []pair
	mean := 0.0
	for _, e := range withShardPoints(cur) {
		b, ok := baseline[e.ID]
		if !ok || e.Error != "" || e.EventsPerSec <= 0 {
			continue
		}
		if e.KernelWallMs < minCompareWallMs || b.KernelWallMs < minCompareWallMs {
			fmt.Fprintf(os.Stderr, "compare %-4s skipped (kernel wall %.0fms vs %.0fms: too short to time)\n",
				e.ID, e.KernelWallMs, b.KernelWallMs)
			continue
		}
		r := e.EventsPerSec / b.EventsPerSec
		pairs = append(pairs, pair{e.ID, r})
		mean += r
	}
	if len(pairs) == 0 {
		return fmt.Errorf("no experiments in common with baseline %s", path)
	}
	mean /= float64(len(pairs))
	regressed := 0
	for _, p := range pairs {
		norm := p.ratio / mean
		status := "ok"
		if norm < 1-regressionTolerance {
			status = "REGRESSED"
			regressed++
		}
		fmt.Fprintf(os.Stderr, "compare %-4s events/sec ratio %.2f (normalized %.2f) %s\n",
			p.id, p.ratio, norm, status)
	}
	if regressed > 0 {
		return fmt.Errorf("%d experiment(s) regressed >%.0f%% vs %s (normalized by fleet mean ratio %.2f)",
			regressed, regressionTolerance*100, path, mean)
	}
	fmt.Fprintf(os.Stderr, "compare: all %d experiments within %.0f%% of %s (fleet mean ratio %.2f)\n",
		len(pairs), regressionTolerance*100, path, mean)
	return nil
}

// writeMemProfile snapshots the heap to path, reporting write and close
// errors alike — a heap profile missing its tail is silently misleading.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	werr := pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return fmt.Errorf("closing heap profile: %w", cerr)
	}
	return nil
}
