// Command vcloudsim runs a single vehicular-cloud scenario and prints a
// summary: cloud formation, task outcomes and radio statistics.
//
// Usage:
//
//	vcloudsim -scenario highway -arch dynamic -vehicles 40 -tasks 30 -duration 120
//	vcloudsim -scenario parkinglot -arch stationary
//	vcloudsim -scenario city -arch dynamic -seed 7
//
// A scripted fault plan (see internal/faults) injects deterministic
// failures at absolute virtual times — the run starts at 0s, warm-up
// lasts 10s:
//
//	vcloudsim -scenario highway -arch infrastructure \
//	  -faults '30s rsu-down 0; 45s partition 1500,0 400 20s; 60s loss 0.3 10s; 80s rsu-up 0'
//	vcloudsim -scenario parkinglot -arch stationary -faults '40s kill-controller 0'
//
// -replicas enables the dependable-execution policy (redundant copies,
// majority voting, backoff retries) and prints a per-task table of
// retry and replica counts:
//
//	vcloudsim -scenario parkinglot -arch stationary -replicas 3 -retries 3
//
// -soak runs the chaos soak harness instead of a plain scenario: a
// seeded randomized storm of crashes, partitions, loss bursts,
// controller kills and Byzantine flips, with dependability invariants
// asserted continuously. The exit code reports violations:
//
//	vcloudsim -soak -duration 600 -vehicles 20 -byz 0.25 -seed 7
//
// -splitbrain extends the soak with epoch fencing and controller
// isolations that split the cloud into two live controllers, plus the
// fencing invariants (one controller accepted per epoch, no outcome
// applied twice) and the epoch/abdication/merge counters:
//
//	vcloudsim -soak -splitbrain -duration 300 -vehicles 16 -seed 7
//
// -store runs the soak with the vehicular data-storage service: a
// session-consistent KV workload over the chosen backend (replicated =
// 3-way strict quorums, ec = 4+2 erasure coding), a permanent-departure
// churn clock (a vehicle drives away and its disk leaves with it), and
// the two storage invariants — no acked write lost while a quorum of
// its replicas survives, and no session client ever reads backwards:
//
//	vcloudsim -soak -store replicated -duration 300 -vehicles 16 -seed 7
//	vcloudsim -soak -store ec -splitbrain -duration 300 -seed 7
//
// -dag runs the soak with the dependent-stage job workload: randomly
// shaped DAG jobs with critical-path replication flow alongside the
// task storm, the storm gains kill-member process deaths, and the DAG
// invariants arm (no stage outcome applied twice, completed job implies
// ancestor completeness, replica budget never exceeded):
//
//	vcloudsim -soak -dag -duration 300 -vehicles 16 -seed 7
//
// -saturate runs the soak with the congestion workload: a ramped
// deadline-task stream offloaded through the placement governor over a
// contended, lossy shared uplink, saturation storms (loss bursts and
// uplink outages), and the overload invariants — bounded queues, only
// optional work shed, and a bandwidth estimate that never exceeds the
// channel's physical capacity:
//
//	vcloudsim -soak -saturate -duration 300 -vehicles 16 -seed 7
//
// -shards adds the geo-sharded kernel storm soak to any soak mode: a
// sequence of seeded storm episodes (fleet churn plus a roaming
// regional beacon outage), each run on N geographic shards and again on
// the serial kernel, with bit-for-bit output equality as the armed
// invariant — a divergence or a conservation breach is a violation like
// any other:
//
//	vcloudsim -soak -saturate -shards 4 -duration 300 -vehicles 16 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	root "vcloud"
	"vcloud/internal/cluster"
	"vcloud/internal/geo"
	"vcloud/internal/metrics"
	"vcloud/internal/mobility"
	"vcloud/internal/trace"
	ivc "vcloud/internal/vcloud"
)

func main() {
	os.Exit(cliMain())
}

// cliMain returns the process exit code instead of calling os.Exit, so
// the CPU-profile teardown below always runs and its errors are
// reported — the earlier os.Exit error paths silently truncated the
// profile file.
func cliMain() int {
	var (
		scen     = flag.String("scenario", "highway", "highway | city | parkinglot")
		arch     = flag.String("arch", "dynamic", "stationary | infrastructure | dynamic")
		vehicles = flag.Int("vehicles", 40, "vehicle count")
		tasks    = flag.Int("tasks", 30, "tasks to submit")
		duration = flag.Float64("duration", 120, "simulated seconds after warm-up")
		seed     = flag.Int64("seed", 1, "random seed")
		secure   = flag.Bool("secure", false, "gate cloud membership behind mutual authentication (§V.A)")
		traceN   = flag.Int("trace", 0, "dump the last N task-lifecycle trace events")
		faultStr = flag.String("faults", "", "fault plan, e.g. '30s rsu-down 0; 45s partition 1500,0 400 20s' (times are absolute virtual times)")
		replicas = flag.Int("replicas", 0, "redundant copies per task with majority voting (0 disables the dependability policy)")
		retries  = flag.Int("retries", 0, "max backoff retry rounds per task (with -replicas)")
		soak     = flag.Bool("soak", false, "run the chaos soak harness (uses -seed, -vehicles, -duration, -byz)")
		byz      = flag.Float64("byz", 0, "fraction of workers returning wrong results (soak mode)")
		split    = flag.Bool("splitbrain", false, "with -soak: fence epochs and add controller-isolating split-brain storms")
		dag      = flag.Bool("dag", false, "with -soak: run the DAG job workload with kill-member storms and the DAG invariants")
		storeB   = flag.String("store", "", "with -soak: run the storage workload on this backend (replicated | ec)")
		sat      = flag.Bool("saturate", false, "with -soak: run the congestion workload with saturation storms and the overload invariants")
		shards   = flag.Int("shards", 0, "with -soak: also storm-soak the geo-sharded kernel at this shard count, checking sharded output == serial bit-for-bit")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "vcloudsim: unexpected positional arguments: %v\n", flag.Args())
		flag.Usage()
		return 2
	}
	if err := validateFlags(*vehicles, *tasks, *duration, *replicas, *retries, *byz); err != nil {
		fmt.Fprintln(os.Stderr, "vcloudsim:", err)
		return 2
	}
	switch *storeB {
	case "", "replicated", "ec":
	default:
		fmt.Fprintf(os.Stderr, "vcloudsim: -store must be replicated or ec, got %q\n", *storeB)
		return 2
	}
	if *storeB != "" && !*soak {
		fmt.Fprintln(os.Stderr, "vcloudsim: -store requires -soak")
		return 2
	}
	if *dag && !*soak {
		fmt.Fprintln(os.Stderr, "vcloudsim: -dag requires -soak")
		return 2
	}
	if *sat && !*soak {
		fmt.Fprintln(os.Stderr, "vcloudsim: -saturate requires -soak")
		return 2
	}
	if *shards != 0 && !*soak {
		fmt.Fprintln(os.Stderr, "vcloudsim: -shards requires -soak")
		return 2
	}
	if *shards < 0 || *shards == 1 {
		fmt.Fprintln(os.Stderr, "vcloudsim: -shards must be 0 (off) or at least 2")
		return 2
	}

	body := func() int {
		if *soak {
			if err := runSoak(*seed, *vehicles, *duration, *byz, *split, *storeB, *dag, *sat, *shards); err != nil {
				fmt.Fprintln(os.Stderr, "vcloudsim:", err)
				return 1
			}
			return 0
		}
		if err := run(*scen, *arch, *vehicles, *tasks, *duration, *seed, *secure, *traceN, *faultStr, *replicas, *retries); err != nil {
			fmt.Fprintln(os.Stderr, "vcloudsim:", err)
			return 1
		}
		return 0
	}
	if *cpuprof == "" {
		return body()
	}

	f, err := os.Create(*cpuprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcloudsim:", err)
		return 1
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "vcloudsim:", err)
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "vcloudsim: closing cpu profile:", cerr)
		}
		return 1
	}
	code := body()
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "vcloudsim: closing cpu profile:", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// validateFlags rejects flag values that would otherwise fail deep inside
// a run (or silently distort it, like a negative task count).
func validateFlags(vehicles, tasks int, duration float64, replicas, retries int, byz float64) error {
	switch {
	case vehicles <= 0:
		return fmt.Errorf("-vehicles must be positive, got %d", vehicles)
	case tasks < 0:
		return fmt.Errorf("-tasks must be non-negative, got %d", tasks)
	case duration <= 0:
		return fmt.Errorf("-duration must be positive, got %g", duration)
	case replicas < 0:
		return fmt.Errorf("-replicas must be non-negative, got %d", replicas)
	case retries < 0:
		return fmt.Errorf("-retries must be non-negative, got %d", retries)
	case byz < 0 || byz > 1:
		return fmt.Errorf("-byz must be in [0, 1], got %g", byz)
	}
	return nil
}

// runSoak executes the chaos soak harness and prints its report. A
// non-empty violation list is a process failure: the soak is the
// executable form of the dependability invariants. With shards >= 2 the
// geo-sharded kernel storm soak runs after the main soak, and its
// violations (sharded output diverging from serial) fail the process
// the same way.
func runSoak(seed int64, vehicles int, duration float64, byz float64, split bool, storeB string, dag bool, sat bool, shards int) error {
	rep, err := root.RunSoak(root.SoakConfig{
		Seed:        seed,
		Vehicles:    vehicles,
		Duration:    root.Seconds(duration),
		ByzFraction: byz,
		SplitBrain:  split,
		Storage:     storeB,
		DAG:         dag,
		Saturate:    sat,
	})
	if err != nil {
		return err
	}
	fmt.Printf("soak: seed=%d vehicles=%d duration=%.0fs byz=%.2f splitbrain=%v", seed, vehicles, duration, byz, split)
	if storeB != "" {
		fmt.Printf(" store=%s", storeB)
	}
	if dag {
		fmt.Printf(" dag=on")
	}
	if sat {
		fmt.Printf(" saturate=on")
	}
	fmt.Println()
	fmt.Printf("tasks: submitted=%d completed=%d failed=%d refused=%d correct=%d wrong=%d unchecked=%d\n",
		rep.Submitted, rep.Completed, rep.Failed, rep.Refused, rep.Correct, rep.Wrong, rep.Unchecked)
	fmt.Printf("storm: %d fault(s) injected, %d failover(s), %d invariant sweep(s)\n",
		rep.FaultsInjected, rep.Failovers, rep.Checks)
	if split {
		fmt.Printf("fencing: %d split(s), highest epoch %d, %d abdication(s), %d merge(s), %d task(s) adopted, %d outcome(s) deduped, %d stale msg(s) rejected\n",
			rep.SplitBrains, rep.Epochs, rep.Abdications, rep.Merges, rep.Adopted, rep.Deduped, rep.StaleRejected)
	}
	if storeB != "" {
		fmt.Printf("storage: writes=%d acked=%d reads=%d served=%d lost=%d repaired=%d departures=%d\n",
			rep.StorageWrites, rep.StorageAcked, rep.StorageReads, rep.StorageReadsOK,
			rep.StorageLost, rep.StorageRepaired, rep.Departures)
	}
	if dag {
		fmt.Printf("jobs: submitted=%d completed=%d partial=%d failed=%d refused=%d resumed=%d\n",
			rep.JobsSubmitted, rep.JobsCompleted, rep.JobsPartial, rep.JobsFailed, rep.JobsRefused, rep.JobsResumed)
		fmt.Printf("stages: retries=%d relays=%d handoffs=%d member-kills=%d\n",
			rep.StageRetries, rep.StageRelays, rep.StageHandoffs, rep.MemberKills)
	}
	if sat {
		fmt.Printf("congestion: submitted=%d (required=%d) completed=%d failed=%d shed=%d admission=%d backpressured=%d\n",
			rep.SatSubmitted, rep.SatRequired, rep.SatCompleted, rep.SatFailed,
			rep.SatShed, rep.SatAdmission, rep.SatBackpressured)
		fmt.Printf("placement: vehicle=%d cloud=%d switches=%d, %d loss burst(s), %d uplink outage(s)\n",
			rep.SatPlacedVehicle, rep.SatPlacedCloud, rep.TierSwitches,
			rep.SatLossBursts, rep.SatOutages)
		fmt.Printf("uplink: sent=%d delivered=%d lost=%d dropped=%d\n",
			rep.UplinkSent, rep.UplinkDelivered, rep.UplinkLost, rep.UplinkDropped)
	}
	for _, f := range rep.FaultLog {
		fmt.Printf("  %s\n", f)
	}
	fmt.Printf("checksum: %016x (same seed reproduces bit-for-bit)\n", rep.Checksum)
	violations := rep.Violations
	if shards >= 2 {
		// Scale the episode count with the soaked horizon: one storm
		// episode per simulated minute, at least two, at most eight.
		episodes := int(duration / 60)
		if episodes < 2 {
			episodes = 2
		}
		if episodes > 8 {
			episodes = 8
		}
		srep, err := root.RunShardSoak(root.ShardSoakConfig{
			Seed:     seed,
			Shards:   shards,
			Episodes: episodes,
			Vehicles: vehicles * 6,
		})
		if err != nil {
			return err
		}
		fmt.Printf("shard soak: shards=%d episodes=%d events=%d cross=%d handoffs=%d delivered=%d\n",
			srep.Shards, srep.Episodes, srep.Events, srep.CrossEvents, srep.Handoffs, srep.Delivered)
		fmt.Printf("shard checksum: %016x (sharded output == serial, bit-for-bit)\n", srep.Checksum)
		violations = append(violations, srep.Violations...)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Printf("VIOLATION: %s\n", v)
		}
		return fmt.Errorf("%d invariant violation(s)", len(violations))
	}
	fmt.Println("invariants: all held")
	return nil
}

func run(scen, archName string, vehicles, tasks int, duration float64, seed int64, secure bool, traceN int, faultStr string, replicas, retries int) error {
	var policy *root.DependabilityPolicy
	if replicas > 0 {
		policy = &root.DependabilityPolicy{Replicas: replicas, MaxRetries: retries}
	}
	var s *root.Scenario
	var err error
	switch scen {
	case "highway":
		s, err = root.NewHighwayScenario(root.HighwayOptions{Seed: seed, Vehicles: vehicles})
	case "city":
		s, err = root.NewCityScenario(root.CityOptions{Seed: seed, Vehicles: vehicles})
	case "parkinglot":
		s, err = root.NewParkingLotScenario(root.ParkingLotOptions{Seed: seed, Vehicles: vehicles})
	default:
		return fmt.Errorf("unknown scenario %q", scen)
	}
	if err != nil {
		return err
	}

	var arch root.Architecture
	switch archName {
	case "stationary":
		arch = root.Stationary
	case "infrastructure":
		arch = root.Infrastructure
		// Infrastructure needs RSUs; place three across the map.
		b := s.Network.Bounds()
		for i := 1; i <= 3; i++ {
			x := b.Min.X + b.Width()*float64(i)/4
			if _, err := s.AddRSU(geo.Point{X: x, Y: b.Center().Y}); err != nil {
				return err
			}
		}
	case "dynamic":
		arch = root.Dynamic
	default:
		return fmt.Errorf("unknown architecture %q", archName)
	}

	stats := &root.CloudStats{}
	var rec *trace.Recorder
	if traceN > 0 {
		var err error
		if rec, err = trace.NewRecorder(traceN); err != nil {
			return err
		}
	}
	var cloud *root.Cloud
	var authMet *root.AuthMetrics
	if secure {
		ta, err := root.NewTrustedAuthority("TA", seed)
		if err != nil {
			return err
		}
		authMet = &root.AuthMetrics{}
		sd, err := ivc.DeploySecure(s, arch, deployCfg(rec, policy), ivc.Security{TA: ta, Metrics: authMet}, stats)
		if err != nil {
			return err
		}
		cloud = sd.Deployment
	} else {
		var err error
		cloud, err = ivc.Deploy(s, arch, deployCfg(rec, policy), stats)
		if err != nil {
			return err
		}
	}
	// Scripted fault injection: schedule the plan before the clock moves
	// so every event lands at its absolute virtual time.
	var inj *root.FaultInjector
	if faultStr != "" {
		plan, err := root.ParseFaultPlan(faultStr)
		if err != nil {
			return err
		}
		if inj, err = root.NewFaultInjector(s); err != nil {
			return err
		}
		c := cloud
		inj.OnControllerKill(func(idx int) {
			ctls := c.ActiveControllers()
			if idx >= 0 && idx < len(ctls) {
				ctls[idx].Crash()
			}
		})
		inj.OnMemberKill(func(id int) {
			if m, ok := c.Members[root.VehicleID(id)]; ok {
				m.Stop()
				delete(c.Members, root.VehicleID(id))
			}
		})
		if err := inj.Schedule(plan); err != nil {
			return err
		}
	}

	if err := s.Start(); err != nil {
		return err
	}
	if err := s.RunFor(10 * time.Second); err != nil {
		return err
	}

	members := 0
	for _, c := range cloud.ActiveControllers() {
		members += c.NumMembers()
	}
	fmt.Printf("scenario=%s arch=%s vehicles=%d: %d controller(s), %d member(s) after warm-up\n",
		scen, archName, len(s.VehicleIDs()), len(cloud.ActiveControllers()), members)

	results := make([]root.TaskResult, 0, tasks)
	for i := 0; i < tasks; i++ {
		err := cloud.SubmitAnywhere(root.Task{Ops: 2000, InputBytes: 2000, OutputBytes: 1000},
			func(r root.TaskResult) { results = append(results, r) })
		if err != nil {
			fmt.Printf("  submit %d refused: %v\n", i, err)
		}
	}
	if err := s.RunFor(root.Seconds(duration)); err != nil {
		return err
	}

	fmt.Printf("tasks: submitted=%d completed=%d failed=%d retries=%d handovers=%d\n",
		stats.Submitted.Value(), stats.Completed.Value(), stats.Failed.Value(),
		stats.Retries.Value(), stats.Handovers.Value())
	if policy != nil {
		fmt.Printf("dependability: replicas dispatched=%d wrong votes=%d no-quorum rounds=%d\n",
			stats.ReplicaDispatches.Value(), stats.WrongVotes.Value(), stats.NoQuorum.Value())
		tbl := metrics.NewTable("per-task dependability",
			"task", "outcome", "retries", "replicas", "voters", "latency")
		for _, r := range results {
			outcome := "ok"
			if !r.OK {
				outcome = "failed: " + string(r.Reason)
			}
			tbl.AddRow(fmt.Sprintf("%d", r.ID), outcome,
				fmt.Sprintf("%d", r.Retries), fmt.Sprintf("%d", r.Replicas),
				fmt.Sprintf("%d", len(r.Voters)), fmt.Sprintf("%.0fms", float64(r.Latency.Milliseconds())))
		}
		fmt.Print(tbl.String())
	}
	if stats.Latency.Count() > 0 {
		fmt.Printf("latency: p50=%.1fms p95=%.1fms\n",
			stats.Latency.Percentile(50), stats.Latency.Percentile(95))
	}
	if authMet != nil {
		fmt.Printf("auth: %d handshakes ok, %d failures, %d timeouts, p50 %.1fms\n",
			authMet.Successes.Value(), authMet.Failures.Value(), authMet.Timeouts.Value(),
			authMet.Latency.Percentile(50))
	}
	rs := s.Medium.Stats()
	fmt.Printf("radio: sent=%d delivered=%d lost(range)=%d lost(load)=%d, %.1f MB on air\n",
		rs.Sent, rs.Delivered, rs.LostRange, rs.LostLoad, float64(rs.BytesOnAir)/(1<<20))
	if inj != nil {
		fs := inj.Stats()
		fmt.Printf("faults: %d event(s) applied, %d frame(s) suppressed\n", fs.Applied, fs.DroppedFrames)
		for _, line := range inj.Log() {
			fmt.Printf("  %s\n", line)
		}
	}
	if rec != nil {
		fmt.Printf("trace: %d events recorded (%s); tail follows\n", rec.Count(), rec.Summary())
		if err := rec.Dump(os.Stdout, "", 0); err != nil {
			return err
		}
	}
	return nil
}

// deployCfg builds the default deployment config with optional tracing
// and dependability policy.
func deployCfg(rec *trace.Recorder, policy *root.DependabilityPolicy) ivc.DeployConfig {
	return ivc.DeployConfig{
		Handover:    true,
		DwellMode:   mobility.DwellRouteAware,
		ClusterAlgo: cluster.MobilitySimilarity{},
		Controller:  ivc.ControllerConfig{Trace: rec, Depend: policy},
	}
}
