// Command vcloudsim runs a single vehicular-cloud scenario and prints a
// summary: cloud formation, task outcomes and radio statistics.
//
// Usage:
//
//	vcloudsim -scenario highway -arch dynamic -vehicles 40 -tasks 30 -duration 120
//	vcloudsim -scenario parkinglot -arch stationary
//	vcloudsim -scenario city -arch dynamic -seed 7
//
// A scripted fault plan (see internal/faults) injects deterministic
// failures at absolute virtual times — the run starts at 0s, warm-up
// lasts 10s:
//
//	vcloudsim -scenario highway -arch infrastructure \
//	  -faults '30s rsu-down 0; 45s partition 1500,0 400 20s; 60s loss 0.3 10s; 80s rsu-up 0'
//	vcloudsim -scenario parkinglot -arch stationary -faults '40s kill-controller 0'
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	root "vcloud"
	"vcloud/internal/cluster"
	"vcloud/internal/geo"
	"vcloud/internal/mobility"
	"vcloud/internal/trace"
	ivc "vcloud/internal/vcloud"
)

func main() {
	var (
		scen     = flag.String("scenario", "highway", "highway | city | parkinglot")
		arch     = flag.String("arch", "dynamic", "stationary | infrastructure | dynamic")
		vehicles = flag.Int("vehicles", 40, "vehicle count")
		tasks    = flag.Int("tasks", 30, "tasks to submit")
		duration = flag.Float64("duration", 120, "simulated seconds after warm-up")
		seed     = flag.Int64("seed", 1, "random seed")
		secure   = flag.Bool("secure", false, "gate cloud membership behind mutual authentication (§V.A)")
		traceN   = flag.Int("trace", 0, "dump the last N task-lifecycle trace events")
		faultStr = flag.String("faults", "", "fault plan, e.g. '30s rsu-down 0; 45s partition 1500,0 400 20s' (times are absolute virtual times)")
	)
	flag.Parse()

	if err := run(*scen, *arch, *vehicles, *tasks, *duration, *seed, *secure, *traceN, *faultStr); err != nil {
		fmt.Fprintln(os.Stderr, "vcloudsim:", err)
		os.Exit(1)
	}
}

func run(scen, archName string, vehicles, tasks int, duration float64, seed int64, secure bool, traceN int, faultStr string) error {
	var s *root.Scenario
	var err error
	switch scen {
	case "highway":
		s, err = root.NewHighwayScenario(root.HighwayOptions{Seed: seed, Vehicles: vehicles})
	case "city":
		s, err = root.NewCityScenario(root.CityOptions{Seed: seed, Vehicles: vehicles})
	case "parkinglot":
		s, err = root.NewParkingLotScenario(root.ParkingLotOptions{Seed: seed, Vehicles: vehicles})
	default:
		return fmt.Errorf("unknown scenario %q", scen)
	}
	if err != nil {
		return err
	}

	var arch root.Architecture
	switch archName {
	case "stationary":
		arch = root.Stationary
	case "infrastructure":
		arch = root.Infrastructure
		// Infrastructure needs RSUs; place three across the map.
		b := s.Network.Bounds()
		for i := 1; i <= 3; i++ {
			x := b.Min.X + b.Width()*float64(i)/4
			if _, err := s.AddRSU(geo.Point{X: x, Y: b.Center().Y}); err != nil {
				return err
			}
		}
	case "dynamic":
		arch = root.Dynamic
	default:
		return fmt.Errorf("unknown architecture %q", archName)
	}

	stats := &root.CloudStats{}
	var rec *trace.Recorder
	if traceN > 0 {
		var err error
		if rec, err = trace.NewRecorder(traceN); err != nil {
			return err
		}
	}
	var cloud *root.Cloud
	var authMet *root.AuthMetrics
	if secure {
		ta, err := root.NewTrustedAuthority("TA", seed)
		if err != nil {
			return err
		}
		authMet = &root.AuthMetrics{}
		sd, err := ivc.DeploySecure(s, arch, deployCfg(rec), ivc.Security{TA: ta, Metrics: authMet}, stats)
		if err != nil {
			return err
		}
		cloud = sd.Deployment
	} else {
		var err error
		cloud, err = ivc.Deploy(s, arch, deployCfg(rec), stats)
		if err != nil {
			return err
		}
	}
	// Scripted fault injection: schedule the plan before the clock moves
	// so every event lands at its absolute virtual time.
	var inj *root.FaultInjector
	if faultStr != "" {
		plan, err := root.ParseFaultPlan(faultStr)
		if err != nil {
			return err
		}
		if inj, err = root.NewFaultInjector(s); err != nil {
			return err
		}
		c := cloud
		inj.OnControllerKill(func(idx int) {
			ctls := c.ActiveControllers()
			if idx >= 0 && idx < len(ctls) {
				ctls[idx].Crash()
			}
		})
		if err := inj.Schedule(plan); err != nil {
			return err
		}
	}

	if err := s.Start(); err != nil {
		return err
	}
	if err := s.RunFor(10 * time.Second); err != nil {
		return err
	}

	members := 0
	for _, c := range cloud.ActiveControllers() {
		members += c.NumMembers()
	}
	fmt.Printf("scenario=%s arch=%s vehicles=%d: %d controller(s), %d member(s) after warm-up\n",
		scen, archName, len(s.VehicleIDs()), len(cloud.ActiveControllers()), members)

	for i := 0; i < tasks; i++ {
		if err := cloud.SubmitAnywhere(root.Task{Ops: 2000, InputBytes: 2000, OutputBytes: 1000}, nil); err != nil {
			fmt.Printf("  submit %d refused: %v\n", i, err)
		}
	}
	if err := s.RunFor(root.Seconds(duration)); err != nil {
		return err
	}

	fmt.Printf("tasks: submitted=%d completed=%d failed=%d retries=%d handovers=%d\n",
		stats.Submitted.Value(), stats.Completed.Value(), stats.Failed.Value(),
		stats.Retries.Value(), stats.Handovers.Value())
	if stats.Latency.Count() > 0 {
		fmt.Printf("latency: p50=%.1fms p95=%.1fms\n",
			stats.Latency.Percentile(50), stats.Latency.Percentile(95))
	}
	if authMet != nil {
		fmt.Printf("auth: %d handshakes ok, %d failures, %d timeouts, p50 %.1fms\n",
			authMet.Successes.Value(), authMet.Failures.Value(), authMet.Timeouts.Value(),
			authMet.Latency.Percentile(50))
	}
	rs := s.Medium.Stats()
	fmt.Printf("radio: sent=%d delivered=%d lost(range)=%d lost(load)=%d, %.1f MB on air\n",
		rs.Sent, rs.Delivered, rs.LostRange, rs.LostLoad, float64(rs.BytesOnAir)/(1<<20))
	if inj != nil {
		fs := inj.Stats()
		fmt.Printf("faults: %d event(s) applied, %d frame(s) suppressed\n", fs.Applied, fs.DroppedFrames)
		for _, line := range inj.Log() {
			fmt.Printf("  %s\n", line)
		}
	}
	if rec != nil {
		fmt.Printf("trace: %d events recorded (%s); tail follows\n", rec.Count(), rec.Summary())
		if err := rec.Dump(os.Stdout, "", 0); err != nil {
			return err
		}
	}
	return nil
}

// deployCfg builds the default deployment config with optional tracing.
func deployCfg(rec *trace.Recorder) ivc.DeployConfig {
	return ivc.DeployConfig{
		Handover:    true,
		DwellMode:   mobility.DwellRouteAware,
		ClusterAlgo: cluster.MobilitySimilarity{},
		Controller:  ivc.ControllerConfig{Trace: rec},
	}
}
