package vcloud_test

import (
	"testing"
	"time"

	root "vcloud"
)

func TestNewHighwayScenarioDefaults(t *testing.T) {
	s, err := root.NewHighwayScenario(root.HighwayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.VehicleIDs()); got != 40 {
		t.Errorf("default vehicles = %d, want 40", got)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestNewCityScenario(t *testing.T) {
	s, err := root.NewCityScenario(root.CityOptions{Seed: 2, Blocks: 3, Vehicles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.VehicleIDs()); got != 10 {
		t.Errorf("vehicles = %d", got)
	}
}

func TestNewParkingLotScenarioHasGateRSU(t *testing.T) {
	s, err := root.NewParkingLotScenario(root.ParkingLotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.RSUs) != 1 {
		t.Errorf("RSUs = %d, want gate RSU", len(s.RSUs))
	}
}

func TestDeployCloudAndRunTasks(t *testing.T) {
	s, err := root.NewParkingLotScenario(root.ParkingLotOptions{Vehicles: 10})
	if err != nil {
		t.Fatal(err)
	}
	stats := &root.CloudStats{}
	cloud, err := root.DeployCloud(s, root.Stationary, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 5; i++ {
		if err := cloud.SubmitAnywhere(root.Task{Ops: 500, InputBytes: 100, OutputBytes: 100},
			func(r root.TaskResult) {
				if r.OK {
					done++
				}
			}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if done != 5 {
		t.Errorf("completed %d/5 tasks via facade", done)
	}
	if _, err := root.DeployCloud(s, root.Stationary, nil); err == nil {
		t.Error("nil stats should error")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	r, err := root.RunExperiment("E6", root.ExperimentConfig{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "E6" || len(r.Values) == 0 {
		t.Errorf("unexpected result: %+v", r)
	}
	if _, err := root.RunExperiment("E99", root.ExperimentConfig{}); err == nil {
		t.Error("unknown experiment should error")
	}
	if got := len(root.Experiments()); got != 17 {
		t.Errorf("experiments = %d, want 17", got)
	}
}

func TestSeconds(t *testing.T) {
	if root.Seconds(1.5) != 1500*time.Millisecond {
		t.Error("Seconds conversion wrong")
	}
}

func TestDeploySecureCloudFacade(t *testing.T) {
	s, err := root.NewParkingLotScenario(root.ParkingLotOptions{Seed: 9, Vehicles: 8})
	if err != nil {
		t.Fatal(err)
	}
	ta, err := root.NewTrustedAuthority("TA", 9)
	if err != nil {
		t.Fatal(err)
	}
	met := &root.AuthMetrics{}
	stats := &root.CloudStats{}
	cloud, err := root.DeploySecureCloud(s, root.Stationary, ta, met, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if cloud.Controllers[0].NumMembers() < 5 {
		t.Errorf("members = %d", cloud.Controllers[0].NumMembers())
	}
	if met.Successes.Value() == 0 {
		t.Error("no handshakes recorded")
	}
}
