// Benchmarks regenerating every experiment of the paper reproduction
// (one per DESIGN.md experiment row, E1–E17). Each iteration executes a
// full quick-size experiment run on the deterministic kernel and
// reports the headline values via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both times the harness and prints the reproduced numbers. The
// full-size tables behind EXPERIMENTS.md come from cmd/vcloudbench.
package vcloud_test

import (
	"math/rand"
	"testing"

	"vcloud/internal/auth"
	"vcloud/internal/cryptoprim"
	"vcloud/internal/experiments"
	"vcloud/internal/sim"
)

// runExperiment executes the experiment once per benchmark iteration and
// reports the chosen values from the final run.
func runExperiment(b *testing.B, run func(experiments.Config) (*experiments.Result, error), report map[string]string) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := run(experiments.Config{Seed: 42, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for metric, key := range report {
		if v, ok := last.Values[key]; ok {
			b.ReportMetric(v, metric)
		}
	}
}

// BenchmarkE1CloudComparison regenerates the Fig. 2 comparison
// (conventional vs mobile vs vehicular cloud under uplink outage).
func BenchmarkE1CloudComparison(b *testing.B) {
	runExperiment(b, experiments.E1CloudComparison, map[string]string{
		"vehic-healthy": "vehicular/healthy",
		"vehic-outage":  "vehicular/outage",
		"conv-outage":   "conventional/outage",
	})
}

// BenchmarkE2Architectures regenerates the Fig. 4 architecture
// comparison (stationary / infrastructure / dynamic, with disaster).
func BenchmarkE2Architectures(b *testing.B) {
	runExperiment(b, experiments.E2Architectures, map[string]string{
		"dyn-disaster":   "dynamic/disaster",
		"infra-disaster": "infrastructure/disaster",
	})
}

// BenchmarkE3ClusterStability regenerates the cluster-stability table
// (head churn per algorithm and speed).
func BenchmarkE3ClusterStability(b *testing.B) {
	runExperiment(b, experiments.E3ClusterStability, map[string]string{
		"mobility-churn": "mobility/30/churn",
		"lowestid-churn": "lowest-id/30/churn",
	})
}

// BenchmarkE4Routing regenerates the routing comparison (MoZo vs
// greedy vs AODV vs epidemic).
func BenchmarkE4Routing(b *testing.B) {
	runExperiment(b, experiments.E4Routing, map[string]string{
		"mozo-delivery":     "mozo/40/delivery",
		"epidemic-overhead": "epidemic/40/overhead",
	})
}

// BenchmarkE5Authentication regenerates the Fig. 5 protocol comparison
// (pseudonym / group / hybrid, CRL scaling).
func BenchmarkE5Authentication(b *testing.B) {
	runExperiment(b, experiments.E5Authentication, map[string]string{
		"pseudo-scans-200": "pseudonym(linear)/200/scans",
		"hybrid-scans-200": "hybrid/200/scans",
	})
}

// BenchmarkE6AccessControl regenerates the policy-decision latency
// table.
func BenchmarkE6AccessControl(b *testing.B) {
	runExperiment(b, experiments.E6AccessControl, map[string]string{
		"ns-100policies": "100/ns",
	})
}

// BenchmarkE7TaskHandover regenerates the handover-vs-drop table.
func BenchmarkE7TaskHandover(b *testing.B) {
	runExperiment(b, experiments.E7TaskHandover, map[string]string{
		"drop-waste":     "drop/wasted",
		"handover-waste": "handover(route)/wasted",
	})
}

// BenchmarkE8Replication regenerates the replication/availability
// sweep.
func BenchmarkE8Replication(b *testing.B) {
	runExperiment(b, experiments.E8Replication, map[string]string{
		"k3-avail": "k3/churn0.05/availability",
		"k1-avail": "k1/churn0.05/availability",
	})
}

// BenchmarkE9Trust regenerates the trust-validator accuracy table.
func BenchmarkE9Trust(b *testing.B) {
	runExperiment(b, experiments.E9Trust, map[string]string{
		"bayes-path-30": "bayesian+path/0.3/accuracy",
		"reput-rot-30":  "reputation(rotating)/0.3/accuracy",
	})
}

// BenchmarkE10Attacks regenerates the attack/defense drill.
func BenchmarkE10Attacks(b *testing.B) {
	runExperiment(b, experiments.E10Attacks, map[string]string{
		"dos-flooded": "dos/flooded",
		"dos-clean":   "dos/clean",
	})
}

// BenchmarkE11Failover regenerates the controller-crash drill: task
// completion rate and recovery latency with checkpoint failover on vs
// off, under the same scripted kill-controller fault plan.
func BenchmarkE11Failover(b *testing.B) {
	runExperiment(b, experiments.E11Failover, map[string]string{
		"failover-completion": "failover/completion",
		"baseline-completion": "baseline/completion",
		"recovery-s":          "failover/recovery_s",
	})
}

// BenchmarkE12Dependability regenerates the Byzantine-worker drill:
// correct-completion rate for the single-replica baseline vs the
// trust-gated voting policy at the highest Byzantine fraction.
func BenchmarkE12Dependability(b *testing.B) {
	runExperiment(b, experiments.E12Dependability, map[string]string{
		"baseline-correct":   "baseline/byz0.6/correct",
		"trustgated-correct": "trustgated/byz0.6/correct",
		"trustgated-wrong":   "trustgated/byz0.6/wrong",
	})
}

// BenchmarkE13SplitBrain regenerates the split-brain drill: duplicate
// applied outcomes and two-controller exposure with epoch fencing on vs
// failover-only, under the same scripted controller isolation.
func BenchmarkE13SplitBrain(b *testing.B) {
	runExperiment(b, experiments.E13SplitBrain, map[string]string{
		"baseline-duplicates": "baseline/duplicates",
		"fenced-duplicates":   "fenced/duplicates",
		"fenced-exposure-s":   "fenced/exposure_s",
		"fenced-reconcile-s":  "fenced/reconcile_s",
	})
}

// BenchmarkE14Storage regenerates the storage-durability drill: acked
// writes lost at the fastest churn for the unreplicated strawman vs the
// quorum and erasure-coded arms, plus the erasure-coded read latency
// advantage over whole-copy transfer.
func BenchmarkE14Storage(b *testing.B) {
	runExperiment(b, experiments.E14Storage, map[string]string{
		"unrepl-lost-frac": "unreplicated/churn=2s/lost_frac",
		"quorum3-lost":     "quorum n=3/churn=2s/lost_frac",
		"ec42-lost":        "ec 4+2/churn=2s/lost_frac",
		"ec42-p50ms":       "ec 4+2/churn=2s/p50ms",
		"quorum3-p50ms":    "quorum n=3/churn=2s/p50ms",
	})
}

// BenchmarkE15DAGExecution regenerates the DAG-under-churn drill:
// completion rate at storm churn for naive whole-job restart vs
// critical-path replication, plus the crit-path arm's wasted-work edge
// over replicating every stage.
func BenchmarkE15DAGExecution(b *testing.B) {
	runExperiment(b, experiments.E15DAGExecution, map[string]string{
		"naive-rate":  "naive restart/churn=2s x2/rate",
		"crit-rate":   "crit-path/churn=2s x2/rate",
		"crit-wasted": "crit-path/churn=2s x2/wasted",
		"all-wasted":  "replicate-all/churn=2s x2/wasted",
		"rsu-p50s":    "crit+RSU/churn=2s x2/p50s",
	})
}

// BenchmarkE16CongestionPlacement regenerates the congestion-placement
// drill: required-work deadline-hit rate under a saturating load ramp
// with loss bursts, for static cloud offload vs the congestion-blind
// governor vs adaptive placement on live estimates.
func BenchmarkE16CongestionPlacement(b *testing.B) {
	runExperiment(b, experiments.E16CongestionPlacement, map[string]string{
		"static-hitrate":   "static/hitrate",
		"blind-hitrate":    "blind/hitrate",
		"adaptive-hitrate": "adaptive/hitrate",
		"adaptive-shed":    "adaptive/shed",
	})
}

// BenchmarkE17ShardedKernel regenerates the sharded-kernel invariance
// sweep: cross-shard traffic at 4 and 8 shards plus the whole-sweep
// identity verdict (1.0 = every shard count reproduced serial output).
func BenchmarkE17ShardedKernel(b *testing.B) {
	runExperiment(b, experiments.E17ShardedKernel, map[string]string{
		"identical":       "identical",
		"s4-cross-events": "s4/cross_events",
		"s8-cross-events": "s8/cross_events",
	})
}

// BenchmarkBatchVerification regenerates the DESIGN.md batch-verification
// ablation ([21]/[44]): amortized batch checks vs individual signature
// verification, in real CPU time and saved virtual time.
func BenchmarkBatchVerification(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	gm, err := cryptoprim.NewGroupManager("g", rng)
	if err != nil {
		b.Fatal(err)
	}
	cred, err := gm.Enroll("m", rng)
	if err != nil {
		b.Fatal(err)
	}
	msgs := make([][]byte, 64)
	sigs := make([]cryptoprim.GroupSig, 64)
	for i := range msgs {
		msgs[i] = []byte{byte(i)}
		sigs[i] = cred.Sign(msgs[i], uint64(i))
	}
	b.Run("individual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range msgs {
				if !cryptoprim.VerifyGroupSig(gm.PublicKey(), msgs[j], sigs[j]) {
					b.Fatal("verify failed")
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		var saved sim.Time
		for i := 0; i < b.N; i++ {
			k := sim.NewKernel(1)
			bv, err := auth.NewBatchVerifier(k, auth.CostModel{}, auth.DefaultBatchWindow)
			if err != nil {
				b.Fatal(err)
			}
			for j := range msgs {
				bv.Submit(gm.PublicKey(), msgs[j], sigs[j], nil)
			}
			bv.Flush()
			if err := k.Run(0); err != nil {
				b.Fatal(err)
			}
			saved = bv.SavedTime
		}
		b.ReportMetric(float64(saved)/1e6, "saved-virtual-ms")
	})
}
