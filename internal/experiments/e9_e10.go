package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"vcloud/internal/attack"
	"vcloud/internal/geo"
	"vcloud/internal/metrics"
	"vcloud/internal/radio"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/trust"
	"vcloud/internal/vnet"
)

// E9Trust measures message-content validation accuracy against the
// attacker fraction, for every validator in internal/trust. It
// operationalizes §III.D: sender reputation fails under ephemeral,
// rotating identities, while content-centric validators (voting,
// distance-weighted Bayesian, path-diversity) survive; an additional
// "reputation(stable-ids)" arm shows reputation *would* work if
// identities persisted — exactly the paper's diagnosis.
func E9Trust(cfg Config) (*Result, error) {
	attackerFracs := []float64{0.1, 0.3}
	if !cfg.Quick {
		attackerFracs = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	events := pick(cfg, 200, 1000)
	reportersPerEvent := 12

	table := metrics.NewTable(
		"E9 — Trust validators vs attacker fraction",
		"validator", "attackers", "accuracy", "undecided",
	)
	values := map[string]float64{}

	type arm struct {
		name      string
		mk        func() trust.Validator
		stableIDs bool
		feedback  bool
	}
	arms := []arm{
		{"voting", func() trust.Validator { return trust.MajorityVote{} }, false, false},
		{"bayesian", func() trust.Validator { return trust.DistanceWeighted{} }, false, false},
		{"bayesian+path", func() trust.Validator { return trust.PathDiverse{Inner: trust.DistanceWeighted{}} }, false, false},
		{"reputation(rotating)", nil, false, true},
		{"reputation(stable)", nil, true, true},
	}

	type sweep struct {
		a    arm
		frac float64
	}
	var sweeps []sweep
	for _, a := range arms {
		for _, frac := range attackerFracs {
			sweeps = append(sweeps, sweep{a, frac})
		}
	}
	kernelEvents, wall, err := assemble(cfg, table, values, len(sweeps), func(idx int, p *point) error {
		a, frac := sweeps[idx].a, sweeps[idx].frac
		{
			rng := rand.New(rand.NewSource(cfg.Seed))
			var validator trust.Validator
			var reput *trust.Reputation
			if a.mk != nil {
				validator = a.mk()
			} else {
				reput = trust.NewReputation()
				validator = reput
			}
			nAttack := int(float64(reportersPerEvent) * frac)
			nHonest := reportersPerEvent - nAttack

			// Stable identities for the stable-reputation arm.
			stableTokens := make([]trust.Token, reportersPerEvent)
			for i := range stableTokens {
				rng.Read(stableTokens[i][:])
			}

			correct, undecided := 0, 0
			for e := 0; e < events; e++ {
				eventReal := rng.Float64() < 0.5
				eventPos := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
				g := &trust.Group{Event: trust.Event{Type: "hazard", Pos: eventPos}}
				tokenAt := func(i int) trust.Token {
					if a.stableIDs {
						return stableTokens[i]
					}
					var t trust.Token
					rng.Read(t[:]) // rotating pseudonym: fresh every event
					return t
				}
				// Honest reporters: near the event, truthful with 10%
				// observation noise, each over its own path.
				for i := 0; i < nHonest; i++ {
					claim := eventReal
					if rng.Float64() < 0.1 {
						claim = !claim
					}
					off := geo.Point{X: eventPos.X + rng.Float64()*100 - 50, Y: eventPos.Y + rng.Float64()*100 - 50}
					g.Reports = append(g.Reports, trust.Report{
						Reporter: tokenAt(i), Claim: claim, ReporterPos: off,
						PathID: uint64(1000 + i),
					})
				}
				// Attackers: coordinated lie, farther away, amplified
				// over a single shared path (Sybil-flavoured).
				for i := 0; i < nAttack; i++ {
					off := geo.Point{X: eventPos.X + 300 + rng.Float64()*200, Y: eventPos.Y}
					g.Reports = append(g.Reports, trust.Report{
						Reporter: tokenAt(nHonest + i), Claim: !eventReal, ReporterPos: off,
						PathID: 7, // shared path
					})
					// Amplification: each attacker echoes twice more.
					for k := 0; k < 2; k++ {
						g.Reports = append(g.Reports, trust.Report{
							Reporter: tokenAt(nHonest + i), Claim: !eventReal, ReporterPos: off,
							PathID: 7,
						})
					}
				}
				score := validator.Score(g)
				decided, unknown := trust.Decide(score, 0.05)
				switch {
				case unknown:
					undecided++
				case decided == eventReal:
					correct++
				}
				// Ground truth feedback for reputation arms.
				if a.feedback && reput != nil {
					for _, r := range g.Reports {
						reput.Feedback(r.Reporter, r.Claim == eventReal)
					}
				}
			}
			acc := float64(correct) / float64(events)
			und := float64(undecided) / float64(events)
			p.addRow(a.name, metrics.Pct(frac), metrics.Pct(acc), metrics.Pct(und))
			key := fmt.Sprintf("%s/%.1f", a.name, frac)
			p.set(key+"/accuracy", acc)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E9", Title: "trust", Table: table, Values: values,
		KernelEvents: kernelEvents, KernelWall: wall}, nil
}

// E10Attacks is the security drill: each §III network-layer attack runs
// against its defense and the table reports the attack's effect with and
// without the defense in place. The four drills decompose into eight
// independent runs (each with its own kernel), so they parallelize like
// any other sweep; the table is assembled from the collected results in
// drill order.
func E10Attacks(cfg Config) (*Result, error) {
	table := metrics.NewTable(
		"E10 — Attack/defense drill (§III threat list)",
		"attack", "metric", "undefended", "defended",
	)
	values := map[string]float64{}

	// --- Eavesdropping / tracking: beacon rate is the defense knob.
	track := func(p *point, beaconPeriod sim.Time) float64 {
		net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 2000, Segments: 2, SpeedLimit: 25, Lanes: 2})
		if err != nil {
			return -1
		}
		s, err := scenario.New(scenario.Spec{
			Seed: cfg.Seed, Network: net,
			NumVehicles: pick(cfg, 15, 30), BeaconPeriod: beaconPeriod,
		})
		if err != nil {
			return -1
		}
		spy, err := attack.NewEavesdropper(s.Medium, radio.NodeID(1<<24), geo.Point{X: 1000, Y: 15})
		if err != nil {
			return -1
		}
		if err := s.Start(); err != nil {
			return -1
		}
		if err := s.RunFor(sim.Time(pick(cfg, 30, 90)) * time.Second); err != nil {
			return -1
		}
		p.tally(s.Kernel)
		acc, links := spy.TrackingAccuracy(30, 3*time.Second)
		if links == 0 {
			return 0
		}
		return acc
	}

	// --- DoS flood: channel delivery share with and without the flood.
	dos := func(p *point, flood bool) float64 {
		net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 2000, Segments: 2, SpeedLimit: 25, Lanes: 2})
		if err != nil {
			return -1
		}
		s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: pick(cfg, 15, 30)})
		if err != nil {
			return -1
		}
		if flood {
			if _, err := attack.NewFlooder(s.Kernel, s.Medium, radio.NodeID(1<<24), geo.Point{X: 1000, Y: 15}, 2000, 1500); err != nil {
				return -1
			}
		}
		if err := s.Start(); err != nil {
			return -1
		}
		if err := s.RunFor(sim.Time(pick(cfg, 20, 60)) * time.Second); err != nil {
			return -1
		}
		p.tally(s.Kernel)
		st := s.Medium.Stats()
		total := st.Delivered + st.LostLoad
		if total == 0 {
			return 0
		}
		return float64(st.Delivered) / float64(total)
	}

	// --- Suppression: delivery through an honest vs compromised relay.
	supp := func(p *point, compromised bool) float64 {
		k := sim.NewKernel(cfg.Seed)
		bounds := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000})
		m, err := radio.NewMedium(k, bounds, radio.DefaultParams())
		if err != nil {
			return -1
		}
		nodes, err := chainNodes(k, m, 3, 140)
		if err != nil {
			return -1
		}
		got := 0
		final := func(msg vnet.Message, relayer vnet.Addr) { got++ }
		relay := func(msg vnet.Message, relayer vnet.Addr) {
			nodes[1].Forward(nodes[2].Addr(), msg)
		}
		nodes[2].Handle("data", final)
		if compromised {
			rng := rand.New(rand.NewSource(cfg.Seed))
			if _, err := attack.InstallSuppressor(nodes[1], "data", relay, 0.6, 0, rng.Float64); err != nil {
				return -1
			}
		} else {
			nodes[1].Handle("data", relay)
		}
		const n = 50
		for i := 0; i < n; i++ {
			i := i
			k.At(sim.Time(i)*100*time.Millisecond, func() {
				nodes[0].SendTo(nodes[1].Addr(), nodes[0].NewMessage(nodes[2].Addr(), "data", 200, 4, i))
			})
		}
		if err := k.Run(time.Minute); err != nil {
			return -1
		}
		p.tally(k)
		return float64(got) / n
	}

	// --- Sybil amplification vs path-diverse trust (analytic replay of
	// the E9 mechanics at a fixed fraction; pure computation, no kernel).
	sybil := func(pathDiverse bool) float64 {
		rng := rand.New(rand.NewSource(cfg.Seed))
		var v trust.Validator = trust.MajorityVote{}
		if pathDiverse {
			v = trust.PathDiverse{Inner: trust.DistanceWeighted{}}
		}
		events := pick(cfg, 200, 600)
		correct := 0
		for e := 0; e < events; e++ {
			eventReal := rng.Float64() < 0.5
			pos := geo.Point{X: 500, Y: 500}
			g := &trust.Group{Event: trust.Event{Type: "hazard", Pos: pos}}
			for i := 0; i < 5; i++ { // honest
				claim := eventReal
				if rng.Float64() < 0.1 {
					claim = !claim
				}
				g.Reports = append(g.Reports, trust.Report{
					Claim: claim, ReporterPos: geo.Point{X: 480 + rng.Float64()*40, Y: 500},
					PathID: uint64(100 + i),
				})
			}
			for i := 0; i < 8; i++ { // one sybil attacker, 8 identities, one path
				g.Reports = append(g.Reports, trust.Report{
					Claim: !eventReal, ReporterPos: geo.Point{X: 900, Y: 500}, PathID: 7,
				})
			}
			score := v.Score(g)
			decided, unknown := trust.Decide(score, 0.05)
			if !unknown && decided == eventReal {
				correct++
			}
		}
		return float64(correct) / float64(events)
	}

	// Eight independent runs, indexed in drill order.
	jobs := []func(p *point) float64{
		func(p *point) float64 { return track(p, 200*time.Millisecond) }, // aggressive beaconing
		func(p *point) float64 { return track(p, 2*time.Second) },        // sparse beaconing (defense)
		func(p *point) float64 { return dos(p, false) },
		func(p *point) float64 { return dos(p, true) },
		func(p *point) float64 { return supp(p, false) },
		func(p *point) float64 { return supp(p, true) },
		func(p *point) float64 { return sybil(false) },
		func(p *point) float64 { return sybil(true) },
	}
	res := make([]float64, len(jobs))
	kernelEvents, wall, err := assemble(cfg, table, values, len(jobs), func(i int, p *point) error {
		res[i] = jobs[i](p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	trackFast, trackSlow := res[0], res[1]
	dosClean, dosFlood := res[2], res[3]
	suppHonest, suppBad := res[4], res[5]
	sybVote, sybDiverse := res[6], res[7]

	table.AddRow("eavesdrop/track", "link accuracy",
		metrics.Pct(trackFast), metrics.Pct(trackSlow))
	values["tracking/fast"] = trackFast
	values["tracking/slow"] = trackSlow
	table.AddRow("DoS flood", "delivery share", metrics.Pct(dosFlood), metrics.Pct(dosClean))
	values["dos/clean"] = dosClean
	values["dos/flooded"] = dosFlood
	table.AddRow("suppression", "relay delivery", metrics.Pct(suppBad), metrics.Pct(suppHonest))
	values["suppression/honest"] = suppHonest
	values["suppression/compromised"] = suppBad
	table.AddRow("sybil", "decision accuracy", metrics.Pct(sybVote), metrics.Pct(sybDiverse))
	values["sybil/voting"] = sybVote
	values["sybil/diverse"] = sybDiverse

	return &Result{ID: "E10", Title: "attacks", Table: table, Values: values,
		KernelEvents: kernelEvents, KernelWall: wall}, nil
}
