package experiments

import (
	"fmt"
	"time"

	"vcloud/internal/cluster"
	"vcloud/internal/metrics"
	"vcloud/internal/roadnet"
	"vcloud/internal/routing"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// E3ClusterStability measures cluster-head churn and clustered time for
// the three clustering algorithms across vehicle speeds — the §IV.A.1
// claim that mobility-aware head election stabilizes clusters.
func E3ClusterStability(cfg Config) (*Result, error) {
	vehicles := pick(cfg, 30, 60)
	runFor := sim.Time(pick(cfg, 60, 300)) * time.Second
	speeds := []float64{15, 30}
	if !cfg.Quick {
		speeds = []float64{10, 20, 30, 40}
	}

	table := metrics.NewTable(
		"E3 — Cluster stability vs speed",
		"algorithm", "speed m/s", "head-chg/node/min", "clustered %", "clusters",
	)
	values := map[string]float64{}

	algos := []cluster.Algorithm{
		cluster.LowestID{},
		cluster.MobilitySimilarity{},
		cluster.PassiveMultiHop{MaxHops: 2},
	}
	type sweep struct {
		algo  cluster.Algorithm
		speed float64
	}
	var sweeps []sweep
	for _, algo := range algos {
		for _, speed := range speeds {
			sweeps = append(sweeps, sweep{algo, speed})
		}
	}
	events, wall, err := assemble(cfg, table, values, len(sweeps), func(i int, p *point) error {
		algo, speed := sweeps[i].algo, sweeps[i].speed
		net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 3000, Segments: 3, SpeedLimit: speed, Lanes: 2})
		if err != nil {
			return err
		}
		s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: vehicles})
		if err != nil {
			return err
		}
		tracker := cluster.NewTracker()
		runners := make([]*cluster.Runner, 0, vehicles)
		for _, id := range s.VehicleIDs() {
			node, _ := s.Node(id)
			r, err := cluster.NewRunner(node, algo, time.Second, tracker)
			if err != nil {
				return err
			}
			runners = append(runners, r)
		}
		if err := s.Start(); err != nil {
			return err
		}
		if err := s.RunFor(runFor); err != nil {
			return err
		}
		tracker.Finish(s.Kernel.Now())

		churn := tracker.HeadChangesPerNodeMinute(vehicles, runFor)
		clustered := tracker.MeanClusteredSeconds() / runFor.Seconds()
		if clustered > 1 {
			clustered = 1
		}
		heads := 0
		for _, r := range runners {
			if r.State().Role == cluster.Head {
				heads++
			}
		}
		p.addRow(algo.Name(), fmt.Sprintf("%.0f", speed),
			fmt.Sprintf("%.2f", churn), metrics.Pct(clustered), fmt.Sprintf("%d", heads))
		key := fmt.Sprintf("%s/%.0f", algo.Name(), speed)
		p.set(key+"/churn", churn)
		p.set(key+"/clustered", clustered)
		p.tally(s.Kernel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E3", Title: "cluster stability", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}

// E4Routing compares MoZo against greedy-geographic, AODV and epidemic
// flooding across vehicle densities: delivery ratio, median delay, and
// transmissions per delivery (the §IV.A.1 routing discussion, with MoZo
// [22] as the authors' own system).
func E4Routing(cfg Config) (*Result, error) {
	densities := []int{20, 40}
	if !cfg.Quick {
		densities = []int{15, 30, 60, 90}
	}
	packets := pick(cfg, 40, 150)
	warm := 10 * time.Second
	window := sim.Time(pick(cfg, 60, 150)) * time.Second

	table := metrics.NewTable(
		"E4 — Routing protocols vs density",
		"protocol", "vehicles", "delivery", "p50 delay", "tx/delivery",
	)
	values := map[string]float64{}

	type mk struct {
		name string
		make func(s *scenario.Scenario, node *vnet.Node, st *routing.Stats, loc *routing.StaleLoc) (routing.Router, error)
	}
	// Geographic protocols originate against a realistic (stale)
	// location service; MoZo heads refresh stamps from fresh zone
	// knowledge — the design point of [22]. Each sweep point owns one
	// StaleLoc shared by all its routers.
	makers := []mk{
		{"mozo", func(s *scenario.Scenario, node *vnet.Node, st *routing.Stats, loc *routing.StaleLoc) (routing.Router, error) {
			r, err := cluster.NewRunner(node, cluster.MobilitySimilarity{}, time.Second, nil)
			if err != nil {
				return nil, err
			}
			cfg := routing.GeoConfig{Loc: loc, ZoneLoc: routing.OracleLoc{Positions: s.Medium}}
			return routing.NewMoZo(node, st, cfg, r.State, nil)
		}},
		{"greedy", func(s *scenario.Scenario, node *vnet.Node, st *routing.Stats, loc *routing.StaleLoc) (routing.Router, error) {
			return routing.NewGreedy(node, st, routing.GeoConfig{Loc: loc}, nil)
		}},
		{"aodv", func(s *scenario.Scenario, node *vnet.Node, st *routing.Stats, loc *routing.StaleLoc) (routing.Router, error) {
			return routing.NewAODV(node, st, nil)
		}},
		{"epidemic", func(s *scenario.Scenario, node *vnet.Node, st *routing.Stats, loc *routing.StaleLoc) (routing.Router, error) {
			return routing.NewEpidemic(node, st, nil)
		}},
	}

	type sweep struct {
		m       mk
		density int
	}
	var sweeps []sweep
	for _, m := range makers {
		for _, density := range densities {
			sweeps = append(sweeps, sweep{m, density})
		}
	}
	events, wall, err := assemble(cfg, table, values, len(sweeps), func(i int, p *point) error {
		m, density := sweeps[i].m, sweeps[i].density
		net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 3000, Segments: 3, SpeedLimit: 27, Lanes: 2})
		if err != nil {
			return err
		}
		s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: density})
		if err != nil {
			return err
		}
		loc := routing.NewStaleLoc(routing.OracleLoc{Positions: s.Medium}, s.Kernel.Now, 20*time.Second)
		stats := &routing.Stats{}
		var routers []routing.Router
		for _, id := range s.VehicleIDs() {
			node, _ := s.Node(id)
			rt, err := m.make(s, node, stats, loc)
			if err != nil {
				return err
			}
			routers = append(routers, rt)
		}
		if err := s.Start(); err != nil {
			return err
		}
		if err := s.RunFor(warm); err != nil {
			return err
		}
		rng := s.Kernel.NewStream("traffic")
		gap := window / sim.Time(packets+1)
		for i := 0; i < packets; i++ {
			s.Kernel.After(sim.Time(i)*gap, func() {
				src := routers[rng.Intn(len(routers))]
				ids := s.VehicleIDs()
				dst := vnet.Addr(ids[rng.Intn(len(ids))])
				_ = src.Send(dst, 500, nil)
			})
		}
		if err := s.RunFor(window + 20*time.Second); err != nil {
			return err
		}
		p.addRow(m.name, fmt.Sprintf("%d", density),
			metrics.Pct(stats.DeliveryRatio()),
			metrics.Ms(stats.Latency.Percentile(50)),
			fmt.Sprintf("%.1f", stats.OverheadPerDelivery()))
		key := fmt.Sprintf("%s/%d", m.name, density)
		p.set(key+"/delivery", stats.DeliveryRatio())
		p.set(key+"/overhead", stats.OverheadPerDelivery())
		p.set(key+"/p50ms", stats.Latency.Percentile(50))
		p.tally(s.Kernel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E4", Title: "routing", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}
