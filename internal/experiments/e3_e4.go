package experiments

import (
	"fmt"
	"time"

	"vcloud/internal/cluster"
	"vcloud/internal/metrics"
	"vcloud/internal/roadnet"
	"vcloud/internal/routing"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// E3ClusterStability measures cluster-head churn and clustered time for
// the three clustering algorithms across vehicle speeds — the §IV.A.1
// claim that mobility-aware head election stabilizes clusters.
func E3ClusterStability(cfg Config) (*Result, error) {
	vehicles := pick(cfg, 30, 60)
	runFor := sim.Time(pick(cfg, 60, 300)) * time.Second
	speeds := []float64{15, 30}
	if !cfg.Quick {
		speeds = []float64{10, 20, 30, 40}
	}

	table := metrics.NewTable(
		"E3 — Cluster stability vs speed",
		"algorithm", "speed m/s", "head-chg/node/min", "clustered %", "clusters",
	)
	values := map[string]float64{}

	algos := []cluster.Algorithm{
		cluster.LowestID{},
		cluster.MobilitySimilarity{},
		cluster.PassiveMultiHop{MaxHops: 2},
	}
	for _, algo := range algos {
		for _, speed := range speeds {
			net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 3000, Segments: 3, SpeedLimit: speed, Lanes: 2})
			if err != nil {
				return nil, err
			}
			s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: vehicles})
			if err != nil {
				return nil, err
			}
			tracker := cluster.NewTracker()
			runners := make([]*cluster.Runner, 0, vehicles)
			for _, id := range s.VehicleIDs() {
				node, _ := s.Node(id)
				r, err := cluster.NewRunner(node, algo, time.Second, tracker)
				if err != nil {
					return nil, err
				}
				runners = append(runners, r)
			}
			if err := s.Start(); err != nil {
				return nil, err
			}
			if err := s.RunFor(runFor); err != nil {
				return nil, err
			}
			tracker.Finish(s.Kernel.Now())

			churn := tracker.HeadChangesPerNodeMinute(vehicles, runFor)
			clustered := tracker.MeanClusteredSeconds() / runFor.Seconds()
			if clustered > 1 {
				clustered = 1
			}
			heads := 0
			for _, r := range runners {
				if r.State().Role == cluster.Head {
					heads++
				}
			}
			table.AddRow(algo.Name(), fmt.Sprintf("%.0f", speed),
				fmt.Sprintf("%.2f", churn), metrics.Pct(clustered), fmt.Sprintf("%d", heads))
			key := fmt.Sprintf("%s/%.0f", algo.Name(), speed)
			values[key+"/churn"] = churn
			values[key+"/clustered"] = clustered
		}
	}
	return &Result{ID: "E3", Title: "cluster stability", Table: table, Values: values}, nil
}

// E4Routing compares MoZo against greedy-geographic, AODV and epidemic
// flooding across vehicle densities: delivery ratio, median delay, and
// transmissions per delivery (the §IV.A.1 routing discussion, with MoZo
// [22] as the authors' own system).
func E4Routing(cfg Config) (*Result, error) {
	densities := []int{20, 40}
	if !cfg.Quick {
		densities = []int{15, 30, 60, 90}
	}
	packets := pick(cfg, 40, 150)
	warm := 10 * time.Second
	window := sim.Time(pick(cfg, 60, 150)) * time.Second

	table := metrics.NewTable(
		"E4 — Routing protocols vs density",
		"protocol", "vehicles", "delivery", "p50 delay", "tx/delivery",
	)
	values := map[string]float64{}

	type mk struct {
		name string
		make func(s *scenario.Scenario, node *vnet.Node, st *routing.Stats) (routing.Router, error)
	}
	// Geographic protocols originate against a realistic (stale)
	// location service; MoZo heads refresh stamps from fresh zone
	// knowledge — the design point of [22].
	staleFor := func(s *scenario.Scenario) *routing.StaleLoc {
		return routing.NewStaleLoc(routing.OracleLoc{Positions: s.Medium}, s.Kernel.Now, 20*time.Second)
	}
	staleByScenario := map[*scenario.Scenario]*routing.StaleLoc{}
	lookup := func(s *scenario.Scenario) *routing.StaleLoc {
		if sl, ok := staleByScenario[s]; ok {
			return sl
		}
		sl := staleFor(s)
		staleByScenario[s] = sl
		return sl
	}
	makers := []mk{
		{"mozo", func(s *scenario.Scenario, node *vnet.Node, st *routing.Stats) (routing.Router, error) {
			r, err := cluster.NewRunner(node, cluster.MobilitySimilarity{}, time.Second, nil)
			if err != nil {
				return nil, err
			}
			cfg := routing.GeoConfig{Loc: lookup(s), ZoneLoc: routing.OracleLoc{Positions: s.Medium}}
			return routing.NewMoZo(node, st, cfg, r.State, nil)
		}},
		{"greedy", func(s *scenario.Scenario, node *vnet.Node, st *routing.Stats) (routing.Router, error) {
			return routing.NewGreedy(node, st, routing.GeoConfig{Loc: lookup(s)}, nil)
		}},
		{"aodv", func(s *scenario.Scenario, node *vnet.Node, st *routing.Stats) (routing.Router, error) {
			return routing.NewAODV(node, st, nil)
		}},
		{"epidemic", func(s *scenario.Scenario, node *vnet.Node, st *routing.Stats) (routing.Router, error) {
			return routing.NewEpidemic(node, st, nil)
		}},
	}

	for _, m := range makers {
		for _, density := range densities {
			net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 3000, Segments: 3, SpeedLimit: 27, Lanes: 2})
			if err != nil {
				return nil, err
			}
			s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: density})
			if err != nil {
				return nil, err
			}
			stats := &routing.Stats{}
			var routers []routing.Router
			for _, id := range s.VehicleIDs() {
				node, _ := s.Node(id)
				rt, err := m.make(s, node, stats)
				if err != nil {
					return nil, err
				}
				routers = append(routers, rt)
			}
			if err := s.Start(); err != nil {
				return nil, err
			}
			if err := s.RunFor(warm); err != nil {
				return nil, err
			}
			rng := s.Kernel.NewStream("traffic")
			gap := window / sim.Time(packets+1)
			for i := 0; i < packets; i++ {
				s.Kernel.After(sim.Time(i)*gap, func() {
					src := routers[rng.Intn(len(routers))]
					ids := s.VehicleIDs()
					dst := vnet.Addr(ids[rng.Intn(len(ids))])
					_ = src.Send(dst, 500, nil)
				})
			}
			if err := s.RunFor(window + 20*time.Second); err != nil {
				return nil, err
			}
			table.AddRow(m.name, fmt.Sprintf("%d", density),
				metrics.Pct(stats.DeliveryRatio()),
				metrics.Ms(stats.Latency.Percentile(50)),
				fmt.Sprintf("%.1f", stats.OverheadPerDelivery()))
			key := fmt.Sprintf("%s/%d", m.name, density)
			values[key+"/delivery"] = stats.DeliveryRatio()
			values[key+"/overhead"] = stats.OverheadPerDelivery()
			values[key+"/p50ms"] = stats.Latency.Percentile(50)
		}
	}
	return &Result{ID: "E4", Title: "routing", Table: table, Values: values}, nil
}
