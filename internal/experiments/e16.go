package experiments

import (
	"fmt"
	"time"

	"vcloud/internal/metrics"
	"vcloud/internal/radio"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
)

// E16CongestionPlacement measures the value of congestion *feedback* in
// offload placement (§III's resource-management challenge under a
// shared, lossy uplink). Three placement strategies run the identical
// seeded task stream — a load ramp that crosses the cloud uplink's
// capacity, with seeded loss bursts layered on top — against the
// identical three destinations: the vehicular cloud itself, an RSU edge
// server behind a fast short-range link, and a conventional cloud
// behind a contended 8 Mbps uplink:
//
//   - static: the conventional answer — every task goes to the cloud,
//     whatever the channel is doing;
//   - blind: the placement governor with feedback disabled — it ranks
//     tiers by nameplate bandwidth and its own backlog, so it load-
//     balances but cannot see loss bursts or queue growth on the
//     channel (admission control, backpressure and shedding still
//     apply — this arm isolates exactly the feedback signal);
//   - adaptive: the full governor, fed by a delay-gradient bandwidth
//     estimator (internal/radio/gcc.go) riding the cloud uplink's own
//     traffic, plus live queue-delay and loss measurements.
//
// Every task carries a deadline; the score is the deadline-hit rate of
// *required* work (completions past their deadline count as misses, so
// a backend that buffers without bound cannot launder lateness into
// success). The claim under test: once offered load crosses the knee,
// adaptive placement beats both the static and the congestion-blind
// arms on required-work deadline hits, because it reroutes around the
// collapsed channel and sheds optional work before it starves required
// work.
func E16CongestionPlacement(cfg Config) (*Result, error) {
	const vehicles = 16
	horizon := sim.Time(pick(cfg, 80, 160)) * time.Second
	const (
		beat        = 250 * time.Millisecond
		submitUntil = 0.8 // stop submitting here; the tail drains in-flight work
		deadline    = 8 * time.Second
		maxBatch    = 10
		optionFrac  = 0.4
		cloudMbps   = 8
		edgeMbps    = 4
		taskOps     = 1500.0
		inBytes     = 40_000
		outBytes    = 10_000
	)

	type arm struct{ name string }
	arms := []arm{{"static"}, {"blind"}, {"adaptive"}}

	table := metrics.NewTable(
		"E16 — Static vs congestion-blind vs adaptive offload placement (§III overload)",
		"placement", "submitted", "required", "hit-rate", "shed", "rejected", "veh/edge/cloud",
	)
	values := map[string]float64{}

	events, wall, err := assemble(cfg, table, values, len(arms), func(i int, p *point) error {
		a := arms[i]
		net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 4, AisleLenM: 150, AisleGapM: 40})
		if err != nil {
			return err
		}
		s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: vehicles, Parked: true})
		if err != nil {
			return err
		}
		stats := &vcloud.Stats{}
		dep, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
		if err != nil {
			return err
		}

		// The shared cloud uplink: contended, so concurrent transfers
		// queue and tail-drop — the channel the estimator instruments.
		cloudUp, err := radio.NewUplink(s.Kernel, radio.UplinkParams{
			BaseRTT: 60 * time.Millisecond, BandwidthMbps: cloudMbps,
			LossProb: 0.02, JitterFrac: 0.1, Contended: true,
		})
		if err != nil {
			return err
		}
		// The senders' rate floors sit at 5% of nameplate: an estimate
		// pinned at the floor still prices the channel as bad, without
		// modeling transfer times no real channel would produce.
		sender := cloudUp.NewSender(radio.BWEConfig{MinBps: cloudMbps * 1e6 / 20})
		cloud, err := vcloud.NewRemoteCloudSender("cloud", s.Kernel, sender, 50_000, stats)
		if err != nil {
			return err
		}
		// The RSU edge: a beefy MEC box the churnless roadside owns, but
		// behind a narrow shared short-range link — partial relief, not a
		// second datacenter.
		edgeUp, err := radio.NewUplink(s.Kernel, radio.UplinkParams{
			BaseRTT: 10 * time.Millisecond, BandwidthMbps: edgeMbps,
			LossProb: 0.005, JitterFrac: 0.1, Contended: true,
		})
		if err != nil {
			return err
		}
		edgeSender := edgeUp.NewSender(radio.BWEConfig{MinBps: edgeMbps * 1e6 / 20})
		edge, err := vcloud.NewRemoteCloudSender("rsu-edge", s.Kernel, edgeSender, 20_000, stats)
		if err != nil {
			return err
		}

		var gov *vcloud.Governor
		if a.name != "static" {
			gov, err = vcloud.NewGovernor(s.Kernel, vcloud.GovernorConfig{
				Blind: a.name == "blind",
				Tiers: []vcloud.GovernorTier{
					// The vehicle tier's model is honest about the cluster's
					// costs: effective throughput far below the fleet's
					// nameplate sum (replication, coordination), and the V2V
					// mesh is not free for 40 kB payloads.
					{Tier: vcloud.TierVehicle, Backend: vcloud.DeploymentBackend{D: dep},
						CPU: 4000, NominalBps: 2e6, BaseRTT: 20 * time.Millisecond, QueueLimit: 128},
					// The edge and cloud tiers' governor CPU figures model
					// their *aggregate* drain rate: datacenters run admitted
					// tasks in parallel, so their bottleneck is the link —
					// which the queue-delay and bandwidth terms already
					// price — not a serial compute backlog.
					{Tier: vcloud.TierEdge, Backend: edge, CPU: 1e6,
						NominalBps: edgeMbps * 1e6, BaseRTT: 10 * time.Millisecond, Sender: edgeSender, QueueLimit: 128},
					{Tier: vcloud.TierCloud, Backend: cloud, CPU: 2e6,
						NominalBps: cloudMbps * 1e6, BaseRTT: 60 * time.Millisecond, Sender: sender, QueueLimit: 128},
				},
			}, stats)
			if err != nil {
				return err
			}
		}

		if err := s.Start(); err != nil {
			return err
		}
		if err := s.RunFor(5 * time.Second); err != nil {
			return err
		}

		// Seeded loss bursts on the cloud uplink: every 8 s the loss
		// probability spikes for a few seconds. The schedule derives from
		// the "e16.loss" stream, so all three arms face identical weather.
		lossRng := s.Kernel.NewStream("e16.loss")
		burstT, err := s.Kernel.Every(8*time.Second, func() {
			p := 0.55 + lossRng.Float64()*0.25
			dur := sim.Time((3 + lossRng.Float64()*2) * float64(time.Second))
			cloudUp.SetLossProb(p)
			s.Kernel.After(dur, func() { cloudUp.SetLossProb(0.02) })
		})
		if err != nil {
			return err
		}
		defer burstT.Stop()

		// The ramped task stream: batch size climbs from 1 to maxBatch
		// over the horizon, crossing the uplink's capacity around the
		// midpoint. The mix derives from the "e16.load" stream, so all
		// arms see byte-identical work.
		loadRng := s.Kernel.NewStream("e16.load")
		start := s.Kernel.Now()
		submitted, required, requiredHits := 0, 0, 0
		loadT, err := s.Kernel.Every(beat, func() {
			now := s.Kernel.Now()
			progress := float64(now-start) / float64(horizon)
			if progress > submitUntil {
				return
			}
			batch := 1 + int(progress/submitUntil*float64(maxBatch-1))
			for j := 0; j < batch; j++ {
				optional := loadRng.Float64() < optionFrac
				dl := now + deadline
				task := vcloud.Task{Ops: taskOps, InputBytes: inBytes, OutputBytes: outBytes,
					Deadline: dl, Optional: optional}
				done := func(r vcloud.TaskResult) {
					// A completion past its deadline is a miss: lateness is
					// judged here, not trusted to the backend.
					if r.OK && !optional && s.Kernel.Now() <= dl {
						requiredHits++
					}
				}
				var err error
				if gov != nil {
					err = gov.Submit(task, done)
				} else {
					err = cloud.Submit(task, done)
				}
				if err == nil {
					submitted++
					if !optional {
						required++
					}
				}
			}
		})
		if err != nil {
			return err
		}
		defer loadT.Stop()

		if err := s.RunFor(horizon + 15*time.Second); err != nil {
			return err
		}

		hitRate := 0.0
		if required > 0 {
			hitRate = float64(requiredHits) / float64(required)
		}
		shed := stats.Shed.Value()
		rejected := stats.AdmissionRejects.Value() + stats.Backpressured.Value()
		placed := "-/-/all"
		if gov != nil {
			placed = fmt.Sprintf("%d/%d/%d", gov.Placed(0), gov.Placed(1), gov.Placed(2))
		}
		p.addRow(a.name,
			fmt.Sprintf("%d", submitted),
			fmt.Sprintf("%d", required),
			metrics.Pct(hitRate),
			fmt.Sprintf("%d", shed),
			fmt.Sprintf("%d", rejected),
			placed)
		p.set(a.name+"/hitrate", hitRate)
		p.set(a.name+"/shed", float64(shed))
		p.set(a.name+"/rejected", float64(rejected))
		p.tally(s.Kernel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E16", Title: "congestion-aware offload placement", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}
