package experiments

import (
	"fmt"
	"time"

	"vcloud/internal/faults"
	"vcloud/internal/geo"
	"vcloud/internal/metrics"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
)

// E11Failover measures the dependability claim of §V.A: a vehicular
// cloud whose controller state is replicated to a standby survives a
// controller crash, while the no-failover baseline loses its in-flight
// task table and every later submission. Both arms run the identical
// seeded workload on a stationary cloud (parking lot, gate-RSU
// coordinator) and the identical fault plan — a scripted
// kill-controller event injected through internal/faults — differing
// only in whether checkpoint replication is on. Reported: completion
// rate, submissions refused while headless, failovers/resumed counts,
// and recovery latency (first completion after the crash).
func E11Failover(cfg Config) (*Result, error) {
	vehicles := pick(cfg, 12, 25)
	tasks := pick(cfg, 24, 40)
	crashAt := 22 * time.Second
	horizon := sim.Time(pick(cfg, 90, 180)) * time.Second

	table := metrics.NewTable(
		"E11 — Controller crash: failover vs no-failover (§V.A dependability)",
		"policy", "completion", "refused", "failovers", "resumed", "recovery",
	)
	values := map[string]float64{}

	type arm struct {
		name     string
		failover bool
	}
	arms := []arm{{"baseline", false}, {"failover", true}}
	events, wall, err := assemble(cfg, table, values, len(arms), func(ai int, p *point) error {
		a := arms[ai]
		net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 4, AisleLenM: 150, AisleGapM: 40})
		if err != nil {
			return err
		}
		s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: vehicles, Parked: true})
		if err != nil {
			return err
		}
		if _, err := s.AddRSU(geo.Point{X: 0, Y: 0}); err != nil {
			return err
		}
		stats := &vcloud.Stats{}
		dep, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{Failover: a.failover}, stats)
		if err != nil {
			return err
		}

		// The same seeded controller-crash schedule for both arms.
		inj, err := faults.NewInjector(s)
		if err != nil {
			return err
		}
		inj.OnControllerKill(func(idx int) {
			ctls := dep.ActiveControllers()
			if idx >= 0 && idx < len(ctls) {
				ctls[idx].Crash()
			}
		})
		plan, err := faults.Parse(fmt.Sprintf("%s kill-controller 0", crashAt))
		if err != nil {
			return err
		}
		if err := inj.Schedule(plan); err != nil {
			return err
		}

		// Sample completions after the crash to time recovery: the first
		// completion past the crash instant marks the cloud working again.
		var atCrash uint64
		recovery := -1.0
		s.Kernel.At(crashAt, func() { atCrash = stats.Completed.Value() })
		probe := func() {
			if recovery < 0 && stats.Completed.Value() > atCrash {
				recovery = (s.Kernel.Now() - crashAt).Seconds()
			}
		}
		if _, err := s.Kernel.Every(500*time.Millisecond, func() {
			if s.Kernel.Now() > crashAt {
				probe()
			}
		}); err != nil {
			return err
		}

		if err := s.Start(); err != nil {
			return err
		}
		if err := s.RunFor(10 * time.Second); err != nil {
			return err
		}

		// Steady workload across the crash: one task every 2 s.
		refused := 0
		for i := 0; i < tasks; i++ {
			s.Kernel.After(sim.Time(i)*2*time.Second, func() {
				if err := dep.SubmitAnywhere(vcloud.Task{Ops: 2000, InputBytes: 2000, OutputBytes: 1000}, nil); err != nil {
					refused++
				}
			})
		}
		if err := s.Run(horizon); err != nil {
			return err
		}

		completion := float64(stats.Completed.Value()) / float64(tasks)
		recoveryCell := "never"
		if recovery >= 0 {
			recoveryCell = fmt.Sprintf("%.1fs", recovery)
		}
		p.addRow(a.name,
			metrics.Pct(completion),
			fmt.Sprintf("%d", refused),
			fmt.Sprintf("%d", stats.Failovers.Value()),
			fmt.Sprintf("%d", stats.Resumed.Value()),
			recoveryCell)
		p.set(a.name+"/completion", completion)
		p.set(a.name+"/refused", float64(refused))
		p.set(a.name+"/failovers", float64(stats.Failovers.Value()))
		p.set(a.name+"/resumed", float64(stats.Resumed.Value()))
		if recovery < 0 {
			recovery = horizon.Seconds()
		}
		p.set(a.name+"/recovery_s", recovery)
		p.tally(s.Kernel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E11", Title: "controller failover", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}
