package experiments

import (
	"fmt"
	"slices"
	"time"

	"vcloud/internal/faults"
	"vcloud/internal/geo"
	"vcloud/internal/metrics"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/store"
	"vcloud/internal/vnet"
)

// E14Storage measures the §III.A data-storage claim: vehicles are the
// storage nodes, so member churn is the availability problem, and the
// answer is redundancy — whole-copy quorums or erasure coding — plus
// churn-driven repair. Five arms run the identical seeded workload over
// the identical departure schedule (a vehicle permanently leaves every
// churn period, disk and all; the longest-departed returns wiped once a
// third of the fleet is out):
//
//   - unreplicated: one copy per object (N=1 W=1 R=1) — the strawman
//     every departure can hurt;
//   - quorum n=3 / n=5: strict majority quorums over whole copies;
//   - ec 4+2 / ec 8+4: Reed–Solomon fragments, any K of K+M rebuild.
//
// Reported per arm and churn period: acked writes, acked writes lost
// (the latest acked version of a key became unreconstructible), read
// availability, median read latency (erasure-coded reads fetch K
// fragments in parallel, so they beat whole-copy transfers), and write
// amplification (bytes shipped per acked object, repair included). The
// claim under test: at a churn rate where the unreplicated arm loses
// over 30% of acked writes, every redundant arm loses none — and the
// erasure-coded arms pay less amplification than n-way replication for
// comparable durability.
func E14Storage(cfg Config) (*Result, error) {
	vehicles := pick(cfg, 16, 20)
	keys := pick(cfg, 20, 50)
	horizon := sim.Time(pick(cfg, 40, 120)) * time.Second
	const (
		objSize     = 64 << 10
		writeEvery  = 500 * time.Millisecond
		repairEvery = 2 * time.Second
		checkEvery  = time.Second
	)

	type arm struct {
		name  string
		build func(store.View, *store.Stats) (store.Backend, error)
	}
	arms := []arm{
		{"unreplicated", func(v store.View, st *store.Stats) (store.Backend, error) {
			return store.NewReplicated(store.Config{N: 1, W: 1, R: 1}, v, st)
		}},
		{"quorum n=3", func(v store.View, st *store.Stats) (store.Backend, error) {
			return store.NewReplicated(store.Config{N: 3, W: 2, R: 2}, v, st)
		}},
		{"quorum n=5", func(v store.View, st *store.Stats) (store.Backend, error) {
			return store.NewReplicated(store.Config{N: 5, W: 3, R: 3}, v, st)
		}},
		{"ec 4+2", func(v store.View, st *store.Stats) (store.Backend, error) {
			return store.NewErasureCoded(store.Config{K: 4, M: 2}, v, st)
		}},
		{"ec 8+4", func(v store.View, st *store.Stats) (store.Backend, error) {
			return store.NewErasureCoded(store.Config{K: 8, M: 4, FragAck: 10}, v, st)
		}},
	}
	churns := []sim.Time{20 * time.Second, 5 * time.Second, 2 * time.Second}

	table := metrics.NewTable(
		"E14 — Storage durability & latency vs member churn (§III.A data availability)",
		"backend", "churn", "acked", "lost", "lost%", "avail", "p50 read", "amplification",
	)
	values := map[string]float64{}

	n := len(arms) * len(churns)
	events, wall, err := assemble(cfg, table, values, n, func(i int, p *point) error {
		a := arms[i/len(churns)]
		churn := churns[i%len(churns)]
		churnLabel := fmt.Sprintf("%gs", churn.Seconds())

		net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 4, AisleLenM: 200, AisleGapM: 40})
		if err != nil {
			return err
		}
		s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: vehicles, Parked: true})
		if err != nil {
			return err
		}
		rsu, err := s.AddRSU(geo.Point{X: 0, Y: 0})
		if err != nil {
			return err
		}
		inj, err := faults.NewInjector(s)
		if err != nil {
			return err
		}
		defer inj.Close()

		// The fleet is the storage membership; departures remove members
		// permanently (their copies go with them) until revived wiped.
		fleet := make([]vnet.Addr, 0, vehicles)
		for _, id := range s.VehicleIDs() {
			fleet = append(fleet, vnet.Addr(id))
		}
		departed := map[vnet.Addr]sim.Time{}
		view := store.FuncView{
			MembersFn: func() []vnet.Addr {
				ms := make([]vnet.Addr, 0, len(fleet))
				for _, a := range fleet {
					if _, gone := departed[a]; !gone {
						ms = append(ms, a)
					}
				}
				return ms
			},
			OnlineFn: func(a vnet.Addr) bool {
				if _, gone := departed[a]; gone {
					return false
				}
				return !inj.Cut(rsu.Addr(), a)
			},
		}
		st := &store.Stats{}
		b, err := a.build(view, st)
		if err != nil {
			return err
		}

		if err := s.Start(); err != nil {
			return err
		}

		// Workload: writes rotate over the key space; reads trail behind
		// on their own rotation; repair runs on its own clock.
		acked := map[store.Key]store.Version{}
		lostAt := map[store.Key]store.Version{}
		ackedWrites, lostWrites := 0, 0
		reads, readsOK := 0, 0
		latency := &metrics.Histogram{}
		writeSeq, readSeq := 0, 0
		key := func(seq int) store.Key { return store.Key(fmt.Sprintf("obj-%02d", seq%keys)) }

		if _, err := s.Kernel.Every(writeEvery, func() {
			wk := key(writeSeq)
			writeSeq++
			if ack := store.PutSized(b, "", wk, objSize); ack.Acked {
				ackedWrites++
				acked[wk] = ack.Version
			}
			rk := key(readSeq)
			readSeq++
			reads++
			if res, ok := store.Get(b, "", rk); ok {
				readsOK++
				latency.Observe(res.Latency)
			}
		}); err != nil {
			return err
		}
		if _, err := s.Kernel.Every(repairEvery, func() { store.Fix(b) }); err != nil {
			return err
		}

		// Churn clock: one permanent departure per period, drawn from the
		// kernel's named stream so the schedule replays under the seed.
		rng := s.Kernel.NewStream("e14.churn")
		if _, err := s.Kernel.Every(churn, func() {
			if len(departed) > vehicles/3 {
				// Revive the longest-departed vehicle, wiped.
				var pick vnet.Addr = -1
				var when sim.Time
				for _, a := range fleet {
					if t, gone := departed[a]; gone && (pick < 0 || t < when) {
						pick, when = a, t
					}
				}
				delete(departed, pick)
				inj.RecoverNode(pick)
			}
			var pool []vnet.Addr
			for _, a := range fleet {
				if _, gone := departed[a]; !gone {
					pool = append(pool, a)
				}
			}
			if len(pool) == 0 {
				return
			}
			v := pool[rng.Intn(len(pool))]
			departed[v] = s.Kernel.Now()
			inj.CrashNode(v)
			b.Forget(v)
		}); err != nil {
			return err
		}

		// Durability audit: the latest acked version of every key must
		// reconstruct from surviving disks; each lost version counts once.
		audit := func() {
			for _, wk := range sortedStoreKeys(acked) {
				want := acked[wk]
				v, ok := b.Durable(wk)
				if (!ok || v < want) && lostAt[wk] < want {
					lostAt[wk] = want
					lostWrites++
				}
			}
		}
		if _, err := s.Kernel.Every(checkEvery, audit); err != nil {
			return err
		}

		if err := s.RunFor(horizon); err != nil {
			return err
		}
		audit()

		lostFrac := 0.0
		if ackedWrites > 0 {
			lostFrac = float64(lostWrites) / float64(ackedWrites)
		}
		avail := metrics.Ratio(uint64(readsOK), uint64(reads))
		p50 := 0.0
		if latency.Count() > 0 {
			p50 = latency.Percentile(50)
		}
		amp := 0.0
		if ackedWrites > 0 {
			amp = float64(st.BytesMoved.Value()) / float64(ackedWrites) / float64(objSize)
		}
		p.addRow(a.name, churnLabel,
			fmt.Sprintf("%d", ackedWrites),
			fmt.Sprintf("%d", lostWrites),
			metrics.Pct(lostFrac),
			metrics.Pct(avail),
			fmt.Sprintf("%.1fms", p50*1000),
			fmt.Sprintf("%.1fx", amp))
		prefix := fmt.Sprintf("%s/churn=%s/", a.name, churnLabel)
		p.set(prefix+"acked", float64(ackedWrites))
		p.set(prefix+"lost_frac", lostFrac)
		p.set(prefix+"avail", avail)
		p.set(prefix+"p50ms", p50*1000)
		p.set(prefix+"amplification", amp)
		p.tally(s.Kernel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E14", Title: "storage durability under churn", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}

// sortedStoreKeys returns the map's keys in ascending order, so the
// audit's side effects replay identically under any map iteration.
func sortedStoreKeys[V any](m map[store.Key]V) []store.Key {
	ks := make([]store.Key, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}
