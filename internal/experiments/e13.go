package experiments

import (
	"fmt"
	"time"

	"vcloud/internal/faults"
	"vcloud/internal/geo"
	"vcloud/internal/metrics"
	"vcloud/internal/radio"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
)

// E13SplitBrain measures the split-brain claim of §V.A: when a network
// partition cuts the controller (plus a few of its workers) off from
// the rest of the cloud, the standby promotes and two controllers run
// the same task table. With PR 1 failover alone, both sides apply
// outcomes for the same tasks — duplicated work and duplicated effects
// that persist even after the partition heals, because neither
// controller ever stands down. With epoch fencing (this PR), the
// isolated controller's outcomes park unacknowledged, the promotee's
// epoch supersedes it on heal, and the merge reconciliation dedupes
// every outcome through the (task, epoch) ledger — exactly-once.
//
// Both arms run the identical seeded workload and the identical
// controller-isolation schedule, differing only in the Fencing flag.
// Reported: duplicate applied outcomes, split-brain exposure (time with
// two live controllers), duplicate-dispatch waste (ops spent on
// re-applied outcomes), and reconciliation latency from partition heal
// to the survivor's merge (fenced arm; the baseline never reconciles).
func E13SplitBrain(cfg Config) (*Result, error) {
	vehicles := pick(cfg, 14, 25)
	tasks := pick(cfg, 30, 60)
	taskOps := 2000.0
	isolateAt := 20 * time.Second
	isolateFor := sim.Time(pick(cfg, 15, 20)) * time.Second
	horizon := sim.Time(pick(cfg, 90, 150)) * time.Second

	table := metrics.NewTable(
		"E13 — Split-brain: epoch fencing vs failover-only (§V.A dependability)",
		"policy", "completion", "duplicates", "waste", "exposure", "reconcile",
	)
	values := map[string]float64{}

	type arm struct {
		name    string
		fencing bool
	}
	arms := []arm{{"baseline", false}, {"fenced", true}}
	events, wall, err := assemble(cfg, table, values, len(arms), func(ai int, p *point) error {
		a := arms[ai]
		net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 4, AisleLenM: 150, AisleGapM: 40})
		if err != nil {
			return err
		}
		s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: vehicles, Parked: true})
		if err != nil {
			return err
		}
		if _, err := s.AddRSU(geo.Point{X: 0, Y: 0}); err != nil {
			return err
		}

		// Count every applied outcome by task ID across all controllers —
		// the probe both arms share. Fenced IDs are epoch-prefixed and
		// ledger-deduplicated, so a second application of any ID is the
		// duplicated-effect defect this experiment quantifies.
		applies := map[vcloud.TaskID]int{}
		duplicates := 0
		stats := &vcloud.Stats{}
		dep, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
			Failover: true,
			Fencing:  a.fencing,
			OnApply: func(id vcloud.TaskID, epoch uint64, ok bool) {
				applies[id]++
				if applies[id] > 1 {
					duplicates++
				}
			},
		}, stats)
		if err != nil {
			return err
		}
		inj, err := faults.NewInjector(s)
		if err != nil {
			return err
		}

		// The same scripted split-brain for both arms: at isolateAt, cut
		// the active controller plus its three lowest-addressed workers
		// (never the standby) off from the rest; heal after isolateFor.
		healAt := sim.Time(-1)
		s.Kernel.At(isolateAt, func() {
			ctls := dep.ActiveControllers()
			if len(ctls) == 0 {
				return
			}
			c := ctls[0]
			keep := make([]radio.NodeID, 0, 3)
			for _, m := range c.Members() {
				if m != c.StandbyAddr() && len(keep) < 3 {
					keep = append(keep, radio.NodeID(m))
				}
			}
			heal := inj.StartIsolation(radio.NodeID(c.Addr()), keep)
			s.Kernel.After(isolateFor, func() {
				heal()
				healAt = s.Kernel.Now()
			})
		})

		// Probes: split-brain exposure is the sampled time with two or
		// more live controllers; reconciliation latency is heal to the
		// survivor's first merge.
		exposure := 0.0
		reconcile := -1.0
		mergesSeen := uint64(0)
		const probeEvery = 250 * time.Millisecond
		if _, err := s.Kernel.Every(probeEvery, func() {
			if len(dep.ActiveControllers()) > 1 {
				exposure += probeEvery.Seconds()
			}
			if m := stats.Merges.Value(); reconcile < 0 && healAt >= 0 && m > mergesSeen {
				reconcile = (s.Kernel.Now() - healAt).Seconds()
			}
		}); err != nil {
			return err
		}

		if err := s.Start(); err != nil {
			return err
		}
		if err := s.RunFor(10 * time.Second); err != nil {
			return err
		}

		// Steady workload across the split: one task per second.
		refused := 0
		for i := 0; i < tasks; i++ {
			s.Kernel.After(sim.Time(i)*time.Second, func() {
				if err := dep.SubmitAnywhere(vcloud.Task{Ops: taskOps, InputBytes: 2000, OutputBytes: 1000}, nil); err != nil {
					refused++
				}
			})
		}
		if err := s.Run(horizon); err != nil {
			return err
		}

		applied := 0
		for _, n := range applies {
			if n > 0 {
				applied++
			}
		}
		completion := float64(applied) / float64(tasks)
		if completion > 1 {
			completion = 1
		}
		waste := float64(duplicates) * taskOps
		reconcileCell := "never"
		if reconcile >= 0 {
			reconcileCell = fmt.Sprintf("%.1fs", reconcile)
		}
		p.addRow(a.name,
			metrics.Pct(completion),
			fmt.Sprintf("%d", duplicates),
			fmt.Sprintf("%.0f ops", waste),
			fmt.Sprintf("%.1fs", exposure),
			reconcileCell)
		p.set(a.name+"/completion", completion)
		p.set(a.name+"/duplicates", float64(duplicates))
		p.set(a.name+"/waste_ops", waste)
		p.set(a.name+"/exposure_s", exposure)
		p.set(a.name+"/refused", float64(refused))
		p.set(a.name+"/abdications", float64(stats.Abdications.Value()))
		p.set(a.name+"/merges", float64(stats.Merges.Value()))
		p.set(a.name+"/deduped", float64(stats.Deduped.Value()))
		if reconcile < 0 {
			reconcile = horizon.Seconds()
		}
		p.set(a.name+"/reconcile_s", reconcile)
		p.tally(s.Kernel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E13", Title: "split-brain fencing", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}
