package experiments

import (
	"fmt"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/metrics"
	"vcloud/internal/mobility"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
	"vcloud/internal/vnet"
)

// E7TaskHandover quantifies §III.A's argument: dropping unfinished tasks
// when vehicles leave wastes resources; handing partially executed work
// over preserves it. Arms: drop-and-resubmit, handover with route-aware
// dwell, handover with speed-only dwell (the estimation-signal ablation
// from DESIGN.md).
func E7TaskHandover(cfg Config) (*Result, error) {
	vehicles := pick(cfg, 25, 50)
	tasks := pick(cfg, 12, 40)
	runFor := sim.Time(pick(cfg, 240, 600)) * time.Second

	table := metrics.NewTable(
		"E7 — Task handover vs drop-and-resubmit",
		"policy", "completion", "wasted kOps", "handovers", "retries", "p50 latency",
	)
	values := map[string]float64{}

	type arm struct {
		name     string
		handover bool
		dwell    mobility.DwellMode
	}
	arms := []arm{
		// The drop baseline is fully naive: no dwell estimation at
		// placement, no handover — the conventional-cloud habit §III.A
		// says wastes v-cloud resources.
		{"drop", false, 0},
		{"handover(route)", true, mobility.DwellRouteAware},
		{"handover(speed)", true, mobility.DwellSpeedOnly},
	}
	events, wall, err := assemble(cfg, table, values, len(arms), func(i int, p *point) error {
		a := arms[i]
		net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 3000, Segments: 3, SpeedLimit: 25, Lanes: 2})
		if err != nil {
			return err
		}
		s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: vehicles})
		if err != nil {
			return err
		}
		if _, err := s.AddRSU(geo.Point{X: 1500, Y: 15}); err != nil {
			return err
		}
		stats := &vcloud.Stats{}
		dep, err := vcloud.Deploy(s, vcloud.Infrastructure, vcloud.DeployConfig{
			Handover:   a.handover,
			DwellMode:  a.dwell,
			Controller: vcloud.ControllerConfig{RetryLimit: 5},
		}, stats)
		if err != nil {
			return err
		}
		if err := s.Start(); err != nil {
			return err
		}
		if err := s.RunFor(10 * time.Second); err != nil {
			return err
		}
		// Tasks of ~15 s compute against a ~24 s transit through RSU
		// range: finishable when placed early in a transit, lost when
		// placed late — exactly where handover pays.
		for i := 0; i < tasks; i++ {
			i := i
			s.Kernel.After(sim.Time(i)*2*time.Second, func() {
				_ = dep.SubmitAnywhere(vcloud.Task{Ops: 15_000, InputBytes: 500, OutputBytes: 500}, nil)
			})
		}
		if err := s.RunFor(runFor); err != nil {
			return err
		}
		completion := float64(stats.Completed.Value()) / float64(tasks)
		p.addRow(a.name,
			metrics.Pct(completion),
			fmt.Sprintf("%.1f", stats.WastedOps/1000),
			fmt.Sprintf("%d", stats.Handovers.Value()),
			fmt.Sprintf("%d", stats.Retries.Value()),
			metrics.Ms(stats.Latency.Percentile(50)))
		p.set(a.name+"/completion", completion)
		p.set(a.name+"/wasted", stats.WastedOps)
		p.set(a.name+"/handovers", float64(stats.Handovers.Value()))
		p.tally(s.Kernel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E7", Title: "task handover", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}

// E8Replication sweeps the replication factor against member churn and
// reports file availability and repair traffic — §III.A's "how many
// copies of a shared file should be distributed".
func E8Replication(cfg Config) (*Result, error) {
	factors := []int{1, 2, 3}
	if !cfg.Quick {
		factors = []int{1, 2, 3, 4, 5}
	}
	members := pick(cfg, 20, 40)
	files := pick(cfg, 30, 100)
	churnRates := []float64{0.05, 0.15} // per-member offline prob per tick
	if !cfg.Quick {
		churnRates = []float64{0.02, 0.05, 0.1, 0.2}
	}
	ticks := pick(cfg, 120, 600)

	table := metrics.NewTable(
		"E8 — Replication factor vs availability under churn",
		"k", "churn", "model", "availability", "re-replicas", "bytes moved MB",
	)
	values := map[string]float64{}

	type sweep struct {
		k      int
		churn  float64
		retain bool
	}
	var sweeps []sweep
	for _, k := range factors {
		for _, churn := range churnRates {
			for _, retain := range []bool{false, true} {
				sweeps = append(sweeps, sweep{k, churn, retain})
			}
		}
	}
	events, wall, err := assemble(cfg, table, values, len(sweeps), func(i int, p *point) error {
		k, churn, retain := sweeps[i].k, sweeps[i].churn, sweeps[i].retain
		kern := sim.NewKernel(cfg.Seed)
		rng := kern.NewStream("churn")
		online := make(map[vnet.Addr]bool, members)
		cands := make([]vnet.Addr, 0, members)
		for i := 0; i < members; i++ {
			a := vnet.Addr(i)
			online[a] = true
			cands = append(cands, a)
		}
		stats := &vcloud.ReplicaStats{}
		rm, err := vcloud.NewReplicaManager(k, func(a vnet.Addr) bool { return online[a] }, stats)
		if err != nil {
			return err
		}
		rm.SetRetainOffline(retain)
		for f := 0; f < files; f++ {
			// Spread initial placement across members.
			rot := append(append([]vnet.Addr(nil), cands[f%members:]...), cands[:f%members]...)
			rm.Store(vcloud.FileID(fmt.Sprintf("f%d", f)), 1<<20, rot)
		}
		// Churn process: every second members flip offline/online;
		// reads and repairs run each tick.
		if _, err := kern.Every(time.Second, func() {
			for _, a := range cands {
				if online[a] {
					if rng.Float64() < churn {
						online[a] = false
					}
				} else if rng.Float64() < 0.3 { // come back online
					online[a] = true
				}
			}
			for f := 0; f < 5; f++ {
				rm.Read(vcloud.FileID(fmt.Sprintf("f%d", rng.Intn(files))))
			}
			rm.Repair(cands)
		}); err != nil {
			return err
		}
		if err := kern.Run(sim.Time(ticks) * time.Second); err != nil {
			return err
		}
		avail := stats.Availability()
		model := "departed"
		key := fmt.Sprintf("k%d/churn%.2f", k, churn)
		if retain {
			model = "sleeping"
			key += "/retain"
		}
		p.addRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.2f", churn), model,
			metrics.Pct(avail),
			fmt.Sprintf("%d", stats.ReReplicas.Value()),
			fmt.Sprintf("%.0f", float64(stats.BytesMoved.Value())/(1<<20)))
		p.set(key+"/availability", avail)
		p.set(key+"/rereplicas", float64(stats.ReReplicas.Value()))
		p.tally(kern)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E8", Title: "replication", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}
