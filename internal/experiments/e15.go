package experiments

import (
	"fmt"
	"sort"
	"time"

	"vcloud/internal/faults"
	"vcloud/internal/geo"
	"vcloud/internal/metrics"
	"vcloud/internal/mobility"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
	"vcloud/internal/vnet"
)

// E15DAGExecution measures the §V dependable-execution claim at the job
// level: multi-stage dependent workloads on a vehicular cloud survive
// member churn only if recovery is stage-granular and redundancy is
// spent where it matters. Four recovery strategies run the identical
// seeded DAG stream over the identical churn schedule (a member's
// process dies every churn period — its running stages and cached stage
// outputs die with it — and a wiped replacement rejoins a few seconds
// later):
//
//   - naive restart: any stage failure restarts the whole job from
//     scratch, up to 3 times — the classic cloud answer, which throws
//     away every completed ancestor stage;
//   - crit-path ×3: stage-granular retry plus a replica budget of 8
//     extra copies, spent only on critical-path stages — enough to
//     triplicate all four stages whose loss stalls the whole DAG, so a
//     worker death there is masked by the surviving quorum instead of
//     costing a retry round;
//   - replicate-all: the same budget arithmetic but spread over every
//     stage (budget = 2 × stage count), the "replicate everything"
//     comparison — it pays compute for copies of stages that were never
//     critical, and on a fleet this size the extra placements starve
//     each other;
//   - crit+RSU: crit-path ×3 plus an ETSI-MEC RSU edge server joined
//     as a first-class placement target — fixed infrastructure the
//     churn never kills, with more compute than any vehicle.
//
// Reported per arm×churn: jobs completed over submitted, wasted-work
// fraction (ops dispatched that produced no applied outcome — restarts,
// killed workers, abandoned replicas), and median completed-job
// makespan. The claims under test: at storm-level churn (two members
// every 2 s) the crit-path arm completes at least twice the naive arm's
// rate; the replicate-all arm buys no more completion than crit-path
// but strictly more wasted work; and the RSU tier pushes completion
// higher still while cutting makespan.
func E15DAGExecution(cfg Config) (*Result, error) {
	const vehicles = 16
	horizon := sim.Time(pick(cfg, 80, 160)) * time.Second
	const (
		jobEvery    = 6 * time.Second
		reviveAfter = 6 * time.Second
		submitUntil = 0.55 // stop submitting at this fraction of the horizon
		// jobDeadline is ~1.5x the job's serial compute time: room for
		// stage-granular recovery, no room to restart the whole DAG.
		jobDeadline = 14 * time.Second
	)

	// The job: sense fans out to one heavy and two light feature stages,
	// which join at fuse, feeding report. Critical path
	// sense-heavy-fuse-report (7000 of 9400 serial ops, ~7 s on a
	// 1000 ops/s vehicle); feat-a/feat-b are off-path, so a crit-path
	// budget of 8 triplicates every critical stage while leaving the
	// side branches unreplicated.
	baseJob := vcloud.JobSpec{
		Stages: []vcloud.StageSpec{
			{Name: "sense", Ops: 1000, InputBytes: 600, OutputBytes: 400},
			{Name: "heavy", Ops: 3000, OutputBytes: 400, Deps: []int{0}},
			{Name: "feat-a", Ops: 1200, OutputBytes: 400, Deps: []int{0}},
			{Name: "feat-b", Ops: 1200, OutputBytes: 400, Deps: []int{0}},
			{Name: "fuse", Ops: 1500, OutputBytes: 300, Deps: []int{1, 2, 3}},
			{Name: "report", Ops: 1500, OutputBytes: 200, Deps: []int{4}},
		},
		StageRetries: 3,
	}

	type arm struct {
		name string
		spec func() vcloud.JobSpec
		edge bool
	}
	arms := []arm{
		{"naive restart", func() vcloud.JobSpec {
			j := baseJob
			j.WholeJobRestart = true
			return j
		}, false},
		{"crit-path", func() vcloud.JobSpec {
			j := baseJob
			j.ReplicaBudget = 8 // 3 copies of all four critical-path stages
			return j
		}, false},
		{"replicate-all", func() vcloud.JobSpec {
			j := baseJob
			j.ReplicaBudget = 2 * len(baseJob.Stages) // 3 copies of everything
			j.ReplicateAll = true
			return j
		}, false},
		{"crit+RSU", func() vcloud.JobSpec {
			j := baseJob
			j.ReplicaBudget = 8
			return j
		}, true},
	}
	// Churn levels: period between kill fronts and how many members die
	// per front. The storm level loses two members every 2 s — faster
	// than the 6 s revive, so the fleet runs persistently short-handed.
	churns := []struct {
		label  string
		period sim.Time
		burst  int
	}{
		{"none", 0, 0},
		{"8s", 8 * time.Second, 1},
		{"2s x2", 2 * time.Second, 2},
	}

	table := metrics.NewTable(
		"E15 — Reliability-aware DAG execution vs member churn (§V job dependability)",
		"strategy", "churn", "submitted", "completed", "rate", "wasted", "p50 makespan",
	)
	values := map[string]float64{}

	n := len(arms) * len(churns)
	events, wall, err := assemble(cfg, table, values, n, func(i int, p *point) error {
		a := arms[i/len(churns)]
		churn := churns[i%len(churns)]

		net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 4, AisleLenM: 150, AisleGapM: 40})
		if err != nil {
			return err
		}
		s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: vehicles, Parked: true})
		if err != nil {
			return err
		}
		if _, err := s.AddRSU(geo.Point{X: 0, Y: 0}); err != nil {
			return err
		}
		var edgeNode *vnet.Node
		if a.edge {
			if edgeNode, err = s.AddRSU(geo.Point{X: 60, Y: 0}); err != nil {
				return err
			}
		}
		inj, err := faults.NewInjector(s)
		if err != nil {
			return err
		}
		defer inj.Close()

		stats := &vcloud.Stats{}
		dep, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
		if err != nil {
			return err
		}
		if a.edge {
			if _, err := vcloud.NewEdgeServer(edgeNode, vcloud.EdgeConfig{CPU: 3000, Storage: 2048}, stats); err != nil {
				return err
			}
		}
		if err := s.Start(); err != nil {
			return err
		}

		// Job stream: one DAG every jobEvery until submitUntil of the
		// horizon, so the tail of the run drains in-flight jobs instead of
		// counting unfinishable late submissions against every arm.
		submitted, completed := 0, 0
		makespan := &metrics.Histogram{}
		jobT, err := s.Kernel.Every(jobEvery, func() {
			if float64(s.Kernel.Now()) > submitUntil*float64(horizon) {
				return
			}
			spec := a.spec()
			spec.Deadline = s.Kernel.Now() + jobDeadline
			if err := dep.SubmitJobAnywhere(spec, func(r vcloud.JobResult) {
				if r.OK {
					completed++
					makespan.Observe(r.Latency.Seconds())
				}
			}); err == nil {
				submitted++
			}
		})
		if err != nil {
			return err
		}
		defer jobT.Stop()

		// Churn clock: every period a burst of members' processes die
		// (radio silence plus agent stop — running stages and cached
		// stage outputs go with them); wiped replacements rejoin
		// reviveAfter later. A half-fleet floor keeps the cloud viable.
		// The schedule replays under the seed via the named stream.
		if churn.period > 0 {
			rng := s.Kernel.NewStream("e15.churn")
			kill, err := s.Kernel.Every(churn.period, func() {
				for k := 0; k < churn.burst; k++ {
					if len(dep.Members) <= vehicles/2 {
						return
					}
					ids := make([]mobility.VehicleID, 0, len(dep.Members))
					for id := range dep.Members {
						ids = append(ids, id)
					}
					sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
					id := ids[rng.Intn(len(ids))]
					dep.Members[id].Stop()
					delete(dep.Members, id)
					inj.CrashNode(vnet.Addr(id))
					s.Kernel.After(reviveAfter, func() {
						inj.RecoverNode(vnet.Addr(id))
						node, ok := s.Node(id)
						if !ok {
							return
						}
						prof, _ := s.Mobility.Profile(id)
						m, err := vcloud.NewMember(node, vcloud.MemberConfig{
							Resources: vcloud.Resources{CPU: prof.CPU, Storage: prof.Storage, Sensors: prof.Sensors},
						}, stats)
						if err == nil {
							dep.Members[id] = m
						}
					})
				}
			})
			if err != nil {
				return err
			}
			defer kill.Stop()
		}

		if err := s.RunFor(horizon); err != nil {
			return err
		}

		rate := 0.0
		if submitted > 0 {
			rate = float64(completed) / float64(submitted)
		}
		// Wasted work: every dispatched op beyond the serial compute of the
		// jobs that actually completed — restarted attempts, work dying
		// with killed members, redundant replicas, and everything spent on
		// jobs that ultimately failed.
		var serialOps float64
		for _, st := range baseJob.Stages {
			serialOps += st.Ops
		}
		wasted := 0.0
		if useful := float64(completed) * serialOps; stats.OpsDispatched > useful {
			wasted = (stats.OpsDispatched - useful) / stats.OpsDispatched
		}
		p50 := 0.0
		if makespan.Count() > 0 {
			p50 = makespan.Percentile(50)
		}
		p.addRow(a.name, churn.label,
			fmt.Sprintf("%d", submitted),
			fmt.Sprintf("%d", completed),
			metrics.Pct(rate),
			metrics.Pct(wasted),
			fmt.Sprintf("%.1fs", p50))
		prefix := fmt.Sprintf("%s/churn=%s/", a.name, churn.label)
		p.set(prefix+"rate", rate)
		p.set(prefix+"wasted", wasted)
		p.set(prefix+"p50s", p50)
		p.tally(s.Kernel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E15", Title: "DAG execution under churn", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}
