package experiments

import (
	"vcloud/internal/geo"
	"vcloud/internal/radio"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// chainNodes builds n static nodes in a line, spacing meters apart, for
// focused protocol drills that do not need mobility.
func chainNodes(k *sim.Kernel, m *radio.Medium, n int, spacing float64) ([]*vnet.Node, error) {
	nodes := make([]*vnet.Node, 0, n)
	for i := 0; i < n; i++ {
		pos := geo.Point{X: float64(i) * spacing, Y: 0}
		addr := vnet.Addr(i)
		m.UpdatePosition(addr, pos)
		node, err := vnet.NewNode(k, m, addr, vnet.Config{}, func() (geo.Point, float64, float64) {
			return pos, 0, 0
		})
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, node)
	}
	return nodes, nil
}
