package experiments

import (
	"strings"
	"testing"
)

// TestParallelTablesMatchSerial is the determinism contract of the
// parallel harness: every experiment's rendered table must be
// byte-identical whether its sweep points run serially or across 8
// workers, and so must the value maps — except wall-clock measurements
// (E6's raw nanosecond samples, E17's throughput and critical-path
// speedup), which are checked for key presence only; every table prints
// deterministic quantities, so even E6's and E17's tables must match.
func TestParallelTablesMatchSerial(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			serial, err := r.Run(Config{Seed: 42, Quick: true, Parallel: 1})
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			par, err := r.Run(Config{Seed: 42, Quick: true, Parallel: 8})
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if got, want := par.Table.String(), serial.Table.String(); got != want {
				t.Errorf("tables differ between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s", want, got)
			}
			if len(serial.Values) != len(par.Values) {
				t.Fatalf("value count differs: serial %d, parallel %d", len(serial.Values), len(par.Values))
			}
			for k, v := range serial.Values {
				pv, ok := par.Values[k]
				if !ok {
					t.Errorf("parallel run missing value %q", k)
					continue
				}
				if wallClockValue(r.ID, k) {
					continue // wall-clock measurement: key presence only
				}
				if pv != v {
					t.Errorf("value %q differs: serial %v, parallel %v", k, v, pv)
				}
			}
		})
	}
}

// wallClockValue reports whether an experiment value is a wall-clock
// measurement and therefore not expected to reproduce across runs.
func wallClockValue(id, key string) bool {
	switch id {
	case "E6":
		return true
	case "E17":
		return strings.HasSuffix(key, "/events_per_sec") || strings.HasSuffix(key, "/critpath_speedup")
	}
	return false
}

// TestForEachParCoversAllIndices exercises the pool with more items than
// workers and checks every index runs exactly once.
func TestForEachParCoversAllIndices(t *testing.T) {
	const n = 100
	hits := make([]int, n)
	err := forEachPar(Config{Parallel: 7}, n, func(i int) error {
		hits[i]++ // distinct element per call: race-free by construction
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Errorf("index %d ran %d times", i, h)
		}
	}
}
