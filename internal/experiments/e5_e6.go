package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"vcloud/internal/access"
	"vcloud/internal/auth"
	"vcloud/internal/cryptoprim"
	"vcloud/internal/geo"
	"vcloud/internal/metrics"
	"vcloud/internal/pki"
	"vcloud/internal/radio"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// E5Authentication reproduces Fig. 5: pseudonym vs group vs hybrid
// authentication across revoked-population sizes, with the CRL-structure
// ablation (linear vs bloom). Reported: handshake latency, bytes per
// handshake, CRL entries scanned, and the privacy characteristics
// (outsider anonymity set; who can trace).
func E5Authentication(cfg Config) (*Result, error) {
	revokedLevels := []int{0, 200}
	if !cfg.Quick {
		revokedLevels = []int{0, 100, 500, 2000}
	}
	handshakes := pick(cfg, 20, 60)

	table := metrics.NewTable(
		"E5 — Authentication protocols (Fig. 5)",
		"scheme", "revoked", "p50 latency", "bytes/hs", "CRL scans/hs", "anonymity", "traced by",
	)
	values := map[string]float64{}

	type arm struct {
		scheme  auth.Scheme
		crlMode auth.CRLMode
		label   string
	}
	arms := []arm{
		{auth.Pseudonym, auth.CRLLinear, "pseudonym(linear)"},
		{auth.Pseudonym, auth.CRLBloom, "pseudonym(bloom)"},
		{auth.Group, auth.CRLLinear, "group"},
		{auth.Hybrid, auth.CRLLinear, "hybrid"},
	}

	type sweep struct {
		a       arm
		revoked int
	}
	var sweeps []sweep
	for _, a := range arms {
		for _, revoked := range revokedLevels {
			sweeps = append(sweeps, sweep{a, revoked})
		}
	}
	events, wall, err := assemble(cfg, table, values, len(sweeps), func(idx int, p *point) error {
		a, revoked := sweeps[idx].a, sweeps[idx].revoked
		k := sim.NewKernel(cfg.Seed)
		bounds := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000})
		medium, err := radio.NewMedium(k, bounds, radio.DefaultParams())
		if err != nil {
			return err
		}
		poolSize := 20
		ta, err := pki.New("TA", rand.New(rand.NewSource(cfg.Seed)), pki.Config{PoolSize: poolSize})
		if err != nil {
			return err
		}
		// Populate the revoked set.
		for i := 0; i < revoked; i++ {
			id := pki.VehicleIdentity(fmt.Sprintf("rev-%d", i))
			if _, err := ta.Enroll(id); err != nil {
				return err
			}
			if err := ta.RevokeVehicle(id); err != nil {
				return err
			}
		}
		anchors := auth.Anchors{
			RootKey:  ta.RootKey(),
			GroupKey: ta.GroupKey(),
			CRL:      ta.CRL(),
			CRLMode:  a.crlMode,
			GroupRevoked: func(sig cryptoprim.GroupSig) (bool, int) {
				// Verifier-local revocation tokens: one per revoked
				// member.
				return !ta.GroupManager().CheckNotRevoked(sig), revoked
			},
		}
		met := &auth.Metrics{}
		var auths []*auth.Authenticator
		for i := 0; i < 2; i++ {
			pos := geo.Point{X: 100 + float64(i)*100, Y: 100}
			addr := vnet.Addr(i)
			medium.UpdatePosition(addr, pos)
			node, err := vnet.NewNode(k, medium, addr, vnet.Config{}, func() (geo.Point, float64, float64) {
				return pos, 0, 0
			})
			if err != nil {
				return err
			}
			enr, err := ta.Enroll(pki.VehicleIdentity(fmt.Sprintf("veh-%d", i)))
			if err != nil {
				return err
			}
			au, err := auth.New(node, enr, anchors, a.scheme, auth.CostModel{}, met)
			if err != nil {
				return err
			}
			auths = append(auths, au)
		}
		for i := 0; i < handshakes; i++ {
			i := i
			k.At(sim.Time(i)*100*time.Millisecond, func() {
				_ = auths[0].Authenticate(1, nil)
			})
		}
		if err := k.Run(sim.Time(handshakes)*100*time.Millisecond + 10*time.Second); err != nil {
			return err
		}

		succ := met.Successes.Value()
		if succ == 0 {
			return fmt.Errorf("E5: no successful handshakes for %s/%d", a.label, revoked)
		}
		bytesPer := float64(met.BytesSent.Value()) / float64(succ)
		scansPer := float64(met.CRLScanned.Value()) / float64(succ)
		anonymity, tracer := privacyRow(a.scheme, poolSize, ta)
		p.addRow(a.label, fmt.Sprintf("%d", revoked),
			metrics.Ms(met.Latency.Percentile(50)),
			fmt.Sprintf("%.0f", bytesPer),
			fmt.Sprintf("%.0f", scansPer),
			anonymity, tracer)
		key := fmt.Sprintf("%s/%d", a.label, revoked)
		p.set(key+"/p50ms", met.Latency.Percentile(50))
		p.set(key+"/bytes", bytesPer)
		p.set(key+"/scans", scansPer)
		p.tally(k)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E5", Title: "authentication", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}

// privacyRow returns the analytic privacy characteristics of a scheme:
// the outsider anonymity-set size and who can deanonymize.
func privacyRow(s auth.Scheme, poolSize int, ta *pki.TA) (anonymity, tracer string) {
	switch s {
	case auth.Pseudonym:
		return fmt.Sprintf("pool=%d", poolSize), "TA (serial escrow)"
	case auth.Group:
		return fmt.Sprintf("group=%d", ta.GroupManager().NumMembers()), "group manager"
	default:
		return fmt.Sprintf("group=%d", ta.GroupManager().NumMembers()), "TA (trapdoor)"
	}
}

// latencyBand buckets a measured per-decision latency into its
// order-of-magnitude band relative to §III.C's milliseconds budget.
func latencyBand(ns float64) string {
	switch {
	case ns < 1e3:
		return "sub-µs"
	case ns < 1e6:
		return "sub-ms"
	default:
		return "ms+"
	}
}

// E6AccessControl measures policy-decision latency against policy-set
// size and the emergency-escalation path (§III.C's "milliseconds"
// requirement). Decisions are real computations measured in wall-clock
// nanoseconds; the raw samples land in Values while the table prints
// the deterministic budget band per point.
func E6AccessControl(cfg Config) (*Result, error) {
	policyCounts := []int{10, 100}
	if !cfg.Quick {
		policyCounts = []int{10, 100, 1000, 5000}
	}
	iters := pick(cfg, 2000, 20000)

	table := metrics.NewTable(
		"E6 — Access-control decision latency",
		"policies", "decision", "allowed", "emergency",
	)
	values := map[string]float64{}

	events, wall, err := assemble(cfg, table, values, len(policyCounts), func(idx int, p *point) error {
		n := policyCounts[idx]
		// Per-point stream so the role draw is independent of sweep order
		// (and of which worker runs the point).
		rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)))
		policies := make([]access.Policy, n)
		area := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000})
		for i := range policies {
			policies[i] = access.Policy{
				Resource: fmt.Sprintf("res-%d", i),
				Rules: []access.Rule{
					{
						Action: access.Read,
						AnyOf: []access.Clause{
							{access.AttributeID(fmt.Sprintf("auth/role-%d", i%7)), "auth/automation3"},
							{"auth/police"},
						},
						Context: access.ContextRule{Area: &area, MaxSpeed: 40},
					},
					{
						Action:  access.Read,
						AnyOf:   []access.Clause{{"auth/responder"}},
						Context: access.ContextRule{EmergencyOnly: true},
					},
				},
			}
		}
		attrs := access.AttrSet{
			access.AttributeID(fmt.Sprintf("auth/role-%d", rng.Intn(7))): 0,
			"auth/automation3": 0,
		}
		emergencyAttrs := access.AttrSet{"auth/responder": 0}
		ctx := access.Context{Pos: geo.Point{X: 500, Y: 500}, Speed: 20}
		emCtx := access.Context{Pos: geo.Point{X: 5000, Y: 0}, Speed: 60, Emergency: true}

		// Normal decisions.
		allowed := 0
		start := time.Now() //vcloudlint:allow nowallclock profiling telemetry: raw ns go to Values/BENCH.json, the table prints stable bands
		for i := 0; i < iters; i++ {
			p := &policies[i%n]
			if d := access.Evaluate(p, attrs, access.Read, ctx); d.Allowed {
				allowed++
			}
		}
		perDecision := float64(time.Since(start).Nanoseconds()) / float64(iters) //vcloudlint:allow nowallclock profiling telemetry: raw ns go to Values/BENCH.json, the table prints stable bands

		// Emergency escalations.
		emAllowed := 0
		start = time.Now() //vcloudlint:allow nowallclock profiling telemetry: raw ns go to Values/BENCH.json, the table prints stable bands
		for i := 0; i < iters; i++ {
			p := &policies[i%n]
			if d := access.Evaluate(p, emergencyAttrs, access.Read, emCtx); d.Allowed {
				emAllowed++
			}
		}
		emPer := float64(time.Since(start).Nanoseconds()) / float64(iters) //vcloudlint:allow nowallclock profiling telemetry: raw ns go to Values/BENCH.json, the table prints stable bands
		if emAllowed == 0 {
			return fmt.Errorf("E6: emergency escalation never granted")
		}

		// The table prints the order-of-magnitude band against §III.C's
		// milliseconds budget, not the raw sample: bands are stable
		// run-to-run, so vcloudbench stdout is byte-identical at any
		// parallelism. Raw measured ns stay in Values (and BENCH.json).
		p.addRow(fmt.Sprintf("%d", n),
			latencyBand(perDecision),
			metrics.Pct(float64(allowed)/float64(iters)),
			latencyBand(emPer))
		p.set(fmt.Sprintf("%d/ns", n), perDecision)
		p.set(fmt.Sprintf("%d/emergency-ns", n), emPer)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E6", Title: "access control", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}
