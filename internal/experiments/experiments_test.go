package experiments

import (
	"strings"
	"testing"
)

func quick(t *testing.T, run func(Config) (*Result, error)) *Result {
	t.Helper()
	r, err := run(Config{Seed: 42, Quick: true})
	if err != nil {
		t.Fatalf("experiment failed: %v", err)
	}
	if r.Table == nil || len(r.Values) == 0 {
		t.Fatal("experiment produced no output")
	}
	out := r.Table.String()
	if !strings.Contains(out, r.ID) {
		t.Errorf("table title missing experiment id: %q", strings.SplitN(out, "\n", 2)[0])
	}
	t.Logf("\n%s", out)
	return r
}

func TestAllRegistered(t *testing.T) {
	runners := All()
	if len(runners) != 17 {
		t.Fatalf("runners = %d, want 17", len(runners))
	}
	seen := map[string]bool{}
	for _, r := range runners {
		if r.Run == nil || r.ID == "" {
			t.Errorf("runner %q incomplete", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestE1Shape(t *testing.T) {
	r := quick(t, E1CloudComparison)
	v := r.Values
	// Conventional cloud wins on raw latency while healthy...
	if v["conventional/p50ms"] >= v["vehicular/p50ms"] {
		t.Errorf("conventional p50 %.1fms should beat vehicular %.1fms while healthy",
			v["conventional/p50ms"], v["vehicular/p50ms"])
	}
	// ...but dies with its infrastructure, while the vehicular cloud
	// keeps working (Fig. 2 infrastructure-reliance row).
	if v["conventional/outage"] > 0.2 {
		t.Errorf("conventional completed %.0f%% during outage, should collapse", v["conventional/outage"]*100)
	}
	if v["vehicular/outage"] < 0.5*v["vehicular/healthy"] {
		t.Errorf("vehicular outage completion %.2f dropped too much vs healthy %.2f",
			v["vehicular/outage"], v["vehicular/healthy"])
	}
	if v["vehicular/healthy"] < 0.4 {
		t.Errorf("vehicular healthy completion %.2f unreasonably low", v["vehicular/healthy"])
	}
}

func TestE2Shape(t *testing.T) {
	r := quick(t, E2Architectures)
	v := r.Values
	for _, arch := range []string{"stationary", "infrastructure", "dynamic"} {
		if v[arch+"/healthy"] < 0.3 {
			t.Errorf("%s healthy completion %.2f too low", arch, v[arch+"/healthy"])
		}
	}
	// Dynamic degrades least under disaster (Fig. 4 / §IV.A.2 claim).
	dynDrop := v["dynamic/healthy"] - v["dynamic/disaster"]
	infraDrop := v["infrastructure/healthy"] - v["infrastructure/disaster"]
	if dynDrop > infraDrop {
		t.Errorf("dynamic degraded more (%.2f) than infrastructure-based (%.2f)", dynDrop, infraDrop)
	}
	if v["infrastructure/disaster"] > 0.3 {
		t.Errorf("infrastructure cloud should collapse in disaster, got %.2f", v["infrastructure/disaster"])
	}
}

func TestE3Shape(t *testing.T) {
	r := quick(t, E3ClusterStability)
	v := r.Values
	// Mobility-aware clustering must beat lowest-ID on head churn at the
	// higher speed level.
	if v["mobility/30/churn"] >= v["lowest-id/30/churn"] {
		t.Errorf("mobility churn %.2f should be below lowest-id %.2f at 30 m/s",
			v["mobility/30/churn"], v["lowest-id/30/churn"])
	}
	// Vehicles spend most time clustered under every algorithm.
	for _, algo := range []string{"lowest-id", "mobility", "pmc"} {
		if v[algo+"/15/clustered"] < 0.5 {
			t.Errorf("%s clustered share %.2f too low", algo, v[algo+"/15/clustered"])
		}
	}
}

func TestE4Shape(t *testing.T) {
	r := quick(t, E4Routing)
	v := r.Values
	// Epidemic: best-or-equal delivery, worst overhead (at the denser
	// setting).
	if v["epidemic/40/delivery"]+0.05 < v["greedy/40/delivery"] {
		t.Errorf("epidemic delivery %.2f below greedy %.2f", v["epidemic/40/delivery"], v["greedy/40/delivery"])
	}
	if v["epidemic/40/overhead"] <= v["greedy/40/overhead"] {
		t.Errorf("epidemic overhead %.1f should exceed greedy %.1f",
			v["epidemic/40/overhead"], v["greedy/40/overhead"])
	}
	// MoZo at least matches greedy under mobility.
	if v["mozo/40/delivery"]+0.1 < v["greedy/40/delivery"] {
		t.Errorf("mozo delivery %.2f well below greedy %.2f", v["mozo/40/delivery"], v["greedy/40/delivery"])
	}
}

func TestE5Shape(t *testing.T) {
	r := quick(t, E5Authentication)
	v := r.Values
	// Pseudonym verification cost grows with the revoked population
	// under linear CRL scans…
	if v["pseudonym(linear)/200/scans"] <= v["pseudonym(linear)/0/scans"] {
		t.Errorf("linear CRL scans should grow with revocations: %v vs %v",
			v["pseudonym(linear)/200/scans"], v["pseudonym(linear)/0/scans"])
	}
	// …while bloom stays near-constant, and group/hybrid avoid the
	// per-pseudonym CRL entirely.
	if v["pseudonym(bloom)/200/scans"] > 5 {
		t.Errorf("bloom scans %.1f should be near zero", v["pseudonym(bloom)/200/scans"])
	}
	if v["hybrid/200/scans"] > 1 {
		t.Errorf("hybrid should not scan CRLs, got %.1f", v["hybrid/200/scans"])
	}
	// Group/hybrid handshakes are smaller on air than certificate
	// exchanges (Fig. 5).
	if v["group/0/bytes"] >= v["pseudonym(linear)/0/bytes"] {
		t.Errorf("group bytes %v should be below pseudonym %v",
			v["group/0/bytes"], v["pseudonym(linear)/0/bytes"])
	}
}

func TestE6Shape(t *testing.T) {
	r := quick(t, E6AccessControl)
	v := r.Values
	// Decisions stay in the sub-microsecond-to-microsecond band — far
	// inside §III.C's milliseconds budget — and emergency escalation is
	// not more expensive than normal evaluation by more than ~10×.
	for _, n := range []string{"10", "100"} {
		if v[n+"/ns"] <= 0 || v[n+"/ns"] > 1e6 {
			t.Errorf("ns/decision out of range for %s policies: %v", n, v[n+"/ns"])
		}
		if v[n+"/emergency-ns"] > 10*v[n+"/ns"]+1e4 {
			t.Errorf("emergency path too slow: %v vs %v", v[n+"/emergency-ns"], v[n+"/ns"])
		}
	}
}

func TestE7Shape(t *testing.T) {
	r := quick(t, E7TaskHandover)
	v := r.Values
	if v["handover(route)/completion"] < v["drop/completion"] {
		t.Errorf("handover completion %.2f below drop %.2f",
			v["handover(route)/completion"], v["drop/completion"])
	}
	if v["handover(route)/wasted"] >= v["drop/wasted"] {
		t.Errorf("handover waste %.0f should be below drop waste %.0f",
			v["handover(route)/wasted"], v["drop/wasted"])
	}
	if v["handover(route)/handovers"] == 0 {
		t.Error("handover arm performed no handovers")
	}
}

func TestE8Shape(t *testing.T) {
	r := quick(t, E8Replication)
	v := r.Values
	// More replicas → higher availability at every churn level.
	for _, churn := range []string{"0.05", "0.15"} {
		k1 := v["k1/churn"+churn+"/availability"]
		k3 := v["k3/churn"+churn+"/availability"]
		if k3 < k1 {
			t.Errorf("churn %s: k=3 availability %.2f below k=1 %.2f", churn, k3, k1)
		}
	}
	if v["k3/churn0.05/availability"] < 0.9 {
		t.Errorf("k=3 at low churn should be highly available, got %.2f", v["k3/churn0.05/availability"])
	}
	// Battery-sleep retention dominates the departed model: sleepers
	// keep their replicas.
	for _, key := range []string{"k1/churn0.05", "k2/churn0.15"} {
		if v[key+"/retain/availability"] < v[key+"/availability"] {
			t.Errorf("%s: sleeping model %.2f below departed %.2f", key,
				v[key+"/retain/availability"], v[key+"/availability"])
		}
	}
}

func TestE9Shape(t *testing.T) {
	r := quick(t, E9Trust)
	v := r.Values
	// Content-centric validation beats rotating-identity reputation at
	// the high attacker fraction (§III.D claim).
	if v["bayesian+path/0.3/accuracy"] <= v["reputation(rotating)/0.3/accuracy"] {
		t.Errorf("path-diverse bayesian %.2f should beat rotating reputation %.2f",
			v["bayesian+path/0.3/accuracy"], v["reputation(rotating)/0.3/accuracy"])
	}
	// Stable identities would rescue reputation — the diagnosis.
	if v["reputation(stable)/0.3/accuracy"] <= v["reputation(rotating)/0.3/accuracy"] {
		t.Errorf("stable-id reputation %.2f should beat rotating %.2f",
			v["reputation(stable)/0.3/accuracy"], v["reputation(rotating)/0.3/accuracy"])
	}
	// Everything is accurate with few attackers.
	if v["bayesian/0.1/accuracy"] < 0.8 {
		t.Errorf("bayesian at 10%% attackers = %.2f, want high accuracy", v["bayesian/0.1/accuracy"])
	}
}

func TestE10Shape(t *testing.T) {
	r := quick(t, E10Attacks)
	v := r.Values
	if v["dos/flooded"] >= v["dos/clean"] {
		t.Errorf("flood should degrade delivery: %.3f vs %.3f", v["dos/flooded"], v["dos/clean"])
	}
	if v["suppression/compromised"] >= v["suppression/honest"] {
		t.Errorf("suppressor should reduce relay delivery: %.2f vs %.2f",
			v["suppression/compromised"], v["suppression/honest"])
	}
	if v["sybil/diverse"] <= v["sybil/voting"] {
		t.Errorf("path-diverse trust %.2f should resist sybil better than voting %.2f",
			v["sybil/diverse"], v["sybil/voting"])
	}
	if v["tracking/fast"] < 0 || v["tracking/slow"] < 0 {
		t.Error("tracking arm failed to run")
	}
}

func TestE11Shape(t *testing.T) {
	r := quick(t, E11Failover)
	v := r.Values
	// The issue's acceptance criterion: under the same seeded
	// controller-crash schedule, failover completes at least twice the
	// tasks of the no-failover baseline.
	if v["failover/completion"] < 2*v["baseline/completion"] {
		t.Errorf("failover completion %.2f below 2× baseline %.2f",
			v["failover/completion"], v["baseline/completion"])
	}
	if v["failover/failovers"] != 1 {
		t.Errorf("failover arm promoted %v standbys, want exactly 1", v["failover/failovers"])
	}
	if v["failover/resumed"] == 0 {
		t.Error("promoted controller resumed no checkpointed tasks")
	}
	if v["baseline/failovers"] != 0 {
		t.Errorf("baseline arm must not fail over, got %v", v["baseline/failovers"])
	}
	// The promoted controller must come back well before the baseline's
	// effective "never" (the horizon).
	if v["failover/recovery_s"] >= v["baseline/recovery_s"] {
		t.Errorf("failover recovery %.1fs not faster than baseline %.1fs",
			v["failover/recovery_s"], v["baseline/recovery_s"])
	}
	if v["failover/recovery_s"] > 15 {
		t.Errorf("failover recovery %.1fs too slow (want seconds, not tens)", v["failover/recovery_s"])
	}
}

func TestE12Shape(t *testing.T) {
	r := quick(t, E12Dependability)
	v := r.Values
	// The issue's acceptance criterion: at a Byzantine fraction where the
	// no-redundancy baseline returns <50% correct results, trust-gated
	// redundancy+voting stays >=90% correct.
	if v["baseline/byz0.6/correct"] >= 0.5 {
		t.Errorf("baseline at 60%% Byzantine = %.2f correct, want <0.5", v["baseline/byz0.6/correct"])
	}
	if v["trustgated/byz0.6/correct"] < 0.9 {
		t.Errorf("trust-gated at 60%% Byzantine = %.2f correct, want >=0.9", v["trustgated/byz0.6/correct"])
	}
	// Retries without redundancy cannot detect lies: the retry arm must
	// not beat the baseline by more than noise.
	if v["retry/byz0.6/correct"] > v["baseline/byz0.6/correct"]+0.2 {
		t.Errorf("retry-only %.2f should not materially beat baseline %.2f against lies",
			v["retry/byz0.6/correct"], v["baseline/byz0.6/correct"])
	}
	// Voting keeps wrong results out entirely at the tolerable fraction.
	if v["redundant/byz0.2/wrong"] != 0 {
		t.Errorf("redundancy accepted %v wrong results at 20%% Byzantine", v["redundant/byz0.2/wrong"])
	}
	if v["baseline/byz0.2/wrong"] == 0 {
		t.Error("baseline accepted no wrong results at 20% Byzantine: attack not wired")
	}
}

func TestE14Shape(t *testing.T) {
	r := quick(t, E14Storage)
	v := r.Values
	// The issue's acceptance criterion: at the fastest churn the
	// unreplicated strawman loses >30% of acked writes while every
	// redundant arm — quorum or erasure-coded — loses none.
	if v["unreplicated/churn=2s/lost_frac"] <= 0.3 {
		t.Errorf("unreplicated lost %.0f%% at 2s churn, want >30%%",
			v["unreplicated/churn=2s/lost_frac"]*100)
	}
	for _, arm := range []string{"quorum n=3", "quorum n=5", "ec 4+2", "ec 8+4"} {
		for _, churn := range []string{"20s", "5s", "2s"} {
			key := arm + "/churn=" + churn + "/lost_frac"
			if v[key] != 0 {
				t.Errorf("%s lost %.0f%% of acked writes, want 0", key, v[key]*100)
			}
		}
	}
	// Every arm must actually ack a workload.
	for _, arm := range []string{"unreplicated", "quorum n=3", "quorum n=5", "ec 4+2", "ec 8+4"} {
		if v[arm+"/churn=2s/acked"] == 0 {
			t.Errorf("%s acked no writes", arm)
		}
	}
	// Erasure-coded reads fetch K smaller fragments in parallel, so their
	// median read beats whole-copy transfer.
	if v["ec 4+2/churn=2s/p50ms"] >= v["quorum n=3/churn=2s/p50ms"] {
		t.Errorf("ec p50 %.1fms should undercut whole-copy %.1fms",
			v["ec 4+2/churn=2s/p50ms"], v["quorum n=3/churn=2s/p50ms"])
	}
	// And EC pays less write amplification than n-way replication for
	// comparable durability.
	if v["ec 4+2/churn=2s/amplification"] >= v["quorum n=3/churn=2s/amplification"] {
		t.Errorf("ec amplification %.1fx should undercut 3-way %.1fx",
			v["ec 4+2/churn=2s/amplification"], v["quorum n=3/churn=2s/amplification"])
	}
}

func TestE15Shape(t *testing.T) {
	r := quick(t, E15DAGExecution)
	v := r.Values
	// The issue's acceptance criterion: at storm churn the crit-path arm
	// completes at least twice the naive whole-job-restart rate, while
	// spending less on redundancy than replicating every stage.
	if v["crit-path/churn=2s x2/rate"] < 2*v["naive restart/churn=2s x2/rate"] {
		t.Errorf("crit-path completion %.2f below 2x naive %.2f at storm churn",
			v["crit-path/churn=2s x2/rate"], v["naive restart/churn=2s x2/rate"])
	}
	if v["crit-path/churn=2s x2/wasted"] >= v["replicate-all/churn=2s x2/wasted"] {
		t.Errorf("crit-path wasted %.2f should undercut replicate-all %.2f",
			v["crit-path/churn=2s x2/wasted"], v["replicate-all/churn=2s x2/wasted"])
	}
	// Replicating everything must not buy more completion than spending
	// the budget on the critical path — the §V selective-redundancy claim.
	if v["replicate-all/churn=2s x2/rate"] > v["crit-path/churn=2s x2/rate"] {
		t.Errorf("replicate-all rate %.2f should not beat crit-path %.2f",
			v["replicate-all/churn=2s x2/rate"], v["crit-path/churn=2s x2/rate"])
	}
	// The RSU edge tier is churn-proof infrastructure: completion at
	// least as high as crit-path alone, with a shorter median makespan.
	if v["crit+RSU/churn=2s x2/rate"] < v["crit-path/churn=2s x2/rate"] {
		t.Errorf("crit+RSU rate %.2f below plain crit-path %.2f",
			v["crit+RSU/churn=2s x2/rate"], v["crit-path/churn=2s x2/rate"])
	}
	if v["crit+RSU/churn=2s x2/p50s"] >= v["naive restart/churn=2s x2/p50s"] {
		t.Errorf("crit+RSU p50 %.1fs should undercut naive's recovery-laden %.1fs",
			v["crit+RSU/churn=2s x2/p50s"], v["naive restart/churn=2s x2/p50s"])
	}
	// Without churn every arm completes everything; redundancy is the
	// only wasted work and naive wastes nothing.
	for _, arm := range []string{"naive restart", "crit-path", "replicate-all", "crit+RSU"} {
		if v[arm+"/churn=none/rate"] != 1 {
			t.Errorf("%s completed %.0f%% with no churn, want 100%%", arm, v[arm+"/churn=none/rate"]*100)
		}
	}
	if v["naive restart/churn=none/wasted"] != 0 {
		t.Errorf("naive arm wasted %.2f with no churn, want 0", v["naive restart/churn=none/wasted"])
	}
}

func TestE13Shape(t *testing.T) {
	r := quick(t, E13SplitBrain)
	v := r.Values
	// The issue's acceptance criterion: the fenced arm applies no outcome
	// twice while the failover-only baseline duplicates at least one.
	if v["fenced/duplicates"] != 0 {
		t.Errorf("fenced arm applied %v duplicate outcomes, want exactly-once", v["fenced/duplicates"])
	}
	if v["baseline/duplicates"] == 0 {
		t.Error("baseline applied no duplicates: split-brain not induced, experiment proves nothing")
	}
	// Fencing must actually reconcile: the survivor merges shortly after
	// heal, and the two-controller exposure stays bounded while the
	// baseline's persists (neither baseline controller ever stands down).
	if v["fenced/merges"] == 0 {
		t.Error("fenced arm never merged after the partition healed")
	}
	if v["fenced/reconcile_s"] > 10 {
		t.Errorf("reconciliation took %.1fs, want seconds", v["fenced/reconcile_s"])
	}
	if v["fenced/exposure_s"] >= v["baseline/exposure_s"] {
		t.Errorf("fenced split-brain exposure %.1fs should undercut baseline %.1fs",
			v["fenced/exposure_s"], v["baseline/exposure_s"])
	}
	if v["fenced/completion"] < v["baseline/completion"] {
		t.Errorf("fencing cost completion: %.2f vs baseline %.2f",
			v["fenced/completion"], v["baseline/completion"])
	}
}

func TestE16Shape(t *testing.T) {
	r := quick(t, E16CongestionPlacement)
	v := r.Values
	// The issue's acceptance criterion: once the load ramp crosses the
	// uplink's knee, adaptive placement beats both the static arm and the
	// congestion-blind governor on required-work deadline hits.
	if v["adaptive/hitrate"] <= v["static/hitrate"] {
		t.Errorf("adaptive hit-rate %.3f should beat static %.3f",
			v["adaptive/hitrate"], v["static/hitrate"])
	}
	if v["adaptive/hitrate"] <= v["blind/hitrate"] {
		t.Errorf("adaptive hit-rate %.3f should beat blind %.3f",
			v["adaptive/hitrate"], v["blind/hitrate"])
	}
	// The margin is the point: feedback buys a real improvement, not a
	// rounding error (measured ~13–20 points across seeds).
	if v["adaptive/hitrate"]-v["blind/hitrate"] < 0.05 {
		t.Errorf("adaptive margin over blind %.3f below 5 points",
			v["adaptive/hitrate"]-v["blind/hitrate"])
	}
	// Static has no governor, so nothing is ever shed or rejected there.
	if v["static/shed"] != 0 || v["static/rejected"] != 0 {
		t.Errorf("static arm shed %.0f / rejected %.0f, want 0/0",
			v["static/shed"], v["static/rejected"])
	}
}
