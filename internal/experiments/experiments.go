// Package experiments contains the runnable reproductions of every
// figure and load-bearing claim of the paper, indexed E1–E13 (see
// DESIGN.md for the mapping). Each experiment builds its scenario from
// the substrate packages, runs it on the deterministic kernel, and
// returns both a printable table (the paper-style rows) and a map of
// named values that tests and benchmarks assert the *shape* of.
//
// The paper is a survey with no quantitative evaluation of its own; the
// expected shapes come from its qualitative figures (Fig. 2, Fig. 4,
// Fig. 5) and the explicit arguments of §III–§V. EXPERIMENTS.md records
// claim-vs-measured for every run.
package experiments

import (
	"fmt"

	"vcloud/internal/metrics"
)

// Config tunes an experiment run.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed int64
	// Quick shrinks populations and durations for tests and benchmarks;
	// the full-size runs back EXPERIMENTS.md.
	Quick bool
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Table  *metrics.Table
	Values map[string]float64
}

// String renders the result table.
func (r *Result) String() string {
	return fmt.Sprintf("%s\n", r.Table.String())
}

// Runner is a named experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(Config) (*Result, error)
}

// All lists every experiment in order.
func All() []Runner {
	return []Runner{
		{"E1", "cloud comparison (Fig. 2)", E1CloudComparison},
		{"E2", "v-cloud architectures (Fig. 4)", E2Architectures},
		{"E3", "cluster stability", E3ClusterStability},
		{"E4", "routing protocols", E4Routing},
		{"E5", "authentication protocols (Fig. 5)", E5Authentication},
		{"E6", "access-control latency", E6AccessControl},
		{"E7", "task handover vs drop", E7TaskHandover},
		{"E8", "replication vs availability", E8Replication},
		{"E9", "trust validators vs attackers", E9Trust},
		{"E10", "attack/defense drill", E10Attacks},
		{"E11", "controller failover under crash", E11Failover},
		{"E12", "dependable execution under Byzantine workers", E12Dependability},
		{"E13", "split-brain fencing vs failover-only", E13SplitBrain},
	}
}

// pick returns quick when cfg.Quick, else full.
func pick(cfg Config, quick, full int) int {
	if cfg.Quick {
		return quick
	}
	return full
}

func pickF(cfg Config, quick, full float64) float64 {
	if cfg.Quick {
		return quick
	}
	return full
}
