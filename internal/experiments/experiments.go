// Package experiments contains the runnable reproductions of every
// figure and load-bearing claim of the paper, indexed E1–E17 (see
// DESIGN.md for the mapping). Each experiment builds its scenario from
// the substrate packages, runs it on the deterministic kernel, and
// returns both a printable table (the paper-style rows) and a map of
// named values that tests and benchmarks assert the *shape* of.
//
// The paper is a survey with no quantitative evaluation of its own; the
// expected shapes come from its qualitative figures (Fig. 2, Fig. 4,
// Fig. 5) and the explicit arguments of §III–§V. EXPERIMENTS.md records
// claim-vs-measured for every run.
package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vcloud/internal/metrics"
	"vcloud/internal/sim"
)

// Config tunes an experiment run.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed int64
	// Quick shrinks populations and durations for tests and benchmarks;
	// the full-size runs back EXPERIMENTS.md.
	Quick bool
	// Parallel bounds how many of an experiment's sweep points run
	// concurrently; zero or one means serial. Every sweep point builds
	// its own kernel and scenario, and the table is assembled in sweep
	// order after all points finish, so the rendered output is identical
	// at any parallelism.
	Parallel int
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Table  *metrics.Table
	Values map[string]float64
	// KernelEvents and KernelWall aggregate the event count and the
	// wall-clock dispatch time over every kernel the experiment built —
	// the perf-telemetry feed for vcloudbench's BENCH.json.
	KernelEvents uint64
	KernelWall   time.Duration
}

// EventsPerSec is the experiment's aggregate kernel throughput.
func (r *Result) EventsPerSec() float64 {
	if r.KernelWall <= 0 {
		return 0
	}
	return float64(r.KernelEvents) / r.KernelWall.Seconds()
}

// point collects one sweep point's finished output: its table rows, its
// contribution to Values, and its kernel telemetry. Each point is written
// by exactly one worker goroutine and read only after all workers join.
type point struct {
	rows   [][]string
	values map[string]float64
	events uint64
	wall   time.Duration
}

// addRow buffers one table row.
func (p *point) addRow(cells ...string) {
	p.rows = append(p.rows, cells)
}

// set buffers one named value.
func (p *point) set(key string, v float64) {
	if p.values == nil {
		p.values = make(map[string]float64)
	}
	p.values[key] = v
}

// tally accumulates a finished kernel's telemetry into the point.
func (p *point) tally(k *sim.Kernel) {
	p.events += k.Processed()
	p.wall += k.WallTime()
}

// tallyRaw accumulates telemetry the point does not own a kernel for
// (e.g. a sharded-kernel run reporting aggregated counters).
func (p *point) tallyRaw(events uint64, wall time.Duration) {
	p.events += events
	p.wall += wall
}

// forEachPar runs fn(0..n-1), spreading the calls over up to cfg.Parallel
// worker goroutines. With Parallel <= 1 it degenerates to a plain serial
// loop. The first error stops new work and is returned after all workers
// join; indices already started still run to completion.
func forEachPar(cfg Config, n int, fn func(i int) error) error {
	workers := cfg.Parallel
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		//vcloudlint:allow nogoroutine work-stealing counter for the fan-out pool; no kernel code runs on this goroutine
		next atomic.Int64
		//vcloudlint:allow nogoroutine pool join barrier; results are folded serially after Wait
		wg sync.WaitGroup
		//vcloudlint:allow nogoroutine guards firstErr across pool workers, never kernel state
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//vcloudlint:allow nogoroutine bounded worker pool running independent kernels; fan-in is serial
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// assemble is the deterministic fan-out/fan-in at the heart of every
// experiment: run n independent sweep points (in parallel when configured),
// then fold their buffered rows, values and kernel tallies into the table
// and value map in sweep order. Because each point owns its kernel and the
// fold is serial and index-ordered, the assembled table is byte-identical
// at any parallelism.
func assemble(cfg Config, table *metrics.Table, values map[string]float64, n int, run func(i int, p *point) error) (uint64, time.Duration, error) {
	pts := make([]point, n)
	if err := forEachPar(cfg, n, func(i int) error { return run(i, &pts[i]) }); err != nil {
		return 0, 0, err
	}
	var events uint64
	var wall time.Duration
	for i := range pts {
		for _, row := range pts[i].rows {
			table.AddRow(row...)
		}
		for k, v := range pts[i].values {
			values[k] = v
		}
		events += pts[i].events
		wall += pts[i].wall
	}
	return events, wall, nil
}

// String renders the result table.
func (r *Result) String() string {
	return fmt.Sprintf("%s\n", r.Table.String())
}

// Runner is a named experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(Config) (*Result, error)
}

// All lists every experiment in order.
func All() []Runner {
	return []Runner{
		{"E1", "cloud comparison (Fig. 2)", E1CloudComparison},
		{"E2", "v-cloud architectures (Fig. 4)", E2Architectures},
		{"E3", "cluster stability", E3ClusterStability},
		{"E4", "routing protocols", E4Routing},
		{"E5", "authentication protocols (Fig. 5)", E5Authentication},
		{"E6", "access-control latency", E6AccessControl},
		{"E7", "task handover vs drop", E7TaskHandover},
		{"E8", "replication vs availability", E8Replication},
		{"E9", "trust validators vs attackers", E9Trust},
		{"E10", "attack/defense drill", E10Attacks},
		{"E11", "controller failover under crash", E11Failover},
		{"E12", "dependable execution under Byzantine workers", E12Dependability},
		{"E13", "split-brain fencing vs failover-only", E13SplitBrain},
		{"E14", "storage durability under churn", E14Storage},
		{"E15", "DAG execution under churn", E15DAGExecution},
		{"E16", "congestion-aware offload placement", E16CongestionPlacement},
		{"E17", "geo-sharded parallel kernel determinism", E17ShardedKernel},
	}
}

// pick returns quick when cfg.Quick, else full.
func pick(cfg Config, quick, full int) int {
	if cfg.Quick {
		return quick
	}
	return full
}

func pickF(cfg Config, quick, full float64) float64 {
	if cfg.Quick {
		return quick
	}
	return full
}
