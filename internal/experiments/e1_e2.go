package experiments

import (
	"fmt"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/metrics"
	"vcloud/internal/radio"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
)

// E1CloudComparison reproduces Fig. 2's qualitative comparison as a
// measured table: the same task workload runs against a conventional
// cloud (healthy LTE uplink, large datacenter), a mobile-cloud stand-in
// (slower uplink, modest compute), and a dynamic vehicular cloud — first
// with infrastructure healthy, then during an uplink outage (the
// "infrastructure reliance" row of Fig. 2 made operational).
func E1CloudComparison(cfg Config) (*Result, error) {
	vehicles := pick(cfg, 25, 60)
	tasks := pick(cfg, 20, 80)
	phase := sim.Time(pick(cfg, 60, 180)) * time.Second

	type arm struct {
		name   string
		mkBack func(s *scenario.Scenario, stats *vcloud.Stats) (vcloud.Backend, *radio.Uplink, error)
	}
	arms := []arm{
		{"conventional", func(s *scenario.Scenario, stats *vcloud.Stats) (vcloud.Backend, *radio.Uplink, error) {
			up, err := radio.NewUplink(s.Kernel, radio.UplinkParams{
				BaseRTT: 60 * time.Millisecond, BandwidthMbps: 20, LossProb: 0.01, JitterFrac: 0.2,
			})
			if err != nil {
				return nil, nil, err
			}
			b, err := vcloud.NewRemoteCloud("conventional", s.Kernel, up, 50_000, stats)
			return b, up, err
		}},
		{"mobile", func(s *scenario.Scenario, stats *vcloud.Stats) (vcloud.Backend, *radio.Uplink, error) {
			up, err := radio.NewUplink(s.Kernel, radio.UplinkParams{
				BaseRTT: 90 * time.Millisecond, BandwidthMbps: 5, LossProb: 0.03, JitterFrac: 0.3,
			})
			if err != nil {
				return nil, nil, err
			}
			b, err := vcloud.NewRemoteCloud("mobile", s.Kernel, up, 5_000, stats)
			return b, up, err
		}},
		{"vehicular", nil},
	}

	table := metrics.NewTable(
		"E1 — Conventional vs mobile vs vehicular cloud (Fig. 2)",
		"backend", "healthy compl.", "healthy p50", "outage compl.", "infra reliance",
	)
	values := map[string]float64{}

	events, wall, err := assemble(cfg, table, values, len(arms), func(i int, p *point) error {
		a := arms[i]
		net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 3000, Segments: 3, SpeedLimit: 25, Lanes: 2})
		if err != nil {
			return err
		}
		s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: vehicles})
		if err != nil {
			return err
		}
		stats := &vcloud.Stats{}
		var backend vcloud.Backend
		var uplink *radio.Uplink
		var dep *vcloud.Deployment
		if a.mkBack != nil {
			backend, uplink, err = a.mkBack(s, stats)
			if err != nil {
				return err
			}
		} else {
			dep, err = vcloud.Deploy(s, vcloud.Dynamic, vcloud.DeployConfig{}, stats)
			if err != nil {
				return err
			}
		}
		if err := s.Start(); err != nil {
			return err
		}
		if err := s.RunFor(10 * time.Second); err != nil {
			return err
		}

		submit := func(n int) {
			for i := 0; i < n; i++ {
				task := vcloud.Task{Ops: 2000, InputBytes: 4000, OutputBytes: 2000}
				if backend != nil {
					_ = backend.Submit(task, nil)
				} else {
					_ = dep.SubmitAnywhere(task, nil)
				}
			}
		}

		// Phase 1: healthy.
		submit(tasks)
		if err := s.RunFor(phase); err != nil {
			return err
		}
		healthyDone := stats.Completed.Value()
		healthyP50 := stats.Latency.Percentile(50)

		// Phase 2: infrastructure outage.
		if uplink != nil {
			uplink.SetAvailable(false)
		}
		before := stats.Completed.Value()
		submit(tasks)
		if err := s.RunFor(phase); err != nil {
			return err
		}
		outageDone := stats.Completed.Value() - before

		healthyRate := float64(healthyDone) / float64(tasks)
		outageRate := float64(outageDone) / float64(tasks)
		reliance := healthyRate - outageRate // how much dies with the infra
		p.addRow(a.name,
			metrics.Pct(healthyRate), metrics.Ms(healthyP50),
			metrics.Pct(outageRate), fmt.Sprintf("%.2f", reliance),
		)
		p.set(a.name+"/healthy", healthyRate)
		p.set(a.name+"/outage", outageRate)
		p.set(a.name+"/p50ms", healthyP50)
		p.tally(s.Kernel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E1", Title: "cloud comparison", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}

// E2Architectures reproduces Fig. 4: the three vehicular-cloud
// architectures run the same workload on their natural scenarios, then
// infrastructure is destroyed ("disaster", §V.A) and the workload
// repeats — dynamic clouds should degrade least.
func E2Architectures(cfg Config) (*Result, error) {
	tasks := pick(cfg, 15, 60)
	phase := sim.Time(pick(cfg, 60, 180)) * time.Second

	table := metrics.NewTable(
		"E2 — Stationary vs infrastructure-based vs dynamic v-clouds (Fig. 4)",
		"architecture", "members", "healthy compl.", "disaster compl.",
	)
	values := map[string]float64{}

	type arm struct {
		name string
		arch vcloud.Architecture
	}
	arms := []arm{
		{"stationary", vcloud.Stationary},
		{"infrastructure", vcloud.Infrastructure},
		{"dynamic", vcloud.Dynamic},
	}
	events, wall, err := assemble(cfg, table, values, len(arms), func(i int, p *point) error {
		a := arms[i]
		var s *scenario.Scenario
		var err error
		switch a.arch {
		case vcloud.Stationary:
			net, nerr := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 4, AisleLenM: 150, AisleGapM: 40})
			if nerr != nil {
				return nerr
			}
			s, err = scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: pick(cfg, 15, 40), Parked: true})
			if err != nil {
				return err
			}
			if _, err := s.AddRSU(geo.Point{X: 0, Y: 0}); err != nil {
				return err
			}
		default:
			net, nerr := roadnet.Highway(roadnet.HighwaySpec{LengthM: 3000, Segments: 3, SpeedLimit: 25, Lanes: 2})
			if nerr != nil {
				return nerr
			}
			s, err = scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: pick(cfg, 25, 60)})
			if err != nil {
				return err
			}
			if a.arch == vcloud.Infrastructure {
				for _, x := range []float64{500, 1500, 2500} {
					if _, err := s.AddRSU(geo.Point{X: x, Y: 15}); err != nil {
						return err
					}
				}
			}
		}
		stats := &vcloud.Stats{}
		dep, err := vcloud.Deploy(s, a.arch, vcloud.DeployConfig{}, stats)
		if err != nil {
			return err
		}
		if err := s.Start(); err != nil {
			return err
		}
		if err := s.RunFor(10 * time.Second); err != nil {
			return err
		}

		members := 0
		for _, c := range dep.ActiveControllers() {
			members += c.NumMembers()
		}

		submit := func(n int) int {
			sent := 0
			for i := 0; i < n; i++ {
				if err := dep.SubmitAnywhere(vcloud.Task{Ops: 2000, InputBytes: 2000, OutputBytes: 1000}, nil); err == nil {
					sent++
				}
			}
			return sent
		}
		submit(tasks)
		if err := s.RunFor(phase); err != nil {
			return err
		}
		healthy := float64(stats.Completed.Value()) / float64(tasks)

		// Disaster: every RSU dies. Stationary and infrastructure clouds
		// lose their controllers; dynamic does not use any.
		for _, rsu := range s.RSUs {
			rsu.Stop()
		}
		for _, c := range dep.ActiveControllers() {
			if scenario.IsRSU(c.Addr()) {
				c.Stop()
			}
		}
		dep.SetEmergency(true)
		before := stats.Completed.Value()
		submitted := submit(tasks)
		if err := s.RunFor(phase); err != nil {
			return err
		}
		disaster := float64(stats.Completed.Value()-before) / float64(tasks)
		_ = submitted

		p.addRow(a.name, fmt.Sprintf("%d", members), metrics.Pct(healthy), metrics.Pct(disaster))
		p.set(a.name+"/healthy", healthy)
		p.set(a.name+"/disaster", disaster)
		p.set(a.name+"/members", float64(members))
		p.tally(s.Kernel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E2", Title: "architectures", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}
