package experiments

import (
	"fmt"

	"vcloud/internal/geo"
	"vcloud/internal/metrics"
	"vcloud/internal/shardworld"
)

// E17ShardedKernel operationalizes the geo-sharded parallel event kernel
// (DESIGN.md "Sharded kernel & conservative lookahead"): the same
// beaconing-fleet scenario — churn and a mid-run beacon outage included —
// runs at 1, 2, 4 and 8 geographic shards, and the experiment verifies
// the tentpole contract directly: the model output (sampled fleet
// counters, radio totals, FNV checksum) is byte-for-byte identical at
// every shard count. The table reports only deterministic quantities;
// wall-derived throughput and the critical-path speedup (the parallelism
// the decomposition exposes, realized when one core per shard exists) go
// to Values for vcloudbench's BENCH.json.
func E17ShardedKernel(cfg Config) (*Result, error) {
	shardCounts := []int{1, 2, 4, 8}

	base := shardworld.DefaultConfig(cfg.Seed, 1)
	base.Vehicles = pick(cfg, 120, 240)
	base.Ticks = pick(cfg, 48, 144)
	base.SampleEvery = pick(cfg, 12, 24)
	base.WorldSize = pickF(cfg, 2400, 3600)
	base.ChurnFrac = 0.2
	base.Outage = &shardworld.Outage{
		Rect: outageRect(base.WorldSize),
		// The middle third of the run loses beacons from the world center.
		FromTick: base.Ticks / 3,
		ToTick:   2 * base.Ticks / 3,
	}

	table := metrics.NewTable(
		"E17 — Geo-sharded parallel kernel: output invariance across shard counts",
		"shards", "grid", "kernel events", "cross events", "handoffs", "checksum",
	)
	values := map[string]float64{}

	results := make([]*shardworld.Result, len(shardCounts))
	events, wall, err := assemble(cfg, table, values, len(shardCounts), func(i int, p *point) error {
		wcfg := base
		wcfg.Shards = shardCounts[i]
		res, err := shardworld.Run(wcfg)
		if err != nil {
			return err
		}
		results[i] = res
		nx, ny := geo.FactorShards(res.Shards)
		p.addRow(
			fmt.Sprintf("%d", res.Shards),
			fmt.Sprintf("%dx%d", nx, ny),
			fmt.Sprintf("%d", res.Processed),
			fmt.Sprintf("%d", res.CrossEvents),
			fmt.Sprintf("%d", res.Handoffs),
			fmt.Sprintf("%016x", res.Checksum),
		)
		key := fmt.Sprintf("s%d", res.Shards)
		p.set(key+"/events_per_sec", res.EventsPerSec())
		p.set(key+"/critpath_speedup", res.CritPathSpeedup())
		p.set(key+"/cross_events", float64(res.CrossEvents))
		p.set(key+"/handoffs", float64(res.Handoffs))
		p.tallyRaw(res.Processed, res.Wall)
		return nil
	})
	if err != nil {
		return nil, err
	}

	identical := 1.0
	verdict := "identical"
	serial := results[0].Comparable()
	for _, res := range results[1:] {
		if res.Comparable() != serial {
			identical = 0
			verdict = "DIVERGED"
		}
	}
	table.AddRow("all", "-", "-", "-", "-", verdict)
	values["identical"] = identical

	return &Result{ID: "E17", Title: "geo-sharded parallel kernel determinism", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}

// outageRect is the world-center region the E17 outage silences.
func outageRect(world float64) geo.Rect {
	return geo.NewRect(
		geo.Point{X: world / 4, Y: world / 4},
		geo.Point{X: 3 * world / 4, Y: 3 * world / 4},
	)
}
