package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"vcloud/internal/attack"
	"vcloud/internal/geo"
	"vcloud/internal/metrics"
	"vcloud/internal/mobility"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/trust"
	"vcloud/internal/vcloud"
)

// E12Dependability measures the §V dependable-execution claim: result
// correctness under Byzantine workers that return wrong values. Four
// policies face rising Byzantine fractions on the same seeded
// stationary cloud and workload:
//
//   - baseline: single copy, no retries — whatever one worker returns
//     is the answer;
//   - retry: single copy with backoff retries — helps against crashes,
//     not lies (a retry may land on another liar, and a lie is
//     indistinguishable from a result without redundancy);
//   - redundant: K=3 disjoint replicas with majority voting — lies are
//     outvoted while honest workers form a quorum;
//   - trustgated: redundancy plus the Fig. 3 trust loop — losing voters
//     accrue negative evidence, and workers below the trust threshold
//     are excluded from placement, so the cloud learns who lies and
//     stops asking them.
//
// Reported per arm×fraction: correct-result completion (completions
// whose value matches the honest computation, over submissions), wrong
// results accepted, and failures.
func E12Dependability(cfg Config) (*Result, error) {
	vehicles := pick(cfg, 12, 20)
	tasks := pick(cfg, 30, 50)
	fractions := []float64{0.2, 0.6}
	if !cfg.Quick {
		fractions = []float64{0.2, 0.4, 0.6}
	}

	table := metrics.NewTable(
		"E12 — Dependable execution under Byzantine workers (§V)",
		"policy", "byz", "correct", "wrong", "failed", "replicas", "wrong-votes",
	)
	values := map[string]float64{}

	type arm struct {
		name    string
		policy  *vcloud.DependabilityPolicy
		trusted bool
	}
	arms := []arm{
		{"baseline", nil, false},
		{"retry", &vcloud.DependabilityPolicy{Replicas: 1, MaxRetries: 3}, false},
		{"redundant", &vcloud.DependabilityPolicy{Replicas: 3, MaxRetries: 3}, false},
		{"trustgated", &vcloud.DependabilityPolicy{
			Replicas: 3, MaxRetries: 3, TrustThreshold: 0.45, TrustWeighted: true,
		}, true},
	}

	type sweep struct {
		a    arm
		frac float64
	}
	var sweeps []sweep
	for _, a := range arms {
		for _, frac := range fractions {
			sweeps = append(sweeps, sweep{a, frac})
		}
	}
	events, wall, err := assemble(cfg, table, values, len(sweeps), func(si int, p *point) error {
		a, frac := sweeps[si].a, sweeps[si].frac
		net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 4, AisleLenM: 150, AisleGapM: 40})
		if err != nil {
			return err
		}
		s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: vehicles, Parked: true})
		if err != nil {
			return err
		}
		if _, err := s.AddRSU(geo.Point{X: 0, Y: 0}); err != nil {
			return err
		}
		stats := &vcloud.Stats{}
		ctlCfg := vcloud.ControllerConfig{Depend: a.policy}
		if a.trusted {
			ws, err := trust.NewWorkerSet(s.Kernel.Now, 0)
			if err != nil {
				return err
			}
			ctlCfg.Workers = ws
		}
		dep, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{Controller: ctlCfg}, stats)
		if err != nil {
			return err
		}

		// The same lowest-ID fraction of members lies on every result,
		// deterministically across arms.
		ids := make([]mobility.VehicleID, 0, len(dep.Members))
		for id := range dep.Members {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		nByz := int(math.Round(frac * float64(len(ids))))
		for _, id := range ids[:nByz] {
			if _, err := attack.Byzantify(dep.Members[id], 1, nil); err != nil {
				return err
			}
		}

		if err := s.Start(); err != nil {
			return err
		}
		if err := s.RunFor(10 * time.Second); err != nil {
			return err
		}

		// Submit faster than a member drains (200 ms spacing vs 1.5 s
		// of compute) so backlog spreads placement across the whole
		// fleet; with idle members the earliest-finish scheduler would
		// deterministically reuse one member and measure that member's
		// honesty rather than the Byzantine fraction.
		correct, wrong, failed := 0, 0, 0
		tmpl := vcloud.Task{Ops: 1500, InputBytes: 1000, OutputBytes: 500}
		for i := 0; i < tasks; i++ {
			s.Kernel.After(sim.Time(i)*200*time.Millisecond, func() {
				err := dep.SubmitAnywhere(tmpl, func(r vcloud.TaskResult) {
					if !r.OK {
						failed++
						return
					}
					ref := tmpl
					ref.ID = r.ID
					if r.Value == vcloud.TaskValue(ref) {
						correct++
					} else {
						wrong++
					}
				})
				if err != nil {
					failed++
				}
			})
		}
		horizon := sim.Time(tasks)*200*time.Millisecond + 90*time.Second
		if err := s.RunFor(horizon); err != nil {
			return err
		}

		key := fmt.Sprintf("%s/byz%.1f", a.name, frac)
		correctRate := float64(correct) / float64(tasks)
		p.addRow(a.name, metrics.Pct(frac),
			metrics.Pct(correctRate),
			fmt.Sprintf("%d", wrong),
			fmt.Sprintf("%d", failed),
			fmt.Sprintf("%d", stats.ReplicaDispatches.Value()),
			fmt.Sprintf("%d", stats.WrongVotes.Value()))
		p.set(key+"/correct", correctRate)
		p.set(key+"/wrong", float64(wrong))
		p.set(key+"/failed", float64(failed))
		p.tally(s.Kernel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E12", Title: "dependable execution", Table: table, Values: values,
		KernelEvents: events, KernelWall: wall}, nil
}
