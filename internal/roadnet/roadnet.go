// Package roadnet models the road network that vehicles move on: a
// directed graph of intersections (nodes) and road segments (edges) with
// speed limits, plus generators for the synthetic topologies used in the
// experiments (Manhattan grid, highway corridor, parking lot) and
// shortest-path routing for vehicle trip planning.
//
// The package substitutes for the real road maps / traces the vehicular
// networking literature uses (see DESIGN.md, substitution table): what the
// paper's arguments depend on is density, speed and direction structure,
// all of which these generators produce.
package roadnet

import (
	"container/heap"
	"fmt"
	"math"

	"vcloud/internal/geo"
)

// NodeID identifies an intersection.
type NodeID int32

// EdgeID identifies a directed road segment.
type EdgeID int32

// Node is an intersection or endpoint.
type Node struct {
	ID  NodeID
	Pos geo.Point
	// out holds IDs of edges leaving this node.
	out []EdgeID
}

// Out returns the IDs of edges leaving the node. The returned slice must
// not be modified.
func (n *Node) Out() []EdgeID { return n.out }

// Edge is a one-way road segment from From to To. Two-way roads are two
// edges.
type Edge struct {
	ID         EdgeID
	From, To   NodeID
	Length     float64 // meters
	SpeedLimit float64 // m/s
	Lanes      int
}

// Network is an immutable-after-build road network.
type Network struct {
	nodes  []Node
	edges  []Edge
	bounds geo.Rect
}

// Builder incrementally constructs a Network.
type Builder struct {
	n Network
}

// NewBuilder returns an empty network builder.
func NewBuilder() *Builder { return &Builder{} }

// AddNode adds an intersection at pos and returns its ID.
func (b *Builder) AddNode(pos geo.Point) NodeID {
	id := NodeID(len(b.n.nodes))
	b.n.nodes = append(b.n.nodes, Node{ID: id, Pos: pos})
	return id
}

// AddEdge adds a one-way segment between existing nodes. Length is derived
// from node positions. speedLimit is in m/s and must be positive.
func (b *Builder) AddEdge(from, to NodeID, speedLimit float64, lanes int) (EdgeID, error) {
	if int(from) >= len(b.n.nodes) || int(to) >= len(b.n.nodes) || from < 0 || to < 0 {
		return 0, fmt.Errorf("roadnet: edge endpoints %d->%d out of range", from, to)
	}
	if from == to {
		return 0, fmt.Errorf("roadnet: self-loop at node %d", from)
	}
	if speedLimit <= 0 {
		return 0, fmt.Errorf("roadnet: speed limit must be positive, got %v", speedLimit)
	}
	if lanes < 1 {
		lanes = 1
	}
	id := EdgeID(len(b.n.edges))
	e := Edge{
		ID:         id,
		From:       from,
		To:         to,
		Length:     b.n.nodes[from].Pos.Dist(b.n.nodes[to].Pos),
		SpeedLimit: speedLimit,
		Lanes:      lanes,
	}
	b.n.edges = append(b.n.edges, e)
	b.n.nodes[from].out = append(b.n.nodes[from].out, id)
	return id, nil
}

// AddTwoWay adds edges in both directions and returns both IDs.
func (b *Builder) AddTwoWay(a, c NodeID, speedLimit float64, lanes int) (EdgeID, EdgeID, error) {
	e1, err := b.AddEdge(a, c, speedLimit, lanes)
	if err != nil {
		return 0, 0, err
	}
	e2, err := b.AddEdge(c, a, speedLimit, lanes)
	if err != nil {
		return 0, 0, err
	}
	return e1, e2, nil
}

// Build finalizes and returns the network. The builder must not be used
// afterwards.
func (b *Builder) Build() (*Network, error) {
	if len(b.n.nodes) == 0 {
		return nil, fmt.Errorf("roadnet: network has no nodes")
	}
	minP := geo.Point{X: math.Inf(1), Y: math.Inf(1)}
	maxP := geo.Point{X: math.Inf(-1), Y: math.Inf(-1)}
	for _, n := range b.n.nodes {
		minP.X = math.Min(minP.X, n.Pos.X)
		minP.Y = math.Min(minP.Y, n.Pos.Y)
		maxP.X = math.Max(maxP.X, n.Pos.X)
		maxP.Y = math.Max(maxP.Y, n.Pos.Y)
	}
	// Pad so border positions are strictly inside.
	pad := 50.0
	b.n.bounds = geo.NewRect(
		geo.Point{X: minP.X - pad, Y: minP.Y - pad},
		geo.Point{X: maxP.X + pad, Y: maxP.Y + pad},
	)
	net := b.n
	b.n = Network{}
	return &net, nil
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumEdges returns the edge count.
func (n *Network) NumEdges() int { return len(n.edges) }

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) *Node { return &n.nodes[id] }

// Edge returns the edge with the given ID.
func (n *Network) Edge(id EdgeID) *Edge { return &n.edges[id] }

// Bounds returns the padded bounding box of the network.
func (n *Network) Bounds() geo.Rect { return n.bounds }

// PosAlong returns the position a fraction t (0..1) along edge e.
func (n *Network) PosAlong(e EdgeID, t float64) geo.Point {
	ed := &n.edges[e]
	return n.nodes[ed.From].Pos.Lerp(n.nodes[ed.To].Pos, t)
}

// EdgeHeading returns the travel heading of edge e in radians.
func (n *Network) EdgeHeading(e EdgeID) float64 {
	ed := &n.edges[e]
	return n.nodes[ed.To].Pos.Sub(n.nodes[ed.From].Pos).Heading()
}

// NearestNode returns the node closest to p.
func (n *Network) NearestNode(p geo.Point) NodeID {
	best := NodeID(0)
	bestD := math.Inf(1)
	for i := range n.nodes {
		if d := n.nodes[i].Pos.DistSq(p); d < bestD {
			best, bestD = n.nodes[i].ID, d
		}
	}
	return best
}

// pathItem is a priority-queue entry for Dijkstra/A*.
type pathItem struct {
	node  NodeID
	prio  float64
	index int
}

type pathQueue []*pathItem

func (q pathQueue) Len() int           { return len(q) }
func (q pathQueue) Less(i, j int) bool { return q[i].prio < q[j].prio }
func (q pathQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *pathQueue) Push(x any)        { it := x.(*pathItem); it.index = len(*q); *q = append(*q, it) }
func (q *pathQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// ShortestPath returns the sequence of edges of the fastest route (by
// free-flow travel time) from src to dst, using A* with a straight-line
// travel-time heuristic. It returns an error when dst is unreachable.
// A path from a node to itself is the empty path.
func (n *Network) ShortestPath(src, dst NodeID) ([]EdgeID, error) {
	if int(src) >= len(n.nodes) || int(dst) >= len(n.nodes) || src < 0 || dst < 0 {
		return nil, fmt.Errorf("roadnet: path endpoints %d->%d out of range", src, dst)
	}
	if src == dst {
		return nil, nil
	}
	// Admissible heuristic: straight-line distance at the network's top
	// speed.
	maxSpeed := 0.0
	for i := range n.edges {
		if n.edges[i].SpeedLimit > maxSpeed {
			maxSpeed = n.edges[i].SpeedLimit
		}
	}
	if maxSpeed == 0 {
		return nil, fmt.Errorf("roadnet: network has no edges")
	}
	h := func(a NodeID) float64 {
		return n.nodes[a].Pos.Dist(n.nodes[dst].Pos) / maxSpeed
	}

	dist := make(map[NodeID]float64, len(n.nodes))
	prevEdge := make(map[NodeID]EdgeID, len(n.nodes))
	done := make(map[NodeID]bool, len(n.nodes))
	dist[src] = 0
	pq := pathQueue{{node: src, prio: h(src)}}
	heap.Init(&pq)

	for pq.Len() > 0 {
		cur := heap.Pop(&pq).(*pathItem)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		if cur.node == dst {
			break
		}
		for _, eid := range n.nodes[cur.node].out {
			e := &n.edges[eid]
			if done[e.To] {
				continue
			}
			nd := dist[cur.node] + e.Length/e.SpeedLimit
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				prevEdge[e.To] = eid
				heap.Push(&pq, &pathItem{node: e.To, prio: nd + h(e.To)})
			}
		}
	}
	if !done[dst] {
		return nil, fmt.Errorf("roadnet: node %d unreachable from %d", dst, src)
	}
	var rev []EdgeID
	for at := dst; at != src; {
		e := prevEdge[at]
		rev = append(rev, e)
		at = n.edges[e].From
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// PathLength returns the total length in meters of a path of edges.
func (n *Network) PathLength(path []EdgeID) float64 {
	var total float64
	for _, e := range path {
		total += n.edges[e].Length
	}
	return total
}

// PathTime returns the free-flow travel time in seconds of a path.
func (n *Network) PathTime(path []EdgeID) float64 {
	var total float64
	for _, e := range path {
		total += n.edges[e].Length / n.edges[e].SpeedLimit
	}
	return total
}
