package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"vcloud/internal/geo"
)

func mustGrid(t testing.TB, rows, cols int) *Network {
	t.Helper()
	n, err := Grid(GridSpec{Rows: rows, Cols: cols, Spacing: 100, SpeedLimit: 14, Lanes: 1})
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	return n
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Build(); err == nil {
		t.Error("empty network should not build")
	}
	b = NewBuilder()
	a := b.AddNode(geo.Point{X: 0, Y: 0})
	c := b.AddNode(geo.Point{X: 100, Y: 0})
	if _, err := b.AddEdge(a, a, 10, 1); err == nil {
		t.Error("self-loop should error")
	}
	if _, err := b.AddEdge(a, NodeID(99), 10, 1); err == nil {
		t.Error("out-of-range endpoint should error")
	}
	if _, err := b.AddEdge(a, c, 0, 1); err == nil {
		t.Error("zero speed limit should error")
	}
	if _, err := b.AddEdge(a, c, -5, 1); err == nil {
		t.Error("negative speed limit should error")
	}
	eid, err := b.AddEdge(a, c, 10, 0) // lanes clamped to 1
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if n.Edge(eid).Lanes != 1 {
		t.Errorf("lanes = %d, want clamped 1", n.Edge(eid).Lanes)
	}
	if n.Edge(eid).Length != 100 {
		t.Errorf("derived length = %v, want 100", n.Edge(eid).Length)
	}
}

func TestGridStructure(t *testing.T) {
	n := mustGrid(t, 3, 4)
	if n.NumNodes() != 12 {
		t.Errorf("nodes = %d, want 12", n.NumNodes())
	}
	// Horizontal: 3 rows × 3 gaps × 2 dirs = 18; vertical: 2×4×2 = 16.
	if n.NumEdges() != 34 {
		t.Errorf("edges = %d, want 34", n.NumEdges())
	}
	// Every node must have at least 2 outgoing edges (corner nodes).
	for i := 0; i < n.NumNodes(); i++ {
		if len(n.Node(NodeID(i)).Out()) < 2 {
			t.Errorf("node %d has %d out-edges", i, len(n.Node(NodeID(i)).Out()))
		}
	}
	if !n.Bounds().Contains(geo.Point{X: 300, Y: 200}) {
		t.Error("bounds should contain far corner")
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := Grid(GridSpec{Rows: 1, Cols: 5, Spacing: 100}); err == nil {
		t.Error("1-row grid should error")
	}
	if _, err := Grid(GridSpec{Rows: 3, Cols: 3, Spacing: 0}); err == nil {
		t.Error("zero spacing should error")
	}
}

func TestGridDefaults(t *testing.T) {
	n, err := Grid(GridSpec{Rows: 2, Cols: 2, Spacing: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sl := n.Edge(0).SpeedLimit; sl != 13.9 {
		t.Errorf("default speed = %v, want 13.9", sl)
	}
}

func TestShortestPathOnGrid(t *testing.T) {
	n := mustGrid(t, 4, 4)
	src := n.NearestNode(geo.Point{X: 0, Y: 0})
	dst := n.NearestNode(geo.Point{X: 300, Y: 300})
	path, err := n.ShortestPath(src, dst)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if got := n.PathLength(path); got != 600 {
		t.Errorf("path length = %v, want 600 (Manhattan distance)", got)
	}
	// Path must be contiguous: each edge starts where the previous ended.
	at := src
	for _, e := range path {
		if n.Edge(e).From != at {
			t.Fatalf("discontiguous path at edge %d", e)
		}
		at = n.Edge(e).To
	}
	if at != dst {
		t.Fatalf("path ends at %d, want %d", at, dst)
	}
	if pt := n.PathTime(path); math.Abs(pt-600.0/14.0) > 1e-9 {
		t.Errorf("path time = %v", pt)
	}
}

func TestShortestPathTrivialAndErrors(t *testing.T) {
	n := mustGrid(t, 2, 2)
	path, err := n.ShortestPath(0, 0)
	if err != nil || path != nil {
		t.Errorf("self path = %v, %v; want nil, nil", path, err)
	}
	if _, err := n.ShortestPath(0, NodeID(99)); err == nil {
		t.Error("out-of-range dst should error")
	}
	if _, err := n.ShortestPath(NodeID(-1), 0); err == nil {
		t.Error("negative src should error")
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(geo.Point{X: 0, Y: 0})
	c := b.AddNode(geo.Point{X: 100, Y: 0})
	d := b.AddNode(geo.Point{X: 200, Y: 0})
	if _, err := b.AddEdge(a, c, 10, 1); err != nil {
		t.Fatal(err)
	}
	// d has no incoming edges.
	_ = d
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.ShortestPath(a, d); err == nil {
		t.Error("unreachable node should error")
	}
	// One-way edge: c cannot reach a.
	if _, err := n.ShortestPath(c, a); err == nil {
		t.Error("one-way reverse should error")
	}
}

func TestShortestPathPrefersFaster(t *testing.T) {
	// Two routes a->d: short but slow via b, long but fast via c.
	b := NewBuilder()
	a := b.AddNode(geo.Point{X: 0, Y: 0})
	bn := b.AddNode(geo.Point{X: 50, Y: 10})
	cn := b.AddNode(geo.Point{X: 50, Y: -200})
	d := b.AddNode(geo.Point{X: 100, Y: 0})
	if _, err := b.AddEdge(a, bn, 2, 1); err != nil { // slow
		t.Fatal(err)
	}
	if _, err := b.AddEdge(bn, d, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddEdge(a, cn, 40, 1); err != nil { // fast detour
		t.Fatal(err)
	}
	if _, err := b.AddEdge(cn, d, 40, 1); err != nil {
		t.Fatal(err)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path, err := n.ShortestPath(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if n.Edge(path[0]).To != cn {
		t.Error("A* should prefer the faster (longer) route")
	}
}

// TestShortestPathMatchesDijkstraProperty: A* with the straight-line
// heuristic must return a path whose travel time equals a reference
// Bellman-Ford computation, on random grid pairs.
func TestShortestPathMatchesReference(t *testing.T) {
	n := mustGrid(t, 5, 5)
	// Reference: Bellman-Ford travel times from every source.
	ref := func(src NodeID) []float64 {
		dist := make([]float64, n.NumNodes())
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[src] = 0
		for iter := 0; iter < n.NumNodes(); iter++ {
			for i := 0; i < n.NumEdges(); i++ {
				e := n.Edge(EdgeID(i))
				if d := dist[e.From] + e.Length/e.SpeedLimit; d < dist[e.To] {
					dist[e.To] = d
				}
			}
		}
		return dist
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		src := NodeID(rng.Intn(n.NumNodes()))
		dst := NodeID(rng.Intn(n.NumNodes()))
		if src == dst {
			continue
		}
		path, err := n.ShortestPath(src, dst)
		if err != nil {
			t.Fatalf("ShortestPath(%d,%d): %v", src, dst, err)
		}
		want := ref(src)[dst]
		if got := n.PathTime(path); math.Abs(got-want) > 1e-9 {
			t.Errorf("trial %d: path time %v, reference %v", trial, got, want)
		}
	}
}

func TestHighway(t *testing.T) {
	n, err := Highway(HighwaySpec{LengthM: 5000, Segments: 5, SpeedLimit: 33, Lanes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumNodes() != 12 {
		t.Errorf("nodes = %d, want 12", n.NumNodes())
	}
	// 5 east + 5 west + 2 ramps.
	if n.NumEdges() != 12 {
		t.Errorf("edges = %d, want 12", n.NumEdges())
	}
	// The corridor must form a cycle: from any node you can get back.
	for i := 0; i < n.NumNodes(); i++ {
		for j := 0; j < n.NumNodes(); j++ {
			if i == j {
				continue
			}
			if _, err := n.ShortestPath(NodeID(i), NodeID(j)); err != nil {
				t.Fatalf("highway not strongly connected: %d->%d: %v", i, j, err)
			}
		}
	}
}

func TestHighwayValidation(t *testing.T) {
	if _, err := Highway(HighwaySpec{LengthM: 0}); err == nil {
		t.Error("zero length should error")
	}
}

func TestParkingLot(t *testing.T) {
	n, err := ParkingLot(ParkingLotSpec{Aisles: 3})
	if err != nil {
		t.Fatal(err)
	}
	// gate + 3 spine + 3 aisle ends.
	if n.NumNodes() != 7 {
		t.Errorf("nodes = %d, want 7", n.NumNodes())
	}
	// Gate must reach every aisle end.
	for i := 1; i < n.NumNodes(); i++ {
		if _, err := n.ShortestPath(0, NodeID(i)); err != nil {
			t.Errorf("gate cannot reach node %d: %v", i, err)
		}
	}
	if _, err := ParkingLot(ParkingLotSpec{Aisles: 0}); err == nil {
		t.Error("zero aisles should error")
	}
}

func TestPosAlongAndHeading(t *testing.T) {
	n := mustGrid(t, 2, 2)
	// Find the eastbound edge from node at (0,0).
	var east EdgeID = -1
	for _, eid := range n.Node(n.NearestNode(geo.Point{})).Out() {
		if n.EdgeHeading(eid) == 0 {
			east = eid
		}
	}
	if east < 0 {
		t.Fatal("no eastbound edge found")
	}
	p := n.PosAlong(east, 0.25)
	if p != (geo.Point{X: 25, Y: 0}) {
		t.Errorf("PosAlong = %v, want (25,0)", p)
	}
}

func TestNearestNode(t *testing.T) {
	n := mustGrid(t, 3, 3)
	id := n.NearestNode(geo.Point{X: 104, Y: 96})
	if n.Node(id).Pos != (geo.Point{X: 100, Y: 100}) {
		t.Errorf("NearestNode pos = %v, want (100,100)", n.Node(id).Pos)
	}
}

func BenchmarkShortestPathGrid20(b *testing.B) {
	n := mustGrid(b, 20, 20)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := NodeID(rng.Intn(n.NumNodes()))
		dst := NodeID(rng.Intn(n.NumNodes()))
		if src == dst {
			continue
		}
		if _, err := n.ShortestPath(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}
