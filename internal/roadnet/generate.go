package roadnet

import (
	"fmt"

	"vcloud/internal/geo"
)

// GridSpec configures a Manhattan-grid network: Rows×Cols intersections
// spaced Spacing meters apart, every street two-way.
type GridSpec struct {
	Rows, Cols int
	Spacing    float64 // meters between intersections
	SpeedLimit float64 // m/s, e.g. 13.9 (50 km/h) urban
	Lanes      int
}

// Grid generates a Manhattan grid network, the urban scenario used by the
// clustering and routing experiments.
func Grid(spec GridSpec) (*Network, error) {
	if spec.Rows < 2 || spec.Cols < 2 {
		return nil, fmt.Errorf("roadnet: grid needs at least 2x2 intersections, got %dx%d", spec.Rows, spec.Cols)
	}
	if spec.Spacing <= 0 {
		return nil, fmt.Errorf("roadnet: grid spacing must be positive, got %v", spec.Spacing)
	}
	if spec.SpeedLimit <= 0 {
		spec.SpeedLimit = 13.9 // 50 km/h default
	}
	if spec.Lanes < 1 {
		spec.Lanes = 1
	}
	b := NewBuilder()
	ids := make([][]NodeID, spec.Rows)
	for r := 0; r < spec.Rows; r++ {
		ids[r] = make([]NodeID, spec.Cols)
		for c := 0; c < spec.Cols; c++ {
			ids[r][c] = b.AddNode(geo.Point{X: float64(c) * spec.Spacing, Y: float64(r) * spec.Spacing})
		}
	}
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			if c+1 < spec.Cols {
				if _, _, err := b.AddTwoWay(ids[r][c], ids[r][c+1], spec.SpeedLimit, spec.Lanes); err != nil {
					return nil, err
				}
			}
			if r+1 < spec.Rows {
				if _, _, err := b.AddTwoWay(ids[r][c], ids[r+1][c], spec.SpeedLimit, spec.Lanes); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}

// HighwaySpec configures a straight multi-segment highway corridor with
// both travel directions, the high-mobility scenario of E3/E4.
type HighwaySpec struct {
	LengthM    float64 // total corridor length in meters
	Segments   int     // number of segments (interchange spacing)
	SpeedLimit float64 // m/s, e.g. 33.3 (120 km/h)
	Lanes      int
}

// Highway generates a two-direction highway corridor along the X axis.
// The opposing carriageway is offset 30 m in Y so positions of opposite
// directions differ (relevant to radio range and clustering).
func Highway(spec HighwaySpec) (*Network, error) {
	if spec.LengthM <= 0 {
		return nil, fmt.Errorf("roadnet: highway length must be positive, got %v", spec.LengthM)
	}
	if spec.Segments < 1 {
		spec.Segments = 1
	}
	if spec.SpeedLimit <= 0 {
		spec.SpeedLimit = 33.3 // 120 km/h default
	}
	if spec.Lanes < 1 {
		spec.Lanes = 2
	}
	b := NewBuilder()
	segLen := spec.LengthM / float64(spec.Segments)
	// Eastbound chain at Y=0, westbound chain at Y=30.
	east := make([]NodeID, spec.Segments+1)
	west := make([]NodeID, spec.Segments+1)
	for i := 0; i <= spec.Segments; i++ {
		east[i] = b.AddNode(geo.Point{X: float64(i) * segLen, Y: 0})
	}
	for i := 0; i <= spec.Segments; i++ {
		west[i] = b.AddNode(geo.Point{X: float64(i) * segLen, Y: 30})
	}
	for i := 0; i < spec.Segments; i++ {
		if _, err := b.AddEdge(east[i], east[i+1], spec.SpeedLimit, spec.Lanes); err != nil {
			return nil, err
		}
		if _, err := b.AddEdge(west[i+1], west[i], spec.SpeedLimit, spec.Lanes); err != nil {
			return nil, err
		}
	}
	// U-turn ramps at both ends so trips can continue indefinitely.
	if _, err := b.AddEdge(east[spec.Segments], west[spec.Segments], spec.SpeedLimit/2, 1); err != nil {
		return nil, err
	}
	if _, err := b.AddEdge(west[0], east[0], spec.SpeedLimit/2, 1); err != nil {
		return nil, err
	}
	return b.Build()
}

// ParkingLotSpec configures the stationary scenario ([4]'s airport long-term
// lot): rows of parking aisles connected to a single gate.
type ParkingLotSpec struct {
	Aisles    int
	AisleLenM float64
	AisleGapM float64
}

// ParkingLot generates a comb-shaped lot: a spine road with aisles. The
// vehicles in the stationary experiments park along the aisles and do not
// move; the road structure still matters for the gate-to-aisle distances
// used in radio reachability.
func ParkingLot(spec ParkingLotSpec) (*Network, error) {
	if spec.Aisles < 1 {
		return nil, fmt.Errorf("roadnet: parking lot needs at least one aisle, got %d", spec.Aisles)
	}
	if spec.AisleLenM <= 0 {
		spec.AisleLenM = 200
	}
	if spec.AisleGapM <= 0 {
		spec.AisleGapM = 40
	}
	const speed = 5.0 // m/s lot speed
	b := NewBuilder()
	gate := b.AddNode(geo.Point{X: 0, Y: 0})
	prevSpine := gate
	for i := 0; i < spec.Aisles; i++ {
		y := float64(i+1) * spec.AisleGapM
		spine := b.AddNode(geo.Point{X: 0, Y: y})
		if _, _, err := b.AddTwoWay(prevSpine, spine, speed, 1); err != nil {
			return nil, err
		}
		end := b.AddNode(geo.Point{X: spec.AisleLenM, Y: y})
		if _, _, err := b.AddTwoWay(spine, end, speed, 1); err != nil {
			return nil, err
		}
		prevSpine = spine
	}
	return b.Build()
}
