package trust

import (
	"fmt"
	"math"
	"sort"

	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// WorkerSet is the execution-trust engine of the Fig. 3 loop: it scores
// cloud members by the outcomes of the tasks they executed, so the
// scheduler can exclude untrustworthy workers from placement and weight
// their votes in redundant-execution majority decisions.
//
// Unlike the message-content validators above (which score anonymous,
// ephemeral reporters), workers are stable cloud members with persistent
// addresses, so direct evidence accumulation works: each worker carries
// Beta-reputation pseudo-counts (good, bad) and scores
// (good+1)/(good+bad+2) — the posterior mean with a uniform prior, 0.5
// when nothing is known.
//
// Evidence decays exponentially with virtual time (half-life Halflife),
// which keeps the evaluation "real-time" in the paper's §V.D sense:
// stale verdicts fade, a worker punished long ago drifts back toward the
// prior and gets re-tested instead of being exiled forever — essential
// under churn, where unreliability is often transient (a departing
// vehicle, a radio shadow) rather than malice.
type WorkerSet struct {
	now      func() sim.Time
	halflife sim.Time
	recs     map[vnet.Addr]*workerRec
}

type workerRec struct {
	good, bad float64
	last      sim.Time
}

// NewWorkerSet creates a worker-trust engine. now supplies virtual time
// (wire it to the kernel's clock); halflife is the evidence half-life
// (zero disables decay).
func NewWorkerSet(now func() sim.Time, halflife sim.Time) (*WorkerSet, error) {
	if now == nil {
		return nil, fmt.Errorf("trust: now clock must not be nil")
	}
	if halflife < 0 {
		return nil, fmt.Errorf("trust: halflife must be >= 0, got %v", halflife)
	}
	return &WorkerSet{
		now:      now,
		halflife: halflife,
		recs:     make(map[vnet.Addr]*workerRec),
	}, nil
}

// rec returns the (decayed) record for a worker, creating it on demand.
func (ws *WorkerSet) rec(a vnet.Addr) *workerRec {
	r, ok := ws.recs[a]
	if !ok {
		r = &workerRec{last: ws.now()}
		ws.recs[a] = r
		return r
	}
	if ws.halflife > 0 {
		now := ws.now()
		if dt := now - r.last; dt > 0 {
			f := math.Exp2(-float64(dt) / float64(ws.halflife))
			r.good *= f
			r.bad *= f
		}
		r.last = ws.now()
	}
	return r
}

// Good adds positive evidence with the given weight (a worker's result
// matched the majority verdict).
func (ws *WorkerSet) Good(a vnet.Addr, weight float64) {
	if weight <= 0 {
		return
	}
	ws.rec(a).good += weight
}

// Bad adds negative evidence with the given weight (a wrong vote, a
// silent timeout, a mid-task disappearance).
func (ws *WorkerSet) Bad(a vnet.Addr, weight float64) {
	if weight <= 0 {
		return
	}
	ws.rec(a).bad += weight
}

// Score returns the worker's trust in [0,1]; unknown workers score 0.5.
func (ws *WorkerSet) Score(a vnet.Addr) float64 {
	if _, ok := ws.recs[a]; !ok {
		return 0.5
	}
	r := ws.rec(a)
	return (r.good + 1) / (r.good + r.bad + 2)
}

// Weight maps a worker's Beta-reputation score into a multiplicative
// placement weight in [0.5, 1.5]: an unknown worker (score 0.5) weighs
// 1.0, a fully trusted one 1.5, a fully distrusted one 0.5. Schedulers
// divide a worker's predicted finish time by this weight, so at equal
// load the more reliable worker wins the placement without ever
// hard-excluding the rest of the pool.
func (ws *WorkerSet) Weight(a vnet.Addr) float64 {
	return 0.5 + ws.Score(a)
}

// Known returns how many workers have accumulated evidence.
func (ws *WorkerSet) Known() int { return len(ws.recs) }

// Snapshot returns current scores keyed by worker, for reports. Decay is
// applied as of now.
func (ws *WorkerSet) Snapshot() map[vnet.Addr]float64 {
	out := make(map[vnet.Addr]float64, len(ws.recs))
	for a := range ws.recs {
		out[a] = ws.Score(a)
	}
	return out
}

// Below returns the workers currently scoring under the threshold, in
// ascending address order — the placement exclusion set.
func (ws *WorkerSet) Below(threshold float64) []vnet.Addr {
	var out []vnet.Addr
	for a := range ws.recs {
		if ws.Score(a) < threshold {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
