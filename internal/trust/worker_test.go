package trust

import (
	"math"
	"testing"
	"time"

	"vcloud/internal/sim"
)

func TestWorkerSetScores(t *testing.T) {
	var now sim.Time
	ws, err := NewWorkerSet(func() sim.Time { return now }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ws.Score(1); got != 0.5 {
		t.Errorf("unknown worker score = %v, want the 0.5 prior", got)
	}
	ws.Good(1, 1)
	ws.Good(1, 1)
	ws.Bad(2, 1)
	if got := ws.Score(1); math.Abs(got-0.75) > 1e-9 { // (2+1)/(2+2)
		t.Errorf("score(1) = %v, want 0.75", got)
	}
	if got := ws.Score(2); math.Abs(got-1.0/3) > 1e-9 { // (0+1)/(1+2)
		t.Errorf("score(2) = %v, want 1/3", got)
	}
	if ws.Known() != 2 {
		t.Errorf("known = %d, want 2", ws.Known())
	}
	// Zero or negative weight is a no-op, not a panic.
	ws.Good(1, 0)
	ws.Bad(1, -3)
	if got := ws.Score(1); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("score(1) after no-op evidence = %v, want 0.75", got)
	}
}

func TestWorkerSetDecayRedeems(t *testing.T) {
	var now sim.Time
	ws, err := NewWorkerSet(func() sim.Time { return now }, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ws.Bad(7, 4) // score (0+1)/(4+2) = 1/6
	before := ws.Score(7)
	now += 10 * time.Second // one half-life: bad 4 -> 2, score 1/4
	mid := ws.Score(7)
	if mid <= before {
		t.Errorf("score did not recover after one half-life: %v -> %v", before, mid)
	}
	now += 10 * 10 * time.Second // ten more half-lives: evidence ~gone
	late := ws.Score(7)
	if math.Abs(late-0.5) > 0.01 {
		t.Errorf("score after long idle = %v, want drift back to the 0.5 prior", late)
	}
}

func TestWorkerSetBelow(t *testing.T) {
	var now sim.Time
	ws, err := NewWorkerSet(func() sim.Time { return now }, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws.Bad(5, 3)  // 0.2
	ws.Bad(3, 3)  // 0.2
	ws.Good(9, 5) // ~0.86
	got := ws.Below(0.4)
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("Below(0.4) = %v, want [3 5] in address order", got)
	}
	if snap := ws.Snapshot(); len(snap) != 3 || snap[9] < 0.8 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestWorkerSetValidation(t *testing.T) {
	if _, err := NewWorkerSet(nil, 0); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewWorkerSet(func() sim.Time { return 0 }, -time.Second); err == nil {
		t.Error("negative halflife accepted")
	}
}
