package trust

import (
	"math/rand"
	"testing"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/sim"
)

func tok(b byte) Token { return Token{b} }

func report(claim bool, x, y float64, path uint64, at sim.Time) Report {
	return Report{
		Reporter:    Token{byte(path), byte(at / 1e6)},
		Claim:       claim,
		ReporterPos: geo.Point{X: x, Y: y},
		PathID:      path,
		At:          at,
	}
}

func TestClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(0, time.Second); err == nil {
		t.Error("zero radius should error")
	}
	if _, err := NewClassifier(100, 0); err == nil {
		t.Error("zero window should error")
	}
}

func TestClassifierGroupsBySpaceTimeAndType(t *testing.T) {
	c, err := NewClassifier(100, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	base := geo.Point{X: 500, Y: 500}
	g1 := c.Assign("ice", base, 0, report(true, 490, 500, 1, 0))
	// Same event: nearby, in window.
	g2 := c.Assign("ice", geo.Point{X: 550, Y: 500}, 5*time.Second, report(true, 560, 500, 2, 5e9))
	if g1 != g2 {
		t.Error("nearby same-type reports split into different groups")
	}
	// Different type.
	g3 := c.Assign("crash", base, 0, report(true, 500, 500, 3, 0))
	if g3 == g1 {
		t.Error("different event types merged")
	}
	// Too far.
	g4 := c.Assign("ice", geo.Point{X: 2000, Y: 500}, 0, report(true, 2000, 500, 4, 0))
	if g4 == g1 {
		t.Error("distant event merged")
	}
	// Too late.
	g5 := c.Assign("ice", base, time.Minute, report(true, 500, 500, 5, 6e10))
	if g5 == g1 {
		t.Error("stale event merged")
	}
	if len(c.Groups()) != 4 {
		t.Errorf("groups = %d, want 4", len(c.Groups()))
	}
	if len(g1.Reports) != 2 {
		t.Errorf("g1 reports = %d, want 2", len(g1.Reports))
	}
}

func TestClassifierExpire(t *testing.T) {
	c, _ := NewClassifier(100, 10*time.Second)
	c.Assign("ice", geo.Point{}, 0, report(true, 0, 0, 1, 0))
	c.Assign("ice", geo.Point{X: 5000}, 0, report(true, 5000, 0, 2, 0))
	if removed := c.Expire(time.Minute); removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
	if len(c.Groups()) != 0 {
		t.Error("groups remain after expiry")
	}
}

func TestMajorityVote(t *testing.T) {
	g := &Group{Event: Event{Pos: geo.Point{X: 0, Y: 0}}}
	v := MajorityVote{}
	if got := v.Score(g); got != 0.5 {
		t.Errorf("empty score = %v, want 0.5", got)
	}
	for i := 0; i < 7; i++ {
		g.Reports = append(g.Reports, report(true, 0, 0, uint64(i), 0))
	}
	for i := 0; i < 3; i++ {
		g.Reports = append(g.Reports, report(false, 0, 0, uint64(10+i), 0))
	}
	if got := v.Score(g); got != 0.7 {
		t.Errorf("score = %v, want 0.7", got)
	}
}

func TestDistanceWeightedFavorsNearWitnesses(t *testing.T) {
	// Three liars far away vs two honest witnesses next to the event:
	// plain voting is fooled, distance weighting is not.
	g := &Group{Event: Event{Pos: geo.Point{X: 0, Y: 0}}}
	for i := 0; i < 3; i++ {
		g.Reports = append(g.Reports, report(false, 800, 0, uint64(i), 0)) // far liars deny
	}
	g.Reports = append(g.Reports, report(true, 10, 0, 7, 0)) // near witnesses confirm
	g.Reports = append(g.Reports, report(true, 20, 0, 8, 0))

	vote := MajorityVote{}.Score(g)
	bayes := DistanceWeighted{}.Score(g)
	if vote >= 0.5 {
		t.Errorf("voting should be fooled here, got %v", vote)
	}
	if bayes <= 0.5 {
		t.Errorf("distance weighting should resist, got %v", bayes)
	}
}

func TestDistanceWeightedSymmetric(t *testing.T) {
	g := &Group{Event: Event{Pos: geo.Point{}}}
	g.Reports = append(g.Reports, report(true, 50, 0, 1, 0))
	g.Reports = append(g.Reports, report(false, 50, 0, 2, 0))
	if got := (DistanceWeighted{}).Score(g); got != 0.5 {
		t.Errorf("balanced evidence score = %v, want 0.5", got)
	}
}

func TestPathDiverseDiscountsEchoes(t *testing.T) {
	// 10 false reports all over one path (an amplified lie) vs 3 true
	// reports over distinct paths.
	g := &Group{Event: Event{Pos: geo.Point{}}}
	for i := 0; i < 10; i++ {
		g.Reports = append(g.Reports, report(false, 10, 0, 42, sim.Time(i)))
	}
	for i := 0; i < 3; i++ {
		g.Reports = append(g.Reports, report(true, 10, 0, uint64(100+i), 0))
	}
	plain := MajorityVote{}.Score(g)
	diverse := PathDiverse{Inner: MajorityVote{}}.Score(g)
	if plain >= 0.5 {
		t.Errorf("plain voting should be fooled, got %v", plain)
	}
	if diverse <= 0.5 {
		t.Errorf("path-diverse should resist amplification, got %v", diverse)
	}
	if (PathDiverse{Inner: MajorityVote{}}).Name() != "voting+path" {
		t.Error("name wrong")
	}
	if (PathDiverse{}).Name() != "path-diverse" {
		t.Error("nil-inner name wrong")
	}
	// Nil inner defaults to voting.
	if s := (PathDiverse{}).Score(g); s <= 0.5 {
		t.Errorf("default inner score = %v", s)
	}
}

func TestReputationLearnsWithStableIdentities(t *testing.T) {
	rs := NewReputation()
	honest, liar := tok(1), tok(2)
	// Feedback loop: honest correct 10 times, liar wrong 10 times.
	for i := 0; i < 10; i++ {
		rs.Feedback(honest, true)
		rs.Feedback(liar, false)
	}
	g := &Group{Event: Event{Pos: geo.Point{}}}
	g.Reports = append(g.Reports,
		Report{Reporter: honest, Claim: true},
		Report{Reporter: liar, Claim: false},
	)
	if got := rs.Score(g); got <= 0.5 {
		t.Errorf("reputation with stable ids should trust the honest reporter, got %v", got)
	}
	if rs.Known() != 2 {
		t.Errorf("Known = %d", rs.Known())
	}
}

func TestReputationUselessUnderTokenRotation(t *testing.T) {
	// The paper's §III.D claim: with rotating pseudonyms, reputation
	// never accumulates — every reporter looks fresh (0.5) and the
	// reputation validator degenerates to plain voting.
	rs := NewReputation()
	rng := rand.New(rand.NewSource(1))
	// Lots of past feedback for tokens never seen again.
	for i := 0; i < 100; i++ {
		var t Token
		rng.Read(t[:])
		rs.Feedback(t, true)
	}
	g := &Group{Event: Event{Pos: geo.Point{}}}
	for i := 0; i < 4; i++ {
		var tk Token
		rng.Read(tk[:])
		g.Reports = append(g.Reports, Report{Reporter: tk, Claim: false}) // fresh liars
	}
	var tk Token
	rng.Read(tk[:])
	g.Reports = append(g.Reports, Report{Reporter: tk, Claim: true}) // fresh honest
	score := rs.Score(g)
	vote := MajorityVote{}.Score(g)
	if score != vote {
		t.Errorf("with all-fresh tokens reputation (%v) should equal voting (%v)", score, vote)
	}
	if score >= 0.5 {
		t.Logf("as expected, reputation is fooled: %v", score)
	}
}

func TestDecide(t *testing.T) {
	if real, unk := Decide(0.9, 0.1); !real || unk {
		t.Error("high score should decide real")
	}
	if real, unk := Decide(0.1, 0.1); real || unk {
		t.Error("low score should decide fake")
	}
	if _, unk := Decide(0.55, 0.1); !unk {
		t.Error("band score should be unknown")
	}
}

func TestDeadlineEvaluate(t *testing.T) {
	g := &Group{Event: Event{Pos: geo.Point{}}}
	g.Reports = append(g.Reports,
		report(true, 0, 0, 1, 1*time.Second),
		report(true, 0, 0, 2, 2*time.Second),
		report(false, 0, 0, 3, 10*time.Second), // arrives too late
	)
	score, n := DeadlineEvaluate(MajorityVote{}, g, 5*time.Second)
	if n != 2 {
		t.Errorf("reports within deadline = %d, want 2", n)
	}
	if score != 1.0 {
		t.Errorf("score = %v, want 1.0 (late dissent excluded)", score)
	}
	score, n = DeadlineEvaluate(MajorityVote{}, g, 20*time.Second)
	if n != 3 || score >= 1.0 {
		t.Errorf("full-window eval wrong: score=%v n=%d", score, n)
	}
}

func TestValidatorNames(t *testing.T) {
	if (MajorityVote{}).Name() != "voting" {
		t.Error("voting name")
	}
	if (DistanceWeighted{}).Name() != "bayesian" {
		t.Error("bayesian name")
	}
	if NewReputation().Name() != "reputation" {
		t.Error("reputation name")
	}
}
