package trust

import (
	"fmt"

	"vcloud/internal/cryptoprim"
	"vcloud/internal/geo"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// reportKind is the wire message kind for event reports.
const reportKind = "trust.report"

// reportTTL bounds dissemination of reports (2-hop neighborhood: the
// vehicles that could plausibly act on a local hazard).
const reportTTL = 3

// WireReport is the on-air report payload.
type WireReport struct {
	EventType   string
	EventPos    geo.Point
	EventAt     sim.Time
	Claim       bool
	Token       Token
	ReporterPos geo.Point
	// Sig, when reports are authenticated, is a group signature over the
	// report digest: §IV.D's point that authentication "discourages most
	// vehicles from misbehaving" before content validation handles the
	// rest. Unsigned deployments leave it zero.
	Sig cryptoprim.GroupSig
}

// reportDigest canonicalizes the signed fields.
func reportDigest(w *WireReport) [32]byte {
	return cryptoprim.Digest(
		[]byte(w.EventType),
		[]byte(fmt.Sprintf("%v|%v|%d|%v", w.EventPos, w.EventAt, boolByte(w.Claim), w.ReporterPos)),
		w.Token[:],
	)
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// WireReportSize approximates the on-air bytes of a signed report.
const WireReportSize = 200

// Reporter broadcasts event observations into the neighborhood.
type Reporter struct {
	node  *vnet.Node
	cred  *cryptoprim.GroupCred
	nonce uint64
}

// NewReporter attaches a reporter to a node. Reporters are send-only; a
// node can host both a Reporter and an Evaluator.
func NewReporter(node *vnet.Node) (*Reporter, error) {
	if node == nil {
		return nil, fmt.Errorf("trust: node must not be nil")
	}
	return &Reporter{node: node}, nil
}

// SetCredential makes the reporter sign every report with the group
// credential (anonymous toward peers, traceable by the manager).
func (r *Reporter) SetCredential(cred *cryptoprim.GroupCred) { r.cred = cred }

// Report disseminates an observation (claim about an event) under the
// given anonymous token.
func (r *Reporter) Report(eventType string, eventPos geo.Point, eventAt sim.Time, claim bool, token Token) {
	wr := WireReport{
		EventType:   eventType,
		EventPos:    eventPos,
		EventAt:     eventAt,
		Claim:       claim,
		Token:       token,
		ReporterPos: r.node.Position(),
	}
	if r.cred != nil {
		r.nonce++
		d := reportDigest(&wr)
		wr.Sig = r.cred.Sign(d[:], r.nonce)
	}
	msg := r.node.NewMessage(vnet.BroadcastAddr, reportKind, WireReportSize, reportTTL, wr)
	r.node.Seen(msg)
	r.node.BroadcastLocal(msg)
}

// Decision is delivered by an Evaluator when a group's deadline expires.
type Decision struct {
	Group *Group
	// Score is the validator's P(event real).
	Score float64
	// Reports is how many reports arrived before the deadline.
	Reports int
	// EventReal and Unknown derive from Decide with the configured
	// margin.
	EventReal bool
	Unknown   bool
	// Elapsed is the time from first report to decision.
	Elapsed sim.Time
}

// EvaluatorConfig tunes an evaluator.
type EvaluatorConfig struct {
	// Validator scores report groups. Required.
	Validator Validator
	// ClassifyRadius / ClassifyWindow configure the event classifier.
	// Defaults: 150 m / 30 s.
	ClassifyRadius float64
	ClassifyWindow sim.Time
	// Deadline is the §III.D stringent time constraint: the decision is
	// made this long after a group's first report, with whatever
	// evidence has arrived. Default 2 s.
	Deadline sim.Time
	// Margin is the indifference band around 0.5. Default 0.05.
	Margin float64
	// NoRelay disables re-broadcasting received reports; by default an
	// evaluator relays (TTL permitting) so reports reach vehicles beyond
	// one hop.
	NoRelay bool
	// GroupKey, when set, makes the evaluator require a valid group
	// signature on every report and silently drop the rest — the
	// authentication gate that blocks Sybil identities without
	// credentials (§IV.D). Dropped reports are counted in Rejected.
	GroupKey []byte
}

// Evaluator collects reports from the air, classifies them into events
// and emits deadline-bounded trust decisions — the on-board
// "trustworthiness evaluation system" of §V.D.
type Evaluator struct {
	node    *vnet.Node
	cfg     EvaluatorConfig
	cls     *Classifier
	pending map[*Group]bool
	decided map[*Group]bool
	onDec   []func(Decision)
	stopped bool
	// Rejected counts reports dropped for missing/invalid signatures.
	Rejected uint64
}

// NewEvaluator attaches an evaluator to a node.
func NewEvaluator(node *vnet.Node, cfg EvaluatorConfig) (*Evaluator, error) {
	if node == nil {
		return nil, fmt.Errorf("trust: node must not be nil")
	}
	if cfg.Validator == nil {
		return nil, fmt.Errorf("trust: evaluator requires a validator")
	}
	if cfg.ClassifyRadius <= 0 {
		cfg.ClassifyRadius = 150
	}
	if cfg.ClassifyWindow <= 0 {
		cfg.ClassifyWindow = 30e9
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 2e9
	}
	if cfg.Margin <= 0 {
		cfg.Margin = 0.05
	}
	cls, err := NewClassifier(cfg.ClassifyRadius, cfg.ClassifyWindow)
	if err != nil {
		return nil, err
	}
	e := &Evaluator{
		node:    node,
		cfg:     cfg,
		cls:     cls,
		pending: make(map[*Group]bool),
		decided: make(map[*Group]bool),
	}
	node.Handle(reportKind, e.onReport)
	return e, nil
}

// Stop detaches the evaluator.
func (e *Evaluator) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	e.node.Handle(reportKind, nil)
}

// OnDecision registers a decision observer.
func (e *Evaluator) OnDecision(fn func(Decision)) {
	if fn != nil {
		e.onDec = append(e.onDec, fn)
	}
}

// Classifier exposes the underlying event classifier (read-only use).
func (e *Evaluator) Classifier() *Classifier { return e.cls }

func (e *Evaluator) onReport(msg vnet.Message, relayer vnet.Addr) {
	if e.stopped {
		return
	}
	wr, ok := msg.Payload.(WireReport)
	if !ok {
		return
	}
	if e.node.Seen(msg) {
		return
	}
	if len(e.cfg.GroupKey) > 0 {
		d := reportDigest(&wr)
		if !cryptoprim.VerifyGroupSig(e.cfg.GroupKey, d[:], wr.Sig) {
			e.Rejected++
			return
		}
	}
	now := e.node.Kernel().Now()
	rep := Report{
		Reporter:    wr.Token,
		Claim:       wr.Claim,
		ReporterPos: wr.ReporterPos,
		// The delivery path fingerprint: origin ⊕ relayer. Reports
		// amplified through one relay share it; §V.D's routing-path
		// similarity signal.
		PathID: uint64(msg.Origin)<<20 ^ uint64(relayer),
		At:     now,
	}
	g := e.cls.Assign(wr.EventType, wr.EventPos, wr.EventAt, rep)
	if !e.pending[g] && !e.decided[g] {
		e.pending[g] = true
		first := now
		e.node.Kernel().After(e.cfg.Deadline, func() { e.decide(g, first) })
	}
	if !e.cfg.NoRelay {
		fwd := msg
		fwd.TTL--
		if fwd.TTL > 0 {
			e.node.BroadcastLocal(fwd)
		}
	}
}

func (e *Evaluator) decide(g *Group, first sim.Time) {
	if e.stopped {
		return
	}
	delete(e.pending, g)
	e.decided[g] = true
	now := e.node.Kernel().Now()
	score, n := DeadlineEvaluate(e.cfg.Validator, g, now)
	real, unknown := Decide(score, e.cfg.Margin)
	d := Decision{
		Group:     g,
		Score:     score,
		Reports:   n,
		EventReal: real,
		Unknown:   unknown,
		Elapsed:   now - first,
	}
	for _, fn := range e.onDec {
		fn(d)
	}
}
