// Package trust implements the real-time message-content validation the
// paper designs in §V.D: a message classifier that groups reports into
// events by space–time proximity, and a set of content validators that
// score an event's trustworthiness from possibly-conflicting reports
// under stringent time constraints.
//
// Validators follow the survey's taxonomy:
//
//   - MajorityVote: Raya et al.'s [32] basic voting over evidence.
//   - DistanceWeighted: Bayesian combination where a report's weight
//     grows with the reporter's proximity to the claimed event (a
//     witness next to the ice patch outweighs one 500 m away).
//   - PathDiverse: wraps another validator, discounting reports that
//     arrived over the same routing path — the §V.D "routing path
//     similarity" signal against single-source amplification.
//   - Reputation: the sender-reputation baseline the paper argues fails
//     in VANETs because encounters are ephemeral and identities rotate;
//     E9 measures exactly that failure.
package trust

import (
	"fmt"
	"math"

	"vcloud/internal/geo"
	"vcloud/internal/sim"
)

// Token anonymously identifies a reporter (pseudonym serial, chain ID).
type Token [32]byte

// Report is one vehicle's claim about an event.
type Report struct {
	Reporter Token
	// Claim is the asserted polarity: true = "the event is real".
	Claim bool
	// ReporterPos is where the reporter was when observing.
	ReporterPos geo.Point
	// PathID fingerprints the delivery route (hash of relay addresses).
	PathID uint64
	// At is when the report was received.
	At sim.Time
}

// Event is a claimed real-world occurrence.
type Event struct {
	Type string
	Pos  geo.Point
	At   sim.Time
}

// Group is a set of reports classified as referring to the same event.
type Group struct {
	Event   Event
	Reports []Report
}

// Classifier clusters incoming reports into event groups by type and
// space–time proximity (§V.D "identify messages belonging to the same
// event").
type Classifier struct {
	radius float64
	window sim.Time
	groups []*Group
}

// NewClassifier creates a classifier. Reports within radius meters and
// window of an existing group's event join it; otherwise they seed a new
// group.
func NewClassifier(radius float64, window sim.Time) (*Classifier, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("trust: radius must be positive, got %v", radius)
	}
	if window <= 0 {
		return nil, fmt.Errorf("trust: window must be positive, got %v", window)
	}
	return &Classifier{radius: radius, window: window}, nil
}

// Assign routes a report about (eventType, eventPos, at) into its group,
// creating one as needed, and returns the group.
func (c *Classifier) Assign(eventType string, eventPos geo.Point, at sim.Time, r Report) *Group {
	for _, g := range c.groups {
		if g.Event.Type != eventType {
			continue
		}
		if g.Event.Pos.Dist(eventPos) > c.radius {
			continue
		}
		dt := at - g.Event.At
		if dt < 0 {
			dt = -dt
		}
		if dt > c.window {
			continue
		}
		g.Reports = append(g.Reports, r)
		return g
	}
	g := &Group{Event: Event{Type: eventType, Pos: eventPos, At: at}, Reports: []Report{r}}
	c.groups = append(c.groups, g)
	return g
}

// Groups returns all current groups.
func (c *Classifier) Groups() []*Group { return c.groups }

// Expire drops groups older than the window relative to now, returning
// how many were removed (kept memory bounded on long runs).
func (c *Classifier) Expire(now sim.Time) int {
	keep := c.groups[:0]
	removed := 0
	for _, g := range c.groups {
		if now-g.Event.At > 2*c.window {
			removed++
			continue
		}
		keep = append(keep, g)
	}
	c.groups = keep
	return removed
}

// Validator scores an event group's trustworthiness.
type Validator interface {
	// Name identifies the validator in experiment output.
	Name() string
	// Score returns the estimated probability in [0,1] that the event is
	// real, given the group's reports.
	Score(g *Group) float64
}

// MajorityVote scores by the fraction of positive claims.
type MajorityVote struct{}

// Name implements Validator.
func (MajorityVote) Name() string { return "voting" }

// Score implements Validator.
func (MajorityVote) Score(g *Group) float64 {
	if len(g.Reports) == 0 {
		return 0.5
	}
	pos := 0
	for _, r := range g.Reports {
		if r.Claim {
			pos++
		}
	}
	return float64(pos) / float64(len(g.Reports))
}

// DistanceWeighted combines reports in log-odds space with weights that
// decay with the reporter's distance from the event: a Bayesian update
// where nearer witnesses carry more evidence (Raya et al.'s framework
// with an explicit weight function).
type DistanceWeighted struct {
	// HalfDist is the distance at which a report's weight halves.
	// Default 150 m (the reliable radio range).
	HalfDist float64
	// PerReportLogOdds is the maximum log-odds contribution of a single
	// report. Default 1.0.
	PerReportLogOdds float64
}

// Name implements Validator.
func (DistanceWeighted) Name() string { return "bayesian" }

// Score implements Validator.
func (v DistanceWeighted) Score(g *Group) float64 {
	half := v.HalfDist
	if half <= 0 {
		half = 150
	}
	unit := v.PerReportLogOdds
	if unit <= 0 {
		unit = 1.0
	}
	logOdds := 0.0
	for _, r := range g.Reports {
		d := r.ReporterPos.Dist(g.Event.Pos)
		w := math.Exp2(-d / half)
		if r.Claim {
			logOdds += unit * w
		} else {
			logOdds -= unit * w
		}
	}
	return 1 / (1 + math.Exp(-logOdds))
}

// PathDiverse wraps a validator, down-weighting reports that share a
// delivery path: k reports over one path count as one plus diminishing
// echoes.
type PathDiverse struct {
	Inner Validator
}

// Name implements Validator.
func (v PathDiverse) Name() string {
	if v.Inner == nil {
		return "path-diverse"
	}
	return v.Inner.Name() + "+path"
}

// Score implements Validator.
func (v PathDiverse) Score(g *Group) float64 {
	inner := v.Inner
	if inner == nil {
		inner = MajorityVote{}
	}
	// Rebuild the group keeping the first report per (path, claim) and
	// folding duplicates into fractional echoes by subsampling: the n-th
	// report on a path is kept with weight 1/n — approximated by keeping
	// ceil(distinct-ish) representatives.
	seen := map[uint64]int{}
	filtered := &Group{Event: g.Event}
	for _, r := range g.Reports {
		seen[r.PathID]++
		// Keep the 1st occurrence always; the n-th with diminishing
		// frequency (2nd: no, 3rd: no, 4th: yes ~ harmonic-ish ≈ log).
		n := seen[r.PathID]
		if n == 1 || n == 4 || n == 16 {
			filtered.Reports = append(filtered.Reports, r)
		}
	}
	return inner.Score(filtered)
}

// Reputation is the sender-reputation baseline: scores are the mean
// reputation-weighted claim, and reputations update only when ground
// truth feedback arrives — which, with rotating anonymous tokens, almost
// never matches a future sender. That mismatch is the E9 point.
type Reputation struct {
	scores map[Token]float64
}

// NewReputation creates an empty reputation table.
func NewReputation() *Reputation {
	return &Reputation{scores: make(map[Token]float64)}
}

// Name implements Validator.
func (*Reputation) Name() string { return "reputation" }

// rep returns the reporter's reputation in [0,1], defaulting to 0.5
// (unknown).
func (rs *Reputation) rep(t Token) float64 {
	if v, ok := rs.scores[t]; ok {
		return v
	}
	return 0.5
}

// Score implements Validator: reputation-weighted vote.
func (rs *Reputation) Score(g *Group) float64 {
	if len(g.Reports) == 0 {
		return 0.5
	}
	var num, den float64
	for _, r := range g.Reports {
		w := rs.rep(r.Reporter)
		den += w
		if r.Claim {
			num += w
		}
	}
	if den == 0 {
		return 0.5
	}
	return num / den
}

// Feedback updates a reporter's reputation after ground truth emerges.
// correct=true nudges toward 1, false toward 0 (EWMA).
func (rs *Reputation) Feedback(t Token, correct bool) {
	cur := rs.rep(t)
	target := 0.0
	if correct {
		target = 1.0
	}
	rs.scores[t] = cur*0.7 + target*0.3
}

// Known returns how many reporters have accumulated reputation.
func (rs *Reputation) Known() int { return len(rs.scores) }

// Decide converts a score into a decision with an indifference band:
// scores within margin of 0.5 return unknown=true.
func Decide(score, margin float64) (eventReal, unknown bool) {
	if score > 0.5+margin {
		return true, false
	}
	if score < 0.5-margin {
		return false, false
	}
	return false, true
}

// DeadlineEvaluate scores a group using only reports received by the
// deadline — the paper's stringent-time-constraint evaluation. It
// returns the score and how many reports made the cut.
func DeadlineEvaluate(v Validator, g *Group, deadline sim.Time) (float64, int) {
	cut := &Group{Event: g.Event}
	for _, r := range g.Reports {
		if r.At <= deadline {
			cut.Reports = append(cut.Reports, r)
		}
	}
	return v.Score(cut), len(cut.Reports)
}
