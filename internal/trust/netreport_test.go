package trust_test

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"vcloud/internal/cryptoprim"

	"vcloud/internal/geo"
	"vcloud/internal/radio"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/trust"
	"vcloud/internal/vnet"
)

// netRig wires a highway scenario where vehicle 0 evaluates and the
// rest can report.
type netRig struct {
	s         *scenario.Scenario
	eval      *trust.Evaluator
	reporters map[int]*trust.Reporter
	decisions []trust.Decision
}

func newNetRig(t testing.TB, vehicles int, cfg trust.EvaluatorConfig) *netRig {
	t.Helper()
	net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 1500, Segments: 2, SpeedLimit: 20, Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.New(scenario.Spec{Seed: 17, Network: net, NumVehicles: vehicles})
	if err != nil {
		t.Fatal(err)
	}
	r := &netRig{s: s, reporters: make(map[int]*trust.Reporter)}
	ids := s.VehicleIDs()
	evNode, _ := s.Node(ids[0])
	if cfg.Validator == nil {
		cfg.Validator = trust.MajorityVote{}
	}
	r.eval, err = trust.NewEvaluator(evNode, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.eval.OnDecision(func(d trust.Decision) { r.decisions = append(r.decisions, d) })
	for i := 1; i < len(ids); i++ {
		node, _ := s.Node(ids[i])
		rep, err := trust.NewReporter(node)
		if err != nil {
			t.Fatal(err)
		}
		r.reporters[i] = rep
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEvaluatorValidation(t *testing.T) {
	if _, err := trust.NewEvaluator(nil, trust.EvaluatorConfig{Validator: trust.MajorityVote{}}); err == nil {
		t.Error("nil node should error")
	}
	r := newNetRig(t, 2, trust.EvaluatorConfig{})
	node, _ := r.s.Node(r.s.VehicleIDs()[1])
	if _, err := trust.NewEvaluator(node, trust.EvaluatorConfig{}); err == nil {
		t.Error("missing validator should error")
	}
	if _, err := trust.NewReporter(nil); err == nil {
		t.Error("nil reporter node should error")
	}
}

func TestNetworkedDecisionWithinDeadline(t *testing.T) {
	r := newNetRig(t, 12, trust.EvaluatorConfig{
		Validator: trust.DistanceWeighted{},
		Deadline:  2 * time.Second,
	})
	if err := r.s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	// All reporters near the evaluator announce a real hazard.
	evState, _ := r.s.Mobility.State(r.s.VehicleIDs()[0])
	eventPos := evState.Pos
	eventAt := r.s.Kernel.Now()
	var token trust.Token
	for i, rep := range r.reporters {
		token[0] = byte(i)
		rep.Report("ice", eventPos, eventAt, true, token)
	}
	if err := r.s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(r.decisions) != 1 {
		t.Fatalf("decisions = %d, want exactly 1", len(r.decisions))
	}
	d := r.decisions[0]
	if d.Unknown || !d.EventReal {
		t.Errorf("decision = %+v, want event-real", d)
	}
	// How many reporters sit within radio range at the report instant is
	// mobility-dependent; at least two independent confirmations must
	// make the deadline.
	if d.Reports < 2 {
		t.Errorf("only %d reports arrived before the deadline", d.Reports)
	}
	if d.Elapsed > 2100*time.Millisecond {
		t.Errorf("decision took %v, deadline was 2s", d.Elapsed)
	}
}

func TestLateReportsExcluded(t *testing.T) {
	r := newNetRig(t, 8, trust.EvaluatorConfig{
		Validator: trust.MajorityVote{},
		Deadline:  1 * time.Second,
	})
	if err := r.s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	evState, _ := r.s.Mobility.State(r.s.VehicleIDs()[0])
	eventPos := evState.Pos
	eventAt := r.s.Kernel.Now()
	// Early true reports from the two witnesses nearest the evaluator
	// (in radio range, and two so a single fade loss cannot erase the
	// evidence), then a burst of false reports after the deadline: the
	// decision must reflect only the early evidence.
	ids := r.s.VehicleIDs()
	keys := make([]int, 0, len(r.reporters))
	for i := range r.reporters {
		keys = append(keys, i)
	}
	sort.Slice(keys, func(a, b int) bool {
		sa, _ := r.s.Mobility.State(ids[keys[a]])
		sb, _ := r.s.Mobility.State(ids[keys[b]])
		return sa.Pos.DistSq(eventPos) < sb.Pos.DistSq(eventPos)
	})
	for n, i := range keys[:2] {
		var tok trust.Token
		tok[0] = byte(1 + n)
		r.reporters[i].Report("crash", eventPos, eventAt, true, tok)
	}
	r.s.Kernel.After(3*time.Second, func() {
		for i, rep := range r.reporters {
			var tk trust.Token
			tk[0] = byte(100 + i)
			rep.Report("crash", eventPos, eventAt, false, tk)
		}
	})
	if err := r.s.RunFor(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(r.decisions) != 1 {
		t.Fatalf("decisions = %d, want 1", len(r.decisions))
	}
	d := r.decisions[0]
	if !d.EventReal || d.Unknown {
		t.Errorf("late dissent changed the deadline-bounded decision: %+v", d)
	}
}

func TestEvaluatorStop(t *testing.T) {
	r := newNetRig(t, 5, trust.EvaluatorConfig{Validator: trust.MajorityVote{}})
	r.eval.Stop()
	r.eval.Stop() // double stop safe
	if err := r.s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	evState, _ := r.s.Mobility.State(r.s.VehicleIDs()[0])
	for i, rep := range r.reporters {
		var tk trust.Token
		tk[0] = byte(i)
		rep.Report("ice", evState.Pos, r.s.Kernel.Now(), true, tk)
	}
	if err := r.s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(r.decisions) != 0 {
		t.Error("stopped evaluator emitted decisions")
	}
}

func TestReportsRelayBeyondOneHop(t *testing.T) {
	// A reporter out of direct range of the evaluator: relays must carry
	// the report.
	k := sim.NewKernel(4)
	bounds := geo.NewRect(geo.Point{X: -100, Y: -100}, geo.Point{X: 1000, Y: 100})
	m, err := radio.NewMedium(k, bounds, radio.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(addr vnet.Addr, x float64) *vnet.Node {
		pos := geo.Point{X: x, Y: 0}
		m.UpdatePosition(addr, pos)
		n, err := vnet.NewNode(k, m, addr, vnet.Config{}, func() (geo.Point, float64, float64) { return pos, 0, 0 })
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	evNode := mk(0, 0)
	relayNode := mk(1, 140)
	farNode := mk(2, 280) // out of reliable range of the evaluator

	var decisions []trust.Decision
	eval, err := trust.NewEvaluator(evNode, trust.EvaluatorConfig{
		Validator: trust.MajorityVote{}, Deadline: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	eval.OnDecision(func(d trust.Decision) { decisions = append(decisions, d) })
	// The relay node also runs an evaluator (any trust-aware vehicle
	// relays reports).
	if _, err := trust.NewEvaluator(relayNode, trust.EvaluatorConfig{
		Validator: trust.MajorityVote{}, Deadline: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := trust.NewReporter(farNode)
	if err != nil {
		t.Fatal(err)
	}
	var tok trust.Token
	tok[0] = 9
	rep.Report("ice", geo.Point{X: 280, Y: 0}, k.Now(), true, tok)
	if err := k.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 {
		t.Fatalf("far report did not reach the evaluator via relay: %d decisions", len(decisions))
	}
	if !decisions[0].EventReal {
		t.Error("relayed report mis-decided")
	}
}

func TestSignedReportsGateSybil(t *testing.T) {
	// Evaluator requires group signatures: credentialed reporters pass,
	// an attacker's unsigned flood is dropped wholesale.
	k := sim.NewKernel(8)
	bounds := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000})
	m, err := radio.NewMedium(k, bounds, radio.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	gm, err := cryptoprim.NewGroupManager("g", rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(addr vnet.Addr, x float64) *vnet.Node {
		pos := geo.Point{X: x, Y: 0}
		m.UpdatePosition(addr, pos)
		n, err := vnet.NewNode(k, m, addr, vnet.Config{}, func() (geo.Point, float64, float64) { return pos, 0, 0 })
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	evNode := mk(0, 0)
	honestNode := mk(1, 100)
	sybilNode := mk(2, 120)

	var decisions []trust.Decision
	eval, err := trust.NewEvaluator(evNode, trust.EvaluatorConfig{
		Validator: trust.MajorityVote{},
		Deadline:  time.Second,
		GroupKey:  gm.PublicKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	eval.OnDecision(func(d trust.Decision) { decisions = append(decisions, d) })

	honest, err := trust.NewReporter(honestNode)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := gm.Enroll("honest", rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	honest.SetCredential(&cred)

	sybil, err := trust.NewReporter(sybilNode) // no credential
	if err != nil {
		t.Fatal(err)
	}

	pos := geo.Point{X: 60, Y: 0}
	var tok trust.Token
	tok[0] = 1
	honest.Report("ice", pos, k.Now(), true, tok)
	// Sybil floods 8 unsigned denials under different tokens.
	for i := 0; i < 8; i++ {
		var st trust.Token
		st[0] = byte(100 + i)
		sybil.Report("ice", pos, k.Now(), false, st)
	}
	if err := k.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 {
		t.Fatalf("decisions = %d, want 1", len(decisions))
	}
	d := decisions[0]
	if !d.EventReal || d.Unknown {
		t.Errorf("unsigned sybil flood flipped the decision: %+v", d)
	}
	if d.Reports != 1 {
		t.Errorf("reports counted = %d, want only the signed one", d.Reports)
	}
	if eval.Rejected < 8 {
		t.Errorf("rejected = %d, want the 8 unsigned reports", eval.Rejected)
	}
}
