// Package interproc builds a tree-wide call graph over the loader's
// topo-ordered packages and computes per-function effect summaries: does a
// function — directly or through anything it calls — read the wall clock,
// draw from the global rand source, leak map iteration order, spawn
// goroutines, or allocate. The shardpure and hotalloc analyzers are thin
// queries over this graph: they pick root sets (shard callbacks, hotpath
// annotations) and report the first concrete effect site reachable from
// each root, with the call chain that gets there.
//
// Soundness posture: purity effects (wall clock, global rand, map order,
// goroutines) reuse the per-function analyzers' own detectors, run with
// suppression disabled, so the interprocedural closure and the
// intra-procedural checks can never disagree about what counts as an
// effect. Calls that cannot be resolved statically — interface methods,
// func-valued variables and fields — are treated conservatively as an
// effect of their own (EffDynamicCall), and calls into packages outside
// the loaded tree are assumed to allocate (EffAllocExtern) unless the
// package is on the short clean list of pure-computation stdlib packages.
//
// Allocation effects are deliberately not a full escape analysis. Flagged:
// slice/map composite literals, &T{} literals, make/new, appends that grow
// a function-local slice, and closure creation. Not flagged: appends whose
// destination is a parameter, receiver field or package variable (the
// caller-owned scratch / freelist idiom — amortized O(1) steady state),
// taking the address of an existing variable, value composite literals,
// variadic argument construction, and interface boxing. Those are exactly
// the carve-outs the AllocsPerRun benchmarks rely on.
package interproc

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"vcloud/internal/analysis"
	"vcloud/internal/analysis/noglobalrand"
	"vcloud/internal/analysis/nogoroutine"
	"vcloud/internal/analysis/nomaporder"
	"vcloud/internal/analysis/nowallclock"
)

// Effect is a bitset of behaviors a function exhibits directly or
// transitively.
type Effect uint16

const (
	// EffWallClock: reads the host clock (time.Now and friends).
	EffWallClock Effect = 1 << iota
	// EffGlobalRand: draws from the process-global math/rand source.
	EffGlobalRand
	// EffMapOrder: leaks map iteration order into an ordering sink.
	EffMapOrder
	// EffGoroutine: spawns a goroutine or touches sync primitives.
	EffGoroutine
	// EffAllocHeap: heap-allocating expression (&T{}, slice/map literal,
	// make, new).
	EffAllocHeap
	// EffAllocAppend: append that grows a function-local slice.
	EffAllocAppend
	// EffAllocClosure: creates a func literal (closure allocation).
	EffAllocClosure
	// EffAllocExtern: calls a package outside the loaded tree that is not
	// on the clean list, so it may allocate.
	EffAllocExtern
	// EffDynamicCall: calls through a func value or interface method; the
	// callee cannot be resolved statically.
	EffDynamicCall
)

// PurityEffects are the bits that break bit-for-bit determinism when they
// run under a shard worker: the interprocedural closure of the per-package
// purity analyzers.
const PurityEffects = EffWallClock | EffGlobalRand | EffMapOrder | EffGoroutine

// AllocEffects are the bits that cost heap allocations on a hot path.
const AllocEffects = EffAllocHeap | EffAllocAppend | EffAllocClosure | EffAllocExtern

// effectNames maps single bits to stable names for messages and tests.
var effectNames = map[Effect]string{
	EffWallClock:    "wall-clock read",
	EffGlobalRand:   "global rand draw",
	EffMapOrder:     "map-order leak",
	EffGoroutine:    "goroutine/sync use",
	EffAllocHeap:    "heap allocation",
	EffAllocAppend:  "growing append",
	EffAllocClosure: "closure allocation",
	EffAllocExtern:  "extern call",
	EffDynamicCall:  "dynamic call",
}

// Bits expands a mask into its single-bit effects in declaration order.
func (e Effect) Bits() []Effect {
	var out []Effect
	for b := EffWallClock; b <= EffDynamicCall; b <<= 1 {
		if e&b != 0 {
			out = append(out, b)
		}
	}
	return out
}

func (e Effect) String() string {
	if n, ok := effectNames[e]; ok {
		return n
	}
	parts := make([]string, 0, 4)
	for _, b := range e.Bits() {
		parts = append(parts, effectNames[b])
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// Site is one concrete source location where an effect happens.
type Site struct {
	Pos    token.Pos
	Detail string
}

// Node is one function (declaration or literal) in the call graph.
type Node struct {
	// Key names the function: "pkgpath.Func", "pkgpath.Recv.Method", or
	// "enclosingKey·lit@file:line:col" for function literals.
	Key string
	Pos token.Pos
	// Direct holds the effects of this function's own body; Summary adds
	// everything reachable through its calls (fixed point over the graph).
	Direct  Effect
	Summary Effect

	bodyPos, bodyEnd token.Pos
	calls            map[string]token.Pos // callee key -> first call site
	callees          []string             // sorted, filled by Build
	sites            map[Effect]Site      // first site per single-bit direct effect
}

// Site returns the first recorded site of the single-bit direct effect.
func (n *Node) Site(bit Effect) (Site, bool) {
	s, ok := n.sites[bit]
	return s, ok
}

// CallSite returns where this node first calls callee.
func (n *Node) CallSite(callee string) (token.Pos, bool) {
	p, ok := n.calls[callee]
	return p, ok
}

// Root is one entry point an analyzer enforces effects from.
type Root struct {
	Key    string
	Origin string // human-readable provenance, e.g. "shard callback registered at world.go:391"
	Pos    token.Pos
}

// Tree is the interprocedural analysis result over one set of loaded
// packages.
type Tree struct {
	Fset  *token.FileSet
	Nodes map[string]*Node
	// Keys is every node key in sorted order; iteration over it is the
	// deterministic order every traversal uses.
	Keys []string
	// ShardRoots are functions registered as sharded-kernel callbacks:
	// func-typed arguments to ShardedKernel.Inject or to the scheduling
	// methods of a Kernel obtained from ShardedKernel.Shard.
	ShardRoots []Root
	// Hotpaths are functions annotated //vcloudlint:hotpath.
	Hotpaths []Root
	// UnresolvedShard are shard-callback registration sites whose callback
	// could not be resolved to a function (a func-valued variable, or the
	// result of a call).
	UnresolvedShard []Site
}

// cleanExtern lists packages outside the tree whose calls are known
// allocation-free pure computation (or whose effects the purity analyzers
// already catch by name, like time and math/rand): calling into them adds
// no effect bits.
var cleanExtern = map[string]bool{
	"math":           true,
	"math/bits":      true,
	"math/rand":      true,
	"math/rand/v2":   true,
	"time":           true,
	"container/heap": true,
}

// hotpathPrefix marks a function whose transitive closure must be
// allocation-free; see the hotalloc analyzer.
const hotpathPrefix = "//vcloudlint:hotpath"

// purityCaptures pairs each per-function analyzer with the effect bit its
// diagnostics map to.
var purityCaptures = []struct {
	analyzer *analysis.Analyzer
	bit      Effect
}{
	{nowallclock.Analyzer, EffWallClock},
	{noglobalrand.Analyzer, EffGlobalRand},
	{nomaporder.Analyzer, EffMapOrder},
	{nogoroutine.Analyzer, EffGoroutine},
}

type builder struct {
	fset      *token.FileSet
	tree      *Tree
	unitPaths map[string]bool
	// litKeys maps every function literal to its node key, for shard-root
	// resolution after the main walk.
	litKeys map[*ast.FuncLit]string
	// spans[filename] holds every function node's body span in that file,
	// for mapping captured diagnostics to their innermost function.
	spans map[string][]spanEntry
	// carriers are objects (variables or struct fields) holding a Kernel
	// obtained from ShardedKernel.Shard.
	carriers map[types.Object]bool
}

type spanEntry struct {
	pos, end token.Pos
	key      string
}

// Build constructs the call graph and effect summaries for units. Units
// must arrive in a deterministic order (the loader's dependency order);
// everything downstream is then a pure function of the source tree.
func Build(fset *token.FileSet, units []*analysis.TreeUnit) *Tree {
	b := &builder{
		fset:      fset,
		tree:      &Tree{Fset: fset, Nodes: make(map[string]*Node)},
		unitPaths: make(map[string]bool, len(units)),
		litKeys:   make(map[*ast.FuncLit]string),
		spans:     make(map[string][]spanEntry),
		carriers:  make(map[types.Object]bool),
	}
	for _, u := range units {
		b.unitPaths[u.Path] = true
	}
	for _, u := range units {
		b.walkUnit(u)
	}
	b.captureEffects(units)
	for _, u := range units {
		b.collectCarriers(u)
	}
	for _, u := range units {
		b.collectShardRoots(u)
	}
	b.finish()
	return b.tree
}

func (b *builder) node(key string, pos token.Pos) *Node {
	n := b.tree.Nodes[key]
	if n == nil {
		n = &Node{
			Key:   key,
			Pos:   pos,
			calls: make(map[string]token.Pos),
			sites: make(map[Effect]Site),
		}
		b.tree.Nodes[key] = n
	}
	return n
}

func (b *builder) addDirect(n *Node, bit Effect, pos token.Pos, detail string) {
	if n == nil {
		return
	}
	n.Direct |= bit
	if _, ok := n.sites[bit]; !ok {
		n.sites[bit] = Site{Pos: pos, Detail: detail}
	}
}

func (b *builder) addEdge(n *Node, callee string, pos token.Pos) {
	if n == nil || callee == n.Key {
		return
	}
	if _, ok := n.calls[callee]; !ok {
		n.calls[callee] = pos
	}
}

// walkUnit enumerates the unit's functions, records their body spans, and
// extracts allocation effects and call edges.
func (b *builder) walkUnit(u *analysis.TreeUnit) {
	for _, f := range u.Files {
		var stack []*Node
		top := func() *Node {
			if len(stack) == 0 {
				return nil
			}
			return stack[len(stack)-1]
		}
		var parents []ast.Node
		ast.Inspect(f, func(an ast.Node) bool {
			if an == nil {
				popped := parents[len(parents)-1]
				parents = parents[:len(parents)-1]
				switch popped.(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					stack = stack[:len(stack)-1]
				}
				return true
			}
			switch n := an.(type) {
			case *ast.FuncDecl:
				key := analysis.FuncKey(u.Path, n)
				nd := b.node(key, n.Name.Pos())
				if n.Body != nil {
					nd.bodyPos, nd.bodyEnd = n.Body.Pos(), n.Body.End()
					b.recordSpan(n.Body.Pos(), n.Body.End(), key)
				}
				if b.isHotpath(n) {
					b.tree.Hotpaths = append(b.tree.Hotpaths, Root{
						Key:    key,
						Origin: "annotated " + hotpathPrefix,
						Pos:    n.Name.Pos(),
					})
				}
				stack = append(stack, nd)
			case *ast.FuncLit:
				encl := top()
				pos := b.fset.Position(n.Pos())
				key := u.Path + "·lit@" + filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line) + ":" + strconv.Itoa(pos.Column)
				if encl != nil {
					key = encl.Key + "·lit@" + filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line) + ":" + strconv.Itoa(pos.Column)
					b.addDirect(encl, EffAllocClosure, n.Pos(), "func literal allocates a closure")
					b.addEdge(encl, key, n.Pos())
				}
				nd := b.node(key, n.Pos())
				nd.bodyPos, nd.bodyEnd = n.Body.Pos(), n.Body.End()
				b.recordSpan(n.Body.Pos(), n.Body.End(), key)
				b.litKeys[n] = key
				stack = append(stack, nd)
			case *ast.CompositeLit:
				if cur := top(); cur != nil {
					if tv := u.Info.TypeOf(n); tv != nil {
						switch tv.Underlying().(type) {
						case *types.Slice:
							b.addDirect(cur, EffAllocHeap, n.Pos(), "slice literal allocates")
						case *types.Map:
							b.addDirect(cur, EffAllocHeap, n.Pos(), "map literal allocates")
						}
					}
				}
			case *ast.UnaryExpr:
				if cur := top(); cur != nil && n.Op == token.AND {
					if _, ok := n.X.(*ast.CompositeLit); ok {
						b.addDirect(cur, EffAllocHeap, n.Pos(), "&composite literal allocates")
					}
				}
			case *ast.CallExpr:
				if cur := top(); cur != nil {
					b.handleCall(cur, n, u)
				}
			}
			parents = append(parents, an)
			return true
		})
	}
}

func (b *builder) recordSpan(pos, end token.Pos, key string) {
	file := b.fset.Position(pos).Filename
	b.spans[file] = append(b.spans[file], spanEntry{pos: pos, end: end, key: key})
}

// isHotpath reports whether the declaration's doc comment carries the
// hotpath annotation.
func (b *builder) isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathPrefix) {
			return true
		}
	}
	return false
}

// handleCall classifies one call expression: a module edge, a builtin
// allocation, an extern call, or a dynamic call.
func (b *builder) handleCall(cur *Node, call *ast.CallExpr, u *analysis.TreeUnit) {
	if tv, ok := u.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: f[T](x).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if b.isGenericFunc(ix.X, u) {
			fun = ast.Unparen(ix.X)
		} else {
			b.addDirect(cur, EffDynamicCall, call.Pos(), "call through an indexed func value")
			return
		}
	case *ast.IndexListExpr:
		if b.isGenericFunc(ix.X, u) {
			fun = ast.Unparen(ix.X)
		} else {
			b.addDirect(cur, EffDynamicCall, call.Pos(), "call through an indexed func value")
			return
		}
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := u.Info.Uses[f].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "append":
				b.handleAppend(cur, call, u)
			case "make":
				b.addDirect(cur, EffAllocHeap, call.Pos(), "make allocates")
			case "new":
				b.addDirect(cur, EffAllocHeap, call.Pos(), "new allocates")
			}
		case *types.Func:
			b.addFuncEdge(cur, obj, call.Pos())
		case *types.Var:
			b.addDirect(cur, EffDynamicCall, call.Pos(), "call through func value "+f.Name)
		}
	case *ast.SelectorExpr:
		switch obj := u.Info.Uses[f.Sel].(type) {
		case *types.Func:
			b.addFuncEdge(cur, obj, call.Pos())
		case *types.Var:
			b.addDirect(cur, EffDynamicCall, call.Pos(), "call through func value "+f.Sel.Name)
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: the creation edge added when the
		// literal was visited already links caller and body.
	default:
		// The callee is itself the result of an expression (f()(), a
		// channel receive, ...): a func value we cannot resolve.
		b.addDirect(cur, EffDynamicCall, call.Pos(), "call through a computed func value")
	}
}

// isGenericFunc reports whether expr names a generic function being
// instantiated (as opposed to a map/slice being indexed).
func (b *builder) isGenericFunc(expr ast.Expr, u *analysis.TreeUnit) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		_, ok := u.Info.Uses[e].(*types.Func)
		return ok
	case *ast.SelectorExpr:
		_, ok := u.Info.Uses[e.Sel].(*types.Func)
		return ok
	}
	return false
}

// addFuncEdge resolves a statically-known callee: an edge for functions in
// the loaded tree, an extern-allocation effect for unknown packages, a
// dynamic-call effect for interface methods.
func (b *builder) addFuncEdge(cur *Node, fn *types.Func, pos token.Pos) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if ptr, isPtr := rt.Underlying().(*types.Pointer); isPtr {
			rt = ptr.Elem()
		}
		if _, isIface := rt.Underlying().(*types.Interface); isIface {
			b.addDirect(cur, EffDynamicCall, pos, "interface method call "+fn.Name())
			return
		}
		named, isNamed := rt.(*types.Named)
		if !isNamed {
			b.addDirect(cur, EffDynamicCall, pos, "method call on unresolved receiver "+fn.Name())
			return
		}
		tpkg := named.Obj().Pkg()
		if tpkg == nil {
			b.addDirect(cur, EffDynamicCall, pos, "method call on builtin type "+fn.Name())
			return
		}
		if b.unitPaths[tpkg.Path()] {
			b.addEdge(cur, tpkg.Path()+"."+named.Obj().Name()+"."+fn.Name(), pos)
			return
		}
		b.externCall(cur, tpkg.Path(), named.Obj().Name()+"."+fn.Name(), pos)
		return
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	if b.unitPaths[pkg.Path()] {
		b.addEdge(cur, pkg.Path()+"."+fn.Name(), pos)
		return
	}
	b.externCall(cur, pkg.Path(), fn.Name(), pos)
}

func (b *builder) externCall(cur *Node, pkgPath, name string, pos token.Pos) {
	if cleanExtern[pkgPath] {
		return
	}
	b.addDirect(cur, EffAllocExtern, pos, "call to "+pkgPath+"."+name+" (outside the tree, assumed to allocate)")
}

// handleAppend flags appends that grow a function-local slice. Appends to
// parameters, receiver fields and package variables are the sanctioned
// caller-owned-scratch / freelist idiom: growth is amortized across calls,
// which is exactly what the AllocsPerRun tests accept.
func (b *builder) handleAppend(cur *Node, call *ast.CallExpr, u *analysis.TreeUnit) {
	if len(call.Args) == 0 {
		return
	}
	root := rootIdent(call.Args[0])
	if root == nil {
		b.addDirect(cur, EffAllocAppend, call.Pos(), "append to a non-variable slice allocates")
		return
	}
	obj := u.Info.ObjectOf(root)
	if obj == nil {
		return
	}
	if cur.bodyPos.IsValid() && obj.Pos() >= cur.bodyPos && obj.Pos() < cur.bodyEnd {
		b.addDirect(cur, EffAllocAppend, call.Pos(), "append grows the function-local slice "+root.Name)
	}
}

// rootIdent unwraps x.f, x[i], *x, (x) down to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// captureEffects runs the per-function purity analyzers over every unit
// with allow-suppression disabled and maps each diagnostic onto the
// innermost function containing it. Package-scope diagnostics (var
// initializers) stay with the per-package analyzers.
func (b *builder) captureEffects(units []*analysis.TreeUnit) {
	for _, file := range b.spans {
		sort.Slice(file, func(i, j int) bool { return file[i].pos < file[j].pos })
	}
	for _, u := range units {
		for _, cap := range purityCaptures {
			var diags []analysis.Diagnostic
			pass := analysis.NewPass(cap.analyzer, b.fset, u.Files, u.Path, u.Pkg, u.Info, func(d analysis.Diagnostic) {
				diags = append(diags, d)
			})
			if err := cap.analyzer.Run(pass); err != nil {
				continue
			}
			for _, d := range diags {
				if key := b.enclosingKey(d.Pos); key != "" {
					b.addDirect(b.tree.Nodes[key], cap.bit, d.Pos, trimDetail(d.Message))
				}
			}
		}
	}
}

// enclosingKey returns the key of the innermost function whose body span
// contains pos, or "" at package scope.
func (b *builder) enclosingKey(pos token.Pos) string {
	file := b.fset.Position(pos).Filename
	best := ""
	bestSize := token.Pos(0)
	for _, s := range b.spans[file] {
		if s.pos <= pos && pos < s.end {
			if size := s.end - s.pos; best == "" || size < bestSize {
				best, bestSize = s.key, size
			}
		}
	}
	return best
}

// trimDetail shortens an analyzer message to its first clause.
func trimDetail(msg string) string {
	if i := strings.IndexByte(msg, ';'); i > 0 {
		return msg[:i]
	}
	return msg
}

// collectCarriers records every object assigned a Kernel obtained from
// ShardedKernel.Shard: local variables, struct fields (keyed composite
// literals), and package variables. Scheduling through a carrier is
// scheduling on a shard.
func (b *builder) collectCarriers(u *analysis.TreeUnit) {
	for _, f := range u.Files {
		ast.Inspect(f, func(an ast.Node) bool {
			switch n := an.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if !isShardCall(rhs, u.Info) {
						continue
					}
					switch lhs := ast.Unparen(n.Lhs[i]).(type) {
					case *ast.Ident:
						if obj := u.Info.ObjectOf(lhs); obj != nil {
							b.carriers[obj] = true
						}
					case *ast.SelectorExpr:
						if sel, ok := u.Info.Selections[lhs]; ok {
							b.carriers[sel.Obj()] = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if isShardCall(v, u.Info) && i < len(n.Names) {
						if obj := u.Info.Defs[n.Names[i]]; obj != nil {
							b.carriers[obj] = true
						}
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok || !isShardCall(kv.Value, u.Info) {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok {
						if obj := u.Info.Uses[key]; obj != nil {
							b.carriers[obj] = true
						}
					}
				}
			}
			return true
		})
	}
}

// isShardCall reports whether e is a call of the Shard method on a value
// whose type is named ShardedKernel. Matching is by type name, like
// epochstamp: fixtures define stand-in kernels, and there is exactly one
// real ShardedKernel in the tree.
func isShardCall(e ast.Expr, info *types.Info) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Shard" {
		return false
	}
	return typeNamed(info.TypeOf(sel.X), "ShardedKernel")
}

// typeNamed reports whether t (or what it points to) is a named type with
// the given name.
func typeNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// schedulers are the Kernel methods that register a callback for later
// dispatch.
var schedulers = map[string]bool{
	"At":       true,
	"AtArg":    true,
	"After":    true,
	"AfterArg": true,
	"Every":    true,
}

// collectShardRoots finds every function registered as a sharded-kernel
// callback: func-typed arguments to ShardedKernel.Inject, and func-typed
// arguments to scheduling calls on a Kernel that is a shard carrier (or a
// direct .Shard(i) chain).
func (b *builder) collectShardRoots(u *analysis.TreeUnit) {
	for _, f := range u.Files {
		ast.Inspect(f, func(an ast.Node) bool {
			call, ok := an.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var origin string
			switch {
			case sel.Sel.Name == "Inject" && typeNamed(u.Info.TypeOf(sel.X), "ShardedKernel"):
				origin = "cross-shard callback"
			case schedulers[sel.Sel.Name] && typeNamed(u.Info.TypeOf(sel.X), "Kernel") && b.shardLocalReceiver(sel.X, u.Info):
				origin = "shard-local " + sel.Sel.Name + " callback"
			default:
				return true
			}
			for _, arg := range call.Args {
				t := u.Info.TypeOf(arg)
				if t == nil {
					continue
				}
				if _, isFunc := t.Underlying().(*types.Signature); !isFunc {
					continue
				}
				b.rootFromExpr(arg, origin, u)
			}
			return true
		})
	}
}

// shardLocalReceiver reports whether the receiver expression of a
// scheduling call denotes a shard kernel: a carrier object or a direct
// ShardedKernel.Shard(i) chain.
func (b *builder) shardLocalReceiver(x ast.Expr, info *types.Info) bool {
	x = ast.Unparen(x)
	if isShardCall(x, info) {
		return true
	}
	switch e := x.(type) {
	case *ast.Ident:
		return b.carriers[info.ObjectOf(e)]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return b.carriers[sel.Obj()]
		}
		return b.carriers[info.Uses[e.Sel]]
	}
	return false
}

// rootFromExpr resolves a callback argument to a graph node, or records it
// as unresolvable.
func (b *builder) rootFromExpr(arg ast.Expr, origin string, u *analysis.TreeUnit) {
	pos := b.fset.Position(arg.Pos())
	at := filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
	switch e := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		if key, ok := b.litKeys[e]; ok {
			b.addShardRoot(Root{Key: key, Origin: origin + " registered at " + at, Pos: arg.Pos()})
			return
		}
	case *ast.Ident:
		if fn, ok := u.Info.Uses[e].(*types.Func); ok {
			if key, ok := b.keyFor(fn); ok {
				b.addShardRoot(Root{Key: key, Origin: origin + " registered at " + at, Pos: arg.Pos()})
				return
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := u.Info.Uses[e.Sel].(*types.Func); ok {
			if key, ok := b.keyFor(fn); ok {
				b.addShardRoot(Root{Key: key, Origin: origin + " registered at " + at, Pos: arg.Pos()})
				return
			}
		}
	}
	b.tree.UnresolvedShard = append(b.tree.UnresolvedShard, Site{
		Pos:    arg.Pos(),
		Detail: origin + " registered at " + at,
	})
}

// keyFor names a resolved function if it lives in the loaded tree.
func (b *builder) keyFor(fn *types.Func) (string, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if ptr, isPtr := rt.Underlying().(*types.Pointer); isPtr {
			rt = ptr.Elem()
		}
		named, isNamed := rt.(*types.Named)
		if !isNamed || named.Obj().Pkg() == nil || !b.unitPaths[named.Obj().Pkg().Path()] {
			return "", false
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name(), true
	}
	if fn.Pkg() == nil || !b.unitPaths[fn.Pkg().Path()] {
		return "", false
	}
	return fn.Pkg().Path() + "." + fn.Name(), true
}

func (b *builder) addShardRoot(r Root) {
	for _, have := range b.tree.ShardRoots {
		if have.Key == r.Key {
			return
		}
	}
	b.tree.ShardRoots = append(b.tree.ShardRoots, r)
}

// finish freezes iteration orders and runs the bottom-up summary fixpoint.
func (b *builder) finish() {
	t := b.tree
	t.Keys = make([]string, 0, len(t.Nodes))
	for k := range t.Nodes {
		t.Keys = append(t.Keys, k)
	}
	sort.Strings(t.Keys)
	for _, k := range t.Keys {
		n := t.Nodes[k]
		n.callees = make([]string, 0, len(n.calls))
		for c := range n.calls {
			n.callees = append(n.callees, c)
		}
		sort.Strings(n.callees)
		n.Summary = n.Direct
	}
	for changed := true; changed; {
		changed = false
		for _, k := range t.Keys {
			n := t.Nodes[k]
			s := n.Summary
			for _, c := range n.callees {
				if cn := t.Nodes[c]; cn != nil {
					s |= cn.Summary
				}
			}
			if s != n.Summary {
				n.Summary = s
				changed = true
			}
		}
	}
	sort.Slice(t.ShardRoots, func(i, j int) bool { return t.ShardRoots[i].Key < t.ShardRoots[j].Key })
	sort.Slice(t.Hotpaths, func(i, j int) bool { return t.Hotpaths[i].Key < t.Hotpaths[j].Key })
}

// Trace returns the call path (root first) from key to the nearest
// function whose own body exhibits bit, and that function's effect site.
// The walk follows sorted callee order, so the reported witness is
// deterministic.
func (t *Tree) Trace(key string, bit Effect) ([]string, Site, bool) {
	visited := make(map[string]bool)
	return t.trace(key, bit, visited, nil)
}

func (t *Tree) trace(cur string, bit Effect, visited map[string]bool, path []string) ([]string, Site, bool) {
	n := t.Nodes[cur]
	if n == nil || visited[cur] {
		return nil, Site{}, false
	}
	visited[cur] = true
	path = append(path, cur)
	if n.Direct&bit != 0 {
		out := make([]string, len(path))
		copy(out, path)
		return out, n.sites[bit], true
	}
	for _, c := range n.callees {
		cn := t.Nodes[c]
		if cn == nil || cn.Summary&bit == 0 {
			continue
		}
		if p, s, ok := t.trace(c, bit, visited, path); ok {
			return p, s, ok
		}
	}
	return nil, Site{}, false
}

// ShortKey trims the module prefix off a node key for rendering in
// diagnostics.
func ShortKey(key string) string {
	key = strings.TrimPrefix(key, "vcloud/internal/")
	return strings.TrimPrefix(key, "vcloud/")
}

// RenderChain renders a Trace path as "a.F -> b.G -> c.H".
func RenderChain(path []string) string {
	short := make([]string, len(path))
	for i, k := range path {
		short[i] = ShortKey(k)
	}
	return strings.Join(short, " -> ")
}
