package interproc_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"vcloud/internal/analysis"
	"vcloud/internal/analysis/interproc"
	"vcloud/internal/analysis/loader"
)

// buildTree type-checks the given sources (path -> file body) in order and
// runs interproc.Build over them. Later packages may import earlier ones by
// path.
func buildTree(t *testing.T, order []string, srcs map[string]string) *interproc.Tree {
	t.Helper()
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	checked := make(map[string]*types.Package)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return std.Import(path)
	})
	var units []*analysis.TreeUnit
	for _, path := range order {
		f, err := parser.ParseFile(fset, path+".go", srcs[path], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		info := loader.NewInfo()
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("check %s: %v", path, err)
		}
		checked[path] = tp
		units = append(units, &analysis.TreeUnit{Path: path, Files: []*ast.File{f}, Pkg: tp, Info: info})
	}
	return interproc.Build(fset, units)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func TestSummaryPropagationAcrossPackages(t *testing.T) {
	tree := buildTree(t, []string{"pa", "pb"}, map[string]string{
		"pa": `package pa

import "time"

func Leaf() time.Time { return time.Now() }

func Mid() { Leaf() }

type T struct{}

func (t *T) Method() { Mid() }
`,
		"pb": `package pb

import "pa"

func Top() {
	var t pa.T
	t.Method()
}
`,
	})

	leaf := tree.Nodes["pa.Leaf"]
	if leaf == nil || leaf.Direct&interproc.EffWallClock == 0 {
		t.Fatalf("pa.Leaf: want direct wall-clock effect, got %v", leaf)
	}
	top := tree.Nodes["pb.Top"]
	if top == nil {
		t.Fatalf("pb.Top missing; keys: %v", tree.Keys)
	}
	if top.Direct&interproc.EffWallClock != 0 {
		t.Errorf("pb.Top: wall clock must not be a direct effect")
	}
	if top.Summary&interproc.EffWallClock == 0 {
		t.Errorf("pb.Top: summary lost the transitive wall-clock effect (summary=%v)", top.Summary)
	}

	path, site, ok := tree.Trace("pb.Top", interproc.EffWallClock)
	if !ok {
		t.Fatalf("Trace(pb.Top, wallclock): no witness")
	}
	want := []string{"pb.Top", "pa.T.Method", "pa.Mid", "pa.Leaf"}
	if len(path) != len(want) {
		t.Fatalf("Trace path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("Trace path = %v, want %v", path, want)
		}
	}
	if !strings.Contains(site.Detail, "wall clock") {
		t.Errorf("witness detail %q does not mention the wall clock", site.Detail)
	}
	if got := interproc.RenderChain(path); got != "pb.Top -> pa.T.Method -> pa.Mid -> pa.Leaf" {
		t.Errorf("RenderChain = %q", got)
	}
}

func TestAllocClassification(t *testing.T) {
	tree := buildTree(t, []string{"al"}, map[string]string{
		"al": `package al

import (
	"fmt"
	"math"
)

type box struct{ buf []int }

func MakesSlice() []int {
	s := []int{1, 2}
	s = append(s, 3)
	return s
}

func AppendsParam(dst []int) []int { return append(dst, 1) }

func (b *box) AppendsField(v int) { b.buf = append(b.buf, v) }

func News() *box { return new(box) }

func Addr() *box { return &box{} }

func Extern() { fmt.Println("x") }

func Mathy() float64 { return math.Sqrt(2) }

func Closes() func() { return func() {} }

func Dyn(f func()) { f() }
`,
	})

	check := func(key string, wantBits, banBits interproc.Effect) {
		t.Helper()
		n := tree.Nodes[key]
		if n == nil {
			t.Fatalf("%s missing; keys: %v", key, tree.Keys)
		}
		if n.Direct&wantBits != wantBits {
			t.Errorf("%s: direct=%v, want bits %v", key, n.Direct, wantBits)
		}
		if n.Direct&banBits != 0 {
			t.Errorf("%s: direct=%v carries banned bits %v", key, n.Direct, n.Direct&banBits)
		}
	}
	check("al.MakesSlice", interproc.EffAllocHeap|interproc.EffAllocAppend, 0)
	check("al.AppendsParam", 0, interproc.AllocEffects)
	check("al.box.AppendsField", 0, interproc.AllocEffects)
	check("al.News", interproc.EffAllocHeap, 0)
	check("al.Addr", interproc.EffAllocHeap, 0)
	check("al.Extern", interproc.EffAllocExtern, 0)
	check("al.Mathy", 0, interproc.AllocEffects|interproc.EffDynamicCall)
	check("al.Closes", interproc.EffAllocClosure, 0)
	check("al.Dyn", interproc.EffDynamicCall, 0)
}

const kernelStub = `package sk

type Time int64

type Kernel struct{}

func (k *Kernel) At(t Time, fn func())                {}
func (k *Kernel) AtArg(t Time, fn func(any), arg any) {}

type ShardedKernel struct{}

func (s *ShardedKernel) Shard(i int) *Kernel                          { return &Kernel{} }
func (s *ShardedKernel) Inject(src, dst int, at Time, fn func(any), arg any) {}
`

func TestShardRootDetection(t *testing.T) {
	tree := buildTree(t, []string{"sk", "roots"}, map[string]string{
		"sk": kernelStub,
		"roots": `package roots

import "sk"

type wrap struct{ k *sk.Kernel }

func Tick() {}

func Apply(a any) {}

func Register(skn *sk.ShardedKernel) {
	k := skn.Shard(0)
	k.At(0, Tick)
	w := wrap{k: skn.Shard(1)}
	w.k.AtArg(0, Apply, nil)
	skn.Shard(2).At(0, func() {})
	skn.Inject(0, 1, 0, Apply, nil)
	var fv func()
	k.At(0, fv)
}
`,
	})

	var keys []string
	for _, r := range tree.ShardRoots {
		keys = append(keys, r.Key)
	}
	wantNamed := map[string]bool{"roots.Tick": false, "roots.Apply": false}
	sawLit := false
	for _, k := range keys {
		if _, ok := wantNamed[k]; ok {
			wantNamed[k] = true
		}
		if strings.Contains(k, "·lit@") {
			sawLit = true
		}
	}
	for k, seen := range wantNamed {
		if !seen {
			t.Errorf("shard roots missing %s; got %v", k, keys)
		}
	}
	if !sawLit {
		t.Errorf("shard roots missing the func-literal callback; got %v", keys)
	}
	if len(tree.UnresolvedShard) != 1 {
		t.Errorf("UnresolvedShard = %d sites, want 1 (the func-valued variable)", len(tree.UnresolvedShard))
	}
}

func TestHotpathAnnotationDetection(t *testing.T) {
	tree := buildTree(t, []string{"hp"}, map[string]string{
		"hp": `package hp

// Fast does fast things.
//
//vcloudlint:hotpath called per event
func Fast() {}

// Slow is not annotated.
func Slow() {}
`,
	})
	var keys []string
	for _, r := range tree.Hotpaths {
		keys = append(keys, r.Key)
	}
	if len(keys) != 1 || keys[0] != "hp.Fast" {
		t.Fatalf("Hotpaths = %v, want [hp.Fast]", keys)
	}
}

func TestEffectStringAndShortKey(t *testing.T) {
	if got := interproc.EffWallClock.String(); got != "wall-clock read" {
		t.Errorf("EffWallClock.String() = %q", got)
	}
	mask := interproc.EffWallClock | interproc.EffGoroutine
	if got := mask.String(); got != "wall-clock read|goroutine/sync use" {
		t.Errorf("mask.String() = %q", got)
	}
	if got := interproc.ShortKey("vcloud/internal/sim.Kernel.At"); got != "sim.Kernel.At" {
		t.Errorf("ShortKey = %q", got)
	}
}
