// Package allowfn regression-tests the function allowlist: pool mirrors
// experiments.forEachPar, the sanctioned fan-out/fan-in harness that runs
// whole kernels in parallel. The test registers allowfn.pool; spawnElse
// stays flagged.
package allowfn

import "sync"

func pool(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}

func spawnElse() {
	go func() {}() // want `go statement in kernel-driven code`
}
