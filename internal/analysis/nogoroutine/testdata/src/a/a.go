// Package a exercises the nogoroutine analyzer: goroutines and sync
// primitives have no place on the kernel's single-threaded event loop.
package a

import (
	"sync"
	"sync/atomic"
)

func spawn() {
	go func() {}() // want `go statement in kernel-driven code`
}

type guarded struct {
	mu sync.Mutex // want `sync.Mutex in kernel-driven code`
	n  int
}

func (g *guarded) bump() {
	g.mu.Lock() // method call on a field: the declaration above is the finding
	g.n++
	g.mu.Unlock()
}

func waits() {
	var wg sync.WaitGroup // want `sync.WaitGroup in kernel-driven code`
	wg.Wait()
}

func counts(n *int64) {
	atomic.AddInt64(n, 1) // want `atomic.AddInt64 in kernel-driven code`
}

// fine: plain single-threaded model code, including channel-free
// callback scheduling.
func fine(fns []func()) {
	for _, fn := range fns {
		fn()
	}
}
