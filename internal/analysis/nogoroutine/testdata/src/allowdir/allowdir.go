// Package allowdir regression-tests //vcloudlint:allow suppression for
// nogoroutine: pool mirrors experiments.forEachPar, the sanctioned
// fan-out/fan-in harness that runs whole kernels in parallel and carries
// reasoned directives at each concurrency site. spawnElse has no directive
// and stays flagged.
package allowdir

import "sync"

func pool(n int, fn func(int)) {
	//vcloudlint:allow nogoroutine fan-out pool joins before results are folded
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		//vcloudlint:allow nogoroutine pool worker runs an independent kernel
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}

func spawnElse() {
	go func() {}() // want `go statement in kernel-driven code`
}
