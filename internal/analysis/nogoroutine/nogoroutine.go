// Package nogoroutine flags concurrency primitives in kernel-driven code.
// The simulation kernel is single-goroutine by design (see internal/sim):
// every model callback runs on the caller's goroutine, in (time, seq)
// order, with no locking. A `go` statement or a sync primitive inside that
// world either races the event loop or silently reorders it — both break
// determinism.
//
// The one sanctioned concurrency site is the experiment harness's bounded
// worker pool (forEachPar), which runs whole kernels in parallel and folds
// results serially; it is allowlisted by function.
package nogoroutine

import (
	"go/ast"

	"vcloud/internal/analysis"
)

// Allowlist names functions (analysis.FuncKey form) that may spawn
// goroutines and use sync primitives: the fan-out/fan-in harness that runs
// independent kernels, never code inside one kernel.
var Allowlist = map[string]bool{
	"vcloud/internal/experiments.forEachPar": true,
}

// Analyzer is the nogoroutine check.
var Analyzer = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc:  "flag go statements and sync/sync/atomic usage in kernel-driven code (the event loop is single-threaded)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.InspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		allowed := func() bool {
			return Allowlist[analysis.FuncKey(pass.Path, analysis.EnclosingFunc(stack))]
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			if !allowed() {
				pass.Reportf(n.Pos(), "go statement in kernel-driven code: model callbacks must run on the kernel's single event loop")
			}
		case *ast.SelectorExpr:
			pkg, name, ok := pass.UsedPkgFunc(n)
			if !ok {
				return true
			}
			if (pkg == "sync" || pkg == "sync/atomic") && !allowed() {
				pass.Reportf(n.Pos(), "%s.%s in kernel-driven code: the event loop is single-threaded and needs no locking", pathBase(pkg), name)
			}
		}
		return true
	})
	return nil
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
