// Package nogoroutine flags concurrency primitives in kernel-driven code.
// The simulation kernel is single-goroutine by design (see internal/sim):
// every model callback runs on the caller's goroutine, in (time, seq)
// order, with no locking. A `go` statement or a sync primitive inside that
// world either races the event loop or silently reorders it — both break
// determinism.
//
// Sanctioned concurrency sites (the experiment harness's bounded worker
// pool, the sharded kernel's shard workers) carry a //vcloudlint:allow
// directive with the reasoning at the site, so a rename or refactor can
// never silently widen an exemption.
package nogoroutine

import (
	"go/ast"

	"vcloud/internal/analysis"
)

// Analyzer is the nogoroutine check.
var Analyzer = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc:  "flag go statements and sync/sync/atomic usage in kernel-driven code (the event loop is single-threaded)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.InspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in kernel-driven code: model callbacks must run on the kernel's single event loop")
		case *ast.SelectorExpr:
			pkg, name, ok := pass.UsedPkgFunc(n)
			if !ok {
				return true
			}
			if pkg == "sync" || pkg == "sync/atomic" {
				pass.Reportf(n.Pos(), "%s.%s in kernel-driven code: the event loop is single-threaded and needs no locking", pathBase(pkg), name)
			}
		}
		return true
	})
	return nil
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
