package nogoroutine_test

import (
	"testing"

	"vcloud/internal/analysis/analysistest"
	"vcloud/internal/analysis/nogoroutine"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, nogoroutine.Analyzer, "testdata", "a")
}

func TestFunctionAllowlist(t *testing.T) {
	nogoroutine.Allowlist["allowfn.pool"] = true
	defer delete(nogoroutine.Allowlist, "allowfn.pool")
	analysistest.Run(t, nogoroutine.Analyzer, "testdata", "allowfn")
}

// TestRealAllowlistEntries pins the production allowlist to the
// experiment harness's worker pool and nothing else.
func TestRealAllowlistEntries(t *testing.T) {
	if !nogoroutine.Allowlist["vcloud/internal/experiments.forEachPar"] {
		t.Error("Allowlist missing vcloud/internal/experiments.forEachPar")
	}
	if len(nogoroutine.Allowlist) != 1 {
		t.Errorf("Allowlist has %d entries, want 1: new concurrency sites need a design note", len(nogoroutine.Allowlist))
	}
}
