package nogoroutine_test

import (
	"testing"

	"vcloud/internal/analysis/analysistest"
	"vcloud/internal/analysis/nogoroutine"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, nogoroutine.Analyzer, "testdata", "a")
}

// TestAllowDirective pins the escape hatch: a reasoned //vcloudlint:allow
// at each concurrency site suppresses the finding, and a site without one
// stays flagged. This is the only sanctioned exemption mechanism — there
// is no name-based allowlist to drift out of sync with the code.
func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, nogoroutine.Analyzer, "testdata", "allowdir")
}
