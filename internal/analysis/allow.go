package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// AllowDirective is the parsed form of one
//
//	//vcloudlint:allow <analyzer>[,<analyzer>...] <reason>
//
// comment. A directive suppresses diagnostics from the named analyzers on
// its own line and on the line immediately below it, so it works both as a
// trailing comment and as a standalone comment above the offending
// statement. The reason is mandatory: an allowlist entry without a
// recorded justification is itself a lint error.
type AllowDirective struct {
	Pos       token.Pos
	Analyzers []string
	Reason    string
}

const allowPrefix = "//vcloudlint:allow"

// allowEntry tracks one (directive, analyzer name) pair so the suite can
// audit directives that no longer suppress anything.
type allowEntry struct {
	pos  token.Pos
	name string
	used bool
}

// AllowSet indexes every well-formed allow directive in a set of files and
// remembers the malformed ones so the driver can report them. Lookups via
// Allowed mark the matched entry as used; Stale reports the rest.
type AllowSet struct {
	// byLine maps "filename:line" to the entries allowed there; the two
	// lines a directive covers share the same entries, so a hit on either
	// marks the directive used.
	byLine map[string]map[string]*allowEntry
	// entries keeps every (directive, analyzer) pair in source order.
	entries []*allowEntry
	// Malformed collects directives missing an analyzer name or a reason.
	Malformed []Diagnostic
}

// ParseAllows scans the comments of files for vcloudlint:allow directives.
func ParseAllows(fset *token.FileSet, files []*ast.File) *AllowSet {
	as := &AllowSet{byLine: make(map[string]map[string]*allowEntry)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := c.Text[len(allowPrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //vcloudlint:allowance — not ours
				}
				names, reason := splitDirective(rest)
				if len(names) == 0 || reason == "" {
					as.Malformed = append(as.Malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "allow",
						Message:  "malformed directive: want //vcloudlint:allow <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				for _, n := range names {
					e := &allowEntry{pos: c.Pos(), name: n}
					as.entries = append(as.entries, e)
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := lineKey(pos.Filename, line)
						if as.byLine[key] == nil {
							as.byLine[key] = make(map[string]*allowEntry)
						}
						as.byLine[key][n] = e
					}
				}
			}
		}
	}
	return as
}

// splitDirective parses " nowallclock,nogoroutine reason text" into the
// analyzer list and the reason.
func splitDirective(rest string) (names []string, reason string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, ""
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			names = append(names, n)
		}
	}
	return names, strings.Join(fields[1:], " ")
}

// Allowed reports whether a diagnostic from analyzer at pos is suppressed
// by a directive on the same line or the line above, marking the matched
// directive as earning its keep for the stale audit.
func (as *AllowSet) Allowed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	e := as.byLine[lineKey(p.Filename, p.Line)][analyzer]
	if e == nil {
		return false
	}
	e.used = true
	return true
}

// Stale returns one diagnostic per (directive, analyzer) pair that
// suppressed nothing across every Allowed lookup made so far. Run it only
// after all analyzers have reported: a reasoned exemption that no longer
// matches a finding has rotted and must be deleted or re-justified.
func (as *AllowSet) Stale() []Diagnostic {
	var out []Diagnostic
	for _, e := range as.entries {
		if e.used {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      e.pos,
			Analyzer: "allow",
			Message:  "stale directive: no " + e.name + " finding here or on the next line; delete the exemption or re-justify it",
		})
	}
	return out
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}
