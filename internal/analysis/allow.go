package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// AllowDirective is the parsed form of one
//
//	//vcloudlint:allow <analyzer>[,<analyzer>...] <reason>
//
// comment. A directive suppresses diagnostics from the named analyzers on
// its own line and on the line immediately below it, so it works both as a
// trailing comment and as a standalone comment above the offending
// statement. The reason is mandatory: an allowlist entry without a
// recorded justification is itself a lint error.
type AllowDirective struct {
	Pos       token.Pos
	Analyzers []string
	Reason    string
}

const allowPrefix = "//vcloudlint:allow"

// AllowSet indexes every well-formed allow directive in a set of files and
// remembers the malformed ones so the driver can report them.
type AllowSet struct {
	// byLine maps "filename:line" to the analyzer names allowed there.
	byLine map[string]map[string]bool
	// Malformed collects directives missing an analyzer name or a reason.
	Malformed []Diagnostic
}

// ParseAllows scans the comments of files for vcloudlint:allow directives.
func ParseAllows(fset *token.FileSet, files []*ast.File) *AllowSet {
	as := &AllowSet{byLine: make(map[string]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := c.Text[len(allowPrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //vcloudlint:allowance — not ours
				}
				names, reason := splitDirective(rest)
				if len(names) == 0 || reason == "" {
					as.Malformed = append(as.Malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "allow",
						Message:  "malformed directive: want //vcloudlint:allow <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := lineKey(pos.Filename, line)
					if as.byLine[key] == nil {
						as.byLine[key] = make(map[string]bool)
					}
					for _, n := range names {
						as.byLine[key][n] = true
					}
				}
			}
		}
	}
	return as
}

// splitDirective parses " nowallclock,nogoroutine reason text" into the
// analyzer list and the reason.
func splitDirective(rest string) (names []string, reason string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, ""
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			names = append(names, n)
		}
	}
	return names, strings.Join(fields[1:], " ")
}

// Allowed reports whether a diagnostic from analyzer at pos is suppressed
// by a directive on the same line or the line above.
func (as *AllowSet) Allowed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	return as.byLine[lineKey(p.Filename, p.Line)][analyzer]
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}
