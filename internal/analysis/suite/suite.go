// Package suite assembles the vcloudlint analyzers, decides which module
// packages each one applies to, and runs them over loaded packages with
// //vcloudlint:allow suppression applied. cmd/vcloudlint and the suite
// self-test share this code so "the tree is clean" means the same thing on
// a laptop and in CI.
package suite

import (
	"go/ast"
	"go/token"
	"sort"

	"vcloud/internal/analysis"
	"vcloud/internal/analysis/epochstamp"
	"vcloud/internal/analysis/exhaustenum"
	"vcloud/internal/analysis/hotalloc"
	"vcloud/internal/analysis/loader"
	"vcloud/internal/analysis/noglobalrand"
	"vcloud/internal/analysis/nogoroutine"
	"vcloud/internal/analysis/nomaporder"
	"vcloud/internal/analysis/nowallclock"
	"vcloud/internal/analysis/shardpure"
)

// Entry pairs an analyzer with its package filter.
type Entry struct {
	Analyzer *analysis.Analyzer
	// Applies reports whether the analyzer runs on the package with the
	// given import path. Tree analyzers see every loaded package at once;
	// their Applies is informational only.
	Applies func(pkgPath string) bool
}

// SimDriven reports whether a package runs under the simulation kernel's
// virtual clock and single-threaded event loop: the root vcloud package
// and everything under internal/ except the analysis tooling itself.
// cmd/ and examples/ binaries orchestrate runs from outside the kernel
// (vcloudbench legitimately measures wall time and runs a worker pool).
func SimDriven(pkgPath string) bool {
	if pkgPath == "vcloud" {
		return true
	}
	if !hasPrefix(pkgPath, "vcloud/internal/") {
		return false
	}
	return !hasPrefix(pkgPath, "vcloud/internal/analysis")
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func everywhere(string) bool { return true }

// Suite returns the eight vcloudlint analyzers in report order.
//
// nowallclock and nogoroutine bind only to sim-driven packages: binaries
// may time themselves and parallelize. noglobalrand and nomaporder bind
// everywhere — the global rand source is never reproducible, and
// vcloudbench's stdout must stay byte-identical at any parallelism, so
// map-ordered output is a bug in cmd/ too. epochstamp and exhaustenum bind
// everywhere they can trigger (they only fire on the module's own types).
// shardpure and hotalloc are tree analyzers: they build one call graph
// over every loaded package, because the whole point is chasing effects
// across package boundaries.
func Suite() []Entry {
	return []Entry{
		{nowallclock.Analyzer, SimDriven},
		{noglobalrand.Analyzer, everywhere},
		{nomaporder.Analyzer, everywhere},
		{nogoroutine.Analyzer, SimDriven},
		{epochstamp.Analyzer, everywhere},
		{exhaustenum.Analyzer, everywhere},
		{shardpure.Analyzer, everywhere},
		{hotalloc.Analyzer, everywhere},
	}
}

// Finding is one rendered diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Run executes every suite analyzer over every applicable package and
// returns the surviving findings sorted by position. Malformed allow
// directives are findings too: a suppression without a reason defeats the
// point of the escape hatch. So are stale ones — after every analyzer has
// reported, any //vcloudlint:allow that suppressed nothing is itself a
// finding, so reasoned exemptions cannot rot after refactors.
func Run(fset *token.FileSet, pkgs []*loader.Package) ([]Finding, error) {
	// One allow set over the whole tree: tree analyzers report sites in
	// any package, and a directive's scope is a source line, which is
	// unambiguous across packages because filenames are.
	units := make([]*analysis.TreeUnit, 0, len(pkgs))
	var allFiles []*ast.File
	for _, pkg := range pkgs {
		allFiles = append(allFiles, pkg.Files...)
		units = append(units, &analysis.TreeUnit{Path: pkg.Path, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info})
	}
	allows := analysis.ParseAllows(fset, allFiles)

	var findings []Finding
	for _, m := range allows.Malformed {
		findings = append(findings, Finding{Pos: fset.Position(m.Pos), Analyzer: m.Analyzer, Message: m.Message})
	}

	keep := func(diags []analysis.Diagnostic) {
		for _, d := range diags {
			if allows.Allowed(fset, d.Analyzer, d.Pos) {
				continue
			}
			findings = append(findings, Finding{Pos: fset.Position(d.Pos), Analyzer: d.Analyzer, Message: d.Message})
		}
	}

	for _, pkg := range pkgs {
		for _, e := range Suite() {
			if e.Analyzer.Run == nil || !e.Applies(pkg.Path) {
				continue
			}
			var diags []analysis.Diagnostic
			pass := analysis.NewPass(e.Analyzer, fset, pkg.Files, pkg.Path, pkg.Types, pkg.Info, func(d analysis.Diagnostic) {
				diags = append(diags, d)
			})
			if err := e.Analyzer.Run(pass); err != nil {
				return nil, err
			}
			keep(diags)
		}
	}

	for _, e := range Suite() {
		if e.Analyzer.RunTree == nil {
			continue
		}
		var diags []analysis.Diagnostic
		pass := analysis.NewTreePass(e.Analyzer, fset, units, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		if err := e.Analyzer.RunTree(pass); err != nil {
			return nil, err
		}
		keep(diags)
	}

	// Stale audit last: every analyzer has now had its chance to hit each
	// directive.
	for _, d := range allows.Stale() {
		findings = append(findings, Finding{Pos: fset.Position(d.Pos), Analyzer: d.Analyzer, Message: d.Message})
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
