package suite_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"vcloud/internal/analysis/loader"
	"vcloud/internal/analysis/suite"
)

// TestTreeIsClean is the linter's own determinism gate in tier-1 form:
// the whole module must be free of vcloudlint findings. CI additionally
// runs `go run ./cmd/vcloudlint ./...`, but this test makes a violation
// fail `go test ./...` too, so it cannot slip past a contributor who
// only runs the tests.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; covered by the non-short run and the CI vcloudlint step")
	}
	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, ".", "vcloud/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing the tree", len(pkgs))
	}
	findings, err := suite.Run(fset, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
}

// TestStaleAllowIsAFinding pins the stale-allow audit: a directive that
// suppresses nothing is itself reported, so exemptions cannot outlive the
// code they excused.
func TestStaleAllowIsAFinding(t *testing.T) {
	const src = `package fake

//vcloudlint:allow nowallclock leftover excuse from a deleted profiling probe
func Clean() int { return 42 }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fake.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := loader.NewInfo()
	conf := types.Config{}
	tp, err := conf.Check("vcloud/internal/fake", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &loader.Package{Path: "vcloud/internal/fake", Files: []*ast.File{f}, Types: tp, Info: info}
	findings, err := suite.Run(fset, []*loader.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 stale-allow: %v", len(findings), findings)
	}
	got := findings[0]
	if got.Analyzer != "allow" || !strings.Contains(got.Message, "stale directive") || !strings.Contains(got.Message, "nowallclock") {
		t.Errorf("finding = [%s] %q, want a stale-directive report naming nowallclock", got.Analyzer, got.Message)
	}
	if got.Pos.Line != 3 {
		t.Errorf("finding at line %d, want 3 (the directive line)", got.Pos.Line)
	}
}

// TestSimDriven pins the package-classification boundary.
func TestSimDriven(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"vcloud", true},
		{"vcloud/internal/sim", true},
		{"vcloud/internal/vcloud", true},
		{"vcloud/internal/experiments", true},
		{"vcloud/internal/chaos", true},
		{"vcloud/internal/analysis", false},
		{"vcloud/internal/analysis/loader", false},
		{"vcloud/cmd/vcloudbench", false},
		{"vcloud/cmd/vcloudsim", false},
		{"vcloud/examples/quickstart", false},
		{"othermodule/internal/sim", false},
	}
	for _, c := range cases {
		if got := suite.SimDriven(c.path); got != c.want {
			t.Errorf("SimDriven(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestSuiteShape pins the analyzer roster: eight checks, stable order,
// distinct names, each with exactly one of Run (per-package) or RunTree
// (whole-tree).
func TestSuiteShape(t *testing.T) {
	want := []string{"nowallclock", "noglobalrand", "nomaporder", "nogoroutine", "epochstamp", "exhaustenum", "shardpure", "hotalloc"}
	entries := suite.Suite()
	if len(entries) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		if e.Analyzer.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, e.Analyzer.Name, want[i])
		}
		if e.Analyzer.Doc == "" || e.Applies == nil {
			t.Errorf("suite[%d] (%s) incomplete", i, e.Analyzer.Name)
		}
		hasRun := e.Analyzer.Run != nil
		hasTree := e.Analyzer.RunTree != nil
		if hasRun == hasTree {
			t.Errorf("suite[%d] (%s) must set exactly one of Run/RunTree", i, e.Analyzer.Name)
		}
	}
}
