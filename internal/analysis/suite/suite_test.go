package suite_test

import (
	"go/token"
	"testing"

	"vcloud/internal/analysis/loader"
	"vcloud/internal/analysis/suite"
)

// TestTreeIsClean is the linter's own determinism gate in tier-1 form:
// the whole module must be free of vcloudlint findings. CI additionally
// runs `go run ./cmd/vcloudlint ./...`, but this test makes a violation
// fail `go test ./...` too, so it cannot slip past a contributor who
// only runs the tests.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; covered by the non-short run and the CI vcloudlint step")
	}
	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, ".", "vcloud/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing the tree", len(pkgs))
	}
	findings, err := suite.Run(fset, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
}

// TestSimDriven pins the package-classification boundary.
func TestSimDriven(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"vcloud", true},
		{"vcloud/internal/sim", true},
		{"vcloud/internal/vcloud", true},
		{"vcloud/internal/experiments", true},
		{"vcloud/internal/chaos", true},
		{"vcloud/internal/analysis", false},
		{"vcloud/internal/analysis/loader", false},
		{"vcloud/cmd/vcloudbench", false},
		{"vcloud/cmd/vcloudsim", false},
		{"vcloud/examples/quickstart", false},
		{"othermodule/internal/sim", false},
	}
	for _, c := range cases {
		if got := suite.SimDriven(c.path); got != c.want {
			t.Errorf("SimDriven(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestSuiteShape pins the analyzer roster: five checks, stable order,
// distinct names.
func TestSuiteShape(t *testing.T) {
	want := []string{"nowallclock", "noglobalrand", "nomaporder", "nogoroutine", "epochstamp"}
	entries := suite.Suite()
	if len(entries) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		if e.Analyzer.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, e.Analyzer.Name, want[i])
		}
		if e.Analyzer.Doc == "" || e.Analyzer.Run == nil || e.Applies == nil {
			t.Errorf("suite[%d] (%s) incomplete", i, e.Analyzer.Name)
		}
	}
}
