package exhaustenum_test

import (
	"testing"

	"vcloud/internal/analysis/analysistest"
	"vcloud/internal/analysis/exhaustenum"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, exhaustenum.Analyzer, "testdata", "a")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, exhaustenum.Analyzer, "testdata", "ok")
}

func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, exhaustenum.Analyzer, "testdata", "allowdir")
}

func TestFalsePositives(t *testing.T) {
	analysistest.Run(t, exhaustenum.Analyzer, "testdata", "fp")
}
