// Package a holds exhaustenum violations: switches over module enum types
// that miss members and carry no default.
package a

type Reason int

const (
	ReasonA Reason = iota
	ReasonB
	ReasonC
	NumReasons
)

func handle(r Reason) int {
	switch r { // want `switch over Reason is not exhaustive: missing ReasonC`
	case ReasonA:
		return 1
	case ReasonB:
		return 2
	}
	return 0
}

type Tier string

const (
	TierCloud Tier = "cloud"
	TierEdge  Tier = "edge"
)

func place(t Tier) {
	switch t { // want `switch over Tier is not exhaustive: missing TierCloud`
	case TierEdge:
	}
}
