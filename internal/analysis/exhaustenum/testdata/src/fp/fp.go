// Package fp holds shapes exhaustenum must NOT flag: enums defined
// outside the module root, single-constant types, type switches, and
// value aliases covering every member.
package fp

import "go/token"

// extern enum: token.Token lives outside the module root.
func extern(t token.Token) {
	switch t {
	case token.ADD:
	}
}

// single-constant types are not enums.
type one int

const OnlyOne one = 1

func single(v one) {
	switch v {
	case OnlyOne:
	}
}

// type switches are never flagged.
func typeSwitch(v any) int {
	switch v.(type) {
	case int:
		return 1
	}
	return 0
}

// aliases: covering any spelling of every value is exhaustive.
type mode int

const (
	ModeA mode = iota
	ModeB
	ModeDefault = ModeA
)

func aliased(m mode) {
	switch m {
	case ModeDefault, ModeB:
	}
}
