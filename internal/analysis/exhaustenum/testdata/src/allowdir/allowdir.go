// Package allowdir regression-tests //vcloudlint:allow suppression for
// exhaustenum: a reasoned directive on the switch line suppresses, an
// identical switch without one stays flagged.
package allowdir

type Reason int

const (
	ReasonA Reason = iota
	ReasonB
)

func excused(r Reason) int {
	//vcloudlint:allow exhaustenum ReasonB is rerouted by the caller before this switch
	switch r {
	case ReasonA:
		return 1
	}
	return 0
}

func unexcused(r Reason) int {
	switch r { // want `switch over Reason is not exhaustive`
	case ReasonA:
		return 1
	}
	return 0
}
