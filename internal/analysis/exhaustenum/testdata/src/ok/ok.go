// Package ok holds passing switches: full coverage (count sentinels
// excluded) and explicit defaults.
package ok

type Reason int

const (
	ReasonA Reason = iota
	ReasonB
	NumReasons
)

func full(r Reason) int {
	switch r {
	case ReasonA:
		return 1
	case ReasonB:
		return 2
	}
	return 0
}

func defaulted(r Reason) int {
	switch r {
	case ReasonA:
		return 1
	default:
		return 0
	}
}
