// Package exhaustenum requires switches over the module's enum-like types
// to be exhaustive or to carry an explicit default. An enum-like type is a
// named, module-defined type whose underlying type is an integer or
// string and which has at least two package-level constants declared of
// it — FailReason's Reason* set and the Tier ladder are the motivating
// cases: retry routing and offload placement switch over them, and a new
// enum member that silently falls through a non-exhaustive switch loses
// jobs instead of routing them.
//
// Count-sentinel constants (names starting with "Num", like NumTiers) are
// excluded from the required cover: they exist to size arrays, not to be
// switched on. Constants sharing a value (aliases) count as covered when
// any spelling of the value appears. Type switches and switches with a
// default are never flagged; the default is the author's explicit
// statement that fall-through is considered.
//
// Suppress with //vcloudlint:allow exhaustenum <reason> on the switch
// line when non-exhaustiveness is intended.
package exhaustenum

import (
	"go/ast"
	"go/types"
	"strings"

	"vcloud/internal/analysis"
)

// Analyzer is the exhaustenum check.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustenum",
	Doc:  "require switches over module enum types (FailReason, Tier, ...) to cover every constant or carry an explicit default",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.InspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		named := enumType(pass.TypeOf(sw.Tag), pass.Path)
		if named == nil {
			return true
		}
		members := enumMembers(named)
		if len(members) < 2 {
			return true
		}
		covered := make(map[string]bool)
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				return true // explicit default: fall-through is considered
			}
			for _, expr := range cc.List {
				if tv, ok := pass.Info.Types[expr]; ok && tv.Value != nil {
					covered[tv.Value.ExactString()] = true
				}
			}
		}
		var missing []string
		for _, m := range members {
			if !covered[m.Val().ExactString()] {
				missing = append(missing, m.Name())
			}
		}
		if len(missing) > 0 {
			pass.Reportf(sw.Switch, "switch over %s is not exhaustive: missing %s; add the cases or an explicit default", named.Obj().Name(), strings.Join(missing, ", "))
		}
		return true
	})
	return nil
}

// enumType returns the named type of a switch tag when it is an enum
// candidate: module-defined (same module root as the package under
// analysis), with an integer or string underlying type.
func enumType(t types.Type, pkgPath string) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || moduleRoot(obj.Pkg().Path()) != moduleRoot(pkgPath) {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	switch {
	case basic.Info()&types.IsInteger != 0, basic.Info()&types.IsString != 0:
		return named
	}
	return nil
}

func moduleRoot(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// enumMembers returns the package-level constants declared with the named
// type, in scope order, excluding blank and Num*-prefixed count sentinels.
func enumMembers(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var members []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Name() == "_" || strings.HasPrefix(c.Name(), "Num") {
			continue
		}
		if types.Identical(c.Type(), named) {
			members = append(members, c)
		}
	}
	return members
}
