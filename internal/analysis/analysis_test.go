package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func passOver(fset *token.FileSet, f *ast.File) *Pass {
	a := &Analyzer{Name: "test"}
	return NewPass(a, fset, []*ast.File{f}, "p", nil, nil, func(Diagnostic) {})
}

// TestInspectWithStack checks that the callback sees each node with the
// full ancestor chain, outermost first, not including the node itself.
func TestInspectWithStack(t *testing.T) {
	fset, f := parseOne(t, `package p

func outer() {
	inner := func() {
		_ = 1
	}
	_ = inner
}
`)
	pass := passOver(fset, f)
	var sawLitBody bool
	pass.InspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		// At any node, stack[0] must be the file and every entry an
		// ancestor of the next.
		if len(stack) > 0 {
			if _, ok := stack[0].(*ast.File); !ok {
				t.Fatalf("stack[0] = %T, want *ast.File", stack[0])
			}
		}
		if bl, ok := n.(*ast.BasicLit); ok && bl.Value == "1" {
			sawLitBody = true
			// The chain must include, in order somewhere: the file, the
			// outer FuncDecl, and the FuncLit.
			var declAt, litAt = -1, -1
			for i, s := range stack {
				switch s.(type) {
				case *ast.FuncDecl:
					declAt = i
				case *ast.FuncLit:
					litAt = i
				}
			}
			if declAt < 0 || litAt < 0 || declAt > litAt {
				t.Errorf("stack missing FuncDecl-before-FuncLit ordering: %v", stack)
			}
			if fd := EnclosingFunc(stack); fd == nil || fd.Name.Name != "outer" {
				t.Errorf("EnclosingFunc = %v, want outer (literals are skipped)", fd)
			}
		}
		return true
	})
	if !sawLitBody {
		t.Fatal("walk never reached the literal inside the closure")
	}
}

// TestInspectWithStackPruning checks that returning false skips the
// subtree below n and keeps the stack balanced for the rest of the walk.
func TestInspectWithStackPruning(t *testing.T) {
	fset, f := parseOne(t, `package p

func skipped() {
	_ = "inside-skipped"
}

func visited() {
	_ = "inside-visited"
}
`)
	pass := passOver(fset, f)
	var visitedLits []string
	maxDepth := 0
	pass.InspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		if len(stack) > maxDepth {
			maxDepth = len(stack)
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Name.Name == "skipped" {
				return false
			}
		case *ast.BasicLit:
			visitedLits = append(visitedLits, n.Value)
		}
		return true
	})
	if len(visitedLits) != 1 || visitedLits[0] != `"inside-visited"` {
		t.Errorf("visited literals = %v, want only the one outside the pruned subtree", visitedLits)
	}
	if maxDepth == 0 {
		t.Error("stack never grew; pruning broke the push/pop balance")
	}
}

// TestFuncKeyGenericReceiver pins the generic-receiver form: T[P] methods
// key as pkg.T.Method, same as non-generic ones.
func TestFuncKeyGenericReceiver(t *testing.T) {
	_, f := parseOne(t, `package p

type Box[T any] struct{ v T }

func (b *Box[T]) Get() T { return b.v }

func (b Box[T]) Peek() T { return b.v }
`)
	want := map[string]string{
		"Get":  "pkg.Box.Get",
		"Peek": "pkg.Box.Peek",
	}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if got := FuncKey("pkg", fd); got != want[fd.Name.Name] {
			t.Errorf("FuncKey(%s) = %q, want %q", fd.Name.Name, got, want[fd.Name.Name])
		}
	}
}
