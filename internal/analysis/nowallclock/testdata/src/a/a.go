// Package a exercises the nowallclock analyzer: every banned wall-clock
// read is flagged, pure time-value arithmetic is not.
package a

import "time"

func violations() {
	_ = time.Now()              // want `time.Now reads the wall clock`
	time.Sleep(time.Second)     // want `time.Sleep reads the wall clock`
	_ = time.Since(time.Time{}) // want `time.Since reads the wall clock`
	<-time.After(time.Second)   // want `time.After reads the wall clock`
	_ = time.NewTicker(1)       // want `time.NewTicker reads the wall clock`
	_ = time.NewTimer(1)        // want `time.NewTimer reads the wall clock`
	_ = time.Until(time.Time{}) // want `time.Until reads the wall clock`
}

// funcValue passes a banned function as a value — still a wall-clock
// dependency.
func funcValue() func() time.Time {
	return time.Now // want `time.Now reads the wall clock`
}

// fine uses time only for values and durations: the virtual clock is
// time.Duration-typed, so this must stay silent.
func fine(d time.Duration) time.Duration {
	deadline := d + 3*time.Second
	_ = time.Date(2019, time.July, 1, 0, 0, 0, 0, time.UTC)
	_ = time.Millisecond
	return deadline
}
