// Package allowdir regression-tests the //vcloudlint:allow escape hatch:
// a directive with a reason suppresses the named analyzer on its line and
// the next, and nothing else.
package allowdir

import "time"

func sanctioned() {
	start := time.Now() //vcloudlint:allow nowallclock profiling telemetry with a recorded reason
	_ = start

	//vcloudlint:allow nowallclock standalone directive covers the next line
	end := time.Now()
	_ = end
}

func wrongAnalyzer() {
	// A directive for a different analyzer must not suppress this one.
	//vcloudlint:allow noglobalrand wrong analyzer named
	_ = time.Now() // want `time.Now reads the wall clock`
}

func tooFarAway() {
	//vcloudlint:allow nowallclock directive two lines up does not reach

	_ = time.Now() // want `time.Now reads the wall clock`
}
