// Package allowfn regression-tests the baked-in function allowlist: the
// test registers allowfn.Kernel.Run as sanctioned wall-clock telemetry
// (mirroring vcloud/internal/sim.Kernel.Run), so only Step is flagged.
package allowfn

import "time"

type Kernel struct {
	wall time.Duration
}

func (k *Kernel) Run() {
	start := time.Now()
	defer func() { k.wall += time.Since(start) }()
}

func (k *Kernel) Step() {
	k.wall += time.Since(time.Time{}) // want `time.Since reads the wall clock`
}
