package nowallclock_test

import (
	"testing"

	"vcloud/internal/analysis/analysistest"
	"vcloud/internal/analysis/nowallclock"
)

func TestViolationsAndValueUses(t *testing.T) {
	analysistest.Run(t, nowallclock.Analyzer, "testdata", "a")
}

func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, nowallclock.Analyzer, "testdata", "allowdir")
}

func TestFunctionAllowlist(t *testing.T) {
	nowallclock.Allowlist["allowfn.Kernel.Run"] = true
	defer delete(nowallclock.Allowlist, "allowfn.Kernel.Run")
	analysistest.Run(t, nowallclock.Analyzer, "testdata", "allowfn")
}

// TestRealAllowlistEntries pins the production allowlist: the serial
// and sharded kernels' wall-time telemetry (DESIGN.md "Performance" and
// "Sharded kernel & conservative lookahead") and nothing else.
func TestRealAllowlistEntries(t *testing.T) {
	want := []string{
		"vcloud/internal/sim.Kernel.Run",
		"vcloud/internal/sim.Kernel.RunBefore",
		"vcloud/internal/sim.Kernel.Step",
		"vcloud/internal/sim.ShardedKernel.Run",
	}
	for _, k := range want {
		if !nowallclock.Allowlist[k] {
			t.Errorf("Allowlist missing %q", k)
		}
	}
	if len(nowallclock.Allowlist) != len(want) {
		t.Errorf("Allowlist has %d entries, want %d: new wall-clock exceptions need a design note", len(nowallclock.Allowlist), len(want))
	}
}
