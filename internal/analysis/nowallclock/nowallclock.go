// Package nowallclock forbids wall-clock reads in simulation-driven
// packages. Model code must take time from the kernel's virtual clock
// (sim.Kernel.Now); a single time.Now or time.Sleep makes a run depend on
// the host machine and breaks bit-for-bit reproducibility.
//
// The kernel's own wall-clock telemetry (the runWall accumulation behind
// Kernel.WallTime, used by vcloudbench's events/sec reporting) is the one
// sanctioned exception and is allowlisted by function; other legitimate
// profiling sites use a //vcloudlint:allow nowallclock directive with a
// reason.
package nowallclock

import (
	"go/ast"

	"vcloud/internal/analysis"
)

// banned are the package-level time functions that read or wait on the
// host clock. Constructors of pure values (time.Duration arithmetic,
// time.Date for fixed timestamps) are fine.
var banned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// Allowlist names functions (as "pkgpath.Func" or "pkgpath.Recv.Method",
// see analysis.FuncKey) that may read the wall clock: the kernel's
// dispatch-time telemetry that feeds Kernel.WallTime and Throughput. Keep
// this list short — everything else goes through an explicit
// //vcloudlint:allow directive so the justification lives next to the
// call site.
var Allowlist = map[string]bool{
	"vcloud/internal/sim.Kernel.Run":        true,
	"vcloud/internal/sim.Kernel.RunBefore":  true,
	"vcloud/internal/sim.Kernel.Step":       true,
	"vcloud/internal/sim.ShardedKernel.Run": true,
}

// Analyzer is the nowallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/Sleep/After/Since and friends in sim-driven packages; use the kernel's virtual clock",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.InspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pass.UsedPkgFunc(sel)
		if !ok || pkg != "time" || !banned[name] {
			return true
		}
		if Allowlist[analysis.FuncKey(pass.Path, analysis.EnclosingFunc(stack))] {
			return true
		}
		pass.Reportf(sel.Pos(), "time.%s reads the wall clock; sim-driven code must use the kernel's virtual clock (sim.Kernel.Now)", name)
		return true
	})
	return nil
}
