package epochstamp_test

import (
	"testing"

	"vcloud/internal/analysis/analysistest"
	"vcloud/internal/analysis/epochstamp"
)

func TestUnstampedLiterals(t *testing.T) {
	analysistest.Run(t, epochstamp.Analyzer, "testdata", "a")
}

func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, epochstamp.Analyzer, "testdata", "allowdir")
}
