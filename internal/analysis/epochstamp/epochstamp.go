// Package epochstamp guards the split-brain fencing contract (PR 3):
// every protocol message or checkpoint that carries an Epoch field must be
// constructed with the field set. A keyed composite literal that fills in
// other fields but omits Epoch almost certainly ships an unfenced (zero)
// epoch, which members treat as "stale by definition" the moment any real
// epoch exists — the bug surfaces as silently dropped dispatches.
//
// Rules:
//   - keyed literals with at least one field but no Epoch key are flagged;
//   - empty literals (T{}) are deliberate zero values (codec error
//     returns) and pass;
//   - positional literals must be exhaustive by Go's own rules, so they
//     always set Epoch and pass.
package epochstamp

import (
	"go/ast"
	"go/types"

	"vcloud/internal/analysis"
)

// Analyzer is the epochstamp check.
var Analyzer = &analysis.Analyzer{
	Name: "epochstamp",
	Doc:  "flag keyed composite literals of Epoch-carrying message types that leave the Epoch field unset",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.InspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || len(lit.Elts) == 0 {
			return true
		}
		t := pass.TypeOf(lit)
		if t == nil {
			return true
		}
		named, ok := t.(*types.Named)
		if !ok {
			return true
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || !hasEpochField(st) {
			return true
		}
		keyed, hasEpoch := literalFields(lit)
		if !keyed || hasEpoch {
			return true
		}
		pass.Reportf(lit.Pos(), "composite literal of fenced type %s does not set Epoch; unfenced messages are rejected once any epoch exists", named.Obj().Name())
		return true
	})
	return nil
}

func hasEpochField(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Epoch" {
			return true
		}
	}
	return false
}

// literalFields reports whether the literal uses keyed elements and, if
// so, whether one of the keys is Epoch.
func literalFields(lit *ast.CompositeLit) (keyed, hasEpoch bool) {
	for _, e := range lit.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			return false, false // positional: exhaustive by construction
		}
		keyed = true
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Epoch" {
			hasEpoch = true
		}
	}
	return keyed, hasEpoch
}
