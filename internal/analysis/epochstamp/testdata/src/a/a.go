// Package a exercises the epochstamp analyzer against local stand-ins
// for the fenced protocol messages of internal/vcloud.
package a

type Epoch uint64

type taskMsg struct {
	ID      int
	Replica int
	Epoch   Epoch
}

type checkpoint struct {
	Controller int
	Epoch      Epoch
}

// plain has no Epoch field; its literals are never the analyzer's
// business.
type plain struct {
	A, B int
}

func violations() []any {
	return []any{
		taskMsg{ID: 1, Replica: -1}, // want `composite literal of fenced type taskMsg does not set Epoch`
		&taskMsg{ID: 2},             // want `composite literal of fenced type taskMsg does not set Epoch`
		checkpoint{Controller: 3},   // want `composite literal of fenced type checkpoint does not set Epoch`
	}
}

func nested() []taskMsg {
	return []taskMsg{
		{ID: 1, Epoch: 4},
		{ID: 2}, // want `composite literal of fenced type taskMsg does not set Epoch`
	}
}

func fine(e Epoch) []any {
	return []any{
		taskMsg{ID: 1, Replica: -1, Epoch: e}, // keyed, stamped
		taskMsg{},                             // deliberate zero value (codec error returns)
		taskMsg{7, -1, e},                     // positional literals are exhaustive by construction
		checkpoint{Epoch: e},
		plain{A: 1},
	}
}
