// Package a exercises the epochstamp analyzer against local stand-ins
// for the fenced protocol messages of internal/vcloud.
package a

type Epoch uint64

type taskMsg struct {
	ID      int
	Replica int
	Epoch   Epoch
}

type checkpoint struct {
	Controller int
	Epoch      Epoch
}

// plain has no Epoch field; its literals are never the analyzer's
// business.
type plain struct {
	A, B int
}

// The storage service's fenced request types (internal/store) carry the
// epoch as a plain uint64 counter rather than the named Epoch type; the
// analyzer keys on the field name alone, so these stand-ins pin that.
type writeReq struct {
	Client string
	Key    string
	Size   int
	Epoch  uint64
}

type readReq struct {
	Client string
	Key    string
	Epoch  uint64
}

type repairReq struct {
	Epoch uint64
}

// The DAG stage-handoff protocol (internal/vcloud/stagepipe.go) fences
// its pull/data/relay messages with the named Epoch type; these
// stand-ins pin that the analyzer covers the pipelining tier too.
type pullReq struct {
	For   int
	Job   int
	Stage int
	Epoch Epoch
}

type stageData struct {
	For   int
	Stage int
	OK    bool
	Value uint64
	Epoch Epoch
}

type relayReq struct {
	For   int
	Job   int
	Stage int
	Epoch Epoch
}

func violations() []any {
	return []any{
		taskMsg{ID: 1, Replica: -1}, // want `composite literal of fenced type taskMsg does not set Epoch`
		&taskMsg{ID: 2},             // want `composite literal of fenced type taskMsg does not set Epoch`
		checkpoint{Controller: 3},   // want `composite literal of fenced type checkpoint does not set Epoch`
	}
}

func storageViolations() []any {
	return []any{
		writeReq{Client: "c", Key: "k", Size: 64}, // want `composite literal of fenced type writeReq does not set Epoch`
		&readReq{Client: "c", Key: "k"},           // want `composite literal of fenced type readReq does not set Epoch`
	}
}

func stageHandoffViolations() []any {
	return []any{
		pullReq{For: 1, Job: 2, Stage: 0},      // want `composite literal of fenced type pullReq does not set Epoch`
		&stageData{For: 1, Stage: 0, OK: true}, // want `composite literal of fenced type stageData does not set Epoch`
		relayReq{For: 1, Job: 2, Stage: 1},     // want `composite literal of fenced type relayReq does not set Epoch`
		stageData{For: 1, Stage: 0, OK: false}, // want `composite literal of fenced type stageData does not set Epoch`
	}
}

func stageHandoffFine(e Epoch) []any {
	return []any{
		pullReq{For: 1, Job: 2, Stage: 0, Epoch: e},
		stageData{For: 1, Stage: 0, OK: true, Value: 7, Epoch: e},
		relayReq{For: 1, Job: 2, Stage: 1, Epoch: e},
		stageData{}, // deliberate zero value (codec error returns)
	}
}

func nested() []taskMsg {
	return []taskMsg{
		{ID: 1, Epoch: 4},
		{ID: 2}, // want `composite literal of fenced type taskMsg does not set Epoch`
	}
}

func fine(e Epoch) []any {
	return []any{
		taskMsg{ID: 1, Replica: -1, Epoch: e}, // keyed, stamped
		taskMsg{},                             // deliberate zero value (codec error returns)
		taskMsg{7, -1, e},                     // positional literals are exhaustive by construction
		checkpoint{Epoch: e},
		plain{A: 1},
		writeReq{Client: "c", Key: "k", Epoch: 7}, // keyed, stamped
		readReq{Client: "c", Key: "k", Epoch: 7},
		repairReq{Epoch: 7},
		repairReq{}, // deliberate zero value: the unfenced repair path
	}
}

// The congestion-estimate feed (internal/vcloud/estimates.go) publishes
// per-tier capacity reports as fenced cluster messages; these stand-ins
// pin that the analyzer covers the estimate tier too.
type estimateMsg struct {
	Tier  int
	Bps   float64
	Loss  float64
	Queue int64
	Epoch Epoch
}

func estimateViolations() []any {
	return []any{
		estimateMsg{Tier: 2, Bps: 8e6, Loss: 0.02}, // want `composite literal of fenced type estimateMsg does not set Epoch`
		&estimateMsg{Tier: 0},                      // want `composite literal of fenced type estimateMsg does not set Epoch`
	}
}

func estimateFine(e Epoch) []any {
	return []any{
		estimateMsg{Tier: 2, Bps: 8e6, Loss: 0.02, Epoch: e},
		estimateMsg{}, // deliberate zero value (codec error returns)
	}
}
