// Package allowdir regression-tests the escape hatch for epochstamp:
// a pre-fencing replay fixture may construct unfenced messages on
// purpose, with the justification recorded at the site.
package allowdir

type Epoch uint64

type taskMsg struct {
	ID    int
	Epoch Epoch
}

func legacyReplay() taskMsg {
	//vcloudlint:allow epochstamp replaying a pre-fencing capture where epoch zero is the point
	return taskMsg{ID: 1}
}
