package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// posAtLine fabricates a Pos on the given 1-based line of the parsed file.
func posAtLine(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestAllowScopeAndNames(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //vcloudlint:allow nowallclock trailing directive
	_ = 2
	//vcloudlint:allow noglobalrand,nomaporder standalone covers next line
	_ = 3
	_ = 4
}
`
	fset, f := parse(t, src)
	as := ParseAllows(fset, []*ast.File{f})
	if len(as.Malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", as.Malformed)
	}
	cases := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"nowallclock", 4, true},  // own line
		{"nowallclock", 5, true},  // line below
		{"nowallclock", 6, false}, // two lines below
		{"noglobalrand", 7, true}, // standalone, next line
		{"nomaporder", 7, true},   // comma list
		{"nowallclock", 7, false}, // unnamed analyzer
		{"noglobalrand", 8, false},
	}
	for _, c := range cases {
		if got := as.Allowed(fset, c.analyzer, posAtLine(fset, c.line)); got != c.want {
			t.Errorf("Allowed(%s, line %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
	}
}

func TestAllowMalformed(t *testing.T) {
	src := `package p

//vcloudlint:allow nowallclock
func f() {}

//vcloudlint:allow
func g() {}
`
	fset, f := parse(t, src)
	as := ParseAllows(fset, []*ast.File{f})
	if len(as.Malformed) != 2 {
		t.Fatalf("got %d malformed directives, want 2", len(as.Malformed))
	}
	// A malformed directive must not suppress anything.
	if as.Allowed(fset, "nowallclock", posAtLine(fset, 4)) {
		t.Error("reason-less directive suppressed a diagnostic")
	}
}

func TestAllowIgnoresOtherDirectives(t *testing.T) {
	src := `package p

//go:generate echo hi
//vcloudlint:allowance not ours either
func f() {}
`
	fset, f := parse(t, src)
	as := ParseAllows(fset, []*ast.File{f})
	if len(as.Malformed) != 0 {
		t.Fatalf("foreign directives misparsed: %v", as.Malformed)
	}
}

func TestAllowStale(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //vcloudlint:allow nowallclock earns its keep
	_ = 2 //vcloudlint:allow noglobalrand,nomaporder half used
	_ = 3 //vcloudlint:allow nogoroutine never matched
}
`
	fset, f := parse(t, src)
	as := ParseAllows(fset, []*ast.File{f})
	// Simulate the suite querying findings: one hit on line 4, one on the
	// nomaporder half of line 5, nothing for line 6.
	if !as.Allowed(fset, "nowallclock", posAtLine(fset, 4)) {
		t.Fatal("line 4 directive did not suppress")
	}
	if !as.Allowed(fset, "nomaporder", posAtLine(fset, 5)) {
		t.Fatal("line 5 nomaporder directive did not suppress")
	}
	stale := as.Stale()
	if len(stale) != 2 {
		t.Fatalf("got %d stale directives, want 2: %v", len(stale), stale)
	}
	first := fset.Position(stale[0].Pos)
	second := fset.Position(stale[1].Pos)
	if first.Line != 5 || second.Line != 6 {
		t.Errorf("stale lines = %d,%d, want 5,6", first.Line, second.Line)
	}
	for _, d := range stale {
		if d.Analyzer != "allow" {
			t.Errorf("stale diagnostic analyzer = %q, want allow", d.Analyzer)
		}
	}
	if got, want := stale[0].Message, "noglobalrand"; !strings.Contains(got, want) {
		t.Errorf("stale message %q does not name %q", got, want)
	}
}

func TestFuncKey(t *testing.T) {
	src := `package p

func plain() {}

type T struct{}

func (t T) Value() {}
func (t *T) Pointer() {}
`
	_, f := parse(t, src)
	want := map[string]string{
		"plain":   "pkg.plain",
		"Value":   "pkg.T.Value",
		"Pointer": "pkg.T.Pointer",
	}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if got := FuncKey("pkg", fd); got != want[fd.Name.Name] {
			t.Errorf("FuncKey(%s) = %q, want %q", fd.Name.Name, got, want[fd.Name.Name])
		}
	}
	if got := FuncKey("pkg", nil); got != "" {
		t.Errorf("FuncKey(nil) = %q, want empty", got)
	}
}
