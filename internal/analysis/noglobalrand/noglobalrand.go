// Package noglobalrand bans the process-global math/rand source. The
// simulator's reproducibility contract says every random draw flows from a
// seed the caller controls — the kernel's RNG, a NewStream derivative, or
// an explicit rand.New(rand.NewSource(seed)). The global source (rand.Intn
// and friends) is shared mutable state: any draw from it perturbs every
// other draw in the process, and under math/rand/v2 it is auto-seeded and
// unreproducible by construction.
package noglobalrand

import (
	"go/ast"
	"go/types"

	"vcloud/internal/analysis"
)

// constructors are the math/rand package-level functions that build
// explicit generators rather than touching the global source. Everything
// else exported at package level is either a global-source draw or Seed.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Analyzer is the noglobalrand check.
var Analyzer = &analysis.Analyzer{
	Name: "noglobalrand",
	Doc:  "ban math/rand global-source functions and rand.New with a source other than rand.NewSource(seed)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.InspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pass.UsedPkgFunc(sel)
		if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") {
			return true
		}
		if obj := pass.Info.Uses[sel.Sel]; obj != nil {
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true // types and constants (rand.Rand, rand.Source) are fine
			}
		}
		if !constructors[name] {
			pass.Reportf(sel.Pos(), "rand.%s draws from the process-global source; use a seeded *rand.Rand (kernel RNG, NewStream, or rand.New(rand.NewSource(seed)))", name)
			return true
		}
		if name == "New" {
			if call := enclosingCall(stack, sel); call != nil && !seededSource(pass, call) {
				pass.Reportf(sel.Pos(), "rand.New with a source other than rand.NewSource(seed) is not reproducibly seeded")
			}
		}
		return true
	})
	return nil
}

// enclosingCall returns the call expression whose Fun is sel, if any.
func enclosingCall(stack []ast.Node, sel *ast.SelectorExpr) *ast.CallExpr {
	if len(stack) == 0 {
		return nil
	}
	if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && call.Fun == sel {
		return call
	}
	return nil
}

// seededSource reports whether the first argument of rand.New(...) is a
// direct rand.NewSource / rand.NewPCG / rand.NewChaCha8 call, i.e. an
// explicitly seeded source built at the call site.
func seededSource(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	argCall, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	argSel, ok := argCall.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, name, ok := pass.UsedPkgFunc(argSel)
	return ok && (pkg == "math/rand" || pkg == "math/rand/v2") &&
		(name == "NewSource" || name == "NewPCG" || name == "NewChaCha8")
}
