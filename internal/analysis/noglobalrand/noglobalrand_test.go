package noglobalrand_test

import (
	"testing"

	"vcloud/internal/analysis/analysistest"
	"vcloud/internal/analysis/noglobalrand"
)

func TestGlobalSourceDraws(t *testing.T) {
	analysistest.Run(t, noglobalrand.Analyzer, "testdata", "a")
}

func TestRandV2(t *testing.T) {
	analysistest.Run(t, noglobalrand.Analyzer, "testdata", "v2")
}

func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, noglobalrand.Analyzer, "testdata", "allowdir")
}
