// Package v2 covers math/rand/v2, whose global source is auto-seeded and
// therefore never reproducible.
package v2

import randv2 "math/rand/v2"

func violations() {
	_ = randv2.IntN(10)  // want `rand.IntN draws from the process-global source`
	_ = randv2.Uint64()  // want `rand.Uint64 draws from the process-global source`
	_ = randv2.Float64() // want `rand.Float64 draws from the process-global source`
}

func fine(seed uint64) int {
	rng := randv2.New(randv2.NewPCG(seed, seed))
	return rng.IntN(10)
}
