// Package allowdir regression-tests the escape hatch for noglobalrand.
package allowdir

import "math/rand"

func sanctioned() {
	_ = rand.Intn(10) //vcloudlint:allow noglobalrand demo code outside any experiment path
}

func missingReason() {
	// A directive without a reason must not suppress; the suite reports
	// it as malformed separately.
	//vcloudlint:allow noglobalrand
	_ = rand.Intn(10) // want `rand.Intn draws from the process-global source`
}
