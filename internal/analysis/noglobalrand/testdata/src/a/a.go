// Package a exercises the noglobalrand analyzer: global-source draws and
// unseeded generators are flagged; explicit seeded plumbing is not.
package a

import (
	"math/rand"
)

func violations() {
	_ = rand.Intn(10)    // want `rand.Intn draws from the process-global source`
	_ = rand.Float64()   // want `rand.Float64 draws from the process-global source`
	rand.Shuffle(3, nil) // want `rand.Shuffle draws from the process-global source`
	rand.Seed(1)         // want `rand.Seed draws from the process-global source`
	_ = rand.Perm(4)     // want `rand.Perm draws from the process-global source`
}

// funcValue leaks the global source as a function value.
func funcValue() func() float64 {
	return rand.Float64 // want `rand.Float64 draws from the process-global source`
}

// unseeded builds a generator from a source the analyzer cannot see a
// seed for.
func unseeded(src rand.Source) *rand.Rand {
	return rand.New(src) // want `rand.New with a source other than rand.NewSource`
}

// fine is the sanctioned plumbing: explicit seeds, per-instance state,
// and type references.
func fine(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	var alias *rand.Rand = rng
	_ = alias.Float64()
	z := rand.NewZipf(rng, 1.1, 1, 100)
	_ = z.Uint64()
	return rng.Intn(10)
}
