module tagmod

go 1.22
