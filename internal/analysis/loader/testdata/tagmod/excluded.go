//go:build neverbuildme

package tagmod

// Broken does not type-check: if the loader ever feeds this file to the
// type checker, the build-tag test fails loudly.
func Broken() int { return "not an int" }
