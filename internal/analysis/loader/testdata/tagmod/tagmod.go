// Package tagmod is a loader fixture: one buildable file plus one file
// excluded by a build tag that would not even type-check. The loader must
// honor the go tool's file selection and never parse the excluded file.
package tagmod

// Answer is here so the package has a real declaration to type-check.
func Answer() int { return 42 }
