// Package loader turns `go list` package metadata into parsed,
// type-checked packages for the vcloudlint analyzers. It is a minimal,
// dependency-free stand-in for golang.org/x/tools/go/packages: module
// packages are type-checked bottom-up in import order with a shared
// FileSet, and standard-library imports resolve through the compiler's
// source importer, so the whole pipeline works offline.
//
// Only production sources (GoFiles) are loaded. Test files are exercised
// by `go test` itself and legitimately measure wall time or use shared
// test fixtures; the determinism contract binds the code the simulator
// actually runs.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded module package.
type Package struct {
	Path  string // import path, e.g. vcloud/internal/sim
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
}

// Load lists patterns (e.g. "./...") relative to dir, then parses and
// type-checks every non-standard package in their dependency closure, in
// dependency order. Loading the closure (-deps) keeps every module
// package on the fast, consistent in-module path of the chained importer
// even when the pattern names a single leaf. The returned packages share
// fset.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listEntry, len(entries))
	paths := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Standard {
			continue
		}
		byPath[e.ImportPath] = e
		paths = append(paths, e.ImportPath)
	}
	sort.Strings(paths)
	order, err := topoSort(paths, byPath)
	if err != nil {
		return nil, err
	}

	std := importer.ForCompiler(fset, "source", nil)
	checked := make(map[string]*types.Package)
	imp := &chainImporter{std: std, mod: checked}

	var pkgs []*Package
	for _, path := range order {
		e := byPath[path]
		p, err := check(fset, e, imp)
		if err != nil {
			return nil, err
		}
		checked[path] = p.Types
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goList shells out to the go tool for package metadata.
func goList(dir string, patterns []string) ([]*listEntry, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Name,GoFiles,Imports,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var entries []*listEntry
	dec := json.NewDecoder(&out)
	for dec.More() {
		e := new(listEntry)
		if err := dec.Decode(e); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// topoSort orders paths so every package follows its in-module imports.
func topoSort(paths []string, byPath map[string]*listEntry) ([]string, error) {
	const (
		unseen = iota
		visiting
		done
	)
	state := make(map[string]int, len(paths))
	order := make([]string, 0, len(paths))
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", p)
		}
		state[p] = visiting
		e := byPath[p]
		deps := append([]string(nil), e.Imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if _, inModule := byPath[dep]; inModule {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// check parses and type-checks one package.
func check(fset *token.FileSet, e *listEntry, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(e.GoFiles))
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", e.ImportPath, err)
	}
	return &Package{Path: e.ImportPath, Dir: e.Dir, Files: files, Types: tp, Info: info}, nil
}

// NewInfo allocates the full set of type-information maps the analyzers
// consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// chainImporter resolves module packages from the already-checked set and
// everything else through the source importer. Module packages are
// guaranteed present by the topological load order.
type chainImporter struct {
	std types.Importer
	mod map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.mod[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}
