package loader_test

import (
	"go/token"
	"testing"

	"vcloud/internal/analysis/loader"
)

// TestLoadTypesAndOrder loads a package with in-module dependencies and
// checks that cross-package and stdlib types resolved.
func TestLoadTypesAndOrder(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, ".", "vcloud/internal/vnet")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]int{}
	for i, p := range pkgs {
		byPath[p.Path] = i
		if p.Types == nil || len(p.Files) == 0 {
			t.Fatalf("%s: incomplete package", p.Path)
		}
		if len(p.Info.Uses) == 0 {
			t.Fatalf("%s: no use information recorded", p.Path)
		}
	}
	vnetIdx, ok := byPath["vcloud/internal/vnet"]
	if !ok {
		t.Fatal("vcloud/internal/vnet not loaded")
	}
	// vnet depends on sim and radio; the loader must order and include
	// them ahead of it.
	for _, dep := range []string{"vcloud/internal/sim", "vcloud/internal/radio"} {
		depIdx, ok := byPath[dep]
		if !ok {
			t.Fatalf("dependency %s not loaded", dep)
		}
		if depIdx > vnetIdx {
			t.Errorf("%s loaded after its importer", dep)
		}
	}
}

// TestLoadHonorsBuildTags loads a fixture module where one file is
// excluded by a build constraint and deliberately does not type-check:
// Load must follow the go tool's file selection (GoFiles) and succeed
// with only the buildable file.
func TestLoadHonorsBuildTags(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, "testdata/tagmod", "./...")
	if err != nil {
		t.Fatalf("Load: %v (the build-tag-excluded file may have been parsed)", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "tagmod" {
		t.Errorf("path = %q, want tagmod", p.Path)
	}
	if len(p.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (excluded.go must not be selected)", len(p.Files))
	}
	if obj := p.Types.Scope().Lookup("Broken"); obj != nil {
		t.Error("Broken from the excluded file leaked into the package scope")
	}
	if obj := p.Types.Scope().Lookup("Answer"); obj == nil {
		t.Error("Answer from the buildable file missing from the package scope")
	}
}

func TestLoadBadPattern(t *testing.T) {
	fset := token.NewFileSet()
	if _, err := loader.Load(fset, ".", "vcloud/internal/does-not-exist"); err == nil {
		t.Fatal("expected error for unknown package pattern")
	}
}
