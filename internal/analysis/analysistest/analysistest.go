// Package analysistest is a golden-file test harness for vcloudlint
// analyzers, modeled on golang.org/x/tools/go/analysis/analysistest but
// free of module dependencies. Test packages live under
// <testdata>/src/<pkg>/*.go (the go tool never compiles testdata
// directories, so fixtures may contain deliberate violations), and
// expectations are written on the offending line:
//
//	start := time.Now() // want `reads the wall clock`
//
// Each `// want` comment carries one or more Go-quoted regular
// expressions, one per expected diagnostic on that line. Diagnostics
// suppressed by a //vcloudlint:allow directive are filtered before
// matching, so fixtures can regression-test the escape hatch by pairing a
// directive with the absence of a want.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"vcloud/internal/analysis"
	"vcloud/internal/analysis/loader"
)

// Run loads each package dir under testdata/src and applies the analyzer,
// comparing diagnostics against // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, testdata string, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	for _, pkg := range pkgs {
		runPkg(t, a, fset, std, testdata, pkg)
	}
}

// RunTree loads every listed package dir under testdata/src into one tree
// (in the given order, so later fixtures may import earlier ones by their
// dir name) and applies a tree analyzer once over all of them, comparing
// diagnostics against the // want expectations of every file. Allow
// directives are honored across the whole tree, as in the real suite.
func RunTree(t *testing.T, a *analysis.Analyzer, testdata string, pkgs ...string) {
	t.Helper()
	if a.RunTree == nil {
		t.Fatalf("%s: not a tree analyzer", a.Name)
	}
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	checked := make(map[string]*types.Package)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return std.Import(path)
	})

	var units []*analysis.TreeUnit
	var all []*ast.File
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		names, err := goFilesIn(dir)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("%s: %v", pkg, err)
			}
			files = append(files, f)
		}
		info := loader.NewInfo()
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(pkg, fset, files, info)
		if err != nil {
			t.Fatalf("%s: type-checking: %v", pkg, err)
		}
		checked[pkg] = tp
		units = append(units, &analysis.TreeUnit{Path: pkg, Files: files, Pkg: tp, Info: info})
		all = append(all, files...)
	}

	var diags []analysis.Diagnostic
	pass := analysis.NewTreePass(a, fset, units, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := a.RunTree(pass); err != nil {
		t.Fatalf("%s: analyzer: %v", a.Name, err)
	}

	allows := analysis.ParseAllows(fset, all)
	kept := diags[:0]
	for _, d := range diags {
		if !allows.Allowed(fset, d.Analyzer, d.Pos) {
			kept = append(kept, d)
		}
	}
	match(t, fset, strings.Join(pkgs, "+"), all, kept)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func runPkg(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, imp types.Importer, testdata, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	names, err := goFilesIn(dir)
	if err != nil {
		t.Fatalf("%s: %v", pkg, err)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		files = append(files, f)
	}
	info := loader.NewInfo()
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("%s: type-checking: %v", pkg, err)
	}

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, fset, files, pkg, tp, info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer: %v", pkg, err)
	}

	allows := analysis.ParseAllows(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		if !allows.Allowed(fset, d.Analyzer, d.Pos) {
			kept = append(kept, d)
		}
	}
	match(t, fset, pkg, files, kept)
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// match compares reported diagnostics against // want comments.
func match(t *testing.T, fset *token.FileSet, pkg string, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ws, err := parseWants(fset, c)
				if err != nil {
					t.Fatalf("%s: %v", pkg, err)
				}
				wants = append(wants, ws...)
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", pkg, filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", pkg, w.re, filepath.Base(w.file), w.line)
		}
	}
}

// parseWants extracts the expectations from one comment. The comment text
// after "// want" is a sequence of Go-quoted strings (plain or backquoted),
// each compiled as a regexp.
func parseWants(fset *token.FileSet, c *ast.Comment) ([]*want, error) {
	const marker = "// want "
	if !strings.HasPrefix(c.Text, marker) {
		return nil, nil
	}
	pos := fset.Position(c.Pos())
	rest := strings.TrimSpace(c.Text[len(marker):])
	var wants []*want
	for rest != "" {
		q, remainder, err := nextQuoted(rest)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad // want comment: %v", filepath.Base(pos.Filename), pos.Line, err)
		}
		re, err := regexp.Compile(q)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad // want regexp: %v", filepath.Base(pos.Filename), pos.Line, err)
		}
		wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
		rest = strings.TrimSpace(remainder)
	}
	if len(wants) == 0 {
		return nil, fmt.Errorf("%s:%d: // want comment with no expectations", filepath.Base(pos.Filename), pos.Line)
	}
	return wants, nil
}

// nextQuoted pops one Go string literal off the front of s.
func nextQuoted(s string) (string, string, error) {
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string in %q", s)
		}
		return s[1 : 1+end], s[end+2:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '"' && s[i-1] != '\\' {
				q, err := strconv.Unquote(s[:i+1])
				if err != nil {
					return "", "", err
				}
				return q, s[i+1:], nil
			}
		}
		return "", "", fmt.Errorf("unterminated string in %q", s)
	default:
		return "", "", fmt.Errorf("expectation must be a quoted regexp, got %q", s)
	}
}

func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return names, nil
}
