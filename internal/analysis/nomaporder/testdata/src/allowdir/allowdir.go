// Package allowdir regression-tests the escape hatch for nomaporder: the
// scheduler's best-pick loops collect candidates in map order but consume
// only a totally-ordered minimum.
package allowdir

func bestPick(m map[int]float64) int {
	var cands []int
	for k := range m {
		//vcloudlint:allow nomaporder selection below totally orders on the key
		cands = append(cands, k)
	}
	best := -1
	for _, c := range cands {
		if best < 0 || c < best {
			best = c
		}
	}
	return best
}
