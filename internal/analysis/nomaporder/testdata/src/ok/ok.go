// Package ok regression-tests nomaporder's sanctioned idioms — each of
// these produced a false positive against the real tree at some point and
// must stay silent.
package ok

import (
	"crypto/hmac"
	"crypto/sha256"
	"sort"
)

// collectThenSort is the canonical repair: collect in map order, sort,
// then consume.
func collectThenSort(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// sliceAlias sorts the appended tail through an alias, the
// vnet.Node.Neighbors idiom: dst may arrive non-empty, so only the added
// window is sorted.
func sliceAlias(m map[int]string, dst []int) []int {
	start := len(dst)
	for k := range m {
		dst = append(dst, k)
	}
	added := dst[start:]
	sort.Slice(added, func(i, j int) bool { return added[i] < added[j] })
	return dst
}

// loopLocal appends to a slice declared inside the body — a fresh slice
// per map entry, the routing.AODV.expirePending idiom.
func loopLocal(m map[int][]int) {
	for k, queued := range m {
		keep := queued[:0]
		for _, v := range queued {
			if v > 0 {
				keep = append(keep, v)
			}
		}
		m[k] = keep
	}
}

// loopLocalWriter writes through a hash constructed inside the body — one
// MAC per member, the cryptoprim.GroupManager.Open idiom.
func loopLocalWriter(m map[string][]byte, nonce, tag []byte) string {
	for id, secret := range m {
		mac := hmac.New(sha256.New, secret)
		mac.Write(nonce)
		if hmac.Equal(mac.Sum(nil), tag) {
			return id
		}
	}
	return ""
}

// mapToMap copies into another map — no order to leak.
func mapToMap(src, dst map[string]float64) {
	for k, v := range src {
		dst[k] = v
	}
}

// accumulate folds into an order-insensitive scalar.
func accumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
