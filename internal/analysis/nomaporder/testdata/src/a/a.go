// Package a exercises the nomaporder analyzer's violation cases: map
// iteration order escaping into slices, channels and output streams.
package a

import "fmt"

func appendNoSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map`
	}
	return keys
}

func chanSend(m map[int]string, ch chan int) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

func printing(m map[int]string) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside range over map`
	}
}

type table struct{ rows [][]string }

func (t *table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

func tableRows(m map[string]int, t *table) {
	for k := range m {
		t.AddRow(k) // want `t.AddRow inside range over map`
	}
}

// sortTooEarly sorts before the loop, which repairs nothing.
func sortTooEarly(m map[int]string) []int {
	var keys []int
	sortInts(keys)
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map`
	}
	return keys
}

func sortInts(s []int) {}
