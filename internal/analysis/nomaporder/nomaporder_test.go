package nomaporder_test

import (
	"testing"

	"vcloud/internal/analysis/analysistest"
	"vcloud/internal/analysis/nomaporder"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, nomaporder.Analyzer, "testdata", "a")
}

// TestFalsePositiveRegressions pins the idioms the analyzer must keep
// accepting: collect-then-sort, alias sorts, loop-local slices and
// writers, map-to-map copies and scalar folds.
func TestFalsePositiveRegressions(t *testing.T) {
	analysistest.Run(t, nomaporder.Analyzer, "testdata", "ok")
}

func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, nomaporder.Analyzer, "testdata", "allowdir")
}
