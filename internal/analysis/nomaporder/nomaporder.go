// Package nomaporder flags range-over-map loops whose iteration order can
// leak into observable output. Go randomizes map iteration, so a loop that
// appends map keys/values to a slice, sends them on a channel, or writes
// them to a table/stream produces a different ordering every run — the
// exact bug class the parallel experiment harness and the merge
// anti-entropy code had to fix by hand to keep experiments_output.txt
// byte-identical.
//
// The analyzer understands the sanctioned idiom: collecting into a slice
// is fine when the same slice is sorted after the loop (sort.Slice,
// slices.Sort, ...) and before the function returns. Channel sends and
// direct writes inside the loop body have no such repair point and are
// always flagged.
package nomaporder

import (
	"go/ast"
	"go/types"

	"vcloud/internal/analysis"
)

// Analyzer is the nomaporder check.
var Analyzer = &analysis.Analyzer{
	Name: "nomaporder",
	Doc:  "flag range-over-map loops that append/send/write in iteration order without a subsequent sort",
	Run:  run,
}

// sortFuncs are package-level sorters that impose a deterministic order on
// a collected slice: sort.X(s, ...) and slices.SortX(s, ...) both take the
// slice as their first argument.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// writerMethods are method names that emit data in call order: table rows,
// stream writes, hash updates. A call to one of these inside a
// range-over-map body makes the map order observable.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true,
}

// printFuncs are fmt package-level functions that emit to a stream.
// Sprint-style formatters only build values and are left to the append
// check to catch when their results are accumulated.
var printFuncs = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

func run(pass *analysis.Pass) error {
	pass.InspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		fn := analysis.EnclosingFunc(stack)
		checkBody(pass, rng, fn)
		return true
	})
	return nil
}

func checkBody(pass *analysis.Pass, rng *ast.RangeStmt, fn *ast.FuncDecl) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rng {
				// Nested ranges are visited on their own by the outer walk.
				if t := pass.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map exposes map iteration order")
			return true
		case *ast.AssignStmt:
			checkAppend(pass, n, rng, fn)
		case *ast.CallExpr:
			checkWriterCall(pass, n, rng)
		}
		return true
	})
}

// checkAppend flags `dst = append(dst, ...)` inside a map range when dst
// outlives the loop and is not re-sorted after it within the same
// function. Appends to slices declared inside the loop body are
// order-local (a fresh slice per map entry) and pass.
func checkAppend(pass *analysis.Pass, as *ast.AssignStmt, rng *ast.RangeStmt, fn *ast.FuncDecl) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 || i >= len(as.Lhs) {
			continue
		}
		if declaredInside(pass, rng, as.Lhs[i]) {
			continue
		}
		dst := types.ExprString(as.Lhs[i])
		if sortedAfter(pass, fn, rng, dst) {
			continue
		}
		pass.Reportf(as.Pos(), "append to %s inside range over map leaks map iteration order; sort %s after the loop or iterate sorted keys", dst, dst)
	}
}

// declaredInside reports whether the variable at the root of expr is
// declared within the range statement itself (body or loop variables), in
// which case its contents cannot leak the iteration order outside one
// iteration.
func declaredInside(pass *analysis.Pass, rng *ast.RangeStmt, expr ast.Expr) bool {
	id := rootIdent(expr)
	if id == nil {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

// rootIdent unwraps parens, index/slice expressions and selectors down to
// the identifier that owns the storage: (p.rows)[i:] -> p.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// checkWriterCall flags stream/table writes and fmt printing inside the
// loop body. Writers constructed inside the loop (a fresh hash or buffer
// per map entry) are order-local and pass.
func checkWriterCall(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if pkg, name, ok := pass.UsedPkgFunc(sel); ok {
		if pkg == "fmt" && printFuncs[name] {
			pass.Reportf(call.Pos(), "fmt.%s inside range over map emits output in map iteration order", name)
		}
		return
	}
	// Method call: x.Write(...), table.AddRow(...).
	if writerMethods[sel.Sel.Name] && !declaredInside(pass, rng, sel.X) {
		pass.Reportf(call.Pos(), "%s inside range over map emits output in map iteration order", types.ExprString(sel))
	}
}

// sortedAfter reports whether, somewhere after the range statement in the
// same function body, dst — or a slice alias of it like
// `added := dst[start:]` — is passed as the first argument to a sort
// function. Position ordering stands in for control flow — good enough
// for the collect-then-sort idiom this analyzer sanctions.
func sortedAfter(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, dst string) bool {
	if fn == nil || fn.Body == nil {
		return false
	}
	accepted := map[string]bool{dst: true}
	// First pass: collect post-loop aliases of dst (`x := dst[...]`).
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() < rng.End() {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if c := containerExpr(rhs); accepted[c] {
				accepted[types.ExprString(as.Lhs[i])] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pass.UsedPkgFunc(sel)
		if !ok || !sortFuncs[pkg][name] {
			return true
		}
		if accepted[containerExpr(call.Args[0])] {
			found = true
			return false
		}
		return true
	})
	return found
}

// containerExpr renders the expression that owns an argument's backing
// array: dst[start:] and (dst) both reduce to dst; s.ids stays s.ids.
func containerExpr(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return types.ExprString(e)
		}
	}
}
