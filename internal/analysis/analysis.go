// Package analysis is a minimal reimplementation of the golang.org/x/tools
// go/analysis vocabulary — Analyzer, Pass, Diagnostic — built on the
// standard library only, so the vcloudlint suite needs no module
// dependencies. An Analyzer inspects one type-checked package at a time and
// reports diagnostics; drivers (cmd/vcloudlint, the analysistest harness)
// decide which packages each analyzer sees and how diagnostics are
// rendered.
//
// The suite exists to enforce the simulator's determinism and fencing
// contracts statically (see DESIGN.md, "Determinism contract"): wall-clock
// reads, global randomness, map-iteration-ordered output, stray
// concurrency in kernel-driven code, and unfenced epoch-carrying messages
// all break bit-for-bit reproducibility in ways the tests can only
// spot-check.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name appears in diagnostics and in
// //vcloudlint:allow directives; Doc is the one-paragraph description shown
// by `vcloudlint -list`. Exactly one of Run and RunTree is set: Run
// analyzers inspect one package at a time, RunTree analyzers see every
// loaded package at once (the interprocedural checks, which chase effects
// through the whole call graph).
type Analyzer struct {
	Name    string
	Doc     string
	Run     func(*Pass) error
	RunTree func(*TreePass) error
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files (comments included, so
	// allow directives survive into the pass).
	Files []*ast.File
	// Path is the package import path ("vcloud/internal/sim").
	Path string
	Pkg  *types.Package
	Info *types.Info
	// report receives every diagnostic; the driver wires it.
	report func(Diagnostic)
}

// Diagnostic is one finding, positioned inside the package being analyzed.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// NewPass assembles a Pass for one analyzer over one package, delivering
// diagnostics to sink. Drivers construct passes; analyzers only consume
// them.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, path string, pkg *types.Package, info *types.Info, sink func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Path: path, Pkg: pkg, Info: info, report: sink}
}

// TreeUnit is one loaded package as seen by a tree (interprocedural)
// analyzer: the same parsed+type-checked material a Pass carries, without
// binding it to a single analyzer.
type TreeUnit struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// TreePass carries every loaded package through one tree analyzer run.
// Units arrive in the loader's deterministic dependency order, so finding
// order is a pure function of the source tree.
type TreePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Units    []*TreeUnit
	report   func(Diagnostic)
}

// Reportf reports a diagnostic at pos, which may lie in any loaded unit.
func (p *TreePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// NewTreePass assembles a TreePass over the loaded units for one tree
// analyzer, delivering diagnostics to sink.
func NewTreePass(a *Analyzer, fset *token.FileSet, units []*TreeUnit, sink func(Diagnostic)) *TreePass {
	return &TreePass{Analyzer: a, Fset: fset, Units: units, report: sink}
}

// InspectWithStack walks every file in the pass in source order, calling fn
// with each node and the stack of its ancestors (outermost first, not
// including n itself). Returning false prunes the subtree below n.
func (p *Pass) InspectWithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if !descend {
				// ast.Inspect still expects balanced push/pop only when
				// descending; pruned nodes get no pop callback.
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}

// EnclosingFunc returns the innermost function declaration on the stack,
// or nil when the node is at package scope (var/const/type declarations).
// Function literals are skipped: a closure inherits the identity of the
// declared function that lexically contains it, which is what the
// per-function allowlists want.
func EnclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// FuncKey names a function declaration for allowlist lookup as
// "pkgpath.Func" or "pkgpath.Recv.Method" (pointer receivers drop the
// star, so both value and pointer methods key the same way).
func FuncKey(pkgPath string, fd *ast.FuncDecl) string {
	if fd == nil {
		return ""
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return pkgPath + "." + id.Name + "." + fd.Name.Name
		}
	}
	return pkgPath + "." + fd.Name.Name
}

// UsedPkgFunc resolves a selector expression to (package path, object
// name) when the selector's X names an imported package (time.Now,
// rand.Intn, sync.Mutex). It returns ok=false for field and method
// selections.
func (p *Pass) UsedPkgFunc(sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, okX := sel.X.(*ast.Ident)
	if !okX {
		return "", "", false
	}
	if _, isPkg := p.Info.Uses[id].(*types.PkgName); !isPkg {
		return "", "", false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}
