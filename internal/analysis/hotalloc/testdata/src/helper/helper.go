// Package helper exercises cross-package reachability: the allocation
// lives here, the hotpath annotation lives in package a, and the finding
// must land on this file.
package helper

// Make allocates; annotated hot callers must not reach it.
func Make() []int {
	return make([]int, 4) // want `heap allocation on hot path`
}

// Grow appends into the caller's buffer: amortized, clean.
func Grow(s []int, v int) []int { return append(s, v) }
