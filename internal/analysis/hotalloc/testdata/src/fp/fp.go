// Package fp holds shapes hotalloc must NOT flag: allocation in
// unannotated functions, the sanctioned amortized append idioms
// (parameter, receiver field, package variable), clean-extern math, and
// taking the address of an existing variable.
package fp

import "math"

type pool struct{ free []int }

// MakeLots is not annotated: it may allocate freely.
func MakeLots() []int { return make([]int, 64) }

//vcloudlint:hotpath per frame
func (p *pool) Put(v int) { p.free = append(p.free, v) }

//vcloudlint:hotpath per frame
func Math(x float64) float64 { return math.Sqrt(x) }

//vcloudlint:hotpath per frame
func Addr(p *pool) *[]int { return &p.free }

var scratch []int

//vcloudlint:hotpath per frame
func Global(v int) { scratch = append(scratch, v) }

//vcloudlint:hotpath per frame
func GrowsParam(dst []int, v int) []int { return append(dst, v) }
