// Package allowdir regression-tests //vcloudlint:allow suppression for
// hotalloc: the amortized-cold-start idiom carries a reasoned directive at
// the allocation site; the same allocation without one stays flagged.
package allowdir

//vcloudlint:hotpath per event
func Cold() *int {
	//vcloudlint:allow hotalloc pool cold start; amortized to zero across events
	return new(int)
}

//vcloudlint:hotpath per event
func Leaky() *int {
	return new(int) // want `heap allocation on hot path`
}
