// Package a holds hotalloc violations: each annotated function exhibits
// one allocation effect, directly or through a helper package.
package a

import (
	"fmt"

	"helper"
)

//vcloudlint:hotpath one call per event; reaches the allocation in package helper
func Hot(buf []int) []int {
	buf = helper.Grow(buf, 1)
	return helper.Make()
}

//vcloudlint:hotpath per frame
func LocalGrow() []int {
	var s []int
	s = append(s, 1) // want `growing append on hot path`
	return s
}

//vcloudlint:hotpath per frame
func MakesMap() map[int]int {
	return map[int]int{} // want `heap allocation on hot path`
}

//vcloudlint:hotpath per frame
func Closes(xs []int) func() int {
	return func() int { return len(xs) } // want `closure allocation on hot path`
}

//vcloudlint:hotpath per frame
func Dyn(f func()) {
	f() // want `dynamic call on hot path`
}

//vcloudlint:hotpath per frame
func Externs() string {
	return fmt.Sprintf("x") // want `extern call on hot path`
}
