// Package hotalloc statically enforces the zero-allocation contract of
// annotated hot paths. A function whose doc comment carries
//
//	//vcloudlint:hotpath <why this path is hot>
//
// must be transitively allocation-free: no slice/map/&T{} literals, no
// make/new, no appends that grow function-local slices, no closure
// creation, no calls into packages outside the tree (assumed to
// allocate), and no calls through func values or interfaces (which could
// hide any of those). This is the static twin of the AllocsPerRun
// benchmark samples: the benchmarks measure a few configurations, the
// analyzer proves the property over every path.
//
// The sanctioned amortized idioms pass by construction: appends whose
// destination is a parameter, receiver field or package variable
// (caller-owned scratch, freelists) carry no effect bit. Genuinely
// amortized allocation sites that remain — a freelist's cold-start
// new(T) — take a //vcloudlint:allow hotalloc directive with the
// amortization argument as the reason.
//
// Findings point at the allocation site and carry the annotated root and
// the call chain that makes it hot.
package hotalloc

import (
	"go/token"

	"vcloud/internal/analysis"
	"vcloud/internal/analysis/interproc"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name:    "hotalloc",
	Doc:     "require functions annotated //vcloudlint:hotpath to be transitively allocation-free",
	RunTree: run,
}

// banned are the effect bits a hot path's transitive closure must not
// exhibit. Dynamic calls are included: an unresolvable callee may
// allocate.
const banned = interproc.AllocEffects | interproc.EffDynamicCall

func run(pass *analysis.TreePass) error {
	tree := interproc.Build(pass.Fset, pass.Units)
	type siteKey struct {
		pos token.Pos
		bit interproc.Effect
	}
	seen := make(map[siteKey]bool)
	for _, root := range tree.Hotpaths {
		node := tree.Nodes[root.Key]
		if node == nil {
			continue
		}
		for _, bit := range (node.Summary & banned).Bits() {
			path, site, ok := tree.Trace(root.Key, bit)
			if !ok {
				pass.Reportf(root.Pos, "hot path %s has a %s somewhere in its call graph (witness lost to a cycle)", interproc.ShortKey(root.Key), bit)
				continue
			}
			k := siteKey{pos: site.Pos, bit: bit}
			if seen[k] {
				continue
			}
			seen[k] = true
			pass.Reportf(site.Pos, "%s on hot path: %s; reachable from //vcloudlint:hotpath %s via %s",
				bit, site.Detail, interproc.ShortKey(root.Key), interproc.RenderChain(path))
		}
	}
	return nil
}
