package hotalloc_test

import (
	"testing"

	"vcloud/internal/analysis/analysistest"
	"vcloud/internal/analysis/hotalloc"
)

func TestViolations(t *testing.T) {
	analysistest.RunTree(t, hotalloc.Analyzer, "testdata", "helper", "a")
}

func TestAllowDirective(t *testing.T) {
	analysistest.RunTree(t, hotalloc.Analyzer, "testdata", "allowdir")
}

func TestFalsePositives(t *testing.T) {
	analysistest.RunTree(t, hotalloc.Analyzer, "testdata", "fp")
}
