package shardpure_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"vcloud/internal/analysis"
	"vcloud/internal/analysis/analysistest"
	"vcloud/internal/analysis/loader"
	"vcloud/internal/analysis/shardpure"
)

func TestViolations(t *testing.T) {
	analysistest.RunTree(t, shardpure.Analyzer, "testdata", "shardstub", "a")
}

func TestClean(t *testing.T) {
	analysistest.RunTree(t, shardpure.Analyzer, "testdata", "shardstub", "ok")
}

func TestAllowDirective(t *testing.T) {
	analysistest.RunTree(t, shardpure.Analyzer, "testdata", "shardstub", "allowdir")
}

func TestFalsePositives(t *testing.T) {
	analysistest.RunTree(t, shardpure.Analyzer, "testdata", "shardstub", "fp")
}

const stubSrc = `package sk

type Time int64

type Kernel struct{}

func (k *Kernel) At(t Time, fn func()) {}

type ShardedKernel struct{}

func (s *ShardedKernel) Shard(i int) *Kernel { return &Kernel{} }
`

const cleanSrc = `package m

import "sk"

func Setup(skn *sk.ShardedKernel) {
	k := skn.Shard(0)
	k.At(0, tick)
}

func tick() { hop1(1) }

func hop1(n int) { hop2(n) }

func hop2(n int) { _ = n * 2 }
`

const mutatedSrc = `package m

import (
	"time"

	"sk"
)

func Setup(skn *sk.ShardedKernel) {
	k := skn.Shard(0)
	k.At(0, tick)
}

func tick() { hop1(1) }

func hop1(n int) { hop2(n) }

func hop2(n int) { _ = time.Now() }
`

// runInMemory type-checks the stub kernel plus one variant of package m
// and runs the analyzer over the two-unit tree.
func runInMemory(t *testing.T, mSrc string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	checked := make(map[string]*types.Package)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return std.Import(path)
	})
	var units []*analysis.TreeUnit
	for _, src := range []struct{ path, body string }{{"sk", stubSrc}, {"m", mSrc}} {
		f, err := parser.ParseFile(fset, src.path+".go", src.body, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", src.path, err)
		}
		info := loader.NewInfo()
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(src.path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("check %s: %v", src.path, err)
		}
		checked[src.path] = tp
		units = append(units, &analysis.TreeUnit{Path: src.path, Files: []*ast.File{f}, Pkg: tp, Info: info})
	}
	var diags []analysis.Diagnostic
	pass := analysis.NewTreePass(shardpure.Analyzer, fset, units, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := shardpure.Analyzer.RunTree(pass); err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	return diags
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// TestMutationCatchesSeededWallClock is the analyzer's own mutation test:
// the clean chain callback -> hop1 -> hop2 passes, and seeding a time.Now
// into hop2 — two call hops below the shard callback — must produce
// exactly one finding that names the full chain. If this test fails, the
// interprocedural closure has a hole.
func TestMutationCatchesSeededWallClock(t *testing.T) {
	if diags := runInMemory(t, cleanSrc); len(diags) != 0 {
		t.Fatalf("clean variant: got %d findings, want 0: %v", len(diags), diags)
	}
	diags := runInMemory(t, mutatedSrc)
	if len(diags) != 1 {
		t.Fatalf("mutated variant: got %d findings, want 1: %v", len(diags), diags)
	}
	msg := diags[0].Message
	if !strings.Contains(msg, "wall-clock read") {
		t.Errorf("finding does not name the effect: %q", msg)
	}
	if !strings.Contains(msg, "m.tick -> m.hop1 -> m.hop2") {
		t.Errorf("finding does not carry the call chain: %q", msg)
	}
}
