// Package ok holds pure shard callbacks: deterministic computation,
// receiver-field appends (the caller-owned scratch idiom), and plain
// helper chains. shardpure must stay silent.
package ok

import "shardstub"

type world struct {
	k   *shardstub.Kernel
	buf []int
}

func Setup(sk *shardstub.ShardedKernel) {
	w := &world{k: sk.Shard(0)}
	w.k.At(0, w.tick)
	sk.Inject(0, 1, 0, apply, nil)
}

func (w *world) tick() {
	w.buf = append(w.buf, 1)
	w.step(3)
}

func (w *world) step(n int) {
	for i := 0; i < n; i++ {
		w.buf = append(w.buf, i)
	}
}

func apply(a any) {}
