// Package allowdir regression-tests //vcloudlint:allow suppression for
// shardpure: the directive sits at the deep effect site (where the finding
// points), and an identical effect without one stays flagged.
package allowdir

import (
	"time"

	"shardstub"
)

func Setup(sk *shardstub.ShardedKernel) {
	k := sk.Shard(0)
	k.At(0, tickAllowed)
	k.At(0, tickFlagged)
}

func tickAllowed() {
	//vcloudlint:allow shardpure profiling probe; the reading never feeds model state
	_ = time.Now()
}

func tickFlagged() {
	_ = time.Now() // want `wall-clock read in shard-reachable code`
}
