// Package shardstub is a stand-in for internal/sim in shardpure fixtures:
// the analyzer matches kernels by type name (Kernel, ShardedKernel), so
// fixtures can exercise root detection without importing the real module.
package shardstub

type Time int64

type Kernel struct{}

func (k *Kernel) At(t Time, fn func())                {}
func (k *Kernel) AtArg(t Time, fn func(any), arg any) {}
func (k *Kernel) After(d Time, fn func())             {}

type ShardedKernel struct{}

func (s *ShardedKernel) Shard(i int) *Kernel { return &Kernel{} }

func (s *ShardedKernel) Inject(src, dst int, at Time, fn func(any), arg any) {}
