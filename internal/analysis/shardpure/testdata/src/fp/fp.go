// Package fp holds shapes shardpure must NOT flag: callbacks on a plain
// (non-shard) kernel, impure functions never registered as callbacks, and
// a lookalike type with the right method names but the wrong type name.
package fp

import (
	"time"

	"shardstub"
)

// Plain registers on a kernel that never came from ShardedKernel.Shard:
// the per-package nowallclock analyzer governs its callbacks, not
// shardpure.
func Plain(k *shardstub.Kernel) {
	k.At(0, func() { _ = time.Now() })
}

// unrooted is impure but never registered as a shard callback.
func unrooted() { _ = time.Now() }

// fakeSharded has a Shard method but is not a ShardedKernel.
type fakeSharded struct{}

func (f *fakeSharded) Shard(i int) *shardstub.Kernel { return nil }

func Fake(f *fakeSharded) {
	k := f.Shard(0)
	k.At(0, func() { _ = time.Now() })
}
