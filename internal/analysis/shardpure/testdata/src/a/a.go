// Package a holds shardpure violations: effects buried one or two call
// hops below shard callbacks, plus an unresolvable callback registration.
package a

import (
	"math/rand"
	"time"

	"shardstub"
)

type sim struct {
	k    *shardstub.Kernel
	seen map[int]bool
	out  []int
	hook func()
}

func Setup(sk *shardstub.ShardedKernel) {
	s := &sim{k: sk.Shard(0)}
	s.k.At(0, s.tick)
	sk.Inject(0, 1, 0, applyClock, nil)
	var fv func()
	s.k.At(0, fv) // want `cannot statically resolve shard callback`
}

func (s *sim) tick() {
	s.drawRand()
	s.leakOrder()
	s.spawn()
	s.hook() // want `dynamic call in shard-reachable code`
}

// applyClock reaches the wall clock two hops down.
func applyClock(a any) {
	hop1()
}

func hop1() { hop2() }

func hop2() {
	_ = time.Now() // want `wall-clock read in shard-reachable code`
}

func (s *sim) drawRand() {
	_ = rand.Intn(10) // want `global rand draw in shard-reachable code`
}

func (s *sim) leakOrder() {
	for k := range s.seen {
		s.out = append(s.out, k) // want `map-order leak in shard-reachable code`
	}
}

func (s *sim) spawn() {
	go func() {}() // want `goroutine/sync use in shard-reachable code`
}
