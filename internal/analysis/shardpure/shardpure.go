// Package shardpure enforces the sharded kernel's purity contract
// interprocedurally: every function transitively reachable from a
// ShardedKernel worker callback — a func-typed argument to
// ShardedKernel.Inject, or to a scheduling call on a kernel obtained from
// ShardedKernel.Shard — must be free of wall-clock reads, global rand
// draws, map-order leaks, and goroutine/sync use. Those are exactly the
// per-package purity checks, closed over the call graph: a time.Now()
// buried two helpers below a shard tick handler breaks bit-for-bit
// reproducibility just as surely as one written inline, but only this
// analyzer can see it.
//
// Calls the graph cannot resolve (interface methods, func-valued
// variables) are conservatively treated as impure, and callbacks that
// cannot be resolved to a function at the registration site are reported
// outright: an unanalyzable shard callback is a hole in the bit-for-bit
// guarantee.
//
// Findings point at the deep effect site (where the fix goes) and carry
// the root and call chain that make it shard-reachable. Suppress with
// //vcloudlint:allow shardpure <reason> at the effect site.
package shardpure

import (
	"go/token"

	"vcloud/internal/analysis"
	"vcloud/internal/analysis/interproc"
)

// Analyzer is the shardpure check.
var Analyzer = &analysis.Analyzer{
	Name:    "shardpure",
	Doc:     "forbid wall-clock, global-rand, map-order and goroutine effects anywhere reachable from sharded-kernel callbacks",
	RunTree: run,
}

// banned are the effect bits a shard callback's transitive closure must
// not exhibit. Dynamic calls are included: an unresolvable callee may hide
// any of the others.
const banned = interproc.PurityEffects | interproc.EffDynamicCall

func run(pass *analysis.TreePass) error {
	tree := interproc.Build(pass.Fset, pass.Units)
	type siteKey struct {
		pos token.Pos
		bit interproc.Effect
	}
	seen := make(map[siteKey]bool)
	for _, root := range tree.ShardRoots {
		node := tree.Nodes[root.Key]
		if node == nil {
			continue
		}
		for _, bit := range (node.Summary & banned).Bits() {
			path, site, ok := tree.Trace(root.Key, bit)
			if !ok {
				pass.Reportf(root.Pos, "shard callback %s has a %s somewhere in its call graph (witness lost to a cycle)", interproc.ShortKey(root.Key), bit)
				continue
			}
			k := siteKey{pos: site.Pos, bit: bit}
			if seen[k] {
				continue
			}
			seen[k] = true
			pass.Reportf(site.Pos, "%s in shard-reachable code: %s; reachable as %s via %s",
				bit, site.Detail, root.Origin, interproc.RenderChain(path))
		}
	}
	for _, s := range tree.UnresolvedShard {
		pass.Reportf(s.Pos, "cannot statically resolve shard callback (%s): pass a named function, method value or func literal so its purity can be checked", s.Detail)
	}
	return nil
}
