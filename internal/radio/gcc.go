// GCC-style bandwidth estimation for the shared uplink (ISSUE 8
// tentpole). The estimator is the delay-gradient design of Google
// Congestion Control, restated over the simulator's virtual clock:
//
//   - arrival-time grouping: messages sent within a burst interval form
//     one group, and consecutive groups yield an inter-group delay
//     variation d(i) = (arrival_i − arrival_{i−1}) − (send_i − send_{i−1})
//     — positive when the bottleneck queue grew between the groups,
//     negative when it drained;
//   - a trendline estimator: the accumulated delay variation is smoothed
//     exponentially and regressed against arrival time over a sliding
//     window; the regression slope, scaled by the sample count and a
//     gain, is the congestion trend;
//   - an overuse detector with an adaptive threshold: the trend is
//     compared against a threshold that itself adapts (fast up, slow
//     down, clamped) so a single competing flow cannot starve the
//     estimator into permanent overuse;
//   - an AIMD delay-based rate controller: overuse multiplies the rate
//     down against the measured received rate (×β), underuse holds, and
//     normal operation increases — multiplicatively far from the last
//     decrease, additively near it;
//   - a loss-based controller: heavy loss multiplies the rate down,
//     negligible loss lets it grow;
//   - the published estimate is min(delay-based, loss-based), smoothed
//     with an EWMA and clamped to the configured channel bounds.
//
// Everything is pure arithmetic over sim.Time inputs: no wall clock, no
// global randomness, so two runs with equal seeds produce bit-identical
// estimate traces (a property the tests assert).
package radio

import (
	"math"
	"time"

	"vcloud/internal/sim"
)

// BWEConfig tunes a bandwidth estimator. Zero values take defaults.
type BWEConfig struct {
	// MinBps / MaxBps clamp every rate the estimator publishes. MaxBps
	// should be the channel's physical capacity; Sender wiring defaults
	// it there. Defaults: 10 kbps / 100 Mbps.
	MinBps float64
	MaxBps float64
	// StartBps seeds the controllers before any feedback. Default
	// MaxBps/2.
	StartBps float64
	// BurstInterval coalesces messages sent within it into one arrival
	// group. Default 5 ms.
	BurstInterval sim.Time
	// Window is the trendline regression window in delay samples.
	// Default 20.
	Window int
	// Gain scales the regression slope into the overuse comparison.
	// Default 4.0.
	Gain float64
	// Beta is the multiplicative decrease applied to the measured
	// received rate on overuse. Default 0.85.
	Beta float64
	// SmoothAlpha is the EWMA weight of the newest target in the
	// published estimate. Default 0.3.
	SmoothAlpha float64
	// FeedbackWindow is the loss-rate window in messages. Default 20.
	FeedbackWindow int
	// LossInterval rate-limits loss-controller updates so per-message
	// multiplicative steps cannot compound unboundedly. Default 500 ms.
	LossInterval sim.Time
}

func (c BWEConfig) withDefaults() BWEConfig {
	if c.MinBps <= 0 {
		c.MinBps = 10e3
	}
	if c.MaxBps <= 0 {
		c.MaxBps = 100e6
	}
	if c.StartBps <= 0 {
		c.StartBps = c.MaxBps / 2
	}
	if c.BurstInterval <= 0 {
		c.BurstInterval = 5 * time.Millisecond
	}
	if c.Window <= 1 {
		c.Window = 20
	}
	if c.Gain <= 0 {
		c.Gain = 4.0
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		c.Beta = 0.85
	}
	if c.SmoothAlpha <= 0 || c.SmoothAlpha > 1 {
		c.SmoothAlpha = 0.3
	}
	if c.FeedbackWindow <= 0 {
		c.FeedbackWindow = 20
	}
	if c.LossInterval <= 0 {
		c.LossInterval = 500 * time.Millisecond
	}
	return c
}

// Detector states.
const (
	stateNormal = iota
	stateOveruse
	stateUnderuse
)

// Rate-controller states.
const (
	rcIncrease = iota
	rcHold
	rcDecrease
)

// Adaptive-threshold constants, in the units of the modified trend
// (milliseconds): initial value, up/down adaptation gains, clamp range,
// and how long an over-threshold trend must persist before overuse is
// signalled.
const (
	thresholdInitMs = 12.5
	thresholdKUp    = 0.0087
	thresholdKDown  = 0.039
	thresholdMinMs  = 6.0
	thresholdMaxMs  = 600.0
	overuseTimeMs   = 10.0
	maxDeltas       = 60
)

// rateSample is one acknowledged message in the received-rate window.
type rateSample struct {
	at    sim.Time
	bytes int
}

// trendSample is one point of the trendline regression: arrival time
// (ms, relative to the first sample) and smoothed accumulated delay (ms).
type trendSample struct {
	tMs     float64
	delayMs float64
}

// BWEstimator is one sender's congestion view of a shared channel. It is
// driven entirely by OnSent/OnAck/OnLost callbacks from the uplink and
// publishes a smoothed, clamped bandwidth estimate via TargetBps.
type BWEstimator struct {
	cfg BWEConfig

	// Arrival grouping. A group is keyed by its first send time; it
	// closes when a message sent more than BurstInterval later arrives.
	haveGroup                     bool
	groupFirstSend, groupLastSend sim.Time
	groupLastArrival              sim.Time
	havePrev                      bool
	prevLastSend, prevLastArrival sim.Time

	// Trendline state.
	accumDelayMs  float64
	smoothDelayMs float64
	firstArrival  sim.Time
	window        []trendSample
	numDeltas     int
	trend         float64 // latest modified trend (ms)
	prevTrend     float64

	// Adaptive-threshold overuse detector.
	thresholdMs  float64
	state        int
	overuseStart sim.Time
	lastDetect   sim.Time

	// Received-rate measurement over the last second.
	rateWin []rateSample

	// Loss window: a ring of recent message outcomes (true = delivered).
	outcomes   []bool
	outcomeIdx int
	outcomeN   int

	// Controllers.
	rcState      int
	delayBps     float64
	lossBps      float64
	lastDecrease float64
	lastRateAt   sim.Time
	lastLossAt   sim.Time
	haveRateTime bool
	estimate     float64
	sent, acked  uint64
	lost         uint64
	// lastFeedback is when the estimator last heard anything (ack or
	// loss). A consumer can use its age to decay trust in the estimate:
	// a source that stops sending stops learning, and its view of the
	// channel goes stale rather than staying authoritative forever.
	lastFeedback sim.Time
}

// NewBWEstimator builds an estimator with the given config.
func NewBWEstimator(cfg BWEConfig) *BWEstimator {
	cfg = cfg.withDefaults()
	return &BWEstimator{
		cfg:         cfg,
		thresholdMs: thresholdInitMs,
		delayBps:    cfg.StartBps,
		lossBps:     cfg.StartBps,
		estimate:    cfg.StartBps,
		outcomes:    make([]bool, cfg.FeedbackWindow),
	}
}

// OnSent records a departing message.
func (e *BWEstimator) OnSent(now sim.Time, bytes int) { e.sent++ }

// OnLost records a lost or dropped message: it enters the loss window
// and may trigger a loss-controller update.
func (e *BWEstimator) OnLost(now sim.Time) {
	e.lost++
	e.lastFeedback = now
	e.pushOutcome(false)
	e.updateLoss(now)
	e.publish()
}

// OnAck records a delivered message: received-rate and loss-window
// bookkeeping, arrival grouping, and — when a group closes — a trendline
// update and a detector/rate-controller step.
func (e *BWEstimator) OnAck(sendTime, arrival sim.Time, bytes int) {
	e.acked++
	e.lastFeedback = arrival
	e.pushOutcome(true)
	e.pushRate(arrival, bytes)
	e.updateLoss(arrival)

	if !e.haveGroup {
		e.startGroup(sendTime, arrival)
		e.publish()
		return
	}
	if sendTime-e.groupFirstSend <= e.cfg.BurstInterval {
		// Same burst: extend the current group. Out-of-order arrivals
		// keep the latest times.
		if sendTime > e.groupLastSend {
			e.groupLastSend = sendTime
		}
		if arrival > e.groupLastArrival {
			e.groupLastArrival = arrival
		}
		e.publish()
		return
	}
	// The burst ended: compare the closing group against the previous
	// one, then start a new group with this message.
	if e.havePrev {
		sendDelta := (e.groupLastSend - e.prevLastSend).Seconds() * 1e3
		arrivalDelta := (e.groupLastArrival - e.prevLastArrival).Seconds() * 1e3
		e.onDelayDelta(arrivalDelta-sendDelta, e.groupLastArrival)
	}
	e.havePrev = true
	e.prevLastSend = e.groupLastSend
	e.prevLastArrival = e.groupLastArrival
	e.startGroup(sendTime, arrival)
	e.publish()
}

func (e *BWEstimator) startGroup(sendTime, arrival sim.Time) {
	e.haveGroup = true
	e.groupFirstSend = sendTime
	e.groupLastSend = sendTime
	e.groupLastArrival = arrival
}

// onDelayDelta feeds one inter-group delay variation (ms) into the
// trendline, then runs the detector and the delay-based rate controller.
func (e *BWEstimator) onDelayDelta(deltaMs float64, arrival sim.Time) {
	if e.numDeltas == 0 {
		e.firstArrival = arrival
	}
	e.numDeltas++
	e.accumDelayMs += deltaMs
	e.smoothDelayMs = 0.9*e.smoothDelayMs + 0.1*e.accumDelayMs
	e.window = append(e.window, trendSample{
		tMs:     (arrival - e.firstArrival).Seconds() * 1e3,
		delayMs: e.smoothDelayMs,
	})
	if len(e.window) > e.cfg.Window {
		e.window = e.window[1:]
	}
	slope, ok := e.slope()
	if !ok {
		return
	}
	n := e.numDeltas
	if n > maxDeltas {
		n = maxDeltas
	}
	e.prevTrend = e.trend
	e.trend = slope * float64(n) * e.cfg.Gain
	e.detect(arrival)
	e.stepDelayController(arrival)
}

// slope is the least-squares slope of the trendline window (delay-ms per
// arrival-ms). Needs at least two samples with distinct times.
func (e *BWEstimator) slope() (float64, bool) {
	if len(e.window) < 2 {
		return 0, false
	}
	var sumT, sumD float64
	for _, s := range e.window {
		sumT += s.tMs
		sumD += s.delayMs
	}
	n := float64(len(e.window))
	meanT, meanD := sumT/n, sumD/n
	var num, den float64
	for _, s := range e.window {
		num += (s.tMs - meanT) * (s.delayMs - meanD)
		den += (s.tMs - meanT) * (s.tMs - meanT)
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// detect classifies the modified trend against the adaptive threshold
// and adapts the threshold toward |trend| — fast when above (so one
// aggressive competing flow cannot capture the detector), slow when
// below, clamped to a sane range.
func (e *BWEstimator) detect(now sim.Time) {
	t := e.trend
	switch {
	case t > e.thresholdMs:
		if e.state != stateOveruse && e.overuseStart == 0 {
			e.overuseStart = now
		}
		// Overuse must be sustained and not already receding.
		sustainedMs := (now - e.overuseStart).Seconds() * 1e3
		if e.overuseStart > 0 && sustainedMs >= overuseTimeMs && t >= e.prevTrend {
			e.state = stateOveruse
		}
	case t < -e.thresholdMs:
		e.state = stateUnderuse
		e.overuseStart = 0
	default:
		e.state = stateNormal
		e.overuseStart = 0
	}
	// Threshold adaptation: γ += dt·k·(|trend| − γ).
	if e.lastDetect > 0 {
		dtMs := (now - e.lastDetect).Seconds() * 1e3
		if dtMs > 100 {
			dtMs = 100
		}
		k := thresholdKDown
		if math.Abs(t) > e.thresholdMs {
			k = thresholdKUp
		}
		e.thresholdMs += dtMs * k * (math.Abs(t) - e.thresholdMs)
		if e.thresholdMs < thresholdMinMs {
			e.thresholdMs = thresholdMinMs
		}
		if e.thresholdMs > thresholdMaxMs {
			e.thresholdMs = thresholdMaxMs
		}
	}
	e.lastDetect = now
}

// stepDelayController runs one AIMD step of the delay-based controller.
func (e *BWEstimator) stepDelayController(now sim.Time) {
	received := e.receivedBps(now)
	switch e.state {
	case stateOveruse:
		if e.rcState != rcDecrease {
			e.rcState = rcDecrease
			if received > 0 {
				e.delayBps = e.cfg.Beta * received
			} else {
				e.delayBps *= e.cfg.Beta
			}
			e.lastDecrease = e.delayBps
		}
	case stateUnderuse:
		// The queues are draining: hold until they empty rather than
		// re-filling them immediately.
		e.rcState = rcHold
	default:
		dt := 0.0
		if e.haveRateTime {
			dt = (now - e.lastRateAt).Seconds()
			if dt > 1 {
				dt = 1
			}
		}
		e.rcState = rcIncrease
		if e.lastDecrease > 0 && e.delayBps > 0.9*e.lastDecrease {
			// Near the rate that last congested the channel: probe
			// additively.
			e.delayBps += e.cfg.MaxBps * 0.02 * dt
		} else {
			e.delayBps *= math.Pow(1.08, dt)
		}
	}
	e.haveRateTime = true
	e.lastRateAt = now
	e.clampDelay()
}

func (e *BWEstimator) clampDelay() {
	if e.delayBps > e.cfg.MaxBps {
		e.delayBps = e.cfg.MaxBps
	}
	if e.delayBps < e.cfg.MinBps {
		e.delayBps = e.cfg.MinBps
	}
}

// updateLoss runs the loss-based controller at most once per
// LossInterval: heavy loss multiplies down, negligible loss grows.
func (e *BWEstimator) updateLoss(now sim.Time) {
	if e.outcomeN < e.cfg.FeedbackWindow {
		return // window not yet primed
	}
	if e.lastLossAt > 0 && now-e.lastLossAt < e.cfg.LossInterval {
		return
	}
	e.lastLossAt = now
	loss := e.LossRate()
	switch {
	case loss > 0.10:
		e.lossBps *= 1 - 0.5*loss
	case loss < 0.02:
		e.lossBps *= 1.05
	}
	if e.lossBps > e.cfg.MaxBps {
		e.lossBps = e.cfg.MaxBps
	}
	if e.lossBps < e.cfg.MinBps {
		e.lossBps = e.cfg.MinBps
	}
}

// publish folds the controllers into the smoothed published estimate:
// EWMA over min(delay-based, loss-based), clamped.
func (e *BWEstimator) publish() {
	target := e.delayBps
	if e.lossBps < target {
		target = e.lossBps
	}
	e.estimate += e.cfg.SmoothAlpha * (target - e.estimate)
	if e.estimate > e.cfg.MaxBps {
		e.estimate = e.cfg.MaxBps
	}
	if e.estimate < e.cfg.MinBps {
		e.estimate = e.cfg.MinBps
	}
}

func (e *BWEstimator) pushOutcome(ok bool) {
	e.outcomes[e.outcomeIdx] = ok
	e.outcomeIdx = (e.outcomeIdx + 1) % len(e.outcomes)
	if e.outcomeN < len(e.outcomes) {
		e.outcomeN++
	}
}

func (e *BWEstimator) pushRate(at sim.Time, bytes int) {
	e.rateWin = append(e.rateWin, rateSample{at: at, bytes: bytes})
	e.trimRate(at)
}

func (e *BWEstimator) trimRate(now sim.Time) {
	cut := 0
	for cut < len(e.rateWin) && now-e.rateWin[cut].at > time.Second {
		cut++
	}
	e.rateWin = e.rateWin[cut:]
}

// receivedBps measures the acknowledged throughput over the last second.
func (e *BWEstimator) receivedBps(now sim.Time) float64 {
	e.trimRate(now)
	if len(e.rateWin) == 0 {
		return 0
	}
	var bits float64
	for _, s := range e.rateWin {
		bits += float64(s.bytes * 8)
	}
	return bits // window is 1 s, so bits == bits/sec
}

// TargetBps returns the published (EWMA-smoothed, clamped) estimate.
func (e *BWEstimator) TargetBps() float64 { return e.estimate }

// LastFeedback returns when the estimator last received any feedback
// (zero before the first ack or loss).
func (e *BWEstimator) LastFeedback() sim.Time { return e.lastFeedback }

// LossRate returns the loss fraction over the feedback window (zero
// until any outcome is recorded).
func (e *BWEstimator) LossRate() float64 {
	if e.outcomeN == 0 {
		return 0
	}
	fails := 0
	for i := 0; i < e.outcomeN; i++ {
		if !e.outcomes[i] {
			fails++
		}
	}
	return float64(fails) / float64(e.outcomeN)
}

// Trend returns the latest modified trendline value (ms): positive under
// queue growth, negative while draining.
func (e *BWEstimator) Trend() float64 { return e.trend }

// ThresholdMs returns the current adaptive overuse threshold.
func (e *BWEstimator) ThresholdMs() float64 { return e.thresholdMs }

// State returns the detector state: "normal", "overuse" or "underuse".
func (e *BWEstimator) State() string {
	switch e.state {
	case stateOveruse:
		return "overuse"
	case stateUnderuse:
		return "underuse"
	default:
		return "normal"
	}
}

// Counters returns (sent, acked, lost) message totals.
func (e *BWEstimator) Counters() (sent, acked, lost uint64) {
	return e.sent, e.acked, e.lost
}
