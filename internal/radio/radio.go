// Package radio models the shared wireless medium that V2V and V2I
// communication crosses: a DSRC-like broadcast channel with
// distance-dependent reception probability, load-dependent collision
// loss, and transmission delay, plus a cellular/Internet uplink model for
// the conventional-cloud baseline (E1).
//
// The model is deliberately at the "packet-level abstraction" fidelity of
// vehicular-networking simulators: no per-bit PHY, but the three effects
// the paper's challenges derive from — limited range, intermittent
// delivery, and contention under load — are all present and tunable.
package radio

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/sim"
)

// NodeID identifies a radio endpoint (vehicle OBU or RSU).
type NodeID int32

// Broadcast is the destination value meaning "all nodes in range".
const Broadcast NodeID = -1

// Frame is a delivered radio frame.
type Frame struct {
	From    NodeID
	To      NodeID // Broadcast or a specific node
	Size    int    // bytes on air
	Payload any
	SentAt  sim.Time
}

// Handler receives frames addressed to (or overheard by) a node.
type Handler func(Frame)

// Params configures the medium.
type Params struct {
	// RangeMax is the hard reception cutoff in meters.
	RangeMax float64
	// RangeReliable is the distance up to which reception is certain
	// (absent collisions). Between RangeReliable and RangeMax the success
	// probability falls off quadratically to zero.
	RangeReliable float64
	// BitrateMbps is the channel bitrate used for transmission delay.
	BitrateMbps float64
	// LoadWindow is the sliding window over which channel airtime is
	// accumulated for the collision model.
	LoadWindow sim.Time
	// CollisionFactor scales how aggressively load translates into loss:
	// pLoss = min(MaxCollisionLoss, CollisionFactor × airtimeFraction).
	CollisionFactor float64
	// MaxCollisionLoss caps the load-induced loss probability.
	MaxCollisionLoss float64
	// UnicastRetries is the number of link-layer retransmissions for
	// unicast frames (802.11-style ARQ). Broadcasts are never retried,
	// as on a real MAC. Default 3.
	UnicastRetries int
}

// DefaultParams returns DSRC-flavoured defaults (300 m range, 6 Mbps).
func DefaultParams() Params {
	return Params{
		RangeMax:         300,
		RangeReliable:    150,
		BitrateMbps:      6,
		LoadWindow:       100 * time.Millisecond,
		CollisionFactor:  1.0,
		MaxCollisionLoss: 0.9,
		UnicastRetries:   3,
	}
}

func (p Params) validate() error {
	if p.RangeMax <= 0 {
		return fmt.Errorf("radio: RangeMax must be positive, got %v", p.RangeMax)
	}
	if p.RangeReliable <= 0 || p.RangeReliable > p.RangeMax {
		return fmt.Errorf("radio: RangeReliable must be in (0, RangeMax], got %v", p.RangeReliable)
	}
	if p.BitrateMbps <= 0 {
		return fmt.Errorf("radio: BitrateMbps must be positive, got %v", p.BitrateMbps)
	}
	if p.LoadWindow <= 0 {
		return fmt.Errorf("radio: LoadWindow must be positive, got %v", p.LoadWindow)
	}
	return nil
}

// Stats aggregates medium counters.
type Stats struct {
	Sent       uint64 // frames transmitted
	Delivered  uint64 // frame receptions (one broadcast may deliver many)
	LostRange  uint64 // receptions lost to distance fade
	LostLoad   uint64 // receptions lost to collisions
	BytesOnAir uint64
}

// Medium is the shared channel. It owns a spatial index over node
// positions which callers keep current via UpdatePosition.
type Medium struct {
	kernel   *sim.Kernel
	rng      *rand.Rand
	params   Params
	index    *geo.GridIndex
	handlers map[NodeID]Handler
	// airtime is the decaying load accumulator, in seconds of channel
	// time; lastDecay is when it was last aged.
	airtime   float64
	lastDecay sim.Time
	stats     Stats
	// partition optionally drops frames between groups (used to model
	// obstacles or jamming zones in attack experiments).
	blocked func(from, to NodeID) bool
	// blockers are additional, stackable frame filters (fault injection
	// composes outages, partitions and loss bursts without disturbing a
	// SetBlocked filter an experiment already installed).
	blockers    map[int]func(from, to NodeID) bool
	nextBlocker int
	// promiscuous nodes overhear every frame transmitted in their range,
	// regardless of addressing — the §III eavesdropping threat model.
	// spies mirrors the map's keys sorted by id, maintained at
	// registration time so Send never sorts.
	promiscuous map[NodeID]Handler
	spies       []NodeID
	// scratchIDs/scratchPos are the per-medium neighbor-query buffers
	// reused across Send calls; together with the delivery freelist they
	// make a broadcast to N neighbors cost O(N) work with O(1)
	// steady-state allocations.
	scratchIDs []int32
	scratchPos []geo.Point
	freeDeliv  []*delivery
}

// delivery carries one scheduled frame reception through the kernel.
// Instances are pooled on the medium and scheduled via the kernel's
// AfterArg, so a reception costs no closure or event allocation once the
// pools are warm.
type delivery struct {
	m     *Medium
	h     Handler
	f     Frame
	count bool // increment Stats.Delivered (false for promiscuous overhears)
}

// runDelivery is the single callback behind every scheduled reception.
// The delivery is recycled before the handler runs: its fields are copied
// out first, so a handler that immediately transmits reuses the slot.
func runDelivery(a any) {
	d := a.(*delivery)
	m, h, f, count := d.m, d.h, d.f, d.count
	d.h = nil
	d.f = Frame{}
	m.freeDeliv = append(m.freeDeliv, d)
	if count {
		m.stats.Delivered++
	}
	h(f)
}

func (m *Medium) getDelivery() *delivery {
	if n := len(m.freeDeliv); n > 0 {
		d := m.freeDeliv[n-1]
		m.freeDeliv[n-1] = nil
		m.freeDeliv = m.freeDeliv[:n-1]
		return d
	}
	//vcloudlint:allow hotalloc delivery pool cold start; recycled in runDelivery so steady state is allocation-free
	return &delivery{m: m}
}

// NewMedium creates a medium over the given bounds.
func NewMedium(kernel *sim.Kernel, bounds geo.Rect, params Params) (*Medium, error) {
	if kernel == nil {
		return nil, fmt.Errorf("radio: kernel must not be nil")
	}
	if err := params.validate(); err != nil {
		return nil, err
	}
	idx, err := geo.NewGridIndex(bounds, params.RangeMax)
	if err != nil {
		return nil, fmt.Errorf("radio: %w", err)
	}
	return &Medium{
		kernel:      kernel,
		rng:         kernel.NewStream("radio"),
		params:      params,
		index:       idx,
		handlers:    make(map[NodeID]Handler),
		promiscuous: make(map[NodeID]Handler),
	}, nil
}

// SetPromiscuous registers (or, with a nil handler, removes) an
// eavesdropping listener: the node overhears every frame whose
// transmitter is within range, including unicasts addressed to others.
// The node must have a position (UpdatePosition) to overhear anything.
func (m *Medium) SetPromiscuous(id NodeID, h Handler) {
	if h == nil {
		if _, ok := m.promiscuous[id]; ok {
			delete(m.promiscuous, id)
			for i, s := range m.spies {
				if s == id {
					m.spies = append(m.spies[:i], m.spies[i+1:]...)
					break
				}
			}
		}
		return
	}
	if _, ok := m.promiscuous[id]; !ok {
		m.spies = append(m.spies, id)
		sortIDs(m.spies)
	}
	m.promiscuous[id] = h
}

// Register attaches a node's receive handler. Re-registering replaces the
// handler.
func (m *Medium) Register(id NodeID, h Handler) {
	if h == nil {
		delete(m.handlers, id)
		return
	}
	m.handlers[id] = h
}

// Unregister removes a node from the medium entirely.
func (m *Medium) Unregister(id NodeID) {
	delete(m.handlers, id)
	m.index.Remove(int32(id))
}

// UpdatePosition moves a node. Vehicles call this every mobility tick;
// RSUs once at setup.
func (m *Medium) UpdatePosition(id NodeID, p geo.Point) {
	m.index.Update(int32(id), p)
}

// Position returns a node's last known position.
func (m *Medium) Position(id NodeID) (geo.Point, bool) {
	return m.index.Position(int32(id))
}

// SetBlocked installs a frame filter; frames for which fn returns true are
// silently dropped. Pass nil to clear. Attack experiments use this for
// jamming / partition injection.
func (m *Medium) SetBlocked(fn func(from, to NodeID) bool) { m.blocked = fn }

// AddBlocker installs an additional frame filter alongside SetBlocked and
// any other blockers; a frame is dropped when any filter returns true.
// It returns a removal function (safe to call more than once). The fault
// injector stacks outages, partitions and loss bursts through this.
func (m *Medium) AddBlocker(fn func(from, to NodeID) bool) (remove func()) {
	if fn == nil {
		return func() {}
	}
	if m.blockers == nil {
		m.blockers = make(map[int]func(from, to NodeID) bool)
	}
	id := m.nextBlocker
	m.nextBlocker++
	m.blockers[id] = fn
	return func() { delete(m.blockers, id) }
}

// frameBlocked reports whether any installed filter drops the frame.
func (m *Medium) frameBlocked(from, to NodeID) bool {
	//vcloudlint:allow hotalloc blocker predicates are test/model configuration; the common path has none installed
	if m.blocked != nil && m.blocked(from, to) {
		return true
	}
	if len(m.blockers) == 0 {
		return false
	}
	// Evaluate in insertion order so any blocker-side randomness draws in
	// a reproducible sequence.
	for id := 0; id < m.nextBlocker; id++ {
		if fn, ok := m.blockers[id]; ok && fn(from, to) {
			return true
		}
	}
	return false
}

// Stats returns a copy of the medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// Params returns the medium configuration.
func (m *Medium) Params() Params { return m.params }

// Neighbors appends the IDs of nodes within range of node id (excluding
// itself) and returns the slice. It reflects true geometry, not beacons;
// protocol code should normally use vnet neighbor tables instead.
func (m *Medium) Neighbors(dst []NodeID, id NodeID) []NodeID {
	p, ok := m.index.Position(int32(id))
	if !ok {
		return dst
	}
	m.scratchIDs = m.index.WithinRange(m.scratchIDs[:0], p, m.params.RangeMax, int32(id))
	for _, r := range m.scratchIDs {
		dst = append(dst, NodeID(r))
	}
	return dst
}

// txDelay returns the on-air time of size bytes.
func (m *Medium) txDelay(size int) sim.Time {
	bits := float64(size * 8)
	sec := bits / (m.params.BitrateMbps * 1e6)
	return sim.Time(sec * float64(time.Second))
}

// loadFraction ages the airtime accumulator and returns the fraction of
// the window the channel was busy.
func (m *Medium) loadFraction() float64 {
	now := m.kernel.Now()
	if now > m.lastDecay {
		elapsed := float64(now-m.lastDecay) / float64(m.params.LoadWindow)
		m.airtime *= math.Exp(-elapsed)
		m.lastDecay = now
	}
	window := float64(m.params.LoadWindow) / float64(time.Second)
	f := m.airtime / window
	if f > 1 {
		f = 1
	}
	return f
}

// receptionProb returns the distance-fade success probability.
func (m *Medium) receptionProb(d float64) float64 {
	return m.params.ReceptionProb(d)
}

// ReceptionProb returns the distance-fade success probability at distance
// d: certain up to RangeReliable, quadratic falloff to zero at RangeMax.
// It is a pure function of the params, shared by the stream-RNG Medium
// and the counter-hash ShardChannel so both model the same physics.
func (p Params) ReceptionProb(d float64) float64 {
	if d <= p.RangeReliable {
		return 1
	}
	if d >= p.RangeMax {
		return 0
	}
	x := (d - p.RangeReliable) / (p.RangeMax - p.RangeReliable)
	return (1 - x) * (1 - x)
}

// deliver runs the reception decision for one destination and, on
// success, schedules the handler callback through the pooled delivery
// path. Shared by the unicast and broadcast arms of Send; broadcasts pass
// retries == 0 (no ARQ on a real MAC).
func (m *Medium) deliver(from, to, dst NodeID, src, dstPos geo.Point, size int, payload any, retries int, pCollide float64) {
	if m.frameBlocked(from, dst) {
		return
	}
	h, ok := m.handlers[dst]
	if !ok {
		return
	}
	d := src.Dist(dstPos)
	pRecv := m.receptionProb(d)
	// Link-layer ARQ: unicast frames get retries+1 attempts; each
	// failed attempt costs one extra transmission slot of delay.
	attempts := 0
	ok = false
	var lossKind *uint64
	for try := 0; try <= retries; try++ {
		attempts++
		if m.rng.Float64() >= pRecv {
			lossKind = &m.stats.LostRange
			continue
		}
		if m.rng.Float64() < pCollide {
			lossKind = &m.stats.LostLoad
			continue
		}
		ok = true
		break
	}
	if !ok {
		*lossKind++
		return
	}
	dl := m.getDelivery()
	dl.h = h
	dl.f = Frame{From: from, To: to, Size: size, Payload: payload, SentAt: m.kernel.Now()}
	dl.count = true
	// Transmission delay (per attempt) plus a small MAC access jitter.
	jitter := sim.Time(m.rng.Int63n(int64(500 * time.Microsecond)))
	m.kernel.AfterArg(sim.Time(attempts)*m.txDelay(size)+jitter, runDelivery, dl)
}

// Send transmits a frame. to == Broadcast delivers to every node in range;
// otherwise only the addressed node (if in range) receives it. Send never
// fails: lost frames are simply not delivered, as on a real channel.
//
//vcloudlint:hotpath runs once per transmitted frame, the innermost loop of every radio-heavy scenario
func (m *Medium) Send(from, to NodeID, size int, payload any) {
	src, ok := m.index.Position(int32(from))
	if !ok {
		return
	}
	if size < 1 {
		size = 1
	}
	m.stats.Sent++
	m.stats.BytesOnAir += uint64(size)

	// Account airtime for the collision model.
	load := m.loadFraction()
	m.airtime += float64(m.txDelay(size)) / float64(time.Second)

	pCollide := m.params.CollisionFactor * load
	if pCollide > m.params.MaxCollisionLoss {
		pCollide = m.params.MaxCollisionLoss
	}

	if to == Broadcast {
		// One query yields neighbors and their positions into the
		// per-medium scratch buffers, already in the grid's stable order —
		// no per-broadcast sort, no per-neighbor position re-lookup.
		m.scratchIDs, m.scratchPos = m.index.WithinRangePos(
			m.scratchIDs[:0], m.scratchPos[:0], src, m.params.RangeMax, int32(from))
		for i, raw := range m.scratchIDs {
			m.deliver(from, to, NodeID(raw), src, m.scratchPos[i], size, payload, 0, pCollide)
		}
	} else if p, ok := m.index.Position(int32(to)); ok {
		retries := m.params.UnicastRetries
		if retries < 0 {
			retries = 0
		}
		m.deliver(from, to, to, src, p, size, payload, retries, pCollide)
	}

	// Eavesdroppers overhear whatever their radio can demodulate,
	// without ARQ (they cannot request retransmissions). The spy list is
	// kept sorted at registration time.
	for _, id := range m.spies {
		if id == from || id == to {
			continue // the sender and the addressed node already have it
		}
		p, ok := m.index.Position(int32(id))
		if !ok {
			continue
		}
		d := src.Dist(p)
		if m.rng.Float64() >= m.receptionProb(d) {
			continue
		}
		dl := m.getDelivery()
		dl.h = m.promiscuous[id]
		dl.f = Frame{From: from, To: to, Size: size, Payload: payload, SentAt: m.kernel.Now()}
		dl.count = false
		m.kernel.AfterArg(m.txDelay(size), runDelivery, dl)
	}
}

// sortIDs is the one insertion sort shared by every small id list in this
// package (such lists are short and usually nearly sorted).
func sortIDs[T ~int32](ids []T) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
