package radio

import (
	"fmt"
	"math/rand"
	"time"

	"vcloud/internal/sim"
)

// Uplink models the cellular/Internet path a conventional cloud depends
// on: fixed base latency, bandwidth-limited transfer time, a loss
// probability, and an availability switch the disaster experiments (E1,
// E2) flip off. The paper's Fig. 2 "infrastructure reliance" row is about
// exactly this dependency.
type UplinkParams struct {
	// BaseRTT is the round-trip latency to the cloud when healthy.
	BaseRTT sim.Time
	// BandwidthMbps limits transfer rates.
	BandwidthMbps float64
	// LossProb is the per-message loss probability when healthy.
	LossProb float64
	// JitterFrac adds uniform ±frac jitter to latency.
	JitterFrac float64
}

// DefaultUplinkParams returns LTE-flavoured defaults.
func DefaultUplinkParams() UplinkParams {
	return UplinkParams{
		BaseRTT:       60 * time.Millisecond,
		BandwidthMbps: 20,
		LossProb:      0.01,
		JitterFrac:    0.2,
	}
}

// Uplink is a point-to-cloud link shared by all vehicles under coverage.
type Uplink struct {
	kernel    *sim.Kernel
	rng       *rand.Rand
	params    UplinkParams
	available bool

	sent, delivered, lost uint64
}

// NewUplink creates a healthy uplink.
func NewUplink(kernel *sim.Kernel, params UplinkParams) (*Uplink, error) {
	if kernel == nil {
		return nil, fmt.Errorf("radio: kernel must not be nil")
	}
	if params.BaseRTT <= 0 {
		return nil, fmt.Errorf("radio: BaseRTT must be positive, got %v", params.BaseRTT)
	}
	if params.BandwidthMbps <= 0 {
		return nil, fmt.Errorf("radio: BandwidthMbps must be positive, got %v", params.BandwidthMbps)
	}
	if params.LossProb < 0 || params.LossProb >= 1 {
		return nil, fmt.Errorf("radio: LossProb must be in [0,1), got %v", params.LossProb)
	}
	return &Uplink{
		kernel:    kernel,
		rng:       kernel.NewStream("uplink"),
		params:    params,
		available: true,
	}, nil
}

// SetAvailable toggles the uplink (network outage / disaster).
func (u *Uplink) SetAvailable(ok bool) { u.available = ok }

// Available reports whether the uplink is up.
func (u *Uplink) Available() bool { return u.available }

// Counters returns (sent, delivered, lost).
func (u *Uplink) Counters() (sent, delivered, lost uint64) {
	return u.sent, u.delivered, u.lost
}

// RoundTrip schedules fn after a full request/response exchange of the
// given sizes, or drops it (fn never runs) on loss or outage. It reports
// whether the exchange was initiated (false = uplink down).
func (u *Uplink) RoundTrip(reqBytes, respBytes int, fn func()) bool {
	if !u.available {
		return false
	}
	u.sent++
	if u.rng.Float64() < u.params.LossProb {
		u.lost++
		return true
	}
	if reqBytes < 0 {
		reqBytes = 0
	}
	if respBytes < 0 {
		respBytes = 0
	}
	transfer := float64((reqBytes+respBytes)*8) / (u.params.BandwidthMbps * 1e6)
	lat := float64(u.params.BaseRTT) + transfer*float64(time.Second)
	if u.params.JitterFrac > 0 {
		lat *= 1 + (u.rng.Float64()*2-1)*u.params.JitterFrac
	}
	u.kernel.After(sim.Time(lat), func() {
		if !u.available {
			// Outage hit mid-flight.
			u.lost++
			return
		}
		u.delivered++
		if fn != nil {
			fn()
		}
	})
	return true
}
