package radio

import (
	"fmt"
	"math/rand"
	"time"

	"vcloud/internal/sim"
)

// Uplink models the cellular/Internet path a conventional cloud depends
// on: fixed base latency, bandwidth-limited transfer time, a loss
// probability, and an availability switch the disaster experiments (E1,
// E2) flip off. The paper's Fig. 2 "infrastructure reliance" row is about
// exactly this dependency.
//
// Two channel models share this type. The legacy model (Contended off)
// is an infinite-capacity pipe: concurrent transfers never interact, and
// each pays only its own serialization time — the configuration E1/E2
// were calibrated against, preserved bit-for-bit. The contended model
// (Contended on) is a FIFO shared channel: transfers serialize at
// BandwidthMbps, queue behind the channel's backlog, and tail-drop when
// the queue wait would exceed MaxQueueDelay — which is what lets a
// congestion controller *observe* load (see Sender and gcc.go).
type UplinkParams struct {
	// BaseRTT is the round-trip latency to the cloud when healthy.
	BaseRTT sim.Time
	// BandwidthMbps limits transfer rates.
	BandwidthMbps float64
	// LossProb is the per-message loss probability when healthy.
	LossProb float64
	// JitterFrac adds uniform ±frac jitter to latency.
	JitterFrac float64
	// Contended switches the link from an infinite-capacity pipe to a
	// FIFO shared channel where concurrent transfers contend for
	// BandwidthMbps.
	Contended bool
	// MaxQueueDelay bounds the FIFO queue (Contended only): a transfer
	// whose queue wait would exceed it is dropped at the tail instead of
	// buffering without limit. Default 2 s.
	MaxQueueDelay sim.Time
}

// DefaultUplinkParams returns LTE-flavoured defaults.
func DefaultUplinkParams() UplinkParams {
	return UplinkParams{
		BaseRTT:       60 * time.Millisecond,
		BandwidthMbps: 20,
		LossProb:      0.01,
		JitterFrac:    0.2,
	}
}

// Uplink is a point-to-cloud link shared by all vehicles under coverage.
type Uplink struct {
	kernel    *sim.Kernel
	rng       *rand.Rand
	params    UplinkParams
	available bool
	// outages counts up→down transitions. A message records the count at
	// launch; a different count at delivery time means the flight
	// overlapped an outage window — even one that has already healed —
	// and the exchange died with it.
	outages uint64
	// busyUntil is when the FIFO channel finishes its current backlog
	// (Contended only); a new transfer queues behind it.
	busyUntil sim.Time

	sent, delivered, lost, dropped uint64
}

// NewUplink creates a healthy uplink.
func NewUplink(kernel *sim.Kernel, params UplinkParams) (*Uplink, error) {
	if kernel == nil {
		return nil, fmt.Errorf("radio: kernel must not be nil")
	}
	if params.BaseRTT <= 0 {
		return nil, fmt.Errorf("radio: BaseRTT must be positive, got %v", params.BaseRTT)
	}
	if params.BandwidthMbps <= 0 {
		return nil, fmt.Errorf("radio: BandwidthMbps must be positive, got %v", params.BandwidthMbps)
	}
	if params.LossProb < 0 || params.LossProb >= 1 {
		return nil, fmt.Errorf("radio: LossProb must be in [0,1), got %v", params.LossProb)
	}
	if params.MaxQueueDelay < 0 {
		return nil, fmt.Errorf("radio: MaxQueueDelay must be non-negative, got %v", params.MaxQueueDelay)
	}
	if params.Contended && params.MaxQueueDelay == 0 {
		params.MaxQueueDelay = 2 * time.Second
	}
	return &Uplink{
		kernel:    kernel,
		rng:       kernel.NewStream("uplink"),
		params:    params,
		available: true,
	}, nil
}

// SetAvailable toggles the uplink (network outage / disaster). Each
// up→down transition opens an outage window: messages already in flight
// are dropped at their delivery time even if the link heals first.
func (u *Uplink) SetAvailable(ok bool) {
	if u.available && !ok {
		u.outages++
	}
	u.available = ok
}

// Available reports whether the uplink is up.
func (u *Uplink) Available() bool { return u.available }

// SetLossProb replaces the per-message loss probability — the loss-burst
// injection point for saturation storms. Out-of-range values are
// clamped into [0,1).
func (u *Uplink) SetLossProb(p float64) {
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		p = 0.999
	}
	u.params.LossProb = p
}

// Params returns the uplink's current parameters.
func (u *Uplink) Params() UplinkParams { return u.params }

// Counters returns (sent, delivered, lost, dropped). Lost counts
// stochastic channel loss; Dropped counts messages killed by outage
// windows or FIFO tail drops — the split E1/E2 used to conflate.
func (u *Uplink) Counters() (sent, delivered, lost, dropped uint64) {
	return u.sent, u.delivered, u.lost, u.dropped
}

// QueueDelay reports how long a transfer launched now would wait behind
// the FIFO backlog (zero on an uncontended link).
func (u *Uplink) QueueDelay() sim.Time {
	if !u.params.Contended {
		return 0
	}
	if now := u.kernel.Now(); u.busyUntil > now {
		return u.busyUntil - now
	}
	return 0
}

// RoundTrip schedules fn after a full request/response exchange of the
// given sizes, or drops it (fn never runs) on loss, outage, or — on a
// contended link — a FIFO tail drop. It reports whether the exchange was
// initiated (false = uplink down).
func (u *Uplink) RoundTrip(reqBytes, respBytes int, fn func()) bool {
	return u.transfer(reqBytes, respBytes, fn, nil)
}

// transfer is the shared exchange path; s, when non-nil, receives
// congestion feedback (sends, arrival times, losses) for its estimator.
// The RNG draw order — loss first, jitter second — is load-bearing: the
// legacy uncontended path must replay historical experiment streams
// bit-for-bit.
func (u *Uplink) transfer(reqBytes, respBytes int, fn func(), s *Sender) bool {
	if !u.available {
		return false
	}
	u.sent++
	now := u.kernel.Now()
	if u.rng.Float64() < u.params.LossProb {
		u.lost++
		if s != nil {
			s.est.OnLost(now)
		}
		return true
	}
	if reqBytes < 0 {
		reqBytes = 0
	}
	if respBytes < 0 {
		respBytes = 0
	}
	bytes := reqBytes + respBytes
	transfer := float64(bytes*8) / (u.params.BandwidthMbps * 1e6)
	lat := float64(u.params.BaseRTT) + transfer*float64(time.Second)
	if u.params.JitterFrac > 0 {
		lat *= 1 + (u.rng.Float64()*2-1)*u.params.JitterFrac
	}
	var wait sim.Time
	if u.params.Contended {
		if u.busyUntil > now {
			wait = u.busyUntil - now
		}
		if wait > u.params.MaxQueueDelay {
			// Tail drop: the bounded queue is full. For the estimator this
			// is indistinguishable from congestion loss — which is exactly
			// the signal its loss-based controller wants.
			u.dropped++
			if s != nil {
				s.est.OnLost(now)
			}
			return true
		}
		u.busyUntil = now + wait + sim.Time(transfer*float64(time.Second))
	}
	mark := u.outages
	if s != nil {
		s.est.OnSent(now, bytes)
	}
	u.kernel.After(wait+sim.Time(lat), func() {
		if !u.available || u.outages != mark {
			// The flight overlapped an outage window (possibly one that
			// already healed): the exchange died with it.
			u.dropped++
			if s != nil {
				s.est.OnLost(u.kernel.Now())
			}
			return
		}
		u.delivered++
		if s != nil {
			s.est.OnAck(now, u.kernel.Now(), bytes)
		}
		if fn != nil {
			fn()
		}
	})
	return true
}

// Sender is one traffic source's handle on a shared uplink: exchanges
// routed through it feed a GCC-style bandwidth estimator with per-message
// arrival-time and loss feedback, so the source can observe congestion
// and adapt (see gcc.go and the vcloud placement governor).
type Sender struct {
	u   *Uplink
	est *BWEstimator
}

// NewSender attaches an estimator-backed sender to the uplink. A zero
// cfg takes defaults, with the rate ceiling defaulting to the channel's
// configured capacity — the estimator can never report more bandwidth
// than the link physically has.
func (u *Uplink) NewSender(cfg BWEConfig) *Sender {
	if cfg.MaxBps == 0 {
		cfg.MaxBps = u.params.BandwidthMbps * 1e6
	}
	return &Sender{u: u, est: NewBWEstimator(cfg)}
}

// RoundTrip is Uplink.RoundTrip with congestion feedback: the exchange's
// send time, arrival time and size (or its loss) feed this sender's
// estimator.
func (s *Sender) RoundTrip(reqBytes, respBytes int, fn func()) bool {
	return s.u.transfer(reqBytes, respBytes, fn, s)
}

// EstimateBps returns the current smoothed bandwidth estimate.
func (s *Sender) EstimateBps() float64 { return s.est.TargetBps() }

// LossRate returns the loss fraction over the estimator's feedback
// window.
func (s *Sender) LossRate() float64 { return s.est.LossRate() }

// QueueDelay reports the uplink's current FIFO backlog wait.
func (s *Sender) QueueDelay() sim.Time { return s.u.QueueDelay() }

// LastFeedback returns when this sender's estimator last heard from the
// channel (zero before any feedback).
func (s *Sender) LastFeedback() sim.Time { return s.est.LastFeedback() }

// BaseRTT returns the underlying link's healthy round-trip latency.
func (s *Sender) BaseRTT() sim.Time { return s.u.params.BaseRTT }

// Estimator exposes the underlying estimator (tests and invariant
// checks).
func (s *Sender) Estimator() *BWEstimator { return s.est }

// Uplink returns the shared channel this sender transmits on.
func (s *Sender) Uplink() *Uplink { return s.u }
