package radio

import (
	"fmt"

	"vcloud/internal/sim"
)

// Hash draw domains for the shard channel; distinct tags decorrelate the
// fade and collision draws for the same (tick, from, to) reception.
const (
	drawFade    uint64 = 0x2f
	drawCollide uint64 = 0x8b
)

// ShardChannel is the deterministic beacon channel of the geo-sharded
// world. Where Medium draws from a kernel RNG stream — whose draw order
// depends on global event interleaving — ShardChannel decides every
// reception with counter hashes keyed by (seed, tick, sender, receiver),
// so the outcome of each transmission is a pure function of the model.
// Shards can therefore evaluate receptions for the receivers they own, in
// any order and on any core, and produce bit-for-bit the outcome a serial
// run would.
//
// Contention is modeled from the sender's neighbor density (receivers per
// beacon), which the halo-complete shard indexes reproduce exactly; each
// reception is evaluated by exactly one shard (the receiver's owner), so
// the integer counters sum across shards to the serial totals.
type ShardChannel struct {
	seed   uint64
	params Params
	// DensityHalf is the neighbor count at which collision loss reaches
	// half of MaxCollisionLoss: pCollide = Max × d/(d+DensityHalf).
	densityHalf float64
	stats       Stats
}

// NewShardChannel creates a channel with the given hash seed. densityHalf
// sets the neighbor count at which collision loss reaches half its cap;
// it must be positive.
func NewShardChannel(seed uint64, params Params, densityHalf float64) (*ShardChannel, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if densityHalf <= 0 {
		return nil, fmt.Errorf("radio: densityHalf must be positive, got %v", densityHalf)
	}
	return &ShardChannel{seed: seed, params: params, densityHalf: densityHalf}, nil
}

// Params returns the channel configuration.
func (c *ShardChannel) Params() Params { return c.params }

// CollisionProb returns the load-dependent loss probability for a sender
// with the given neighbor density.
func (c *ShardChannel) CollisionProb(density int) float64 {
	d := float64(density)
	return c.params.MaxCollisionLoss * d / (d + c.densityHalf)
}

// NoteSent accounts one transmitted beacon of size bytes. The sender's
// owner shard calls this exactly once per beacon.
func (c *ShardChannel) NoteSent(size int) {
	c.stats.Sent++
	c.stats.BytesOnAir += uint64(size)
}

// Receive decides whether the beacon transmitted at tick by from reaches
// to over distance dist, with the sender seeing `density` neighbors, and
// updates the Delivered/LostRange/LostLoad counters. The decision reads
// nothing but its arguments and the channel seed: any shard computes the
// same verdict for the same reception.
//
//vcloudlint:hotpath one verdict per candidate reception per tick in the sharded world
func (c *ShardChannel) Receive(tick uint64, from, to NodeID, dist float64, density int) bool {
	uf, ut := uint64(uint32(from)), uint64(uint32(to))
	pRecv := c.params.ReceptionProb(dist)
	if sim.HashUnit(c.seed, drawFade, tick, uf, ut) >= pRecv {
		c.stats.LostRange++
		return false
	}
	if sim.HashUnit(c.seed, drawCollide, tick, uf, ut) < c.CollisionProb(density) {
		c.stats.LostLoad++
		return false
	}
	c.stats.Delivered++
	return true
}

// Stats returns a copy of the channel counters.
func (c *ShardChannel) Stats() Stats { return c.stats }

// Add merges per-shard channel counters into fleet totals. Integer sums
// commute, so the merged result is independent of shard count and order.
func (s Stats) Add(o Stats) Stats {
	s.Sent += o.Sent
	s.Delivered += o.Delivered
	s.LostRange += o.LostRange
	s.LostLoad += o.LostLoad
	s.BytesOnAir += o.BytesOnAir
	return s
}
