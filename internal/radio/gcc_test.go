package radio

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"vcloud/internal/sim"
)

// feedGroups drives an estimator with synthetic arrival groups: n groups
// spaced spacing apart in send time, where queueAt(i) gives the one-way
// queueing delay (ms) experienced by group i. Returns the estimator.
func feedGroups(e *BWEstimator, n int, spacing sim.Time, queueAt func(i int) float64) {
	base := 30 * time.Millisecond
	for i := 0; i < n; i++ {
		send := sim.Time(i) * spacing
		arrival := send + base + sim.Time(queueAt(i)*float64(time.Millisecond))
		e.OnAck(send, arrival, 1200)
	}
}

// Property (satellite c): the trendline slope sign tracks injected queue
// growth and drain.
func TestTrendlineSlopeSign(t *testing.T) {
	grow := NewBWEstimator(BWEConfig{MaxBps: 20e6})
	feedGroups(grow, 40, 10*time.Millisecond, func(i int) float64 { return float64(i) * 2 }) // queue builds 2 ms/group
	if grow.Trend() <= 0 {
		t.Errorf("trend under queue growth = %v, want > 0", grow.Trend())
	}

	drain := NewBWEstimator(BWEConfig{MaxBps: 20e6})
	feedGroups(drain, 40, 10*time.Millisecond, func(i int) float64 { return float64(80 - i*2) }) // queue drains 2 ms/group
	if drain.Trend() >= 0 {
		t.Errorf("trend under queue drain = %v, want < 0", drain.Trend())
	}

	flat := NewBWEstimator(BWEConfig{MaxBps: 20e6})
	feedGroups(flat, 40, 10*time.Millisecond, func(i int) float64 { return 5 })
	if flat.State() != "normal" {
		t.Errorf("steady queue detector state = %q, want normal", flat.State())
	}
}

// Property (satellite c): no feedback pattern — growth, drain, loss
// storms, silence — pushes the published estimate outside the configured
// channel bounds.
func TestEstimateWithinCapacity(t *testing.T) {
	cfg := BWEConfig{MinBps: 50e3, MaxBps: 8e6}
	e := NewBWEstimator(cfg)
	rng := rand.New(rand.NewSource(7))
	var send, arrival sim.Time
	check := func(step string) {
		if got := e.TargetBps(); got < cfg.MinBps || got > cfg.MaxBps {
			t.Fatalf("%s: estimate %v outside [%v, %v]", step, got, cfg.MinBps, cfg.MaxBps)
		}
	}
	check("initial")
	for i := 0; i < 5000; i++ {
		send += sim.Time(rng.Intn(30)+1) * time.Millisecond
		queue := sim.Time(rng.Intn(200)) * time.Millisecond
		if arrival < send {
			arrival = send
		}
		arrival += 30*time.Millisecond + queue
		switch rng.Intn(10) {
		case 0, 1, 2:
			e.OnLost(send)
		default:
			e.OnSent(send, 1500)
			e.OnAck(send, arrival, 1500)
		}
		check(fmt.Sprintf("step %d", i))
	}
	// A long loss-free, queue-free stretch must converge toward — but
	// never beyond — capacity.
	for i := 0; i < 2000; i++ {
		send += 10 * time.Millisecond
		e.OnAck(send, send+30*time.Millisecond, 1500)
		check(fmt.Sprintf("ramp %d", i))
	}
}

// Property (satellite c): two senders on identically-seeded kernels
// produce bit-identical estimate traces.
func TestEstimateTraceDeterminism(t *testing.T) {
	trace := func() []float64 {
		k := sim.NewKernel(99)
		p := DefaultUplinkParams()
		p.Contended = true
		p.BandwidthMbps = 2
		p.LossProb = 0.05
		u, err := NewUplink(k, p)
		if err != nil {
			t.Fatal(err)
		}
		s := u.NewSender(BWEConfig{})
		var out []float64
		tick := func() { out = append(out, s.EstimateBps(), s.LossRate()) }
		var send func()
		send = func() {
			s.RoundTrip(8000, 2000, nil)
			tick()
			if k.Now() < 20*time.Second {
				k.After(40*time.Millisecond, send)
			}
		}
		k.After(0, send)
		if err := k.Run(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// A contended uplink serializes concurrent transfers: the second of two
// simultaneous exchanges waits for the first's serialization time, and a
// backlog beyond MaxQueueDelay tail-drops into the Dropped counter.
func TestUplinkContention(t *testing.T) {
	k := sim.NewKernel(1)
	p := DefaultUplinkParams()
	p.Contended = true
	p.LossProb = 0
	p.JitterFrac = 0
	p.BandwidthMbps = 1 // 125 kB/s: big transfers make queueing visible
	p.MaxQueueDelay = 3 * time.Second
	u, err := NewUplink(k, p)
	if err != nil {
		t.Fatal(err)
	}
	var first, second sim.Time
	u.RoundTrip(62500, 62500, func() { first = k.Now() })  // 1 s serialization
	u.RoundTrip(62500, 62500, func() { second = k.Now() }) // queues behind it
	if err := k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if first < time.Second || first > 1100*time.Millisecond {
		t.Errorf("first transfer at %v, want ~1.06s", first)
	}
	if second < 2*time.Second || second > 2200*time.Millisecond {
		t.Errorf("second transfer at %v, want ~2.06s (queued behind first)", second)
	}

	// Saturate past MaxQueueDelay: the tail must drop, not buffer.
	for i := 0; i < 10; i++ {
		u.RoundTrip(62500, 62500, nil)
	}
	if err := k.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	_, _, _, dropped := u.Counters()
	if dropped == 0 {
		t.Error("no tail drops despite queue past MaxQueueDelay")
	}
}

// Regression (satellite a): a message in flight across a transient
// outage must die even when the outage heals before the delivery time —
// a flip-flop fault plan used to let it deliver as if nothing happened.
func TestUplinkFlipFlopOutage(t *testing.T) {
	k := sim.NewKernel(1)
	p := DefaultUplinkParams()
	p.LossProb = 0
	p.JitterFrac = 0
	u, err := NewUplink(k, p)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	u.RoundTrip(1000, 1000, func() { ran = true }) // delivers ~60.8 ms out
	// Flip-flop well inside the flight window.
	k.After(10*time.Millisecond, func() { u.SetAvailable(false) })
	k.After(20*time.Millisecond, func() { u.SetAvailable(true) })
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("delivery survived a mid-flight outage that healed before arrival")
	}
	sent, delivered, lost, dropped := u.Counters()
	if sent != 1 || delivered != 0 || lost != 0 || dropped != 1 {
		t.Errorf("counters = %d/%d/%d/%d, want 1/0/0/1", sent, delivered, lost, dropped)
	}

	// Control: a message launched after the heal delivers normally.
	ran = false
	u.RoundTrip(1000, 1000, func() { ran = true })
	if err := k.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("post-heal message did not deliver")
	}
}
