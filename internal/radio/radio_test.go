package radio

import (
	"testing"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/sim"
)

func testBounds() geo.Rect { return geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 5000, Y: 5000}) }

func newTestMedium(t testing.TB, k *sim.Kernel) *Medium {
	t.Helper()
	m, err := NewMedium(k, testBounds(), DefaultParams())
	if err != nil {
		t.Fatalf("NewMedium: %v", err)
	}
	return m
}

func TestParamsValidation(t *testing.T) {
	k := sim.NewKernel(1)
	bad := []Params{
		{RangeMax: 0, RangeReliable: 1, BitrateMbps: 6, LoadWindow: time.Millisecond},
		{RangeMax: 300, RangeReliable: 0, BitrateMbps: 6, LoadWindow: time.Millisecond},
		{RangeMax: 300, RangeReliable: 400, BitrateMbps: 6, LoadWindow: time.Millisecond},
		{RangeMax: 300, RangeReliable: 150, BitrateMbps: 0, LoadWindow: time.Millisecond},
		{RangeMax: 300, RangeReliable: 150, BitrateMbps: 6, LoadWindow: 0},
	}
	for i, p := range bad {
		if _, err := NewMedium(k, testBounds(), p); err == nil {
			t.Errorf("params %d should be rejected", i)
		}
	}
	if _, err := NewMedium(nil, testBounds(), DefaultParams()); err == nil {
		t.Error("nil kernel should be rejected")
	}
}

func TestUnicastWithinReliableRangeDelivers(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedium(t, k)
	var got []Frame
	m.UpdatePosition(1, geo.Point{X: 100, Y: 100})
	m.UpdatePosition(2, geo.Point{X: 180, Y: 100}) // 80 m apart
	m.Register(2, func(f Frame) { got = append(got, f) })
	m.Send(1, 2, 200, "hello")
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(got))
	}
	f := got[0]
	if f.From != 1 || f.To != 2 || f.Payload != "hello" || f.Size != 200 {
		t.Errorf("frame = %+v", f)
	}
	st := m.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeliveryHasTransmissionDelay(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedium(t, k)
	var deliveredAt sim.Time
	m.UpdatePosition(1, geo.Point{X: 100, Y: 100})
	m.UpdatePosition(2, geo.Point{X: 150, Y: 100})
	m.Register(2, func(f Frame) { deliveredAt = k.Now() })
	m.Send(1, 2, 6000, nil) // 6000 B at 6 Mbps = 8 ms
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if deliveredAt < 8*time.Millisecond {
		t.Errorf("delivered at %v, want >= 8ms tx delay", deliveredAt)
	}
	if deliveredAt > 9*time.Millisecond {
		t.Errorf("delivered at %v, want ~8ms", deliveredAt)
	}
}

func TestOutOfRangeNeverDelivers(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedium(t, k)
	delivered := false
	m.UpdatePosition(1, geo.Point{X: 0, Y: 0})
	m.UpdatePosition(2, geo.Point{X: 1000, Y: 0})
	m.Register(2, func(Frame) { delivered = true })
	for i := 0; i < 50; i++ {
		m.Send(1, 2, 100, nil)
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("frame delivered beyond RangeMax")
	}
	if st := m.Stats(); st.LostRange != 50 {
		t.Errorf("LostRange = %d, want 50", st.LostRange)
	}
}

func TestFadeZoneIsProbabilistic(t *testing.T) {
	k := sim.NewKernel(7)
	m := newTestMedium(t, k)
	count := 0
	m.UpdatePosition(1, geo.Point{X: 0, Y: 100})
	m.UpdatePosition(2, geo.Point{X: 225, Y: 100}) // midway in fade zone
	m.Register(2, func(Frame) { count++ })
	const n = 400
	for i := 0; i < n; i++ {
		m.Send(1, 2, 100, nil)
	}
	if err := k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Per-attempt p = (1-0.5)^2 = 0.25 at the fade-zone midpoint; with
	// the default 3 unicast retries, p_eff = 1-(1-0.25)^4 ≈ 0.68.
	if count < n/2 || count > n*4/5 {
		t.Errorf("fade-zone deliveries = %d/%d, want around 68%%", count, n)
	}
}

func TestBroadcastReachesAllInRange(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedium(t, k)
	m.UpdatePosition(1, geo.Point{X: 1000, Y: 1000})
	received := map[NodeID]bool{}
	for i := NodeID(2); i <= 6; i++ {
		i := i
		m.Register(i, func(Frame) { received[i] = true })
	}
	m.UpdatePosition(2, geo.Point{X: 1050, Y: 1000}) // in range
	m.UpdatePosition(3, geo.Point{X: 1100, Y: 1000}) // in range
	m.UpdatePosition(4, geo.Point{X: 2000, Y: 1000}) // out of range
	m.UpdatePosition(5, geo.Point{X: 1000, Y: 1120}) // in range
	m.UpdatePosition(6, geo.Point{X: 990, Y: 995})   // in range
	m.Send(1, Broadcast, 100, "beacon")
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	for _, id := range []NodeID{2, 3, 5, 6} {
		if !received[id] {
			t.Errorf("node %d missed broadcast", id)
		}
	}
	if received[4] {
		t.Error("out-of-range node received broadcast")
	}
}

func TestSenderDoesNotHearItself(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedium(t, k)
	m.UpdatePosition(1, geo.Point{X: 100, Y: 100})
	heard := false
	m.Register(1, func(Frame) { heard = true })
	m.Send(1, Broadcast, 100, nil)
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if heard {
		t.Error("sender heard its own broadcast")
	}
}

func TestUnregisteredNodeGetsNothing(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedium(t, k)
	m.UpdatePosition(1, geo.Point{X: 100, Y: 100})
	m.UpdatePosition(2, geo.Point{X: 150, Y: 100})
	// Node 2 has no handler; Send must not panic.
	m.Send(1, 2, 100, nil)
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Delivered != 0 {
		t.Errorf("Delivered = %d, want 0", st.Delivered)
	}
}

func TestSendFromUnknownPositionIsNoop(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedium(t, k)
	m.Send(99, Broadcast, 100, nil)
	if st := m.Stats(); st.Sent != 0 {
		t.Errorf("Sent = %d, want 0", st.Sent)
	}
}

func TestUnregisterRemovesNode(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedium(t, k)
	m.UpdatePosition(1, geo.Point{X: 100, Y: 100})
	m.UpdatePosition(2, geo.Point{X: 150, Y: 100})
	got := 0
	m.Register(2, func(Frame) { got++ })
	m.Unregister(2)
	m.Send(1, 2, 100, nil)
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Error("unregistered node received frame")
	}
	if _, ok := m.Position(2); ok {
		t.Error("unregistered node still has position")
	}
}

func TestHighLoadCausesCollisionLoss(t *testing.T) {
	k := sim.NewKernel(3)
	m := newTestMedium(t, k)
	m.UpdatePosition(1, geo.Point{X: 100, Y: 100})
	m.UpdatePosition(2, geo.Point{X: 120, Y: 100})
	delivered := 0
	m.Register(2, func(Frame) { delivered++ })
	// Saturate: 200 × 1500 B back-to-back at the same instant.
	const n = 200
	for i := 0; i < n; i++ {
		m.Send(1, 2, 1500, nil)
	}
	if err := k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.LostLoad == 0 {
		t.Error("saturated channel should lose frames to collisions")
	}
	if delivered == n {
		t.Error("all frames delivered under saturation")
	}
}

func TestLightLoadDeliversNearlyAll(t *testing.T) {
	k := sim.NewKernel(3)
	m := newTestMedium(t, k)
	m.UpdatePosition(1, geo.Point{X: 100, Y: 100})
	m.UpdatePosition(2, geo.Point{X: 120, Y: 100})
	delivered := 0
	m.Register(2, func(Frame) { delivered++ })
	// 50 small beacons spaced 100 ms apart: negligible load.
	for i := 0; i < 50; i++ {
		i := i
		k.At(sim.Time(i)*100*time.Millisecond, func() { m.Send(1, 2, 100, i) })
	}
	if err := k.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if delivered < 48 {
		t.Errorf("light-load deliveries = %d/50", delivered)
	}
}

func TestBlockedFilter(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedium(t, k)
	m.UpdatePosition(1, geo.Point{X: 100, Y: 100})
	m.UpdatePosition(2, geo.Point{X: 150, Y: 100})
	got := 0
	m.Register(2, func(Frame) { got++ })
	m.SetBlocked(func(from, to NodeID) bool { return from == 1 })
	m.Send(1, 2, 100, nil)
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Error("blocked frame delivered")
	}
	m.SetBlocked(nil)
	m.Send(1, 2, 100, nil)
	if err := k.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Error("frame after unblock not delivered")
	}
}

func TestNeighbors(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedium(t, k)
	m.UpdatePosition(1, geo.Point{X: 1000, Y: 1000})
	m.UpdatePosition(2, geo.Point{X: 1100, Y: 1000})
	m.UpdatePosition(3, geo.Point{X: 3000, Y: 3000})
	nbrs := m.Neighbors(nil, 1)
	if len(nbrs) != 1 || nbrs[0] != 2 {
		t.Errorf("Neighbors = %v, want [2]", nbrs)
	}
	if got := m.Neighbors(nil, 99); len(got) != 0 {
		t.Errorf("Neighbors of unknown node = %v", got)
	}
}

func TestUplinkValidation(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := NewUplink(nil, DefaultUplinkParams()); err == nil {
		t.Error("nil kernel")
	}
	p := DefaultUplinkParams()
	p.BaseRTT = 0
	if _, err := NewUplink(k, p); err == nil {
		t.Error("zero RTT")
	}
	p = DefaultUplinkParams()
	p.BandwidthMbps = 0
	if _, err := NewUplink(k, p); err == nil {
		t.Error("zero bandwidth")
	}
	p = DefaultUplinkParams()
	p.LossProb = 1
	if _, err := NewUplink(k, p); err == nil {
		t.Error("loss prob 1")
	}
}

func TestUplinkRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	p := DefaultUplinkParams()
	p.LossProb = 0
	p.JitterFrac = 0
	u, err := NewUplink(k, p)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	if !u.RoundTrip(1000, 1000, func() { doneAt = k.Now() }) {
		t.Fatal("RoundTrip refused on healthy uplink")
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	// 60 ms RTT + 16000 bits / 20 Mbps = 60.8 ms.
	if doneAt < 60*time.Millisecond || doneAt > 62*time.Millisecond {
		t.Errorf("round trip at %v, want ~60.8ms", doneAt)
	}
	sent, delivered, lost, dropped := u.Counters()
	if sent != 1 || delivered != 1 || lost != 0 || dropped != 0 {
		t.Errorf("counters = %d/%d/%d/%d", sent, delivered, lost, dropped)
	}
}

func TestUplinkOutage(t *testing.T) {
	k := sim.NewKernel(1)
	u, err := NewUplink(k, DefaultUplinkParams())
	if err != nil {
		t.Fatal(err)
	}
	u.SetAvailable(false)
	if u.Available() {
		t.Error("Available after SetAvailable(false)")
	}
	if u.RoundTrip(100, 100, func() { t.Error("callback ran during outage") }) {
		t.Error("RoundTrip should report false during outage")
	}
	// Outage mid-flight: start healthy, kill before delivery.
	u.SetAvailable(true)
	ran := false
	u.RoundTrip(100, 100, func() { ran = true })
	u.SetAvailable(false)
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("callback ran despite mid-flight outage")
	}
}

func TestUplinkLoss(t *testing.T) {
	k := sim.NewKernel(5)
	p := DefaultUplinkParams()
	p.LossProb = 0.5
	p.JitterFrac = 0
	u, err := NewUplink(k, p)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 200; i++ {
		u.RoundTrip(10, 10, func() { done++ })
	}
	if err := k.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if done < 60 || done > 140 {
		t.Errorf("deliveries with 50%% loss = %d/200", done)
	}
}

// TestBroadcastAllocs guards the zero-allocation broadcast path: once the
// medium's scratch buffers and delivery freelist are warm, a broadcast to
// N registered neighbors must not allocate at all.
func TestBroadcastAllocs(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedium(t, k)
	for i := 0; i < 20; i++ {
		id := NodeID(i)
		m.UpdatePosition(id, geo.Point{X: float64(1000 + i*10), Y: 1000})
		m.Register(id, func(Frame) {})
	}
	// Warm the scratch buffers, delivery freelist and kernel event pool.
	for i := 0; i < 10; i++ {
		m.Send(0, Broadcast, 100, nil)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		m.Send(0, Broadcast, 100, nil)
		k.Run(0)
	})
	if allocs != 0 {
		t.Errorf("warm broadcast allocated %.1f times per Send+Run, want 0", allocs)
	}
}

func BenchmarkBroadcast100Nodes(b *testing.B) {
	k := sim.NewKernel(1)
	m, err := NewMedium(k, testBounds(), DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		id := NodeID(i)
		m.UpdatePosition(id, geo.Point{X: float64(1000 + i*5), Y: 1000})
		m.Register(id, func(Frame) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(0, Broadcast, 300, nil)
		k.Run(0)
	}
}
