package radio

import "testing"

func newTestChannel(t *testing.T, seed uint64) *ShardChannel {
	t.Helper()
	c, err := NewShardChannel(seed, DefaultParams(), 20)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestShardChannelPure checks the reception verdict is a pure function of
// (seed, tick, from, to, dist, density): two independent channel
// instances agree on every decision.
func TestShardChannelPure(t *testing.T) {
	a := newTestChannel(t, 77)
	b := newTestChannel(t, 77)
	for tick := uint64(0); tick < 300; tick++ {
		from, to := NodeID(tick%17), NodeID(tick%23+17)
		dist := float64(tick%350) + 0.5
		if a.Receive(tick, from, to, dist, int(tick%40)) != b.Receive(tick, from, to, dist, int(tick%40)) {
			t.Fatalf("verdict diverged at tick %d", tick)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	c := newTestChannel(t, 78)
	diff := 0
	for tick := uint64(0); tick < 300; tick++ {
		dist := 200.0
		if a.Receive(tick, 1, 2, dist, 10) != c.Receive(tick, 1, 2, dist, 10) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed change did not affect any verdict")
	}
}

// TestShardChannelDistanceCutoff checks the two hard distance regimes:
// certain inside RangeReliable at zero load, impossible beyond RangeMax.
func TestShardChannelDistanceCutoff(t *testing.T) {
	c := newTestChannel(t, 5)
	p := c.Params()
	for tick := uint64(0); tick < 200; tick++ {
		if !c.Receive(tick, 1, 2, p.RangeReliable-1, 0) {
			t.Fatalf("reliable-range beacon lost at tick %d under zero load", tick)
		}
		if c.Receive(tick, 1, 2, p.RangeMax+1, 0) {
			t.Fatalf("out-of-range beacon delivered at tick %d", tick)
		}
	}
	s := c.Stats()
	if s.Delivered != 200 || s.LostRange != 200 || s.LostLoad != 0 {
		t.Fatalf("stats = %+v, want 200 delivered / 200 range-lost", s)
	}
}

// TestShardChannelLoadLoss checks collision loss grows with sender
// density and stays under the configured cap.
func TestShardChannelLoadLoss(t *testing.T) {
	c := newTestChannel(t, 6)
	if c.CollisionProb(0) != 0 {
		t.Fatalf("CollisionProb(0) = %v", c.CollisionProb(0))
	}
	if got, cap := c.CollisionProb(20), c.Params().MaxCollisionLoss/2; got != cap {
		t.Fatalf("CollisionProb(densityHalf) = %v, want %v", got, cap)
	}
	lossAt := func(density int) int {
		ch := newTestChannel(t, 6)
		for tick := uint64(0); tick < 2000; tick++ {
			ch.Receive(tick, 1, 2, 50, density)
		}
		return int(ch.Stats().LostLoad)
	}
	low, high := lossAt(2), lossAt(200)
	if low >= high {
		t.Fatalf("collision loss not increasing with density: %d at d=2 vs %d at d=200", low, high)
	}
	if frac := float64(high) / 2000; frac > c.Params().MaxCollisionLoss {
		t.Fatalf("loss fraction %v exceeds cap %v", frac, c.Params().MaxCollisionLoss)
	}
}

// TestShardStatsAdd checks per-shard counter merging.
func TestShardStatsAdd(t *testing.T) {
	a := Stats{Sent: 1, Delivered: 2, LostRange: 3, LostLoad: 4, BytesOnAir: 5}
	b := Stats{Sent: 10, Delivered: 20, LostRange: 30, LostLoad: 40, BytesOnAir: 50}
	want := Stats{Sent: 11, Delivered: 22, LostRange: 33, LostLoad: 44, BytesOnAir: 55}
	if got := a.Add(b); got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
	if got := b.Add(a); got != want {
		t.Fatalf("Add not commutative: %+v", got)
	}
}
