// Package scenario wires the simulation substrates together: a kernel, a
// radio medium, a mobility manager, and one vnet node per vehicle (plus
// optional road-side units). Every experiment, example and integration
// test builds on this package instead of repeating the plumbing.
package scenario

import (
	"fmt"
	"sort"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/mobility"
	"vcloud/internal/radio"
	"vcloud/internal/roadnet"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// RSUBase is the address offset for road-side units; vehicle addresses
// equal their mobility.VehicleID (starting at 0).
const RSUBase vnet.Addr = 1 << 20

// IsRSU reports whether an address belongs to a road-side unit.
func IsRSU(a vnet.Addr) bool { return a >= RSUBase }

// Spec configures a scenario.
type Spec struct {
	// Seed drives all randomness.
	Seed int64
	// Network is the road network; required.
	Network *roadnet.Network
	// NumVehicles are spawned at random edge positions.
	NumVehicles int
	// Radio configures the medium; zero value means radio.DefaultParams.
	Radio radio.Params
	// BeaconPeriod for all nodes; default 500 ms.
	BeaconPeriod sim.Time
	// MobilityTick is the kinematics timestep; default 100 ms.
	MobilityTick sim.Time
	// Profile returns the profile for the i-th vehicle; nil means
	// mobility.DefaultProfile for all.
	Profile func(i int) mobility.Profile
	// Parked makes all vehicles stationary (parking-lot scenarios).
	Parked bool
}

// Scenario is a wired simulation.
type Scenario struct {
	Kernel   *sim.Kernel
	Medium   *radio.Medium
	Mobility *mobility.Manager
	Network  *roadnet.Network
	// Nodes maps vehicle IDs to their vnet endpoints.
	Nodes map[mobility.VehicleID]*vnet.Node
	// RSUs lists road-side unit endpoints in creation order.
	RSUs []*vnet.Node

	spec    Spec
	nextRSU vnet.Addr
	started bool
}

// New builds (but does not start) a scenario.
func New(spec Spec) (*Scenario, error) {
	if spec.Network == nil {
		return nil, fmt.Errorf("scenario: network is required")
	}
	if spec.NumVehicles < 0 {
		return nil, fmt.Errorf("scenario: NumVehicles must be >= 0, got %d", spec.NumVehicles)
	}
	if spec.Radio.RangeMax == 0 {
		spec.Radio = radio.DefaultParams()
	}
	if spec.BeaconPeriod <= 0 {
		spec.BeaconPeriod = 500 * time.Millisecond
	}
	if spec.MobilityTick <= 0 {
		spec.MobilityTick = 100 * time.Millisecond
	}

	kernel := sim.NewKernel(spec.Seed)
	medium, err := radio.NewMedium(kernel, spec.Network.Bounds(), spec.Radio)
	if err != nil {
		return nil, err
	}
	mobRNG := kernel.NewStream("mobility")
	mob, err := mobility.NewManager(spec.Network, spec.Radio.RangeMax, mobRNG.Intn)
	if err != nil {
		return nil, err
	}
	s := &Scenario{
		Kernel:   kernel,
		Medium:   medium,
		Mobility: mob,
		Network:  spec.Network,
		Nodes:    make(map[mobility.VehicleID]*vnet.Node),
		spec:     spec,
		nextRSU:  RSUBase,
	}

	placeRNG := kernel.NewStream("placement")
	for i := 0; i < spec.NumVehicles; i++ {
		profile := mobility.DefaultProfile()
		if spec.Profile != nil {
			profile = spec.Profile(i)
		}
		e := roadnet.EdgeID(placeRNG.Intn(spec.Network.NumEdges()))
		off := placeRNG.Float64() * spec.Network.Edge(e).Length
		var id mobility.VehicleID
		if spec.Parked {
			id, err = mob.AddParkedVehicle(e, off, profile)
		} else {
			id, err = mob.AddVehicle(e, off, profile)
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: placing vehicle %d: %w", i, err)
		}
		if err := s.attachNode(id); err != nil {
			return nil, err
		}
	}

	// Vehicles that depart must leave the radio medium too.
	mob.OnDeparture(func(id mobility.VehicleID) {
		if n, ok := s.Nodes[id]; ok {
			n.Stop()
			delete(s.Nodes, id)
		}
	})
	return s, nil
}

func (s *Scenario) attachNode(id mobility.VehicleID) error {
	addr := vnet.Addr(id)
	cfg := vnet.Config{BeaconPeriod: s.spec.BeaconPeriod}
	node, err := vnet.NewNode(s.Kernel, s.Medium, addr, cfg, func() (geo.Point, float64, float64) {
		st, ok := s.Mobility.State(id)
		if !ok {
			return geo.Point{}, 0, 0
		}
		return st.Pos, st.Speed, st.Heading
	})
	if err != nil {
		return err
	}
	s.Nodes[id] = node
	if st, ok := s.Mobility.State(id); ok {
		s.Medium.UpdatePosition(addr, st.Pos)
	}
	return nil
}

// AddVehicle spawns one more vehicle mid-run and returns its ID.
func (s *Scenario) AddVehicle(e roadnet.EdgeID, off float64, profile mobility.Profile) (mobility.VehicleID, error) {
	id, err := s.Mobility.AddVehicle(e, off, profile)
	if err != nil {
		return 0, err
	}
	if err := s.attachNode(id); err != nil {
		return 0, err
	}
	if s.started {
		if err := s.Nodes[id].Start(); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// AddRSU places a road-side unit at pos and returns its node.
func (s *Scenario) AddRSU(pos geo.Point) (*vnet.Node, error) {
	addr := s.nextRSU
	s.nextRSU++
	cfg := vnet.Config{BeaconPeriod: s.spec.BeaconPeriod}
	node, err := vnet.NewNode(s.Kernel, s.Medium, addr, cfg, func() (geo.Point, float64, float64) {
		return pos, 0, 0
	})
	if err != nil {
		return nil, err
	}
	s.Medium.UpdatePosition(addr, pos)
	s.RSUs = append(s.RSUs, node)
	if s.started {
		if err := node.Start(); err != nil {
			return nil, err
		}
	}
	return node, nil
}

// Start begins mobility ticking and beaconing. Call once before Run.
func (s *Scenario) Start() error {
	if s.started {
		return fmt.Errorf("scenario: already started")
	}
	s.started = true
	dt := s.spec.MobilityTick.Seconds()
	if _, err := s.Kernel.Every(s.spec.MobilityTick, func() {
		s.Mobility.Step(dt)
		// Push fresh positions into the radio medium.
		for id := range s.Nodes {
			if st, ok := s.Mobility.State(id); ok {
				s.Medium.UpdatePosition(vnet.Addr(id), st.Pos)
			}
		}
	}); err != nil {
		return err
	}
	// Start nodes in address order: ticker creation order decides beacon
	// firing order at equal timestamps, which must not depend on map
	// iteration for runs to be reproducible.
	ids := s.sortedVehicleIDs()
	for _, id := range ids {
		if err := s.Nodes[id].Start(); err != nil {
			return err
		}
	}
	for _, n := range s.RSUs {
		if err := n.Start(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Scenario) sortedVehicleIDs() []mobility.VehicleID {
	ids := make([]mobility.VehicleID, 0, len(s.Nodes))
	for id := range s.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Run advances the simulation to the given horizon.
func (s *Scenario) Run(horizon sim.Time) error {
	return s.Kernel.Run(horizon)
}

// RunFor advances the simulation by d from now.
func (s *Scenario) RunFor(d sim.Time) error {
	return s.Kernel.Run(s.Kernel.Now() + d)
}

// VehicleIDs returns all live vehicle IDs in ascending order. The order
// is load-bearing: callers iterate it to create protocol agents, and
// creation order decides event ordering at equal timestamps — it must
// not depend on map iteration for runs to reproduce.
func (s *Scenario) VehicleIDs() []mobility.VehicleID {
	ids := s.Mobility.IDs(nil)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Node returns the vnet node of a vehicle.
func (s *Scenario) Node(id mobility.VehicleID) (*vnet.Node, bool) {
	n, ok := s.Nodes[id]
	return n, ok
}
