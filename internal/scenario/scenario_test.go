package scenario

import (
	"testing"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/mobility"
	"vcloud/internal/radio"
	"vcloud/internal/roadnet"
)

func gridSpec(t testing.TB, vehicles int) Spec {
	t.Helper()
	net, err := roadnet.Grid(roadnet.GridSpec{Rows: 3, Cols: 3, Spacing: 200, SpeedLimit: 14, Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	return Spec{Seed: 1, Network: net, NumVehicles: vehicles}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Spec{}); err == nil {
		t.Error("missing network should error")
	}
	s := gridSpec(t, 0)
	s.NumVehicles = -1
	if _, err := New(s); err == nil {
		t.Error("negative vehicles should error")
	}
}

func TestScenarioWiring(t *testing.T) {
	s, err := New(gridSpec(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) != 20 || s.Mobility.NumVehicles() != 20 {
		t.Fatalf("nodes=%d vehicles=%d", len(s.Nodes), s.Mobility.NumVehicles())
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Error("double Start should error")
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// After 5 s of beaconing, most vehicles should have neighbors.
	withNeighbors := 0
	for _, id := range s.VehicleIDs() {
		n, ok := s.Node(id)
		if !ok {
			t.Fatalf("node for %d missing", id)
		}
		if n.NumNeighbors() > 0 {
			withNeighbors++
		}
	}
	if withNeighbors < 10 {
		t.Errorf("only %d/20 vehicles have neighbors", withNeighbors)
	}
	// Radio positions must track mobility.
	for _, id := range s.VehicleIDs() {
		st, _ := s.Mobility.State(id)
		p, ok := s.Medium.Position(radio.NodeID(id))
		if !ok {
			t.Fatalf("vehicle %d missing from medium", id)
		}
		if p.Dist(st.Pos) > 20 { // at most one tick of drift
			t.Errorf("vehicle %d medium pos %v vs mobility %v", id, p, st.Pos)
		}
	}
}

func TestDepartureDetachesNode(t *testing.T) {
	s, err := New(gridSpec(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	ids := s.VehicleIDs()
	s.Mobility.Remove(ids[0])
	if _, ok := s.Node(ids[0]); ok {
		t.Error("departed vehicle still has a node")
	}
	if len(s.Nodes) != 4 {
		t.Errorf("nodes = %d, want 4", len(s.Nodes))
	}
}

func TestAddRSUAndMidRunVehicle(t *testing.T) {
	s, err := New(gridSpec(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	rsu, err := s.AddRSU(geo.Point{X: 200, Y: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !IsRSU(rsu.Addr()) {
		t.Errorf("RSU addr %d not in RSU space", rsu.Addr())
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// RSU added mid-run should also beacon; place it at the origin where
	// the mid-run vehicle spawns so they are within reliable range.
	rsu2, err := s.AddRSU(geo.Point{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.AddVehicle(0, 0, mobility.DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	n, ok := s.Node(id)
	if !ok {
		t.Fatal("mid-run vehicle has no node")
	}
	if n.NumNeighbors() == 0 {
		t.Error("mid-run vehicle never heard a beacon")
	}
	if rsu2.NumNeighbors() == 0 {
		t.Error("mid-run RSU has no neighbors")
	}
}

func TestParkedScenario(t *testing.T) {
	spec := gridSpec(t, 10)
	spec.Parked = true
	s, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	before := map[mobility.VehicleID]geo.Point{}
	for _, id := range s.VehicleIDs() {
		st, _ := s.Mobility.State(id)
		before[id] = st.Pos
	}
	if err := s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for id, p := range before {
		st, _ := s.Mobility.State(id)
		if st.Pos != p {
			t.Errorf("parked vehicle %d moved", id)
		}
	}
}

func TestDeterministicScenario(t *testing.T) {
	run := func() uint64 {
		s, err := New(gridSpec(t, 15))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		return s.Medium.Stats().Delivered
	}
	if a, b := run(), run(); a != b {
		t.Errorf("scenario not deterministic: %d vs %d deliveries", a, b)
	}
}
