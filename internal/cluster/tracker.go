package cluster

import (
	"time"

	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// Tracker accumulates the cluster-stability metrics experiment E3
// reports: head changes, affiliation changes, and time spent clustered.
type Tracker struct {
	headChanges  uint64 // a node's head identity changed (incl. role flips)
	roleChanges  uint64 // any state transition
	becameHead   uint64
	lastHead     map[vnet.Addr]vnet.Addr
	clusteredAt  map[vnet.Addr]sim.Time // when the node last became clustered
	clusteredFor map[vnet.Addr]sim.Time // accumulated clustered duration
	unclustered  map[vnet.Addr]bool
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		lastHead:     make(map[vnet.Addr]vnet.Addr),
		clusteredAt:  make(map[vnet.Addr]sim.Time),
		clusteredFor: make(map[vnet.Addr]sim.Time),
		unclustered:  make(map[vnet.Addr]bool),
	}
}

// Record notes a state transition of node addr at virtual time now.
func (t *Tracker) Record(now sim.Time, addr vnet.Addr, old, new State) {
	t.roleChanges++
	if new.Role == Head && old.Role != Head {
		t.becameHead++
	}
	if prev, ok := t.lastHead[addr]; ok && prev != new.Head {
		t.headChanges++
	}
	t.lastHead[addr] = new.Head

	wasClustered := old.Role == Head || old.Role == Member
	isClustered := new.Role == Head || new.Role == Member
	switch {
	case !wasClustered && isClustered:
		t.clusteredAt[addr] = now
	case wasClustered && !isClustered:
		if start, ok := t.clusteredAt[addr]; ok {
			t.clusteredFor[addr] += now - start
			delete(t.clusteredAt, addr)
		}
	}
}

// Finish closes all open clustered intervals at time now. Call once at the
// end of a run before reading durations.
func (t *Tracker) Finish(now sim.Time) {
	for addr, start := range t.clusteredAt {
		t.clusteredFor[addr] += now - start
		delete(t.clusteredAt, addr)
	}
}

// HeadChanges returns the number of head re-affiliations observed.
func (t *Tracker) HeadChanges() uint64 { return t.headChanges }

// RoleChanges returns the total number of state transitions.
func (t *Tracker) RoleChanges() uint64 { return t.roleChanges }

// BecameHead returns how many head promotions occurred.
func (t *Tracker) BecameHead() uint64 { return t.becameHead }

// MeanClusteredSeconds returns the average per-node clustered time in
// seconds across all nodes that were ever clustered.
func (t *Tracker) MeanClusteredSeconds() float64 {
	if len(t.clusteredFor) == 0 {
		return 0
	}
	var total sim.Time
	for _, d := range t.clusteredFor {
		total += d
	}
	return total.Seconds() / float64(len(t.clusteredFor))
}

// HeadChangesPerNodeMinute normalizes head churn by node count and run
// length.
func (t *Tracker) HeadChangesPerNodeMinute(nodes int, runFor sim.Time) float64 {
	if nodes == 0 || runFor <= 0 {
		return 0
	}
	minutes := float64(runFor) / float64(60*time.Second)
	return float64(t.headChanges) / float64(nodes) / minutes
}
