package cluster_test

import (
	"testing"
	"time"

	"vcloud/internal/cluster"
	"vcloud/internal/mobility"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
)

// buildClustered wires a scenario where every vehicle runs the given
// clustering algorithm, and returns the runners plus tracker.
func buildClustered(t testing.TB, seed int64, vehicles int, algo cluster.Algorithm) (*scenario.Scenario, map[mobility.VehicleID]*cluster.Runner, *cluster.Tracker) {
	t.Helper()
	net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 3000, Segments: 3, SpeedLimit: 30, Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.New(scenario.Spec{Seed: seed, Network: net, NumVehicles: vehicles})
	if err != nil {
		t.Fatal(err)
	}
	tracker := cluster.NewTracker()
	runners := make(map[mobility.VehicleID]*cluster.Runner, vehicles)
	for _, id := range s.VehicleIDs() {
		node, _ := s.Node(id)
		r, err := cluster.NewRunner(node, algo, time.Second, tracker)
		if err != nil {
			t.Fatal(err)
		}
		runners[id] = r
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s, runners, tracker
}

func TestClustersFormOnHighway(t *testing.T) {
	for _, algo := range []cluster.Algorithm{
		cluster.LowestID{},
		cluster.MobilitySimilarity{},
		cluster.PassiveMultiHop{MaxHops: 2},
	} {
		t.Run(algo.Name(), func(t *testing.T) {
			s, runners, _ := buildClustered(t, 7, 30, algo)
			if err := s.RunFor(30 * time.Second); err != nil {
				t.Fatal(err)
			}
			heads, members, undecided := 0, 0, 0
			for _, r := range runners {
				switch r.State().Role {
				case cluster.Head:
					heads++
				case cluster.Member:
					members++
				default:
					undecided++
				}
			}
			if heads == 0 {
				t.Fatal("no cluster heads formed")
			}
			if members == 0 {
				t.Fatal("no members affiliated")
			}
			clustered := heads + members
			if clustered < 30*7/10 {
				t.Errorf("only %d/30 vehicles clustered (heads=%d members=%d undecided=%d)",
					clustered, heads, members, undecided)
			}
			// Members must mostly point at real, live heads (eventual
			// coherence: some pointers are stale mid-churn, especially
			// under lowest-id, which re-elects constantly — exactly the
			// instability E3 quantifies).
			stale := 0
			for _, r := range runners {
				st := r.State()
				if st.Role != cluster.Member {
					continue
				}
				hr, ok := runners[mobility.VehicleID(st.Head)]
				if !ok || hr.State().Role != cluster.Head {
					stale++
				}
			}
			allowed := members / 3
			if algo.Name() == "lowest-id" {
				allowed = members / 2
			}
			if stale > allowed {
				t.Errorf("%d/%d members point at non-heads", stale, members)
			}
		})
	}
}

func TestMobilityClusteringMoreStableThanLowestID(t *testing.T) {
	// The E3 claim in miniature: on a highway with opposing traffic,
	// lowest-ID re-elects whenever a low-address vehicle passes by in the
	// opposite direction, while mobility-aware clustering keeps heads
	// aligned with their pack. Aggregate over seeds to avoid flakiness.
	var lowChanges, mobChanges uint64
	for seed := int64(1); seed <= 3; seed++ {
		s1, _, tr1 := buildClustered(t, seed, 40, cluster.LowestID{})
		if err := s1.RunFor(60 * time.Second); err != nil {
			t.Fatal(err)
		}
		tr1.Finish(s1.Kernel.Now())
		lowChanges += tr1.HeadChanges()

		s2, _, tr2 := buildClustered(t, seed, 40, cluster.MobilitySimilarity{})
		if err := s2.RunFor(60 * time.Second); err != nil {
			t.Fatal(err)
		}
		tr2.Finish(s2.Kernel.Now())
		mobChanges += tr2.HeadChanges()
	}
	if mobChanges >= lowChanges {
		t.Errorf("mobility clustering (%d head changes) should be more stable than lowest-id (%d)",
			mobChanges, lowChanges)
	}
}

func TestPMCBuildsMultiHopClusters(t *testing.T) {
	s, runners, _ := buildClustered(t, 11, 40, cluster.PassiveMultiHop{MaxHops: 3})
	if err := s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	maxHops := 0
	for _, r := range runners {
		st := r.State()
		if st.Role == cluster.Member && st.Hops > maxHops {
			maxHops = st.Hops
		}
		if st.Role == cluster.Member && st.Hops > 3 {
			t.Errorf("member at %d hops exceeds N=3", st.Hops)
		}
	}
	if maxHops < 2 {
		t.Errorf("PMC should build multi-hop clusters, max observed hops = %d", maxHops)
	}
}

func TestRunnerValidationAndStop(t *testing.T) {
	net, err := roadnet.Grid(roadnet.GridSpec{Rows: 2, Cols: 2, Spacing: 100})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.New(scenario.Spec{Seed: 1, Network: net, NumVehicles: 1})
	if err != nil {
		t.Fatal(err)
	}
	id := s.VehicleIDs()[0]
	node, _ := s.Node(id)
	if _, err := cluster.NewRunner(nil, cluster.LowestID{}, time.Second, nil); err == nil {
		t.Error("nil node should error")
	}
	if _, err := cluster.NewRunner(node, nil, time.Second, nil); err == nil {
		t.Error("nil algorithm should error")
	}
	if _, err := cluster.NewRunner(node, cluster.LowestID{}, 0, nil); err == nil {
		t.Error("zero period should error")
	}
	r, err := cluster.NewRunner(node, cluster.LowestID{}, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	var changes int
	r.OnChange(func(old, new cluster.State) { changes++ })
	r.OnChange(nil) // ignored
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r.State().Role != cluster.Head {
		t.Errorf("lone vehicle state = %+v, want head", r.State())
	}
	if changes == 0 {
		t.Error("OnChange never fired")
	}
	if r.Node() != node {
		t.Error("Node accessor wrong")
	}
	r.Stop()
	// After stop, state must not change further.
	st := r.State()
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r.State() != st {
		t.Error("runner changed state after Stop")
	}
}

func TestBeaconsCarryClusterExt(t *testing.T) {
	s, runners, _ := buildClustered(t, 13, 10, cluster.MobilitySimilarity{})
	if err := s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Some node must see a neighbor advertising cluster state.
	seen := false
	for id := range runners {
		node, _ := s.Node(id)
		for _, nb := range node.Neighbors(nil) {
			if _, ok := nb.Ext.(cluster.Ext); ok {
				seen = true
			}
		}
	}
	if !seen {
		t.Error("no beacons carried cluster extensions")
	}
}
