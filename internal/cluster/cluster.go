// Package cluster implements the distributed vehicle-clustering protocols
// the paper's §IV.A.1 identifies as the organizational substrate of
// vehicular clouds: cluster heads coordinate resource sharing, task
// allocation and result aggregation.
//
// Three algorithms are provided, matching the survey's taxonomy:
//
//   - LowestID: the classic baseline — the smallest address in the
//     neighborhood becomes head.
//   - MobilitySimilarity: speed/direction-aware head election in the
//     spirit of VMaSC and of MoZo's moving zones [22]: the node whose
//     motion best matches its neighborhood leads, so clusters survive
//     longer.
//   - PassiveMultiHop: the PMC algorithm of Zhang et al. [46]: members
//     affiliate through already-joined neighbors up to N hops from the
//     head ("priority neighborhood following"), and the most stable node
//     passively becomes head.
//
// All algorithms run fully distributed: state is exchanged only via
// beacon extensions; a node decides from its own kinematics and its
// neighbor table. This is what "self-organized, no central authority"
// (§III) means operationally.
package cluster

import (
	"fmt"
	"math"

	"vcloud/internal/geo"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// Role is a node's position in its cluster.
type Role int

// Roles. Undecided nodes are not yet in any cluster.
const (
	Undecided Role = iota + 1
	Head
	Member
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Undecided:
		return "undecided"
	case Head:
		return "head"
	case Member:
		return "member"
	default:
		return "unknown"
	}
}

// State is a node's current cluster assignment.
type State struct {
	Role Role
	// Head is the cluster head's address (== own address for heads).
	Head vnet.Addr
	// Hops is the distance to the head in hops (0 for the head itself).
	Hops int
	// Score is the node's own head-suitability score (lower is better);
	// advertised so neighbors can compare candidates.
	Score float64
}

// Ext is the beacon extension carrying cluster state.
type Ext struct {
	State State
}

// NodeView is what an algorithm sees about the local node.
type NodeView struct {
	Addr    vnet.Addr
	Pos     geo.Point
	Speed   float64
	Heading float64
}

// NeighborView is what an algorithm sees about one neighbor.
type NeighborView struct {
	NodeView
	State State
	// HasState is false when the neighbor's beacons carry no cluster
	// extension yet.
	HasState bool
}

// Algorithm computes a node's next cluster state.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Decide returns the node's new state given its own view, its live
	// neighbors, and its current state.
	Decide(self NodeView, neighbors []NeighborView, cur State) State
}

// mobilityScore quantifies how well a node's motion matches its
// neighborhood: mean relative speed plus weighted heading difference.
// Lower is better (a more "central" mover). Nodes with no neighbors get a
// high score so they only lead singleton clusters.
func mobilityScore(self NodeView, neighbors []NeighborView) float64 {
	var total float64
	n := 0
	for _, nb := range neighbors {
		if !sameDirection(self.Heading, nb.Heading) {
			// Opposing traffic is transient by construction; counting it
			// would make every score fluctuate as vehicles stream past
			// (the flaw the paper attributes to naive clustering).
			continue
		}
		dv := math.Abs(self.Speed - nb.Speed)
		dh := geo.AngleDiff(self.Heading, nb.Heading)
		dd := self.Pos.Dist(nb.Pos)
		total += dv + 10*dh + dd/100
		n++
	}
	if n == 0 {
		return 1000
	}
	// Favour nodes with more same-direction neighbors: divide by count
	// and subtract a small degree bonus so dense centers win ties.
	return total/float64(n) - 0.1*float64(n)
}

// sameDirection reports whether two headings are within 90° — the "moving
// zone" membership criterion of MoZo [22].
func sameDirection(a, b float64) bool {
	return geo.AngleDiff(a, b) < math.Pi/2
}

// LowestID is the classic baseline: the lowest address wins.
type LowestID struct{}

// Name implements Algorithm.
func (LowestID) Name() string { return "lowest-id" }

// Decide implements Algorithm.
func (LowestID) Decide(self NodeView, neighbors []NeighborView, cur State) State {
	lowest := self.Addr
	for _, nb := range neighbors {
		if nb.Addr < lowest {
			lowest = nb.Addr
		}
	}
	if lowest == self.Addr {
		return State{Role: Head, Head: self.Addr, Hops: 0, Score: float64(self.Addr)}
	}
	// Join the lowest-addressed neighbor that is (or will become) a head;
	// if that neighbor is itself a member, still point at it — next round
	// converges because the neighbor does the same computation.
	return State{Role: Member, Head: lowest, Hops: 1, Score: float64(self.Addr)}
}

// MobilitySimilarity elects the most mobility-central node in each
// one-hop neighborhood, with hysteresis to avoid head flapping.
type MobilitySimilarity struct {
	// Hysteresis is the score margin by which a challenger must beat the
	// current head before the node re-affiliates. Default 5.
	Hysteresis float64
}

// Name implements Algorithm.
func (a MobilitySimilarity) Name() string { return "mobility" }

// Decide implements Algorithm.
//
// Rules, in priority order:
//  1. A member whose head still beacons as a head keeps it (sticky),
//     unless another head beats it by the hysteresis margin.
//  2. A head that meets a better head abdicates and joins it (cluster
//     merge); otherwise it stays head.
//  3. An unaffiliated node joins the best advertised head in range.
//  4. With no head in range, the node becomes head only if its own score
//     is the best in the neighborhood (ties break toward lower address);
//     otherwise it stays undecided and lets the better candidate claim
//     headship next round.
func (a MobilitySimilarity) Decide(self NodeView, neighbors []NeighborView, cur State) State {
	hyst := a.Hysteresis
	if hyst <= 0 {
		hyst = 5
	}
	myScore := mobilityScore(self, neighbors)

	// Candidate heads: neighbors that advertise themselves as heads.
	bestHead := vnet.Addr(-1)
	bestScore := math.Inf(1)
	var curHeadNb *NeighborView
	for i := range neighbors {
		nb := &neighbors[i]
		if !nb.HasState || nb.State.Role != Head || !sameDirection(self.Heading, nb.Heading) {
			continue
		}
		if nb.Addr == cur.Head {
			curHeadNb = nb
		}
		if nb.State.Score < bestScore || (nb.State.Score == bestScore && nb.Addr < bestHead) {
			bestHead, bestScore = nb.Addr, nb.State.Score
		}
	}

	// Rule 1: sticky membership.
	if cur.Role == Member && curHeadNb != nil {
		if bestHead >= 0 && bestHead != cur.Head && bestScore+hyst < curHeadNb.State.Score {
			return State{Role: Member, Head: bestHead, Hops: 1, Score: myScore}
		}
		return State{Role: Member, Head: cur.Head, Hops: 1, Score: myScore}
	}

	// Rule 2: head merge.
	if cur.Role == Head {
		if bestHead >= 0 && bestScore+hyst < myScore {
			return State{Role: Member, Head: bestHead, Hops: 1, Score: myScore}
		}
		return State{Role: Head, Head: self.Addr, Hops: 0, Score: myScore}
	}

	// Rule 3: join any head in range.
	if bestHead >= 0 {
		return State{Role: Member, Head: bestHead, Hops: 1, Score: myScore}
	}

	// Rule 4: head emergence.
	for _, nb := range neighbors {
		if !nb.HasState {
			continue
		}
		if nb.State.Score < myScore || (nb.State.Score == myScore && nb.Addr < self.Addr) {
			return State{Role: Undecided, Head: -1, Hops: -1, Score: myScore}
		}
	}
	return State{Role: Head, Head: self.Addr, Hops: 0, Score: myScore}
}

// PassiveMultiHop is PMC [46]: members can sit up to MaxHops from the
// head, joining through the "priority neighborhood following" rule.
type PassiveMultiHop struct {
	// MaxHops is N in the paper's N-hop constraint. Default 2.
	MaxHops int
	// Hysteresis as in MobilitySimilarity. Default 5.
	Hysteresis float64
}

// Name implements Algorithm.
func (a PassiveMultiHop) Name() string { return "pmc" }

// Decide implements Algorithm.
//
// The priority-neighborhood-following rule: a node attaches through the
// neighbor that yields the fewest hops to a head (then the best score),
// subject to the N-hop constraint; heads merge on contact like
// MobilitySimilarity; head emergence is passive — the locally most stable
// node claims headship only when no cluster is reachable.
func (a PassiveMultiHop) Decide(self NodeView, neighbors []NeighborView, cur State) State {
	maxHops := a.MaxHops
	if maxHops < 1 {
		maxHops = 2
	}
	hyst := a.Hysteresis
	if hyst <= 0 {
		hyst = 5
	}
	myScore := mobilityScore(self, neighbors)

	// Best attachment point: a clustered neighbor with hops+1 <= maxHops;
	// prefer the smallest resulting hop count, then the lowest advertised
	// score.
	bestHead := vnet.Addr(-1)
	bestHops := maxHops + 1
	bestScore := math.Inf(1)
	for _, nb := range neighbors {
		if !nb.HasState || nb.State.Role == Undecided || nb.State.Head < 0 || nb.State.Head == self.Addr {
			continue
		}
		if !sameDirection(self.Heading, nb.Heading) {
			continue
		}
		h := nb.State.Hops + 1
		if h > maxHops {
			continue
		}
		if h < bestHops || (h == bestHops && nb.State.Score < bestScore) {
			bestHead, bestHops, bestScore = nb.State.Head, h, nb.State.Score
		}
	}

	// Sticky: keep the current affiliation while a route to that head is
	// still advertised by some neighbor.
	if cur.Role == Member && cur.Head >= 0 {
		for _, nb := range neighbors {
			if !nb.HasState || nb.State.Head != cur.Head || nb.Addr == self.Addr {
				continue
			}
			if nb.State.Role != Undecided && nb.State.Hops+1 <= maxHops {
				return State{Role: Member, Head: cur.Head, Hops: nb.State.Hops + 1, Score: myScore}
			}
		}
	}

	// Head merge: a head that hears a clearly better cluster joins it.
	if cur.Role == Head {
		if bestHead >= 0 && bestScore+hyst < myScore {
			return State{Role: Member, Head: bestHead, Hops: bestHops, Score: myScore}
		}
		return State{Role: Head, Head: self.Addr, Hops: 0, Score: myScore}
	}

	if bestHead >= 0 {
		return State{Role: Member, Head: bestHead, Hops: bestHops, Score: myScore}
	}

	// Passive head emergence: become head only if no neighbor has a
	// better score (the "most stable node" rule).
	for _, nb := range neighbors {
		if !nb.HasState {
			continue
		}
		if nb.State.Score < myScore || (nb.State.Score == myScore && nb.Addr < self.Addr) {
			return State{Role: Undecided, Head: -1, Hops: -1, Score: myScore}
		}
	}
	return State{Role: Head, Head: self.Addr, Hops: 0, Score: myScore}
}

// Runner attaches an Algorithm to a vnet.Node: it advertises cluster
// state in beacons and re-decides on a fixed period.
type Runner struct {
	node    *vnet.Node
	algo    Algorithm
	state   State
	tracker *Tracker
	ticker  *sim.Ticker
	// onChange observers run after each state change.
	onChange []func(old, new State)
}

// NewRunner wires algo onto node. tracker may be nil.
func NewRunner(node *vnet.Node, algo Algorithm, period sim.Time, tracker *Tracker) (*Runner, error) {
	if node == nil || algo == nil {
		return nil, fmt.Errorf("cluster: node and algorithm must not be nil")
	}
	if period <= 0 {
		return nil, fmt.Errorf("cluster: period must be positive, got %v", period)
	}
	r := &Runner{
		node:    node,
		algo:    algo,
		state:   State{Role: Undecided, Head: -1, Hops: -1},
		tracker: tracker,
	}
	node.SetBeaconExt(func() any { return Ext{State: r.state} })
	t, err := node.Kernel().Every(period, r.tick)
	if err != nil {
		return nil, err
	}
	r.ticker = t
	return r, nil
}

// Stop halts periodic re-decision.
func (r *Runner) Stop() { r.ticker.Stop() }

// State returns the current cluster state.
func (r *Runner) State() State { return r.state }

// Node returns the underlying vnet node.
func (r *Runner) Node() *vnet.Node { return r.node }

// OnChange registers an observer of state transitions.
func (r *Runner) OnChange(fn func(old, new State)) {
	if fn != nil {
		r.onChange = append(r.onChange, fn)
	}
}

func (r *Runner) tick() {
	self := NodeView{
		Addr:    r.node.Addr(),
		Pos:     r.node.Position(),
		Speed:   r.node.Speed(),
		Heading: r.node.Heading(),
	}
	raw := r.node.Neighbors(nil)
	views := make([]NeighborView, 0, len(raw))
	for _, nb := range raw {
		v := NeighborView{
			NodeView: NodeView{Addr: nb.Addr, Pos: nb.Pos, Speed: nb.Speed, Heading: nb.Heading},
		}
		if ext, ok := nb.Ext.(Ext); ok {
			v.State = ext.State
			v.HasState = true
		}
		views = append(views, v)
	}
	next := r.algo.Decide(self, views, r.state)
	if next != r.state {
		old := r.state
		r.state = next
		if r.tracker != nil {
			r.tracker.Record(r.node.Kernel().Now(), r.node.Addr(), old, next)
		}
		for _, fn := range r.onChange {
			fn(old, next)
		}
	}
}
