package cluster

import (
	"testing"

	"vcloud/internal/geo"
	"vcloud/internal/vnet"
)

func nv(addr vnet.Addr, x, y, speed, heading float64) NodeView {
	return NodeView{Addr: addr, Pos: geo.Point{X: x, Y: y}, Speed: speed, Heading: heading}
}

func nbv(addr vnet.Addr, x, y, speed, heading float64, st State) NeighborView {
	return NeighborView{NodeView: nv(addr, x, y, speed, heading), State: st, HasState: true}
}

func TestRoleString(t *testing.T) {
	if Undecided.String() != "undecided" || Head.String() != "head" || Member.String() != "member" {
		t.Error("role strings wrong")
	}
	if Role(0).String() != "unknown" {
		t.Error("zero role should be unknown")
	}
}

func TestLowestIDSelfIsLowest(t *testing.T) {
	var a LowestID
	st := a.Decide(nv(1, 0, 0, 10, 0), []NeighborView{
		nbv(5, 10, 0, 10, 0, State{}),
		nbv(9, 20, 0, 10, 0, State{}),
	}, State{})
	if st.Role != Head || st.Head != 1 || st.Hops != 0 {
		t.Errorf("state = %+v, want head", st)
	}
}

func TestLowestIDJoinsLowerNeighbor(t *testing.T) {
	var a LowestID
	st := a.Decide(nv(7, 0, 0, 10, 0), []NeighborView{
		nbv(3, 10, 0, 10, 0, State{Role: Head, Head: 3}),
		nbv(9, 20, 0, 10, 0, State{}),
	}, State{})
	if st.Role != Member || st.Head != 3 || st.Hops != 1 {
		t.Errorf("state = %+v, want member of 3", st)
	}
}

func TestLowestIDIsolatedNodeIsHead(t *testing.T) {
	var a LowestID
	st := a.Decide(nv(42, 0, 0, 10, 0), nil, State{})
	if st.Role != Head {
		t.Errorf("isolated node should lead a singleton cluster, got %+v", st)
	}
}

func TestMobilityScoreFavorsSimilarMotion(t *testing.T) {
	// Node A moves with the pack; node B moves against it. A must score
	// lower (better).
	pack := []NeighborView{
		nbv(2, 10, 0, 20, 0, State{}),
		nbv(3, 20, 0, 21, 0, State{}),
		nbv(4, 30, 0, 19, 0, State{}),
	}
	scoreWith := mobilityScore(nv(1, 15, 0, 20, 0), pack)
	scoreAgainst := mobilityScore(nv(1, 15, 0, 20, 3.14), pack)
	if scoreWith >= scoreAgainst {
		t.Errorf("with-pack score %v should beat against-pack %v", scoreWith, scoreAgainst)
	}
	if s := mobilityScore(nv(1, 0, 0, 10, 0), nil); s < 100 {
		t.Errorf("no-neighbor score should be high, got %v", s)
	}
}

func TestMobilityDecideJoinsBestHead(t *testing.T) {
	a := MobilitySimilarity{}
	self := nv(10, 0, 0, 20, 0)
	nbrs := []NeighborView{
		nbv(2, 10, 0, 20, 0, State{Role: Head, Head: 2, Score: 1}),
		nbv(3, 20, 0, 20, 0, State{Role: Head, Head: 3, Score: 9}),
	}
	st := a.Decide(self, nbrs, State{Role: Undecided, Head: -1})
	if st.Role != Member || st.Head != 2 {
		t.Errorf("state = %+v, want member of best head 2", st)
	}
}

func TestMobilityHysteresisKeepsCurrentHead(t *testing.T) {
	a := MobilitySimilarity{Hysteresis: 5}
	self := nv(10, 0, 0, 20, 0)
	// Current head 3 (score 9) still alive; challenger 2 (score 6) is
	// better but within the hysteresis margin.
	nbrs := []NeighborView{
		nbv(2, 10, 0, 20, 0, State{Role: Head, Head: 2, Score: 6}),
		nbv(3, 20, 0, 20, 0, State{Role: Head, Head: 3, Score: 9}),
	}
	st := a.Decide(self, nbrs, State{Role: Member, Head: 3, Hops: 1})
	if st.Head != 3 {
		t.Errorf("hysteresis should keep head 3, got %+v", st)
	}
	// A challenger clearly past the margin wins.
	nbrs[0].State.Score = 1
	st = a.Decide(self, nbrs, State{Role: Member, Head: 3, Hops: 1})
	if st.Head != 2 {
		t.Errorf("clear winner should take over, got %+v", st)
	}
}

func TestMobilityBecomesHeadWhenBestCandidate(t *testing.T) {
	a := MobilitySimilarity{}
	// Self matches the pack tightly; neighbors advertise worse scores and
	// no one is a head.
	self := nv(10, 15, 0, 20, 0)
	nbrs := []NeighborView{
		nbv(2, 10, 0, 20, 0, State{Role: Undecided, Score: 500}),
		nbv(3, 20, 0, 20, 0, State{Role: Undecided, Score: 500}),
	}
	st := a.Decide(self, nbrs, State{Role: Undecided, Head: -1})
	if st.Role != Head || st.Head != 10 {
		t.Errorf("state = %+v, want self-head", st)
	}
}

func TestMobilityDefersToBetterCandidate(t *testing.T) {
	a := MobilitySimilarity{}
	self := nv(10, 15, 0, 20, 0)
	nbrs := []NeighborView{
		nbv(2, 10, 0, 20, 0, State{Role: Undecided, Score: -100}),
	}
	st := a.Decide(self, nbrs, State{Role: Undecided, Head: -1})
	if st.Role != Undecided {
		t.Errorf("state = %+v, want undecided (better candidate exists)", st)
	}
}

func TestPMCJoinsWithinMaxHops(t *testing.T) {
	a := PassiveMultiHop{MaxHops: 2}
	self := nv(10, 0, 0, 20, 0)
	nbrs := []NeighborView{
		// Member of head 5 at 1 hop -> joining gives 2 hops, allowed.
		nbv(2, 10, 0, 20, 0, State{Role: Member, Head: 5, Hops: 1, Score: 3}),
	}
	st := a.Decide(self, nbrs, State{Role: Undecided, Head: -1})
	if st.Role != Member || st.Head != 5 || st.Hops != 2 {
		t.Errorf("state = %+v, want member of 5 at 2 hops", st)
	}
}

func TestPMCRespectsHopLimit(t *testing.T) {
	a := PassiveMultiHop{MaxHops: 2}
	self := nv(10, 0, 0, 20, 0)
	nbrs := []NeighborView{
		// Neighbor already at the hop limit: joining would exceed N.
		nbv(2, 10, 0, 20, 0, State{Role: Member, Head: 5, Hops: 2, Score: -50}),
	}
	st := a.Decide(self, nbrs, State{Role: Undecided, Head: -1})
	if st.Role == Member {
		t.Errorf("joined beyond hop limit: %+v", st)
	}
}

func TestPMCPrefersFewerHops(t *testing.T) {
	a := PassiveMultiHop{MaxHops: 3}
	self := nv(10, 0, 0, 20, 0)
	nbrs := []NeighborView{
		nbv(2, 10, 0, 20, 0, State{Role: Member, Head: 5, Hops: 2, Score: 1}),
		nbv(3, 20, 0, 20, 0, State{Role: Head, Head: 3, Hops: 0, Score: 8}),
	}
	st := a.Decide(self, nbrs, State{Role: Undecided, Head: -1})
	if st.Head != 3 || st.Hops != 1 {
		t.Errorf("state = %+v, want 1-hop member of 3", st)
	}
}

func TestPMCStickyAffiliation(t *testing.T) {
	a := PassiveMultiHop{MaxHops: 2}
	self := nv(10, 0, 0, 20, 0)
	nbrs := []NeighborView{
		nbv(2, 10, 0, 20, 0, State{Role: Member, Head: 5, Hops: 1, Score: 3}),
		nbv(7, 20, 0, 20, 0, State{Role: Head, Head: 7, Hops: 0, Score: 2}),
	}
	st := a.Decide(self, nbrs, State{Role: Member, Head: 5, Hops: 2})
	if st.Head != 5 {
		t.Errorf("sticky affiliation broken: %+v", st)
	}
}

func TestPMCHeadEmergence(t *testing.T) {
	a := PassiveMultiHop{}
	self := nv(10, 15, 0, 20, 0)
	nbrs := []NeighborView{
		nbv(2, 10, 0, 20, 0, State{Role: Undecided, Score: 500}),
	}
	st := a.Decide(self, nbrs, State{Role: Undecided, Head: -1})
	if st.Role != Head {
		t.Errorf("state = %+v, want head emergence", st)
	}
}

func TestAlgorithmNames(t *testing.T) {
	if (LowestID{}).Name() != "lowest-id" {
		t.Error("LowestID name")
	}
	if (MobilitySimilarity{}).Name() != "mobility" {
		t.Error("MobilitySimilarity name")
	}
	if (PassiveMultiHop{}).Name() != "pmc" {
		t.Error("PassiveMultiHop name")
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker()
	// Node 1: undecided -> member of 5 -> member of 7 -> undecided.
	tr.Record(0, 1, State{Role: Undecided, Head: -1}, State{Role: Member, Head: 5})
	tr.Record(10e9, 1, State{Role: Member, Head: 5}, State{Role: Member, Head: 7})
	tr.Record(30e9, 1, State{Role: Member, Head: 7}, State{Role: Undecided, Head: -1})
	// Node 2 becomes head and stays.
	tr.Record(0, 2, State{Role: Undecided, Head: -1}, State{Role: Head, Head: 2})
	tr.Finish(60e9)

	if tr.RoleChanges() != 4 {
		t.Errorf("RoleChanges = %d, want 4", tr.RoleChanges())
	}
	if tr.BecameHead() != 1 {
		t.Errorf("BecameHead = %d, want 1", tr.BecameHead())
	}
	// Head changes: node1 5->7, 7->-1 = 2 changes; node2 first record has
	// no prior head.
	if tr.HeadChanges() != 2 {
		t.Errorf("HeadChanges = %d, want 2", tr.HeadChanges())
	}
	// Node 1 clustered 0..30 s, node 2 clustered 0..60 s: mean 45 s.
	if got := tr.MeanClusteredSeconds(); got != 45 {
		t.Errorf("MeanClusteredSeconds = %v, want 45", got)
	}
	if got := tr.HeadChangesPerNodeMinute(2, 60e9); got != 1 {
		t.Errorf("HeadChangesPerNodeMinute = %v, want 1", got)
	}
	if got := tr.HeadChangesPerNodeMinute(0, 0); got != 0 {
		t.Errorf("degenerate normalization = %v", got)
	}
}

func TestTrackerEmptyMean(t *testing.T) {
	tr := NewTracker()
	if tr.MeanClusteredSeconds() != 0 {
		t.Error("empty tracker mean should be 0")
	}
}
