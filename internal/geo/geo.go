// Package geo provides the 2-D geometric primitives used throughout the
// vehicular-cloud simulator: points, vectors, headings, bounding boxes and
// distance computations. All coordinates are in meters on a flat plane,
// which is adequate for the city-scale road networks the simulator models.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in meters on the simulation plane.
type Point struct {
	X, Y float64
}

// Vector is a displacement or velocity in the plane.
type Vector struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Add returns p displaced by v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance between p and q. It avoids
// the square root for hot-path comparisons such as range queries.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Scale returns v scaled by s.
func (v Vector) Scale(s float64) Vector { return Vector{v.X * s, v.Y * s} }

// Add returns the component-wise sum of v and w.
func (v Vector) Add(w Vector) Vector { return Vector{v.X + w.X, v.Y + w.Y} }

// Dot returns the dot product of v and w.
func (v Vector) Dot(w Vector) float64 { return v.X*w.X + v.Y*w.Y }

// Len returns the magnitude of v.
func (v Vector) Len() float64 { return math.Sqrt(v.X*v.X + v.Y*v.Y) }

// Norm returns the unit vector in the direction of v. The zero vector
// normalizes to itself.
func (v Vector) Norm() Vector {
	l := v.Len()
	if l == 0 {
		return Vector{}
	}
	return Vector{v.X / l, v.Y / l}
}

// Heading returns the direction of v in radians in [0, 2π), measured
// counterclockwise from the +X axis. The zero vector has heading 0.
func (v Vector) Heading() float64 {
	h := math.Atan2(v.Y, v.X)
	if h < 0 {
		h += 2 * math.Pi
	}
	return h
}

// HeadingVector returns the unit vector pointing along heading h (radians).
func HeadingVector(h float64) Vector {
	return Vector{math.Cos(h), math.Sin(h)}
}

// AngleDiff returns the absolute smallest angle between two headings, in
// [0, π]. It is used by mobility-similarity clustering to compare vehicle
// directions.
func AngleDiff(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 2*math.Pi)
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// Rect is an axis-aligned rectangle, used for simulation bounds and spatial
// index cells. Min is the lower-left corner, Max the upper-right.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Contains reports whether p lies inside r (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// SegmentDist returns the distance from point p to the segment ab.
func SegmentDist(p, a, b Point) float64 {
	ab := b.Sub(a)
	l2 := ab.Dot(ab)
	if l2 == 0 {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / l2
	t = math.Max(0, math.Min(1, t))
	return p.Dist(a.Lerp(b, t))
}

// ProjectOnSegment returns the parameter t in [0,1] of the point on segment
// ab closest to p. Callers combine it with Lerp to get the projection.
func ProjectOnSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	l2 := ab.Dot(ab)
	if l2 == 0 {
		return 0
	}
	t := p.Sub(a).Dot(ab) / l2
	return math.Max(0, math.Min(1, t))
}
