package geo

import (
	"fmt"
	"math"
)

// ShardMap partitions a rectangular world into a fixed nx×ny grid of
// geographic shards. Ownership is purely positional — ShardOf(p) — and the
// topology never changes during a run, which is what makes the sharded
// kernel's merge order (and therefore its output) a fixed function of the
// model: shard ids, neighbor sets and region bounds are all decided before
// the clock starts.
type ShardMap struct {
	bounds Rect
	nx, ny int
	cw, ch float64 // shard cell width/height in meters
}

// NewShardMap creates the shard grid. nx and ny must be positive.
func NewShardMap(bounds Rect, nx, ny int) (*ShardMap, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("geo: shard grid must be at least 1x1, got %dx%d", nx, ny)
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("geo: shard bounds must have positive area, got %v", bounds)
	}
	return &ShardMap{
		bounds: bounds,
		nx:     nx,
		ny:     ny,
		cw:     bounds.Width() / float64(nx),
		ch:     bounds.Height() / float64(ny),
	}, nil
}

// FactorShards splits a total shard count into the most square nx×ny grid
// (nx >= ny, nx*ny == n). Every caller that turns "-shards 8" into a
// topology uses this one factorization so a shard count always means the
// same grid.
func FactorShards(n int) (nx, ny int) {
	if n < 1 {
		return 1, 1
	}
	ny = int(math.Sqrt(float64(n)))
	for ; ny > 1; ny-- {
		if n%ny == 0 {
			break
		}
	}
	if ny < 1 {
		ny = 1
	}
	return n / ny, ny
}

// NumShards returns nx*ny.
func (m *ShardMap) NumShards() int { return m.nx * m.ny }

// Grid returns the (nx, ny) shard grid dimensions.
func (m *ShardMap) Grid() (nx, ny int) { return m.nx, m.ny }

// Bounds returns the world bounds.
func (m *ShardMap) Bounds() Rect { return m.bounds }

// CellSize returns one shard region's width and height in meters.
func (m *ShardMap) CellSize() (w, h float64) { return m.cw, m.ch }

// ShardOf returns the shard owning position p. Points outside the bounds
// clamp to the nearest border shard, so ownership is total.
func (m *ShardMap) ShardOf(p Point) int {
	cx := int((p.X - m.bounds.Min.X) / m.cw)
	cy := int((p.Y - m.bounds.Min.Y) / m.ch)
	if cx < 0 {
		cx = 0
	} else if cx >= m.nx {
		cx = m.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= m.ny {
		cy = m.ny - 1
	}
	return cy*m.nx + cx
}

// ShardBounds returns shard i's region rectangle.
func (m *ShardMap) ShardBounds(i int) Rect {
	cx, cy := i%m.nx, i/m.nx
	min := Point{m.bounds.Min.X + float64(cx)*m.cw, m.bounds.Min.Y + float64(cy)*m.ch}
	return Rect{Min: min, Max: Point{min.X + m.cw, min.Y + m.ch}}
}

// DistToShard returns the distance from p to shard i's region (zero when p
// is inside it).
func (m *ShardMap) DistToShard(p Point, i int) float64 {
	r := m.ShardBounds(i)
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// ShardsNear appends to dst every shard id whose region lies within halo
// of p, in ascending id order, and returns the slice. The halo query is
// the boundary-crossing test of the sharded radio path: a transmission
// from p can only matter to shards this returns. Only the 3×3 block of
// shard cells around p is examined, so the cost is independent of the
// shard count as long as halo does not exceed a shard cell dimension.
func (m *ShardMap) ShardsNear(dst []int, p Point, halo float64) []int {
	minCX := int(math.Floor((p.X - halo - m.bounds.Min.X) / m.cw))
	maxCX := int(math.Floor((p.X + halo - m.bounds.Min.X) / m.cw))
	minCY := int(math.Floor((p.Y - halo - m.bounds.Min.Y) / m.ch))
	maxCY := int(math.Floor((p.Y + halo - m.bounds.Min.Y) / m.ch))
	if minCX < 0 {
		minCX = 0
	}
	if maxCX >= m.nx {
		maxCX = m.nx - 1
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCY >= m.ny {
		maxCY = m.ny - 1
	}
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			id := cy*m.nx + cx
			if m.DistToShard(p, id) <= halo {
				dst = append(dst, id)
			}
		}
	}
	return dst
}

// ShardedIndex is one shard's view of the world: a spatial index holding
// the shard's own (local) entries plus ghost copies of remote entries
// pushed in by neighboring shards each tick. Queries see locals and ghosts
// uniformly — the boundary-halo query path — so range queries near a shard
// border return exactly what a single global index would, provided the
// ghost set covers the query radius (the sharded world refreshes ghosts
// every tick with a halo of radio range plus a speed margin).
type ShardedIndex struct {
	idx    *GridIndex
	local  map[int32]bool
	ghosts []int32 // ghost ids in insertion order, for the per-tick sweep
}

// NewShardedIndex creates a shard-local index over the full world bounds
// (positions near the border legitimately fall outside the shard's own
// region) with cells sized to the query radius.
func NewShardedIndex(bounds Rect, cellSize float64) (*ShardedIndex, error) {
	idx, err := NewGridIndex(bounds, cellSize)
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{idx: idx, local: make(map[int32]bool)}, nil
}

// UpdateLocal inserts or moves a locally-owned entry.
func (s *ShardedIndex) UpdateLocal(id int32, p Point) {
	s.local[id] = true
	s.idx.Update(id, p)
}

// RemoveLocal removes a locally-owned entry (handoff departure or churn).
func (s *ShardedIndex) RemoveLocal(id int32) {
	delete(s.local, id)
	s.idx.Remove(id)
}

// IsLocal reports whether id is owned by this shard.
func (s *ShardedIndex) IsLocal(id int32) bool { return s.local[id] }

// NumLocal returns the number of locally-owned entries.
func (s *ShardedIndex) NumLocal() int { return len(s.local) }

// UpdateGhost inserts or moves a ghost copy of a remote entry. Ghosts are
// transient: ClearGhosts drops the whole set at the start of each tick,
// before the fresh halo pushes apply.
func (s *ShardedIndex) UpdateGhost(id int32, p Point) {
	if s.local[id] {
		// A stale ghost push for an entry this shard now owns must not
		// demote it; the local position is already current.
		return
	}
	if _, ok := s.idx.Position(id); !ok {
		s.ghosts = append(s.ghosts, id)
	}
	s.idx.Update(id, p)
}

// ClearGhosts removes every ghost entry, leaving locals untouched.
func (s *ShardedIndex) ClearGhosts() {
	for _, id := range s.ghosts {
		if !s.local[id] {
			s.idx.Remove(id)
		}
	}
	s.ghosts = s.ghosts[:0]
}

// NumGhosts returns the current ghost count.
func (s *ShardedIndex) NumGhosts() int { return len(s.ghosts) }

// Position returns the indexed position of id (local or ghost).
func (s *ShardedIndex) Position(id int32) (Point, bool) { return s.idx.Position(id) }

// WithinRangePos appends the ids and positions of all indexed entries
// (local and ghost) within radius r of p, excluding `exclude`, in the
// underlying grid's stable cell-major, id-minor order.
//
//vcloudlint:hotpath per-tick neighbor queries inside every shard worker
func (s *ShardedIndex) WithinRangePos(ids []int32, pos []Point, p Point, r float64, exclude int32) ([]int32, []Point) {
	return s.idx.WithinRangePos(ids, pos, p, r, exclude)
}
