package geo

import (
	"fmt"
	"math"
)

// GridIndex is a uniform-grid spatial index mapping integer IDs to points.
// It supports the neighbor queries that dominate the simulator's hot path:
// "which vehicles are within radio range R of position p". Cells are sized
// close to the typical query radius so a query touches at most a 3×3 block.
//
// Cell membership is kept sorted by id, so range queries yield ids in a
// stable (cell-major, id-minor) order that is independent of insertion and
// removal history. Hot paths can therefore consume query results directly,
// without re-sorting for determinism.
//
// GridIndex is not safe for concurrent use; the simulation kernel is
// single-goroutine by design (see internal/sim).
type GridIndex struct {
	bounds   Rect
	cellSize float64
	cols     int
	rows     int
	cells    map[int][]int32 // cell key -> ids
	pos      map[int32]Point // id -> last indexed position
	// qR/qR2/qSpan cache the per-radius query geometry. Almost every
	// query uses the one fixed radio range, so the squared radius and the
	// cell span are computed once per radius instead of once per call.
	qR    float64
	qR2   float64
	qSpan int
}

// NewGridIndex creates an index over bounds with the given cell size.
// cellSize must be positive; it is typically set to the radio range.
func NewGridIndex(bounds Rect, cellSize float64) (*GridIndex, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("geo: cell size must be positive, got %v", cellSize)
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("geo: bounds must have positive area, got %v", bounds)
	}
	cols := int(math.Ceil(bounds.Width() / cellSize))
	rows := int(math.Ceil(bounds.Height() / cellSize))
	return &GridIndex{
		bounds:   bounds,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		cells:    make(map[int][]int32),
		pos:      make(map[int32]Point),
	}, nil
}

func (g *GridIndex) cellKey(p Point) int {
	cx := int((p.X - g.bounds.Min.X) / g.cellSize)
	cy := int((p.Y - g.bounds.Min.Y) / g.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Update inserts id at p, or moves it there if already present.
func (g *GridIndex) Update(id int32, p Point) {
	if old, ok := g.pos[id]; ok {
		ok2 := g.cellKey(old)
		nk := g.cellKey(p)
		if ok2 == nk {
			g.pos[id] = p
			return
		}
		g.removeFromCell(ok2, id)
	}
	g.insertIntoCell(g.cellKey(p), id)
	g.pos[id] = p
}

// Remove deletes id from the index. Removing an absent id is a no-op.
func (g *GridIndex) Remove(id int32) {
	p, ok := g.pos[id]
	if !ok {
		return
	}
	g.removeFromCell(g.cellKey(p), id)
	delete(g.pos, id)
}

// cellRank returns the position of id in the sorted cell list (or where
// it would be inserted).
func cellRank(ids []int32, id int32) int {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insertIntoCell adds id to the cell keeping the list sorted. The ordered
// insert only runs when an entry changes cells, so its memmove cost is
// paid per cell crossing, not per query.
func (g *GridIndex) insertIntoCell(key int, id int32) {
	ids := g.cells[key]
	i := cellRank(ids, id)
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	g.cells[key] = ids
}

func (g *GridIndex) removeFromCell(key int, id int32) {
	ids := g.cells[key]
	i := cellRank(ids, id)
	if i < len(ids) && ids[i] == id {
		ids = append(ids[:i], ids[i+1:]...)
	}
	if len(ids) == 0 {
		delete(g.cells, key)
	} else {
		g.cells[key] = ids
	}
}

// Position returns the last indexed position of id.
func (g *GridIndex) Position(id int32) (Point, bool) {
	p, ok := g.pos[id]
	return p, ok
}

// Len returns the number of indexed entries.
func (g *GridIndex) Len() int { return len(g.pos) }

// WithinRange appends to dst the ids of all entries within radius r of p
// (excluding the id `exclude`, pass a negative value to exclude nothing)
// and returns the extended slice. Results come out in the stable
// cell-major, id-minor order.
func (g *GridIndex) WithinRange(dst []int32, p Point, r float64, exclude int32) []int32 {
	dst, _ = g.withinRange(dst, nil, false, p, r, exclude)
	return dst
}

// WithinRangePos appends the ids and positions of all entries within
// radius r of p (excluding `exclude`) into the caller-owned buffers and
// returns the extended slices; ids[i] is located at pos[i]. It exists for
// the radio hot path: one query yields both the neighbor set and the
// positions needed for the distance model, in the stable cell-major,
// id-minor order, with no per-neighbor position re-lookup and no
// allocation beyond (amortized) buffer growth.
//
//vcloudlint:hotpath one query per broadcast; only caller-owned buffers may grow
func (g *GridIndex) WithinRangePos(ids []int32, pos []Point, p Point, r float64, exclude int32) ([]int32, []Point) {
	return g.withinRange(ids, pos, true, p, r, exclude)
}

func (g *GridIndex) withinRange(ids []int32, pos []Point, withPos bool, p Point, r float64, exclude int32) ([]int32, []Point) {
	if r <= 0 {
		return ids, pos
	}
	if r != g.qR {
		g.qR = r
		g.qR2 = r * r
		g.qSpan = int(math.Ceil(r / g.cellSize))
	}
	r2 := g.qR2
	// Center-cell ± span covers every cell the old per-call
	// (p±r)/cellSize derivation did (trunc(a±d) lies within
	// trunc(a)±ceil(d) for d >= 0), so the visited set is a superset and
	// the exact distance filter keeps results identical; cells beyond the
	// disk are empty lookups.
	cx := int((p.X - g.bounds.Min.X) / g.cellSize)
	cy := int((p.Y - g.bounds.Min.Y) / g.cellSize)
	minCX, maxCX := clampRange(cx-g.qSpan, cx+g.qSpan, g.cols)
	minCY, maxCY := clampRange(cy-g.qSpan, cy+g.qSpan, g.rows)
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			for _, id := range g.cells[cy*g.cols+cx] {
				if id == exclude {
					continue
				}
				q := g.pos[id]
				if q.DistSq(p) <= r2 {
					ids = append(ids, id)
					if withPos {
						pos = append(pos, q)
					}
				}
			}
		}
	}
	return ids, pos
}

// clampRange clamps an inclusive cell range into [0, n-1]. Out-of-bounds
// points are stored in border cells, so queries that fall outside the
// bounds must still visit the nearest border cell on each axis.
func clampRange(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	} else if lo >= n {
		lo = n - 1
	}
	if hi >= n {
		hi = n - 1
	} else if hi < 0 {
		hi = 0
	}
	return lo, hi
}

// Nearest returns the id of the entry closest to p within radius r, or
// (-1, false) if none exists. The entry `exclude` is skipped.
func (g *GridIndex) Nearest(p Point, r float64, exclude int32) (int32, bool) {
	best := int32(-1)
	bestD := r * r
	minCX := int((p.X - r - g.bounds.Min.X) / g.cellSize)
	maxCX := int((p.X + r - g.bounds.Min.X) / g.cellSize)
	minCY := int((p.Y - r - g.bounds.Min.Y) / g.cellSize)
	maxCY := int((p.Y + r - g.bounds.Min.Y) / g.cellSize)
	minCX, maxCX = clampRange(minCX, maxCX, g.cols)
	minCY, maxCY = clampRange(minCY, maxCY, g.rows)
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			for _, id := range g.cells[cy*g.cols+cx] {
				if id == exclude {
					continue
				}
				d := g.pos[id].DistSq(p)
				if d > bestD {
					continue
				}
				// Tie-break on id so results are deterministic across map
				// iteration orders.
				if best < 0 || d < bestD || (d == bestD && id < best) {
					best, bestD = id, d
				}
			}
		}
	}
	return best, best >= 0
}
