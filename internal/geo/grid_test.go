package geo

import (
	"math/rand"
	"sort"
	"testing"
)

func mustGrid(t *testing.T, bounds Rect, cell float64) *GridIndex {
	t.Helper()
	g, err := NewGridIndex(bounds, cell)
	if err != nil {
		t.Fatalf("NewGridIndex: %v", err)
	}
	return g
}

func TestNewGridIndexValidation(t *testing.T) {
	bounds := NewRect(Point{0, 0}, Point{100, 100})
	if _, err := NewGridIndex(bounds, 0); err == nil {
		t.Error("want error for zero cell size")
	}
	if _, err := NewGridIndex(bounds, -5); err == nil {
		t.Error("want error for negative cell size")
	}
	if _, err := NewGridIndex(Rect{}, 10); err == nil {
		t.Error("want error for empty bounds")
	}
}

func TestGridUpdateRemove(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{1000, 1000}), 100)
	g.Update(1, Point{50, 50})
	g.Update(2, Point{55, 55})
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	p, ok := g.Position(1)
	if !ok || p != (Point{50, 50}) {
		t.Fatalf("Position(1) = %v, %v", p, ok)
	}
	// Move within the same cell and across cells.
	g.Update(1, Point{60, 60})
	g.Update(1, Point{950, 950})
	p, _ = g.Position(1)
	if p != (Point{950, 950}) {
		t.Fatalf("after move Position(1) = %v", p)
	}
	got := g.WithinRange(nil, Point{60, 60}, 20, -1)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("WithinRange after move = %v, want [2]", got)
	}
	g.Remove(2)
	if g.Len() != 1 {
		t.Fatalf("Len after remove = %d", g.Len())
	}
	g.Remove(2) // removing absent id is a no-op
	if _, ok := g.Position(2); ok {
		t.Error("Position(2) should be absent")
	}
}

func TestGridWithinRangeExclude(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{100, 100}), 25)
	g.Update(7, Point{50, 50})
	g.Update(8, Point{52, 50})
	got := g.WithinRange(nil, Point{50, 50}, 10, 7)
	if len(got) != 1 || got[0] != 8 {
		t.Fatalf("WithinRange excluding 7 = %v, want [8]", got)
	}
}

func TestGridOutOfBoundsPoints(t *testing.T) {
	// Points outside the declared bounds must still be indexed (clamped to
	// border cells) and findable; vehicles can momentarily overshoot.
	g := mustGrid(t, NewRect(Point{0, 0}, Point{100, 100}), 10)
	g.Update(1, Point{-20, -20})
	g.Update(2, Point{150, 150})
	if got := g.WithinRange(nil, Point{-20, -20}, 5, -1); len(got) != 1 {
		t.Fatalf("out-of-bounds query = %v", got)
	}
	if got := g.WithinRange(nil, Point{150, 150}, 5, -1); len(got) != 1 {
		t.Fatalf("out-of-bounds query high = %v", got)
	}
}

// TestGridMatchesBruteForce is the core property test: the grid index must
// return exactly the same id set as a brute-force scan, across random
// configurations and radii.
func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bounds := NewRect(Point{0, 0}, Point{2000, 2000})
	for trial := 0; trial < 50; trial++ {
		g := mustGrid(t, bounds, 150)
		pts := make(map[int32]Point)
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			id := int32(i)
			p := Point{rng.Float64() * 2000, rng.Float64() * 2000}
			g.Update(id, p)
			pts[id] = p
		}
		// Random moves.
		for i := 0; i < n/2; i++ {
			id := int32(rng.Intn(n))
			p := Point{rng.Float64() * 2000, rng.Float64() * 2000}
			g.Update(id, p)
			pts[id] = p
		}
		q := Point{rng.Float64() * 2000, rng.Float64() * 2000}
		r := 50 + rng.Float64()*500
		got := g.WithinRange(nil, q, r, -1)
		var want []int32
		for id, p := range pts {
			if p.DistSq(q) <= r*r {
				want = append(want, id)
			}
		}
		sortInt32(got)
		sortInt32(want)
		if !equalInt32(got, want) {
			t.Fatalf("trial %d: WithinRange mismatch\n got %v\nwant %v", trial, got, want)
		}

		// Nearest must match brute force too.
		gotID, gotOK := g.Nearest(q, r, -1)
		wantID, wantOK := int32(-1), false
		bestD := r * r
		for id, p := range pts {
			d := p.DistSq(q)
			if d > bestD {
				continue
			}
			if !wantOK || d < bestD || (d == bestD && id < wantID) {
				wantID, wantOK, bestD = id, true, d
			}
		}
		if gotOK != wantOK || (gotOK && gotID != wantID) {
			t.Fatalf("trial %d: Nearest = (%d,%v), want (%d,%v)", trial, gotID, gotOK, wantID, wantOK)
		}
	}
}

func TestGridNearestEmpty(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{100, 100}), 10)
	if _, ok := g.Nearest(Point{50, 50}, 100, -1); ok {
		t.Error("Nearest on empty index should report none")
	}
	g.Update(3, Point{50, 50})
	if _, ok := g.Nearest(Point{50, 50}, 100, 3); ok {
		t.Error("Nearest excluding the only entry should report none")
	}
}

func TestGridZeroRadius(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{100, 100}), 10)
	g.Update(1, Point{50, 50})
	if got := g.WithinRange(nil, Point{50, 50}, 0, -1); len(got) != 0 {
		t.Errorf("zero radius should return nothing, got %v", got)
	}
}

// TestWithinRangePosMatchesWithinRange: the combined query must return
// the same ids as WithinRange, with each id's indexed position.
func TestWithinRangePosMatchesWithinRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := mustGrid(t, NewRect(Point{0, 0}, Point{2000, 2000}), 150)
	for i := 0; i < 300; i++ {
		g.Update(int32(i), Point{rng.Float64() * 2000, rng.Float64() * 2000})
	}
	for trial := 0; trial < 20; trial++ {
		q := Point{rng.Float64() * 2000, rng.Float64() * 2000}
		r := 50 + rng.Float64()*400
		ids := g.WithinRange(nil, q, r, 5)
		// Pass nil-backed scratch buffers, the hot-path calling convention.
		var scratchIDs []int32
		var scratchPos []Point
		gotIDs, gotPos := g.WithinRangePos(scratchIDs[:0], scratchPos[:0], q, r, 5)
		if !equalInt32(ids, gotIDs) {
			t.Fatalf("trial %d: ids differ\n got %v\nwant %v", trial, gotIDs, ids)
		}
		if len(gotPos) != len(gotIDs) {
			t.Fatalf("trial %d: %d positions for %d ids", trial, len(gotPos), len(gotIDs))
		}
		for i, id := range gotIDs {
			want, _ := g.Position(id)
			if gotPos[i] != want {
				t.Fatalf("trial %d: pos[%d] = %v, want %v for id %d", trial, i, gotPos[i], want, id)
			}
		}
	}
}

// TestWithinRangeStableOrder: query order must be a pure function of the
// current positions — independent of the insertion/removal history — so
// the radio layer can skip its per-broadcast sort.
func TestWithinRangeStableOrder(t *testing.T) {
	bounds := NewRect(Point{0, 0}, Point{1000, 1000})
	build := func(order []int32) *GridIndex {
		g := mustGrid(t, bounds, 100)
		for _, id := range order {
			g.Update(id, Point{500 + float64(id), 500})
		}
		// Churn: move one entry out and back, delete and re-add another.
		g.Update(order[0], Point{50, 50})
		g.Update(order[0], Point{500 + float64(order[0]), 500})
		g.Remove(order[1])
		g.Update(order[1], Point{500 + float64(order[1]), 500})
		return g
	}
	a := build([]int32{4, 1, 3, 2, 0})
	b := build([]int32{0, 1, 2, 3, 4})
	ga := a.WithinRange(nil, Point{500, 500}, 50, -1)
	gb := b.WithinRange(nil, Point{500, 500}, 50, -1)
	if !equalInt32(ga, gb) {
		t.Fatalf("order depends on history: %v vs %v", ga, gb)
	}
	// Within one cell the order is sorted by id.
	for i := 1; i < len(ga); i++ {
		if ga[i] < ga[i-1] {
			t.Fatalf("cell order not sorted: %v", ga)
		}
	}
}

// TestWithinRangePosAllocFree: with warm caller-owned buffers the query
// must not allocate.
func TestWithinRangePosAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := mustGrid(t, NewRect(Point{0, 0}, Point{2000, 2000}), 300)
	for i := 0; i < 500; i++ {
		g.Update(int32(i), Point{rng.Float64() * 2000, rng.Float64() * 2000})
	}
	ids := make([]int32, 0, 600)
	pos := make([]Point, 0, 600)
	q := Point{1000, 1000}
	allocs := testing.AllocsPerRun(100, func() {
		ids, pos = g.WithinRangePos(ids[:0], pos[:0], q, 300, -1)
	})
	if allocs != 0 {
		t.Errorf("WithinRangePos allocated %.1f times per query, want 0", allocs)
	}
}

// TestWithinRangeSpanCacheInvalidation alternates query radii (including
// revisiting earlier ones) and checks results always match brute force:
// the cached span must be keyed on the radius, never left stale.
func TestWithinRangeSpanCacheInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bounds := NewRect(Point{0, 0}, Point{1500, 1500})
	g := mustGrid(t, bounds, 120)
	pts := make(map[int32]Point)
	for i := 0; i < 400; i++ {
		p := Point{rng.Float64() * 1500, rng.Float64() * 1500}
		g.Update(int32(i), p)
		pts[int32(i)] = p
	}
	radii := []float64{120, 300, 120, 45, 300, 777, 120}
	for trial := 0; trial < 60; trial++ {
		r := radii[trial%len(radii)]
		q := Point{rng.Float64()*1900 - 200, rng.Float64()*1900 - 200} // includes out-of-bounds centers
		got := g.WithinRange(nil, q, r, -1)
		var want []int32
		for id, p := range pts {
			if p.DistSq(q) <= r*r {
				want = append(want, id)
			}
		}
		sortInt32(got)
		sortInt32(want)
		if !equalInt32(got, want) {
			t.Fatalf("trial %d (r=%v): cached-span WithinRange mismatch\n got %v\nwant %v", trial, r, got, want)
		}
	}
}

// TestWithinRangeAllocFree: the fixed-radius hot path must not allocate —
// neither for the result buffer (warm) nor for the cached span geometry.
func TestWithinRangeAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := mustGrid(t, NewRect(Point{0, 0}, Point{2000, 2000}), 300)
	for i := 0; i < 500; i++ {
		g.Update(int32(i), Point{rng.Float64() * 2000, rng.Float64() * 2000})
	}
	buf := make([]int32, 0, 600)
	q := Point{777, 777}
	allocs := testing.AllocsPerRun(100, func() {
		buf = g.WithinRange(buf[:0], q, 300, -1)
	})
	if allocs != 0 {
		t.Errorf("WithinRange allocated %.1f times per query, want 0", allocs)
	}
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkGridWithinRange(b *testing.B) {
	bounds := NewRect(Point{0, 0}, Point{5000, 5000})
	g, err := NewGridIndex(bounds, 300)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		g.Update(int32(i), Point{rng.Float64() * 5000, rng.Float64() * 5000})
	}
	buf := make([]int32, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Point{rng.Float64() * 5000, rng.Float64() * 5000}
		buf = g.WithinRange(buf[:0], q, 300, -1)
	}
}
