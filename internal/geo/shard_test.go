package geo

import (
	"math/rand"
	"testing"
)

func TestFactorShards(t *testing.T) {
	cases := map[int][2]int{
		0: {1, 1}, 1: {1, 1}, 2: {2, 1}, 3: {3, 1}, 4: {2, 2},
		6: {3, 2}, 8: {4, 2}, 9: {3, 3}, 12: {4, 3}, 16: {4, 4}, 7: {7, 1},
	}
	for n, want := range cases {
		nx, ny := FactorShards(n)
		if nx != want[0] || ny != want[1] {
			t.Errorf("FactorShards(%d) = %dx%d, want %dx%d", n, nx, ny, want[0], want[1])
		}
	}
}

func TestShardMapOwnership(t *testing.T) {
	bounds := NewRect(Point{0, 0}, Point{4000, 2000})
	m, err := NewShardMap(bounds, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", m.NumShards())
	}
	// Each shard owns its own region's center.
	for i := 0; i < m.NumShards(); i++ {
		if got := m.ShardOf(m.ShardBounds(i).Center()); got != i {
			t.Errorf("ShardOf(center of %d) = %d", i, got)
		}
	}
	// Out-of-bounds points clamp to border shards: ownership is total.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		p := Point{rng.Float64()*6000 - 1000, rng.Float64()*4000 - 1000}
		s := m.ShardOf(p)
		if s < 0 || s >= m.NumShards() {
			t.Fatalf("ShardOf(%v) = %d out of range", p, s)
		}
	}
}

func TestShardsNearMatchesBruteForce(t *testing.T) {
	bounds := NewRect(Point{0, 0}, Point{3000, 3000})
	m, err := NewShardMap(bounds, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		p := Point{rng.Float64() * 3000, rng.Float64() * 3000}
		halo := rng.Float64() * 900
		got := m.ShardsNear(nil, p, halo)
		var want []int
		for i := 0; i < m.NumShards(); i++ {
			if m.DistToShard(p, i) <= halo {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: ShardsNear(%v, %v) = %v, want %v", trial, p, halo, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: ShardsNear(%v, %v) = %v, want %v", trial, p, halo, got, want)
			}
		}
	}
}

func TestShardedIndexGhostLifecycle(t *testing.T) {
	s, err := NewShardedIndex(NewRect(Point{0, 0}, Point{1000, 1000}), 100)
	if err != nil {
		t.Fatal(err)
	}
	s.UpdateLocal(1, Point{100, 100})
	s.UpdateGhost(2, Point{150, 100})
	if !s.IsLocal(1) || s.IsLocal(2) {
		t.Fatal("locality tracking wrong")
	}
	if s.NumLocal() != 1 || s.NumGhosts() != 1 {
		t.Fatalf("counts = (%d local, %d ghost), want (1, 1)", s.NumLocal(), s.NumGhosts())
	}
	ids, _ := s.WithinRangePos(nil, nil, Point{100, 100}, 200, -1)
	if len(ids) != 2 {
		t.Fatalf("query over local+ghost returned %v, want both", ids)
	}
	// A ghost push for an entry the shard owns must not corrupt it.
	s.UpdateGhost(1, Point{900, 900})
	if p, _ := s.Position(1); p != (Point{100, 100}) {
		t.Fatalf("ghost push demoted a local entry to %v", p)
	}
	s.ClearGhosts()
	if s.NumGhosts() != 0 {
		t.Fatal("ghosts not cleared")
	}
	if _, ok := s.Position(2); ok {
		t.Fatal("ghost survived ClearGhosts")
	}
	if _, ok := s.Position(1); !ok {
		t.Fatal("ClearGhosts removed a local entry")
	}
	// Promotion: a former ghost handed off to this shard survives clears.
	s.UpdateGhost(3, Point{500, 500})
	s.UpdateLocal(3, Point{510, 500})
	s.ClearGhosts()
	if _, ok := s.Position(3); !ok {
		t.Fatal("promoted entry removed by ClearGhosts")
	}
	s.RemoveLocal(3)
	if _, ok := s.Position(3); ok {
		t.Fatal("RemoveLocal left the entry indexed")
	}
}

// TestShardedIndexMatchesGlobal builds a global index and per-shard views
// (locals plus halo ghosts) and checks range queries from any local
// position agree exactly with the global answer — the boundary-halo query
// path returns what a single world-wide index would.
func TestShardedIndexMatchesGlobal(t *testing.T) {
	bounds := NewRect(Point{0, 0}, Point{2000, 2000})
	const r = 250.0
	m, err := NewShardMap(bounds, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	global := mustGrid(t, bounds, r)
	shards := make([]*ShardedIndex, m.NumShards())
	for i := range shards {
		if shards[i], err = NewShardedIndex(bounds, r); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	pts := make(map[int32]Point)
	for i := 0; i < 300; i++ {
		id := int32(i)
		p := Point{rng.Float64() * 2000, rng.Float64() * 2000}
		pts[id] = p
		global.Update(id, p)
		owner := m.ShardOf(p)
		shards[owner].UpdateLocal(id, p)
		for _, s := range m.ShardsNear(nil, p, r) {
			if s != owner {
				shards[s].UpdateGhost(id, p)
			}
		}
	}
	for id, p := range pts {
		owner := m.ShardOf(p)
		gotIDs, _ := shards[owner].WithinRangePos(nil, nil, p, r, id)
		wantIDs := global.WithinRange(nil, p, r, id)
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("id %d: sharded query %v != global %v", id, gotIDs, wantIDs)
		}
		for i := range gotIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("id %d: sharded query %v != global %v", id, gotIDs, wantIDs)
			}
		}
	}
}
