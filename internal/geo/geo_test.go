package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, -4}, Point{0, 0}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEq(got, tt.want) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
			if got := tt.p.DistSq(tt.q); !almostEq(got, tt.want*tt.want) {
				t.Errorf("DistSq(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Constrain to a realistic coordinate range; astronomic inputs
		// overflow to Inf where Inf-Inf is NaN.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		return almostEq(a.Dist(b), b.Dist(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v, want %v", got, a)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v, want %v", got, b)
	}
	mid := a.Lerp(b, 0.5)
	if !almostEq(mid.X, 5) || !almostEq(mid.Y, 10) {
		t.Errorf("Lerp(0.5) = %v, want (5, 10)", mid)
	}
}

func TestVectorOps(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Len(); !almostEq(got, 5) {
		t.Errorf("Len = %v, want 5", got)
	}
	n := v.Norm()
	if !almostEq(n.Len(), 1) {
		t.Errorf("Norm().Len() = %v, want 1", n.Len())
	}
	if z := (Vector{}).Norm(); z != (Vector{}) {
		t.Errorf("zero Norm = %v, want zero", z)
	}
	if got := v.Dot(Vector{1, 0}); !almostEq(got, 3) {
		t.Errorf("Dot = %v, want 3", got)
	}
	if got := v.Scale(2); got != (Vector{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestHeading(t *testing.T) {
	tests := []struct {
		v    Vector
		want float64
	}{
		{Vector{1, 0}, 0},
		{Vector{0, 1}, math.Pi / 2},
		{Vector{-1, 0}, math.Pi},
		{Vector{0, -1}, 3 * math.Pi / 2},
	}
	for _, tt := range tests {
		if got := tt.v.Heading(); !almostEq(got, tt.want) {
			t.Errorf("Heading(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestHeadingVectorRoundTrip(t *testing.T) {
	f := func(h float64) bool {
		h = math.Mod(math.Abs(h), 2*math.Pi)
		v := HeadingVector(h)
		return AngleDiff(v.Heading(), h) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{0, math.Pi, math.Pi},
		{0.1, 2*math.Pi - 0.1, 0.2},
		{math.Pi / 2, math.Pi, math.Pi / 2},
	}
	for _, tt := range tests {
		if got := AngleDiff(tt.a, tt.b); !almostEq(got, tt.want) {
			t.Errorf("AngleDiff(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAngleDiffBounds(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 1000) // huge angles lose all precision in Mod
		b = math.Mod(b, 1000)
		d := AngleDiff(a, b)
		return d >= 0 && d <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Point{10, 20}, Point{0, 0})
	if r.Min != (Point{0, 0}) || r.Max != (Point{10, 20}) {
		t.Fatalf("NewRect normalized wrong: %+v", r)
	}
	if !r.Contains(Point{5, 5}) || r.Contains(Point{11, 5}) {
		t.Error("Contains wrong")
	}
	if !r.Contains(r.Min) || !r.Contains(r.Max) {
		t.Error("Contains should include edges")
	}
	if r.Width() != 10 || r.Height() != 20 {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
	if c := r.Center(); c != (Point{5, 10}) {
		t.Errorf("Center = %v", c)
	}
	if p := r.Clamp(Point{-5, 30}); p != (Point{0, 20}) {
		t.Errorf("Clamp = %v", p)
	}
}

func TestSegmentDist(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 0}
	tests := []struct {
		p    Point
		want float64
	}{
		{Point{5, 3}, 3},  // above the middle
		{Point{-3, 4}, 5}, // before start
		{Point{13, 4}, 5}, // past end
		{Point{5, 0}, 0},  // on the segment
		{Point{0, 0}, 0},  // at an endpoint
	}
	for _, tt := range tests {
		if got := SegmentDist(tt.p, a, b); !almostEq(got, tt.want) {
			t.Errorf("SegmentDist(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	// Degenerate segment.
	if got := SegmentDist(Point{3, 4}, a, a); !almostEq(got, 5) {
		t.Errorf("degenerate SegmentDist = %v, want 5", got)
	}
}

func TestProjectOnSegment(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 0}
	if got := ProjectOnSegment(Point{5, 7}, a, b); !almostEq(got, 0.5) {
		t.Errorf("t = %v, want 0.5", got)
	}
	if got := ProjectOnSegment(Point{-5, 0}, a, b); got != 0 {
		t.Errorf("t = %v, want 0 (clamped)", got)
	}
	if got := ProjectOnSegment(Point{50, 0}, a, b); got != 1 {
		t.Errorf("t = %v, want 1 (clamped)", got)
	}
	if got := ProjectOnSegment(Point{1, 1}, a, a); got != 0 {
		t.Errorf("degenerate t = %v, want 0", got)
	}
}
