// Package vnet is the VANET message layer between the raw radio medium
// and the protocol stacks (routing, clustering, auth, vcloud). It gives
// each node:
//
//   - periodic beaconing ("hello" messages carrying position, speed,
//     heading and a protocol-defined extension),
//   - a neighbor table built from received beacons with expiry,
//   - typed message dispatch (handlers keyed by message kind), and
//   - duplicate suppression for multi-hop dissemination.
//
// Every multi-hop protocol in this repository forwards hop-by-hop through
// real radio sends, so loss, delay and contention all apply at each hop —
// the property the paper's "frequently interrupted links" challenge is
// about.
package vnet

import (
	"fmt"
	"sort"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/radio"
	"vcloud/internal/sim"
)

// Addr is a network address (same space as radio.NodeID).
type Addr = radio.NodeID

// BroadcastAddr addresses all nodes in radio range.
const BroadcastAddr = radio.Broadcast

// Beacon is the periodic hello payload.
type Beacon struct {
	From    Addr
	Pos     geo.Point
	Speed   float64
	Heading float64
	// Ext carries protocol state piggybacked on beacons (e.g. cluster
	// membership, zone ids). Nil when the protocol attaches nothing.
	Ext any
}

// BeaconSize is the on-air size in bytes of a beacon (BSM-like).
const BeaconSize = 300

// Neighbor is a row in the neighbor table.
type Neighbor struct {
	Addr     Addr
	Pos      geo.Point
	Speed    float64
	Heading  float64
	Ext      any
	LastSeen sim.Time
}

// Message is a typed protocol message, possibly relayed over multiple
// hops. The (Origin, Seq) pair uniquely identifies it for duplicate
// suppression.
type Message struct {
	Origin  Addr
	Seq     uint32
	Dest    Addr // final destination; BroadcastAddr for dissemination
	Kind    string
	TTL     int // hops remaining; decremented by Forward
	Size    int
	Payload any
	// OriginatedAt is stamped by the sender for latency measurement.
	OriginatedAt sim.Time
}

// Handler processes a received message. relayer is the one-hop sender the
// frame physically arrived from (== Origin on the first hop).
type Handler func(msg Message, relayer Addr)

// BeaconFunc observes a received beacon.
type BeaconFunc func(b Beacon)

// Config configures a node.
type Config struct {
	// BeaconPeriod is the hello interval; 0 disables beaconing.
	BeaconPeriod sim.Time
	// NeighborTTL is how long a neighbor entry survives without a fresh
	// beacon. Defaults to 3 beacon periods.
	NeighborTTL sim.Time
	// DedupCapacity bounds the duplicate-suppression table. Defaults to
	// 4096 entries.
	DedupCapacity int
}

// Node is one protocol endpoint (vehicle OBU or RSU).
type Node struct {
	addr   Addr
	kernel *sim.Kernel
	medium *radio.Medium
	cfg    Config

	neighbors map[Addr]Neighbor
	handlers  map[string]Handler
	onBeacon  []BeaconFunc
	// beaconExt is called to fill Beacon.Ext on each transmission.
	beaconExt func() any
	// stateFn supplies this node's own kinematics for beacons.
	stateFn func() (pos geo.Point, speed, heading float64)

	seq      uint32
	seen     map[dedupKey]struct{}
	seenRing []dedupKey
	seenHead int

	ticker  *sim.Ticker
	stopped bool
}

type dedupKey struct {
	origin Addr
	seq    uint32
}

// NewNode creates a node on the medium. stateFn supplies the node's
// kinematics when beaconing (for a static RSU, return a constant).
func NewNode(kernel *sim.Kernel, medium *radio.Medium, addr Addr, cfg Config, stateFn func() (geo.Point, float64, float64)) (*Node, error) {
	if kernel == nil || medium == nil {
		return nil, fmt.Errorf("vnet: kernel and medium must not be nil")
	}
	if stateFn == nil {
		return nil, fmt.Errorf("vnet: stateFn must not be nil")
	}
	if cfg.NeighborTTL <= 0 {
		if cfg.BeaconPeriod > 0 {
			cfg.NeighborTTL = 3 * cfg.BeaconPeriod
		} else {
			cfg.NeighborTTL = 3 * time.Second
		}
	}
	if cfg.DedupCapacity <= 0 {
		cfg.DedupCapacity = 4096
	}
	n := &Node{
		addr:      addr,
		kernel:    kernel,
		medium:    medium,
		cfg:       cfg,
		neighbors: make(map[Addr]Neighbor),
		handlers:  make(map[string]Handler),
		stateFn:   stateFn,
		seen:      make(map[dedupKey]struct{}, cfg.DedupCapacity),
		seenRing:  make([]dedupKey, cfg.DedupCapacity),
	}
	medium.Register(addr, n.receive)
	return n, nil
}

// Addr returns the node's address.
func (n *Node) Addr() Addr { return n.addr }

// Start begins beaconing (if configured). Safe to call once.
func (n *Node) Start() error {
	if n.cfg.BeaconPeriod <= 0 {
		return nil
	}
	if n.ticker != nil {
		return fmt.Errorf("vnet: node %d already started", n.addr)
	}
	t, err := n.kernel.Every(n.cfg.BeaconPeriod, n.sendBeacon)
	if err != nil {
		return err
	}
	n.ticker = t
	return nil
}

// Stop halts beaconing and detaches from the medium.
func (n *Node) Stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	if n.ticker != nil {
		n.ticker.Stop()
	}
	n.medium.Unregister(n.addr)
}

// SetBeaconExt installs a function that supplies Beacon.Ext.
func (n *Node) SetBeaconExt(fn func() any) { n.beaconExt = fn }

// OnBeacon registers an observer for received beacons.
func (n *Node) OnBeacon(fn BeaconFunc) {
	if fn != nil {
		n.onBeacon = append(n.onBeacon, fn)
	}
}

// Handle registers the handler for a message kind, replacing any previous
// one. A nil handler unregisters.
func (n *Node) Handle(kind string, h Handler) {
	if h == nil {
		delete(n.handlers, kind)
		return
	}
	n.handlers[kind] = h
}

func (n *Node) sendBeacon() {
	if n.stopped {
		return
	}
	pos, speed, heading := n.stateFn()
	b := Beacon{From: n.addr, Pos: pos, Speed: speed, Heading: heading}
	if n.beaconExt != nil {
		b.Ext = n.beaconExt()
	}
	n.medium.Send(n.addr, radio.Broadcast, BeaconSize, b)
}

// NewMessage builds a fresh message originated here.
func (n *Node) NewMessage(dest Addr, kind string, size, ttl int, payload any) Message {
	n.seq++
	if size < 1 {
		size = 1
	}
	if ttl < 1 {
		ttl = 1
	}
	return Message{
		Origin:       n.addr,
		Seq:          n.seq,
		Dest:         dest,
		Kind:         kind,
		TTL:          ttl,
		Size:         size,
		Payload:      payload,
		OriginatedAt: n.kernel.Now(),
	}
}

// SendTo transmits msg one hop to the given next-hop address.
func (n *Node) SendTo(next Addr, msg Message) {
	n.medium.Send(n.addr, next, msg.Size, msg)
}

// BroadcastLocal transmits msg one hop to all nodes in range.
func (n *Node) BroadcastLocal(msg Message) {
	n.medium.Send(n.addr, radio.Broadcast, msg.Size, msg)
}

// Forward relays a received message one more hop after decrementing TTL.
// It reports false when the TTL is exhausted (message not sent).
func (n *Node) Forward(next Addr, msg Message) bool {
	msg.TTL--
	if msg.TTL <= 0 {
		return false
	}
	n.medium.Send(n.addr, next, msg.Size, msg)
	return true
}

// Seen reports whether the message was already received here, recording
// it as seen if not. Protocols call this before processing disseminated
// messages.
func (n *Node) Seen(msg Message) bool {
	k := dedupKey{msg.Origin, msg.Seq}
	if _, ok := n.seen[k]; ok {
		return true
	}
	// Evict the slot this write will occupy (ring overwrite).
	old := n.seenRing[n.seenHead]
	if old != (dedupKey{}) {
		delete(n.seen, old)
	}
	n.seenRing[n.seenHead] = k
	n.seenHead = (n.seenHead + 1) % len(n.seenRing)
	n.seen[k] = struct{}{}
	return false
}

func (n *Node) receive(f radio.Frame) {
	if n.stopped {
		return
	}
	switch p := f.Payload.(type) {
	case Beacon:
		n.neighbors[p.From] = Neighbor{
			Addr:     p.From,
			Pos:      p.Pos,
			Speed:    p.Speed,
			Heading:  p.Heading,
			Ext:      p.Ext,
			LastSeen: n.kernel.Now(),
		}
		for _, fn := range n.onBeacon {
			fn(p)
		}
	case Message:
		if h, ok := n.handlers[p.Kind]; ok {
			h(p, f.From)
		}
	}
}

// Neighbors appends live (non-expired) neighbor rows to dst in ascending
// address order and returns it. The ordering is load-bearing: protocol
// code iterates this slice to pick next hops and cluster heads, and
// tie-breaks must not depend on map iteration for runs to reproduce.
// Rows are copies; mutation is safe.
func (n *Node) Neighbors(dst []Neighbor) []Neighbor {
	now := n.kernel.Now()
	start := len(dst)
	for addr, nb := range n.neighbors {
		if now-nb.LastSeen > n.cfg.NeighborTTL {
			delete(n.neighbors, addr)
			continue
		}
		dst = append(dst, nb)
	}
	added := dst[start:]
	sort.Slice(added, func(i, j int) bool { return added[i].Addr < added[j].Addr })
	return dst
}

// Neighbor returns the live entry for addr.
func (n *Node) Neighbor(addr Addr) (Neighbor, bool) {
	nb, ok := n.neighbors[addr]
	if !ok {
		return Neighbor{}, false
	}
	if n.kernel.Now()-nb.LastSeen > n.cfg.NeighborTTL {
		delete(n.neighbors, addr)
		return Neighbor{}, false
	}
	return nb, true
}

// NumNeighbors returns the live neighbor count.
func (n *Node) NumNeighbors() int {
	return len(n.Neighbors(nil))
}

// Kernel returns the simulation kernel (for protocol timers).
func (n *Node) Kernel() *sim.Kernel { return n.kernel }

// Medium returns the underlying radio medium.
func (n *Node) Medium() *radio.Medium { return n.medium }

// Position returns the node's current position per its state function.
func (n *Node) Position() geo.Point {
	p, _, _ := n.stateFn()
	return p
}

// Speed returns the node's current speed per its state function.
func (n *Node) Speed() float64 {
	_, s, _ := n.stateFn()
	return s
}

// Heading returns the node's current heading per its state function.
func (n *Node) Heading() float64 {
	_, _, h := n.stateFn()
	return h
}
