package vnet

import (
	"testing"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/radio"
	"vcloud/internal/sim"
)

type rig struct {
	k *sim.Kernel
	m *radio.Medium
}

func newRig(t testing.TB, seed int64) *rig {
	t.Helper()
	k := sim.NewKernel(seed)
	bounds := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 5000, Y: 5000})
	m, err := radio.NewMedium(k, bounds, radio.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, m: m}
}

// staticNode creates a node at a fixed position.
func (r *rig) staticNode(t testing.TB, addr Addr, pos geo.Point, cfg Config) *Node {
	t.Helper()
	r.m.UpdatePosition(addr, pos)
	n, err := NewNode(r.k, r.m, addr, cfg, func() (geo.Point, float64, float64) {
		return pos, 0, 0
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNodeValidation(t *testing.T) {
	r := newRig(t, 1)
	if _, err := NewNode(nil, r.m, 1, Config{}, func() (geo.Point, float64, float64) { return geo.Point{}, 0, 0 }); err == nil {
		t.Error("nil kernel should error")
	}
	if _, err := NewNode(r.k, nil, 1, Config{}, func() (geo.Point, float64, float64) { return geo.Point{}, 0, 0 }); err == nil {
		t.Error("nil medium should error")
	}
	if _, err := NewNode(r.k, r.m, 1, Config{}, nil); err == nil {
		t.Error("nil stateFn should error")
	}
}

func TestBeaconingBuildsNeighborTables(t *testing.T) {
	r := newRig(t, 1)
	cfg := Config{BeaconPeriod: 100 * time.Millisecond}
	a := r.staticNode(t, 1, geo.Point{X: 1000, Y: 1000}, cfg)
	b := r.staticNode(t, 2, geo.Point{X: 1100, Y: 1000}, cfg)
	c := r.staticNode(t, 3, geo.Point{X: 4000, Y: 4000}, cfg) // far away
	for _, n := range []*Node{a, b, c} {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.k.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := a.NumNeighbors(); got != 1 {
		t.Errorf("a neighbors = %d, want 1", got)
	}
	nb, ok := a.Neighbor(2)
	if !ok {
		t.Fatal("a should know b")
	}
	if nb.Pos != (geo.Point{X: 1100, Y: 1000}) {
		t.Errorf("neighbor pos = %v", nb.Pos)
	}
	if _, ok := a.Neighbor(3); ok {
		t.Error("a should not know far-away c")
	}
	if got := c.NumNeighbors(); got != 0 {
		t.Errorf("c neighbors = %d, want 0", got)
	}
}

func TestNeighborExpiry(t *testing.T) {
	r := newRig(t, 1)
	cfg := Config{BeaconPeriod: 100 * time.Millisecond}
	a := r.staticNode(t, 1, geo.Point{X: 1000, Y: 1000}, cfg)
	b := r.staticNode(t, 2, geo.Point{X: 1100, Y: 1000}, cfg)
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Neighbor(2); !ok {
		t.Fatal("a should know b")
	}
	// b goes silent; after 3 beacon periods the entry must expire.
	b.Stop()
	if err := r.k.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Neighbor(2); ok {
		t.Error("stale neighbor should expire")
	}
	if a.NumNeighbors() != 0 {
		t.Error("neighbor table should be empty")
	}
}

func TestBeaconExtPropagates(t *testing.T) {
	r := newRig(t, 1)
	cfg := Config{BeaconPeriod: 100 * time.Millisecond}
	a := r.staticNode(t, 1, geo.Point{X: 1000, Y: 1000}, cfg)
	b := r.staticNode(t, 2, geo.Point{X: 1100, Y: 1000}, cfg)
	a.SetBeaconExt(func() any { return "cluster-7" })
	var observed any
	b.OnBeacon(func(bc Beacon) { observed = bc.Ext })
	b.OnBeacon(nil) // ignored
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if observed != "cluster-7" {
		t.Errorf("beacon ext = %v", observed)
	}
	nb, ok := b.Neighbor(1)
	if !ok || nb.Ext != "cluster-7" {
		t.Errorf("neighbor ext = %v, ok=%v", nb.Ext, ok)
	}
}

func TestTypedMessageDispatch(t *testing.T) {
	r := newRig(t, 1)
	a := r.staticNode(t, 1, geo.Point{X: 1000, Y: 1000}, Config{})
	b := r.staticNode(t, 2, geo.Point{X: 1100, Y: 1000}, Config{})
	var got []string
	b.Handle("ping", func(m Message, relayer Addr) {
		got = append(got, m.Payload.(string))
		if relayer != 1 {
			t.Errorf("relayer = %d, want 1", relayer)
		}
	})
	a.SendTo(2, a.NewMessage(2, "ping", 100, 4, "one"))
	a.SendTo(2, a.NewMessage(2, "other-kind", 100, 4, "two")) // no handler
	if err := r.k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "one" {
		t.Errorf("got = %v", got)
	}
	// Unregister.
	b.Handle("ping", nil)
	a.SendTo(2, a.NewMessage(2, "ping", 100, 4, "three"))
	if err := r.k.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Error("handler ran after unregister")
	}
}

func TestMessageDefaultsAndSeq(t *testing.T) {
	r := newRig(t, 1)
	a := r.staticNode(t, 1, geo.Point{X: 1000, Y: 1000}, Config{})
	m1 := a.NewMessage(2, "k", 0, 0, nil)
	m2 := a.NewMessage(2, "k", 0, 0, nil)
	if m1.Size != 1 || m1.TTL != 1 {
		t.Errorf("defaults: %+v", m1)
	}
	if m2.Seq == m1.Seq {
		t.Error("sequence numbers must increase")
	}
	if m1.Origin != 1 {
		t.Errorf("origin = %d", m1.Origin)
	}
}

func TestForwardDecrementsTTL(t *testing.T) {
	r := newRig(t, 1)
	a := r.staticNode(t, 1, geo.Point{X: 1000, Y: 1000}, Config{})
	b := r.staticNode(t, 2, geo.Point{X: 1100, Y: 1000}, Config{})
	c := r.staticNode(t, 3, geo.Point{X: 1200, Y: 1000}, Config{})
	var reachedC bool
	b.Handle("relay", func(m Message, _ Addr) {
		if !b.Forward(3, m) {
			t.Error("forward with TTL 2 should succeed")
		}
	})
	c.Handle("relay", func(m Message, relayer Addr) {
		reachedC = true
		if m.TTL != 1 {
			t.Errorf("TTL at c = %d, want 1", m.TTL)
		}
		if relayer != 2 {
			t.Errorf("relayer = %d, want 2", relayer)
		}
		if m.Origin != 1 {
			t.Errorf("origin = %d, want 1", m.Origin)
		}
		// TTL exhausted: further forwarding must fail.
		if c.Forward(1, m) {
			t.Error("forward with TTL 1 should fail")
		}
	})
	a.SendTo(2, a.NewMessage(3, "relay", 100, 2, nil))
	if err := r.k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if !reachedC {
		t.Fatal("message did not reach c")
	}
}

func TestSeenDeduplicates(t *testing.T) {
	r := newRig(t, 1)
	a := r.staticNode(t, 1, geo.Point{X: 1000, Y: 1000}, Config{})
	m := a.NewMessage(BroadcastAddr, "flood", 100, 8, nil)
	if a.Seen(m) {
		t.Error("first Seen should be false")
	}
	if !a.Seen(m) {
		t.Error("second Seen should be true")
	}
	m2 := a.NewMessage(BroadcastAddr, "flood", 100, 8, nil)
	if a.Seen(m2) {
		t.Error("different seq should not be seen")
	}
}

func TestSeenEvictionBounded(t *testing.T) {
	r := newRig(t, 1)
	a := r.staticNode(t, 1, geo.Point{X: 1000, Y: 1000}, Config{DedupCapacity: 8})
	msgs := make([]Message, 20)
	for i := range msgs {
		msgs[i] = a.NewMessage(BroadcastAddr, "flood", 100, 8, nil)
		a.Seen(msgs[i])
	}
	// The oldest entries must have been evicted (capacity 8), so they are
	// no longer "seen".
	if a.Seen(msgs[0]) {
		t.Error("oldest entry should have been evicted")
	}
	// Recent ones are still tracked... msgs[19] was just re-added above?
	// No: Seen(msgs[0]) re-recorded msgs[0]. Check msgs[19] which is
	// within the last 8 inserts.
	if !a.Seen(msgs[19]) {
		t.Error("recent entry should still be seen")
	}
	if len(a.seen) > 8 {
		t.Errorf("dedup table grew to %d, cap 8", len(a.seen))
	}
}

func TestStopDetaches(t *testing.T) {
	r := newRig(t, 1)
	cfg := Config{BeaconPeriod: 100 * time.Millisecond}
	a := r.staticNode(t, 1, geo.Point{X: 1000, Y: 1000}, cfg)
	b := r.staticNode(t, 2, geo.Point{X: 1100, Y: 1000}, cfg)
	got := 0
	b.Handle("x", func(Message, Addr) { got++ })
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	b.Stop()
	b.Stop() // double stop safe
	a.SendTo(2, a.NewMessage(2, "x", 100, 1, nil))
	if err := r.k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Error("stopped node processed a message")
	}
}

func TestDoubleStartErrors(t *testing.T) {
	r := newRig(t, 1)
	a := r.staticNode(t, 1, geo.Point{X: 1000, Y: 1000}, Config{BeaconPeriod: time.Second})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err == nil {
		t.Error("double Start should error")
	}
	// Zero beacon period: Start is a no-op and repeatable.
	b := r.staticNode(t, 2, geo.Point{X: 1200, Y: 1000}, Config{})
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	r := newRig(t, 1)
	pos := geo.Point{X: 1000, Y: 1000}
	n, err := NewNode(r.k, r.m, 7, Config{}, func() (geo.Point, float64, float64) {
		return pos, 12.5, 1.25
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Addr() != 7 || n.Position() != pos || n.Speed() != 12.5 || n.Heading() != 1.25 {
		t.Error("accessors wrong")
	}
	if n.Kernel() != r.k || n.Medium() != r.m {
		t.Error("kernel/medium accessors wrong")
	}
}

func TestMultiHopLatencyAccounted(t *testing.T) {
	// A 3-hop relay chain: total delivery latency must exceed 3 tx delays.
	r := newRig(t, 2)
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i] = r.staticNode(t, Addr(i+1), geo.Point{X: 1000 + float64(i)*140, Y: 1000}, Config{})
	}
	var arrival sim.Time
	for i := 1; i < 4; i++ {
		i := i
		nodes[i].Handle("chain", func(m Message, _ Addr) {
			if i == 3 {
				arrival = r.k.Now() - m.OriginatedAt
				return
			}
			nodes[i].Forward(Addr(i+2), m)
		})
	}
	msg := nodes[0].NewMessage(4, "chain", 1500, 8, nil)
	nodes[0].SendTo(2, msg)
	if err := r.k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if arrival == 0 {
		t.Fatal("message did not arrive")
	}
	// Each 1500 B hop at 6 Mbps = 2 ms; 3 hops ≥ 6 ms.
	if arrival < 6*time.Millisecond {
		t.Errorf("3-hop latency = %v, want >= 6ms", arrival)
	}
}
