package vnet

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/radio"
	"vcloud/internal/sim"
)

// TestSeenDedupProperty: over any message stream, Seen returns true for
// a message iff the same (origin, seq) was recorded within the dedup
// window capacity; the table never exceeds its capacity.
func TestSeenDedupProperty(t *testing.T) {
	k := sim.NewKernel(1)
	bounds := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 100})
	m, err := radio.NewMedium(k, bounds, radio.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	f := func(raw []uint16, cap8 uint8) bool {
		capacity := int(cap8%32) + 4
		n, err := NewNode(k, m, Addr(rng.Int31()), Config{DedupCapacity: capacity},
			func() (geo.Point, float64, float64) { return geo.Point{}, 0, 0 })
		if err != nil {
			return false
		}
		// Reference model: an ordered list of recorded keys bounded by
		// capacity (FIFO eviction).
		type key struct {
			o Addr
			s uint32
		}
		var order []key
		inModel := func(x key) bool {
			for _, e := range order {
				if e == x {
					return true
				}
			}
			return false
		}
		for _, r := range raw {
			x := key{Addr(r % 5), uint32(r%11) + 1}
			msg := Message{Origin: x.o, Seq: x.s}
			got := n.Seen(msg)
			want := inModel(x)
			if got != want {
				return false
			}
			if !want {
				order = append(order, x)
				if len(order) > capacity {
					order = order[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestNeighborTableNeverReturnsExpiredProperty: rows older than the TTL
// are never visible through Neighbors or Neighbor.
func TestNeighborTableNeverReturnsExpiredProperty(t *testing.T) {
	k := sim.NewKernel(2)
	bounds := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 100})
	m, err := radio.NewMedium(k, bounds, radio.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(k, m, 1, Config{NeighborTTL: 2 * time.Second},
		func() (geo.Point, float64, float64) { return geo.Point{}, 0, 0 })
	if err != nil {
		t.Fatal(err)
	}
	// Inject beacons directly through the receive path at varied times.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		from := Addr(rng.Intn(20) + 100)
		n.receive(radio.Frame{From: radio.NodeID(from), Payload: Beacon{From: from}})
		k.After(sim.Time(rng.Intn(500))*time.Millisecond, func() {})
		k.Run(k.Now() + sim.Time(rng.Intn(500))*time.Millisecond)
		for _, nb := range n.Neighbors(nil) {
			if k.Now()-nb.LastSeen > 2*time.Second {
				t.Fatalf("expired neighbor %d visible (age %v)", nb.Addr, k.Now()-nb.LastSeen)
			}
		}
	}
}
