// Package access implements the privacy-preserving access control of the
// paper's §III.C and §V.C:
//
//   - an attribute/context policy language (OR-of-AND clauses over
//     attributes, plus context predicates: location area, speed bound,
//     emergency mode) evaluated without learning the requester's real
//     identity — subjects present attribute keys, not identities;
//   - multi-authority attribute keys with epoch-based revocation
//     (the Luo et al. [24] structure), realized as a symmetric
//     simulation of CP-ABE (see DESIGN.md substitution table);
//   - data–policy packages: encrypted data that travels with its policy
//     and an append-only, hash-chained audit trail, so "any access to
//     the data triggers automatic logging" (§V.C);
//   - emergency escalation: clauses that only activate in emergency
//     context, granting in milliseconds the permissions §III.C says an
//     icy-road scenario needs.
package access

import (
	"fmt"
	"sort"

	"vcloud/internal/geo"
)

// Action is an operation on a resource.
type Action string

// Standard actions.
const (
	Read    Action = "read"
	Write   Action = "write"
	Compute Action = "compute"
)

// AttributeID names an attribute, qualified by its issuing authority,
// e.g. "traffic-authority/role:cluster-head".
type AttributeID string

// Clause is a conjunction: the subject must hold every attribute.
type Clause []AttributeID

// Context is the situational state a request is evaluated under (§III.C:
// "enforce the policies under varying contexts").
type Context struct {
	Pos       geo.Point
	Speed     float64
	Emergency bool
	// Now is the virtual time of the request (for audit entries).
	Now int64
}

// ContextRule restricts when a policy clause applies.
type ContextRule struct {
	// Area, when non-nil, requires the requester inside the rectangle.
	Area *geo.Rect
	// MaxSpeed, when positive, requires requester speed below it.
	MaxSpeed float64
	// EmergencyOnly activates the rule only in emergency context.
	EmergencyOnly bool
}

// Satisfied reports whether ctx meets the rule.
func (r ContextRule) Satisfied(ctx Context) bool {
	if r.EmergencyOnly && !ctx.Emergency {
		return false
	}
	if r.Area != nil && !r.Area.Contains(ctx.Pos) {
		return false
	}
	if r.MaxSpeed > 0 && ctx.Speed > r.MaxSpeed {
		return false
	}
	return true
}

// Rule grants an action when any clause is satisfied under the context
// rule.
type Rule struct {
	Action  Action
	AnyOf   []Clause
	Context ContextRule
}

// Policy is the complete access policy of one resource.
type Policy struct {
	Resource string
	Rules    []Rule
}

// Validate checks structural sanity.
func (p *Policy) Validate() error {
	if p.Resource == "" {
		return fmt.Errorf("access: policy resource must not be empty")
	}
	if len(p.Rules) == 0 {
		return fmt.Errorf("access: policy %q has no rules", p.Resource)
	}
	for i, r := range p.Rules {
		if r.Action == "" {
			return fmt.Errorf("access: policy %q rule %d has no action", p.Resource, i)
		}
		if len(r.AnyOf) == 0 {
			return fmt.Errorf("access: policy %q rule %d has no clauses", p.Resource, i)
		}
		for j, c := range r.AnyOf {
			if len(c) == 0 {
				return fmt.Errorf("access: policy %q rule %d clause %d is empty", p.Resource, i, j)
			}
		}
	}
	return nil
}

// Decision is the outcome of an evaluation.
type Decision struct {
	Allowed bool
	// MatchedClause is the satisfied clause (nil when denied).
	MatchedClause Clause
	// ClausesChecked and AttrsChecked are the work counters E6 charges
	// virtual time for.
	ClausesChecked int
	AttrsChecked   int
}

// AttrSet is a subject's attribute holding, by ID. Values carry the key
// epoch the subject holds (see Authority); pure policy evaluation only
// uses membership.
type AttrSet map[AttributeID]uint64

// Evaluate decides whether a subject holding attrs may perform action on
// the policy's resource under ctx. Evaluation is identity-free: only
// attribute possession matters.
func Evaluate(p *Policy, attrs AttrSet, action Action, ctx Context) Decision {
	var d Decision
	for _, rule := range p.Rules {
		if rule.Action != action {
			continue
		}
		if !rule.Context.Satisfied(ctx) {
			continue
		}
		for _, clause := range rule.AnyOf {
			d.ClausesChecked++
			ok := true
			for _, attr := range clause {
				d.AttrsChecked++
				if _, has := attrs[attr]; !has {
					ok = false
					break
				}
			}
			if ok {
				d.Allowed = true
				d.MatchedClause = clause
				return d
			}
		}
	}
	return d
}

// clauseKey canonicalizes a clause for key wrapping (sorted attribute
// ids joined).
func clauseKey(c Clause) string {
	ids := make([]string, len(c))
	for i, a := range c {
		ids[i] = string(a)
	}
	sort.Strings(ids)
	out := ""
	for i, s := range ids {
		if i > 0 {
			out += "&"
		}
		out += s
	}
	return out
}
