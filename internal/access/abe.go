package access

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"vcloud/internal/cryptoprim"
)

// Authority issues attribute keys under its own master secret — one of
// the multiple authorities of the multi-authority CP-ABE design [24]
// (no single authority can decrypt everything or deanonymize everyone).
//
// Revocation is epoch-based: revoking an attribute bumps its epoch, so
// previously issued keys stop opening packages encrypted afterwards —
// the attribute-revocation mechanism §IV.C highlights.
type Authority struct {
	name   string
	master []byte
	epochs map[AttributeID]uint64
}

// AttrKey is a subject's key for one attribute at one epoch.
type AttrKey struct {
	Attr   AttributeID
	Epoch  uint64
	Secret [32]byte
}

// NewAuthority creates an attribute authority with a master secret drawn
// from rand.
func NewAuthority(name string, rand io.Reader) (*Authority, error) {
	if name == "" {
		return nil, fmt.Errorf("access: authority name must not be empty")
	}
	master := make([]byte, 32)
	if _, err := io.ReadFull(rand, master); err != nil {
		return nil, fmt.Errorf("access: generating master secret: %w", err)
	}
	return &Authority{name: name, master: master, epochs: make(map[AttributeID]uint64)}, nil
}

// Name returns the authority name. Attribute IDs issued here should be
// prefixed "<name>/".
func (a *Authority) Name() string { return a.name }

// Epoch returns the current epoch of an attribute.
func (a *Authority) Epoch(attr AttributeID) uint64 { return a.epochs[attr] }

// secretAt derives the attribute secret at a given epoch.
func (a *Authority) secretAt(attr AttributeID, epoch uint64) [32]byte {
	mac := hmac.New(sha256.New, a.master)
	mac.Write([]byte(attr))
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], epoch)
	mac.Write(e[:])
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Grant issues the current-epoch key for attr.
func (a *Authority) Grant(attr AttributeID) AttrKey {
	ep := a.epochs[attr]
	return AttrKey{Attr: attr, Epoch: ep, Secret: a.secretAt(attr, ep)}
}

// Revoke bumps the attribute's epoch: keys issued before no longer open
// packages sealed afterwards.
func (a *Authority) Revoke(attr AttributeID) {
	a.epochs[attr]++
}

// Keyring is a subject's attribute-key collection, possibly spanning
// multiple authorities.
type Keyring struct {
	keys map[AttributeID]AttrKey
}

// NewKeyring returns an empty keyring.
func NewKeyring() *Keyring { return &Keyring{keys: make(map[AttributeID]AttrKey)} }

// Add stores a key (replacing an older epoch).
func (k *Keyring) Add(key AttrKey) { k.keys[key.Attr] = key }

// Attrs returns the attribute set view for policy evaluation.
func (k *Keyring) Attrs() AttrSet {
	out := make(AttrSet, len(k.keys))
	for id, key := range k.keys {
		out[id] = key.Epoch
	}
	return out
}

// Has reports whether the keyring holds attr.
func (k *Keyring) Has(attr AttributeID) bool {
	_, ok := k.keys[attr]
	return ok
}

// kek derives the clause key-encryption-key from the subject's secrets
// for every attribute in the clause (sorted for canonical order).
// Returns false when any attribute key is missing.
func (k *Keyring) kek(clause Clause) ([32]byte, bool) {
	sorted := append(Clause(nil), clause...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h := sha256.New()
	for _, attr := range sorted {
		key, ok := k.keys[attr]
		if !ok {
			return [32]byte{}, false
		}
		h.Write([]byte(key.Attr))
		var e [8]byte
		binary.BigEndian.PutUint64(e[:], key.Epoch)
		h.Write(e[:])
		h.Write(key.Secret[:])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out, true
}

// encryptorKEK derives the same clause KEK from authority-side secrets
// (the encryptor queries the authorities' current epochs; in real
// CP-ABE this is public-parameter math).
func encryptorKEK(clause Clause, lookup func(AttributeID) (AttrKey, bool)) ([32]byte, bool) {
	ring := NewKeyring()
	for _, attr := range clause {
		key, ok := lookup(attr)
		if !ok {
			return [32]byte{}, false
		}
		ring.Add(key)
	}
	return ring.kek(clause)
}

// sealAESGCM encrypts plaintext under key with a deterministic nonce
// derived from nonceSeed (unique per package in our usage).
func sealAESGCM(key [32]byte, nonceSeed uint64, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("access: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("access: gcm: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	binary.BigEndian.PutUint64(nonce, nonceSeed)
	return gcm.Seal(nil, nonce, plaintext, nil), nil
}

func openAESGCM(key [32]byte, nonceSeed uint64, ciphertext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("access: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("access: gcm: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	binary.BigEndian.PutUint64(nonce, nonceSeed)
	out, err := gcm.Open(nil, nonce, ciphertext, nil)
	if err != nil {
		return nil, fmt.Errorf("access: decrypt: %w", err)
	}
	return out, nil
}

// wrapKey encrypts the data key under a clause KEK.
func wrapKey(kek [32]byte, dataKey [32]byte) [32]byte {
	stream := cryptoprim.Digest(kek[:], []byte("wrap"))
	var out [32]byte
	for i := range out {
		out[i] = dataKey[i] ^ stream[i]
	}
	return out
}

// unwrapKey reverses wrapKey (XOR is symmetric).
func unwrapKey(kek [32]byte, wrapped [32]byte) [32]byte {
	return wrapKey(kek, wrapped)
}
