package access

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"vcloud/internal/cryptoprim"
)

// TestSealOpenRoundTripProperty: for random payloads and random
// single-clause read policies, a keyring holding exactly the clause's
// attributes always opens the package to the original bytes, and a
// keyring missing one attribute never does.
func TestSealOpenRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	authority, err := NewAuthority("auth", rng)
	if err != nil {
		t.Fatal(err)
	}
	owner, err := cryptoprim.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(id AttributeID) (AttrKey, bool) { return authority.Grant(id), true }

	var nonce uint64
	f := func(data []byte, attrCount uint8) bool {
		n := int(attrCount%4) + 1
		clause := make(Clause, 0, n)
		for i := 0; i < n; i++ {
			clause = append(clause, AttributeID(rune('a'+i)))
		}
		policy := Policy{
			Resource: "r",
			Rules:    []Rule{{Action: Read, AnyOf: []Clause{clause}}},
		}
		nonce++
		pkg, err := Seal("r", data, policy, nonce, owner, lookup, rng)
		if err != nil {
			return false
		}
		// Full keyring opens to the original bytes.
		full := NewKeyring()
		for _, a := range clause {
			full.Add(authority.Grant(a))
		}
		got, d, err := pkg.Open(full, Context{}, [32]byte{1})
		if err != nil || !d.Allowed || !bytes.Equal(got, data) {
			return false
		}
		// Missing one attribute: always denied.
		if n > 1 {
			partial := NewKeyring()
			for _, a := range clause[1:] {
				partial.Add(authority.Grant(a))
			}
			if _, d, err := pkg.Open(partial, Context{}, [32]byte{2}); err == nil || d.Allowed {
				return false
			}
		}
		// The audit chain stays intact through every access.
		return pkg.VerifyAudit() == -1
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestEvaluateNeverAllowsWithoutAttrsProperty: an empty attribute set is
// denied by every randomly-shaped policy that has non-empty clauses.
func TestEvaluateNeverAllowsWithoutAttrsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(ruleCount, clauseCount uint8) bool {
		nr := int(ruleCount%4) + 1
		p := Policy{Resource: "r"}
		for i := 0; i < nr; i++ {
			nc := int(clauseCount%3) + 1
			rule := Rule{Action: Read}
			for j := 0; j < nc; j++ {
				rule.AnyOf = append(rule.AnyOf, Clause{AttributeID(rune('a' + j))})
			}
			p.Rules = append(p.Rules, rule)
		}
		d := Evaluate(&p, AttrSet{}, Read, Context{})
		return !d.Allowed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}
