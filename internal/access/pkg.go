package access

import (
	"bytes"
	"fmt"
	"io"

	"vcloud/internal/cryptoprim"
)

// AuditEntry records one access to a data-policy package. Accessors are
// identified by an anonymous one-time token (e.g. a pseudonym serial or
// chain ID) — accountability without identity disclosure (§V.C).
type AuditEntry struct {
	AccessorToken [32]byte
	Action        Action
	At            int64 // virtual time
	Allowed       bool
	// Prev chains entries: Hash(prev-hash || entry fields).
	Hash [32]byte
}

// Package is a sticky data–policy package: ciphertext, the policy that
// governs it, per-clause wrapped keys, and the tamper-evident audit
// chain. It is self-contained — enforcement travels with the data as the
// paper requires ("a fundamentally new access control mechanism that can
// travel with data").
type Package struct {
	Resource string
	Policy   Policy
	// nonceSeed feeds the AEAD nonce; unique per package.
	NonceSeed uint64
	Cipher    []byte
	// Wraps maps clauseKey -> wrapped data key for every read clause.
	Wraps map[string][32]byte
	// Audit is the append-only access log.
	Audit []AuditEntry
	// OwnerSig binds resource+policy+cipher under the owner's (pseudonym)
	// key so relays cannot swap policies.
	OwnerSig []byte
	OwnerPub []byte
}

// Seal builds a package: data encrypted under a fresh key, the key
// wrapped for every clause of every Read rule, the whole signed by the
// owner's pseudonym key. lookup supplies current-epoch attribute keys
// (authority side).
func Seal(resource string, data []byte, policy Policy, nonceSeed uint64, owner cryptoprim.KeyPair, lookup func(AttributeID) (AttrKey, bool), rand io.Reader) (*Package, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if policy.Resource != resource {
		return nil, fmt.Errorf("access: policy resource %q != package resource %q", policy.Resource, resource)
	}
	var dataKey [32]byte
	if _, err := io.ReadFull(rand, dataKey[:]); err != nil {
		return nil, fmt.Errorf("access: generating data key: %w", err)
	}
	cipherText, err := sealAESGCM(dataKey, nonceSeed, data)
	if err != nil {
		return nil, err
	}
	wraps := make(map[string][32]byte)
	for _, rule := range policy.Rules {
		if rule.Action != Read {
			continue
		}
		for _, clause := range rule.AnyOf {
			kek, ok := encryptorKEK(clause, lookup)
			if !ok {
				return nil, fmt.Errorf("access: cannot derive key for clause %v", clause)
			}
			wraps[clauseKey(clause)] = wrapKey(kek, dataKey)
		}
	}
	if len(wraps) == 0 {
		return nil, fmt.Errorf("access: policy %q grants no read clauses", resource)
	}
	p := &Package{
		Resource:  resource,
		Policy:    policy,
		NonceSeed: nonceSeed,
		Cipher:    cipherText,
		Wraps:     wraps,
		OwnerPub:  owner.Public,
	}
	p.OwnerSig = owner.Sign(p.signedBytes())
	return p, nil
}

func (p *Package) signedBytes() []byte {
	var buf bytes.Buffer
	buf.WriteString(p.Resource)
	buf.Write(p.Cipher)
	for _, r := range p.Policy.Rules {
		buf.WriteString(string(r.Action))
		for _, c := range r.AnyOf {
			buf.WriteString(clauseKey(c))
			buf.WriteByte(';')
		}
	}
	return buf.Bytes()
}

// VerifyIntegrity checks the owner signature over resource, policy and
// ciphertext. Relying parties call this before trusting the policy.
func (p *Package) VerifyIntegrity() error {
	if !cryptoprim.Verify(p.OwnerPub, p.signedBytes(), p.OwnerSig) {
		return fmt.Errorf("access: package integrity check failed (policy or data tampered)")
	}
	return nil
}

// Open attempts a Read access: the policy is evaluated against the
// subject's attributes and context; on success the matched clause's KEK
// unwraps the data key and the plaintext is returned. Every attempt —
// allowed or denied — appends a hash-chained audit entry. The returned
// Decision carries the evaluation work counters.
func (p *Package) Open(ring *Keyring, ctx Context, accessorToken [32]byte) ([]byte, Decision, error) {
	if err := p.VerifyIntegrity(); err != nil {
		return nil, Decision{}, err
	}
	d := Evaluate(&p.Policy, ring.Attrs(), Read, ctx)
	p.appendAudit(accessorToken, Read, ctx.Now, d.Allowed)
	if !d.Allowed {
		return nil, d, fmt.Errorf("access: denied by policy %q", p.Resource)
	}
	wrapped, ok := p.Wraps[clauseKey(d.MatchedClause)]
	if !ok {
		return nil, d, fmt.Errorf("access: no wrapped key for matched clause (package sealed before clause added)")
	}
	kek, ok := ring.kek(d.MatchedClause)
	if !ok {
		return nil, d, fmt.Errorf("access: keyring missing attribute keys for matched clause")
	}
	dataKey := unwrapKey(kek, wrapped)
	plain, err := openAESGCM(dataKey, p.NonceSeed, p.Cipher)
	if err != nil {
		// Wrong-epoch keys: policy satisfied nominally but the key no
		// longer opens — attribute revocation in action.
		return nil, d, fmt.Errorf("access: attribute keys stale or revoked: %w", err)
	}
	return plain, d, nil
}

func (p *Package) appendAudit(token [32]byte, action Action, now int64, allowed bool) {
	var prev [32]byte
	if n := len(p.Audit); n > 0 {
		prev = p.Audit[n-1].Hash
	}
	e := AuditEntry{AccessorToken: token, Action: action, At: now, Allowed: allowed}
	e.Hash = auditHash(prev, e)
	p.Audit = append(p.Audit, e)
}

func auditHash(prev [32]byte, e AuditEntry) [32]byte {
	al := byte(0)
	if e.Allowed {
		al = 1
	}
	return cryptoprim.Digest(
		prev[:],
		e.AccessorToken[:],
		[]byte(e.Action),
		[]byte{al},
		[]byte(fmt.Sprintf("%d", e.At)),
	)
}

// VerifyAudit checks the audit chain's integrity, returning the index of
// the first tampered entry or -1 when intact.
func (p *Package) VerifyAudit() int {
	var prev [32]byte
	for i, e := range p.Audit {
		if auditHash(prev, e) != e.Hash {
			return i
		}
		prev = e.Hash
	}
	return -1
}
