package access

import (
	"bytes"
	"math/rand"
	"testing"

	"vcloud/internal/cryptoprim"
	"vcloud/internal/geo"
)

func detRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

const (
	attrHead   AttributeID = "traffic/role:cluster-head"
	attrBuffer AttributeID = "traffic/role:buffer-node"
	attrMed    AttributeID = "city/automation:3+"
	attrPolice AttributeID = "city/role:police"
)

func basicPolicy() Policy {
	return Policy{
		Resource: "road-conditions",
		Rules: []Rule{
			{Action: Read, AnyOf: []Clause{{attrHead, attrMed}, {attrPolice}}},
			{Action: Write, AnyOf: []Clause{{attrHead}}},
		},
	}
}

func TestPolicyValidate(t *testing.T) {
	p := basicPolicy()
	if err := p.Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	bad := []Policy{
		{},
		{Resource: "r"},
		{Resource: "r", Rules: []Rule{{Action: Read}}},
		{Resource: "r", Rules: []Rule{{Action: Read, AnyOf: []Clause{{}}}}},
		{Resource: "r", Rules: []Rule{{AnyOf: []Clause{{attrHead}}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestEvaluate(t *testing.T) {
	p := basicPolicy()
	tests := []struct {
		name   string
		attrs  AttrSet
		action Action
		want   bool
	}{
		{"head+automation reads", AttrSet{attrHead: 0, attrMed: 0}, Read, true},
		{"police reads alone", AttrSet{attrPolice: 0}, Read, true},
		{"head alone cannot read", AttrSet{attrHead: 0}, Read, false},
		{"head alone writes", AttrSet{attrHead: 0}, Write, true},
		{"police cannot write", AttrSet{attrPolice: 0}, Write, false},
		{"nobody computes", AttrSet{attrHead: 0, attrPolice: 0, attrMed: 0}, Compute, false},
		{"empty attrs denied", AttrSet{}, Read, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := Evaluate(&p, tt.attrs, tt.action, Context{})
			if d.Allowed != tt.want {
				t.Errorf("allowed = %v, want %v", d.Allowed, tt.want)
			}
			if d.Allowed && len(d.MatchedClause) == 0 {
				t.Error("allowed without matched clause")
			}
			if !d.Allowed && d.MatchedClause != nil {
				t.Error("denied with matched clause")
			}
		})
	}
}

func TestEvaluateWorkCounters(t *testing.T) {
	p := basicPolicy()
	d := Evaluate(&p, AttrSet{attrPolice: 0}, Read, Context{})
	// Clause 1 {head,med} fails at first attr; clause 2 {police} matches.
	if d.ClausesChecked != 2 {
		t.Errorf("ClausesChecked = %d, want 2", d.ClausesChecked)
	}
	if d.AttrsChecked != 2 {
		t.Errorf("AttrsChecked = %d, want 2", d.AttrsChecked)
	}
}

func TestContextRules(t *testing.T) {
	area := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 100})
	p := Policy{
		Resource: "r",
		Rules: []Rule{
			{
				Action:  Read,
				AnyOf:   []Clause{{attrHead}},
				Context: ContextRule{Area: &area, MaxSpeed: 20},
			},
			{
				Action:  Read,
				AnyOf:   []Clause{{attrBuffer}},
				Context: ContextRule{EmergencyOnly: true},
			},
		},
	}
	attrs := AttrSet{attrHead: 0, attrBuffer: 0}
	// Inside area, slow: allowed.
	d := Evaluate(&p, attrs, Read, Context{Pos: geo.Point{X: 50, Y: 50}, Speed: 10})
	if !d.Allowed {
		t.Error("in-area slow request denied")
	}
	// Outside area: first rule skipped; second needs emergency.
	d = Evaluate(&p, attrs, Read, Context{Pos: geo.Point{X: 500, Y: 500}, Speed: 10})
	if d.Allowed {
		t.Error("out-of-area request allowed")
	}
	// Too fast.
	d = Evaluate(&p, attrs, Read, Context{Pos: geo.Point{X: 50, Y: 50}, Speed: 40})
	if d.Allowed {
		t.Error("over-speed request allowed")
	}
	// Emergency unlocks the second rule anywhere.
	d = Evaluate(&p, attrs, Read, Context{Pos: geo.Point{X: 500, Y: 500}, Emergency: true})
	if !d.Allowed {
		t.Error("emergency escalation did not grant access")
	}
}

func TestAuthorityGrantRevoke(t *testing.T) {
	a, err := NewAuthority("traffic", detRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "traffic" {
		t.Error("name wrong")
	}
	k1 := a.Grant(attrHead)
	k2 := a.Grant(attrHead)
	if k1 != k2 {
		t.Error("same-epoch grants differ")
	}
	a.Revoke(attrHead)
	k3 := a.Grant(attrHead)
	if k3.Epoch != k1.Epoch+1 {
		t.Errorf("epoch after revoke = %d", k3.Epoch)
	}
	if k3.Secret == k1.Secret {
		t.Error("revocation did not change the secret")
	}
	if _, err := NewAuthority("", detRand(1)); err == nil {
		t.Error("empty name should error")
	}
}

func TestKeyring(t *testing.T) {
	a, _ := NewAuthority("traffic", detRand(1))
	ring := NewKeyring()
	ring.Add(a.Grant(attrHead))
	if !ring.Has(attrHead) || ring.Has(attrMed) {
		t.Error("Has wrong")
	}
	attrs := ring.Attrs()
	if _, ok := attrs[attrHead]; !ok {
		t.Error("Attrs missing granted attribute")
	}
	if _, ok := ring.kek(Clause{attrHead, attrMed}); ok {
		t.Error("kek derived despite missing attribute")
	}
	kek1, ok := ring.kek(Clause{attrHead})
	if !ok {
		t.Fatal("kek failed")
	}
	// Clause order must not matter.
	ring.Add(a.Grant(attrMed))
	kekAB, _ := ring.kek(Clause{attrHead, attrMed})
	kekBA, _ := ring.kek(Clause{attrMed, attrHead})
	if kekAB != kekBA {
		t.Error("kek depends on clause order")
	}
	if kekAB == kek1 {
		t.Error("different clauses share a kek")
	}
}

// sealRig builds a package readable by cluster heads with automation 3+,
// or police.
type sealRig struct {
	traffic, city *Authority
	owner         cryptoprim.KeyPair
	pkg           *Package
	data          []byte
}

func newSealRig(t testing.TB) *sealRig {
	t.Helper()
	r := &sealRig{data: []byte("icy patch at x=410, slow to 30km/h")}
	var err error
	if r.traffic, err = NewAuthority("traffic", detRand(1)); err != nil {
		t.Fatal(err)
	}
	if r.city, err = NewAuthority("city", detRand(2)); err != nil {
		t.Fatal(err)
	}
	if r.owner, err = cryptoprim.GenerateKey(detRand(3)); err != nil {
		t.Fatal(err)
	}
	lookup := func(id AttributeID) (AttrKey, bool) {
		switch id {
		case attrHead, attrBuffer:
			return r.traffic.Grant(id), true
		case attrMed, attrPolice:
			return r.city.Grant(id), true
		}
		return AttrKey{}, false
	}
	pkg, err := Seal("road-conditions", r.data, basicPolicy(), 7, r.owner, lookup, detRand(4))
	if err != nil {
		t.Fatal(err)
	}
	r.pkg = pkg
	return r
}

func TestSealAndOpen(t *testing.T) {
	r := newSealRig(t)
	ring := NewKeyring()
	ring.Add(r.traffic.Grant(attrHead))
	ring.Add(r.city.Grant(attrMed))
	plain, d, err := r.pkg.Open(ring, Context{Now: 100}, [32]byte{1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(plain, r.data) {
		t.Error("decrypted data mismatch")
	}
	if !d.Allowed {
		t.Error("decision should be allowed")
	}
}

func TestOpenDeniedWithoutAttributes(t *testing.T) {
	r := newSealRig(t)
	ring := NewKeyring()
	ring.Add(r.traffic.Grant(attrBuffer)) // wrong role
	if _, d, err := r.pkg.Open(ring, Context{Now: 5}, [32]byte{2}); err == nil || d.Allowed {
		t.Error("unauthorized open succeeded")
	}
	// The denial must still be audited.
	if len(r.pkg.Audit) != 1 || r.pkg.Audit[0].Allowed {
		t.Errorf("audit = %+v", r.pkg.Audit)
	}
}

func TestOpenAfterRevocationFails(t *testing.T) {
	r := newSealRig(t)
	// Grant keys, then revoke the attribute (epoch bump) and re-seal a
	// new package; the old keys must not open it.
	ring := NewKeyring()
	ring.Add(r.traffic.Grant(attrHead))
	ring.Add(r.city.Grant(attrMed))
	r.traffic.Revoke(attrHead)
	lookup := func(id AttributeID) (AttrKey, bool) {
		switch id {
		case attrHead, attrBuffer:
			return r.traffic.Grant(id), true
		case attrMed, attrPolice:
			return r.city.Grant(id), true
		}
		return AttrKey{}, false
	}
	pkg2, err := Seal("road-conditions", r.data, basicPolicy(), 8, r.owner, lookup, detRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pkg2.Open(ring, Context{}, [32]byte{3}); err == nil {
		t.Error("stale keys opened a post-revocation package")
	}
	// Fresh keys work.
	ring2 := NewKeyring()
	ring2.Add(r.traffic.Grant(attrHead))
	ring2.Add(r.city.Grant(attrMed))
	if _, _, err := pkg2.Open(ring2, Context{}, [32]byte{4}); err != nil {
		t.Errorf("fresh keys failed: %v", err)
	}
}

func TestPackageIntegrity(t *testing.T) {
	r := newSealRig(t)
	if err := r.pkg.VerifyIntegrity(); err != nil {
		t.Fatalf("intact package rejected: %v", err)
	}
	// Tamper with the policy: swap the read clause for an attacker one.
	r.pkg.Policy.Rules[0].AnyOf = []Clause{{attrBuffer}}
	if err := r.pkg.VerifyIntegrity(); err == nil {
		t.Error("policy tampering undetected")
	}
	ring := NewKeyring()
	ring.Add(r.traffic.Grant(attrBuffer))
	if _, _, err := r.pkg.Open(ring, Context{}, [32]byte{5}); err == nil {
		t.Error("tampered package opened")
	}
}

func TestAuditChain(t *testing.T) {
	r := newSealRig(t)
	ring := NewKeyring()
	ring.Add(r.traffic.Grant(attrHead))
	ring.Add(r.city.Grant(attrMed))
	for i := 0; i < 5; i++ {
		if _, _, err := r.pkg.Open(ring, Context{Now: int64(i)}, [32]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.pkg.Audit) != 5 {
		t.Fatalf("audit entries = %d", len(r.pkg.Audit))
	}
	if idx := r.pkg.VerifyAudit(); idx != -1 {
		t.Errorf("intact audit reported tampered at %d", idx)
	}
	// Tamper with a middle entry.
	r.pkg.Audit[2].Allowed = false
	if idx := r.pkg.VerifyAudit(); idx != 2 {
		t.Errorf("tamper detected at %d, want 2", idx)
	}
}

func TestSealValidation(t *testing.T) {
	owner, _ := cryptoprim.GenerateKey(detRand(1))
	auth, _ := NewAuthority("traffic", detRand(2))
	lookup := func(id AttributeID) (AttrKey, bool) { return auth.Grant(id), true }
	if _, err := Seal("r", []byte("d"), Policy{}, 1, owner, lookup, detRand(3)); err == nil {
		t.Error("invalid policy accepted")
	}
	p := basicPolicy()
	if _, err := Seal("other", []byte("d"), p, 1, owner, lookup, detRand(3)); err == nil {
		t.Error("resource mismatch accepted")
	}
	// Policy with only write rules has nothing to wrap.
	wp := Policy{Resource: "r", Rules: []Rule{{Action: Write, AnyOf: []Clause{{attrHead}}}}}
	if _, err := Seal("r", []byte("d"), wp, 1, owner, lookup, detRand(3)); err == nil {
		t.Error("write-only policy accepted for sealing")
	}
	// Unknown attribute in clause.
	badLookup := func(id AttributeID) (AttrKey, bool) { return AttrKey{}, false }
	if _, err := Seal("road-conditions", []byte("d"), basicPolicy(), 1, owner, badLookup, detRand(3)); err == nil {
		t.Error("unresolvable clause accepted")
	}
}

func TestEmergencyEscalationLatencyShape(t *testing.T) {
	// E6's qualitative check: emergency escalation is just one more rule
	// evaluation — decision work must stay within a small constant.
	area := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 100})
	p := Policy{
		Resource: "r",
		Rules: []Rule{
			{Action: Read, AnyOf: []Clause{{attrHead, attrMed}}, Context: ContextRule{Area: &area}},
			{Action: Read, AnyOf: []Clause{{attrBuffer}}, Context: ContextRule{EmergencyOnly: true}},
		},
	}
	attrs := AttrSet{attrBuffer: 0}
	d := Evaluate(&p, attrs, Read, Context{Emergency: true, Pos: geo.Point{X: 500, Y: 0}})
	if !d.Allowed {
		t.Fatal("emergency access denied")
	}
	if d.ClausesChecked > 2 || d.AttrsChecked > 3 {
		t.Errorf("escalation work: clauses=%d attrs=%d", d.ClausesChecked, d.AttrsChecked)
	}
}
