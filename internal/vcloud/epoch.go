// Controller epochs: the fencing token that makes leadership
// partition-safe (ISSUE 3 tentpole). Every fenced controller carries a
// monotonically increasing epoch counter; the counter is stamped on
// every advertisement, checkpoint, dispatch and result, and grows by at
// least one on every promotion, so two controllers that both believe
// they lead the same cloud can always be ordered. Workers reject
// dispatches from a counter below the highest they have witnessed, and
// a controller that hears a rival with a superseding epoch abdicates
// deterministically (higher counter wins).
//
// Counters are allocated collision-free in the style of Viewstamped
// Replication's view numbers: the high bits hold a round and the low
// epochAddrBits hold the claimant's address, so two controllers that
// bump concurrently from the same base — a standby promoting off a
// stale checkpoint racing a survivor's merge bump — mint counters that
// differ in the address bits and stay totally ordered. Without this,
// equal counters from concurrent bumps would tie, and ties bypass the
// counter-only staleness checks at workers and replicas.
//
// A zero epoch (Counter == 0) is the legacy unfenced mode: every
// pre-fencing code path sends zero epochs and every fencing check
// ignores them, so deployments that do not opt in behave bit-for-bit
// as before.
package vcloud

import (
	"fmt"

	"vcloud/internal/vnet"
)

// Epoch is a fencing token: a monotonically increasing leadership
// counter plus the address that claimed it.
type Epoch struct {
	// Counter orders leadership generations. Zero means unfenced.
	Counter uint64
	// Claimant is the controller address that claimed this counter.
	Claimant vnet.Addr
}

// Zero reports whether the epoch is the legacy unfenced token.
func (e Epoch) Zero() bool { return e.Counter == 0 }

// Supersedes reports whether e strictly supersedes o: a worker that has
// witnessed e must reject dispatches carrying o.
func (e Epoch) Supersedes(o Epoch) bool { return e.Counter > o.Counter }

// Defers reports whether a controller holding e must abdicate to a
// rival advertising r: the rival carries a higher counter, or — as
// defense in depth, since address-sharded allocation should make
// counter ties between distinct controllers impossible — the same
// counter with a lower claimant address. A controller never defers to
// itself or to a zero epoch.
func (e Epoch) Defers(r Epoch) bool {
	if r.Zero() || r.Claimant == e.Claimant {
		return false
	}
	if r.Counter != e.Counter {
		return r.Counter > e.Counter
	}
	return r.Claimant < e.Claimant
}

// epochAddrBits is how many low counter bits carry the claimant's
// address (the round occupies the bits above, up to epochIDBits total).
const epochAddrBits = 16

// NextEpoch mints the first epoch claimant can claim that strictly
// supersedes every counter at or below after: the round above after's
// is taken and the claimant's address is packed into the low bits, so
// concurrent bumps from the same base by different controllers can
// never collide.
func NextEpoch(after uint64, claimant vnet.Addr) Epoch {
	round := after>>epochAddrBits + 1
	return Epoch{
		Counter:  round<<epochAddrBits | uint64(uint16(claimant)),
		Claimant: claimant,
	}
}

// Round is the allocation round the counter encodes — the
// human-readable "generation number" for traces and reports.
func (e Epoch) Round() uint64 { return e.Counter >> epochAddrBits }

// String implements fmt.Stringer, printing the round rather than the
// raw address-sharded counter.
func (e Epoch) String() string { return fmt.Sprintf("e%d@%d", e.Round(), e.Claimant) }

// epochIDBits is how many low bits of a fenced TaskID hold the
// per-epoch sequence number; the epoch counter occupies the bits above.
const epochIDBits = 32

// epochTaskID builds a fenced task ID: the epoch counter prefixes the
// per-epoch sequence so IDs minted by different leadership generations
// can never collide — which is what makes the (task, epoch) applied
// ledger a sound exactly-once dedupe key. Counter zero (legacy mode)
// yields the plain sequence, preserving historical IDs.
func epochTaskID(counter uint64, seq TaskID) TaskID {
	if counter == 0 {
		return seq
	}
	return TaskID(counter<<epochIDBits | uint64(seq)&(1<<epochIDBits-1))
}

// AppliedRecord is one row of the applied-outcome ledger: task ID plus
// the epoch counter under which its outcome was applied. The ledger is
// replicated in checkpoints and exchanged in merges so no outcome is
// ever applied twice across epochs.
type AppliedRecord struct {
	ID    TaskID
	Epoch uint64
}

// appliedLedgerCap bounds the replicated ledger: only recently applied
// tasks can still be in flight somewhere (a stale checkpoint or a
// partitioned rival), so the ledger keeps the most recent entries and
// forgets the rest — bounding checkpoint growth over long soaks.
const appliedLedgerCap = 2048
