package vcloud_test

import (
	"testing"
	"time"

	"vcloud/internal/vcloud"
	"vcloud/internal/vnet"
)

func TestLedgerTransfersAndChain(t *testing.T) {
	l := vcloud.NewLedger()
	if err := l.Transfer(0, 1, 10, 20, 5); err != nil {
		t.Fatal(err)
	}
	if err := l.Transfer(1e9, 2, 20, 30, 3); err != nil {
		t.Fatal(err)
	}
	if got := l.Balance(10); got != -5 {
		t.Errorf("balance(10) = %d, want -5", got)
	}
	if got := l.Balance(20); got != 2 {
		t.Errorf("balance(20) = %d, want 2", got)
	}
	if got := l.Balance(30); got != 3 {
		t.Errorf("balance(30) = %d, want 3", got)
	}
	if got := l.TotalVolume(); got != 8 {
		t.Errorf("volume = %d", got)
	}
	if idx := l.Verify(); idx != -1 {
		t.Errorf("intact chain reported tampered at %d", idx)
	}
	// Tampering detection.
	entries := l.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Entries() returns a copy; mutate through it must not affect chain.
	entries[0].Amount = 999
	if idx := l.Verify(); idx != -1 {
		t.Error("copy mutation affected the ledger")
	}
}

func TestLedgerValidation(t *testing.T) {
	l := vcloud.NewLedger()
	if err := l.Transfer(0, 1, 5, 5, 1); err == nil {
		t.Error("self-transfer should error")
	}
	if err := l.Transfer(0, 1, 5, 6, 0); err == nil {
		t.Error("zero amount should error")
	}
	if err := l.Transfer(0, 1, 5, 6, -2); err == nil {
		t.Error("negative amount should error")
	}
}

func TestIncentiveSettlementOnCompletion(t *testing.T) {
	s := parkingScenario(t, 8)
	stats := &vcloud.Stats{}
	ledger := vcloud.NewLedger()
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
		Controller: vcloud.ControllerConfig{Ledger: ledger},
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	gate := d.Controllers[0]
	client := vnet.Addr(7777) // an account, not necessarily a radio node
	const tasks = 6
	for i := 0; i < tasks; i++ {
		if _, err := gate.SubmitFor(client, vcloud.Task{Ops: 4000, InputBytes: 200, OutputBytes: 100}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if stats.Completed.Value() != tasks {
		t.Fatalf("completed %d/%d", stats.Completed.Value(), tasks)
	}
	// Client paid 4 credits per task (4000 ops @ 1 credit/kOp).
	if got := ledger.Balance(client); got != -4*tasks {
		t.Errorf("client balance = %d, want %d", got, -4*tasks)
	}
	// Workers collectively earned what the client paid.
	var earned int64
	for _, m := range gate.Members() {
		earned += ledger.Balance(m)
	}
	if earned != 4*tasks {
		t.Errorf("workers earned %d, want %d", earned, 4*tasks)
	}
	if ledger.Verify() != -1 {
		t.Error("ledger chain broken")
	}
	if int(ledger.TotalVolume()) != 4*tasks {
		t.Errorf("volume = %d", ledger.TotalVolume())
	}
}
