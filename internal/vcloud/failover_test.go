package vcloud_test

import (
	"testing"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/mobility"
	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
)

// TestCheckpointContents checks the replicated state: membership and the
// in-flight task table travel, function hooks (which cannot cross the
// wire) are stripped.
func TestCheckpointContents(t *testing.T) {
	s := parkingScenario(t, 5)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
		Failover:  true,
		DwellMode: mobility.DwellRouteAware,
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	gate := d.Controllers[0]
	if _, err := gate.Submit(vcloud.Task{Ops: 50_000}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	ck := gate.Checkpoint()
	if ck.Controller != gate.Addr() {
		t.Errorf("checkpoint controller = %d, want %d", ck.Controller, gate.Addr())
	}
	if len(ck.Members) != gate.NumMembers() {
		t.Errorf("checkpoint members = %d, want %d", len(ck.Members), gate.NumMembers())
	}
	for i := 1; i < len(ck.Members); i++ {
		if ck.Members[i-1].Addr >= ck.Members[i].Addr {
			t.Fatal("checkpoint members not sorted by address")
		}
	}
	if len(ck.Tasks) != 1 {
		t.Fatalf("checkpoint tasks = %d, want 1", len(ck.Tasks))
	}
	tk := ck.Tasks[0]
	if tk.RemainingOps <= 0 || tk.RemainingOps > 50_000 {
		t.Errorf("checkpointed RemainingOps = %v", tk.RemainingOps)
	}
	if ck.Cfg.Dwell != nil || ck.Cfg.AcceptJoin != nil || ck.Cfg.Ledger != nil || ck.Cfg.Trace != nil {
		t.Error("checkpoint carries function hooks; closures cannot cross the wire")
	}
	if ck.FailoverTTL <= 0 {
		t.Errorf("checkpoint FailoverTTL = %v", ck.FailoverTTL)
	}
}

// TestFailoverPromotesStandby is the tentpole end-to-end: the controller
// replicates checkpoints to a standby member; when the controller
// crashes, the standby promotes itself, members reattach, and in-flight
// tasks resume from their checkpointed RemainingOps.
func TestFailoverPromotesStandby(t *testing.T) {
	s := parkingScenario(t, 8)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{Failover: true}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	gate := d.Controllers[0]
	standbys := 0
	for _, m := range d.Members {
		if m.Standby() {
			standbys++
		}
	}
	if standbys != 1 {
		t.Fatalf("standbys holding a checkpoint = %d, want exactly 1", standbys)
	}

	// Long tasks that will be in flight at crash time (5 s compute each at
	// the default 1000 ops/s CPU).
	for i := 0; i < 4; i++ {
		if _, err := gate.Submit(vcloud.Task{Ops: 5000, InputBytes: 1000, OutputBytes: 500}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	completedAtCrash := stats.Completed.Value()
	gate.Crash()
	if !gate.Stopped() {
		t.Fatal("Crash did not stop the controller")
	}
	if err := s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	if got := stats.Failovers.Value(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if stats.Resumed.Value() == 0 {
		t.Error("no checkpointed tasks resumed")
	}
	if stats.Completed.Value() <= completedAtCrash {
		t.Errorf("nothing completed after the crash (at-crash=%d, now=%d)",
			completedAtCrash, stats.Completed.Value())
	}
	live := d.ActiveControllers()
	if len(live) != 1 {
		t.Fatalf("active controllers = %d, want 1 (the successor)", len(live))
	}
	succ := live[0]
	if succ.Addr() == gate.Addr() {
		t.Error("successor reuses the crashed controller's node")
	}
	if _, still := d.Members[mobility.VehicleID(succ.Addr())]; still {
		t.Error("promoted vehicle still tracked as a member")
	}
	// Members reattached: the successor should have most of the survivors
	// (population minus the promoted vehicle).
	if succ.NumMembers() < 5 {
		t.Errorf("successor members = %d, want most of 7", succ.NumMembers())
	}
	// And the successor actually works: a fresh submission completes.
	before := stats.Completed.Value()
	if err := d.SubmitAnywhere(vcloud.Task{Ops: 500}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if stats.Completed.Value() <= before {
		t.Error("successor controller completed no new work")
	}
}

// TestCrashVersusStop pins the two halting semantics apart: Stop fails
// pending tasks through their callbacks; Crash is silent process death.
func TestCrashVersusStop(t *testing.T) {
	for _, graceful := range []bool{true, false} {
		s := parkingScenario(t, 4)
		stats := &vcloud.Stats{}
		d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		gate := d.Controllers[0]
		calls := 0
		var last vcloud.TaskResult
		if _, err := gate.Submit(vcloud.Task{Ops: 60_000}, func(r vcloud.TaskResult) {
			calls++
			last = r
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
		if graceful {
			gate.Stop()
			if calls != 1 {
				t.Fatalf("Stop fired done %d times, want exactly 1", calls)
			}
			if last.OK || last.Reason != vcloud.ReasonControllerStopped {
				t.Errorf("Stop result = %+v, want controller-stopped failure", last)
			}
			if stats.Failed.Value() != 1 {
				t.Errorf("Stop failed counter = %d, want 1", stats.Failed.Value())
			}
		} else {
			gate.Crash()
			if err := s.RunFor(30 * time.Second); err != nil {
				t.Fatal(err)
			}
			if calls != 0 {
				t.Errorf("Crash fired done %d times, want 0 (silent death)", calls)
			}
			if stats.Failed.Value() != 0 {
				t.Errorf("Crash failed counter = %d, want 0", stats.Failed.Value())
			}
		}
		if gate.PendingTasks() != 0 && graceful {
			t.Errorf("tasks still pending after Stop: %d", gate.PendingTasks())
		}
	}
}

// TestStopWithInflightHandovers drives the churny highway workload whose
// tasks are mid-handover, stops the controller cold, and checks every
// submission's callback fired exactly once.
func TestStopWithInflightHandovers(t *testing.T) {
	s := highwayScenario(t, 5, 25)
	if _, err := s.AddRSU(geo.Point{X: 1500, Y: 15}); err != nil {
		t.Fatal(err)
	}
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Infrastructure, vcloud.DeployConfig{
		Handover:  true,
		DwellMode: mobility.DwellRouteAware,
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	const n = 10
	calls := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		if err := d.SubmitAnywhere(vcloud.Task{Ops: 40_000, InputBytes: 500, OutputBytes: 500},
			func(r vcloud.TaskResult) { calls[i]++ }); err != nil {
			t.Fatal(err)
		}
	}
	// Long tasks on transient members: by 30 s some work has handed over
	// (and some may have completed); the rest is in flight.
	if err := s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	d.Controllers[0].Stop()
	if err := s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, c := range calls {
		if c != 1 {
			t.Errorf("task %d: done fired %d times, want exactly 1", i, c)
		}
	}
	if got := stats.Completed.Value() + stats.Failed.Value(); got != n {
		t.Errorf("completed+failed = %d, want %d", got, n)
	}
	if stats.Handovers.Value() == 0 {
		t.Error("workload produced no handovers; test lost its in-flight-handover coverage")
	}
}

// TestExpiredMemberReassignsImmediately is the regression test for the
// member-expiry bugfix: when a member goes silent past MemberTTL, its
// outstanding tasks must be reassigned at expiry time, not parked until
// the generous per-task timeout fires.
func TestExpiredMemberReassignsImmediately(t *testing.T) {
	s := parkingScenario(t, 3)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// 4 s of compute: the per-task timeout lands at (4+2)*3+2 = 20 s.
	var res vcloud.TaskResult
	var doneAt sim.Time
	submitted := s.Kernel.Now()
	if err := d.SubmitAnywhere(vcloud.Task{Ops: 4000}, func(r vcloud.TaskResult) {
		res = r
		doneAt = s.Kernel.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The assignee vanishes silently (no Leave): it expires from the
	// member table after MemberTTL (3 s).
	stopRunning(t, d)
	if err := s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("task did not complete after reassignment: %+v", res)
	}
	elapsed := (doneAt - submitted).Seconds()
	// Immediate reassignment: ~3 s TTL + ~4 s compute ≈ 8 s. Waiting for
	// the per-task timeout would take 20 s + 4 s ≈ 24 s.
	if elapsed > 14 {
		t.Errorf("recovery took %.1f s; expiry should reassign immediately, not wait out the task timeout", elapsed)
	}
	if res.Retries < 1 {
		t.Error("completion without a retry: the reassignment path was not exercised")
	}
	if stats.WastedOps == 0 {
		t.Error("vanished member's partial work not counted as waste")
	}
}

// stopRunning stops the member currently executing a task (fails the test
// when none is).
func stopRunning(t *testing.T, d *vcloud.Deployment) {
	t.Helper()
	for _, m := range d.Members {
		if m.Running() > 0 {
			m.Stop()
			return
		}
	}
	t.Fatal("no member is executing a task")
}

// TestTaskTimeoutReassigns covers the per-task timeout path that remains
// after the expiry bugfix: the assignee stays a fresh member (long TTL)
// but vanishes mid-task, so only the timeout can recover the work.
func TestTaskTimeoutReassigns(t *testing.T) {
	s := parkingScenario(t, 3)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
		Controller: vcloud.ControllerConfig{MemberTTL: 10 * time.Minute},
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var res vcloud.TaskResult
	if err := d.SubmitAnywhere(vcloud.Task{Ops: 2000}, func(r vcloud.TaskResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	stopRunning(t, d)
	if err := s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("task did not recover through the timeout path: %+v", res)
	}
	if res.Retries < 1 {
		t.Error("no retry recorded: timeout path not exercised")
	}
	if stats.WastedOps == 0 {
		t.Error("timed-out attempt's work not counted as waste")
	}
}

// TestTaskTimeoutExhaustsRetries pins the failure end of the timeout
// path: when every member silently declines (battery budget), the task
// times out RetryLimit times and fails.
func TestTaskTimeoutExhaustsRetries(t *testing.T) {
	s := parkingScenario(t, 3)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
		BatteryOps: 500, // every member declines a 1000-ops task outright
		Controller: vcloud.ControllerConfig{RetryLimit: 2},
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var res vcloud.TaskResult
	if err := d.SubmitAnywhere(vcloud.Task{Ops: 1000}, func(r vcloud.TaskResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Reason != vcloud.ReasonRetriesExhausted {
		t.Errorf("result = %+v, want retries-exhausted failure", res)
	}
	if got := stats.Retries.Value(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if stats.Failed.Value() != 1 {
		t.Errorf("failed = %d, want 1", stats.Failed.Value())
	}
}
