package vcloud

import (
	"math/rand"
	"testing"
	"time"

	"vcloud/internal/auth"
	"vcloud/internal/geo"
	"vcloud/internal/pki"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/vnet"
)

// TestSecureControllerIgnoresForgedJoin is a white-box drill: a join
// message with a spoofed origin that never completed a handshake must
// not enter the membership, even though the frame itself is well-formed.
func TestSecureControllerIgnoresForgedJoin(t *testing.T) {
	net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 2, AisleLenM: 100, AisleGapM: 40})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.New(scenario.Spec{Seed: 2, Network: net, NumVehicles: 4, Parked: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddRSU(geo.Point{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	ta, err := pki.New("TA", rand.New(rand.NewSource(5)), pki.Config{PoolSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	stats := &Stats{}
	met := &auth.Metrics{}
	sd, err := DeploySecure(s, Stationary, DeployConfig{}, Security{TA: ta, Metrics: met}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	gate := sd.Controllers[0]
	before := gate.NumMembers()
	if before == 0 {
		t.Fatal("no legitimate members joined")
	}

	// Forge: vehicle 1's radio transmits a join whose Origin claims an
	// address that never authenticated (9999).
	node, ok := sd.MemberNode(1)
	if !ok {
		t.Fatal("no node for vehicle 1")
	}
	forged := vnet.Message{
		Origin: vnet.Addr(9999), Seq: 77, Dest: gate.Addr(),
		Kind: kindJoin, TTL: 1, Size: 128,
		Payload: joinMsg{Resources: Resources{CPU: 1e9}},
	}
	node.SendTo(gate.Addr(), forged)
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, m := range gate.Members() {
		if m == vnet.Addr(9999) {
			t.Fatal("forged join admitted")
		}
	}
	if gate.NumMembers() < before {
		t.Error("legitimate members lost")
	}
}
