package vcloud_test

import (
	"sort"
	"testing"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/mobility"
	"vcloud/internal/radio"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
	"vcloud/internal/vnet"
)

func parkingScenario(t testing.TB, vehicles int) *scenario.Scenario {
	t.Helper()
	net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 3, AisleLenM: 150, AisleGapM: 40})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.New(scenario.Spec{Seed: 1, Network: net, NumVehicles: vehicles, Parked: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddRSU(geo.Point{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	return s
}

func highwayScenario(t testing.TB, seed int64, vehicles int) *scenario.Scenario {
	t.Helper()
	net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 3000, Segments: 3, SpeedLimit: 25, Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.New(scenario.Spec{Seed: seed, Network: net, NumVehicles: vehicles})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTaskValidate(t *testing.T) {
	ok := vcloud.Task{Ops: 100, InputBytes: 10, OutputBytes: 10}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	bad := []vcloud.Task{
		{Ops: 0},
		{Ops: -5},
		{Ops: 10, InputBytes: -1},
		{Ops: 10, OutputBytes: -1},
	}
	for i, tk := range bad {
		if err := tk.Validate(); err == nil {
			t.Errorf("bad task %d accepted", i)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if vcloud.TaskPending.String() != "pending" || vcloud.TaskCompleted.String() != "completed" ||
		vcloud.TaskRunning.String() != "running" || vcloud.TaskFailed.String() != "failed" {
		t.Error("task status strings")
	}
	if vcloud.TaskStatus(0).String() != "unknown" {
		t.Error("zero status")
	}
	if vcloud.Stationary.String() != "stationary" || vcloud.Infrastructure.String() != "infrastructure" ||
		vcloud.Dynamic.String() != "dynamic" || vcloud.Architecture(0).String() != "unknown" {
		t.Error("architecture strings")
	}
}

func TestHasSensor(t *testing.T) {
	r := vcloud.Resources{Sensors: []string{"camera", "lidar"}}
	if !r.HasSensor("lidar") || !r.HasSensor("") || r.HasSensor("radar") {
		t.Error("HasSensor wrong")
	}
}

func TestStationaryCloudCompletesTasks(t *testing.T) {
	s := parkingScenario(t, 12)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Controllers) != 1 {
		t.Fatalf("controllers = %d", len(d.Controllers))
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Let membership form.
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Controllers[0].NumMembers() < 8 {
		t.Fatalf("members = %d, want most of 12", d.Controllers[0].NumMembers())
	}
	completed := 0
	for i := 0; i < 20; i++ {
		task := vcloud.Task{Ops: 500, InputBytes: 2000, OutputBytes: 1000}
		if err := d.SubmitAnywhere(task, func(r vcloud.TaskResult) {
			if r.OK {
				completed++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if completed < 19 {
		t.Errorf("completed %d/20 (failed=%d retries=%d)", completed, stats.Failed.Value(), stats.Retries.Value())
	}
	if stats.CompletionRate() < 0.9 {
		t.Errorf("completion rate %v", stats.CompletionRate())
	}
	if stats.Latency.Count() == 0 || stats.Latency.Mean() <= 0 {
		t.Error("latency histogram empty")
	}
}

func TestDeployValidation(t *testing.T) {
	s := parkingScenario(t, 2)
	stats := &vcloud.Stats{}
	if _, err := vcloud.Deploy(nil, vcloud.Stationary, vcloud.DeployConfig{}, stats); err == nil {
		t.Error("nil scenario should error")
	}
	if _, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, nil); err == nil {
		t.Error("nil stats should error")
	}
	if _, err := vcloud.Deploy(s, vcloud.Architecture(9), vcloud.DeployConfig{}, stats); err == nil {
		t.Error("bad architecture should error")
	}
	// Infrastructure without RSU.
	net, err := roadnet.Grid(roadnet.GridSpec{Rows: 2, Cols: 2, Spacing: 100})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := scenario.New(scenario.Spec{Seed: 1, Network: net, NumVehicles: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vcloud.Deploy(s2, vcloud.Infrastructure, vcloud.DeployConfig{}, stats); err == nil {
		t.Error("infrastructure without RSU should error")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := parkingScenario(t, 3)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SubmitAnywhere(vcloud.Task{Ops: 0}, nil); err == nil {
		t.Error("invalid task accepted")
	}
	c := d.Controllers[0]
	c.Stop()
	if _, err := c.Submit(vcloud.Task{Ops: 10}, nil); err == nil {
		t.Error("submit to stopped controller accepted")
	}
}

func TestSensorConstrainedPlacement(t *testing.T) {
	net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 2, AisleLenM: 100, AisleGapM: 40})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.New(scenario.Spec{
		Seed: 1, Network: net, NumVehicles: 6, Parked: true,
		Profile: func(i int) mobility.Profile {
			p := mobility.DefaultProfile()
			if i == 3 {
				p.Sensors = []string{"lidar"}
			} else {
				p.Sensors = []string{"camera"}
			}
			return p
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddRSU(geo.Point{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var lidarOK, radarOK bool
	if err := d.SubmitAnywhere(vcloud.Task{Ops: 100, NeedsSensor: "lidar"}, func(r vcloud.TaskResult) {
		lidarOK = r.OK
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.SubmitAnywhere(vcloud.Task{Ops: 100, NeedsSensor: "radar"}, func(r vcloud.TaskResult) {
		radarOK = r.OK
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !lidarOK {
		t.Error("lidar task should complete on the lidar vehicle")
	}
	if radarOK {
		t.Error("radar task should fail: nobody has a radar")
	}
}

func TestDynamicCloudFormsAndComputes(t *testing.T) {
	s := highwayScenario(t, 3, 30)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Dynamic, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	ctls := d.ActiveControllers()
	if len(ctls) == 0 {
		t.Fatal("no dynamic controllers elected")
	}
	withMembers := 0
	for _, c := range ctls {
		if c.NumMembers() > 0 {
			withMembers++
		}
	}
	if withMembers == 0 {
		t.Fatal("no controller has members")
	}
	completed := 0
	for i := 0; i < 10; i++ {
		if err := d.SubmitAnywhere(vcloud.Task{Ops: 300, InputBytes: 500, OutputBytes: 500},
			func(r vcloud.TaskResult) {
				if r.OK {
					completed++
				}
			}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if completed < 5 {
		t.Errorf("dynamic cloud completed %d/10 (failed=%d)", completed, stats.Failed.Value())
	}
}

func TestEmergencyPropagates(t *testing.T) {
	s := parkingScenario(t, 5)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	d.SetEmergency(true)
	if !d.Controllers[0].Emergency() {
		t.Error("controller flag not set")
	}
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	inEmergency := 0
	for _, m := range d.Members {
		if m.Emergency() {
			inEmergency++
		}
	}
	if inEmergency < 3 {
		t.Errorf("only %d members saw emergency mode", inEmergency)
	}
}

func TestSnapshot(t *testing.T) {
	s := parkingScenario(t, 4)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap := d.Controllers[0].Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	for addr, res := range snap {
		if res.CPU <= 0 {
			t.Errorf("member %d has no CPU in snapshot", addr)
		}
	}
	members := d.Controllers[0].Members()
	if len(members) != len(snap) {
		t.Error("Members/Snapshot disagree")
	}
}

func TestRemoteCloudBackend(t *testing.T) {
	k := sim.NewKernel(1)
	up, err := radio.NewUplink(k, radio.UplinkParams{
		BaseRTT: 50 * time.Millisecond, BandwidthMbps: 10, LossProb: 0, JitterFrac: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := &vcloud.Stats{}
	rc, err := vcloud.NewRemoteCloud("conventional", k, up, 1e6, stats)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Name() != "conventional" {
		t.Error("name")
	}
	var res vcloud.TaskResult
	if err := rc.Submit(vcloud.Task{Ops: 1e5, InputBytes: 1000, OutputBytes: 1000}, func(r vcloud.TaskResult) {
		res = r
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("remote task failed: %+v", res)
	}
	// 50ms RTT + 16kb/10Mbps=1.6ms + 0.1s compute ≈ 152ms.
	if res.Latency < 150*time.Millisecond || res.Latency > 200*time.Millisecond {
		t.Errorf("latency = %v, want ~152ms", res.Latency)
	}
	// Outage: submission fails immediately.
	up.SetAvailable(false)
	var res2 vcloud.TaskResult
	if err := rc.Submit(vcloud.Task{Ops: 1e5}, func(r vcloud.TaskResult) { res2 = r }); err != nil {
		t.Fatal(err)
	}
	if res2.OK || res2.Reason != vcloud.ReasonUplinkDown {
		t.Errorf("outage result = %+v", res2)
	}
	if err := rc.Submit(vcloud.Task{Ops: 0}, nil); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestRemoteCloudValidation(t *testing.T) {
	k := sim.NewKernel(1)
	up, _ := radio.NewUplink(k, radio.DefaultUplinkParams())
	stats := &vcloud.Stats{}
	if _, err := vcloud.NewRemoteCloud("", k, up, 1, stats); err == nil {
		t.Error("empty name")
	}
	if _, err := vcloud.NewRemoteCloud("x", nil, up, 1, stats); err == nil {
		t.Error("nil kernel")
	}
	if _, err := vcloud.NewRemoteCloud("x", k, nil, 1, stats); err == nil {
		t.Error("nil uplink")
	}
	if _, err := vcloud.NewRemoteCloud("x", k, up, 0, stats); err == nil {
		t.Error("zero cpu")
	}
	if _, err := vcloud.NewRemoteCloud("x", k, up, 1, nil); err == nil {
		t.Error("nil stats")
	}
}

func TestReplicaManager(t *testing.T) {
	online := map[vnet.Addr]bool{1: true, 2: true, 3: true, 4: true}
	stats := &vcloud.ReplicaStats{}
	rm, err := vcloud.NewReplicaManager(2, func(a vnet.Addr) bool { return online[a] }, stats)
	if err != nil {
		t.Fatal(err)
	}
	cands := []vnet.Addr{1, 2, 3, 4}
	if got := rm.Store("f1", 1000, cands); got != 2 {
		t.Fatalf("replicas placed = %d, want 2", got)
	}
	if !rm.Read("f1") {
		t.Error("read with all replicas online failed")
	}
	// Lowest addresses hold the replicas (1 and 2): kill them both.
	online[1] = false
	online[2] = false
	if rm.Read("f1") {
		t.Error("read served with all holders offline")
	}
	// Repair cannot help: zero live replicas.
	if created := rm.Repair(cands); created != 0 {
		t.Errorf("repair resurrected lost data: %d", created)
	}
	// Second file: lose one holder, repair onto a live candidate.
	online[1], online[2] = true, true
	rm.Store("f2", 500, cands)
	online[1] = false
	if created := rm.Repair(cands); created != 1 {
		t.Errorf("repair created %d replicas, want 1", created)
	}
	if rm.Replicas("f2") != 2 {
		t.Errorf("replicas after repair = %d", rm.Replicas("f2"))
	}
	if !rm.Read("f2") {
		t.Error("read after repair failed")
	}
	if rm.Read("ghost") {
		t.Error("read of unknown file succeeded")
	}
	if stats.Availability() <= 0 || stats.Availability() >= 1 {
		t.Errorf("availability = %v, want mixed outcome fraction", stats.Availability())
	}
	if stats.ReReplicas.Value() != 1 {
		t.Errorf("re-replicas = %d", stats.ReReplicas.Value())
	}
}

func TestReplicaManagerValidation(t *testing.T) {
	stats := &vcloud.ReplicaStats{}
	on := func(vnet.Addr) bool { return true }
	if _, err := vcloud.NewReplicaManager(0, on, stats); err == nil {
		t.Error("zero k")
	}
	if _, err := vcloud.NewReplicaManager(2, nil, stats); err == nil {
		t.Error("nil online")
	}
	if _, err := vcloud.NewReplicaManager(2, on, nil); err == nil {
		t.Error("nil stats")
	}
}

func TestHandoverBeatsDropUnderChurn(t *testing.T) {
	// E7 in miniature: an RSU mid-highway coordinates moving vehicles.
	// Long tasks outlive each vehicle's transit through RSU range, so
	// without handover work is repeatedly lost.
	run := func(handover bool) (completed uint64, wasted float64) {
		s := highwayScenario(t, 5, 25)
		if _, err := s.AddRSU(geo.Point{X: 1500, Y: 15}); err != nil {
			t.Fatal(err)
		}
		stats := &vcloud.Stats{}
		d, err := vcloud.Deploy(s, vcloud.Infrastructure, vcloud.DeployConfig{
			Handover:  handover,
			DwellMode: mobility.DwellRouteAware,
			Controller: vcloud.ControllerConfig{
				RetryLimit: 5,
			},
		}, stats)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		// Tasks sized ~40 s of compute: no vehicle stays that long in
		// range at 25 m/s (600 m diameter ≈ 24 s transit).
		for i := 0; i < 12; i++ {
			if err := d.SubmitAnywhere(vcloud.Task{Ops: 40_000, InputBytes: 500, OutputBytes: 500}, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.RunFor(4 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return stats.Completed.Value(), stats.WastedOps
	}
	dropDone, dropWaste := run(false)
	hoDone, hoWaste := run(true)
	t.Logf("drop: done=%d waste=%.0f; handover: done=%d waste=%.0f", dropDone, dropWaste, hoDone, hoWaste)
	if hoDone < dropDone {
		t.Errorf("handover completed %d < drop %d", hoDone, dropDone)
	}
	if hoWaste >= dropWaste {
		t.Errorf("handover waste %.0f should be below drop waste %.0f", hoWaste, dropWaste)
	}
}

func TestBatteryBudgetDepletesMembers(t *testing.T) {
	// A parked cloud with tiny battery budgets: members serve a few
	// tasks, deplete, and leave; the controller loses workers and later
	// tasks fail — the Hou et al. [9] battery constraint.
	s := parkingScenario(t, 6)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
		BatteryOps: 2000, // budget for exactly 2 tasks of 1000 ops each
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	gate := d.Controllers[0]
	before := gate.NumMembers()
	if before < 4 {
		t.Fatalf("members = %d", before)
	}
	// Enough work to exhaust every battery: 6 members × 2000 ops = 12000
	// total budget; submit 30 × 1000 ops.
	completed := 0
	for i := 0; i < 30; i++ {
		_ = d.SubmitAnywhere(vcloud.Task{Ops: 1000}, func(r vcloud.TaskResult) {
			if r.OK {
				completed++
			}
		})
	}
	if err := s.RunFor(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	depleted := 0
	var totalSpent float64
	for _, m := range d.Members {
		if m.Depleted() {
			depleted++
		}
		totalSpent += m.SpentOps()
		if m.SpentOps() > 2000 {
			t.Errorf("member exceeded battery budget: %v ops", m.SpentOps())
		}
	}
	if depleted == 0 {
		t.Error("no member depleted despite overload")
	}
	if completed == 0 {
		t.Error("nothing completed before depletion")
	}
	if completed == 30 {
		t.Error("all tasks completed: battery budget had no effect")
	}
	t.Logf("completed=%d/30 depleted=%d/%d totalSpent=%.0f", completed, depleted, len(d.Members), totalSpent)
}

func TestReplicaRetentionModelsBatterySleep(t *testing.T) {
	// Battery-saving model [9]: an offline holder is asleep, not gone —
	// its replica serves again when it wakes.
	online := map[vnet.Addr]bool{1: true}
	stats := &vcloud.ReplicaStats{}
	rm, err := vcloud.NewReplicaManager(1, func(a vnet.Addr) bool { return online[a] }, stats)
	if err != nil {
		t.Fatal(err)
	}
	rm.SetRetainOffline(true)
	rm.Store("f", 100, []vnet.Addr{1})
	if !rm.Read("f") {
		t.Fatal("read with holder online failed")
	}
	online[1] = false
	rm.Repair([]vnet.Addr{1})
	if rm.Read("f") {
		t.Error("read served while the only holder sleeps")
	}
	if rm.Replicas("f") != 1 {
		t.Errorf("sleeping holder's replica dropped: %d", rm.Replicas("f"))
	}
	online[1] = true
	if !rm.Read("f") {
		t.Error("returned sleeper no longer serves its replica")
	}
	// Trim check: a sleeper returning after a repair must not leave the
	// file over-replicated.
	online[2] = true
	rm2, err := vcloud.NewReplicaManager(1, func(a vnet.Addr) bool { return online[a] }, &vcloud.ReplicaStats{})
	if err != nil {
		t.Fatal(err)
	}
	rm2.SetRetainOffline(true)
	rm2.Store("g", 100, []vnet.Addr{1, 2})
	online[1] = false
	rm2.Repair([]vnet.Addr{1, 2}) // re-replicates onto 2
	online[1] = true
	rm2.Repair([]vnet.Addr{1, 2}) // sleeper returns: trim to k=1
	if got := rm2.Replicas("g"); got != 1 {
		t.Errorf("replicas after sleeper return = %d, want trimmed to 1", got)
	}
	if !rm2.Read("g") {
		t.Error("file unreadable after trim")
	}
}

func TestReplicaRepairWithRetentionDoesNotDoubleCount(t *testing.T) {
	// With retention on, a sleeping holder keeps its replica: repair tops
	// live copies up once, repeated repairs add nothing, and the
	// sleeper's return costs no extra movement — the counters must
	// reflect exactly one re-replication.
	online := map[vnet.Addr]bool{1: true, 2: true, 3: true}
	stats := &vcloud.ReplicaStats{}
	rm, err := vcloud.NewReplicaManager(2, func(a vnet.Addr) bool { return online[a] }, stats)
	if err != nil {
		t.Fatal(err)
	}
	rm.SetRetainOffline(true)
	rm.Store("f", 100, []vnet.Addr{1, 2, 3}) // placed on 1 and 2
	if stats.BytesMoved.Value() != 200 {
		t.Fatalf("bytes after store = %d, want 200", stats.BytesMoved.Value())
	}
	online[1] = false // member 1 sleeps
	rm.Repair([]vnet.Addr{1, 2, 3})
	if stats.ReReplicas.Value() != 1 || stats.BytesMoved.Value() != 300 {
		t.Fatalf("after first repair: re-replicas=%d bytes=%d, want 1/300",
			stats.ReReplicas.Value(), stats.BytesMoved.Value())
	}
	// Repeated repairs while the sleeper stays offline must not re-copy.
	rm.Repair([]vnet.Addr{1, 2, 3})
	rm.Repair([]vnet.Addr{1, 2, 3})
	if stats.ReReplicas.Value() != 1 || stats.BytesMoved.Value() != 300 {
		t.Errorf("repeated repair double-counted: re-replicas=%d bytes=%d, want 1/300",
			stats.ReReplicas.Value(), stats.BytesMoved.Value())
	}
	// The sleeper returns: it serves again without any new movement, and
	// the surplus trim costs nothing either.
	online[1] = true
	if !rm.Read("f") {
		t.Error("returned sleeper does not serve")
	}
	rm.Repair([]vnet.Addr{1, 2, 3})
	if got := rm.Replicas("f"); got != 2 {
		t.Errorf("replicas after trim = %d, want k=2", got)
	}
	if stats.ReReplicas.Value() != 1 || stats.BytesMoved.Value() != 300 {
		t.Errorf("sleeper return moved bytes: re-replicas=%d bytes=%d, want 1/300",
			stats.ReReplicas.Value(), stats.BytesMoved.Value())
	}
	if !rm.Read("f") {
		t.Error("file unreadable after trim")
	}
}

func TestTaskDeadlineMissedFails(t *testing.T) {
	// A deadline that looks feasible at submit (the fast member could
	// make it) but is missed mid-flight: the fast member dies silently,
	// the task reassigns to a slow member, and the late result fails
	// with "deadline missed" — distinct from the submit-time fail-fast.
	s := parkingScenario(t, 2)
	stats := &vcloud.Stats{}
	n := 0
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
		// attachMember iterates vehicles in ascending ID order, so the
		// first call configures the lowest-ID member.
		MemberResources: func(p mobility.Profile) vcloud.Resources {
			n++
			cpu := 500.0 // slow
			if n == 1 {
				cpu = 2000.0 // fast
			}
			return vcloud.Resources{CPU: cpu, Storage: p.Storage, Sensors: p.Sensors}
		},
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// 2000 ops: 1 s on the fast member, 4 s on the slow one. The 2.5 s
	// deadline passes the fail-fast (fast member qualifies) and the
	// scheduler picks the fast member (earliest finish).
	var res vcloud.TaskResult
	task := vcloud.Task{Ops: 2000, Deadline: s.Kernel.Now() + 2500*time.Millisecond}
	if err := d.SubmitAnywhere(task, func(r vcloud.TaskResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	// Kill the fast member silently: it expires, the task reassigns to
	// the slow member, whose result lands past the deadline.
	ids := s.VehicleIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	d.Members[ids[0]].Stop()
	if err := s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Reason != vcloud.ReasonDeadline {
		t.Errorf("result = %+v, want deadline-missed failure", res)
	}
	if stats.Failed.Value() != 1 {
		t.Errorf("failed = %d", stats.Failed.Value())
	}
	if res.Retries < 1 {
		t.Errorf("retries = %d, want >= 1 (reassignment happened)", res.Retries)
	}
}

func TestTaskInfeasibleDeadlineFailsFastAtSubmit(t *testing.T) {
	// Regression for the fail-fast bugfix: a deadline no eligible member
	// could possibly meet is rejected at submit with reason "deadline"
	// instead of burning a doomed multi-second timeout. The callback
	// lands on the next kernel tick — still the same virtual instant
	// (latency zero) but never inside Submit itself, so callers can
	// always record the returned TaskID before the outcome routes back.
	s := parkingScenario(t, 2)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// 10,000 ops is 10 s on the default 1000 ops/s members; a 1 s
	// deadline cannot be met by anyone.
	var res vcloud.TaskResult
	fired := 0
	submitAt := s.Kernel.Now()
	task := vcloud.Task{Ops: 10_000, Deadline: submitAt + time.Second}
	if err := d.SubmitAnywhere(task, func(r vcloud.TaskResult) { res = r; fired++ }); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("done fired %d times inside Submit, want 0 (deferred to the next tick)", fired)
	}
	if err := s.RunFor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("done fired %d times, want 1 (rejected at submit time)", fired)
	}
	if res.OK || res.Reason != vcloud.ReasonDeadline {
		t.Errorf("result = %+v, want fail-fast with reason \"deadline\"", res)
	}
	if res.Latency != 0 {
		t.Errorf("latency = %v, want 0 (rejected at submit)", res.Latency)
	}
	if stats.Failed.Value() != 1 || stats.Submitted.Value() != 1 {
		t.Errorf("submitted=%d failed=%d, want 1/1", stats.Submitted.Value(), stats.Failed.Value())
	}
	// An already-passed deadline fails fast even with no members.
	var res2 vcloud.TaskResult
	if err := d.SubmitAnywhere(vcloud.Task{Ops: 100, Deadline: submitAt - time.Second},
		func(r vcloud.TaskResult) { res2 = r }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if res2.OK || res2.Reason != vcloud.ReasonDeadline {
		t.Errorf("past-deadline result = %+v, want fail-fast", res2)
	}
}

func TestSubmitWithNoMembersRetriesThenFails(t *testing.T) {
	// A controller with no members at all: the task retries and fails.
	s := parkingScenario(t, 1)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
		Controller: vcloud.ControllerConfig{RetryLimit: 2},
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	// Silence the only member so nobody ever joins.
	for _, m := range d.Members {
		m.Stop()
	}
	var res vcloud.TaskResult
	if _, err := d.Controllers[0].Submit(vcloud.Task{Ops: 100}, func(r vcloud.TaskResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	if err := s.Kernel.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Reason != vcloud.ReasonNoEligibleMember {
		t.Errorf("result = %+v, want no-members failure", res)
	}
	if stats.Retries.Value() != 2 {
		t.Errorf("retries = %d, want 2", stats.Retries.Value())
	}
}

func TestMemberLeaveRemovesMembership(t *testing.T) {
	s := parkingScenario(t, 4)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	gate := d.Controllers[0]
	before := gate.NumMembers()
	if before == 0 {
		t.Fatal("no members")
	}
	// One member leaves gracefully; stop its agent first so it cannot
	// rejoin on the next advertisement.
	var left *vcloud.Member
	for _, m := range d.Members {
		left = m
		break
	}
	left.Leave()
	left.Stop()
	if err := s.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if gate.NumMembers() >= before {
		t.Errorf("members = %d, want < %d after leave", gate.NumMembers(), before)
	}
}
