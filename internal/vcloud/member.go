package vcloud

import (
	"fmt"
	"sort"
	"time"

	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// MemberConfig tunes a member agent.
type MemberConfig struct {
	// Resources contributed to the pool.
	Resources Resources
	// Handover, when true, lets the member hand unfinished work back
	// before losing contact instead of silently dropping it.
	Handover bool
	// DepartureWarning predicts how many seconds of controller contact
	// remain; the member hands work over when this drops below the time
	// needed to finish. Nil disables proactive handover (the member then
	// only reacts to total controller loss).
	DepartureWarning func() float64
	// CheckPeriod is the departure-check interval. Default 1 s.
	CheckPeriod sim.Time
	// Authorize, when non-nil, gates joining a new controller: the
	// member calls it once per controller and only sends its join after
	// done(true) — secure v-cloud initialization (§V.A), typically a
	// mutual authentication handshake.
	Authorize func(controller vnet.Addr, done func(ok bool))
	// BatteryOps bounds the total ops a parked-and-off vehicle can
	// execute before its battery budget is spent (Hou et al. [9]:
	// "to save the battery run time, the computing power and the time
	// length of providing services must be limited"). Zero means
	// unlimited (engine running / plugged in). When the budget is
	// exhausted the member leaves the cloud and stops accepting work.
	BatteryOps float64
	// OnPromote, when non-nil, is called after this member promotes
	// itself to controller from a replicated checkpoint (failover). The
	// deployment wires this to track the successor controller.
	OnPromote func(c *Controller)
	// OnAccept, when non-nil, observes every fenced advertisement this
	// member accepts leadership from — the hook the chaos harness uses
	// to assert "at most one controller accepted per epoch".
	OnAccept func(controller vnet.Addr, e Epoch)
	// EdgeTier marks this member as a roadside edge server (ETSI-MEC
	// style RSU): always in range, so the controller's dwell gate does
	// not apply to it. See edge.go.
	EdgeTier bool
	// StartDelay is added to every task before compute starts — the
	// offload round-trip an edge server pays per task. Zero for
	// ordinary vehicular members.
	StartDelay sim.Time
	// EstimateFeeds, when non-empty, makes this member a congestion
	// scout: each tick it reports every feed's live channel conditions
	// to its controller, feeding the placement governor's per-tier
	// estimate table (estimates.go).
	EstimateFeeds []EstimateFeed
}

// runningTask is a task being executed locally.
type runningTask struct {
	task       Task
	attempt    int
	replica    int // redundant-copy index (-1 on the plain path)
	controller vnet.Addr
	epoch      Epoch // dispatching controller's epoch, echoed in the result
	startedAt  sim.Time
	ops        float64 // ops this attempt started with
	doneEv     sim.EventID
	// fetching marks a stage task still gathering predecessor outputs
	// (no compute started yet, so it contributes no executed ops).
	fetching bool
	// stageInputs are the pulled predecessor values, in Deps order.
	stageInputs []uint64
}

// Member is the worker-side agent of a vehicular cloud: it joins
// controllers it hears, executes assigned tasks at its CPU rate, returns
// results, and — when configured — hands unfinished work back before
// departing (the §III.A mechanism E7 evaluates).
type Member struct {
	node    *vnet.Node
	cfg     MemberConfig
	stats   *Stats
	current map[TaskID]*runningTask
	// controller is the most recently heard coordinator.
	controller    vnet.Addr
	controllerAt  sim.Time
	emergencyMode bool
	ticker        *sim.Ticker
	stopped       bool
	// authz tracks per-controller authorization: absent = not attempted,
	// false = pending or denied, true = authorized.
	authz map[vnet.Addr]bool
	// spentOps accumulates executed work against the battery budget.
	spentOps float64
	depleted bool
	// standbyCkpt is the latest replicated checkpoint when this member is
	// the designated failover standby; standbyFrom is the controller that
	// sent it (-1 when not a standby).
	standbyCkpt *Checkpoint
	standbyFrom vnet.Addr
	// tamper, when non-nil, rewrites the computed result value before it
	// is sent — the Byzantine-worker hook (internal/attack.Byzantify).
	tamper func(Task, uint64) uint64
	// highestEpoch is the highest fencing token this member has
	// witnessed; advertisements, dispatches and checkpoints from a lower
	// counter are stale and rejected.
	highestEpoch Epoch
	// cache holds stage outputs this member computed or pulled, served
	// to downstream stage workers (see stagepipe.go).
	cache *stageCache
	// fetches tracks stage tasks still gathering their inputs.
	fetches map[TaskID]*stageFetch
	// estimateSeq orders this member's channel-condition reports.
	estimateSeq uint64
}

// NewMember creates and starts a member agent on node.
func NewMember(node *vnet.Node, cfg MemberConfig, stats *Stats) (*Member, error) {
	if node == nil || stats == nil {
		return nil, fmt.Errorf("vcloud: node and stats must not be nil")
	}
	if cfg.Resources.CPU <= 0 {
		return nil, fmt.Errorf("vcloud: member CPU must be positive, got %v", cfg.Resources.CPU)
	}
	if cfg.CheckPeriod <= 0 {
		cfg.CheckPeriod = time.Second
	}
	m := &Member{
		node:        node,
		cfg:         cfg,
		stats:       stats,
		current:     make(map[TaskID]*runningTask),
		controller:  -1,
		authz:       make(map[vnet.Addr]bool),
		standbyFrom: -1,
		cache:       newStageCache(),
		fetches:     make(map[TaskID]*stageFetch),
	}
	node.Handle(kindAdv, m.onAdv)
	node.Handle(kindTask, m.onTask)
	node.Handle(kindCkpt, m.onCkpt)
	node.Handle(kindStagePull, m.onStagePull)
	node.Handle(kindStageData, m.onStageData)
	t, err := node.Kernel().Every(cfg.CheckPeriod, m.tick)
	if err != nil {
		return nil, err
	}
	m.ticker = t
	return m, nil
}

// Stop halts the member; running work is abandoned (counted as waste).
func (m *Member) Stop() {
	if m.stopped {
		return
	}
	m.stopped = true
	m.ticker.Stop()
	m.node.Handle(kindAdv, nil)
	m.node.Handle(kindTask, nil)
	m.node.Handle(kindCkpt, nil)
	m.node.Handle(kindStagePull, nil)
	m.node.Handle(kindStageData, nil)
	for _, f := range m.fetches {
		m.node.Kernel().Cancel(f.timeout)
	}
	m.fetches = make(map[TaskID]*stageFetch)
	for _, rt := range m.current {
		m.node.Kernel().Cancel(rt.doneEv)
		m.stats.WastedOps += m.executedOps(rt)
	}
	m.current = make(map[TaskID]*runningTask)
}

// Controller returns the currently followed controller address (-1 when
// none).
func (m *Member) Controller() vnet.Addr { return m.controller }

// Emergency reports whether the last advertisement carried the emergency
// flag.
func (m *Member) Emergency() bool { return m.emergencyMode }

// Running returns the number of tasks executing locally.
func (m *Member) Running() int { return len(m.current) }

func (m *Member) onAdv(msg vnet.Message, _ vnet.Addr) {
	if m.stopped || m.depleted {
		return
	}
	adv, ok := msg.Payload.(advMsg)
	if !ok {
		return
	}
	// Deposed as standby: a fresher advertisement names someone else.
	if m.standbyFrom == adv.Controller && adv.Standby != m.node.Addr() {
		m.disarm(adv.Controller)
	}
	m.emergencyMode = adv.Emergency
	now := m.node.Kernel().Now()
	// Follow the first controller heard; switch only after silence.
	follow := m.controller < 0 || m.controller == adv.Controller || now-m.controllerAt > 5*time.Second
	e := adv.Epoch
	switch {
	case e.Supersedes(m.highestEpoch):
		// A newer leadership generation preempts whoever we currently
		// follow — immediately, not after silence: its predecessor is
		// fenced off the moment we witness the higher counter.
		m.highestEpoch = e
		// A standby checkpoint from the superseded generation is now a
		// replay hazard: its task table may list work the new generation
		// already applied, so promoting from it later would re-execute
		// and double-apply those outcomes. Drop it; the disarm-ack also
		// unsticks the deposed controller's parked outcomes (and carries
		// the epoch that deposed it).
		if m.standbyCkpt != nil && e.Supersedes(m.standbyCkpt.Epoch) {
			m.disarm(m.standbyFrom, adv.Controller)
		}
		follow = true
	case !e.Zero() && m.highestEpoch.Supersedes(e):
		// Stale generation. Follow it only if our controller has gone
		// silent — the higher-epoch controller may be gone for good, and
		// a stale-but-alive coordinator beats none (liveness). Lowering
		// the watermark re-admits its dispatches.
		if !follow {
			return
		}
		m.highestEpoch = e
	}
	if follow {
		m.controller = adv.Controller
		m.controllerAt = now
		if !e.Zero() && m.cfg.OnAccept != nil {
			m.cfg.OnAccept(adv.Controller, e)
		}
		m.join()
	}
}

// disarm discards the standby checkpoint; when the checkpoint came from
// a fenced controller, a disarm-ack releases each named controller's
// apply-after-ack hold (the armer may be parking outcomes on our
// account, and a successor may have inherited that obligation — both
// need to hear we can no longer promote).
func (m *Member) disarm(ctls ...vnet.Addr) {
	ck := m.standbyCkpt
	m.standbyCkpt = nil
	m.standbyFrom = -1
	if ck == nil || !ck.Cfg.Fencing {
		return
	}
	sent := map[vnet.Addr]bool{}
	for _, ctl := range ctls {
		if ctl < 0 || sent[ctl] {
			continue
		}
		sent[ctl] = true
		ack := m.node.NewMessage(ctl, kindCkptAck, 64, 1, ackMsg{
			Seq:    ck.Seq,
			Disarm: true,
			Known:  m.highestEpoch,
		})
		m.node.SendTo(ctl, ack)
	}
}

func (m *Member) join() {
	ctl := m.controller
	if m.cfg.Authorize != nil {
		authorized, attempted := m.authz[ctl]
		if !attempted {
			m.authz[ctl] = false // pending
			m.cfg.Authorize(ctl, func(ok bool) {
				if m.stopped {
					return
				}
				if !ok {
					delete(m.authz, ctl) // allow retry on next adv
					return
				}
				m.authz[ctl] = true
				m.sendJoin(ctl)
			})
			return
		}
		if !authorized {
			return // handshake pending or denied
		}
	}
	m.sendJoin(ctl)
}

func (m *Member) sendJoin(ctl vnet.Addr) {
	msg := m.node.NewMessage(ctl, kindJoin, 128, 1, joinMsg{
		Resources: m.cfg.Resources,
		Edge:      m.cfg.EdgeTier,
		Delay:     m.cfg.StartDelay,
	})
	m.node.SendTo(ctl, msg)
}

// Leave tells the controller this member is gone (graceful departure).
func (m *Member) Leave() {
	if m.controller < 0 {
		return
	}
	msg := m.node.NewMessage(m.controller, kindLeave, 32, 1, nil)
	m.node.SendTo(m.controller, msg)
}

func (m *Member) executedOps(rt *runningTask) float64 {
	if rt.fetching {
		return 0 // still gathering inputs: no compute spent yet
	}
	elapsed := (m.node.Kernel().Now() - rt.startedAt).Seconds()
	done := elapsed * m.cfg.Resources.CPU
	if done > rt.ops {
		done = rt.ops
	}
	if done < 0 {
		done = 0
	}
	return done
}

func (m *Member) onTask(msg vnet.Message, _ vnet.Addr) {
	if m.stopped || m.depleted {
		return
	}
	tm, ok := msg.Payload.(taskMsg)
	if !ok {
		return
	}
	// Fencing: refuse dispatches from a leadership generation below the
	// highest we have witnessed — the sender was superseded and may not
	// know it yet (the split-brain double-dispatch this PR eliminates).
	if !tm.Epoch.Zero() {
		if m.highestEpoch.Supersedes(tm.Epoch) {
			m.stats.StaleRejected.Inc()
			return
		}
		if tm.Epoch.Supersedes(m.highestEpoch) {
			m.highestEpoch = tm.Epoch
		}
	}
	if m.cfg.BatteryOps > 0 {
		committed := m.spentOps
		for _, rt := range m.current {
			committed += rt.ops
		}
		if committed+tm.RemainingOps > m.cfg.BatteryOps {
			// Not enough battery to finish: decline silently; the
			// controller times out and reassigns elsewhere.
			return
		}
	}
	// Queue behind current work: start when all current tasks finish.
	// The controller's load view approximates the same queue.
	var queued float64
	for _, rt := range m.current {
		queued += rt.ops - m.executedOps(rt)
	}
	rt := &runningTask{
		task:       tm.Task,
		attempt:    tm.Attempt,
		replica:    tm.Replica,
		controller: msg.Origin,
		epoch:      tm.Epoch,
		ops:        tm.RemainingOps,
	}
	m.current[tm.Task.ID] = rt
	// A stage task with predecessor inputs gathers them first (see
	// stagepipe.go); compute is scheduled when the last input lands.
	if b := tm.Task.Stage; b != nil && len(b.Inputs) > 0 {
		m.startStageFetch(rt)
		return
	}
	wait := m.cfg.StartDelay + sim.Time(queued/m.cfg.Resources.CPU*float64(time.Second))
	rt.startedAt = m.node.Kernel().Now() + wait
	runFor := wait + sim.Time(tm.RemainingOps/m.cfg.Resources.CPU*float64(time.Second))
	rt.doneEv = m.node.Kernel().After(runFor, func() { m.complete(rt) })
}

func (m *Member) complete(rt *runningTask) {
	if m.stopped {
		return
	}
	// Pointer equality, not mere presence: a replacement copy of the same
	// task may have overwritten our entry, and this stale completion must
	// not evict it.
	if m.current[rt.task.ID] != rt {
		return
	}
	delete(m.current, rt.task.ID)
	m.spentOps += rt.ops
	var value uint64
	if b := rt.task.Stage; b != nil {
		// Stage result: digest of the stage identity and pulled inputs,
		// cached so downstream stage workers can pull it from here.
		value = StageDigest(b.Job, b.Stage, rt.task.Ops, rt.stageInputs)
	} else {
		value = TaskValue(rt.task)
	}
	if m.tamper != nil {
		value = m.tamper(rt.task, value)
	}
	if b := rt.task.Stage; b != nil {
		// Cache the (possibly tampered) value: a Byzantine member serves
		// downstream exactly what it voted, so provenance rotation plus
		// voting can catch it.
		m.cache.put(stageKey{job: b.Job, stage: b.Stage}, stageEntry{value: value, bytes: b.OutputBytes})
	}
	msg := m.node.NewMessage(rt.controller, kindResult, 64+rt.task.OutputBytes, 1, resultMsg{
		ID:      rt.task.ID,
		Attempt: rt.attempt,
		Replica: rt.replica,
		Value:   value,
		Epoch:   rt.epoch,
	})
	m.node.SendTo(rt.controller, msg)
	if m.cfg.BatteryOps > 0 && m.spentOps >= m.cfg.BatteryOps {
		m.deplete()
	}
}

// SetResultTamper installs (or clears, with nil) a hook that rewrites
// this member's computed result values before they are sent — the
// fault-injection point for Byzantine-worker experiments.
func (m *Member) SetResultTamper(f func(Task, uint64) uint64) { m.tamper = f }

// Addr returns the member's network address.
func (m *Member) Addr() vnet.Addr { return m.node.Addr() }

// onCkpt decodes a replicated checkpoint: accepting one designates this
// member as the controller's failover standby. A corrupt checkpoint is
// rejected with a counter bump — this member will never promote itself
// into a garbage state. A valid checkpoint also proves the controller
// is alive, refreshing the silence clock, and (under fencing) is
// acknowledged so the controller may apply the outcomes it carries.
func (m *Member) onCkpt(msg vnet.Message, _ vnet.Addr) {
	if m.stopped || m.depleted {
		return
	}
	cm, ok := msg.Payload.(ckptMsg)
	if !ok {
		return
	}
	ck, err := DecodeCheckpoint(cm.Data)
	if err != nil {
		m.stats.CkptRejected.Inc()
		return
	}
	// Fencing: a checkpoint from a superseded leadership generation must
	// not make us its standby — refuse the role with a disarm-ack so the
	// stale controller's parked outcomes do not stall forever (the Known
	// epoch also tells it it was deposed).
	if !ck.Epoch.Zero() {
		if m.highestEpoch.Supersedes(ck.Epoch) {
			m.stats.StaleRejected.Inc()
			// The disarm must be truthful: drop any checkpoint this (now
			// superseded) controller armed us with earlier, or we could
			// later promote from it and replay a task table whose
			// outcomes the controller applied once we disarmed it.
			if m.standbyFrom == msg.Origin {
				m.standbyCkpt = nil
				m.standbyFrom = -1
			}
			ack := m.node.NewMessage(msg.Origin, kindCkptAck, 64, 1, ackMsg{
				Seq:    ck.Seq,
				Disarm: true,
				Known:  m.highestEpoch,
			})
			m.node.SendTo(msg.Origin, ack)
			return
		}
		if ck.Epoch.Supersedes(m.highestEpoch) {
			m.highestEpoch = ck.Epoch
		}
	}
	m.standbyCkpt = &ck
	m.standbyFrom = msg.Origin
	if m.controller == msg.Origin {
		m.controllerAt = m.node.Kernel().Now()
	}
	if ck.Cfg.Fencing {
		ack := m.node.NewMessage(msg.Origin, kindCkptAck, 64, 1, ackMsg{
			Seq:   ck.Seq,
			Known: m.highestEpoch,
		})
		m.node.SendTo(msg.Origin, ack)
	}
}

// Standby reports whether this member currently holds a checkpoint as
// the designated failover successor.
func (m *Member) Standby() bool { return m.standbyCkpt != nil }

// maybePromote checks the failover condition — we hold a checkpoint and
// the controller that sent it has been silent past its FailoverTTL —
// and promotes this member to controller when it holds. Reports whether
// a promotion happened (the member is stopped afterwards).
func (m *Member) maybePromote() bool {
	if m.standbyCkpt == nil || m.depleted || m.controller != m.standbyFrom {
		return false
	}
	if m.node.Kernel().Now()-m.controllerAt <= m.standbyCkpt.FailoverTTL {
		return false
	}
	m.promote()
	return true
}

// promote turns this member into the cloud's controller: the member
// agent stops (abandoning local work as waste, like any departure) and a
// controller seeded from the replicated checkpoint starts on the same
// node, resuming the in-flight task table.
func (m *Member) promote() {
	ckpt := *m.standbyCkpt
	m.standbyCkpt = nil
	m.standbyFrom = -1
	// Promote past every epoch this member has witnessed, not just the
	// checkpoint's: a higher-epoch controller may have lived (and
	// applied outcomes) since the checkpoint was cut.
	if ckpt.Cfg.Fencing && m.highestEpoch.Counter > ckpt.Epoch.Counter {
		ckpt.Epoch.Counter = m.highestEpoch.Counter
	}
	node, stats, onPromote := m.node, m.stats, m.cfg.OnPromote
	m.Stop()
	c, err := RestoreController(node, ckpt, stats)
	if err != nil {
		return
	}
	stats.Failovers.Inc()
	if onPromote != nil {
		onPromote(c)
	}
}

// deplete powers the member down for cloud purposes: it leaves the
// controller and ignores further work, preserving battery for the
// owner's return.
func (m *Member) deplete() {
	if m.depleted {
		return
	}
	m.depleted = true
	m.Leave()
}

// Depleted reports whether the battery budget is spent.
func (m *Member) Depleted() bool { return m.depleted }

// SpentOps returns the executed work counted against the battery.
func (m *Member) SpentOps() float64 { return m.spentOps }

// tick checks the failover condition first, then for imminent departure,
// handing work over when the remaining contact window cannot cover the
// remaining compute.
func (m *Member) tick() {
	if m.stopped {
		return
	}
	if m.maybePromote() {
		return
	}
	m.reportEstimates()
	if !m.cfg.Handover || m.cfg.DepartureWarning == nil || len(m.current) == 0 {
		return
	}
	window := m.cfg.DepartureWarning()
	// Iterate in task-ID order: handover message order must not depend
	// on map iteration, or runs stop reproducing.
	ids := make([]TaskID, 0, len(m.current))
	for id := range m.current {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rt := m.current[id]
		if rt.fetching {
			// No compute spent yet: let the controller's attempt timeout
			// reassign instead of handing over an unstarted stage.
			continue
		}
		remaining := rt.ops - m.executedOps(rt)
		needed := remaining / m.cfg.Resources.CPU
		if window > needed+1.0 {
			continue // still time to finish
		}
		// Hand the remainder back to the controller.
		m.node.Kernel().Cancel(rt.doneEv)
		delete(m.current, id)
		msg := m.node.NewMessage(rt.controller, kindHandover, 128, 1, handoverMsg{
			ID:           id,
			RemainingOps: remaining,
			Attempt:      rt.attempt,
			Replica:      rt.replica,
			Epoch:        rt.epoch,
		})
		m.node.SendTo(rt.controller, msg)
	}
}
