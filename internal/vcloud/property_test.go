package vcloud_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
	"vcloud/internal/vnet"
)

// TestLedgerConservationProperty: credits are conserved — after any
// sequence of transfers the balances sum to zero, the chain verifies,
// and the volume equals the sum of amounts.
func TestLedgerConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(raw []uint16) bool {
		l := vcloud.NewLedger()
		var volume int64
		accounts := map[vnet.Addr]bool{}
		for i, r := range raw {
			from := vnet.Addr(r % 7)
			to := vnet.Addr((r / 7) % 7)
			amount := int64(r%100) + 1
			if from == to {
				continue
			}
			if err := l.Transfer(sim.Time(i), vcloud.TaskID(i), from, to, amount); err != nil {
				return false
			}
			volume += amount
			accounts[from] = true
			accounts[to] = true
		}
		var sum int64
		for a := range accounts {
			sum += l.Balance(a)
		}
		return sum == 0 && l.Verify() == -1 && l.TotalVolume() == volume
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestReplicaInvariantProperty: the number of replicas never exceeds k,
// and reads succeed exactly when at least one holder is online.
func TestReplicaInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(k8 uint8, flips []uint8) bool {
		k := int(k8%4) + 1
		online := map[vnet.Addr]bool{}
		var cands []vnet.Addr
		for i := 0; i < 10; i++ {
			online[vnet.Addr(i)] = true
			cands = append(cands, vnet.Addr(i))
		}
		stats := &vcloud.ReplicaStats{}
		rm, err := vcloud.NewReplicaManager(k, func(a vnet.Addr) bool { return online[a] }, stats)
		if err != nil {
			return false
		}
		if placed := rm.Store("f", 100, cands); placed != k {
			return false
		}
		for _, fl := range flips {
			online[vnet.Addr(fl%10)] = fl%2 == 0
			rm.Repair(cands)
			if rm.Replicas("f") > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}
