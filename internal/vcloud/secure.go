package vcloud

import (
	"fmt"

	"vcloud/internal/auth"
	"vcloud/internal/cryptoprim"
	"vcloud/internal/mobility"
	"vcloud/internal/pki"
	"vcloud/internal/scenario"
	"vcloud/internal/vnet"
)

// Security configures the secure v-cloud architecture of §V.A: every
// vehicle enrolls with the TA, members mutually authenticate with a
// controller before joining, controllers only admit verified members,
// and revoked vehicles are excluded from the cloud entirely.
type Security struct {
	// TA is the trusted authority all vehicles enroll with.
	TA *pki.TA
	// Scheme selects the authentication protocol (default Hybrid — the
	// scheme E5 shows has constant-cost revocation).
	Scheme auth.Scheme
	// Cost is the virtual crypto cost model; zero value = defaults.
	Cost auth.CostModel
	// Metrics receives handshake telemetry (required).
	Metrics *auth.Metrics
	// CRLMode selects the pseudonym revocation-check structure (default
	// bloom).
	CRLMode auth.CRLMode
}

func (sec *Security) validate() error {
	if sec.TA == nil {
		return fmt.Errorf("vcloud: security requires a TA")
	}
	if sec.Metrics == nil {
		return fmt.Errorf("vcloud: security requires an auth.Metrics sink")
	}
	return nil
}

// SecureDeployment is a Deployment whose membership is gated by mutual
// authentication.
type SecureDeployment struct {
	*Deployment
	// Authenticators maps vehicles to their auth endpoints.
	Authenticators map[mobility.VehicleID]*auth.Authenticator
	// Enrollments maps vehicles to their TA credentials.
	Enrollments map[mobility.VehicleID]*pki.Enrollment

	sec Security
	// verified tracks, per node address, the set of peers whose
	// credentials that node has verified as a responder.
	verified map[vnet.Addr]map[vnet.Addr]bool
}

// DeploySecure assembles a vehicular cloud where joining requires a
// successful mutual authentication handshake with the controller. RSU
// controllers get their own enrollment (identity "rsu-<n>").
func DeploySecure(s *scenario.Scenario, arch Architecture, cfg DeployConfig, sec Security, stats *Stats) (*SecureDeployment, error) {
	if err := sec.validate(); err != nil {
		return nil, err
	}
	if sec.Scheme == 0 {
		sec.Scheme = auth.Hybrid
	}
	if sec.CRLMode == 0 {
		sec.CRLMode = auth.CRLBloom
	}
	sd := &SecureDeployment{
		Authenticators: make(map[mobility.VehicleID]*auth.Authenticator),
		Enrollments:    make(map[mobility.VehicleID]*pki.Enrollment),
		sec:            sec,
		verified:       make(map[vnet.Addr]map[vnet.Addr]bool),
	}

	// Authorize hook: the member runs a handshake with the controller
	// before its first join.
	cfg.memberAuthorize = func(id mobility.VehicleID) func(vnet.Addr, func(bool)) {
		return func(controller vnet.Addr, done func(bool)) {
			a, ok := sd.Authenticators[id]
			if !ok {
				done(false)
				return
			}
			if err := a.Authenticate(controller, func(r auth.Result) { done(r.OK) }); err != nil {
				done(false)
			}
		}
	}
	// AcceptJoin hook: each controller admits only members whose
	// credentials it verified as responder during the member's handshake.
	cfg.acceptJoinFor = func(ctl vnet.Addr) func(vnet.Addr) bool {
		return func(member vnet.Addr) bool {
			return sd.verified[ctl][member]
		}
	}
	// Every node (vehicle or RSU) gets an authenticator wired below via
	// attachAuth.
	cfg.attachAuth = sd.attachAuth

	d, err := Deploy(s, arch, cfg, stats)
	if err != nil {
		return nil, err
	}
	sd.Deployment = d
	return sd, nil
}

// anchors builds the verifier trust state from the TA, with cached
// hybrid trapdoor tags refreshed on revocation-version change.
func (sd *SecureDeployment) anchors() auth.Anchors {
	var tagsVersion uint64
	var tags map[[32]byte]struct{}
	ta := sd.sec.TA
	return auth.Anchors{
		RootKey:  ta.RootKey(),
		GroupKey: ta.GroupKey(),
		CRL:      ta.CRL(),
		CRLMode:  sd.sec.CRLMode,
		GroupRevoked: func(sig cryptoprim.GroupSig) (bool, int) {
			return !ta.GroupManager().CheckNotRevoked(sig), ta.CRL().Len() / 8
		},
		HybridRevoked: func(id [32]byte) bool {
			if tags == nil || tagsVersion != ta.RevocationVersion() {
				tagsVersion = ta.RevocationVersion()
				tags = ta.HybridRevocationTags(4096)
			}
			_, revoked := tags[id]
			return revoked
		},
	}
}

// attachAuth enrolls a node and attaches its authenticator; responder
// verifications populate the node's verified-peer set.
func (sd *SecureDeployment) attachAuth(node *vnet.Node, identity string) error {
	enr, err := sd.sec.TA.Enroll(pki.VehicleIdentity(identity))
	if err != nil {
		return err
	}
	a, err := auth.New(node, enr, sd.anchors(), sd.sec.Scheme, sd.sec.Cost, sd.sec.Metrics)
	if err != nil {
		return err
	}
	self := node.Addr()
	a.OnPeerVerified(func(peer vnet.Addr) {
		set, ok := sd.verified[self]
		if !ok {
			set = make(map[vnet.Addr]bool)
			sd.verified[self] = set
		}
		set[peer] = true
	})
	if !scenario.IsRSU(self) {
		id := mobility.VehicleID(self)
		sd.Authenticators[id] = a
		sd.Enrollments[id] = enr
	}
	return nil
}
