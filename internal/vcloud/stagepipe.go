// Stage data handoff: the member-to-member pipeline that moves a DAG
// stage's output to the workers of its successors (PR 7 tentpole). The
// controller never proxies stage data on the happy path — its dispatch
// carries only the *addresses* of the predecessor's deciding voters
// (StageBinding.Inputs), and the worker pulls each input directly from
// a holder before compute starts. Replicas rotate their starting holder
// by replica index, so redundant copies of one stage diversify their
// input provenance: a Byzantine holder serving tampered bytes skews
// only the replicas that pulled from it, and downstream voting catches
// the divergence.
//
// Fallback ladder, per input: every listed holder in turn (bounded
// per-pull timeout) → controller relay (the controller still knows the
// decided value of every Done stage of a live job) → give up silently,
// letting the controller's attempt timeout reassign the stage task.
// All handoff messages are epoch-stamped: a pull or relay minted under
// a superseded leadership generation is rejected exactly like a stale
// dispatch, so a deposed controller's workers cannot resurrect traffic
// across a healed partition.
package vcloud

import (
	"time"

	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// Stage-handoff protocol message kinds.
const (
	kindStagePull  = "vc.spull"
	kindStageData  = "vc.sdata"
	kindStageRelay = "vc.srelay"
)

const (
	// stageCacheCap bounds the per-member stage-output cache (FIFO).
	stageCacheCap = 256
	// stagePullTimeout bounds one holder pull attempt.
	stagePullTimeout = time.Second
	// stageRelayTimeout bounds one controller-relay attempt.
	stageRelayTimeout = 2 * time.Second
	// stageRelayRetries bounds relay attempts per input before the
	// worker gives up on the task.
	stageRelayRetries = 3
)

// pullMsg asks a member for its cached copy of one stage output. For
// echoes the pulling task so the reply routes to the right fetch.
type pullMsg struct {
	For   TaskID
	Job   JobID
	Stage int
	Epoch Epoch
}

// stageDataMsg answers a pull or relay: the decided stage value, sized
// by the stage's OutputBytes so the radio pays the real transfer cost.
// OK false is an explicit miss — faster than letting the puller wait
// out its timeout.
type stageDataMsg struct {
	For   TaskID
	Stage int
	OK    bool
	Value uint64
	Epoch Epoch
}

// relayMsg asks the controller to serve a stage output whose holders
// all failed — the fallback that trades a controller round-trip for
// progress when churn swept the original voters away.
type relayMsg struct {
	For   TaskID
	Job   JobID
	Stage int
	Epoch Epoch
}

// stageKey identifies one cached stage output.
type stageKey struct {
	job   JobID
	stage int
}

// stageEntry is one cached stage output.
type stageEntry struct {
	value uint64
	bytes int
}

// stageCache is a bounded FIFO cache of stage outputs this member
// computed, kept to serve downstream pulls.
type stageCache struct {
	entries map[stageKey]stageEntry
	order   []stageKey
}

func newStageCache() *stageCache {
	return &stageCache{entries: make(map[stageKey]stageEntry)}
}

func (sc *stageCache) put(k stageKey, e stageEntry) {
	if _, dup := sc.entries[k]; !dup {
		sc.order = append(sc.order, k)
		for len(sc.order) > stageCacheCap {
			delete(sc.entries, sc.order[0])
			sc.order = sc.order[1:]
		}
	}
	sc.entries[k] = e
}

func (sc *stageCache) get(k stageKey) (stageEntry, bool) {
	e, ok := sc.entries[k]
	return e, ok
}

// stageFetch is the per-task input-gathering state machine: one input
// at a time (in Deps order), one source attempt in flight at most.
type stageFetch struct {
	rt      *runningTask
	idx     int // input being fetched
	tries   int // holder attempts for the current input
	relays  int // relay attempts for the current input
	timeout sim.EventID
}

// startStageFetch begins gathering the stage task's inputs; compute is
// scheduled only once every input value has arrived.
func (m *Member) startStageFetch(rt *runningTask) {
	rt.fetching = true
	rt.stageInputs = rt.stageInputs[:0]
	f := &stageFetch{rt: rt}
	m.fetches[rt.task.ID] = f
	m.pullNext(f)
}

// pullNext advances the fetch: local cache reuse, then the rotated
// holder list, then the controller relay, then give up.
func (m *Member) pullNext(f *stageFetch) {
	b := f.rt.task.Stage
	for f.idx < len(b.Inputs) {
		in := b.Inputs[f.idx]
		if e, hit := m.cache.get(stageKey{job: b.Job, stage: in.Stage}); hit {
			// This member computed (or already pulled) the predecessor:
			// zero-cost local handoff.
			m.stats.StageHandoffs.Inc()
			f.rt.stageInputs = append(f.rt.stageInputs, e.value)
			f.idx++
			f.tries, f.relays = 0, 0
			continue
		}
		if f.tries < len(in.Sources) {
			// Rotate the starting holder by replica index: redundant
			// copies of this stage spread their pulls across holders.
			start := f.rt.replica
			if start < 0 {
				start = 0
			}
			src := in.Sources[(start+f.tries)%len(in.Sources)]
			m.node.SendTo(src, m.node.NewMessage(src, kindStagePull, 64, 1, pullMsg{
				For:   f.rt.task.ID,
				Job:   b.Job,
				Stage: in.Stage,
				Epoch: f.rt.epoch,
			}))
			f.timeout = m.node.Kernel().After(stagePullTimeout, func() { m.onPullTimeout(f) })
			return
		}
		if f.relays < stageRelayRetries {
			f.relays++
			m.node.SendTo(f.rt.controller, m.node.NewMessage(f.rt.controller, kindStageRelay, 64, 1, relayMsg{
				For:   f.rt.task.ID,
				Job:   b.Job,
				Stage: in.Stage,
				Epoch: f.rt.epoch,
			}))
			f.timeout = m.node.Kernel().After(stageRelayTimeout, func() { m.onPullTimeout(f) })
			return
		}
		// Every holder and the relay failed: drop the task silently.
		// The controller's attempt timeout recovers and reassigns.
		m.abortStageFetch(f)
		return
	}
	m.finishStageFetch(f)
}

// onPullTimeout fires when a pull or relay went unanswered.
func (m *Member) onPullTimeout(f *stageFetch) {
	if m.stopped || m.fetches[f.rt.task.ID] != f {
		return
	}
	f.tries++
	m.pullNext(f)
}

// abortStageFetch abandons a stage task whose inputs are unreachable.
func (m *Member) abortStageFetch(f *stageFetch) {
	delete(m.fetches, f.rt.task.ID)
	if m.current[f.rt.task.ID] == f.rt {
		delete(m.current, f.rt.task.ID)
	}
}

// finishStageFetch schedules compute now that every input is local:
// the task queues behind the member's other work exactly like a plain
// dispatch would have.
func (m *Member) finishStageFetch(f *stageFetch) {
	rt := f.rt
	delete(m.fetches, rt.task.ID)
	rt.fetching = false
	var queued float64
	for _, o := range m.current {
		if o == rt {
			continue
		}
		queued += o.ops - m.executedOps(o)
	}
	now := m.node.Kernel().Now()
	wait := m.cfg.StartDelay + sim.Time(queued/m.cfg.Resources.CPU*float64(time.Second))
	rt.startedAt = now + wait
	runFor := wait + sim.Time(rt.ops/m.cfg.Resources.CPU*float64(time.Second))
	rt.doneEv = m.node.Kernel().After(runFor, func() { m.complete(rt) })
}

// onStageData routes a pull/relay answer into the waiting fetch.
func (m *Member) onStageData(msg vnet.Message, _ vnet.Addr) {
	if m.stopped {
		return
	}
	dm, ok := msg.Payload.(stageDataMsg)
	if !ok {
		return
	}
	f, live := m.fetches[dm.For]
	if !live {
		return // task finished fetching or was dropped
	}
	b := f.rt.task.Stage
	if f.idx >= len(b.Inputs) || b.Inputs[f.idx].Stage != dm.Stage {
		return // answer for an input already resolved
	}
	m.node.Kernel().Cancel(f.timeout)
	if dm.OK {
		// Cache the pulled input too: this member can now serve it to
		// siblings, and a retried attempt re-uses it for free.
		m.cache.put(stageKey{job: b.Job, stage: dm.Stage}, stageEntry{value: dm.Value, bytes: b.Inputs[f.idx].Bytes})
		f.rt.stageInputs = append(f.rt.stageInputs, dm.Value)
		f.idx++
		f.tries, f.relays = 0, 0
	} else {
		f.tries++ // explicit miss: advance to the next holder now
	}
	m.pullNext(f)
}

// onStagePull serves this member's cached stage outputs to peers.
func (m *Member) onStagePull(msg vnet.Message, _ vnet.Addr) {
	if m.stopped {
		return
	}
	pm, ok := msg.Payload.(pullMsg)
	if !ok {
		return
	}
	// Fencing: a pull minted under a superseded generation is as stale
	// as a dispatch from it.
	if !pm.Epoch.Zero() {
		if m.highestEpoch.Supersedes(pm.Epoch) {
			m.stats.StaleRejected.Inc()
			return
		}
		if pm.Epoch.Supersedes(m.highestEpoch) {
			m.highestEpoch = pm.Epoch
		}
	}
	e, hit := m.cache.get(stageKey{job: pm.Job, stage: pm.Stage})
	size := 64
	if hit {
		size += e.bytes
		m.stats.StageHandoffs.Inc()
	}
	m.node.SendTo(msg.Origin, m.node.NewMessage(msg.Origin, kindStageData, size, 1, stageDataMsg{
		For:   pm.For,
		Stage: pm.Stage,
		OK:    hit,
		Value: e.value,
		Epoch: m.highestEpoch,
	}))
}

// onStageRelay is the controller-side fallback: it serves the decided
// value of a Done stage when every member holder failed. A miss (job
// finished, stage undecided) stays silent — the worker's relay timeout
// drives its retry/give-up ladder.
func (c *Controller) onStageRelay(msg vnet.Message, _ vnet.Addr) {
	if c.stopped {
		return
	}
	rm, ok := msg.Payload.(relayMsg)
	if !ok {
		return
	}
	if !rm.Epoch.Zero() && c.epoch.Supersedes(rm.Epoch) {
		c.stats.StaleRejected.Inc()
		return
	}
	j, live := c.jobs[rm.Job]
	if !live || rm.Stage < 0 || rm.Stage >= len(j.stages) {
		return
	}
	st := &j.stages[rm.Stage]
	if st.status != StageDone {
		return
	}
	c.stats.StageRelays.Inc()
	c.node.SendTo(msg.Origin, c.node.NewMessage(msg.Origin, kindStageData, 64+j.spec.Stages[rm.Stage].OutputBytes, 1, stageDataMsg{
		For:   rm.For,
		Stage: rm.Stage,
		OK:    true,
		Value: st.value,
		Epoch: c.epoch,
	}))
}
