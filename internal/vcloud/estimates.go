package vcloud

import (
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// This file is the estimate plane of congestion-aware offload (ISSUE 8):
// members that hold a radio sender (and thus a GCC-style bandwidth
// estimator, internal/radio/gcc.go) periodically report each tier's live
// channel conditions to the controller, which keeps a per-tier table the
// placement governor (governor.go) reads when routing work between the
// vehicle cluster, the RSU edge and the conventional cloud. Reports ride
// epoch-fenced messages, and the table is checkpointed, so a promoted
// standby inherits the congestion view instead of starting blind.

// Tier identifies an offload destination class — the three columns of the
// paper's Fig. 2 comparison.
type Tier int

// Offload tiers.
const (
	TierVehicle Tier = iota // the vehicular cloud itself (V2V)
	TierEdge                // RSU edge servers (ETSI-MEC style)
	TierCloud               // conventional cloud over the uplink
	NumTiers
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierVehicle:
		return "vehicle"
	case TierEdge:
		return "edge"
	case TierCloud:
		return "cloud"
	default:
		return "unknown"
	}
}

// TierEstimate is the controller's live congestion view of one tier.
type TierEstimate struct {
	// Bps is the estimated usable bandwidth toward the tier.
	Bps float64
	// Loss is the recent loss fraction on the tier's channel.
	Loss float64
	// QueueDelay is the channel's current FIFO backlog wait.
	QueueDelay sim.Time
	// Seq orders reports from one feed; a lower-seq report arriving late
	// never overwrites a fresher one.
	Seq uint64
	// Updated is when the controller accepted the report.
	Updated sim.Time
}

// kindEstimate carries a member's tier-condition report.
const kindEstimate = "vc.est"

// estimateMsg is one tier-condition report. Epoch fences it: a report
// stamped below the controller's epoch is stale — it was measured for a
// deposed leader's placement decisions — and is rejected.
type estimateMsg struct {
	Tier       Tier
	Bps        float64
	Loss       float64
	QueueDelay sim.Time
	Seq        uint64
	Epoch      Epoch
}

// EstimateSource is a live channel-condition feed. *radio.Sender
// satisfies it; tests use synthetic sources.
type EstimateSource interface {
	EstimateBps() float64
	LossRate() float64
	QueueDelay() sim.Time
}

// EstimateFeed binds a source to the tier it measures.
type EstimateFeed struct {
	Tier   Tier
	Source EstimateSource
}

// AddEstimateFeed attaches a channel-condition feed to a running member
// — the wiring path for deployments whose members were created before
// the radio senders existed.
func (m *Member) AddEstimateFeed(f EstimateFeed) {
	m.cfg.EstimateFeeds = append(m.cfg.EstimateFeeds, f)
}

// reportEstimates sends one report per configured feed to the currently
// followed controller, stamped with the member's highest witnessed epoch
// so a fenced controller can reject measurements aimed at a deposed
// leader. Rides the member tick (CheckPeriod cadence).
func (m *Member) reportEstimates() {
	if m.controller < 0 || len(m.cfg.EstimateFeeds) == 0 {
		return
	}
	for i := range m.cfg.EstimateFeeds {
		f := &m.cfg.EstimateFeeds[i]
		if f.Source == nil || f.Tier < 0 || f.Tier >= NumTiers {
			continue
		}
		m.estimateSeq++
		msg := m.node.NewMessage(m.controller, kindEstimate, 64, 1, estimateMsg{
			Tier:       f.Tier,
			Bps:        f.Source.EstimateBps(),
			Loss:       f.Source.LossRate(),
			QueueDelay: f.Source.QueueDelay(),
			Seq:        m.estimateSeq,
			Epoch:      m.highestEpoch,
		})
		m.node.SendTo(m.controller, msg)
	}
}

// onEstimate folds an accepted report into the controller's tier table.
func (c *Controller) onEstimate(msg vnet.Message, _ vnet.Addr) {
	if c.stopped {
		return
	}
	em, ok := msg.Payload.(estimateMsg)
	if !ok || em.Tier < 0 || em.Tier >= NumTiers {
		return
	}
	if c.cfg.Fencing && !em.Epoch.Zero() && c.epoch.Supersedes(em.Epoch) {
		// Measured for a deposed leader: reject rather than let a stale
		// congestion view steer placement.
		c.stats.EstimateStale.Inc()
		return
	}
	cur := &c.estimates[em.Tier]
	if em.Seq <= cur.Seq {
		return // late-arriving older report
	}
	cur.Bps = em.Bps
	cur.Loss = em.Loss
	cur.QueueDelay = em.QueueDelay
	cur.Seq = em.Seq
	cur.Updated = c.node.Kernel().Now()
	c.stats.EstimateReports.Inc()
}

// TierEstimateFor returns the live estimate for a tier; ok is false while
// no report has been accepted (the governor then falls back to nominal
// figures).
func (c *Controller) TierEstimateFor(t Tier) (TierEstimate, bool) {
	if t < 0 || t >= NumTiers {
		return TierEstimate{}, false
	}
	e := c.estimates[t]
	return e, e.Seq > 0
}

// SetTierEstimate seeds or overrides a tier estimate directly — the path
// for co-located sources (a sender owned by the controller's own node)
// that need no network round-trip, and for tests.
func (c *Controller) SetTierEstimate(t Tier, e TierEstimate) {
	if t < 0 || t >= NumTiers {
		return
	}
	if e.Seq <= c.estimates[t].Seq {
		e.Seq = c.estimates[t].Seq + 1
	}
	e.Updated = c.node.Kernel().Now()
	c.estimates[t] = e
}
