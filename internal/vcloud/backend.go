package vcloud

import (
	"fmt"
	"time"

	"vcloud/internal/radio"
	"vcloud/internal/sim"
)

// Backend abstracts "where computation runs" so the Fig. 2 comparison
// (experiment E1) can drive the identical workload against a
// conventional cloud, a mobile-cloud stand-in, and the vehicular cloud.
type Backend interface {
	// Name identifies the backend in experiment rows.
	Name() string
	// Submit runs the task; done fires at most once (lost submissions
	// during outages may never call back — callers use timeouts, as real
	// clients do).
	Submit(task Task, done func(TaskResult)) error
}

// RemoteCloud models the conventional (or mobile) cloud: tasks cross a
// cellular uplink to a datacenter with the given aggregate compute.
// Mobile clouds are the same structure with less compute and a slower
// link (Fig. 2's middle column).
type RemoteCloud struct {
	name   string
	kernel *sim.Kernel
	uplink *radio.Uplink
	// sender, when non-nil, routes exchanges through an estimator-backed
	// uplink sender so this backend's own traffic feeds congestion
	// feedback (see radio.Sender and the placement governor).
	sender *radio.Sender
	// cpu is the datacenter's effective per-task compute rate (ops/s).
	cpu   float64
	stats *Stats
	next  TaskID
}

// NewRemoteCloud creates a remote backend over the given uplink.
func NewRemoteCloud(name string, kernel *sim.Kernel, uplink *radio.Uplink, cpu float64, stats *Stats) (*RemoteCloud, error) {
	if name == "" {
		return nil, fmt.Errorf("vcloud: backend name must not be empty")
	}
	if kernel == nil || uplink == nil || stats == nil {
		return nil, fmt.Errorf("vcloud: kernel, uplink and stats must not be nil")
	}
	if cpu <= 0 {
		return nil, fmt.Errorf("vcloud: datacenter cpu must be positive, got %v", cpu)
	}
	return &RemoteCloud{name: name, kernel: kernel, uplink: uplink, cpu: cpu, stats: stats}, nil
}

// NewRemoteCloudSender creates a remote backend whose traffic rides an
// estimator-backed sender: every exchange feeds the sender's bandwidth
// estimator, so the backend observes the congestion it causes.
func NewRemoteCloudSender(name string, kernel *sim.Kernel, sender *radio.Sender, cpu float64, stats *Stats) (*RemoteCloud, error) {
	if sender == nil {
		return nil, fmt.Errorf("vcloud: sender must not be nil")
	}
	rc, err := NewRemoteCloud(name, kernel, sender.Uplink(), cpu, stats)
	if err != nil {
		return nil, err
	}
	rc.sender = sender
	return rc, nil
}

// Name implements Backend.
func (r *RemoteCloud) Name() string { return r.name }

// Submit implements Backend.
func (r *RemoteCloud) Submit(task Task, done func(TaskResult)) error {
	if err := task.Validate(); err != nil {
		return err
	}
	r.next++
	task.ID = r.next
	r.stats.Submitted.Inc()
	start := r.kernel.Now()
	compute := sim.Time(task.Ops / r.cpu * float64(time.Second))
	roundTrip := r.uplink.RoundTrip
	if r.sender != nil {
		roundTrip = r.sender.RoundTrip
	}
	sent := roundTrip(task.InputBytes, task.OutputBytes, func() {
		// The round trip models transfer; add datacenter compute.
		r.kernel.After(compute, func() {
			lat := r.kernel.Now() - start
			if task.Deadline > 0 && r.kernel.Now() > task.Deadline {
				r.stats.Failed.Inc()
				if done != nil {
					done(TaskResult{ID: task.ID, OK: false, Latency: lat, Reason: ReasonDeadline})
				}
				return
			}
			r.stats.Completed.Inc()
			r.stats.Latency.ObserveDuration(lat)
			if done != nil {
				done(TaskResult{ID: task.ID, OK: true, Latency: lat})
			}
		})
	})
	if !sent {
		r.stats.Failed.Inc()
		if done != nil {
			done(TaskResult{ID: task.ID, OK: false, Reason: ReasonUplinkDown})
		}
	}
	return nil
}

// VehicularBackend adapts a Controller to the Backend interface.
type VehicularBackend struct {
	C *Controller
}

// Name implements Backend.
func (v VehicularBackend) Name() string { return "vehicular" }

// Submit implements Backend.
func (v VehicularBackend) Submit(task Task, done func(TaskResult)) error {
	_, err := v.C.Submit(task, done)
	return err
}

// DeploymentBackend adapts a whole Deployment to the Backend interface:
// submissions route to the most-members-first active controller, so the
// backend keeps working across controller failover — the vehicle-tier
// target the placement governor drives.
type DeploymentBackend struct {
	D *Deployment
}

// Name implements Backend.
func (b DeploymentBackend) Name() string { return "vehicular-cloud" }

// Submit implements Backend.
func (b DeploymentBackend) Submit(task Task, done func(TaskResult)) error {
	return b.D.SubmitAnywhere(task, done)
}

var (
	_ Backend = (*RemoteCloud)(nil)
	_ Backend = VehicularBackend{}
	_ Backend = DeploymentBackend{}
)
