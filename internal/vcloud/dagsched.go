// Controller-side DAG job engine (PR 7 tentpole): deterministic
// topological dispatch of dependent stages onto the existing dependable
// task machinery. Each stage runs as a regular Task carrying a
// StageBinding, so placement (dwell + trust weighted, see
// pickReplicaMember), K-redundant voting, retries, epoch fencing and
// checkpointing all come from the layers below; this file owns the
// job-level state machine: wave dispatch, stage retry/backoff driven by
// the structured FailReason, whole-job restart (the naive baseline),
// graceful degradation of optional branches, and exactly-once stage
// outcome application riding the controller's (task, epoch) ledger.
package vcloud

import (
	"fmt"
	"sort"

	"vcloud/internal/sim"
	"vcloud/internal/trace"
	"vcloud/internal/vnet"
)

// formingRetryCap bounds how many no-eligible-member stage rounds are
// forgiven without consuming the stage retry budget (the cloud may
// still be forming or healing a partition); past it, the normal budget
// applies so a memberless cloud cannot spin forever.
const formingRetryCap = 8

// jobStage is the engine's per-stage state.
type jobStage struct {
	status  StageStatus
	value   uint64
	holders []vnet.Addr
	// taskID is the live underlying task (0 when none).
	taskID TaskID
	// appliedTask is the last task whose outcome was applied to this
	// stage — the tripwire for "no stage outcome applied twice".
	appliedTask TaskID
	retries     int
	forming     int
	// backoff marks a pending stage-retry timer; gen invalidates stale
	// timers across restarts.
	backoff bool
	gen     int
}

// jobState is one in-flight DAG job.
type jobState struct {
	id        JobID
	spec      JobSpec
	client    vnet.Addr
	submitted sim.Time
	order     []int
	alloc     []int
	stages    []jobStage
	restarts  int
	wasted    float64
	done      func(JobResult)
}

// SubmitJob enters a DAG job on the controller's own account. done
// fires at most once; like task callbacks it does not survive failover
// (the job itself does — it rides checkpoints).
func (c *Controller) SubmitJob(spec JobSpec, done func(JobResult)) (JobID, error) {
	return c.SubmitJobFor(c.node.Addr(), spec, done)
}

// SubmitJobFor enters a DAG job charged to the given client account.
func (c *Controller) SubmitJobFor(client vnet.Addr, spec JobSpec, done func(JobResult)) (JobID, error) {
	if c.stopped {
		return 0, fmt.Errorf("vcloud: controller stopped")
	}
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	if c.leaseExpired(c.node.Kernel().Now()) {
		return 0, fmt.Errorf("vcloud: leadership lease expired (standby unreachable)")
	}
	c.nextJobID++
	id := JobID(epochTaskID(c.epoch.Counter, c.nextJobID))
	j := c.buildJob(id, spec, client, c.node.Kernel().Now(), done)
	c.jobs[id] = j
	c.stats.JobsSubmitted.Inc()
	c.cfg.Trace.Emit(c.node.Kernel().Now(), trace.CatCloud, int32(c.node.Addr()),
		"job %d submitted: %d stages, budget %d, critical-path alloc %v", id, len(spec.Stages), spec.ReplicaBudget, j.alloc)
	c.dispatchReady(j)
	return id, nil
}

// buildJob materializes job state from a validated spec. Topological
// order and the replica allocation are pure functions of the spec, so
// a failover successor reconstructs them identically.
func (c *Controller) buildJob(id JobID, spec JobSpec, client vnet.Addr, submitted sim.Time, done func(JobResult)) *jobState {
	spec = spec.withDefaults()
	order, _ := TopoOrder(&spec)
	alloc := AllocateReplicas(&spec, order)
	extra := 0
	for _, k := range alloc {
		extra += k - 1
	}
	if extra > spec.ReplicaBudget {
		// Tripwire for the "replica budget never exceeded" invariant.
		c.violations = append(c.violations, fmt.Sprintf("job %d replica allocation %d exceeds budget %d", id, extra, spec.ReplicaBudget))
	}
	j := &jobState{
		id:        id,
		spec:      spec,
		client:    client,
		submitted: submitted,
		order:     order,
		alloc:     alloc,
		stages:    make([]jobStage, len(spec.Stages)),
		done:      done,
	}
	for i := range j.stages {
		j.stages[i].status = StageWaiting
	}
	return j
}

// PendingJobs returns how many DAG jobs are in flight.
func (c *Controller) PendingJobs() int { return len(c.jobs) }

// dispatchReady launches every stage whose dependencies have resolved,
// in topological order (deterministic: the order is a pure function of
// the spec). A stage whose dependency was abandoned is abandoned too —
// Validate's optional-closure rule guarantees it is optional.
func (c *Controller) dispatchReady(j *jobState) {
	for _, i := range j.order {
		if _, live := c.jobs[j.id]; !live {
			return // the job finished (or failed) mid-loop
		}
		st := &j.stages[i]
		if st.status != StageWaiting || st.backoff {
			continue
		}
		ready, abandoned := true, false
		for _, d := range j.spec.Stages[i].Deps {
			switch j.stages[d].status {
			case StageDone:
			case StageAbandoned:
				abandoned = true
			default:
				ready = false
			}
		}
		if !ready {
			continue
		}
		if abandoned {
			c.abandonStage(j, i)
			continue
		}
		c.launchStage(j, i)
	}
	c.checkJobDone(j)
}

// launchStage submits stage i as a dependable task. The binding tells
// the worker which predecessor outputs to pull (from the deciding
// voters of each dependency, member-to-member) before compute starts.
func (c *Controller) launchStage(j *jobState, i int) {
	sp := &j.spec.Stages[i]
	st := &j.stages[i]
	st.status = StageRunning
	st.backoff = false
	binding := &StageBinding{Job: j.id, Stage: i, OutputBytes: sp.OutputBytes}
	for _, d := range sp.Deps {
		binding.Inputs = append(binding.Inputs, StageInput{
			Stage:   d,
			Bytes:   j.spec.Stages[d].OutputBytes,
			Sources: append([]vnet.Addr(nil), j.stages[d].holders...),
		})
	}
	task := Task{
		Ops:         sp.Ops,
		InputBytes:  sp.InputBytes,
		OutputBytes: 0, // workers return a digest; data flows member-to-member
		Deadline:    j.spec.Deadline,
		NeedsSensor: sp.NeedsSensor,
		Depend: &DependabilityPolicy{
			Replicas:     j.alloc[i],
			MaxRetries:   j.spec.TaskRetries,
			RetryBackoff: j.spec.RetryBackoff,
		},
		Stage: binding,
	}
	id, err := c.SubmitFor(j.client, task, nil)
	if err != nil {
		// Submission refused (lease expired mid-job): treat like a
		// no-eligible-member stage failure and let backoff decide.
		st.taskID = 0
		c.onStageFailed(j, i, ReasonNoEligibleMember)
		return
	}
	c.stats.StagesDispatched.Inc()
	// SubmitFor never applies an outcome before returning (the fail-fast
	// deadline path defers by a tick), so the binding is always recorded
	// before the outcome can route back here.
	st.taskID = id
}

// onStageApplied routes an applied task outcome into the job engine.
// It is called from applyEntry — after the (task, epoch) ledger has
// enforced exactly-once — so a duplicate reaching this function is an
// invariant violation, not a normal dedupe.
func (c *Controller) onStageApplied(po ParkedOutcome) {
	if c.stopped {
		return
	}
	b := po.Task.Stage
	j, live := c.jobs[b.Job]
	if !live || b.Stage < 0 || b.Stage >= len(j.stages) {
		return // outcome for a job already finished elsewhere
	}
	st := &j.stages[b.Stage]
	if st.appliedTask != 0 && st.appliedTask == po.Task.ID {
		c.violations = append(c.violations, fmt.Sprintf(
			"job %d stage %d outcome applied twice (task %d)", b.Job, b.Stage, po.Task.ID))
		return
	}
	if st.status != StageRunning || st.taskID != po.Task.ID {
		return // outcome of a superseded stage attempt (restart raced it)
	}
	st.appliedTask = po.Task.ID
	st.taskID = 0
	if po.OK {
		st.status = StageDone
		st.value = po.Value
		st.holders = append([]vnet.Addr(nil), po.Voters...)
		c.stats.StagesCompleted.Inc()
		c.cfg.Trace.Emit(c.node.Kernel().Now(), trace.CatCloud, int32(c.node.Addr()),
			"job %d stage %d done on %v", b.Job, b.Stage, st.holders)
		c.dispatchReady(j)
		return
	}
	c.onStageFailed(j, b.Stage, po.Reason)
}

// onStageFailed is the job layer's retry decision, driven by the
// structured FailReason:
//
//   - deadline: the job can never complete — fail it now;
//   - no-eligible-member: the cloud may be forming or healing — wait
//     without consuming the stage budget (bounded by formingRetryCap);
//   - anything else (retries-exhausted, no-quorum): consume a stage
//     retry with exponential backoff; past the budget, abandon the
//     stage if optional (graceful degradation) or fail the job.
//
// Under WholeJobRestart every stage failure instead restarts the whole
// job — the naive baseline E15 measures against.
func (c *Controller) onStageFailed(j *jobState, i int, reason FailReason) {
	st := &j.stages[i]
	if reason == ReasonDeadline {
		st.status = StageFailed
		c.failJob(j, ReasonDeadline)
		return
	}
	if j.spec.WholeJobRestart {
		if j.restarts < j.spec.JobRestarts {
			c.restartJob(j)
		} else {
			st.status = StageFailed
			c.failJob(j, ReasonStageFailed)
		}
		return
	}
	delay := j.spec.RetryBackoff
	if reason == ReasonNoEligibleMember && st.forming < formingRetryCap {
		st.forming++
		delay = 2 * j.spec.RetryBackoff
	} else {
		if st.retries >= j.spec.StageRetries {
			if j.spec.Stages[i].Optional {
				c.abandonStage(j, i)
				c.dispatchReady(j)
			} else {
				st.status = StageFailed
				c.failJob(j, ReasonStageFailed)
			}
			return
		}
		st.retries++
		c.stats.StageRetries.Inc()
		for r := 1; r < st.retries; r++ {
			delay *= 2
		}
	}
	st.status = StageWaiting
	st.backoff = true
	st.gen++
	gen := st.gen
	c.node.Kernel().After(delay, func() {
		jj, live := c.jobs[j.id]
		if !live || jj != j || c.stopped || st.gen != gen {
			return
		}
		st.backoff = false
		c.dispatchReady(j)
	})
}

// abandonStage gives up on an optional stage (or a stage downstream of
// one): the job will complete without its branch.
func (c *Controller) abandonStage(j *jobState, i int) {
	st := &j.stages[i]
	st.status = StageAbandoned
	st.gen++
	st.backoff = false
	c.stats.StagesAbandoned.Inc()
	c.cfg.Trace.Emit(c.node.Kernel().Now(), trace.CatCloud, int32(c.node.Addr()),
		"job %d stage %d abandoned (optional branch lost)", j.id, i)
}

// restartJob is the naive whole-job recovery: throw away every
// completed stage, cancel every running one, and start over. The
// thrown-away ops are the wasted work E15 quantifies.
func (c *Controller) restartJob(j *jobState) {
	j.restarts++
	c.stats.JobRestarts.Inc()
	for i := range j.stages {
		st := &j.stages[i]
		if st.status == StageDone {
			j.wasted += j.spec.Stages[i].Ops
			c.stats.WastedOps += j.spec.Stages[i].Ops
		}
		if st.status == StageRunning && st.taskID != 0 {
			c.cancelTask(st.taskID)
		}
		st.status = StageWaiting
		st.value = 0
		st.holders = nil
		st.taskID = 0
		st.retries = 0
		st.forming = 0
		st.backoff = false
		st.gen++
	}
	c.cfg.Trace.Emit(c.node.Kernel().Now(), trace.CatCloud, int32(c.node.Addr()),
		"job %d whole-job restart %d/%d", j.id, j.restarts, j.spec.JobRestarts)
	c.dispatchReady(j)
}

// failJob cancels everything still running and reports failure.
func (c *Controller) failJob(j *jobState, reason FailReason) {
	for i := range j.stages {
		st := &j.stages[i]
		st.gen++
		st.backoff = false
		if st.status == StageRunning {
			if st.taskID != 0 {
				c.cancelTask(st.taskID)
			}
			st.status = StageWaiting
			st.taskID = 0
		}
		if st.status == StageDone {
			// Completed work of a failed job bought nothing.
			j.wasted += j.spec.Stages[i].Ops
			c.stats.WastedOps += j.spec.Stages[i].Ops
		}
	}
	c.stats.JobsFailed.Inc()
	c.finishJob(j, c.jobResult(j, false, false, reason))
}

// checkJobDone completes the job once every stage is done or abandoned.
func (c *Controller) checkJobDone(j *jobState) {
	if _, live := c.jobs[j.id]; !live {
		return
	}
	partial := false
	for i := range j.stages {
		switch j.stages[i].status {
		case StageDone:
		case StageAbandoned:
			partial = true
		default:
			return
		}
	}
	c.stats.JobsCompleted.Inc()
	if partial {
		c.stats.JobsPartial.Inc()
	}
	c.finishJob(j, c.jobResult(j, true, partial, ReasonNone))
}

// jobResult assembles the submitter-facing report.
func (c *Controller) jobResult(j *jobState, ok, partial bool, reason FailReason) JobResult {
	out := JobResult{
		Job:       j.id,
		OK:        ok,
		Partial:   partial,
		Reason:    reason,
		Latency:   c.node.Kernel().Now() - j.submitted,
		Restarts:  j.restarts,
		WastedOps: j.wasted,
	}
	hasSucc := make([]bool, len(j.stages))
	for i := range j.spec.Stages {
		for _, d := range j.spec.Stages[i].Deps {
			hasSucc[d] = true
		}
	}
	var sinks []uint64
	for i := range j.stages {
		st := &j.stages[i]
		out.ExtraReplicas += j.alloc[i] - 1
		out.Stages = append(out.Stages, StageOutcome{
			Status:   st.status,
			Value:    st.value,
			Retries:  st.retries,
			Replicas: j.alloc[i],
			Holders:  append([]vnet.Addr(nil), st.holders...),
		})
		if !hasSucc[i] && st.status == StageDone {
			sinks = append(sinks, st.value)
		}
	}
	out.Value = StageDigest(j.id, -1, 0, sinks)
	return out
}

// finishJob retires the job and fires the submitter callback.
func (c *Controller) finishJob(j *jobState, res JobResult) {
	delete(c.jobs, j.id)
	c.cfg.Trace.Emit(c.node.Kernel().Now(), trace.CatCloud, int32(c.node.Addr()),
		"job %d finish ok=%v partial=%v reason=%q latency=%v restarts=%d",
		j.id, res.OK, res.Partial, res.Reason, res.Latency, res.Restarts)
	if j.done != nil {
		j.done(res)
	}
}

// cancelTask kills an in-flight task without firing any outcome: the
// job layer superseded it (whole-job restart, job failure). Late
// results for the ID are ignored by onResult; queue reservations are
// released so member load book-keeping stays truthful.
func (c *Controller) cancelTask(id TaskID) {
	ts, live := c.tasks[id]
	if !live {
		return
	}
	if ts.policy == nil && ts.timeout.Pending() {
		c.releaseQueue(ts)
	}
	c.node.Kernel().Cancel(ts.timeout)
	for _, slot := range ts.replicas {
		if !slot.resolved() && slot.timeout.Pending() {
			if m, ok := c.members[slot.assignee]; ok {
				m.queuedOps -= slot.remaining
				if m.queuedOps < 0 {
					m.queuedOps = 0
				}
			}
		}
		c.node.Kernel().Cancel(slot.timeout)
	}
	delete(c.tasks, id)
}

// failAllJobs fails every in-flight job (controller Stop).
func (c *Controller) failAllJobs(reason FailReason) {
	ids := make([]JobID, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if j, live := c.jobs[id]; live {
			c.failJob(j, reason)
		}
	}
}

// exportJobs snapshots every in-flight job for checkpoints and merge
// messages, in ascending job-ID order.
func (c *Controller) exportJobs() []JobCheckpoint {
	if len(c.jobs) == 0 {
		return nil
	}
	ids := make([]JobID, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]JobCheckpoint, 0, len(ids))
	for _, id := range ids {
		j := c.jobs[id]
		jc := JobCheckpoint{
			ID:        j.id,
			Client:    j.client,
			Submitted: j.submitted,
			Restarts:  j.restarts,
			Wasted:    j.wasted,
			Spec:      j.spec,
		}
		for i := range j.stages {
			st := &j.stages[i]
			jc.Stages = append(jc.Stages, StageCheckpoint{
				Status:  st.status,
				Value:   st.value,
				Retries: st.retries,
				TaskID:  st.taskID,
				Holders: append([]vnet.Addr(nil), st.holders...),
			})
		}
		out = append(out, jc)
	}
	return out
}

// restoreJob rebuilds job state from a checkpoint row (no callback —
// closures do not survive replication).
func (c *Controller) restoreJob(jc JobCheckpoint) *jobState {
	j := c.buildJob(jc.ID, jc.Spec, jc.Client, jc.Submitted, nil)
	j.restarts = jc.Restarts
	j.wasted = jc.Wasted
	for i := range jc.Stages {
		if i >= len(j.stages) {
			break
		}
		st := &j.stages[i]
		sc := jc.Stages[i]
		st.status = sc.Status
		st.value = sc.Value
		st.retries = sc.Retries
		st.taskID = sc.TaskID
		st.holders = append([]vnet.Addr(nil), sc.Holders...)
	}
	c.jobs[jc.ID] = j
	return j
}

// dagResume reconciles restored/merged job state against the live task
// table: a stage recorded as running whose task no longer exists (its
// outcome was applied or parked on the far side, or the task was lost
// with the old controller) is reset and re-dispatched. Re-executing a
// stage is safe — outcomes of superseded attempts are ignored by
// taskID match and values are deterministic digests.
func (c *Controller) dagResume() {
	ids := make([]JobID, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		j, live := c.jobs[id]
		if !live {
			continue
		}
		for i := range j.stages {
			st := &j.stages[i]
			st.backoff = false // timers do not survive restore
			st.gen++
			if st.status == StageRunning {
				if _, taskLive := c.tasks[st.taskID]; st.taskID == 0 || !taskLive {
					st.status = StageWaiting
					st.taskID = 0
				}
			}
		}
		c.dispatchReady(j)
	}
}
