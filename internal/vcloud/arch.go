package vcloud

import (
	"fmt"
	"sort"
	"time"

	"vcloud/internal/cluster"
	"vcloud/internal/mobility"
	"vcloud/internal/scenario"
	"vcloud/internal/vnet"
)

// Architecture names the three Fig. 4 vehicular-cloud types.
type Architecture int

// Architectures.
const (
	Stationary Architecture = iota + 1
	Infrastructure
	Dynamic
)

// String implements fmt.Stringer.
func (a Architecture) String() string {
	switch a {
	case Stationary:
		return "stationary"
	case Infrastructure:
		return "infrastructure"
	case Dynamic:
		return "dynamic"
	default:
		return "unknown"
	}
}

// Deployment is an assembled vehicular cloud over a scenario.
type Deployment struct {
	Arch        Architecture
	Stats       *Stats
	Controllers []*Controller
	Members     map[mobility.VehicleID]*Member
	// Runners holds the cluster runners of a dynamic deployment.
	Runners map[mobility.VehicleID]*cluster.Runner

	s   *scenario.Scenario
	cfg DeployConfig
	// dynamic controllers keyed by vehicle.
	dynCtl map[mobility.VehicleID]*Controller
	// emergency records the management-plane flag so controllers elected
	// after SetEmergency inherit it.
	emergency bool
}

// DeployConfig tunes a deployment.
type DeployConfig struct {
	// Controller is applied to every controller created.
	Controller ControllerConfig
	// MemberResources maps a vehicle's mobility profile to pool
	// resources; nil derives CPU/Storage/Sensors from the profile.
	MemberResources func(p mobility.Profile) Resources
	// Handover enables member-side proactive handover.
	Handover bool
	// DwellMode selects the estimator members' dwell predictions use.
	// Zero disables dwell awareness.
	DwellMode mobility.DwellMode
	// ClusterAlgo is the clustering algorithm for Dynamic deployments;
	// nil means cluster.MobilitySimilarity{}.
	ClusterAlgo cluster.Algorithm
	// BatteryOps bounds each member's total executed ops (parked-vehicle
	// battery budget, [9]); zero = unlimited.
	BatteryOps float64
	// Failover enables controller checkpoint replication and standby
	// self-promotion on every controller, and tracks promoted successors
	// in Controllers so SubmitAnywhere finds them.
	Failover bool
	// Fencing enables split-brain-safe leadership on every controller:
	// epoch-fenced dispatches, apply-after-ack outcomes, abdication and
	// merge reconciliation (see merge.go). A controller that abdicates
	// is removed from Controllers and its vehicle node rejoins as a
	// member.
	Fencing bool
	// OnApply observes every applied task outcome across all controllers
	// (including promoted successors, whose checkpoints strip hooks) —
	// the chaos harness's "no outcome applied twice" probe.
	OnApply func(id TaskID, epoch uint64, ok bool)
	// OnAccept observes every fenced advertisement members accept — the
	// chaos harness's "at most one controller per epoch" probe.
	OnAccept func(controller vnet.Addr, e Epoch)
	// Storage, when non-nil, is the vehicular data-storage backend every
	// controller drives (see storage.go): membership churn and
	// partition-heal merges trigger fenced repair passes, and promoted
	// failover successors re-attach it so the service keeps repairing
	// across controller generations.
	Storage storageBackend

	// Unexported wiring installed by DeploySecure.
	memberAuthorize func(id mobility.VehicleID) func(vnet.Addr, func(bool))
	acceptJoinFor   func(ctl vnet.Addr) func(vnet.Addr) bool
	attachAuth      func(node *vnet.Node, identity string) error
}

func defaultResources(p mobility.Profile) Resources {
	return Resources{CPU: p.CPU, Storage: p.Storage, Sensors: p.Sensors}
}

// Deploy assembles a vehicular cloud of the given architecture over the
// scenario. For Infrastructure, RSUs must already have been added to the
// scenario; each becomes a controller. For Stationary, the scenario
// should contain parked vehicles and the first RSU (the "gate server")
// is the controller — if no RSU exists, the lowest-address vehicle
// coordinates. Dynamic elects controllers via clustering.
func Deploy(s *scenario.Scenario, arch Architecture, cfg DeployConfig, stats *Stats) (*Deployment, error) {
	if s == nil || stats == nil {
		return nil, fmt.Errorf("vcloud: scenario and stats must not be nil")
	}
	if cfg.MemberResources == nil {
		cfg.MemberResources = defaultResources
	}
	d := &Deployment{
		Arch:    arch,
		Stats:   stats,
		Members: make(map[mobility.VehicleID]*Member),
		Runners: make(map[mobility.VehicleID]*cluster.Runner),
		s:       s,
		cfg:     cfg,
		dynCtl:  make(map[mobility.VehicleID]*Controller),
	}

	switch arch {
	case Stationary, Infrastructure:
		if err := d.deployFixed(); err != nil {
			return nil, err
		}
	case Dynamic:
		if err := d.deployDynamic(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("vcloud: unknown architecture %d", arch)
	}
	return d, nil
}

// dwellFor builds the controller-side dwell estimator centered on the
// controller node.
func (d *Deployment) dwellFor(ctlNode *vnet.Node) DwellEstimator {
	if d.cfg.DwellMode == 0 {
		return nil
	}
	radius := d.s.Medium.Params().RangeMax
	return func(member vnet.Addr) float64 {
		if scenario.IsRSU(member) {
			return 1e9
		}
		return d.s.Mobility.EstimateDwell(mobility.VehicleID(member), ctlNode.Position(), radius, d.cfg.DwellMode)
	}
}

// applyHook returns the effective outcome-apply observer (an explicit
// controller-level hook wins over the deployment-level one).
func (d *Deployment) applyHook() func(TaskID, uint64, bool) {
	if d.cfg.Controller.OnApply != nil {
		return d.cfg.Controller.OnApply
	}
	return d.cfg.OnApply
}

// onAbdicate removes an abdicated controller from the deployment and —
// when it ran on a vehicle — re-attaches a member agent on the node, so
// the ex-leader's resources return to the pool it just handed over.
func (d *Deployment) onAbdicate(c *Controller) {
	for i, cc := range d.Controllers {
		if cc == c {
			d.Controllers = append(d.Controllers[:i], d.Controllers[i+1:]...)
			break
		}
	}
	if addr := c.Addr(); !scenario.IsRSU(addr) {
		_ = d.attachMember(mobility.VehicleID(addr))
	}
}

func (d *Deployment) newController(node *vnet.Node) (*Controller, error) {
	cc := d.cfg.Controller
	cc.Handover = d.cfg.Handover
	cc.Failover = cc.Failover || d.cfg.Failover
	cc.Fencing = cc.Fencing || d.cfg.Fencing
	if cc.OnApply == nil {
		cc.OnApply = d.cfg.OnApply
	}
	if cc.Fencing && cc.OnAbdicate == nil {
		cc.OnAbdicate = d.onAbdicate
	}
	if cc.Dwell == nil {
		cc.Dwell = d.dwellFor(node)
	}
	if d.cfg.acceptJoinFor != nil {
		cc.AcceptJoin = d.cfg.acceptJoinFor(node.Addr())
	}
	c, err := NewController(node, cc, d.Stats)
	if err != nil {
		return nil, err
	}
	c.AttachStorage(d.cfg.Storage)
	return c, nil
}

func (d *Deployment) attachMember(id mobility.VehicleID) error {
	node, ok := d.s.Node(id)
	if !ok {
		return fmt.Errorf("vcloud: vehicle %d has no node", id)
	}
	profile, _ := d.s.Mobility.Profile(id)
	mc := MemberConfig{
		Resources:  d.cfg.MemberResources(profile),
		Handover:   d.cfg.Handover,
		BatteryOps: d.cfg.BatteryOps,
	}
	vid := id
	mc.OnAccept = d.cfg.OnAccept
	mc.OnPromote = func(c *Controller) {
		// The promoted node stopped being a worker; track its controller
		// so SubmitAnywhere and ActiveControllers see the successor.
		delete(d.Members, vid)
		if d.emergency {
			c.SetEmergency(true)
		}
		// Checkpoints strip function hooks; re-install the deployment's
		// so promoted successors keep reporting applies, abdications and
		// trace events.
		c.cfg.OnApply = d.applyHook()
		c.cfg.Trace = d.cfg.Controller.Trace
		if c.cfg.Fencing {
			c.cfg.OnAbdicate = d.onAbdicate
		}
		c.AttachStorage(d.cfg.Storage)
		d.Controllers = append(d.Controllers, c)
	}
	if d.cfg.attachAuth != nil {
		if err := d.cfg.attachAuth(node, fmt.Sprintf("veh-%d", id)); err != nil {
			return err
		}
	}
	if d.cfg.memberAuthorize != nil {
		mc.Authorize = d.cfg.memberAuthorize(id)
	}
	if d.cfg.Handover && d.cfg.DwellMode != 0 {
		radius := d.s.Medium.Params().RangeMax
		mob := d.s.Mobility
		vid := id
		mc.DepartureWarning = func() float64 {
			// Remaining contact with the current controller: dwell within
			// radio range of its (beacon-known) position.
			m := d.Members[vid]
			if m == nil || m.Controller() < 0 {
				return 1e9
			}
			ctlPos, ok := d.s.Medium.Position(m.Controller())
			if !ok {
				return 0
			}
			return mob.EstimateDwell(vid, ctlPos, radius, d.cfg.DwellMode)
		}
	}
	m, err := NewMember(node, mc, d.Stats)
	if err != nil {
		return err
	}
	d.Members[id] = m
	return nil
}

func (d *Deployment) deployFixed() error {
	var ctlNode *vnet.Node
	if len(d.s.RSUs) > 0 {
		ctlNode = d.s.RSUs[0]
	}
	ids := d.s.VehicleIDs()
	sortIDs(ids)
	for _, id := range ids {
		if err := d.attachMember(id); err != nil {
			return err
		}
	}
	if d.Arch == Infrastructure {
		if len(d.s.RSUs) == 0 {
			return fmt.Errorf("vcloud: infrastructure architecture needs at least one RSU")
		}
		for i, rsu := range d.s.RSUs {
			if d.cfg.attachAuth != nil {
				if err := d.cfg.attachAuth(rsu, fmt.Sprintf("rsu-%d", i)); err != nil {
					return err
				}
			}
			c, err := d.newController(rsu)
			if err != nil {
				return err
			}
			d.Controllers = append(d.Controllers, c)
		}
		return nil
	}
	// Stationary: gate RSU if present, else the lowest-address vehicle
	// coordinates (losing its member role).
	if ctlNode != nil && d.cfg.attachAuth != nil {
		if err := d.cfg.attachAuth(ctlNode, "rsu-gate"); err != nil {
			return err
		}
	}
	if ctlNode == nil {
		if len(ids) == 0 {
			return fmt.Errorf("vcloud: stationary cloud needs vehicles or an RSU")
		}
		first := ids[0]
		d.Members[first].Stop()
		delete(d.Members, first)
		ctlNode, _ = d.s.Node(first)
	}
	c, err := d.newController(ctlNode)
	if err != nil {
		return err
	}
	d.Controllers = append(d.Controllers, c)
	return nil
}

func (d *Deployment) deployDynamic() error {
	algo := d.cfg.ClusterAlgo
	if algo == nil {
		algo = cluster.MobilitySimilarity{}
	}
	ids := d.s.VehicleIDs()
	sortIDs(ids)
	for _, id := range ids {
		if err := d.attachMember(id); err != nil {
			return err
		}
		node, _ := d.s.Node(id)
		r, err := cluster.NewRunner(node, algo, time.Second, nil)
		if err != nil {
			return err
		}
		d.Runners[id] = r
		vid := id
		r.OnChange(func(old, new cluster.State) { d.onRoleChange(vid, old, new) })
	}
	return nil
}

// onRoleChange starts a controller when a vehicle becomes a cluster head
// and stops it when it loses headship — the paper's "dynamic role
// assignment" (§III.A).
func (d *Deployment) onRoleChange(id mobility.VehicleID, old, new cluster.State) {
	wasHead := old.Role == cluster.Head
	isHead := new.Role == cluster.Head
	switch {
	case !wasHead && isHead:
		node, ok := d.s.Node(id)
		if !ok {
			return
		}
		c, err := d.newController(node)
		if err != nil {
			return
		}
		c.SetEmergency(d.emergency)
		d.dynCtl[id] = c
		d.Controllers = append(d.Controllers, c)
	case wasHead && !isHead:
		if c, ok := d.dynCtl[id]; ok {
			c.Stop()
			delete(d.dynCtl, id)
			for i, cc := range d.Controllers {
				if cc == c {
					d.Controllers = append(d.Controllers[:i], d.Controllers[i+1:]...)
					break
				}
			}
		}
	}
}

// ActiveControllers returns the currently live controllers (stopped and
// crashed ones are skipped).
func (d *Deployment) ActiveControllers() []*Controller {
	out := make([]*Controller, 0, len(d.Controllers))
	for _, c := range d.Controllers {
		if !c.Stopped() {
			out = append(out, c)
		}
	}
	return out
}

// SubmitAnywhere submits a task to the live controller with the most
// members (a client-side broker), falling back to the next-best
// controller when one refuses — a fenced controller whose leadership
// lease expired rejects new work rather than risking double dispatch.
// It fails when no controller exists or all of them refuse.
func (d *Deployment) SubmitAnywhere(task Task, done func(TaskResult)) error {
	cands := d.ActiveControllers()
	if len(cands) == 0 {
		return fmt.Errorf("vcloud: no active controller (cloud not formed)")
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].NumMembers() != cands[j].NumMembers() {
			return cands[i].NumMembers() > cands[j].NumMembers()
		}
		return cands[i].Addr() < cands[j].Addr()
	})
	var lastErr error
	for _, c := range cands {
		if _, err := c.Submit(task, done); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return lastErr
}

// SubmitJobAnywhere submits a DAG job through the same client-side
// broker as SubmitAnywhere: the live controller with the most members
// first, falling back on refusal. The callback does not survive a
// controller failover (the job itself does — it rides checkpoints).
func (d *Deployment) SubmitJobAnywhere(spec JobSpec, done func(JobResult)) error {
	cands := d.ActiveControllers()
	if len(cands) == 0 {
		return fmt.Errorf("vcloud: no active controller (cloud not formed)")
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].NumMembers() != cands[j].NumMembers() {
			return cands[i].NumMembers() > cands[j].NumMembers()
		}
		return cands[i].Addr() < cands[j].Addr()
	})
	var lastErr error
	for _, c := range cands {
		if _, err := c.SubmitJob(spec, done); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return lastErr
}

// SetEmergency flips emergency mode on every current controller and on
// controllers elected later (dynamic clouds elect heads continuously).
func (d *Deployment) SetEmergency(on bool) {
	d.emergency = on
	for _, c := range d.Controllers {
		c.SetEmergency(on)
	}
}

func sortIDs(ids []mobility.VehicleID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// MemberNode returns the vnet node of a member vehicle.
func (d *Deployment) MemberNode(id mobility.VehicleID) (*vnet.Node, bool) {
	return d.s.Node(id)
}
