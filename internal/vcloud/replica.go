package vcloud

import (
	"fmt"
	"slices"

	"vcloud/internal/metrics"
	"vcloud/internal/store"
	"vcloud/internal/vnet"
)

// FileID identifies a replicated file.
type FileID string

// ReplicaStats aggregates replication outcomes (experiment E8).
type ReplicaStats struct {
	Reads       metrics.Counter
	ReadsServed metrics.Counter
	ReReplicas  metrics.Counter
	BytesMoved  metrics.Counter
	// StaleWrites counts writes refused by epoch fencing: a superseded
	// controller kept mutating placements after losing leadership.
	StaleWrites metrics.Counter
}

// Availability returns served/attempted reads.
func (s *ReplicaStats) Availability() float64 {
	return metrics.Ratio(s.ReadsServed.Value(), s.Reads.Value())
}

// ReplicaManager keeps each file on K members, re-replicating as members
// depart — the §III.A file-availability problem. It is the legacy,
// availability-oriented face of the storage service: internally it is a
// store.Replicated backend in Sloppy mode (read-one, lowest-address
// placement, no quorum intersection), kept for the E8 experiment and
// callers that want exactly the "k replicas, serve from any survivor"
// model. New code should use internal/store directly.
type ReplicaManager struct {
	k     int
	stats *ReplicaStats
	inner *store.Replicated
	sstat *store.Stats
	// members backs the inner backend's view: each Store/Repair call
	// swaps in its sorted candidate list.
	members []vnet.Addr
	// candScratch is reused across calls: the repair tick is a hot path
	// (every controller, every tick) and must not allocate per call.
	candScratch []vnet.Addr
}

// NewReplicaManager creates a manager with replication factor k. onLine
// reports whether a member currently holds its replicas reachable (in
// range, powered); the controller wires this to its membership view.
func NewReplicaManager(k int, onLine func(vnet.Addr) bool, stats *ReplicaStats) (*ReplicaManager, error) {
	if k < 1 {
		return nil, fmt.Errorf("vcloud: replication factor must be >= 1, got %d", k)
	}
	if onLine == nil {
		return nil, fmt.Errorf("vcloud: onLine predicate must not be nil")
	}
	if stats == nil {
		return nil, fmt.Errorf("vcloud: stats must not be nil")
	}
	r := &ReplicaManager{k: k, stats: stats, sstat: &store.Stats{}}
	view := store.FuncView{
		MembersFn: func() []vnet.Addr { return r.members },
		OnlineFn:  onLine,
	}
	inner, err := store.NewReplicated(store.Config{
		N: k, W: 1, R: 1,
		Sloppy:      true,
		Placement:   store.PlaceLowestAddr,
		TrimSurplus: true,
	}, view, r.sstat)
	if err != nil {
		return nil, err
	}
	r.inner = inner
	return r, nil
}

// sortedCandidates copies candidates into the reusable scratch buffer,
// sorts it ascending, and installs it as the inner view's member list.
func (r *ReplicaManager) sortedCandidates(candidates []vnet.Addr) {
	r.candScratch = append(r.candScratch[:0], candidates...)
	slices.Sort(r.candScratch)
	r.members = r.candScratch
}

// sync mirrors the inner backend's counters into the legacy stats.
func (r *ReplicaManager) sync() {
	syncCounter(&r.stats.Reads, r.sstat.Reads.Value())
	syncCounter(&r.stats.ReadsServed, r.sstat.ReadsOK.Value())
	syncCounter(&r.stats.ReReplicas, r.sstat.ReReplicas.Value())
	syncCounter(&r.stats.BytesMoved, r.sstat.BytesMoved.Value())
	syncCounter(&r.stats.StaleWrites, r.sstat.StaleWrites.Value())
}

// syncCounter raises c to value (counters are monotonic and only
// written through the manager, so value never trails c).
func syncCounter(c *metrics.Counter, value uint64) {
	c.Add(int(value - c.Value()))
}

// Accept fences a write from a controller at the given epoch counter:
// it returns false (and counts a stale write) when a higher-epoch
// controller has written since — the caller was superseded and must not
// mutate placements. Counter zero is the legacy unfenced path and is
// always accepted.
func (r *ReplicaManager) Accept(epoch uint64) bool {
	ok := r.inner.Accept(epoch)
	r.sync()
	return ok
}

// StoreFenced is Store gated by epoch fencing: a stale-epoch writer's
// placement is refused outright (returns 0 replicas placed).
func (r *ReplicaManager) StoreFenced(epoch uint64, id FileID, size int, candidates []vnet.Addr) int {
	if !r.Accept(epoch) {
		return 0
	}
	return r.Store(id, size, candidates)
}

// RepairFenced is Repair gated by epoch fencing: a stale-epoch
// controller must not reshape placements it no longer owns.
func (r *ReplicaManager) RepairFenced(epoch uint64, candidates []vnet.Addr) int {
	if !r.Accept(epoch) {
		return 0
	}
	return r.Repair(candidates)
}

// SetRetainOffline switches the churn model: when true, offline members
// are asleep (battery saving) and keep their replicas; when false (the
// default), offline means departed and the replica is lost.
func (r *ReplicaManager) SetRetainOffline(retain bool) { r.inner.SetRetainOffline(retain) }

// Store places a file on up to k of the given candidate members
// (deterministically: lowest addresses first). Re-storing an existing
// file replaces its placement outright. It returns how many replicas
// were placed.
func (r *ReplicaManager) Store(id FileID, size int, candidates []vnet.Addr) int {
	r.sortedCandidates(candidates)
	r.inner.Delete(store.Key(id))
	ack := r.inner.Write(store.WriteReq{Key: store.Key(id), Size: size, Epoch: 0})
	r.sync()
	return len(ack.Placed)
}

// Read attempts to fetch the file: it succeeds when at least one replica
// holder is online.
func (r *ReplicaManager) Read(id FileID) bool {
	_, ok := r.inner.Read(store.ReadReq{Key: store.Key(id), Epoch: 0})
	r.sync()
	return ok
}

// Repair drops offline holders and re-replicates onto online candidates
// until each file has k live replicas again. It returns the number of
// new replicas created. Call it periodically (the controller's tick) —
// repair only helps while at least one live replica remains to copy
// from.
func (r *ReplicaManager) Repair(candidates []vnet.Addr) int {
	r.sortedCandidates(candidates)
	created := r.inner.Repair(store.RepairReq{Epoch: 0})
	r.sync()
	return created
}

// Replicas returns the current holder count of a file.
func (r *ReplicaManager) Replicas(id FileID) int {
	return len(r.inner.Holders(store.Key(id)))
}
