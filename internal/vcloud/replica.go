package vcloud

import (
	"fmt"
	"slices"

	"vcloud/internal/metrics"
	"vcloud/internal/vnet"
)

// FileID identifies a replicated file.
type FileID string

// ReplicaStats aggregates replication outcomes (experiment E8).
type ReplicaStats struct {
	Reads       metrics.Counter
	ReadsServed metrics.Counter
	ReReplicas  metrics.Counter
	BytesMoved  metrics.Counter
	// StaleWrites counts writes refused by epoch fencing: a superseded
	// controller kept mutating placements after losing leadership.
	StaleWrites metrics.Counter
}

// Availability returns served/attempted reads.
func (s *ReplicaStats) Availability() float64 {
	return metrics.Ratio(s.ReadsServed.Value(), s.Reads.Value())
}

// ReplicaManager keeps each file on K members, re-replicating as members
// depart — the §III.A file-availability problem. It runs at the
// controller and tracks placements; actual byte movement is charged as
// counters (the radio cost of re-replication is exercised by the
// experiments through task traffic; duplicating it here would
// double-count).
type ReplicaManager struct {
	k      int
	stats  *ReplicaStats
	files  map[FileID]*fileState
	onLine func(vnet.Addr) bool
	// retainOffline models battery-saving sleep ([9]) instead of
	// permanent departure: an offline holder keeps its replica and
	// serves again when it returns. Repair still tops live replicas up
	// to k, trimming surplus holders when sleepers return.
	retainOffline bool
	// highWater is the highest epoch counter a writer has presented;
	// fenced writes below it are refused (split-brain protection for the
	// placement table, mirroring the task-dispatch fence).
	highWater uint64
	// scratch buffers reused across Store/Repair calls: the repair tick
	// is a hot path (every controller, every tick) and must not copy and
	// reflect-sort the candidate list per call.
	candScratch   []vnet.Addr
	holderScratch []vnet.Addr
}

// sortedCandidates copies candidates into the reusable scratch buffer
// and sorts it ascending. The returned slice is only valid until the
// next call.
func (r *ReplicaManager) sortedCandidates(candidates []vnet.Addr) []vnet.Addr {
	r.candScratch = append(r.candScratch[:0], candidates...)
	slices.Sort(r.candScratch)
	return r.candScratch
}

// Accept fences a write from a controller at the given epoch counter:
// it returns false (and counts a stale write) when a higher-epoch
// controller has written since — the caller was superseded and must not
// mutate placements. Counter zero is the legacy unfenced path and is
// always accepted.
func (r *ReplicaManager) Accept(epoch uint64) bool {
	if epoch == 0 {
		return true
	}
	if epoch < r.highWater {
		r.stats.StaleWrites.Inc()
		return false
	}
	r.highWater = epoch
	return true
}

// StoreFenced is Store gated by epoch fencing: a stale-epoch writer's
// placement is refused outright (returns 0 replicas placed).
func (r *ReplicaManager) StoreFenced(epoch uint64, id FileID, size int, candidates []vnet.Addr) int {
	if !r.Accept(epoch) {
		return 0
	}
	return r.Store(id, size, candidates)
}

// RepairFenced is Repair gated by epoch fencing: a stale-epoch
// controller must not reshape placements it no longer owns.
func (r *ReplicaManager) RepairFenced(epoch uint64, candidates []vnet.Addr) int {
	if !r.Accept(epoch) {
		return 0
	}
	return r.Repair(candidates)
}

type fileState struct {
	size     int
	replicas map[vnet.Addr]struct{}
}

// NewReplicaManager creates a manager with replication factor k. onLine
// reports whether a member currently holds its replicas reachable (in
// range, powered); the controller wires this to its membership view.
func NewReplicaManager(k int, onLine func(vnet.Addr) bool, stats *ReplicaStats) (*ReplicaManager, error) {
	if k < 1 {
		return nil, fmt.Errorf("vcloud: replication factor must be >= 1, got %d", k)
	}
	if onLine == nil {
		return nil, fmt.Errorf("vcloud: onLine predicate must not be nil")
	}
	if stats == nil {
		return nil, fmt.Errorf("vcloud: stats must not be nil")
	}
	return &ReplicaManager{
		k:      k,
		stats:  stats,
		files:  make(map[FileID]*fileState),
		onLine: onLine,
	}, nil
}

// SetRetainOffline switches the churn model: when true, offline members
// are asleep (battery saving) and keep their replicas; when false (the
// default), offline means departed and the replica is lost.
func (r *ReplicaManager) SetRetainOffline(retain bool) { r.retainOffline = retain }

// Store places a file on up to k of the given candidate members
// (deterministically: lowest addresses first). It returns how many
// replicas were placed.
func (r *ReplicaManager) Store(id FileID, size int, candidates []vnet.Addr) int {
	fs := &fileState{size: size, replicas: make(map[vnet.Addr]struct{})}
	r.files[id] = fs
	for _, a := range r.sortedCandidates(candidates) {
		if len(fs.replicas) >= r.k {
			break
		}
		if !r.onLine(a) {
			continue
		}
		fs.replicas[a] = struct{}{}
		r.stats.BytesMoved.Add(size)
	}
	return len(fs.replicas)
}

// Read attempts to fetch the file: it succeeds when at least one replica
// holder is online.
func (r *ReplicaManager) Read(id FileID) bool {
	r.stats.Reads.Inc()
	fs, ok := r.files[id]
	if !ok {
		return false
	}
	for a := range fs.replicas {
		if r.onLine(a) {
			r.stats.ReadsServed.Inc()
			return true
		}
	}
	return false
}

// Repair drops offline holders and re-replicates onto online candidates
// until each file has k live replicas again. It returns the number of
// new replicas created. Call it periodically (the controller's tick) —
// repair only helps while at least one live replica remains to copy
// from.
func (r *ReplicaManager) Repair(candidates []vnet.Addr) int {
	sorted := r.sortedCandidates(candidates)
	created := 0
	for _, fs := range r.files {
		live := 0
		for a := range fs.replicas {
			if r.onLine(a) {
				live++
			} else if !r.retainOffline {
				delete(fs.replicas, a)
			}
		}
		if live == 0 {
			continue // nothing reachable to copy from
		}
		for _, a := range sorted {
			if live >= r.k {
				break
			}
			if _, has := fs.replicas[a]; has || !r.onLine(a) {
				continue
			}
			fs.replicas[a] = struct{}{}
			live++
			created++
			r.stats.ReReplicas.Inc()
			r.stats.BytesMoved.Add(fs.size)
		}
		// Returned sleepers can leave the file over-replicated: trim
		// surplus, dropping offline holders first (deterministically).
		if r.retainOffline && len(fs.replicas) > r.k {
			holders := r.holderScratch[:0]
			for a := range fs.replicas {
				holders = append(holders, a)
			}
			r.holderScratch = holders
			slices.SortFunc(holders, func(x, y vnet.Addr) int {
				ox, oy := r.onLine(x), r.onLine(y)
				if ox != oy {
					if ox {
						return 1 // offline first
					}
					return -1
				}
				switch {
				case x > y:
					return -1
				case x < y:
					return 1
				}
				return 0
			})
			for _, a := range holders {
				if len(fs.replicas) <= r.k {
					break
				}
				if live > r.k || !r.onLine(a) {
					if r.onLine(a) {
						live--
					}
					delete(fs.replicas, a)
				}
			}
		}
	}
	return created
}

// Replicas returns the current holder count of a file.
func (r *ReplicaManager) Replicas(id FileID) int {
	fs, ok := r.files[id]
	if !ok {
		return 0
	}
	return len(fs.replicas)
}
