package vcloud_test

import (
	"math/rand"
	"testing"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/mobility"
	"vcloud/internal/vcloud"
)

// diamondSpec is the canonical four-stage test DAG: 0 fans out to 1 and
// 2, which join at 3. Stage 1 is the heavy arm, so the critical path is
// 0 -> 1 -> 3.
func diamondSpec() vcloud.JobSpec {
	return vcloud.JobSpec{
		Stages: []vcloud.StageSpec{
			{Name: "ingest", Ops: 1000, InputBytes: 500, OutputBytes: 300},
			{Name: "heavy", Ops: 2000, OutputBytes: 300, Deps: []int{0}},
			{Name: "light", Ops: 800, OutputBytes: 300, Deps: []int{0}},
			{Name: "join", Ops: 1000, OutputBytes: 200, Deps: []int{1, 2}},
		},
		ReplicaBudget: 2,
		StageRetries:  2,
	}
}

// TestJobPipelineCompletes is the tentpole happy path: a diamond DAG
// flows stage outputs member-to-member, the critical path absorbs the
// replica budget, and the job completes with every stage done.
func TestJobPipelineCompletes(t *testing.T) {
	s := parkingScenario(t, 6)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	var res vcloud.JobResult
	fired := 0
	if err := d.SubmitJobAnywhere(diamondSpec(), func(r vcloud.JobResult) { res = r; fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}

	if fired != 1 {
		t.Fatalf("job callback fired %d times, want 1", fired)
	}
	if !res.OK || res.Partial {
		t.Fatalf("job: ok=%v partial=%v reason=%q, want clean completion", res.OK, res.Partial, res.Reason)
	}
	for i, st := range res.Stages {
		if st.Status != vcloud.StageDone {
			t.Errorf("stage %d status = %s, want done", i, st.Status)
		}
		if st.Status == vcloud.StageDone && len(st.Holders) == 0 {
			t.Errorf("stage %d done with no holders", i)
		}
	}
	if res.ExtraReplicas != 2 {
		t.Errorf("extra replicas = %d, want the full budget of 2 on the critical path", res.ExtraReplicas)
	}
	if res.Value == 0 {
		t.Error("job value digest is zero")
	}
	if res.Latency <= 0 {
		t.Errorf("latency = %v, want > 0", res.Latency)
	}
	if got := stats.JobsCompleted.Value(); got != 1 {
		t.Errorf("JobsCompleted = %d, want 1", got)
	}
	if stats.StageHandoffs.Value() == 0 {
		t.Error("no stage handoffs recorded: outputs did not flow member-to-member")
	}
	if got := d.ActiveControllers()[0].PendingJobs(); got != 0 {
		t.Errorf("pending jobs after completion = %d, want 0", got)
	}
}

// TestJobOptionalBranchDegrades: an optional stage that can never be
// placed (no member carries its sensor) exhausts its budget and is
// abandoned; the job completes as a partial result instead of failing.
func TestJobOptionalBranchDegrades(t *testing.T) {
	s := parkingScenario(t, 5)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	spec := vcloud.JobSpec{
		Stages: []vcloud.StageSpec{
			{Ops: 1000, OutputBytes: 200},
			{Ops: 1000, OutputBytes: 200, Deps: []int{0}, Optional: true, NeedsSensor: "xray"},
			{Ops: 500, OutputBytes: 100, Deps: []int{1}, Optional: true},
		},
	}
	var res vcloud.JobResult
	fired := 0
	if err := d.SubmitJobAnywhere(spec, func(r vcloud.JobResult) { res = r; fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}

	if fired != 1 {
		t.Fatalf("job callback fired %d times, want 1", fired)
	}
	if !res.OK || !res.Partial {
		t.Fatalf("job: ok=%v partial=%v reason=%q, want partial completion", res.OK, res.Partial, res.Reason)
	}
	if res.Stages[0].Status != vcloud.StageDone {
		t.Errorf("required stage 0 = %s, want done", res.Stages[0].Status)
	}
	if res.Stages[1].Status != vcloud.StageAbandoned {
		t.Errorf("optional stage 1 = %s, want abandoned", res.Stages[1].Status)
	}
	if res.Stages[2].Status != vcloud.StageAbandoned {
		t.Errorf("downstream optional stage 2 = %s, want abandoned (transitively)", res.Stages[2].Status)
	}
	if got := stats.JobsPartial.Value(); got != 1 {
		t.Errorf("JobsPartial = %d, want 1", got)
	}
	if got := stats.StagesAbandoned.Value(); got != 2 {
		t.Errorf("StagesAbandoned = %d, want 2", got)
	}
}

// TestJobWholeJobRestartExhausts pins the naive E15 baseline and the
// ReasonStageFailed regression: a required unplaceable stage forces
// whole-job restarts that throw completed work away, until the restart
// budget runs out and the job fails.
func TestJobWholeJobRestartExhausts(t *testing.T) {
	s := parkingScenario(t, 5)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	spec := vcloud.JobSpec{
		Stages: []vcloud.StageSpec{
			{Ops: 1000, OutputBytes: 200},
			{Ops: 1000, OutputBytes: 200, Deps: []int{0}, NeedsSensor: "xray"},
		},
		WholeJobRestart: true,
		JobRestarts:     2,
	}
	var res vcloud.JobResult
	fired := 0
	if err := d.SubmitJobAnywhere(spec, func(r vcloud.JobResult) { res = r; fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(3 * time.Minute); err != nil {
		t.Fatal(err)
	}

	if fired != 1 {
		t.Fatalf("job callback fired %d times, want 1", fired)
	}
	if res.OK {
		t.Fatal("job completed despite an unplaceable required stage")
	}
	if res.Reason != vcloud.ReasonStageFailed {
		t.Errorf("reason = %q, want %q", res.Reason, vcloud.ReasonStageFailed)
	}
	if res.Restarts != 2 {
		t.Errorf("restarts = %d, want the full budget of 2", res.Restarts)
	}
	// Stage 0 completed once per attempt (3 attempts) and every copy was
	// thrown away.
	if res.WastedOps < 3000 {
		t.Errorf("wasted ops = %.0f, want >= 3000 (three discarded stage-0 runs)", res.WastedOps)
	}
	if got := stats.JobRestarts.Value(); got != 2 {
		t.Errorf("JobRestarts = %d, want 2", got)
	}
	if got := stats.JobsFailed.Value(); got != 1 {
		t.Errorf("JobsFailed = %d, want 1", got)
	}
}

// TestJobDeadlineFailsJob pins ReasonDeadline at the job layer: a job
// whose deadline passes mid-flight fails with the deadline reason
// rather than retrying forever.
func TestJobDeadlineFailsJob(t *testing.T) {
	s := parkingScenario(t, 5)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	spec := vcloud.JobSpec{
		Stages: []vcloud.StageSpec{
			{Ops: 1000, OutputBytes: 200},
			{Ops: 50000, OutputBytes: 200, Deps: []int{0}},
		},
		Deadline: s.Kernel.Now() + 3*time.Second,
	}
	var res vcloud.JobResult
	fired := 0
	if err := d.SubmitJobAnywhere(spec, func(r vcloud.JobResult) { res = r; fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}

	if fired != 1 {
		t.Fatalf("job callback fired %d times, want 1", fired)
	}
	if res.OK || res.Reason != vcloud.ReasonDeadline {
		t.Errorf("job: ok=%v reason=%q, want deadline failure", res.OK, res.Reason)
	}
}

// TestJobFailoverResumesMidDAG: a controller crash mid-job loses the
// callback but not the job — the promoted standby restores it from the
// checkpoint, re-dispatches the in-flight stage, and completes it
// exactly once.
func TestJobFailoverResumesMidDAG(t *testing.T) {
	s := parkingScenario(t, 8)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{Failover: true}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	gate := d.Controllers[0]

	spec := vcloud.JobSpec{
		Stages: []vcloud.StageSpec{
			{Ops: 5000, OutputBytes: 300},
			{Ops: 5000, OutputBytes: 300, Deps: []int{0}},
			{Ops: 5000, OutputBytes: 200, Deps: []int{1}},
		},
		StageRetries: 3,
	}
	if _, err := gate.SubmitJob(spec, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	gate.Crash()
	if err := s.RunFor(90 * time.Second); err != nil {
		t.Fatal(err)
	}

	if got := stats.Failovers.Value(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if got := stats.JobsResumed.Value(); got != 1 {
		t.Errorf("JobsResumed = %d, want 1", got)
	}
	if got := stats.JobsCompleted.Value(); got != 1 {
		t.Errorf("JobsCompleted = %d, want 1 (the successor finished the DAG)", got)
	}
	if got := stats.JobsFailed.Value(); got != 0 {
		t.Errorf("JobsFailed = %d, want 0", got)
	}
	live := d.ActiveControllers()
	if len(live) != 1 {
		t.Fatalf("active controllers = %d, want 1", len(live))
	}
	if got := live[0].PendingJobs(); got != 0 {
		t.Errorf("successor pending jobs = %d, want 0", got)
	}
	for _, v := range live[0].InvariantViolations() {
		t.Errorf("successor invariant violation: %s", v)
	}
}

// TestStageRelayFallback: when the sole holder of a stage output dies
// before its successor can pull, the worker falls back to the
// controller relay and the job still completes.
func TestStageRelayFallback(t *testing.T) {
	s := parkingScenario(t, 5)
	stats := &vcloud.Stats{}
	n := 0
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
		// Exactly one member carries each stage's sensor, so stage 0 runs
		// (and its output lives) on the first member only, and stage 1 must
		// run on the second.
		MemberResources: func(p mobility.Profile) vcloud.Resources {
			n++
			r := vcloud.Resources{CPU: 1000, Storage: p.Storage}
			switch n {
			case 1:
				r.Sensors = []string{"cam"}
			case 2:
				r.Sensors = []string{"gpu"}
			}
			return r
		},
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	holder := sortedMembers(d)[0]
	// The tamper hook doubles as a completion probe: it fires on the
	// holder exactly when stage 0's result is produced (value unchanged),
	// and schedules the holder's death for the next instant — after its
	// result ships, before any successor can pull from it.
	holder.SetResultTamper(func(_ vcloud.Task, v uint64) uint64 {
		// Delay zero: the stop runs at this same instant, after the result
		// message is handed to the radio but before any network delivery —
		// so the vote still lands while the follow-up pull finds a corpse.
		s.Kernel.After(0, holder.Stop)
		return v
	})

	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	spec := vcloud.JobSpec{
		Stages: []vcloud.StageSpec{
			{Ops: 1000, OutputBytes: 400, NeedsSensor: "cam"},
			{Ops: 1000, OutputBytes: 200, Deps: []int{0}, NeedsSensor: "gpu"},
		},
		StageRetries: 2,
	}
	var res vcloud.JobResult
	fired := 0
	if err := d.SubmitJobAnywhere(spec, func(r vcloud.JobResult) { res = r; fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}

	if fired != 1 || !res.OK {
		t.Fatalf("job: fired=%d ok=%v reason=%q, want one clean completion", fired, res.OK, res.Reason)
	}
	if stats.StageRelays.Value() == 0 {
		t.Errorf("no controller relay served: the fallback path was not exercised (handoffs=%d dispatched=%d stage0holders=%v latency=%v)",
			stats.StageHandoffs.Value(), stats.StagesDispatched.Value(), res.Stages[0].Holders, res.Latency)
	}
}

// TestEdgeServerTakesCriticalStages: an RSU edge server joins the cloud
// as a first-class placement target; with more compute than any vehicle
// it wins the job's stages despite its per-task offload delay, and its
// infinite dwell exempts it from the residual-dwell gate.
func TestEdgeServerTakesCriticalStages(t *testing.T) {
	s := parkingScenario(t, 4)
	rsu2, err := s.AddRSU(geo.Point{X: 20, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := vcloud.NewEdgeServer(rsu2, vcloud.EdgeConfig{CPU: 20000, Storage: 4096}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if edge.Controller() < 0 {
		t.Fatal("edge server never joined a controller")
	}

	var res vcloud.JobResult
	if err := d.SubmitJobAnywhere(diamondSpec(), func(r vcloud.JobResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("job failed: reason=%q", res.Reason)
	}
	onEdge := 0
	for _, st := range res.Stages {
		for _, h := range st.Holders {
			if h == edge.Addr() {
				onEdge++
			}
		}
	}
	if onEdge == 0 {
		t.Error("no stage placed on the edge server despite 20x vehicle compute")
	}
}

// randomJobSpec draws a random DAG shape for the property tests: up to
// 12 stages, random dependencies among earlier stages, random budget.
func randomJobSpec(rng *rand.Rand) vcloud.JobSpec {
	n := 1 + rng.Intn(12)
	spec := vcloud.JobSpec{ReplicaBudget: rng.Intn(8), ReplicateAll: rng.Intn(2) == 0}
	for i := 0; i < n; i++ {
		st := vcloud.StageSpec{Ops: 100 + rng.Float64()*2000, OutputBytes: rng.Intn(1000)}
		if i > 0 {
			k := rng.Intn(i + 1)
			if k > 3 {
				k = 3
			}
			for _, d := range rng.Perm(i)[:k] {
				st.Deps = append(st.Deps, d)
			}
		}
		spec.Stages = append(spec.Stages, st)
	}
	return spec
}

// TestTopoOrderDeterministicProperty: across 100 random DAGs, TopoOrder
// is a valid topological order, is a permutation of the stages, and is
// identical on every recomputation — the determinism the scheduler's
// byte-stable dispatch relies on, independent of test execution order
// (go test -shuffle=on).
func TestTopoOrderDeterministicProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		spec := randomJobSpec(rng)
		if err := spec.Validate(); err != nil {
			t.Fatalf("trial %d: generated spec invalid: %v", trial, err)
		}
		order, err := vcloud.TopoOrder(&spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(order) != len(spec.Stages) {
			t.Fatalf("trial %d: order has %d entries for %d stages", trial, len(order), len(spec.Stages))
		}
		pos := make(map[int]int, len(order))
		for p, i := range order {
			if _, dup := pos[i]; dup {
				t.Fatalf("trial %d: stage %d appears twice", trial, i)
			}
			pos[i] = p
		}
		for i, st := range spec.Stages {
			for _, dep := range st.Deps {
				if pos[dep] >= pos[i] {
					t.Fatalf("trial %d: dep %d not before stage %d in %v", trial, dep, i, order)
				}
			}
		}
		for rep := 0; rep < 3; rep++ {
			again, err := vcloud.TopoOrder(&spec)
			if err != nil {
				t.Fatalf("trial %d: recompute: %v", trial, err)
			}
			for k := range order {
				if again[k] != order[k] {
					t.Fatalf("trial %d: recomputation diverged: %v vs %v", trial, again, order)
				}
			}
		}
	}
}

// TestReplicaBudgetNeverExceededProperty: across 100 random DAGs (both
// critical-path and replicate-all allocation), the allocation spends at
// most the budget and gives every stage at least one copy.
func TestReplicaBudgetNeverExceededProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		spec := randomJobSpec(rng)
		order, err := vcloud.TopoOrder(&spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		alloc := vcloud.AllocateReplicas(&spec, order)
		extra := 0
		for i, k := range alloc {
			if k < 1 {
				t.Fatalf("trial %d: stage %d allocated %d replicas, want >= 1", trial, i, k)
			}
			extra += k - 1
		}
		if extra > spec.ReplicaBudget {
			t.Fatalf("trial %d: allocation spent %d extras over budget %d (replicateAll=%v)",
				trial, extra, spec.ReplicaBudget, spec.ReplicateAll)
		}
	}
}

// TestCriticalityIdentifiesLongestPath pins the criticality math on the
// diamond: the heavy arm is critical, the light arm is not.
func TestCriticalityIdentifiesLongestPath(t *testing.T) {
	spec := diamondSpec()
	order, err := vcloud.TopoOrder(&spec)
	if err != nil {
		t.Fatal(err)
	}
	crit, pathOps := vcloud.Criticality(&spec, order)
	if want := 1000.0 + 2000 + 1000; pathOps != want {
		t.Fatalf("critical path = %.0f ops, want %.0f", pathOps, want)
	}
	for _, i := range []int{0, 1, 3} {
		if crit[i] != pathOps {
			t.Errorf("stage %d criticality %.0f, want on the critical path (%.0f)", i, crit[i], pathOps)
		}
	}
	if crit[2] >= pathOps {
		t.Errorf("light arm criticality %.0f, want < %.0f", crit[2], pathOps)
	}
}
