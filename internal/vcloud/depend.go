// Dependable task execution: the data-plane counterpart of the PR-1
// control-plane failover. The paper's §III/Fig. 3 dependability argument
// is that a vehicular cloud must keep producing *correct* results while
// its members are unreliable (churn, radio loss) or outright malicious
// (wrong results). The mechanism here is classical redundant execution:
// a per-task DependabilityPolicy makes the controller dispatch K copies
// of a task to disjoint members, collect the returned values, and decide
// by majority vote; workers whose votes lose feed negative evidence into
// the trust engine (internal/trust.WorkerSet), and workers below a trust
// threshold are excluded from future placement — closing the Fig. 3 loop
// placement → execution → voting → trust update → placement.
//
// Voting model. Every honest worker computes the same value for a task
// (TaskValue); a Byzantine worker returns something else (see
// internal/attack.Byzantify — wrong values are distinct per worker, the
// non-colluding model). The controller accepts a value as soon as
// ⌊K/2⌋+1 identical copies arrive (early quorum); once every replica has
// reported or failed it tallies all cast votes and accepts the plurality
// winner only with a strict majority (> half the cast weight). With
// trust weighting disabled, a decided result is correct whenever fewer
// than half of the cast votes came from Byzantine workers — the
// invariant the chaos soak (internal/chaos) asserts. Trust weighting
// lets accumulated reputation tip close votes, which helps once the
// trust engine has evidence but deliberately trades away that worst-case
// guarantee (a high-trust liar can outweigh two unknown honest workers),
// so the soak runs with it off and E12 measures it as a separate arm.
package vcloud

import (
	"fmt"
	"math"
	"sort"
	"time"

	"vcloud/internal/mobility"
	"vcloud/internal/sim"
	"vcloud/internal/trace"
	"vcloud/internal/vnet"
)

// DependabilityPolicy tunes redundant execution for one task (Task.Depend)
// or for every task a controller schedules (ControllerConfig.Depend). The
// zero value of each field means "use the default".
type DependabilityPolicy struct {
	// Replicas is K, the number of redundant copies dispatched to
	// disjoint members. Default 1 (no redundancy, but the retry/backoff
	// and fail-fast machinery still applies).
	Replicas int
	// MaxRetries bounds re-dispatch rounds after replica loss or a vote
	// that reaches no quorum. Default 3.
	MaxRetries int
	// RetryBackoff is the base delay before a re-dispatch round; round r
	// waits RetryBackoff · 2^r, jittered. Default 500 ms.
	RetryBackoff sim.Time
	// BackoffJitter spreads each backoff uniformly over
	// [1-j, 1+j] × delay, drawn from the controller's seeded stream so
	// runs reproduce bit-for-bit. Default 0.5; negative disables.
	BackoffJitter float64
	// AttemptTimeout bounds one replica's execution; zero keeps the
	// controller's generous load-derived timeout.
	AttemptTimeout sim.Time
	// TrustThreshold excludes workers scoring below it (per
	// ControllerConfig.Workers) from placement. Zero disables gating.
	TrustThreshold float64
	// TrustWeighted weights votes by worker trust score in the final
	// tally instead of counting heads. See the package comment for the
	// guarantee this trades away.
	TrustWeighted bool
}

// Validate checks policy sanity.
func (p *DependabilityPolicy) Validate() error {
	if p.Replicas < 0 {
		return fmt.Errorf("vcloud: policy replicas must be >= 0, got %d", p.Replicas)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("vcloud: policy max retries must be >= 0, got %d", p.MaxRetries)
	}
	if p.RetryBackoff < 0 {
		return fmt.Errorf("vcloud: policy retry backoff must be >= 0, got %v", p.RetryBackoff)
	}
	if math.IsNaN(p.BackoffJitter) || p.BackoffJitter > 1 {
		return fmt.Errorf("vcloud: policy backoff jitter must be <= 1, got %v", p.BackoffJitter)
	}
	if math.IsNaN(p.TrustThreshold) || p.TrustThreshold < 0 || p.TrustThreshold >= 1 {
		return fmt.Errorf("vcloud: policy trust threshold must be in [0,1), got %v", p.TrustThreshold)
	}
	if p.AttemptTimeout < 0 {
		return fmt.Errorf("vcloud: policy attempt timeout must be >= 0, got %v", p.AttemptTimeout)
	}
	return nil
}

// withDefaults returns a copy with zero fields filled in.
func (p DependabilityPolicy) withDefaults() DependabilityPolicy {
	if p.Replicas == 0 {
		p.Replicas = 1
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.RetryBackoff == 0 {
		p.RetryBackoff = 500 * time.Millisecond
	}
	if p.BackoffJitter == 0 {
		p.BackoffJitter = 0.5
	}
	return p
}

// effectivePolicy resolves the policy for a task: the task's own
// override, else the controller default, else nil (plain path).
func (c *Controller) effectivePolicy(t Task) *DependabilityPolicy {
	src := t.Depend
	if src == nil {
		src = c.cfg.Depend
	}
	if src == nil {
		return nil
	}
	p := src.withDefaults()
	return &p
}

// replicaSlot tracks one redundant copy of a task.
type replicaSlot struct {
	assignee  vnet.Addr
	attempt   int
	remaining float64
	timeout   sim.EventID
	voted     bool
	failed    bool
	value     uint64
}

// resolved reports whether this slot can no longer contribute a vote.
func (r *replicaSlot) resolved() bool { return r.voted || r.failed }

// trustEligible reports whether the policy and trust engine admit addr
// as a worker.
func (c *Controller) trustEligible(p *DependabilityPolicy, addr vnet.Addr) bool {
	if c.cfg.Workers == nil || p.TrustThreshold <= 0 {
		return true
	}
	return c.cfg.Workers.Score(addr) >= p.TrustThreshold
}

// pickReplicaMember chooses a worker for one replica: fresh, sensor-
// capable, above the trust threshold, and not in the exclude set
// (members already holding a copy of this task — disjointness). Among
// the eligible it prefers dwell-sufficient members and earliest finish,
// like the plain scheduler. Returns false when nobody qualifies.
func (c *Controller) pickReplicaMember(ts *taskState, exclude map[vnet.Addr]bool, remaining float64) (vnet.Addr, bool) {
	now := c.node.Kernel().Now()
	// DAG stage placement layers two reliability weights on top of the
	// plain finish-time ranking (tentpole: stages placed "weighted by
	// predicted residual dwell time and trust score"): the finish
	// estimate is divided by the worker's Beta-reputation weight, and
	// finish ties break toward the higher dwell tier before the address.
	// Non-stage tasks keep the exact legacy ordering.
	stage := ts.task.Stage != nil
	type cand struct {
		addr     vnet.Addr
		finish   float64
		tier     int
		hasDwell bool
	}
	var ok, short []cand
	for a, m := range c.members {
		if exclude[a] || now-m.lastSeen > c.cfg.MemberTTL {
			continue
		}
		if m.res.CPU <= 0 || !m.res.HasSensor(ts.task.NeedsSensor) {
			continue
		}
		if !c.trustEligible(ts.policy, a) {
			continue
		}
		runtime := (m.queuedOps + remaining) / m.res.CPU
		cd := cand{addr: a, finish: runtime + m.delay.Seconds()}
		dwell := math.Inf(1)
		if c.cfg.Dwell != nil && !m.edge {
			dwell = c.cfg.Dwell(a)
			cd.hasDwell = dwell >= runtime*c.cfg.DwellMargin
		} else {
			// Edge servers are fixed infrastructure: dwell always
			// suffices.
			cd.hasDwell = true
		}
		if stage {
			cd.tier = mobility.DwellTier(dwell)
			if c.cfg.Workers != nil {
				cd.finish /= c.cfg.Workers.Weight(a)
			}
		}
		if cd.hasDwell {
			//vcloudlint:allow nomaporder pool order is immaterial: the best-pick below totally orders on (finish, tier, addr)
			ok = append(ok, cd)
		} else {
			//vcloudlint:allow nomaporder pool order is immaterial: the best-pick below totally orders on (finish, tier, addr)
			short = append(short, cd)
		}
	}
	pool := ok
	if len(pool) == 0 {
		pool = short
	}
	if len(pool) == 0 {
		return 0, false
	}
	best := pool[0]
	for _, cd := range pool[1:] {
		switch {
		case cd.finish < best.finish:
			best = cd
		case cd.finish == best.finish && cd.tier > best.tier:
			best = cd
		case cd.finish == best.finish && cd.tier == best.tier && cd.addr < best.addr:
			best = cd
		}
	}
	return best.addr, true
}

// launch routes a freshly submitted (or restored) task into either the
// plain single-copy path or the dependable replicated path.
func (c *Controller) launch(ts *taskState) {
	if ts.policy == nil {
		c.assign(ts)
		return
	}
	c.dispatchReplicas(ts, ts.policy.Replicas)
}

// liveAssignees returns the members currently holding an unresolved
// copy of ts (the disjointness exclusion set).
func (ts *taskState) liveAssignees() map[vnet.Addr]bool {
	out := make(map[vnet.Addr]bool)
	for _, r := range ts.replicas {
		if !r.resolved() {
			out[r.assignee] = true
		}
	}
	return out
}

// dispatchReplicas places up to need new copies of ts on disjoint
// members. Placement first excludes every member that ever held a copy;
// when that exhausts the pool it falls back to excluding only members
// holding a live copy (a worker that timed out may be retried — radio
// loss is transient). Dispatching fewer than need copies is fine: the
// vote decides over whatever reports, and maybeDecide tops the pool up
// on the retry path when no quorum forms.
func (c *Controller) dispatchReplicas(ts *taskState, need int) {
	everUsed := make(map[vnet.Addr]bool)
	for _, r := range ts.replicas {
		everUsed[r.assignee] = true
	}
	placed := 0
	for i := 0; i < need; i++ {
		addr, found := c.pickReplicaMember(ts, everUsed, ts.task.Ops)
		if !found {
			addr, found = c.pickReplicaMember(ts, ts.liveAssignees(), ts.task.Ops)
		}
		if !found {
			break
		}
		everUsed[addr] = true
		c.dispatchOneReplica(ts, addr, ts.task.Ops)
		placed++
	}
	if placed == 0 {
		// Nobody eligible right now (cloud still forming, or the trust
		// gate emptied the pool): treat like the plain path's no-member
		// case and come back after a backoff round.
		c.scheduleRetryRound(ts, ReasonNoEligibleMember)
	}
}

// dispatchOneReplica sends one copy of ts to addr and arms its timeout.
func (c *Controller) dispatchOneReplica(ts *taskState, addr vnet.Addr, remaining float64) {
	ts.attempt++
	slot := &replicaSlot{assignee: addr, attempt: ts.attempt, remaining: remaining}
	ts.replicas = append(ts.replicas, slot)
	idx := len(ts.replicas) - 1
	c.stats.ReplicaDispatches.Inc()
	c.cfg.Trace.Emit(c.node.Kernel().Now(), trace.CatCloud, int32(c.node.Addr()),
		"task %d replica %d -> %d (attempt %d, %.0f ops)", ts.task.ID, idx, addr, slot.attempt, remaining)
	m := c.members[addr]
	m.queuedOps += remaining
	c.stats.OpsDispatched += remaining
	msg := c.node.NewMessage(addr, kindTask, 64+ts.task.InputBytes, 1, taskMsg{
		Task:         ts.task,
		RemainingOps: remaining,
		Attempt:      slot.attempt,
		Replica:      idx,
		Epoch:        c.epoch,
	})
	c.node.SendTo(addr, msg)

	timeout := ts.policy.AttemptTimeout
	if timeout <= 0 {
		expect := m.queuedOps/m.res.CPU + 2.0
		timeout = sim.Time(expect*3*float64(time.Second)) + 2*time.Second
	}
	attempt := slot.attempt
	slot.timeout = c.node.Kernel().After(timeout, func() {
		cur, live := c.tasks[ts.task.ID]
		if !live || cur != ts || slot.attempt != attempt || slot.resolved() || c.stopped {
			return
		}
		c.failReplica(ts, slot, 0.5) // silent loss: half-weight negative evidence
		c.maybeDecide(ts)
	})
}

// failReplica marks a slot dead, releases its queue share, counts the
// waste, and feeds negative evidence of the given weight to the trust
// engine.
func (c *Controller) failReplica(ts *taskState, slot *replicaSlot, badWeight float64) {
	slot.failed = true
	c.node.Kernel().Cancel(slot.timeout)
	c.stats.WastedOps += slot.remaining
	if m, ok := c.members[slot.assignee]; ok {
		m.queuedOps -= slot.remaining
		if m.queuedOps < 0 {
			m.queuedOps = 0
		}
	}
	if c.cfg.Workers != nil {
		c.cfg.Workers.Bad(slot.assignee, badWeight)
	}
}

// scheduleRetryRound burns one retry and re-enters dispatch after a
// deterministic exponential backoff with seeded jitter. failReason is
// used when the retry budget is already spent.
func (c *Controller) scheduleRetryRound(ts *taskState, failReason FailReason) {
	if ts.roundPending {
		return
	}
	if ts.task.Deadline > 0 && c.node.Kernel().Now() > ts.task.Deadline {
		c.finishDepend(ts, false, ReasonDeadline, 0)
		return
	}
	if ts.retries >= ts.policy.MaxRetries {
		c.finishDepend(ts, false, failReason, 0)
		return
	}
	ts.retries++
	ts.round++
	round := ts.round
	c.stats.Retries.Inc()
	delay := ts.policy.RetryBackoff * sim.Time(1<<uint(ts.round-1))
	if j := ts.policy.BackoffJitter; j > 0 {
		f := 1 + j*(2*c.rng.Float64()-1)
		delay = sim.Time(float64(delay) * f)
	}
	ts.roundPending = true
	c.node.Kernel().After(delay, func() {
		cur, live := c.tasks[ts.task.ID]
		if !live || cur != ts || ts.round != round || c.stopped {
			return
		}
		ts.roundPending = false
		// Top the live pool back up to K (at least one fresh copy, so a
		// tied vote gains a tie-breaker).
		liveCount := 0
		for _, r := range ts.replicas {
			if !r.resolved() {
				liveCount++
			}
		}
		need := ts.policy.Replicas - liveCount
		if need < 1 {
			need = 1
		}
		c.dispatchReplicas(ts, need)
	})
}

// onReplicaResult handles a vote from one replica.
func (c *Controller) onReplicaResult(ts *taskState, rm resultMsg, origin vnet.Addr) {
	if rm.Replica < 0 || rm.Replica >= len(ts.replicas) {
		return
	}
	slot := ts.replicas[rm.Replica]
	if slot.resolved() || rm.Attempt != slot.attempt || origin != slot.assignee {
		return // stale echo from a superseded attempt
	}
	c.node.Kernel().Cancel(slot.timeout)
	if m, ok := c.members[slot.assignee]; ok {
		m.queuedOps -= slot.remaining
		if m.queuedOps < 0 {
			m.queuedOps = 0
		}
	}
	slot.voted = true
	slot.value = rm.Value
	c.maybeDecide(ts)
}

// onReplicaHandover moves one replica's remaining work to a fresh
// member when its worker announces departure.
func (c *Controller) onReplicaHandover(ts *taskState, hm handoverMsg, origin vnet.Addr) {
	if hm.Replica < 0 || hm.Replica >= len(ts.replicas) {
		return
	}
	slot := ts.replicas[hm.Replica]
	if slot.resolved() || hm.Attempt != slot.attempt || origin != slot.assignee {
		return
	}
	c.node.Kernel().Cancel(slot.timeout)
	if m, ok := c.members[slot.assignee]; ok {
		m.queuedOps -= slot.remaining
		if m.queuedOps < 0 {
			m.queuedOps = 0
		}
	}
	ts.handovers++
	c.stats.Handovers.Inc()
	// Re-place the remainder on a member not already holding a copy.
	exclude := ts.liveAssignees()
	exclude[origin] = true
	addr, found := c.pickReplicaMember(ts, exclude, hm.RemainingOps)
	if !found {
		slot.failed = true
		c.stats.WastedOps += hm.RemainingOps
		c.maybeDecide(ts)
		return
	}
	slot.failed = true // old slot closed; remainder continues in a new one
	c.dispatchOneReplica(ts, addr, hm.RemainingOps)
}

// expireReplicas fails every unresolved replica held by a vanished
// member and re-evaluates the vote. Called from the membership sweep.
func (c *Controller) expireReplicas(ts *taskState, gone vnet.Addr) {
	touched := false
	for _, slot := range ts.replicas {
		if slot.assignee == gone && !slot.resolved() {
			c.failReplica(ts, slot, 0.5)
			touched = true
		}
	}
	if touched {
		c.maybeDecide(ts)
	}
}

// maybeDecide evaluates the vote. Early acceptance fires as soon as
// ⌊K/2⌋+1 identical values arrive; otherwise the tally waits until every
// replica has resolved and accepts the plurality winner only with a
// strict majority of the cast weight. No quorum (or total loss) feeds a
// retry round until the budget runs out.
func (c *Controller) maybeDecide(ts *taskState) {
	// Tally cast votes by value, in replica order for determinism.
	type bucket struct {
		value  uint64
		count  int
		weight float64
	}
	var buckets []bucket
	unresolved := 0
	cast := 0
	castWeight := 0.0
	// One opinion per worker: when the small-pool fallback re-dispatches
	// a task to a worker that already voted, its (deterministic) value
	// must not count twice — a lone Byzantine worker could otherwise
	// vote its wrong value into a quorum across retry rounds.
	seen := make(map[vnet.Addr]bool, len(ts.replicas))
	for _, slot := range ts.replicas {
		if !slot.resolved() {
			unresolved++
			continue
		}
		if !slot.voted {
			continue
		}
		if seen[slot.assignee] {
			continue
		}
		seen[slot.assignee] = true
		cast++
		w := 1.0
		if ts.policy.TrustWeighted && c.cfg.Workers != nil {
			w = c.cfg.Workers.Score(slot.assignee)
		}
		castWeight += w
		found := false
		for i := range buckets {
			if buckets[i].value == slot.value {
				buckets[i].count++
				buckets[i].weight += w
				found = true
				break
			}
		}
		if !found {
			buckets = append(buckets, bucket{value: slot.value, count: 1, weight: w})
		}
	}
	earlyQuorum := ts.policy.Replicas/2 + 1
	for _, b := range buckets {
		if b.count >= earlyQuorum {
			c.decideVote(ts, b.value)
			return
		}
	}
	if unresolved > 0 {
		return // more votes may come
	}
	if cast > 0 {
		best := buckets[0]
		for _, b := range buckets[1:] {
			if b.weight > best.weight {
				best = b
			}
		}
		// Accept a sub-quorum plurality only with a weighted strict
		// majority AND at least two identical values. A lone surviving
		// voter may be the Byzantine one, so singleton votes never
		// decide; two independent workers producing the same value
		// cannot both be lying under the non-colluding attacker model,
		// which preserves correctness under ≤⌊(K−1)/2⌋ Byzantine
		// replicas even when crashes leave fewer than ⌊K/2⌋+1 voters.
		if best.weight > castWeight/2 && best.count >= 2 {
			c.decideVote(ts, best.value)
			return
		}
		c.stats.NoQuorum.Inc()
		c.scheduleRetryRound(ts, ReasonNoQuorum)
		return
	}
	// Every replica died without voting.
	c.scheduleRetryRound(ts, ReasonRetriesExhausted)
}

// decideVote settles the task on the winning value: winners earn
// positive trust evidence, losers negative (they voted against the
// majority — the Fig. 3 trust update), and the result reports the full
// voter roster.
func (c *Controller) decideVote(ts *taskState, winner uint64) {
	if ts.task.Deadline > 0 && c.node.Kernel().Now() > ts.task.Deadline {
		c.finishDepend(ts, false, ReasonDeadline, 0)
		return
	}
	seen := make(map[vnet.Addr]bool, len(ts.replicas))
	for _, slot := range ts.replicas {
		if !slot.voted || seen[slot.assignee] {
			continue // one roster entry and one evidence update per worker
		}
		seen[slot.assignee] = true
		if slot.value == winner {
			ts.voters = append(ts.voters, slot.assignee)
			if c.cfg.Workers != nil {
				c.cfg.Workers.Good(slot.assignee, 1.0)
			}
		} else {
			ts.voters = append(ts.voters, slot.assignee)
			c.stats.WrongVotes.Inc()
			if c.cfg.Workers != nil {
				c.cfg.Workers.Bad(slot.assignee, 1.0)
			}
		}
	}
	c.finishDepend(ts, true, "", winner)
}

// finishDepend releases everything the replicated task still holds and
// completes it through the common finish path.
func (c *Controller) finishDepend(ts *taskState, ok bool, reason FailReason, value uint64) {
	for _, slot := range ts.replicas {
		if !slot.resolved() {
			c.node.Kernel().Cancel(slot.timeout)
			if m, live := c.members[slot.assignee]; live {
				m.queuedOps -= slot.remaining
				if m.queuedOps < 0 {
					m.queuedOps = 0
				}
			}
		}
	}
	ts.value = value
	c.finish(ts.task.ID, ts, ok, reason)
}

// failFastDeadline reports whether the task's deadline is already
// unmeetable at submit time: either it has passed, or every eligible
// member's earliest possible completion lands after it. With no member
// at all the check abstains — the cloud may still be forming and the
// retry loop gives it time.
func (c *Controller) failFastDeadline(task Task) bool {
	if task.Deadline <= 0 {
		return false
	}
	now := c.node.Kernel().Now()
	if task.Deadline <= now {
		return true
	}
	budget := (task.Deadline - now).Seconds()
	seen := false
	bestFinish := math.Inf(1)
	for _, m := range c.members {
		if now-m.lastSeen > c.cfg.MemberTTL || m.res.CPU <= 0 || !m.res.HasSensor(task.NeedsSensor) {
			continue
		}
		seen = true
		if f := (m.queuedOps + task.Ops) / m.res.CPU; f < bestFinish {
			bestFinish = f
		}
	}
	return seen && bestFinish > budget
}

// InvariantViolations returns the internal-consistency violations the
// controller has detected (double finishes) plus a fresh orphan audit.
// An empty slice is the healthy state; the chaos soak asserts it stays
// that way between events.
func (c *Controller) InvariantViolations() []string {
	out := make([]string, len(c.violations))
	copy(out, c.violations)
	return append(out, c.auditOrphans()...)
}

// auditOrphans scans for tasks that can never make progress again — no
// pending timeout, no pending retry round, no unresolved replica with a
// live timer — the observable form of the "no orphaned running task
// after member expiry" invariant. A task parked on a vanished member is
// fine as long as a timer will eventually reclaim it; a task nothing
// will ever touch again is a controller bug. Sound only between kernel
// events (mid-event a task may transiently hold no timer), which is
// when the chaos soak's checker runs.
func (c *Controller) auditOrphans() []string {
	var out []string
	ids := make([]TaskID, 0, len(c.tasks))
	for id := range c.tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ts := c.tasks[id]
		if ts.roundPending {
			continue // a retry round will re-dispatch it
		}
		if ts.policy == nil {
			if !ts.timeout.Pending() {
				out = append(out, fmt.Sprintf("task %d stuck: no pending timeout or retry", id))
			}
			continue
		}
		stuck := true
		for _, slot := range ts.replicas {
			if !slot.resolved() && slot.timeout.Pending() {
				stuck = false
				break
			}
		}
		if stuck {
			out = append(out, fmt.Sprintf("task %d stuck: all %d replicas resolved or timer-less", id, len(ts.replicas)))
		}
	}
	return out
}
