// RSU edge tier: a roadside unit running an ETSI-MEC-style edge server
// as a first-class placement target (PR 7). The paper's §II positions
// vehicular clouds between pure V2V resource pooling and the fixed
// edge/cloud hierarchy; this file models the middle rung — an RSU with
// wired power and a stable position that joins the vehicular cloud as
// a member whose dwell is effectively infinite.
//
// The model is deliberately small: an edge server is a Member with
//
//   - EdgeTier set, which exempts it from the controller's residual-
//     dwell gate (it never drives away) and makes the placement
//     tie-break prefer it for critical stages at equal finish time;
//   - StartDelay, the per-task offload round-trip (backhaul + MEC
//     startup), which the controller adds to its predicted finish so a
//     nearby vehicle still wins short tasks;
//   - its own CPU/storage capacity, typically larger than a vehicle's.
//
// Everything else — joins, dispatch, voting, stage handoff, battery
// (unlimited: zero BatteryOps) — is inherited unchanged, so edge
// placement composes with replication, fencing and failover for free.
package vcloud

import (
	"fmt"
	"time"

	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// EdgeConfig sizes one RSU edge server.
type EdgeConfig struct {
	// CPU is the edge server's compute rate in ops/sec.
	CPU float64
	// Storage is the edge server's storage capacity in MB.
	Storage float64
	// ProcDelay is the fixed per-task offload overhead (backhaul +
	// startup), added before compute begins. Default 20ms.
	ProcDelay sim.Time
	// Sensors the RSU contributes (roadside cameras, induction loops).
	Sensors []string
}

// EdgeServer is an RSU-hosted member of the vehicular cloud.
type EdgeServer struct {
	*Member
}

// NewEdgeServer creates and starts an edge server agent on node.
func NewEdgeServer(node *vnet.Node, cfg EdgeConfig, stats *Stats) (*EdgeServer, error) {
	if cfg.CPU <= 0 {
		return nil, fmt.Errorf("vcloud: edge CPU must be positive, got %v", cfg.CPU)
	}
	if cfg.ProcDelay < 0 {
		return nil, fmt.Errorf("vcloud: edge ProcDelay must be >= 0, got %v", cfg.ProcDelay)
	}
	if cfg.ProcDelay == 0 {
		cfg.ProcDelay = 20 * time.Millisecond
	}
	m, err := NewMember(node, MemberConfig{
		Resources:  Resources{CPU: cfg.CPU, Storage: cfg.Storage, Sensors: cfg.Sensors},
		EdgeTier:   true,
		StartDelay: cfg.ProcDelay,
	}, stats)
	if err != nil {
		return nil, err
	}
	return &EdgeServer{Member: m}, nil
}
