package vcloud_test

import (
	"sort"
	"testing"
	"time"

	"vcloud/internal/mobility"
	"vcloud/internal/trust"
	"vcloud/internal/vcloud"
)

// sortedMembers returns the deployment's members lowest vehicle ID
// first, the order attachMember configured them in.
func sortedMembers(d *vcloud.Deployment) []*vcloud.Member {
	ids := make([]mobility.VehicleID, 0, len(d.Members))
	for id := range d.Members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*vcloud.Member, 0, len(ids))
	for _, id := range ids {
		out = append(out, d.Members[id])
	}
	return out
}

func TestVotingOutvotesByzantineWorker(t *testing.T) {
	// K=3 replicas on exactly 3 members, one of which lies on every
	// result: the two honest copies form a quorum, the lie loses the
	// vote, and the trust engine records the outcome (Fig. 3 loop).
	s := parkingScenario(t, 3)
	ws, err := trust.NewWorkerSet(s.Kernel.Now, 0)
	if err != nil {
		t.Fatal(err)
	}
	stats := &vcloud.Stats{}
	n := 0
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
		// The liar (lowest-ID member) is the fastest worker, so its wrong
		// vote arrives before the honest quorum forms — were it slower,
		// early accept would settle the vote without it and there would
		// be no lie on record to judge.
		MemberResources: func(p mobility.Profile) vcloud.Resources {
			n++
			cpu := 1000.0
			if n == 1 {
				cpu = 2000.0
			}
			return vcloud.Resources{CPU: cpu, Storage: p.Storage, Sensors: p.Sensors}
		},
		Controller: vcloud.ControllerConfig{
			Depend:  &vcloud.DependabilityPolicy{Replicas: 3},
			Workers: ws,
		},
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	members := sortedMembers(d)
	liar := members[0]
	liar.SetResultTamper(func(_ vcloud.Task, v uint64) uint64 { return v + 1 })

	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var res vcloud.TaskResult
	fired := 0
	task := vcloud.Task{Ops: 1000, InputBytes: 500, OutputBytes: 200}
	if err := d.SubmitAnywhere(task, func(r vcloud.TaskResult) { res = r; fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}

	if fired != 1 || !res.OK {
		t.Fatalf("result = %+v fired=%d, want one OK completion", res, fired)
	}
	ref := task
	ref.ID = res.ID
	if res.Value != vcloud.TaskValue(ref) {
		t.Errorf("value = %d, want honest %d", res.Value, vcloud.TaskValue(ref))
	}
	if res.Replicas != 3 || len(res.Voters) != 3 || res.Retries != 0 {
		t.Errorf("replicas=%d voters=%d retries=%d, want 3/3/0", res.Replicas, len(res.Voters), res.Retries)
	}
	if stats.WrongVotes.Value() != 1 {
		t.Errorf("wrong votes = %d, want 1", stats.WrongVotes.Value())
	}
	if got := ws.Score(liar.Addr()); got >= 0.5 {
		t.Errorf("liar trust = %.2f, want below the 0.5 prior", got)
	}
	for _, m := range members[1:] {
		if got := ws.Score(m.Addr()); got <= 0.5 {
			t.Errorf("honest worker %d trust = %.2f, want above the 0.5 prior", m.Addr(), got)
		}
	}
}

func TestAllByzantineFailsSafeWithNoQuorum(t *testing.T) {
	// Every worker lies with a distinct value (the non-colluding model):
	// no two votes ever agree, so the task must FAIL with "no quorum"
	// after exhausting its retry budget — never complete with a wrong
	// value. Retry rounds reuse the same three workers (small-pool
	// fallback), whose deterministic lies repeat; the one-opinion-per-
	// worker tally keeps those repeats from faking a quorum.
	s := parkingScenario(t, 3)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
		Controller: vcloud.ControllerConfig{
			Depend: &vcloud.DependabilityPolicy{Replicas: 3, MaxRetries: 2},
		},
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range sortedMembers(d) {
		addr := m.Addr()
		m.SetResultTamper(func(_ vcloud.Task, v uint64) uint64 { return v + 1 + uint64(addr) })
	}

	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var res vcloud.TaskResult
	fired := 0
	if err := d.SubmitAnywhere(vcloud.Task{Ops: 1000}, func(r vcloud.TaskResult) { res = r; fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}

	if fired != 1 {
		t.Fatalf("done fired %d times, want 1", fired)
	}
	if res.OK {
		t.Fatalf("result = %+v: a unanimous-liar cloud completed a task", res)
	}
	if res.Reason != vcloud.ReasonNoQuorum {
		t.Errorf("reason = %q, want %q", res.Reason, vcloud.ReasonNoQuorum)
	}
	if stats.NoQuorum.Value() == 0 {
		t.Error("no-quorum counter never incremented")
	}
	if res.Retries != 2 {
		t.Errorf("retries = %d, want the full budget of 2", res.Retries)
	}
}

func TestTrustGatedPlacementExcludesDistrusted(t *testing.T) {
	// A worker below the trust threshold must never be picked, even when
	// it is otherwise the scheduler's first choice.
	s := parkingScenario(t, 2)
	ws, err := trust.NewWorkerSet(s.Kernel.Now, 0)
	if err != nil {
		t.Fatal(err)
	}
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
		Controller: vcloud.ControllerConfig{
			Depend:  &vcloud.DependabilityPolicy{Replicas: 1, TrustThreshold: 0.4},
			Workers: ws,
		},
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	members := sortedMembers(d)
	distrusted := members[0].Addr()
	ws.Bad(distrusted, 3) // score (0+1)/(3+2) = 0.2 < 0.4

	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var res vcloud.TaskResult
		if err := d.SubmitAnywhere(vcloud.Task{Ops: 500}, func(r vcloud.TaskResult) { res = r }); err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("task %d failed: %+v", i, res)
		}
		if len(res.Voters) != 1 || res.Voters[0] == distrusted {
			t.Fatalf("task %d voters = %v, distrusted worker %d must be excluded", i, res.Voters, distrusted)
		}
	}
}

func TestRetryAfterWorkerDeathIsDeterministic(t *testing.T) {
	// A worker dies mid-attempt; the retry round's backoff is drawn from
	// the controller's seeded stream, so two identical runs agree on the
	// final latency bit-for-bit.
	runOnce := func() vcloud.TaskResult {
		s := parkingScenario(t, 2)
		stats := &vcloud.Stats{}
		n := 0
		d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
			// First (lowest-ID) member is fast and wins placement.
			MemberResources: func(p mobility.Profile) vcloud.Resources {
				n++
				cpu := 500.0
				if n == 1 {
					cpu = 2000.0
				}
				return vcloud.Resources{CPU: cpu, Storage: p.Storage, Sensors: p.Sensors}
			},
			Controller: vcloud.ControllerConfig{
				Depend: &vcloud.DependabilityPolicy{Replicas: 1, MaxRetries: 3},
			},
		}, stats)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		var res vcloud.TaskResult
		if err := d.SubmitAnywhere(vcloud.Task{Ops: 2000}, func(r vcloud.TaskResult) { res = r }); err != nil {
			t.Fatal(err)
		}
		sortedMembers(d)[0].Stop() // silent death of the fast assignee
		if err := s.RunFor(2 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return res
	}

	a := runOnce()
	b := runOnce()
	if !a.OK || !b.OK {
		t.Fatalf("runs failed: %+v / %+v", a, b)
	}
	if a.Retries < 1 {
		t.Errorf("retries = %d, want >= 1 (the assignee died)", a.Retries)
	}
	if a.Latency != b.Latency || a.Retries != b.Retries || a.Value != b.Value {
		t.Errorf("same seed diverged: latency %v vs %v, retries %d vs %d, value %d vs %d",
			a.Latency, b.Latency, a.Retries, b.Retries, a.Value, b.Value)
	}
}
