package vcloud_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"vcloud/internal/vcloud"
	"vcloud/internal/vnet"
)

// fixtureCheckpoint exercises every field the codec carries: membership
// with sensors, fenced epoch, a dependability policy both in the config
// and per-task, an applied ledger, parked outcomes with voters, and
// outstanding arming obligations.
func fixtureCheckpoint() vcloud.Checkpoint {
	pol := &vcloud.DependabilityPolicy{Replicas: 3, MaxRetries: 2, RetryBackoff: time.Second}
	return vcloud.Checkpoint{
		Controller:  7,
		Standby:     3,
		Seq:         42,
		NextID:      9001,
		Emergency:   true,
		FailoverTTL: 4 * time.Second,
		Cfg: vcloud.ControllerConfig{
			AdvPeriod:        time.Second,
			MemberTTL:        3 * time.Second,
			DwellMargin:      1.5,
			RetryLimit:       4,
			Handover:         true,
			PricePerKOps:     2,
			Failover:         true,
			CheckpointPeriod: 2 * time.Second,
			FailoverTTL:      4 * time.Second,
			Fencing:          true,
			Depend:           pol,
		},
		Members: []vcloud.MemberSnapshot{
			{Addr: 3, Res: vcloud.Resources{CPU: 1000, Storage: 4096, Sensors: []string{"lidar", "cam"}}},
			{Addr: 5, Res: vcloud.Resources{CPU: 500, Storage: 1024}},
		},
		Tasks: []vcloud.TaskCheckpoint{
			{
				Task:         vcloud.Task{ID: 11, Ops: 5000, InputBytes: 100, OutputBytes: 50, NeedsSensor: "lidar", Depend: pol, Optional: true},
				Client:       5,
				RemainingOps: 1234.5,
				Retries:      1,
				Handovers:    2,
				Submitted:    10 * time.Second,
			},
		},
		Epoch:   vcloud.NextEpoch(0, 7),
		Applied: []vcloud.AppliedRecord{{ID: 9, Epoch: 65543}, {ID: 10, Epoch: 65543}},
		Parked: []vcloud.ParkedOutcome{
			{
				Task:      vcloud.Task{ID: 12, Ops: 800},
				Client:    5,
				OK:        true,
				Reason:    "",
				Value:     0xfeed,
				Voters:    []vnet.Addr{3, 5, 9},
				Retries:   0,
				Handovers: 1,
				Submitted: 11 * time.Second,
				Seq:       41,
			},
		},
		Armed: []vnet.Addr{3, 9},
		Estimates: [vcloud.NumTiers]vcloud.TierEstimate{
			vcloud.TierVehicle: {Bps: 4e6, Loss: 0.01, QueueDelay: 30 * time.Millisecond, Seq: 12, Updated: 9 * time.Second},
			vcloud.TierCloud:   {Bps: 1.5e6, Loss: 0.12, QueueDelay: 900 * time.Millisecond, Seq: 15, Updated: 10 * time.Second},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := fixtureCheckpoint()
	data := vcloud.EncodeCheckpoint(ck)
	got, err := vcloud.DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("decode of a valid encoding failed: %v", err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Errorf("round-trip mismatch:\n in: %+v\nout: %+v", ck, got)
	}
	// Deterministic: equal checkpoints encode to equal bytes.
	if !bytes.Equal(data, vcloud.EncodeCheckpoint(ck)) {
		t.Error("encoding is not deterministic")
	}
}

func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	valid := vcloud.EncodeCheckpoint(fixtureCheckpoint())

	t.Run("bad magic", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[0] ^= 0xff
		if _, err := vcloud.DecodeCheckpoint(data); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[3]++
		if _, err := vcloud.DecodeCheckpoint(data); err == nil {
			t.Error("bumped version accepted")
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(valid); n += 7 {
			if _, err := vcloud.DecodeCheckpoint(valid[:n]); err == nil {
				t.Fatalf("truncation to %d bytes accepted", n)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := vcloud.DecodeCheckpoint(append(append([]byte(nil), valid...), 0xaa)); err == nil {
			t.Error("trailing byte accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := vcloud.DecodeCheckpoint(nil); err == nil {
			t.Error("empty input accepted")
		}
	})
}

// FuzzDecodeCheckpoint asserts the decoder's contract on arbitrary
// bytes: it never panics, and anything it does accept survives a
// re-encode/re-decode round trip (no partially-filled garbage escapes —
// the property that keeps a standby from promoting into a corrupt
// state).
func FuzzDecodeCheckpoint(f *testing.F) {
	valid := vcloud.EncodeCheckpoint(fixtureCheckpoint())
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	small := vcloud.EncodeCheckpoint(vcloud.Checkpoint{Controller: 1, Standby: -1})
	f.Add(small)
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := vcloud.DecodeCheckpoint(data)
		if err != nil {
			return
		}
		re := vcloud.EncodeCheckpoint(ck)
		ck2, err := vcloud.DecodeCheckpoint(re)
		if err != nil {
			t.Fatalf("re-encode of an accepted checkpoint does not decode: %v", err)
		}
		if !reflect.DeepEqual(ck, ck2) {
			t.Fatalf("accepted checkpoint is not a codec fixed point:\n first: %+v\nsecond: %+v", ck, ck2)
		}
	})
}
