// Package vcloud is the paper's core contribution operationalized: a
// vehicular cloud that pools the sensing, compute, storage and network
// resources of nearby vehicles (§II.C), organized under any of the three
// Fig. 4 architectures — stationary (parked vehicles), infrastructure-
// based (RSU-coordinated), and dynamic (cluster-head-coordinated, pure
// V2V).
//
// The package provides:
//
//   - the task model and a dwell-aware scheduler (§III.A: "how to
//     estimate the duration of stay of this vehicle");
//   - task handover of partially executed work when a member departs,
//     against the drop-and-resubmit baseline whose waste §III.A calls
//     out (experiment E7);
//   - a file replication manager targeting availability under churn
//     (§III.A's "how many copies of a shared file", experiment E8);
//   - cloud backends for the Fig. 2 comparison: the same workload can
//     run against a conventional cloud (cellular uplink), a mobile-cloud
//     stand-in, or the vehicular cloud (experiment E1);
//   - the management plane: emergency mode, topology snapshots and
//     authority-side identity revelation (§V.A).
package vcloud

import (
	"fmt"
	"math"

	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// TaskID identifies a submitted task.
type TaskID uint64

// Task is a unit of offloadable computation.
type Task struct {
	ID TaskID
	// Ops is the computational size in abstract operations; a member
	// with CPU capacity c ops/s finishes in Ops/c seconds.
	Ops float64
	// InputBytes must reach the worker before compute starts; OutputBytes
	// return with the result.
	InputBytes  int
	OutputBytes int
	// Deadline is the absolute virtual time by which the submitter needs
	// the result; zero means none.
	Deadline sim.Time
	// NeedsSensor, when non-empty, restricts placement to vehicles
	// carrying that sensor (Fig. 1 heterogeneity).
	NeedsSensor string
	// Depend, when non-nil, overrides the controller's default
	// dependability policy for this task: redundant replicas, retry
	// budget, voting (see DependabilityPolicy).
	Depend *DependabilityPolicy
	// Stage, when non-nil, marks this task as one stage of a DAG job:
	// the worker must pull the listed predecessor outputs before compute
	// and the controller routes the outcome to the job engine (dag.go).
	Stage *StageBinding
	// Optional marks low-criticality work the placement governor may
	// shed first under overload (governor.go); it does not enter
	// TaskValue, so shedding policy cannot change result digests.
	Optional bool
}

// Validate checks task sanity.
func (t *Task) Validate() error {
	if t.Ops <= 0 {
		return fmt.Errorf("vcloud: task ops must be positive, got %v", t.Ops)
	}
	if t.InputBytes < 0 || t.OutputBytes < 0 {
		return fmt.Errorf("vcloud: task byte sizes must be non-negative")
	}
	if t.Depend != nil {
		if err := t.Depend.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TaskValue is the canonical result of executing a task: a deterministic
// digest of the task definition that every honest worker computes
// identically. Having a comparable value is what makes redundant
// execution decidable — the controller's majority vote compares replica
// values, and a Byzantine worker is one that returns something else
// (see internal/attack.Byzantify).
func TaskValue(t Task) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(t.ID))
	mix(math.Float64bits(t.Ops))
	mix(uint64(t.InputBytes))
	mix(uint64(t.OutputBytes))
	return h
}

// TaskStatus is the lifecycle state of a task inside the controller.
type TaskStatus int

// Task statuses.
const (
	TaskPending TaskStatus = iota + 1
	TaskRunning
	TaskCompleted
	TaskFailed
)

// String implements fmt.Stringer.
func (s TaskStatus) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskRunning:
		return "running"
	case TaskCompleted:
		return "completed"
	case TaskFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// FailReason is a structured failure cause carried on TaskResult (and
// JobResult). Schedulers branch on these values — the DAG engine decides
// between stage retry, forming-cloud backoff and job abort from the
// reason alone — so they are stable identifiers, not display strings.
type FailReason string

// Failure reasons. Empty means success.
const (
	ReasonNone              FailReason = ""
	ReasonRetriesExhausted  FailReason = "retries-exhausted"
	ReasonDeadline          FailReason = "deadline"
	ReasonNoEligibleMember  FailReason = "no-eligible-member"
	ReasonNoQuorum          FailReason = "no-quorum"
	ReasonControllerStopped FailReason = "controller-stopped"
	ReasonUplinkDown        FailReason = "uplink-down"
	// ReasonStageFailed marks a job that failed because a required stage
	// exhausted its budget (job-level only).
	ReasonStageFailed FailReason = "stage-failed"
	// ReasonAdmission marks work the placement governor refused up
	// front: no tier's estimated completion time fits the deadline.
	ReasonAdmission FailReason = "admission-rejected"
	// ReasonBackpressure marks work bounced because every eligible
	// tier's bounded queue was full.
	ReasonBackpressure FailReason = "backpressure"
	// ReasonShed marks optional work dropped under overload to protect
	// required work (governor shedding policy).
	ReasonShed FailReason = "load-shed"
)

// TaskResult reports a finished task to its submitter.
type TaskResult struct {
	ID        TaskID
	OK        bool
	Latency   sim.Time
	Handovers int
	// Retries counts re-dispatches across the task's lifetime (both the
	// plain retry loop and replica replacements under a dependability
	// policy); it is populated on every completion path.
	Retries int
	Reason  FailReason
	// Value is the computed result: the winning value of the replica
	// vote under a dependability policy, or the single worker's value
	// otherwise. Compare against TaskValue to check correctness.
	Value uint64
	// Replicas is how many redundant copies were dispatched in total
	// (1 for the plain path, 0 when the task never reached a worker).
	Replicas int
	// Voters lists the workers whose results were counted in the
	// deciding vote, in dispatch order (nil when the task failed before
	// any result arrived).
	Voters []vnet.Addr
}

// Resources describes what a member contributes to the pool.
type Resources struct {
	CPU     float64 // ops/sec
	Storage float64 // MB
	Sensors []string
}

// HasSensor reports whether the resources include the named sensor.
func (r Resources) HasSensor(name string) bool {
	if name == "" {
		return true
	}
	for _, s := range r.Sensors {
		if s == name {
			return true
		}
	}
	return false
}
