// Package vcloud is the paper's core contribution operationalized: a
// vehicular cloud that pools the sensing, compute, storage and network
// resources of nearby vehicles (§II.C), organized under any of the three
// Fig. 4 architectures — stationary (parked vehicles), infrastructure-
// based (RSU-coordinated), and dynamic (cluster-head-coordinated, pure
// V2V).
//
// The package provides:
//
//   - the task model and a dwell-aware scheduler (§III.A: "how to
//     estimate the duration of stay of this vehicle");
//   - task handover of partially executed work when a member departs,
//     against the drop-and-resubmit baseline whose waste §III.A calls
//     out (experiment E7);
//   - a file replication manager targeting availability under churn
//     (§III.A's "how many copies of a shared file", experiment E8);
//   - cloud backends for the Fig. 2 comparison: the same workload can
//     run against a conventional cloud (cellular uplink), a mobile-cloud
//     stand-in, or the vehicular cloud (experiment E1);
//   - the management plane: emergency mode, topology snapshots and
//     authority-side identity revelation (§V.A).
package vcloud

import (
	"fmt"

	"vcloud/internal/sim"
)

// TaskID identifies a submitted task.
type TaskID uint64

// Task is a unit of offloadable computation.
type Task struct {
	ID TaskID
	// Ops is the computational size in abstract operations; a member
	// with CPU capacity c ops/s finishes in Ops/c seconds.
	Ops float64
	// InputBytes must reach the worker before compute starts; OutputBytes
	// return with the result.
	InputBytes  int
	OutputBytes int
	// Deadline is the absolute virtual time by which the submitter needs
	// the result; zero means none.
	Deadline sim.Time
	// NeedsSensor, when non-empty, restricts placement to vehicles
	// carrying that sensor (Fig. 1 heterogeneity).
	NeedsSensor string
}

// Validate checks task sanity.
func (t *Task) Validate() error {
	if t.Ops <= 0 {
		return fmt.Errorf("vcloud: task ops must be positive, got %v", t.Ops)
	}
	if t.InputBytes < 0 || t.OutputBytes < 0 {
		return fmt.Errorf("vcloud: task byte sizes must be non-negative")
	}
	return nil
}

// TaskStatus is the lifecycle state of a task inside the controller.
type TaskStatus int

// Task statuses.
const (
	TaskPending TaskStatus = iota + 1
	TaskRunning
	TaskCompleted
	TaskFailed
)

// String implements fmt.Stringer.
func (s TaskStatus) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskRunning:
		return "running"
	case TaskCompleted:
		return "completed"
	case TaskFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// TaskResult reports a finished task to its submitter.
type TaskResult struct {
	ID        TaskID
	OK        bool
	Latency   sim.Time
	Handovers int
	Retries   int
	Reason    string
}

// Resources describes what a member contributes to the pool.
type Resources struct {
	CPU     float64 // ops/sec
	Storage float64 // MB
	Sensors []string
}

// HasSensor reports whether the resources include the named sensor.
func (r Resources) HasSensor(name string) bool {
	if name == "" {
		return true
	}
	for _, s := range r.Sensors {
		if s == name {
			return true
		}
	}
	return false
}
