// Split-brain-safe leadership: epoch fencing and partition-heal merge
// (ISSUE 3 tentpole). PR 1's failover only survives crashes — a radio
// partition that separates the controller from its standby while both
// keep reachable workers yields two live controllers double-dispatching
// the same tasks. With ControllerConfig.Fencing on:
//
//   - Every advertisement, checkpoint, dispatch and result carries the
//     controller's Epoch; workers and the replica manager reject
//     stale-epoch messages, and a controller that hears a rival with a
//     superseding epoch abdicates back to member deterministically.
//
//   - Outcomes are applied **after acknowledgement**: once a standby has
//     ever been sent a checkpoint it is "armed", and the controller
//     parks finished outcomes until the armed standbys have acked a
//     checkpoint that carries them. A standby that promotes from an
//     acked checkpoint treats its Parked entries as already applied
//     (they seed the ledger), so the outcome is applied on exactly one
//     side of a partition; under partition an unacked parked outcome may
//     be applied on neither (at-most-once — the safe direction for the
//     "no outcome applied twice" invariant).
//
//   - On partition heal the abdicating controller ships its whole state
//     in a merge message: the survivor unions membership, merges the
//     (task, epoch) applied ledger, re-adopts orphaned in-flight tasks,
//     applies still-unapplied parked outcomes (deduped against the
//     ledger), then bumps its epoch past the rival's and re-advertises
//     so members re-accept under a fresh counter.
//
// Liveness tradeoff: an armed standby that dies without disarming
// stalls parked applies and (after FailoverTTL without an ack) makes
// the controller refuse new submissions — safety over availability, the
// CP side of the partition tradeoff. The stall clears when the standby
// recovers (it either disarm-acks or promotes and the epoch battle
// resolves it).
package vcloud

import (
	"sort"

	"vcloud/internal/sim"
	"vcloud/internal/trace"
	"vcloud/internal/vnet"
)

// Fencing protocol message kinds.
const (
	kindMerge   = "vc.merge"
	kindCkptAck = "vc.ckptack"
)

// ackMsg acknowledges a replicated checkpoint. Disarm releases the
// sender from the controller's armed set (the member discarded its
// checkpoint and can no longer promote from it). Known carries the
// highest epoch the acker has witnessed, so a stale controller learns
// of its deposition even from its own standby.
type ackMsg struct {
	Seq    uint64
	Disarm bool
	Known  Epoch
}

// ParkedOutcome is a finished-but-unapplied task outcome riding in a
// checkpoint (and offered in a merge): everything needed to apply the
// outcome except the submitter callback, which cannot cross the wire.
// Seq is the checkpoint sequence that first carries it — the outcome is
// applied once the armed standbys have acked that sequence.
type ParkedOutcome struct {
	Task      Task
	Client    vnet.Addr
	OK        bool
	Reason    FailReason
	Value     uint64
	Voters    []vnet.Addr
	Retries   int
	Handovers int
	Submitted sim.Time
	Seq       uint64
}

// mergeMsg is the abdicating controller's parting gift: its full state,
// shipped to the superseding rival for anti-entropy reconciliation.
type mergeMsg struct {
	Epoch   Epoch
	Members []MemberSnapshot
	Tasks   []TaskCheckpoint
	Applied []AppliedRecord
	Parked  []ParkedOutcome
	// Armed is the abdicator's outstanding arming obligations: standbys
	// that hold its replicated state and could still promote from it.
	// The survivor inherits them (see inheritArmed).
	Armed []vnet.Addr
	// Jobs are the abdicator's in-flight DAG jobs; the survivor adopts
	// any it does not already run and resumes their pending stages.
	Jobs []JobCheckpoint
}

// parkedEntry is a parked outcome plus the local-only context needed to
// apply it faithfully (callback, ledger settlement target).
type parkedEntry struct {
	po        ParkedOutcome
	done      func(TaskResult)
	replicas  int
	assignee  vnet.Addr
	hasPolicy bool
}

// Fenced reports whether epoch fencing is active.
func (c *Controller) Fenced() bool { return c.cfg.Fencing }

// CurrentEpoch returns the controller's epoch (zero when unfenced).
func (c *Controller) CurrentEpoch() Epoch { return c.epoch }

// StandbyAddr returns the designated failover standby (-1 when none).
func (c *Controller) StandbyAddr() vnet.Addr { return c.standby }

// ParkedOutcomes returns how many finished outcomes await standby
// acknowledgement before applying.
func (c *Controller) ParkedOutcomes() int { return len(c.parked) }

// armedStandby is the controller's book-keeping for one standby it has
// replicated a checkpoint to: the highest sequence the standby
// acknowledged and when it was last heard from (initially: armed).
type armedStandby struct {
	acked uint64
	at    sim.Time
}

// leaseExpired reports whether any armed standby has gone silent for
// longer than FailoverTTL — the point at which that standby may already
// have promoted from its checkpoint copy, so accepting new work could
// double-dispatch it. Every armed standby must stay in contact: a
// controller that re-designates a reachable standby mid-partition is
// still fenced by the silent one on the far side.
func (c *Controller) leaseExpired(now sim.Time) bool {
	if !c.cfg.Fencing {
		return false
	}
	for _, as := range c.armed {
		if now-as.at > c.cfg.FailoverTTL {
			return true
		}
	}
	return false
}

// recordApplied enters id into the (task, epoch) applied ledger.
// Returns false when the id is already present — the caller must not
// apply the outcome a second time.
func (c *Controller) recordApplied(id TaskID, epoch uint64) bool {
	if _, dup := c.applied[id]; dup {
		return false
	}
	c.applied[id] = epoch
	c.appliedOrder = append(c.appliedOrder, id)
	// Evict the oldest entries beyond the cap: only recently applied
	// tasks can still be in flight on a stale checkpoint or rival.
	for len(c.appliedOrder) > appliedLedgerCap {
		delete(c.applied, c.appliedOrder[0])
		c.appliedOrder = c.appliedOrder[1:]
	}
	return true
}

// exportLedger snapshots the applied ledger in insertion order.
func (c *Controller) exportLedger() []AppliedRecord {
	out := make([]AppliedRecord, 0, len(c.appliedOrder))
	for _, id := range c.appliedOrder {
		out = append(out, AppliedRecord{ID: id, Epoch: c.applied[id]})
	}
	return out
}

// exportArmed snapshots the armed-standby set in address order.
func (c *Controller) exportArmed() []vnet.Addr {
	out := make([]vnet.Addr, 0, len(c.armed))
	for a := range c.armed {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// inheritArmed adopts arming obligations from a checkpoint or merge:
// every listed standby (except this node) may hold replicated state of
// the same task lineage and promote a sibling successor, so outcomes
// must park until it disarms. The lease clock restarts at adoption —
// the sibling gets FailoverTTL to hear our advertisement and disarm.
func (c *Controller) inheritArmed(armed []vnet.Addr, now sim.Time) {
	for _, a := range armed {
		if a == c.node.Addr() {
			continue
		}
		if _, known := c.armed[a]; !known {
			c.armed[a] = armedStandby{at: now}
		}
	}
}

// exportParked snapshots the parked outcomes for a checkpoint or merge.
func (c *Controller) exportParked() []ParkedOutcome {
	out := make([]ParkedOutcome, 0, len(c.parked))
	for _, e := range c.parked {
		out = append(out, e.po)
	}
	return out
}

// applyEntry makes an outcome permanent: ledger entry, stats, incentive
// settlement, the OnApply hook, and the submitter callback. Exactly-once
// is enforced here — a duplicate id is counted and dropped.
func (c *Controller) applyEntry(e *parkedEntry) {
	id := e.po.Task.ID
	if c.cfg.Fencing && !c.recordApplied(id, c.epoch.Counter) {
		c.stats.Deduped.Inc()
		c.cfg.Trace.Emit(c.node.Kernel().Now(), trace.CatCloud, int32(c.node.Addr()),
			"task %d outcome deduped (already applied)", id)
		return
	}
	lat := c.node.Kernel().Now() - e.po.Submitted
	if c.cfg.OnApply != nil {
		c.cfg.OnApply(id, c.epoch.Counter, e.po.OK)
	}
	if e.po.OK {
		c.stats.Completed.Inc()
		c.stats.Latency.ObserveDuration(lat)
		// Incentive settlement: the client pays the worker(s). On the
		// plain path the final worker collects the full price (a
		// production split would apportion handover chains by executed
		// ops, which the controller cannot observe directly); under a
		// dependability policy the price splits evenly across the voters
		// — redundancy is paid for, which is exactly the overhead E12
		// prices out.
		if c.cfg.Ledger != nil {
			price := int64(e.po.Task.Ops/1000) * c.cfg.PricePerKOps
			if price < 1 {
				price = 1
			}
			if e.hasPolicy && len(e.po.Voters) > 0 {
				share := price / int64(len(e.po.Voters))
				if share < 1 {
					share = 1
				}
				for _, v := range e.po.Voters {
					if v != e.po.Client {
						_ = c.cfg.Ledger.Transfer(c.node.Kernel().Now(), id, e.po.Client, v, share)
					}
				}
			} else if e.assignee != e.po.Client {
				_ = c.cfg.Ledger.Transfer(c.node.Kernel().Now(), id, e.po.Client, e.assignee, price)
			}
		}
	} else {
		c.stats.Failed.Inc()
	}
	if e.done != nil {
		e.done(TaskResult{
			ID:        id,
			OK:        e.po.OK,
			Latency:   lat,
			Handovers: e.po.Handovers,
			Retries:   e.po.Retries,
			Reason:    e.po.Reason,
			Value:     e.po.Value,
			Replicas:  e.replicas,
			Voters:    e.po.Voters,
		})
	}
	// Stage outcomes route to the DAG scheduler from here — after the
	// ledger dedup — so a stage can never advance its job twice even
	// when the same outcome arrives via retry, merge and checkpoint.
	if e.po.Task.Stage != nil {
		c.onStageApplied(e.po)
	}
}

// tryFlushParked applies every parked outcome whose carrying checkpoint
// has been acknowledged by all armed standbys (or all of them, when no
// standby is armed — nobody can promote an unacked copy).
func (c *Controller) tryFlushParked() {
	if len(c.parked) == 0 {
		return
	}
	minAck := ^uint64(0)
	for _, as := range c.armed {
		if as.acked < minAck {
			minAck = as.acked
		}
	}
	n := 0
	for _, e := range c.parked {
		if e.po.Seq > minAck {
			break // parked is in seq order; the rest are newer
		}
		c.applyEntry(e)
		n++
	}
	c.parked = c.parked[n:]
}

// onCkptAck processes a standby's checkpoint acknowledgement.
func (c *Controller) onCkptAck(msg vnet.Message, _ vnet.Addr) {
	if c.stopped {
		return
	}
	am, ok := msg.Payload.(ackMsg)
	if !ok {
		return
	}
	// The acker has witnessed a superseding epoch: this controller was
	// deposed while isolated. Abdicate toward the epoch's claimant.
	if c.epoch.Defers(am.Known) {
		c.abdicateTo(am.Known.Claimant, am.Known)
		return
	}
	as, armed := c.armed[msg.Origin]
	if !armed {
		return // never armed (or already disarmed): stale ack
	}
	if am.Disarm {
		delete(c.armed, msg.Origin)
	} else {
		if am.Seq > as.acked {
			as.acked = am.Seq
		}
		as.at = c.node.Kernel().Now()
		c.armed[msg.Origin] = as
	}
	c.tryFlushParked()
}

// onRivalAdv watches other controllers' advertisements: hearing a rival
// whose epoch supersedes ours means a partition healed (or a standby
// wrongly promoted) and exactly one of us must stand down.
func (c *Controller) onRivalAdv(msg vnet.Message, _ vnet.Addr) {
	if c.stopped {
		return
	}
	adv, ok := msg.Payload.(advMsg)
	if !ok || adv.Controller == c.node.Addr() {
		return
	}
	if c.epoch.Defers(adv.Epoch) {
		c.abdicateTo(adv.Controller, adv.Epoch)
	}
	// Otherwise: the rival defers to us and will abdicate when it hears
	// our advertisement; its merge message completes the reconciliation.
}

// onRivalCkpt answers checkpoints wrongly replicated to this node by a
// rival controller that still believes we are its member: refuse the
// standby role with a disarm-ack so the rival's parked outcomes do not
// stall forever, and let the epoch ride along to trigger its abdication.
func (c *Controller) onRivalCkpt(msg vnet.Message, _ vnet.Addr) {
	if c.stopped {
		return
	}
	cm, ok := msg.Payload.(ckptMsg)
	if !ok {
		return
	}
	ck, err := DecodeCheckpoint(cm.Data)
	if err != nil {
		c.stats.CkptRejected.Inc()
		return
	}
	ack := c.node.NewMessage(msg.Origin, kindCkptAck, 64, 1, ackMsg{
		Seq:    ck.Seq,
		Disarm: true,
		Known:  c.epoch,
	})
	c.node.SendTo(msg.Origin, ack)
}

// abdicateTo stands the controller down in favor of a superseding
// rival: ship full state in a merge message for anti-entropy, then halt.
// The OnAbdicate hook lets the deployment re-attach a member agent on
// this node — leadership returns to the rival deterministically.
func (c *Controller) abdicateTo(target vnet.Addr, rival Epoch) {
	c.stats.Abdications.Inc()
	c.cfg.Trace.Emit(c.node.Kernel().Now(), trace.CatCloud, int32(c.node.Addr()),
		"abdicating %v to rival %v at %d", c.epoch, rival, target)
	mm := mergeMsg{
		Epoch:   c.epoch,
		Applied: c.exportLedger(),
		Parked:  c.exportParked(),
		Armed:   c.exportArmed(),
		Jobs:    c.exportJobs(),
	}
	for _, a := range c.Members() {
		mm.Members = append(mm.Members, MemberSnapshot{Addr: a, Res: c.members[a].res})
	}
	ids := make([]TaskID, 0, len(c.tasks))
	for id := range c.tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ts := c.tasks[id]
		mm.Tasks = append(mm.Tasks, TaskCheckpoint{
			Task:         ts.task,
			Client:       ts.client,
			RemainingOps: ts.remainingOps,
			Retries:      ts.retries,
			Handovers:    ts.handovers,
			Submitted:    ts.submitted,
		})
	}
	size := 128 + 24*len(mm.Members) + 96*len(mm.Tasks) + 16*len(mm.Applied) + 96*len(mm.Parked) + 160*len(mm.Jobs)
	msg := c.node.NewMessage(target, kindMerge, size, 1, mm)
	c.node.SendTo(target, msg)
	onAbdicate := c.cfg.OnAbdicate
	c.Crash() // silent halt: pending task state was shipped in the merge
	if onAbdicate != nil {
		onAbdicate(c)
	}
}

// onMerge reconciles an abdicated rival's state into this controller:
// membership union, ledger merge, orphaned-task adoption, parked-outcome
// application (deduped to exactly-once), then an epoch bump past both
// generations so members re-accept leadership under a fresh counter.
func (c *Controller) onMerge(msg vnet.Message, _ vnet.Addr) {
	if c.stopped {
		return
	}
	mm, ok := msg.Payload.(mergeMsg)
	if !ok {
		return
	}
	c.stats.Merges.Inc()
	now := c.node.Kernel().Now()
	self := c.node.Addr()
	for _, ms := range mm.Members {
		if ms.Addr == self || ms.Addr == msg.Origin {
			continue
		}
		if _, known := c.members[ms.Addr]; !known {
			c.members[ms.Addr] = &memberInfo{res: ms.Res, lastSeen: now}
		}
	}
	for _, ar := range mm.Applied {
		c.recordApplied(ar.ID, ar.Epoch)
	}
	// The abdicator's armed standbys hold its state and may still
	// promote from it; inherit the obligation before deciding whether
	// its parked outcomes (and ours) can apply directly.
	c.inheritArmed(mm.Armed, now)
	// Adopt the rival's in-flight DAG jobs before its tasks, so adopted
	// stage tasks (and parked stage outcomes below) find their job rows.
	for _, jc := range mm.Jobs {
		if _, live := c.jobs[jc.ID]; live {
			continue // shared checkpoint lineage: we already run this job
		}
		c.restoreJob(jc)
	}
	adopted := 0
	for _, tc := range mm.Tasks {
		id := tc.Task.ID
		if _, dup := c.applied[id]; dup {
			continue // outcome already applied somewhere: do not re-run
		}
		if _, live := c.tasks[id]; live {
			continue // we already run our own copy (shared checkpoint lineage)
		}
		ts := &taskState{
			task:         tc.Task,
			client:       tc.Client,
			remainingOps: tc.RemainingOps,
			retries:      tc.Retries,
			handovers:    tc.Handovers,
			submitted:    tc.Submitted,
			policy:       c.effectivePolicy(tc.Task),
		}
		c.tasks[id] = ts
		c.stats.Adopted.Inc()
		adopted++
		c.launch(ts)
	}
	for _, po := range mm.Parked {
		id := po.Task.ID
		if _, dup := c.applied[id]; dup {
			c.stats.Deduped.Inc()
			continue
		}
		// The rival finished this task but never applied it; apply here
		// (the submitter callback could not cross the wire). If we run
		// our own copy of the task, retire it — its outcome is decided.
		if ts, live := c.tasks[id]; live {
			c.node.Kernel().Cancel(ts.timeout)
			for _, slot := range ts.replicas {
				c.node.Kernel().Cancel(slot.timeout)
			}
			c.releaseQueue(ts)
			delete(c.tasks, id)
		}
		e := &parkedEntry{po: po, replicas: len(po.Voters), hasPolicy: po.Task.Depend != nil}
		e.po.Seq = c.ckptSeq + 1
		if c.cfg.Failover && len(c.armed) > 0 {
			c.parked = append(c.parked, e)
		} else {
			c.applyEntry(e)
		}
	}
	// Re-drive adopted DAGs: stages whose tasks died with the abdicator
	// go back to Waiting and are re-dispatched under the merged epoch.
	c.dagResume()
	// Bump past both generations and re-advertise: members re-accept
	// leadership under a counter no other controller has ever claimed,
	// keeping "at most one controller accepted per epoch" sound.
	top := c.epoch.Counter
	if mm.Epoch.Counter > top {
		top = mm.Epoch.Counter
	}
	c.epoch = NextEpoch(top, self)
	c.cfg.Trace.Emit(now, trace.CatCloud, int32(self),
		"merged rival %v from %d: %d members, %d tasks adopted, now %v",
		mm.Epoch, msg.Origin, len(mm.Members), adopted, c.epoch)
	// Partition heal is when storage placements are most skewed: both
	// sides churned independently. Repair under the merged epoch — the
	// anti-entropy pass for data, mirroring the task-table merge above.
	c.repairStorage()
	c.advertise()
}
