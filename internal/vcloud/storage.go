// Storage integration: the controller as the data-service coordinator
// (ISSUE 6). The vehicular data-storage service of internal/store needs
// a window onto the churning cluster — who the members are, who is
// reachable, how long each is predicted to stay, and the fencing epoch
// — and a driver for churn-triggered repair. Both live here:
//
//   - StorageView adapts the controller's membership table, dwell
//     estimator and epoch into a store.View, so a backend built over it
//     places copies on live members, dwell-weighted, and fences every
//     operation with the controller's epoch.
//
//   - AttachStorage registers a backend for churn-driven repair: member
//     expiry (silent past MemberTTL) and graceful leave trigger a repair
//     pass, and a partition-heal merge (the PR 3 anti-entropy path)
//     repairs under the merged epoch — the moment two clusters reunite
//     is exactly when placements are most skewed.
//
// The deployment (DeployConfig.Storage) re-attaches the backend on
// standby promotion, so the service keeps repairing across failovers.
package vcloud

import (
	"math"

	"vcloud/internal/store"
	"vcloud/internal/vnet"
)

// storageBackend is the attached data-service contract (an alias keeps
// controller.go free of the store import).
type storageBackend = store.Backend

// AttachStorage registers the storage backend this controller drives:
// membership churn (expiry, leave) and partition-heal merges trigger
// repair passes fenced at the controller's epoch, and a graceful leave
// forgets the leaver's copies (it departed for good, taking its disk
// with it). Pass nil to detach.
func (c *Controller) AttachStorage(b store.Backend) { c.storage = b }

// StorageView returns the controller's cluster view for a storage
// backend: members are the live membership table, online means heard
// from within MemberTTL, dwell comes from the scheduler's estimator,
// and the epoch is the controller's fencing counter.
func (c *Controller) StorageView() store.View {
	return store.FuncView{
		MembersFn: c.Members,
		OnlineFn: func(a vnet.Addr) bool {
			m, ok := c.members[a]
			if !ok {
				return false
			}
			return c.node.Kernel().Now()-m.lastSeen <= c.cfg.MemberTTL
		},
		DwellFn: func(a vnet.Addr) float64 {
			if c.cfg.Dwell == nil {
				return math.Inf(1)
			}
			return c.cfg.Dwell(a)
		},
		EpochFn: func() uint64 { return c.epoch.Counter },
	}
}

// repairStorage runs one fenced repair pass on the attached backend.
func (c *Controller) repairStorage() {
	if c.storage == nil {
		return
	}
	c.storage.Repair(store.RepairReq{Epoch: c.epoch.Counter})
}

// forgetStorage drops a departed member's copies and re-replicates.
func (c *Controller) forgetStorage(a vnet.Addr) {
	if c.storage == nil {
		return
	}
	c.storage.Forget(a)
	c.repairStorage()
}
