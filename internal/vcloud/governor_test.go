package vcloud_test

import (
	"testing"
	"time"

	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
)

// fakeBackend accepts every submission and completes it after a fixed
// latency.
type fakeBackend struct {
	name    string
	kernel  *sim.Kernel
	latency sim.Time
	taken   int
}

func (f *fakeBackend) Name() string { return f.name }

func (f *fakeBackend) Submit(task vcloud.Task, done func(vcloud.TaskResult)) error {
	f.taken++
	f.kernel.After(f.latency, func() {
		if done != nil {
			done(vcloud.TaskResult{ID: task.ID, OK: true, Latency: f.latency})
		}
	})
	return nil
}

// blackHoleBackend accepts submissions and never calls back — the lost-
// in-flight case the governor's slot-release guard exists for.
type blackHoleBackend struct{ taken int }

func (b *blackHoleBackend) Name() string { return "hole" }
func (b *blackHoleBackend) Submit(vcloud.Task, func(vcloud.TaskResult)) error {
	b.taken++
	return nil
}

// estSource is a settable EstimateSource.
type estSource struct {
	bps   float64
	loss  float64
	queue sim.Time
}

func (s *estSource) EstimateBps() float64 { return s.bps }
func (s *estSource) LossRate() float64    { return s.loss }
func (s *estSource) QueueDelay() sim.Time { return s.queue }

func newGovernor(t *testing.T, k *sim.Kernel, stats *vcloud.Stats, cfg vcloud.GovernorConfig) *vcloud.Governor {
	t.Helper()
	g, err := vcloud.NewGovernor(k, cfg, stats)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The governor routes around a congested tier: when the cloud tier's
// live estimate collapses, work moves to the vehicle tier even though
// the cloud's nameplate figures look better.
func TestGovernorAdaptsToCongestion(t *testing.T) {
	k := sim.NewKernel(1)
	stats := &vcloud.Stats{}
	cloud := &fakeBackend{name: "cloud", kernel: k, latency: 50 * time.Millisecond}
	veh := &fakeBackend{name: "vehicle", kernel: k, latency: 200 * time.Millisecond}
	src := &estSource{bps: 20e6} // healthy uplink
	g := newGovernor(t, k, stats, vcloud.GovernorConfig{
		Tiers: []vcloud.GovernorTier{
			// Cloud: huge CPU, network-bound. Vehicle: modest CPU, free net.
			{Tier: vcloud.TierCloud, Backend: cloud, CPU: 1e6, NominalBps: 20e6, BaseRTT: 60 * time.Millisecond, Sender: nil, Estimates: func() (vcloud.TierEstimate, bool) {
				return vcloud.TierEstimate{Bps: src.bps, Loss: src.loss, QueueDelay: src.queue, Seq: 1}, true
			}},
			{Tier: vcloud.TierVehicle, Backend: veh, CPU: 5e4},
		},
	})
	task := vcloud.Task{Ops: 10_000, InputBytes: 200_000, OutputBytes: 50_000}
	if err := g.Submit(task, nil); err != nil {
		t.Fatal(err)
	}
	if cloud.taken != 1 {
		t.Fatalf("healthy uplink: cloud took %d, want 1", cloud.taken)
	}
	// Congestion collapse: 100 kbps, heavy loss, deep queue. 2 Mbit of
	// payload now takes ~25 s over the uplink vs 0.2 s locally — far
	// past any hysteresis band.
	src.bps, src.loss, src.queue = 100e3, 0.3, 2*time.Second
	if err := g.Submit(task, nil); err != nil {
		t.Fatal(err)
	}
	if veh.taken != 1 {
		t.Fatalf("congested uplink: vehicle took %d, want 1 (cloud %d)", veh.taken, cloud.taken)
	}
	if stats.TierSwitches.Value() != 1 {
		t.Errorf("tier switches = %d, want 1", stats.TierSwitches.Value())
	}
}

// Hysteresis: a marginally better rival does not flip placement; the
// preferred tier keeps the work until the gap exceeds the factor.
func TestGovernorHysteresis(t *testing.T) {
	k := sim.NewKernel(1)
	stats := &vcloud.Stats{}
	a := &fakeBackend{name: "a", kernel: k, latency: time.Millisecond}
	b := &fakeBackend{name: "b", kernel: k, latency: time.Millisecond}
	// Tier B is always slightly (but < 25%) faster than A.
	g := newGovernor(t, k, stats, vcloud.GovernorConfig{
		Hysteresis: 1.25,
		Tiers: []vcloud.GovernorTier{
			{Tier: vcloud.TierVehicle, Backend: a, CPU: 1000},
			{Tier: vcloud.TierEdge, Backend: b, CPU: 1100},
		},
	})
	task := vcloud.Task{Ops: 100}
	for i := 0; i < 10; i++ {
		if err := g.Submit(task, nil); err != nil {
			t.Fatal(err)
		}
		k.Run(k.Now() + 10*time.Millisecond)
	}
	// First placement goes to the genuinely best tier (B); afterwards a
	// <25% edge must never trigger a switch.
	if stats.TierSwitches.Value() != 0 {
		t.Errorf("tier switches = %d, want 0 (flapping)", stats.TierSwitches.Value())
	}
	if b.taken != 10 || a.taken != 0 {
		t.Errorf("placements a=%d b=%d, want all on b", a.taken, b.taken)
	}
}

// Admission control: a deadline no tier can make is rejected up front
// with ReasonAdmission instead of burning bandwidth.
func TestGovernorAdmission(t *testing.T) {
	k := sim.NewKernel(1)
	stats := &vcloud.Stats{}
	be := &fakeBackend{name: "slow", kernel: k, latency: time.Second}
	g := newGovernor(t, k, stats, vcloud.GovernorConfig{
		Tiers: []vcloud.GovernorTier{{Tier: vcloud.TierVehicle, Backend: be, CPU: 100}},
	})
	var got vcloud.TaskResult
	// 10k ops at 100 ops/s = 100 s >> 1 s deadline.
	err := g.Submit(vcloud.Task{Ops: 10_000, Deadline: time.Second}, func(r vcloud.TaskResult) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	if got.OK || got.Reason != vcloud.ReasonAdmission {
		t.Errorf("result = %+v, want ReasonAdmission", got)
	}
	if be.taken != 0 {
		t.Error("admission-rejected task reached the backend")
	}
	if stats.AdmissionRejects.Value() != 1 {
		t.Errorf("AdmissionRejects = %d, want 1", stats.AdmissionRejects.Value())
	}
}

// Backpressure and shedding: a full tier bounces required work with
// ReasonBackpressure; optional work is shed earlier (at the utilization
// threshold) with ReasonShed.
func TestGovernorBackpressureAndShedding(t *testing.T) {
	k := sim.NewKernel(1)
	stats := &vcloud.Stats{}
	hole := &blackHoleBackend{}
	g := newGovernor(t, k, stats, vcloud.GovernorConfig{
		ShedUtilization: 0.8,
		Tiers:           []vcloud.GovernorTier{{Tier: vcloud.TierVehicle, Backend: hole, CPU: 1e6, QueueLimit: 10}},
	})
	task := vcloud.Task{Ops: 100}
	reasons := map[vcloud.FailReason]int{}
	record := func(r vcloud.TaskResult) {
		if !r.OK {
			reasons[r.Reason]++
		}
	}
	// Fill to just below the shed threshold with required work.
	for i := 0; i < 8; i++ {
		if err := g.Submit(task, record); err != nil {
			t.Fatal(err)
		}
	}
	if g.Outstanding(0) != 8 {
		t.Fatalf("outstanding = %d, want 8", g.Outstanding(0))
	}
	// At 80% utilization optional work sheds...
	opt := task
	opt.Optional = true
	if err := g.Submit(opt, record); err != nil {
		t.Fatal(err)
	}
	if reasons[vcloud.ReasonShed] != 1 {
		t.Fatalf("optional work not shed at threshold: %v", reasons)
	}
	// ...while required work still lands until the hard limit...
	for i := 0; i < 2; i++ {
		if err := g.Submit(task, record); err != nil {
			t.Fatal(err)
		}
	}
	if g.Outstanding(0) != 10 {
		t.Fatalf("outstanding = %d, want 10 (at limit)", g.Outstanding(0))
	}
	// ...and past it, required work bounces with backpressure.
	if err := g.Submit(task, record); err != nil {
		t.Fatal(err)
	}
	if reasons[vcloud.ReasonBackpressure] != 1 {
		t.Fatalf("full queue did not backpressure: %v", reasons)
	}
	if stats.Shed.Value() != 1 || stats.Backpressured.Value() != 1 {
		t.Errorf("Shed=%d Backpressured=%d, want 1/1", stats.Shed.Value(), stats.Backpressured.Value())
	}
	// The outstanding count never exceeded the bound.
	if g.Outstanding(0) > g.QueueLimit(0) {
		t.Errorf("outstanding %d exceeds limit %d", g.Outstanding(0), g.QueueLimit(0))
	}
	// Slot-release guard: the black-hole backend never calls back, but
	// the guard timeout eventually frees the slots.
	if err := k.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if g.Outstanding(0) != 0 {
		t.Errorf("outstanding = %d after guard window, want 0", g.Outstanding(0))
	}
}

// The estimate plane end-to-end: a member with an attached feed reports
// live channel conditions up to its controller, and the estimate table
// rides checkpoints so a successor inherits the congestion view.
func TestEstimateFeedAndCheckpoint(t *testing.T) {
	s := parkingScenario(t, 5)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	src := &estSource{bps: 3.5e6, loss: 0.07, queue: 400 * time.Millisecond}
	attached := 0
	for _, m := range d.Members {
		m.AddEstimateFeed(vcloud.EstimateFeed{Tier: vcloud.TierCloud, Source: src})
		attached++
		break
	}
	if attached == 0 {
		t.Fatal("no member to attach a feed to")
	}
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	gate := d.Controllers[0]
	e, ok := gate.TierEstimateFor(vcloud.TierCloud)
	if !ok {
		t.Fatal("controller has no cloud-tier estimate after feed reports")
	}
	if e.Bps != src.bps || e.Loss != src.loss || e.QueueDelay != src.queue {
		t.Errorf("estimate = %+v, want feed values %+v", e, *src)
	}
	if stats.EstimateReports.Value() == 0 {
		t.Error("EstimateReports counter not incremented")
	}
	// The congestion view replicates: a checkpoint carries the table.
	ck := gate.Checkpoint()
	if ck.Estimates[vcloud.TierCloud].Bps != src.bps {
		t.Errorf("checkpoint cloud estimate Bps = %v, want %v", ck.Estimates[vcloud.TierCloud].Bps, src.bps)
	}
	// And the unreported tiers stay empty.
	if _, ok := gate.TierEstimateFor(vcloud.TierEdge); ok {
		t.Error("edge tier reports an estimate no feed produced")
	}
}
