package vcloud_test

import (
	"slices"
	"testing"
	"time"

	"vcloud/internal/faults"
	"vcloud/internal/scenario"
	"vcloud/internal/store"
	"vcloud/internal/vcloud"
	"vcloud/internal/vnet"
)

// storeHarness bundles the deployed cloud and its attached backend.
type storeHarness struct {
	s      *scenario.Scenario
	d      *vcloud.Deployment
	ctl    *vcloud.Controller
	b      *store.Replicated
	sstats *store.Stats
	inj    *faults.Injector
}

// attachStore deploys a stationary cloud and attaches a strict-quorum
// replicated backend driven by the controller's view.
func attachStore(t *testing.T, vehicles int) storeHarness {
	t.Helper()
	s := parkingScenario(t, vehicles)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	ctl := d.Controllers[0]
	sstats := &store.Stats{}
	b, err := store.NewReplicated(store.Config{N: 3, W: 2, R: 2}, ctl.StorageView(), sstats)
	if err != nil {
		t.Fatal(err)
	}
	ctl.AttachStorage(b)
	inj, err := faults.NewInjector(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inj.Close)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ctl.NumMembers() < 8 {
		t.Fatalf("members = %d, want most of %d", ctl.NumMembers(), vehicles)
	}
	return storeHarness{s: s, d: d, ctl: ctl, b: b, sstats: sstats, inj: inj}
}

// TestStorageChurnRepair: a member that goes silent past MemberTTL is
// expired by the controller's tick, which must immediately run a repair
// pass so its copies are re-replicated onto surviving members.
func TestStorageChurnRepair(t *testing.T) {
	h := attachStore(t, 12)
	keys := []store.Key{"logs/a", "logs/b", "maps/tile-7", "maps/tile-8", "video/clip"}
	for _, k := range keys {
		ack := store.PutSized(h.b, "writer", k, 64<<10)
		if !ack.Acked {
			t.Fatalf("write %q not acked", k)
		}
		if len(h.b.Holders(k)) != 3 {
			t.Fatalf("holders(%q) = %d, want 3", k, len(h.b.Holders(k)))
		}
	}
	victim := h.b.Holders(keys[0])[0]
	h.inj.CrashNode(victim)
	// TTL is 3 s by default; run well past it so the tick expires the
	// member and the expiry-driven repair pass lands.
	if err := h.s.RunFor(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if slices.Contains(h.ctl.Members(), victim) {
		t.Fatal("crashed member not expired from membership")
	}
	for _, k := range keys {
		hs := h.b.Holders(k)
		if slices.Contains(hs, victim) {
			t.Errorf("holders(%q) still lists crashed member %d", k, victim)
		}
		if len(hs) != 3 {
			t.Errorf("holders(%q) = %d after repair, want 3", k, len(hs))
		}
		if _, ok := store.Get(h.b, "reader", k); !ok {
			t.Errorf("read %q failed after churn repair", k)
		}
	}
	if h.sstats.ReReplicas.Value() == 0 {
		t.Error("expiry did not trigger re-replication")
	}
}

// TestStorageLeaveForgets: a graceful leave is a permanent departure —
// the controller must forget the leaver's copies (its disk left with it)
// and re-replicate in the same breath.
func TestStorageLeaveForgets(t *testing.T) {
	h := attachStore(t, 12)
	ack := store.PutSized(h.b, "writer", "cargo", 32<<10)
	if !ack.Acked {
		t.Fatal("write not acked")
	}
	var leaver *vcloud.Member
	for _, m := range h.d.Members {
		if slices.Contains(h.b.Holders("cargo"), m.Addr()) {
			leaver = m
			break
		}
	}
	if leaver == nil {
		t.Fatal("no member object found among holders")
	}
	leaver.Leave()
	leaver.Stop() // stop advertising, or it would immediately rejoin
	if err := h.s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if slices.Contains(h.ctl.Members(), leaver.Addr()) {
		t.Fatal("leaver still in membership")
	}
	hs := h.b.Holders("cargo")
	if slices.Contains(hs, leaver.Addr()) {
		t.Errorf("holders still list leaver %d after graceful leave", leaver.Addr())
	}
	if len(hs) != 3 {
		t.Errorf("holders = %d after leave repair, want 3", len(hs))
	}
	if _, ok := store.Get(h.b, "reader", "cargo"); !ok {
		t.Error("read failed after leave repair")
	}
	if h.sstats.ReReplicas.Value() == 0 {
		t.Error("leave did not trigger re-replication")
	}
}

// TestStorageViewTracksController pins the view adapter: members mirror
// the membership table, all live members are online, and dwell is finite
// for vehicles when an estimator is wired (stationary deploys wire one).
func TestStorageViewTracksController(t *testing.T) {
	h := attachStore(t, 10)
	v := h.ctl.StorageView()
	got := v.Members()
	want := h.ctl.Members()
	if !slices.Equal(got, want) {
		t.Fatalf("view members %v != controller members %v", got, want)
	}
	for _, a := range want {
		if !v.Online(a) {
			t.Errorf("member %d not online in view", a)
		}
		if v.Dwell(a) <= 0 {
			t.Errorf("dwell(%d) = %v, want positive", a, v.Dwell(a))
		}
	}
	if v.Online(vnet.Addr(9999)) {
		t.Error("unknown address reported online")
	}
	if v.Epoch() != 0 {
		t.Errorf("unfenced deployment epoch = %d, want 0", v.Epoch())
	}
}
