// Checkpoint wire codec. PR 1 replicated checkpoints as in-memory Go
// values; a truncated or corrupted replica could therefore never be
// detected, and a standby could in principle promote itself into a
// garbage state. The codec makes the failure mode explicit: checkpoints
// cross the (simulated) wire as a versioned, length-checked binary
// encoding, and DecodeCheckpoint rejects anything malformed with an
// error instead of yielding a partially-filled struct. The fuzz test in
// ckptcodec_test.go drives arbitrary mutations through the decoder.
package vcloud

import (
	"encoding/binary"
	"fmt"
	"math"

	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// ckptMagic identifies encoded checkpoints; the trailing byte is the
// format version.
var ckptMagic = [4]byte{'V', 'C', 'P', 3}

// Decoder sanity caps: a checkpoint exceeding these is rejected as
// corrupt. They sit far above anything a simulated cloud produces.
const (
	ckptMaxMembers = 1 << 14
	ckptMaxTasks   = 1 << 16
	ckptMaxSensors = 64
	ckptMaxString  = 1 << 10
	ckptMaxVoters  = 1 << 12
	ckptMaxLedger  = 1 << 16
	ckptMaxJobs    = 1 << 12
	ckptMaxStages  = 1 << 10
)

type ckptWriter struct{ buf []byte }

func (w *ckptWriter) u8(v uint8) { w.buf = append(w.buf, v) }
func (w *ckptWriter) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *ckptWriter) u16(v uint16)     { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *ckptWriter) u32(v uint32)     { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *ckptWriter) u64(v uint64)     { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *ckptWriter) i64(v int64)      { w.u64(uint64(v)) }
func (w *ckptWriter) f64(v float64)    { w.u64(math.Float64bits(v)) }
func (w *ckptWriter) addr(a vnet.Addr) { w.i64(int64(a)) }
func (w *ckptWriter) str(s string) {
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

type ckptReader struct {
	buf []byte
	off int
	err error
}

func (r *ckptReader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("vcloud: corrupt checkpoint: "+format, args...)
	}
}

func (r *ckptReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("truncated at byte %d (want %d more)", r.off, n)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *ckptReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *ckptReader) bool() bool { return r.u8() != 0 }

func (r *ckptReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *ckptReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *ckptReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *ckptReader) i64() int64      { return int64(r.u64()) }
func (r *ckptReader) f64() float64    { return math.Float64frombits(r.u64()) }
func (r *ckptReader) addr() vnet.Addr { return vnet.Addr(r.i64()) }

func (r *ckptReader) str() string {
	n := int(r.u16())
	if n > ckptMaxString {
		r.fail("string length %d exceeds cap", n)
		return ""
	}
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// count reads a u32 collection length and bounds it.
func (r *ckptReader) count(what string, max int) int {
	n := int(r.u32())
	if n > max {
		r.fail("%s count %d exceeds cap %d", what, n, max)
		return 0
	}
	return n
}

func writePolicy(w *ckptWriter, p *DependabilityPolicy) {
	if p == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.i64(int64(p.Replicas))
	w.i64(int64(p.MaxRetries))
	w.i64(int64(p.RetryBackoff))
	w.f64(p.BackoffJitter)
	w.i64(int64(p.AttemptTimeout))
	w.f64(p.TrustThreshold)
	w.bool(p.TrustWeighted)
}

func readPolicy(r *ckptReader) *DependabilityPolicy {
	if !r.bool() {
		return nil
	}
	p := &DependabilityPolicy{
		Replicas:       int(r.i64()),
		MaxRetries:     int(r.i64()),
		RetryBackoff:   sim.Time(r.i64()),
		BackoffJitter:  r.f64(),
		AttemptTimeout: sim.Time(r.i64()),
		TrustThreshold: r.f64(),
		TrustWeighted:  r.bool(),
	}
	if r.err == nil {
		if err := p.Validate(); err != nil {
			r.fail("invalid policy: %v", err)
		}
	}
	return p
}

func writeTask(w *ckptWriter, t Task) {
	w.u64(uint64(t.ID))
	w.f64(t.Ops)
	w.i64(int64(t.InputBytes))
	w.i64(int64(t.OutputBytes))
	w.i64(int64(t.Deadline))
	w.str(t.NeedsSensor)
	w.bool(t.Optional)
	writePolicy(w, t.Depend)
	if t.Stage == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.u64(uint64(t.Stage.Job))
	w.i64(int64(t.Stage.Stage))
	w.i64(int64(t.Stage.OutputBytes))
	w.u32(uint32(len(t.Stage.Inputs)))
	for _, in := range t.Stage.Inputs {
		w.i64(int64(in.Stage))
		w.i64(int64(in.Bytes))
		w.u32(uint32(len(in.Sources)))
		for _, s := range in.Sources {
			w.addr(s)
		}
	}
}

func readTask(r *ckptReader) Task {
	t := Task{
		ID:          TaskID(r.u64()),
		Ops:         r.f64(),
		InputBytes:  int(r.i64()),
		OutputBytes: int(r.i64()),
		Deadline:    sim.Time(r.i64()),
		NeedsSensor: r.str(),
	}
	t.Optional = r.bool()
	t.Depend = readPolicy(r)
	if r.bool() {
		b := &StageBinding{
			Job:         JobID(r.u64()),
			Stage:       int(r.i64()),
			OutputBytes: int(r.i64()),
		}
		for i, n := 0, r.count("stage input", ckptMaxStages); i < n && r.err == nil; i++ {
			in := StageInput{Stage: int(r.i64()), Bytes: int(r.i64())}
			for j, ns := 0, r.count("input source", ckptMaxVoters); j < ns && r.err == nil; j++ {
				in.Sources = append(in.Sources, r.addr())
			}
			b.Inputs = append(b.Inputs, in)
		}
		t.Stage = b
	}
	if r.err == nil {
		if err := t.Validate(); err != nil {
			r.fail("invalid task %d: %v", t.ID, err)
		}
	}
	return t
}

func writeJob(w *ckptWriter, jc JobCheckpoint) {
	w.u64(uint64(jc.ID))
	w.addr(jc.Client)
	w.i64(int64(jc.Submitted))
	w.i64(int64(jc.Restarts))
	w.f64(jc.Wasted)
	s := jc.Spec
	w.u32(uint32(len(s.Stages)))
	for _, st := range s.Stages {
		w.str(st.Name)
		w.f64(st.Ops)
		w.i64(int64(st.InputBytes))
		w.i64(int64(st.OutputBytes))
		w.str(st.NeedsSensor)
		w.u32(uint32(len(st.Deps)))
		for _, d := range st.Deps {
			w.i64(int64(d))
		}
		w.bool(st.Optional)
	}
	w.i64(int64(s.ReplicaBudget))
	w.bool(s.ReplicateAll)
	w.i64(int64(s.StageRetries))
	w.i64(int64(s.TaskRetries))
	w.i64(int64(s.RetryBackoff))
	w.i64(int64(s.Deadline))
	w.bool(s.WholeJobRestart)
	w.i64(int64(s.JobRestarts))
	w.u32(uint32(len(jc.Stages)))
	for _, sc := range jc.Stages {
		w.u8(uint8(sc.Status))
		w.u64(sc.Value)
		w.i64(int64(sc.Retries))
		w.u64(uint64(sc.TaskID))
		w.u32(uint32(len(sc.Holders)))
		for _, h := range sc.Holders {
			w.addr(h)
		}
	}
}

func readJob(r *ckptReader) JobCheckpoint {
	jc := JobCheckpoint{
		ID:        JobID(r.u64()),
		Client:    r.addr(),
		Submitted: sim.Time(r.i64()),
		Restarts:  int(r.i64()),
		Wasted:    r.f64(),
	}
	for i, n := 0, r.count("job stage", ckptMaxStages); i < n && r.err == nil; i++ {
		st := StageSpec{
			Name:        r.str(),
			Ops:         r.f64(),
			InputBytes:  int(r.i64()),
			OutputBytes: int(r.i64()),
			NeedsSensor: r.str(),
		}
		for j, nd := 0, r.count("stage dep", ckptMaxStages); j < nd && r.err == nil; j++ {
			st.Deps = append(st.Deps, int(r.i64()))
		}
		st.Optional = r.bool()
		jc.Spec.Stages = append(jc.Spec.Stages, st)
	}
	jc.Spec.ReplicaBudget = int(r.i64())
	jc.Spec.ReplicateAll = r.bool()
	jc.Spec.StageRetries = int(r.i64())
	jc.Spec.TaskRetries = int(r.i64())
	jc.Spec.RetryBackoff = sim.Time(r.i64())
	jc.Spec.Deadline = sim.Time(r.i64())
	jc.Spec.WholeJobRestart = r.bool()
	jc.Spec.JobRestarts = int(r.i64())
	if r.err == nil {
		if err := jc.Spec.Validate(); err != nil {
			r.fail("invalid job %d spec: %v", jc.ID, err)
		}
	}
	for i, n := 0, r.count("stage row", ckptMaxStages); i < n && r.err == nil; i++ {
		sc := StageCheckpoint{
			Status:  StageStatus(r.u8()),
			Value:   r.u64(),
			Retries: int(r.i64()),
			TaskID:  TaskID(r.u64()),
		}
		if r.err == nil && (sc.Status < StageWaiting || sc.Status > StageFailed) {
			r.fail("job %d stage %d: bad status %d", jc.ID, i, sc.Status)
			break
		}
		for j, nh := 0, r.count("holder", ckptMaxVoters); j < nh && r.err == nil; j++ {
			sc.Holders = append(sc.Holders, r.addr())
		}
		jc.Stages = append(jc.Stages, sc)
	}
	return jc
}

// EncodeCheckpoint serializes a checkpoint for replication. The
// encoding is deterministic: equal checkpoints encode to equal bytes.
func EncodeCheckpoint(ck Checkpoint) []byte {
	w := &ckptWriter{buf: make([]byte, 0, 256+48*len(ck.Members)+128*len(ck.Tasks))}
	w.buf = append(w.buf, ckptMagic[:]...)
	w.addr(ck.Controller)
	w.addr(ck.Standby)
	w.u64(ck.Seq)
	w.u64(uint64(ck.NextID))
	w.u64(uint64(ck.NextJobID))
	w.bool(ck.Emergency)
	w.i64(int64(ck.FailoverTTL))
	w.u64(ck.Epoch.Counter)
	w.addr(ck.Epoch.Claimant)

	cfg := ck.Cfg
	w.i64(int64(cfg.AdvPeriod))
	w.i64(int64(cfg.MemberTTL))
	w.f64(cfg.DwellMargin)
	w.i64(int64(cfg.RetryLimit))
	w.bool(cfg.Handover)
	w.i64(cfg.PricePerKOps)
	w.bool(cfg.Failover)
	w.i64(int64(cfg.CheckpointPeriod))
	w.i64(int64(cfg.FailoverTTL))
	w.bool(cfg.Fencing)
	writePolicy(w, cfg.Depend)

	w.u32(uint32(len(ck.Members)))
	for _, m := range ck.Members {
		w.addr(m.Addr)
		w.f64(m.Res.CPU)
		w.f64(m.Res.Storage)
		w.u16(uint16(len(m.Res.Sensors)))
		for _, s := range m.Res.Sensors {
			w.str(s)
		}
	}
	w.u32(uint32(len(ck.Tasks)))
	for _, t := range ck.Tasks {
		writeTask(w, t.Task)
		w.addr(t.Client)
		w.f64(t.RemainingOps)
		w.i64(int64(t.Retries))
		w.i64(int64(t.Handovers))
		w.i64(int64(t.Submitted))
	}
	w.u32(uint32(len(ck.Applied)))
	for _, a := range ck.Applied {
		w.u64(uint64(a.ID))
		w.u64(a.Epoch)
	}
	w.u32(uint32(len(ck.Parked)))
	for _, p := range ck.Parked {
		writeTask(w, p.Task)
		w.addr(p.Client)
		w.bool(p.OK)
		w.str(string(p.Reason))
		w.u64(p.Value)
		w.u32(uint32(len(p.Voters)))
		for _, v := range p.Voters {
			w.addr(v)
		}
		w.i64(int64(p.Retries))
		w.i64(int64(p.Handovers))
		w.i64(int64(p.Submitted))
		w.u64(p.Seq)
	}
	w.u32(uint32(len(ck.Armed)))
	for _, a := range ck.Armed {
		w.addr(a)
	}
	w.u32(uint32(len(ck.Jobs)))
	for _, jc := range ck.Jobs {
		writeJob(w, jc)
	}
	for _, e := range ck.Estimates {
		w.f64(e.Bps)
		w.f64(e.Loss)
		w.i64(int64(e.QueueDelay))
		w.u64(e.Seq)
		w.i64(int64(e.Updated))
	}
	return w.buf
}

// DecodeCheckpoint parses an encoded checkpoint, rejecting truncated or
// corrupted input with an error — a standby never promotes itself from
// garbage.
func DecodeCheckpoint(data []byte) (Checkpoint, error) {
	r := &ckptReader{buf: data}
	if m := r.take(4); m == nil || [4]byte{m[0], m[1], m[2], m[3]} != ckptMagic {
		return Checkpoint{}, fmt.Errorf("vcloud: corrupt checkpoint: bad magic/version")
	}
	var ck Checkpoint
	ck.Controller = r.addr()
	ck.Standby = r.addr()
	ck.Seq = r.u64()
	ck.NextID = TaskID(r.u64())
	ck.NextJobID = TaskID(r.u64())
	ck.Emergency = r.bool()
	ck.FailoverTTL = sim.Time(r.i64())
	ck.Epoch.Counter = r.u64()
	ck.Epoch.Claimant = r.addr()

	ck.Cfg.AdvPeriod = sim.Time(r.i64())
	ck.Cfg.MemberTTL = sim.Time(r.i64())
	ck.Cfg.DwellMargin = r.f64()
	ck.Cfg.RetryLimit = int(r.i64())
	ck.Cfg.Handover = r.bool()
	ck.Cfg.PricePerKOps = r.i64()
	ck.Cfg.Failover = r.bool()
	ck.Cfg.CheckpointPeriod = sim.Time(r.i64())
	ck.Cfg.FailoverTTL = sim.Time(r.i64())
	ck.Cfg.Fencing = r.bool()
	ck.Cfg.Depend = readPolicy(r)

	for i, n := 0, r.count("member", ckptMaxMembers); i < n && r.err == nil; i++ {
		ms := MemberSnapshot{Addr: r.addr()}
		ms.Res.CPU = r.f64()
		ms.Res.Storage = r.f64()
		ns := int(r.u16())
		if ns > ckptMaxSensors {
			r.fail("sensor count %d exceeds cap", ns)
			break
		}
		for j := 0; j < ns && r.err == nil; j++ {
			ms.Res.Sensors = append(ms.Res.Sensors, r.str())
		}
		ck.Members = append(ck.Members, ms)
	}
	for i, n := 0, r.count("task", ckptMaxTasks); i < n && r.err == nil; i++ {
		tc := TaskCheckpoint{Task: readTask(r)}
		tc.Client = r.addr()
		tc.RemainingOps = r.f64()
		tc.Retries = int(r.i64())
		tc.Handovers = int(r.i64())
		tc.Submitted = sim.Time(r.i64())
		if r.err == nil && (math.IsNaN(tc.RemainingOps) || tc.RemainingOps < 0) {
			r.fail("task %d remaining ops %v", tc.Task.ID, tc.RemainingOps)
		}
		ck.Tasks = append(ck.Tasks, tc)
	}
	for i, n := 0, r.count("ledger", ckptMaxLedger); i < n && r.err == nil; i++ {
		ck.Applied = append(ck.Applied, AppliedRecord{ID: TaskID(r.u64()), Epoch: r.u64()})
	}
	for i, n := 0, r.count("parked", ckptMaxLedger); i < n && r.err == nil; i++ {
		p := ParkedOutcome{Task: readTask(r)}
		p.Client = r.addr()
		p.OK = r.bool()
		p.Reason = FailReason(r.str())
		p.Value = r.u64()
		nv := r.count("voter", ckptMaxVoters)
		for j := 0; j < nv && r.err == nil; j++ {
			p.Voters = append(p.Voters, r.addr())
		}
		p.Retries = int(r.i64())
		p.Handovers = int(r.i64())
		p.Submitted = sim.Time(r.i64())
		p.Seq = r.u64()
		ck.Parked = append(ck.Parked, p)
	}
	for i, n := 0, r.count("armed", ckptMaxMembers); i < n && r.err == nil; i++ {
		ck.Armed = append(ck.Armed, r.addr())
	}
	for i, n := 0, r.count("job", ckptMaxJobs); i < n && r.err == nil; i++ {
		ck.Jobs = append(ck.Jobs, readJob(r))
	}
	for t := Tier(0); t < NumTiers && r.err == nil; t++ {
		e := &ck.Estimates[t]
		e.Bps = r.f64()
		e.Loss = r.f64()
		e.QueueDelay = sim.Time(r.i64())
		e.Seq = r.u64()
		e.Updated = sim.Time(r.i64())
		if r.err == nil && (math.IsNaN(e.Bps) || e.Bps < 0 || math.IsNaN(e.Loss) || e.Loss < 0 || e.Loss > 1) {
			r.fail("tier %d estimate out of range (bps %v, loss %v)", t, e.Bps, e.Loss)
		}
	}
	if r.err != nil {
		return Checkpoint{}, r.err
	}
	if r.off != len(r.buf) {
		return Checkpoint{}, fmt.Errorf("vcloud: corrupt checkpoint: %d trailing bytes", len(r.buf)-r.off)
	}
	return ck, nil
}
