package vcloud_test

import (
	"math/rand"
	"testing"
	"time"

	"vcloud/internal/auth"
	"vcloud/internal/pki"
	"vcloud/internal/vcloud"
	"vcloud/internal/vnet"
)

func newSecureRig(t *testing.T, scheme auth.Scheme) (*vcloud.SecureDeployment, *pki.TA, *vcloud.Stats, *auth.Metrics, func(d time.Duration)) {
	t.Helper()
	s := parkingScenario(t, 10)
	ta, err := pki.New("TA", rand.New(rand.NewSource(31)), pki.Config{PoolSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	stats := &vcloud.Stats{}
	met := &auth.Metrics{}
	sd, err := vcloud.DeploySecure(s, vcloud.Stationary, vcloud.DeployConfig{},
		vcloud.Security{TA: ta, Scheme: scheme, Metrics: met}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return sd, ta, stats, met, func(d time.Duration) {
		if err := s.RunFor(d); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSecureCloudMembersAuthenticateBeforeJoining(t *testing.T) {
	for _, scheme := range []auth.Scheme{auth.Pseudonym, auth.Group, auth.Hybrid} {
		t.Run(scheme.String(), func(t *testing.T) {
			sd, _, stats, met, run := newSecureRig(t, scheme)
			run(15 * time.Second)
			gate := sd.Controllers[0]
			if gate.NumMembers() < 8 {
				t.Fatalf("members = %d, want most of 10 authenticated in", gate.NumMembers())
			}
			if met.Successes.Value() < uint64(gate.NumMembers()) {
				t.Errorf("members joined (%d) without enough successful handshakes (%d)",
					gate.NumMembers(), met.Successes.Value())
			}
			// The secured cloud still computes.
			done := 0
			for i := 0; i < 5; i++ {
				if err := sd.SubmitAnywhere(vcloud.Task{Ops: 500}, func(r vcloud.TaskResult) {
					if r.OK {
						done++
					}
				}); err != nil {
					t.Fatal(err)
				}
			}
			run(30 * time.Second)
			if done != 5 {
				t.Errorf("secure cloud completed %d/5 tasks (failed=%d)", done, stats.Failed.Value())
			}
		})
	}
}

func TestSecureCloudExcludesRevokedVehicle(t *testing.T) {
	s := parkingScenario(t, 8)
	ta, err := pki.New("TA", rand.New(rand.NewSource(32)), pki.Config{PoolSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	stats := &vcloud.Stats{}
	met := &auth.Metrics{}
	sd, err := vcloud.DeploySecure(s, vcloud.Stationary, vcloud.DeployConfig{},
		vcloud.Security{TA: ta, Scheme: auth.Hybrid, Metrics: met}, stats)
	if err != nil {
		t.Fatal(err)
	}
	// Revoke vehicle 0 before the cloud forms.
	if err := ta.RevokeVehicle("veh-0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	gate := sd.Controllers[0]
	for _, m := range gate.Members() {
		if m == vnet.Addr(0) {
			t.Fatal("revoked vehicle 0 joined the secure cloud")
		}
	}
	if gate.NumMembers() < 5 {
		t.Errorf("members = %d; honest vehicles should still join", gate.NumMembers())
	}
	if met.Failures.Value() == 0 {
		t.Error("the revoked vehicle's handshakes should have been rejected")
	}
}

func TestDeploySecureValidation(t *testing.T) {
	s := parkingScenario(t, 2)
	stats := &vcloud.Stats{}
	if _, err := vcloud.DeploySecure(s, vcloud.Stationary, vcloud.DeployConfig{},
		vcloud.Security{}, stats); err == nil {
		t.Error("missing TA should error")
	}
	ta, _ := pki.New("TA", rand.New(rand.NewSource(1)), pki.Config{})
	if _, err := vcloud.DeploySecure(s, vcloud.Stationary, vcloud.DeployConfig{},
		vcloud.Security{TA: ta}, stats); err == nil {
		t.Error("missing metrics should error")
	}
}
