package vcloud_test

import (
	"testing"
	"time"

	"vcloud/internal/faults"
	"vcloud/internal/radio"
	"vcloud/internal/vcloud"
	"vcloud/internal/vnet"
)

// TestEpochAlgebra pins the fencing-token semantics: monotone
// collision-free allocation, counter-ordered supersession, and the
// deterministic abdication rule.
func TestEpochAlgebra(t *testing.T) {
	var zero vcloud.Epoch
	if !zero.Zero() {
		t.Error("zero-value epoch must be the legacy unfenced token")
	}
	e1 := vcloud.NextEpoch(0, 5)
	if e1.Zero() || e1.Round() != 1 || e1.Claimant != 5 {
		t.Errorf("NextEpoch(0, 5) = %v, want round 1 claimed by 5", e1)
	}
	if !e1.Supersedes(zero) || zero.Supersedes(e1) {
		t.Error("any claimed epoch supersedes zero, never the reverse")
	}
	// Two controllers bumping concurrently from the same base — a merge
	// racing a stale-checkpoint promotion — must mint distinct, totally
	// ordered counters.
	a := vcloud.NextEpoch(e1.Counter, 3)
	b := vcloud.NextEpoch(e1.Counter, 9)
	if a.Counter == b.Counter {
		t.Fatalf("concurrent bumps collided: %v vs %v", a, b)
	}
	if a.Round() != 2 || b.Round() != 2 {
		t.Errorf("both bumps should land in round 2: %v, %v", a, b)
	}
	if a.Supersedes(b) == b.Supersedes(a) {
		t.Error("distinct counters must be totally ordered")
	}
	// Each bump strictly supersedes its base.
	if !a.Supersedes(e1) || !b.Supersedes(e1) {
		t.Error("a bump must supersede the epoch it bumped from")
	}
	// Abdication: defer to a higher counter, never to zero or yourself.
	lo, hi := a, b
	if b.Supersedes(a) {
		lo, hi = a, b
	} else {
		lo, hi = b, a
	}
	if !lo.Defers(hi) || hi.Defers(lo) {
		t.Error("lower epoch defers to higher, not the reverse")
	}
	if lo.Defers(zero) || lo.Defers(lo) {
		t.Error("an epoch never defers to zero or to itself")
	}
}

// isolateController cuts the controller plus up to keepN of its workers
// (never its standby) off from the rest of the cloud; the returned func
// heals the cut.
func isolateController(t *testing.T, inj *faults.Injector, c *vcloud.Controller, keepN int) func() {
	t.Helper()
	keep := make([]radio.NodeID, 0, keepN)
	for _, m := range c.Members() {
		if m != c.StandbyAddr() && len(keep) < keepN {
			keep = append(keep, radio.NodeID(m))
		}
	}
	if len(keep) < keepN {
		t.Fatalf("only %d members available to keep, want %d", len(keep), keepN)
	}
	return inj.StartIsolation(radio.NodeID(c.Addr()), keep)
}

// TestSplitBrainAbdicationAndMerge is the tentpole end-to-end: isolating
// a fenced controller promotes its standby into a rival epoch; on heal
// the old controller defers, ships its state, and the survivor merges —
// with every outcome applied exactly once and the cloud converging back
// to a single controller that still takes work.
func TestSplitBrainAbdicationAndMerge(t *testing.T) {
	s := parkingScenario(t, 8)
	applies := map[vcloud.TaskID]int{}
	duplicates := 0
	maxRound := uint64(0)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
		Failover: true,
		Fencing:  true,
		OnApply: func(id vcloud.TaskID, epoch uint64, ok bool) {
			applies[id]++
			if applies[id] > 1 {
				duplicates++
			}
		},
		OnAccept: func(ctl vnet.Addr, e vcloud.Epoch) {
			if e.Round() > maxRound {
				maxRound = e.Round()
			}
		},
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	gate := d.Controllers[0]
	if !gate.Fenced() || gate.CurrentEpoch().Round() != 1 {
		t.Fatalf("gate epoch = %v, want fenced round 1", gate.CurrentEpoch())
	}
	if gate.StandbyAddr() < 0 {
		t.Fatal("no standby designated before the split")
	}

	// Long tasks in flight when the cut lands (5 s compute each).
	for i := 0; i < 4; i++ {
		if _, err := gate.Submit(vcloud.Task{Ops: 5000, InputBytes: 1000, OutputBytes: 500}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	heal := isolateController(t, inj, gate, 2)
	if err := s.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Mid-split: the standby promoted into a superseding epoch, both
	// controllers are live, and the isolated gate — cut off from the
	// standby it armed — refuses new work instead of applying outcomes
	// nobody acknowledged.
	if got := stats.Failovers.Value(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	live := d.ActiveControllers()
	if len(live) != 2 {
		t.Fatalf("active controllers mid-split = %d, want 2", len(live))
	}
	var succ *vcloud.Controller
	for _, c := range live {
		if c.Addr() != gate.Addr() {
			succ = c
		}
	}
	if succ == nil {
		t.Fatal("successor not among active controllers")
	}
	if !succ.CurrentEpoch().Supersedes(gate.CurrentEpoch()) {
		t.Errorf("successor epoch %v does not supersede gate %v", succ.CurrentEpoch(), gate.CurrentEpoch())
	}
	if _, err := gate.Submit(vcloud.Task{Ops: 500}, nil); err == nil {
		t.Error("isolated gate accepted new work on an expired lease")
	}

	heal()
	if err := s.RunFor(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Healed: the gate heard the superseding epoch, abdicated, and the
	// survivor merged its members, tasks and outcome ledger.
	if got := stats.Abdications.Value(); got != 1 {
		t.Errorf("abdications = %d, want 1", got)
	}
	if got := stats.Merges.Value(); got != 1 {
		t.Errorf("merges = %d, want 1", got)
	}
	if !gate.Stopped() {
		t.Error("abdicated gate still running")
	}
	live = d.ActiveControllers()
	if len(live) != 1 || live[0].Addr() != succ.Addr() {
		t.Fatalf("post-merge controllers = %d, want only the survivor", len(live))
	}
	// The merge bumped past both generations and re-advertised, so
	// members re-accepted under a round above the promotion's.
	if maxRound < 3 {
		t.Errorf("highest accepted round = %d, want >= 3 after the merge bump", maxRound)
	}
	if duplicates != 0 {
		t.Fatalf("%d outcomes applied twice across the split", duplicates)
	}
	// The survivor keeps working after reconciliation.
	before := stats.Completed.Value()
	if err := d.SubmitAnywhere(vcloud.Task{Ops: 500}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if stats.Completed.Value() <= before {
		t.Error("merged survivor completed no new work")
	}
}

// TestReplicaEpochFence pins the replica manager's write fence: a
// superseded controller must not mutate placements, while legacy
// (counter-zero) writers stay unfenced.
func TestReplicaEpochFence(t *testing.T) {
	stats := &vcloud.ReplicaStats{}
	rm, err := vcloud.NewReplicaManager(2, func(vnet.Addr) bool { return true }, stats)
	if err != nil {
		t.Fatal(err)
	}
	cands := []vnet.Addr{1, 2, 3}

	if !rm.Accept(0) {
		t.Error("legacy counter-zero writer must always be accepted")
	}
	e2 := vcloud.NextEpoch(vcloud.NextEpoch(0, 1).Counter, 2)
	if got := rm.StoreFenced(e2.Counter, "f1", 100, cands); got != 2 {
		t.Fatalf("fenced store at the high watermark placed %d replicas, want 2", got)
	}
	// A stale-epoch rival: every fenced mutation refused, each counted.
	e1 := vcloud.NextEpoch(0, 1)
	if got := rm.StoreFenced(e1.Counter, "f2", 100, cands); got != 0 {
		t.Errorf("stale-epoch store placed %d replicas, want refusal", got)
	}
	if got := rm.RepairFenced(e1.Counter, cands); got != 0 {
		t.Errorf("stale-epoch repair placed %d replicas, want refusal", got)
	}
	if got := stats.StaleWrites.Value(); got != 2 {
		t.Errorf("StaleWrites = %d, want 2", got)
	}
	if rm.Replicas("f2") != 0 {
		t.Error("refused store still created placements")
	}
	// Counter zero stays unfenced even after fenced writes raised the
	// watermark (legacy deployments never see refusals).
	if !rm.Accept(0) {
		t.Error("counter-zero writer refused after fenced writes")
	}
	// A higher epoch raises the watermark; the old high is now stale.
	e3 := vcloud.NextEpoch(e2.Counter, 3)
	if got := rm.StoreFenced(e3.Counter, "f3", 100, cands); got != 2 {
		t.Errorf("superseding-epoch store placed %d replicas, want 2", got)
	}
	if rm.Accept(e2.Counter) {
		t.Error("previous high watermark still accepted after supersession")
	}
}

// TestStandbyLostSurfaced is the regression test for the refreshStandby
// silent no-op: a single-worker cloud that loses its only eligible
// member must surface the standby-less transition through
// Stats.StandbyLost instead of quietly keeping a dead standby.
func TestStandbyLostSurfaced(t *testing.T) {
	s := parkingScenario(t, 1)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{Failover: true}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	gate := d.Controllers[0]
	if gate.StandbyAddr() < 0 {
		t.Fatal("single eligible member not designated standby")
	}
	if got := stats.StandbyLost.Value(); got != 0 {
		t.Fatalf("StandbyLost = %d before any loss", got)
	}
	for _, m := range d.Members {
		m.Stop()
	}
	if err := s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := stats.StandbyLost.Value(); got != 1 {
		t.Errorf("StandbyLost = %d, want exactly 1 transition", got)
	}
	if gate.StandbyAddr() >= 0 {
		t.Error("gate still designates a dead standby")
	}
}

// TestRestoreReplacesTasksBehindPartition covers the successor's view of
// a half-healed world: the controller crashes while the workers running
// its tasks sit behind a still-open partition. The promoted standby must
// re-place that work on reachable members — via dispatch timeout and
// retry — rather than hang waiting for results that can never arrive.
func TestRestoreReplacesTasksBehindPartition(t *testing.T) {
	s := parkingScenario(t, 8)
	stats := &vcloud.Stats{}
	d, err := vcloud.Deploy(s, vcloud.Stationary, vcloud.DeployConfig{
		Failover: true,
		Fencing:  true,
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	gate := d.Controllers[0]
	for i := 0; i < 2; i++ {
		if _, err := gate.Submit(vcloud.Task{Ops: 8000}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Let a checkpoint round replicate the in-flight table (period
	// 2×AdvPeriod) before the crash; the 8 s tasks are still running.
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Cut every worker currently running a task — except the standby,
	// which must stay reachable to promote — off from the cloud; the
	// partition stays open for the whole test.
	var behind []radio.NodeID
	for _, m := range d.Members {
		if m.Running() > 0 && m.Addr() != gate.StandbyAddr() {
			behind = append(behind, radio.NodeID(m.Addr()))
		}
	}
	if len(behind) == 0 {
		t.Skip("only the standby was running tasks in this seeding")
	}
	_ = inj.StartIsolation(behind[0], behind[1:])
	gate.Crash()
	if err := s.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}

	if got := stats.Failovers.Value(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if stats.Resumed.Value() == 0 {
		t.Fatal("successor resumed no checkpointed tasks")
	}
	// The partitioned assignees never answered, so completion proves the
	// successor timed the dispatches out and re-placed them.
	if stats.Completed.Value() < 2 {
		t.Errorf("completed = %d, want both orphaned tasks re-placed and finished (retries=%d)",
			stats.Completed.Value(), stats.Retries.Value())
	}
	live := d.ActiveControllers()
	if len(live) != 1 {
		t.Fatalf("active controllers = %d, want 1", len(live))
	}
	if live[0].PendingTasks() != 0 {
		t.Errorf("%d tasks still pending: successor hung on partitioned workers", live[0].PendingTasks())
	}
}
