// Controller failover: the dependability mechanism that lets a vehicular
// cloud survive the loss of its coordinator (§V.A — the management plane
// must outlive any single node). The running controller periodically
// replicates a checkpoint — its membership snapshot plus the in-flight
// task table — to a designated standby member; when the controller's
// advertisements go silent past FailoverTTL, the standby promotes itself
// to controller, re-advertises, and resumes every checkpointed task from
// its last known RemainingOps instead of losing it.
//
// Closures cannot cross the (simulated) wire, so a restored task loses
// its submitter callback and the config's function hooks (dwell
// estimator, join gate, ledger, trace); completions still count in the
// shared Stats, which is what the E11 experiment measures. Work executed
// by the old assignee after the last checkpoint is re-executed — the
// cost of checkpoint staleness, bounded by CheckpointPeriod.
package vcloud

import (
	"fmt"
	"sort"

	"vcloud/internal/sim"
	"vcloud/internal/trace"
	"vcloud/internal/vnet"
)

// MemberSnapshot is one membership row inside a checkpoint.
type MemberSnapshot struct {
	Addr vnet.Addr
	Res  Resources
}

// TaskCheckpoint is one in-flight task inside a checkpoint: everything
// the standby needs to resume the task from its last known progress.
type TaskCheckpoint struct {
	Task         Task
	Client       vnet.Addr
	RemainingOps float64
	Retries      int
	Handovers    int
	Submitted    sim.Time
}

// StageCheckpoint is one stage row inside a JobCheckpoint. Topological
// order and the replica allocation are NOT checkpointed — they are pure
// functions of the spec, recomputed identically on restore.
type StageCheckpoint struct {
	Status  StageStatus
	Value   uint64
	Retries int
	// TaskID names the live underlying task of a running stage; a
	// successor whose task table lacks it resets the stage to waiting
	// and re-dispatches (see dagResume).
	TaskID  TaskID
	Holders []vnet.Addr
}

// JobCheckpoint is one in-flight DAG job inside a checkpoint or merge
// message: the spec plus per-stage progress, so a successor resumes the
// job from its completed stages instead of restarting it.
type JobCheckpoint struct {
	ID        JobID
	Client    vnet.Addr
	Submitted sim.Time
	Restarts  int
	Wasted    float64
	Spec      JobSpec
	Stages    []StageCheckpoint
}

// Checkpoint is the replicated controller state — the Snapshot()
// membership view extended with the in-flight task table and the
// counters a successor needs (§V.A "recover the snapshot of the
// topology", made crash-proof).
type Checkpoint struct {
	// Controller is the checkpointing controller's address.
	Controller vnet.Addr
	// Standby is the member this checkpoint designates.
	Standby vnet.Addr
	// Seq increases with every checkpoint sent.
	Seq uint64
	// NextID continues the task-ID sequence without collisions.
	NextID TaskID
	// NextJobID continues the job-ID sequence without collisions.
	NextJobID TaskID
	// Emergency carries the management-plane flag across failover.
	Emergency bool
	// FailoverTTL is how long the standby tolerates advertisement silence
	// before promoting itself.
	FailoverTTL sim.Time
	// Cfg is the controller configuration with function hooks stripped
	// (closures do not survive replication).
	Cfg ControllerConfig
	// Members is the membership snapshot in ascending address order.
	Members []MemberSnapshot
	// Tasks is the in-flight task table in ascending task-ID order.
	Tasks []TaskCheckpoint
	// Epoch is the checkpointing controller's fencing token (zero when
	// unfenced); a successor promotes itself at a strictly higher
	// counter.
	Epoch Epoch
	// Applied is the (task, epoch) ledger of already-applied outcomes;
	// a successor seeds its own ledger from it so no outcome is applied
	// twice across epochs.
	Applied []AppliedRecord
	// Parked holds outcomes finished but not yet applied (apply-after-ack,
	// see merge.go). Acknowledging this checkpoint licenses the
	// controller to apply them, so a successor promoting from it must
	// treat them as applied — they seed the ledger, not the task table.
	Parked []ParkedOutcome
	// Armed lists every standby the controller has replicated state to
	// that has not disarmed — each could promote a sibling successor
	// holding this same task table. A successor inherits these arming
	// obligations (minus itself): it parks its own outcomes until each
	// sibling disarms or the epoch battle resolves, so two sibling
	// successors never both apply one task's outcome.
	Armed []vnet.Addr
	// Jobs is the in-flight DAG job table in ascending job-ID order; a
	// successor resumes each job from its checkpointed stage progress.
	Jobs []JobCheckpoint
	// Estimates is the per-tier congestion table (estimates.go); a
	// successor inherits the live bandwidth view instead of placing
	// blind until the next report cycle.
	Estimates [NumTiers]TierEstimate
}

// ckptMsg replicates a checkpoint to the standby as encoded bytes: the
// standby decodes and validates before accepting the standby role, so a
// truncated or corrupted checkpoint is rejected with an error instead
// of promoting garbage.
type ckptMsg struct {
	Data []byte
}

// Checkpoint builds the controller's current replicable state.
func (c *Controller) Checkpoint() Checkpoint {
	cfg := c.cfg
	// Function hooks and local pointers cannot cross the wire; the
	// successor runs without them. Workers holds a clock closure and
	// accumulated evidence, so the successor starts with a fresh trust
	// view (its own vote outcomes rebuild it); the Depend policy is pure
	// data and survives, so restored tasks stay replicated.
	cfg.Dwell = nil
	cfg.AcceptJoin = nil
	cfg.Ledger = nil
	cfg.Trace = nil
	cfg.Workers = nil
	cfg.OnApply = nil
	cfg.OnAbdicate = nil
	ck := Checkpoint{
		Controller:  c.node.Addr(),
		Standby:     c.standby,
		Seq:         c.ckptSeq,
		NextID:      c.nextID,
		NextJobID:   c.nextJobID,
		Emergency:   c.emergency,
		FailoverTTL: c.cfg.FailoverTTL,
		Cfg:         cfg,
		Epoch:       c.epoch,
		Applied:     c.exportLedger(),
		Parked:      c.exportParked(),
		Armed:       c.exportArmed(),
		Jobs:        c.exportJobs(),
		Estimates:   c.estimates,
	}
	for _, a := range c.Members() {
		ck.Members = append(ck.Members, MemberSnapshot{Addr: a, Res: c.members[a].res})
	}
	ids := make([]TaskID, 0, len(c.tasks))
	for id := range c.tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ts := c.tasks[id]
		ck.Tasks = append(ck.Tasks, TaskCheckpoint{
			Task:         ts.task,
			Client:       ts.client,
			RemainingOps: ts.remainingOps,
			Retries:      ts.retries,
			Handovers:    ts.handovers,
			Submitted:    ts.submitted,
		})
	}
	return ck
}

// refreshStandby (re)designates the checkpoint target: the lowest-address
// fresh member, chosen deterministically so equal seeds replay equal
// failovers. Returns true when a standby exists. Losing the last
// eligible member leaves the cloud standby-less — one controller crash
// away from losing the task table — so that transition is surfaced via
// Stats.StandbyLost and a trace event instead of silently no-oping.
func (c *Controller) refreshStandby(now sim.Time) bool {
	best := vnet.Addr(-1)
	for a, m := range c.members {
		if now-m.lastSeen > c.cfg.MemberTTL {
			continue
		}
		if best < 0 || a < best {
			best = a
		}
	}
	if best < 0 && c.standby >= 0 {
		c.stats.StandbyLost.Inc()
		c.cfg.Trace.Emit(now, trace.CatCloud, int32(c.node.Addr()),
			"standby lost: no eligible member to replicate checkpoints to")
	}
	c.standby = best
	return best >= 0
}

// sendCheckpoint replicates current state to the standby. Under fencing
// the standby becomes "armed" from the first checkpoint it is sent: it
// holds state it could promote from, so finished outcomes park until it
// acknowledges (see merge.go).
func (c *Controller) sendCheckpoint(now sim.Time) {
	c.ckptSeq++
	c.lastCkpt = now
	if c.cfg.Fencing {
		if _, armed := c.armed[c.standby]; !armed {
			// The lease grace period for this standby starts at arming.
			// Arm before building the checkpoint so its Armed list names
			// the recipient too (a third sibling must learn of it).
			c.armed[c.standby] = armedStandby{at: now}
		}
	}
	data := EncodeCheckpoint(c.Checkpoint())
	msg := c.node.NewMessage(c.standby, kindCkpt, len(data), 1, ckptMsg{Data: data})
	c.node.SendTo(c.standby, msg)
}

// RestoreController promotes node into a controller seeded from the
// checkpoint: membership is restored as-if freshly heard, the task-ID
// sequence continues, and every checkpointed task is reassigned from its
// last known RemainingOps. The new controller advertises immediately so
// members reattach without waiting out an advertisement period.
func RestoreController(node *vnet.Node, ckpt Checkpoint, stats *Stats) (*Controller, error) {
	if node == nil {
		return nil, fmt.Errorf("vcloud: node must not be nil")
	}
	cfg := ckpt.Cfg
	cfg.Failover = true // the successor keeps replicating to its own standby
	c, err := NewController(node, cfg, stats)
	if err != nil {
		return nil, err
	}
	now := node.Kernel().Now()
	self := node.Addr()
	for _, ms := range ckpt.Members {
		if ms.Addr == self || ms.Addr == ckpt.Controller {
			continue // the promoted node and the dead coordinator are not workers
		}
		// Checkpointed membership is not live contact: seed each member at
		// the very edge of MemberTTL so resumed tasks can dispatch to it
		// right away, but only members that answer the promotion
		// advertisement (the immediate advertise below triggers a re-join)
		// stay past the first tick. Members behind a partition age out
		// instead of being chosen as the armed standby — arming an
		// unreachable standby would park every outcome forever.
		c.members[ms.Addr] = &memberInfo{res: ms.Res, lastSeen: now - c.cfg.MemberTTL}
	}
	c.nextID = ckpt.NextID
	c.nextJobID = ckpt.NextJobID
	c.emergency = ckpt.Emergency
	c.estimates = ckpt.Estimates
	if cfg.Fencing {
		// Promote at a strictly higher counter than any epoch this node
		// has witnessed, so the predecessor's dispatches are fenced off.
		c.epoch = NextEpoch(ckpt.Epoch.Counter, self)
		// Seed the exactly-once ledger: outcomes the predecessor applied,
		// plus the parked outcomes this (acknowledged) checkpoint
		// licensed it to apply — resuming those would risk applying them
		// twice, so they count as applied (at-most-once under partition).
		for _, ar := range ckpt.Applied {
			c.recordApplied(ar.ID, ar.Epoch)
		}
		for _, po := range ckpt.Parked {
			c.recordApplied(po.Task.ID, ckpt.Epoch.Counter)
		}
		// Sibling standbys of the dead predecessor hold this same task
		// lineage; until each disarms (or promotes and loses the epoch
		// battle), our outcomes must park like the predecessor's did.
		c.inheritArmed(ckpt.Armed, now)
	}
	c.cfg.Trace.Emit(now, trace.CatCloud, int32(self),
		"promoted to controller (ckpt seq %d from %d: %d members, %d tasks, %d jobs, epoch %v)",
		ckpt.Seq, ckpt.Controller, len(ckpt.Members), len(ckpt.Tasks), len(ckpt.Jobs), c.epoch)
	// Restore jobs before relaunching tasks: a relaunched stage task can
	// finish synchronously and must find its job row to route into.
	for _, jc := range ckpt.Jobs {
		c.restoreJob(jc)
		stats.JobsResumed.Inc()
	}
	for _, tc := range ckpt.Tasks {
		ts := &taskState{
			task:         tc.Task,
			client:       tc.Client,
			remainingOps: tc.RemainingOps,
			retries:      tc.Retries,
			handovers:    tc.Handovers,
			submitted:    tc.Submitted,
			policy:       c.effectivePolicy(tc.Task),
		}
		c.tasks[tc.Task.ID] = ts
		stats.Resumed.Inc()
		c.launch(ts)
	}
	// Stages whose tasks died with the predecessor (or were applied on
	// its side) go back to waiting and re-dispatch under the new epoch.
	c.dagResume()
	c.advertise()
	return c, nil
}
