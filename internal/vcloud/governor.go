package vcloud

import (
	"fmt"
	"time"

	"vcloud/internal/radio"
	"vcloud/internal/sim"
)

// The placement governor is the adaptive half of congestion-aware
// offload (ISSUE 8): it fronts the three tiers of the paper's Fig. 2
// comparison — vehicle cluster, RSU edge, conventional cloud — as one
// Backend, and routes each submission to the tier whose *estimated*
// completion time is best given live bandwidth, loss and queue-delay
// feedback (estimates.go, internal/radio/gcc.go). Around that choice it
// wraps the overload machinery: deadline-aware admission control,
// bounded per-tier queues with structured rejection instead of unbounded
// buffering, shedding of optional work first, and hysteresis so
// placement does not flap between near-equal tiers.

// GovernorTier describes one offload destination available to the
// governor.
type GovernorTier struct {
	// Tier labels the destination class (TierVehicle/TierEdge/TierCloud).
	Tier Tier
	// Backend is where accepted work actually runs.
	Backend Backend
	// CPU is the tier's nominal aggregate compute rate (ops/s), used for
	// the compute and backlog terms of the completion-time estimate.
	CPU float64
	// NominalBps is the tier's nameplate network bandwidth toward the
	// submitter. Congestion-blind placement always believes it; adaptive
	// placement uses it only until live estimates arrive. Zero means the
	// tier is network-free (local cluster).
	NominalBps float64
	// BaseRTT is the tier's healthy round-trip latency (zero when
	// network-free).
	BaseRTT sim.Time
	// Sender, when non-nil, is a co-located live estimate source: the
	// governor reads its bandwidth/loss/queue view directly.
	Sender *radio.Sender
	// Estimates, when non-nil, is the controller-fed estimate table
	// lookup (Controller.TierEstimateFor) — the path that survives
	// failover. A fresh table entry wins over NominalBps; Sender, being
	// strictly fresher, wins over both.
	Estimates func() (TierEstimate, bool)
	// QueueLimit bounds outstanding submissions on this tier; a full
	// tier backpressures instead of buffering without bound. Default 32.
	QueueLimit int
}

// GovernorConfig tunes the placement governor.
type GovernorConfig struct {
	// Tiers lists the destinations in preference order for ties.
	Tiers []GovernorTier
	// Hysteresis is the improvement factor a rival tier must beat the
	// currently preferred tier's estimate by before placement switches.
	// Default 1.25.
	Hysteresis float64
	// ShedUtilization is the queue-occupancy fraction of the chosen tier
	// at or above which optional work is shed to protect required work.
	// Default 0.8.
	ShedUtilization float64
	// Blind disables congestion feedback: estimates are computed from
	// nameplate figures with empty queues, as a congestion-oblivious
	// scheduler would. Admission, backpressure and shedding still apply
	// — Blind isolates exactly the value of *feedback* (the E16
	// ablation).
	Blind bool
}

// tierState is the governor's runtime view of one destination.
type tierState struct {
	cfg GovernorTier
	// outstanding counts submissions in flight; outstandingOps their
	// total remaining work — the backlog term of the estimate.
	outstanding    int
	outstandingOps float64
	// seq tags submissions so a late release timeout cannot free a slot
	// twice.
	seq     uint64
	pending map[uint64]*pendingSlot
	placed  uint64
}

type pendingSlot struct {
	ops     float64
	timeout sim.EventID
}

// Governor is a congestion-aware placement layer over multiple tiers.
// It implements Backend, so anything that can drive a single backend —
// experiments, the chaos soak, client code — can drive adaptive
// placement unchanged.
type Governor struct {
	kernel *sim.Kernel
	cfg    GovernorConfig
	stats  *Stats
	tiers  []*tierState
	// preferred is the index (into tiers) hysteresis currently favors
	// (-1 before the first placement).
	preferred int
}

// NewGovernor creates a placement governor over the configured tiers.
func NewGovernor(kernel *sim.Kernel, cfg GovernorConfig, stats *Stats) (*Governor, error) {
	if kernel == nil || stats == nil {
		return nil, fmt.Errorf("vcloud: kernel and stats must not be nil")
	}
	if len(cfg.Tiers) == 0 {
		return nil, fmt.Errorf("vcloud: governor needs at least one tier")
	}
	if cfg.Hysteresis <= 1 {
		cfg.Hysteresis = 1.25
	}
	if cfg.ShedUtilization <= 0 || cfg.ShedUtilization > 1 {
		cfg.ShedUtilization = 0.8
	}
	g := &Governor{kernel: kernel, cfg: cfg, stats: stats, preferred: -1}
	for i := range cfg.Tiers {
		tc := cfg.Tiers[i]
		if tc.Backend == nil {
			return nil, fmt.Errorf("vcloud: tier %v backend must not be nil", tc.Tier)
		}
		if tc.CPU <= 0 {
			return nil, fmt.Errorf("vcloud: tier %v CPU must be positive, got %v", tc.Tier, tc.CPU)
		}
		if tc.QueueLimit <= 0 {
			tc.QueueLimit = 32
		}
		g.tiers = append(g.tiers, &tierState{cfg: tc, pending: make(map[uint64]*pendingSlot)})
	}
	return g, nil
}

// Name implements Backend.
func (g *Governor) Name() string {
	if g.cfg.Blind {
		return "governor-blind"
	}
	return "governor"
}

// estimateStaleAfter is the age past which a sender's live view starts
// losing authority. A tier the governor routed away from stops carrying
// traffic, so its estimator stops learning; without decay, one bad
// measurement would condemn a channel forever (and the governor would
// never probe it again). Blending back toward nameplate figures as the
// feedback ages is what re-opens the channel to probe traffic.
const estimateStaleAfter = time.Second

// eta estimates the completion time of a task on a tier: network
// transfer at the believed bandwidth (inflated by observed loss, since
// lost exchanges retry at the client), channel queue delay, base RTT,
// the tier's current backlog, and the task's own compute.
func (g *Governor) eta(t *tierState, task Task) sim.Time {
	bps := t.cfg.NominalBps
	loss := 0.0
	var queue sim.Time
	if !g.cfg.Blind {
		if t.cfg.Estimates != nil {
			if e, ok := t.cfg.Estimates(); ok {
				bps, loss, queue = e.Bps, e.Loss, e.QueueDelay
			}
		}
		if s := t.cfg.Sender; s != nil {
			bps, loss, queue = s.EstimateBps(), s.LossRate(), s.QueueDelay()
			// Trust decays with feedback age: weight the live view by how
			// recently the channel was actually heard from, falling back
			// toward nameplate. Queue delay stays fully live — it is read
			// off the shared channel's real backlog, not learned.
			if last := s.LastFeedback(); last > 0 {
				if age := g.kernel.Now() - last; age > estimateStaleAfter {
					w := float64(estimateStaleAfter) / float64(age)
					bps = w*bps + (1-w)*t.cfg.NominalBps
					loss *= w
				}
			}
		}
	}
	var net float64
	if bps > 0 {
		net = float64(task.InputBytes+task.OutputBytes) * 8 / bps
		if loss > 0 && loss < 1 {
			net /= 1 - loss
		}
	}
	backlog := t.outstandingOps / t.cfg.CPU
	compute := task.Ops / t.cfg.CPU
	return sim.Time((net+backlog+compute)*float64(time.Second)) + queue + t.cfg.BaseRTT
}

// Submit implements Backend: estimate per-tier completion, admit or
// reject against the deadline, shed optional work under overload,
// backpressure on full queues, and place on the hysteresis-stable best
// tier.
func (g *Governor) Submit(task Task, done func(TaskResult)) error {
	if err := task.Validate(); err != nil {
		return err
	}
	now := g.kernel.Now()

	// Rank tiers by estimated completion; order stays deterministic
	// because ties resolve to the lower configured index.
	etas := make([]sim.Time, len(g.tiers))
	best := 0
	for i, t := range g.tiers {
		etas[i] = g.eta(t, task)
		if etas[i] < etas[best] {
			best = i
		}
	}
	// Hysteresis: keep the preferred tier unless the rival's estimate is
	// better by the configured factor (or the preferred queue is full).
	choice := best
	if g.preferred >= 0 && g.preferred != best {
		p := g.tiers[g.preferred]
		if p.outstanding < p.cfg.QueueLimit &&
			float64(etas[g.preferred]) < g.cfg.Hysteresis*float64(etas[best]) {
			choice = g.preferred
		}
	}

	// Admission control: if even the best tier cannot make the deadline,
	// reject now — a structured fast failure beats burning bandwidth on
	// work that will blow its deadline anyway.
	if task.Deadline > 0 && now+etas[best] > task.Deadline {
		return g.reject(task, done, ReasonAdmission)
	}

	// Load shedding: optional work is dropped once the chosen tier runs
	// hot, keeping the remaining headroom for required work.
	ct := g.tiers[choice]
	if task.Optional && float64(ct.outstanding) >= g.cfg.ShedUtilization*float64(ct.cfg.QueueLimit) {
		return g.reject(task, done, ReasonShed)
	}

	// Backpressure: a full chosen tier falls through to the next-best
	// tiers in estimate order; all-full bounces the submission.
	if ct.outstanding >= ct.cfg.QueueLimit {
		choice = -1
		order := etaOrder(etas)
		for _, i := range order {
			if g.tiers[i].outstanding < g.tiers[i].cfg.QueueLimit {
				choice = i
				break
			}
		}
		if choice < 0 {
			reason := ReasonBackpressure
			if task.Optional {
				reason = ReasonShed
			}
			return g.reject(task, done, reason)
		}
		ct = g.tiers[choice]
	}

	if g.preferred != choice {
		if g.preferred >= 0 {
			g.stats.TierSwitches.Inc()
		}
		g.preferred = choice
	}
	g.stats.Admitted.Inc()
	ct.placed++
	ct.outstanding++
	ct.outstandingOps += task.Ops
	ct.seq++
	slot := &pendingSlot{ops: task.Ops}
	ct.pending[ct.seq] = slot
	seq := ct.seq
	release := func() {
		s, live := ct.pending[seq]
		if !live {
			return
		}
		delete(ct.pending, seq)
		g.kernel.Cancel(s.timeout)
		ct.outstanding--
		ct.outstandingOps -= s.ops
		if ct.outstandingOps < 0 {
			ct.outstandingOps = 0
		}
	}
	// Lost submissions (outage, shed in flight) may never call back;
	// a guard timeout frees the slot so one black hole cannot wedge the
	// tier's queue forever. Idempotent with the done-path release.
	guard := 3*etas[choice] + 5*time.Second
	slot.timeout = g.kernel.After(guard, release)
	err := ct.cfg.Backend.Submit(task, func(res TaskResult) {
		release()
		if done != nil {
			done(res)
		}
	})
	if err != nil {
		// The backend refused synchronously (e.g. a headless cloud mid-
		// failover): the slot was never really occupied.
		release()
	}
	return err
}

// reject fails a submission with a structured reason. Rejections count
// as submitted work that failed, so completion rates reflect them.
func (g *Governor) reject(task Task, done func(TaskResult), reason FailReason) error {
	switch reason {
	case ReasonAdmission:
		g.stats.AdmissionRejects.Inc()
	case ReasonShed:
		g.stats.Shed.Inc()
	case ReasonBackpressure:
		g.stats.Backpressured.Inc()
	default:
		// Other FailReasons (deadline, no-quorum, ...) originate in the
		// controller, not the governor; they carry no dedicated counter
		// here and fold into the Submitted/Failed totals below.
	}
	g.stats.Submitted.Inc()
	g.stats.Failed.Inc()
	if done != nil {
		done(TaskResult{ID: task.ID, OK: false, Reason: reason})
	}
	return nil
}

// etaOrder returns tier indexes sorted by estimate, ties by index — an
// insertion sort over ≤ a handful of tiers, allocation-light and
// deterministic.
func etaOrder(etas []sim.Time) []int {
	order := make([]int, len(etas))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if etas[b] < etas[a] || (etas[b] == etas[a] && b < a) {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	return order
}

// Outstanding returns the in-flight submission count for the tier at the
// given configured index (the chaos soak's queue-bound invariant).
func (g *Governor) Outstanding(i int) int {
	if i < 0 || i >= len(g.tiers) {
		return 0
	}
	return g.tiers[i].outstanding
}

// QueueLimit returns the configured bound for the tier at index i.
func (g *Governor) QueueLimit(i int) int {
	if i < 0 || i >= len(g.tiers) {
		return 0
	}
	return g.tiers[i].cfg.QueueLimit
}

// Placed returns how many submissions the tier at index i has accepted.
func (g *Governor) Placed(i int) uint64 {
	if i < 0 || i >= len(g.tiers) {
		return 0
	}
	return g.tiers[i].placed
}

// NumTiersConfigured returns the governor's tier count.
func (g *Governor) NumTiersConfigured() int { return len(g.tiers) }

// TierLabel returns the Tier label of the tier at index i.
func (g *Governor) TierLabel(i int) Tier {
	if i < 0 || i >= len(g.tiers) {
		return -1
	}
	return g.tiers[i].cfg.Tier
}

// PreferredTier returns the hysteresis-stable current choice (-1 before
// any placement).
func (g *Governor) PreferredTier() int { return g.preferred }

var (
	_ Backend        = (*Governor)(nil)
	_ EstimateSource = (*radio.Sender)(nil)
)
