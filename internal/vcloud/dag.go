package vcloud

import (
	"fmt"
	"math"
	"time"

	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// This file is the data layer of dependable DAG execution
// (Abdisarabshali et al., "Decomposition Theory Meets Reliability
// Analysis", PAPERS.md): job/stage specs, deterministic topological
// ordering, per-stage criticality, and reliability-aware allocation of a
// job's replica budget to the stages whose failure would restart the
// critical path. The controller-side engine lives in dagsched.go, the
// member-side data pipeline in stagepipe.go.

// JobID identifies a submitted DAG job. Like TaskID it is epoch-stamped
// (high bits carry the controller epoch counter) so IDs never collide
// across failovers.
type JobID uint64

// StageSpec describes one stage of a DAG job.
type StageSpec struct {
	// Name is an optional label used in traces and experiment rows.
	Name string
	// Ops is the stage's compute cost in abstract operations.
	Ops float64
	// InputBytes is external input delivered with the dispatch (root
	// stages); predecessor outputs are pulled separately and sized by the
	// predecessors' OutputBytes.
	InputBytes int
	// OutputBytes is the size of this stage's output, pulled by every
	// successor stage (and by the controller relay fallback).
	OutputBytes int
	// NeedsSensor restricts placement like Task.NeedsSensor.
	NeedsSensor string
	// Deps lists the indices of the stages whose outputs this stage
	// consumes. The graph over Deps must be acyclic.
	Deps []int
	// Optional marks a stage the job can complete without: when an
	// optional stage exhausts its retry budget the scheduler abandons it
	// (and, transitively, its successors — which Validate requires to be
	// optional too) and the job degrades to a partial result instead of
	// failing.
	Optional bool
}

// JobSpec describes a DAG of dependent stages submitted as one job.
type JobSpec struct {
	Stages []StageSpec
	// ReplicaBudget is the number of extra stage copies the job may
	// spend: allocating K replicas to a stage costs K-1 budget. The
	// scheduler spends it only on critical-path stages (see
	// AllocateReplicas) unless ReplicateAll is set.
	ReplicaBudget int
	// ReplicateAll spreads the budget over every stage in topological
	// order instead of critical-path stages only — the
	// "replicate-everything" comparison arm of E15.
	ReplicateAll bool
	// StageRetries is the per-stage retry budget at the job layer, on
	// top of the task layer's own replica top-ups (0 = no stage
	// retries).
	StageRetries int
	// TaskRetries bounds the task-layer retry rounds of each stage task
	// (DependabilityPolicy.MaxRetries); default 1, so stage failures
	// surface to the job layer quickly instead of stalling in task
	// backoff.
	TaskRetries int
	// RetryBackoff is the base of the stage-level exponential backoff
	// (default 500ms).
	RetryBackoff sim.Time
	// Deadline is the absolute virtual time by which the job must
	// complete; zero means none.
	Deadline sim.Time
	// WholeJobRestart selects the naive recovery mode: any stage failure
	// restarts the entire job from scratch (up to JobRestarts times),
	// throwing away all completed stage work — the baseline arm of E15.
	WholeJobRestart bool
	// JobRestarts bounds whole-job restarts (only meaningful with
	// WholeJobRestart; default 3).
	JobRestarts int
}

// dagDefaults fills zero-value knobs. Kept separate from Validate so
// checkpointed specs round-trip unchanged.
func (s JobSpec) withDefaults() JobSpec {
	if s.TaskRetries == 0 {
		s.TaskRetries = 1
	}
	if s.RetryBackoff == 0 {
		s.RetryBackoff = 500 * time.Millisecond
	}
	if s.WholeJobRestart && s.JobRestarts == 0 {
		s.JobRestarts = 3
	}
	return s
}

// Validate checks the spec: positive costs, in-range acyclic
// dependencies, and the optional-closure rule (every stage downstream
// of an optional stage must itself be optional, so abandoning an
// optional branch can never strand a required stage).
func (s *JobSpec) Validate() error {
	if len(s.Stages) == 0 {
		return fmt.Errorf("vcloud: job needs at least one stage")
	}
	if s.ReplicaBudget < 0 {
		return fmt.Errorf("vcloud: replica budget must be >= 0, got %d", s.ReplicaBudget)
	}
	if s.StageRetries < 0 || s.TaskRetries < 0 || s.JobRestarts < 0 {
		return fmt.Errorf("vcloud: retry budgets must be >= 0")
	}
	if s.RetryBackoff < 0 {
		return fmt.Errorf("vcloud: retry backoff must be >= 0")
	}
	for i, st := range s.Stages {
		if st.Ops <= 0 || math.IsNaN(st.Ops) || math.IsInf(st.Ops, 0) {
			return fmt.Errorf("vcloud: stage %d ops must be positive and finite, got %v", i, st.Ops)
		}
		if st.InputBytes < 0 || st.OutputBytes < 0 {
			return fmt.Errorf("vcloud: stage %d byte sizes must be non-negative", i)
		}
		seen := make(map[int]bool, len(st.Deps))
		for _, d := range st.Deps {
			if d < 0 || d >= len(s.Stages) {
				return fmt.Errorf("vcloud: stage %d dep %d out of range", i, d)
			}
			if d == i {
				return fmt.Errorf("vcloud: stage %d depends on itself", i)
			}
			if seen[d] {
				return fmt.Errorf("vcloud: stage %d lists dep %d twice", i, d)
			}
			seen[d] = true
			if s.Stages[d].Optional && !st.Optional {
				return fmt.Errorf("vcloud: required stage %d depends on optional stage %d", i, d)
			}
		}
	}
	if _, err := TopoOrder(s); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a deterministic topological order of the spec's
// stages: Kahn's algorithm resolving ties by smallest stage index, so
// the order depends only on the spec (never on map iteration). It
// errors on cycles.
func TopoOrder(s *JobSpec) ([]int, error) {
	n := len(s.Stages)
	indeg := make([]int, n)
	for i := range s.Stages {
		for _, d := range s.Stages[i].Deps {
			if d >= 0 && d < n {
				indeg[i]++
			}
		}
	}
	succs := make([][]int, n)
	for i := range s.Stages {
		for _, d := range s.Stages[i].Deps {
			if d >= 0 && d < n {
				succs[d] = append(succs[d], i)
			}
		}
	}
	order := make([]int, 0, n)
	placed := make([]bool, n)
	for len(order) < n {
		pick := -1
		for i := 0; i < n; i++ {
			if !placed[i] && indeg[i] == 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("vcloud: job stage graph has a cycle")
		}
		placed[pick] = true
		order = append(order, pick)
		for _, su := range succs[pick] {
			indeg[su]--
		}
	}
	return order, nil
}

// Criticality returns, for each stage, the length in ops of the longest
// dependency path through it: up(s) + down(s) - ops(s), where up is the
// longest path ending at s and down the longest path starting at s
// (both inclusive). A stage is critical when its criticality equals the
// critical-path length — restarting it restarts the job's longest
// chain, which is exactly the restart cost replication should insure
// against. order must be a topological order of spec.
func Criticality(spec *JobSpec, order []int) (crit []float64, pathOps float64) {
	n := len(spec.Stages)
	up := make([]float64, n)
	down := make([]float64, n)
	succs := make([][]int, n)
	for i := range spec.Stages {
		for _, d := range spec.Stages[i].Deps {
			succs[d] = append(succs[d], i)
		}
	}
	for _, i := range order {
		best := 0.0
		for _, d := range spec.Stages[i].Deps {
			if up[d] > best {
				best = up[d]
			}
		}
		up[i] = best + spec.Stages[i].Ops
	}
	for k := n - 1; k >= 0; k-- {
		i := order[k]
		best := 0.0
		for _, su := range succs[i] {
			if down[su] > best {
				best = down[su]
			}
		}
		down[i] = best + spec.Stages[i].Ops
	}
	crit = make([]float64, n)
	for i := 0; i < n; i++ {
		crit[i] = up[i] + down[i] - spec.Stages[i].Ops
		if crit[i] > pathOps {
			pathOps = crit[i]
		}
	}
	return crit, pathOps
}

// maxExtraPerStage caps how many extra copies one stage may absorb, so
// the budget spreads across the critical path instead of piling K=5 on
// its head.
const maxExtraPerStage = 2

// AllocateReplicas spends the job's replica budget and returns the
// per-stage replica count (>= 1 each). Selection is reliability-aware:
// only critical-path stages are candidates (highest criticality first,
// topological position breaking ties) unless ReplicateAll is set, in
// which case every stage is a candidate in topological order. Budget is
// dealt round-robin, one extra copy per pass, capped at
// maxExtraPerStage extras per stage; the invariant sum(alloc[i]-1) <=
// ReplicaBudget always holds.
func AllocateReplicas(spec *JobSpec, order []int) []int {
	n := len(spec.Stages)
	alloc := make([]int, n)
	for i := range alloc {
		alloc[i] = 1
	}
	budget := spec.ReplicaBudget
	if budget <= 0 {
		return alloc
	}
	crit, pathOps := Criticality(spec, order)
	var cands []int
	for _, i := range order {
		if spec.ReplicateAll || crit[i] >= pathOps {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return alloc
	}
	for budget > 0 {
		spent := false
		for _, i := range cands {
			if budget == 0 {
				break
			}
			if alloc[i]-1 >= maxExtraPerStage {
				continue
			}
			alloc[i]++
			budget--
			spent = true
		}
		if !spent {
			break
		}
	}
	return alloc
}

// StageBinding marks a Task as one stage of a DAG job and tells the
// worker which predecessor outputs to pull before compute starts.
type StageBinding struct {
	Job   JobID
	Stage int
	// OutputBytes is the size of this stage's own output, cached by the
	// worker to serve downstream pulls.
	OutputBytes int
	// Inputs lists the predecessor outputs to fetch, in stage-index
	// order.
	Inputs []StageInput
}

// StageInput names one predecessor output: its size and the members
// holding it (the predecessor's deciding voters, in dispatch order). A
// worker tries holders first — rotated by its replica index so
// redundant copies diversify their sources — and falls back to a
// controller relay when every holder times out.
type StageInput struct {
	Stage   int
	Bytes   int
	Sources []vnet.Addr
}

// StageDigest is the canonical result of executing a stage: a
// deterministic digest of the job, stage, compute cost and the pulled
// input values, so honest workers agree and replica voting stays
// decidable. A Byzantine holder that serves a tampered input skews the
// digest of everyone who pulled from it — which is precisely what
// downstream voting (with source rotation across replicas) exists to
// catch.
func StageDigest(job JobID, stage int, ops float64, inputs []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(job))
	mix(uint64(stage))
	mix(math.Float64bits(ops))
	for _, v := range inputs {
		mix(v)
	}
	return h
}

// StageStatus is the lifecycle state of one stage inside the job
// engine.
type StageStatus uint8

// Stage statuses.
const (
	StageWaiting StageStatus = iota + 1
	StageRunning
	StageDone
	StageAbandoned
	StageFailed
)

// String implements fmt.Stringer.
func (s StageStatus) String() string {
	switch s {
	case StageWaiting:
		return "waiting"
	case StageRunning:
		return "running"
	case StageDone:
		return "done"
	case StageAbandoned:
		return "abandoned"
	case StageFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// StageOutcome reports one stage's fate inside a JobResult.
type StageOutcome struct {
	Status  StageStatus
	Value   uint64
	Retries int
	// Replicas is the replica count allocated to the stage (K).
	Replicas int
	Holders  []vnet.Addr
}

// JobResult reports a finished DAG job to its submitter.
type JobResult struct {
	Job JobID
	OK  bool
	// Partial is set when the job completed but one or more optional
	// branches were abandoned (graceful degradation).
	Partial bool
	Reason  FailReason
	Latency sim.Time
	// Restarts counts whole-job restarts (naive mode only).
	Restarts int
	// ExtraReplicas is the budget actually allocated: sum over stages of
	// replicas-1. Never exceeds the spec's ReplicaBudget.
	ExtraReplicas int
	// WastedOps is completed stage work thrown away by whole-job
	// restarts.
	WastedOps float64
	Stages    []StageOutcome
	// Value is a digest over the sink stages' values in index order
	// (abandoned sinks contribute nothing).
	Value uint64
}
