package vcloud

import (
	"fmt"

	"vcloud/internal/cryptoprim"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// Ledger is the resource-lending incentive of the Kong et al. [17][18]
// frameworks (§IV.B): submitters pay credits for the ops their tasks
// consume, workers earn them for the ops they execute. Entries form a
// hash chain so the coordinator (or an auditor) can detect tampering —
// accountability without exposing identities beyond network addresses.
type Ledger struct {
	balances map[vnet.Addr]int64
	log      []CreditEntry
}

// CreditEntry records one transfer.
type CreditEntry struct {
	At     sim.Time
	Task   TaskID
	From   vnet.Addr // payer (task submitter's account)
	To     vnet.Addr // payee (worker)
	Amount int64
	Hash   [32]byte
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{balances: make(map[vnet.Addr]int64)}
}

// Transfer moves amount credits from payer to payee (negative balances
// are allowed — settlement is out of band, e.g. at the TA).
func (l *Ledger) Transfer(at sim.Time, task TaskID, from, to vnet.Addr, amount int64) error {
	if amount <= 0 {
		return fmt.Errorf("vcloud: transfer amount must be positive, got %d", amount)
	}
	if from == to {
		return fmt.Errorf("vcloud: self-transfer")
	}
	l.balances[from] -= amount
	l.balances[to] += amount
	var prev [32]byte
	if n := len(l.log); n > 0 {
		prev = l.log[n-1].Hash
	}
	e := CreditEntry{At: at, Task: task, From: from, To: to, Amount: amount}
	e.Hash = creditHash(prev, e)
	l.log = append(l.log, e)
	return nil
}

func creditHash(prev [32]byte, e CreditEntry) [32]byte {
	return cryptoprim.Digest(
		prev[:],
		[]byte(fmt.Sprintf("%d|%d|%d|%d|%d", e.At, e.Task, e.From, e.To, e.Amount)),
	)
}

// Balance returns an account's current credit balance.
func (l *Ledger) Balance(a vnet.Addr) int64 { return l.balances[a] }

// Entries returns a copy of the transfer log.
func (l *Ledger) Entries() []CreditEntry {
	out := make([]CreditEntry, len(l.log))
	copy(out, l.log)
	return out
}

// Verify checks the hash chain, returning the index of the first
// tampered entry or -1 when intact.
func (l *Ledger) Verify() int {
	var prev [32]byte
	for i, e := range l.log {
		if creditHash(prev, e) != e.Hash {
			return i
		}
		prev = e.Hash
	}
	return -1
}

// TotalVolume returns the sum of all transfers.
func (l *Ledger) TotalVolume() int64 {
	var total int64
	for _, e := range l.log {
		total += e.Amount
	}
	return total
}
