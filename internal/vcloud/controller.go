package vcloud

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"vcloud/internal/metrics"
	"vcloud/internal/sim"
	"vcloud/internal/trace"
	"vcloud/internal/trust"
	"vcloud/internal/vnet"
)

// Protocol message kinds.
const (
	kindAdv      = "vc.adv"
	kindJoin     = "vc.join"
	kindLeave    = "vc.leave"
	kindTask     = "vc.task"
	kindResult   = "vc.result"
	kindHandover = "vc.handover"
	kindCkpt     = "vc.ckpt"
)

// advMsg is the controller's periodic advertisement.
type advMsg struct {
	Controller vnet.Addr
	Emergency  bool
	// Standby is the designated failover successor (-1 when none); it is
	// broadcast so a deposed standby knows to discard its checkpoint.
	Standby vnet.Addr
	// Epoch is the advertiser's fencing token (zero when unfenced).
	Epoch Epoch
}

// joinMsg announces a member and its resources. Edge and Delay mark an
// RSU edge server (see edge.go); they ride every join, so the edge
// capacity/latency model survives controller failover without touching
// the checkpoint codec.
type joinMsg struct {
	Resources Resources
	Edge      bool
	Delay     sim.Time
}

// taskMsg assigns (or re-assigns) work.
type taskMsg struct {
	Task Task
	// RemainingOps carries partial progress on handover reassignment
	// (== Task.Ops on first assignment).
	RemainingOps float64
	Attempt      int
	// Replica indexes the redundant copy under a dependability policy
	// (-1 on the plain single-copy path); the member echoes it back so
	// the controller can match votes to slots.
	Replica int
	// Epoch fences the dispatch: members reject a task from an epoch
	// below the highest they have witnessed (zero when unfenced).
	Epoch Epoch
}

// resultMsg returns a finished task.
type resultMsg struct {
	ID      TaskID
	Attempt int
	Replica int
	// Value is the worker's computed result (TaskValue for honest
	// workers); the redundant-execution vote compares these.
	Value uint64
	// Epoch echoes the dispatching controller's epoch back with the
	// result (zero when the dispatch was unfenced).
	Epoch Epoch
}

// handoverMsg returns unfinished work for reassignment.
type handoverMsg struct {
	ID           TaskID
	RemainingOps float64
	Attempt      int
	Replica      int
	// Epoch echoes the dispatching controller's epoch.
	Epoch Epoch
}

// Stats aggregates cloud outcomes for the experiments.
type Stats struct {
	Submitted  metrics.Counter
	Completed  metrics.Counter
	Failed     metrics.Counter
	Retries    metrics.Counter
	Handovers  metrics.Counter
	WastedOps  float64 // ops executed and then lost
	Latency    metrics.Histogram
	JoinEvents metrics.Counter
	// Failovers counts standby self-promotions; Resumed counts in-flight
	// tasks a promoted controller restored from a checkpoint.
	Failovers metrics.Counter
	Resumed   metrics.Counter
	// ReplicaDispatches counts redundant copies sent under a
	// dependability policy; WrongVotes counts votes that lost to the
	// majority value; NoQuorum counts vote rounds that could not reach a
	// strict majority.
	ReplicaDispatches metrics.Counter
	WrongVotes        metrics.Counter
	NoQuorum          metrics.Counter
	// Split-brain fencing counters (PR 3). Abdications counts controllers
	// that stood down on hearing a superseding epoch; Merges counts
	// reconciliations received from abdicating rivals; Adopted counts
	// orphaned in-flight tasks re-adopted during a merge; Deduped counts
	// duplicate outcomes suppressed by the (task, epoch) applied ledger;
	// StaleRejected counts fenced messages members refused for carrying
	// an outdated epoch; CkptRejected counts corrupt checkpoints the
	// decoder refused; StandbyLost counts transitions into a
	// standby-less state while failover was enabled (the cloud is one
	// controller crash away from losing its task table).
	Abdications   metrics.Counter
	Merges        metrics.Counter
	Adopted       metrics.Counter
	Deduped       metrics.Counter
	StaleRejected metrics.Counter
	CkptRejected  metrics.Counter
	StandbyLost   metrics.Counter
	// DAG job engine counters (PR 7). StageRelays counts controller-
	// mediated input handoffs (the fallback path); StageHandoffs counts
	// member-to-member pulls served without a controller round-trip.
	JobsSubmitted    metrics.Counter
	JobsCompleted    metrics.Counter
	JobsPartial      metrics.Counter
	JobsFailed       metrics.Counter
	JobsResumed      metrics.Counter
	JobRestarts      metrics.Counter
	StagesDispatched metrics.Counter
	StagesCompleted  metrics.Counter
	StagesAbandoned  metrics.Counter
	StageRetries     metrics.Counter
	StageRelays      metrics.Counter
	StageHandoffs    metrics.Counter
	// OpsDispatched accumulates every op handed to a worker (first
	// dispatches, retries, redundant replicas, handover re-dispatches) —
	// the denominator of E15's wasted-work accounting.
	OpsDispatched float64
	// Congestion-aware placement counters (PR 8). EstimateReports counts
	// accepted tier-condition reports; EstimateStale counts reports
	// fenced out for carrying a deposed leader's epoch; Admitted /
	// AdmissionRejects split governor admission decisions; Backpressured
	// counts submissions bounced off full tier queues; Shed counts
	// optional work dropped under overload; TierSwitches counts the
	// governor changing its preferred tier (hysteresis keeps this low).
	EstimateReports  metrics.Counter
	EstimateStale    metrics.Counter
	Admitted         metrics.Counter
	AdmissionRejects metrics.Counter
	Backpressured    metrics.Counter
	Shed             metrics.Counter
	TierSwitches     metrics.Counter
}

// JobCompletionRate returns completed/submitted for DAG jobs.
func (s *Stats) JobCompletionRate() float64 {
	return metrics.Ratio(s.JobsCompleted.Value(), s.JobsSubmitted.Value())
}

// CompletionRate returns completed/submitted.
func (s *Stats) CompletionRate() float64 {
	return metrics.Ratio(s.Completed.Value(), s.Submitted.Value())
}

// DwellEstimator predicts how many seconds a member will remain usable
// by the cloud (see mobility.EstimateDwell). Infinity means "parked".
type DwellEstimator func(member vnet.Addr) float64

// ControllerConfig tunes a cloud controller.
type ControllerConfig struct {
	// AdvPeriod is the advertisement broadcast interval. Default 1 s.
	AdvPeriod sim.Time
	// MemberTTL expires silent members. Default 3×AdvPeriod.
	MemberTTL sim.Time
	// Dwell is the scheduler's dwell-time signal; nil means "assume
	// everyone stays forever" (the naive baseline E7 ablates).
	Dwell DwellEstimator
	// DwellMargin multiplies the estimated runtime when testing dwell
	// sufficiency. Default 1.2.
	DwellMargin float64
	// RetryLimit bounds reassignments per task. Default 3.
	RetryLimit int
	// Handover enables partial-work transfer; when false, a departing
	// member's work is simply lost (drop-and-resubmit baseline).
	Handover bool
	// AcceptJoin, when non-nil, gates membership: joins from members for
	// which it returns false are ignored. Secure clouds wire this to the
	// authenticator's verified-peer set (§V.A).
	AcceptJoin func(member vnet.Addr) bool
	// Ledger, when non-nil, enables the incentive mechanism: on task
	// completion the submitter's account pays the final worker
	// PricePerKOps credits per 1000 ops.
	Ledger *Ledger
	// PricePerKOps is the task price in credits per kOp. Default 1.
	PricePerKOps int64
	// Trace, when non-nil, records task lifecycle events for post-run
	// debugging (nil-safe; see internal/trace).
	Trace *trace.Recorder
	// Failover enables checkpoint replication to a standby member and the
	// standby's self-promotion when this controller goes silent — the
	// dependability mechanism E11 measures. Off by default.
	Failover bool
	// CheckpointPeriod is the replication interval. Default 2×AdvPeriod.
	CheckpointPeriod sim.Time
	// FailoverTTL is how long the standby tolerates advertisement silence
	// before promoting itself. Default 4×AdvPeriod.
	FailoverTTL sim.Time
	// Depend, when non-nil, applies a dependability policy (redundant
	// replicas, voting, backoff retries) to every task that does not
	// carry its own Task.Depend override. Nil keeps the plain
	// single-copy path.
	Depend *DependabilityPolicy
	// Fencing enables split-brain-safe leadership: the controller
	// carries a monotonically increasing epoch on every advertisement,
	// checkpoint, dispatch and result; members reject stale epochs; a
	// controller that hears a superseding rival abdicates and ships its
	// state for merge reconciliation; and finished outcomes are applied
	// only after the armed standby acknowledges a checkpoint carrying
	// them (see merge.go). Off by default — zero epochs keep every
	// legacy code path bit-for-bit identical.
	Fencing bool
	// OnApply, when non-nil, observes every applied task outcome with
	// the applying controller's epoch counter — the hook the chaos
	// harness uses to assert "no task outcome applied twice across
	// epochs". Stripped from checkpoints.
	OnApply func(id TaskID, epoch uint64, ok bool)
	// OnAbdicate, when non-nil, is called after this controller stands
	// down in favor of a superseding rival; the deployment wires this to
	// re-attach a member agent on the node. Stripped from checkpoints.
	OnAbdicate func(c *Controller)
	// Workers, when non-nil, is the execution-trust engine: replica
	// placement excludes workers scoring below the policy's
	// TrustThreshold, votes may be trust-weighted, and vote outcomes
	// feed evidence back (the Fig. 3 loop). It holds a clock closure,
	// so it is stripped from checkpoints — a failover successor starts
	// with a fresh trust view.
	Workers *trust.WorkerSet
}

type memberInfo struct {
	res      Resources
	lastSeen sim.Time
	// queuedOps is the controller's view of outstanding work.
	queuedOps float64
	// edge marks an ETSI-MEC-style RSU edge server: fixed
	// infrastructure, so dwell checks always pass, at the cost of a
	// per-task processing delay added to its finish estimate.
	edge  bool
	delay sim.Time
}

type taskState struct {
	task         Task
	client       vnet.Addr
	remainingOps float64
	assignee     vnet.Addr
	attempt      int
	handovers    int
	retries      int
	submitted    sim.Time
	timeout      sim.EventID
	done         func(TaskResult)

	// Dependable-execution state (policy non-nil switches the task onto
	// the replicated path; see depend.go).
	policy       *DependabilityPolicy
	replicas     []*replicaSlot
	round        int
	roundPending bool
	value        uint64
	voters       []vnet.Addr
}

// Controller coordinates one vehicular cloud: membership, task
// allocation, result aggregation and the management plane. It runs on
// whatever node the architecture designates (parked gateway, RSU, or
// cluster head).
type Controller struct {
	node    *vnet.Node
	cfg     ControllerConfig
	stats   *Stats
	members map[vnet.Addr]*memberInfo
	tasks   map[TaskID]*taskState
	nextID  TaskID
	// DAG job engine state (see dagsched.go).
	jobs      map[JobID]*jobState
	nextJobID TaskID
	ticker    *sim.Ticker
	// rng feeds the dependability layer's backoff jitter; it is a named
	// kernel stream, so retry timing reproduces bit-for-bit per seed.
	rng *rand.Rand
	// violations accumulates internal-consistency breaches (double
	// finish, stuck task) for the chaos soak to assert empty.
	violations []string
	// storage is the attached data-service backend (nil when none); see
	// storage.go for the churn-driven repair wiring.
	storage storageBackend
	// estimates is the per-tier congestion table fed by member reports
	// (estimates.go); checkpointed, so a promoted standby inherits it.
	estimates [NumTiers]TierEstimate

	// standby is the designated failover successor (-1 when none).
	standby  vnet.Addr
	ckptSeq  uint64
	lastCkpt sim.Time

	// Fencing state (see merge.go). epoch is this controller's fencing
	// token; armed tracks every standby ever sent a checkpoint (it can
	// promote from its copy, so outcomes park until it acks or disarms)
	// with its highest acknowledged sequence and last-heard time — any
	// single armed standby going silent past FailoverTTL expires the
	// leadership lease; parked holds finished outcomes awaiting
	// acknowledgement, in checkpoint-seq order; applied/appliedOrder is
	// the capped (task, epoch) ledger enforcing exactly-once application.
	epoch        Epoch
	armed        map[vnet.Addr]armedStandby
	parked       []*parkedEntry
	applied      map[TaskID]uint64
	appliedOrder []TaskID

	emergency bool
	stopped   bool
}

// NewController creates and starts a controller on node.
func NewController(node *vnet.Node, cfg ControllerConfig, stats *Stats) (*Controller, error) {
	if node == nil || stats == nil {
		return nil, fmt.Errorf("vcloud: node and stats must not be nil")
	}
	if cfg.AdvPeriod <= 0 {
		cfg.AdvPeriod = time.Second
	}
	if cfg.MemberTTL <= 0 {
		cfg.MemberTTL = 3 * cfg.AdvPeriod
	}
	if cfg.DwellMargin <= 0 {
		cfg.DwellMargin = 1.2
	}
	if cfg.RetryLimit <= 0 {
		cfg.RetryLimit = 3
	}
	if cfg.Ledger != nil && cfg.PricePerKOps <= 0 {
		cfg.PricePerKOps = 1
	}
	if cfg.CheckpointPeriod <= 0 {
		cfg.CheckpointPeriod = 2 * cfg.AdvPeriod
	}
	if cfg.FailoverTTL <= 0 {
		cfg.FailoverTTL = 4 * cfg.AdvPeriod
	}
	if cfg.Depend != nil {
		if err := cfg.Depend.Validate(); err != nil {
			return nil, err
		}
	}
	c := &Controller{
		node:    node,
		cfg:     cfg,
		stats:   stats,
		members: make(map[vnet.Addr]*memberInfo),
		tasks:   make(map[TaskID]*taskState),
		jobs:    make(map[JobID]*jobState),
		standby: -1,
		rng:     node.Kernel().NewStream(fmt.Sprintf("vcloud.depend.%d", node.Addr())),
	}
	node.Handle(kindJoin, c.onJoin)
	node.Handle(kindLeave, c.onLeave)
	node.Handle(kindResult, c.onResult)
	node.Handle(kindHandover, c.onHandover)
	node.Handle(kindStageRelay, c.onStageRelay)
	node.Handle(kindEstimate, c.onEstimate)
	if cfg.Fencing {
		c.epoch = NextEpoch(0, node.Addr())
		c.armed = make(map[vnet.Addr]armedStandby)
		c.applied = make(map[TaskID]uint64)
		node.Handle(kindAdv, c.onRivalAdv)
		node.Handle(kindMerge, c.onMerge)
		node.Handle(kindCkptAck, c.onCkptAck)
		node.Handle(kindCkpt, c.onRivalCkpt)
	}
	t, err := node.Kernel().Every(cfg.AdvPeriod, c.tick)
	if err != nil {
		return nil, err
	}
	c.ticker = t
	return c, nil
}

// Stop halts the controller gracefully. Pending tasks fail (their done
// callbacks fire with OK=false).
func (c *Controller) Stop() {
	if c.stopped {
		return
	}
	c.halt()
	ids := make([]TaskID, 0, len(c.tasks))
	for id := range c.tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ts := c.tasks[id]
		c.node.Kernel().Cancel(ts.timeout)
		for _, slot := range ts.replicas {
			c.node.Kernel().Cancel(slot.timeout)
		}
		c.finish(id, ts, false, ReasonControllerStopped)
	}
	c.failAllJobs(ReasonControllerStopped)
}

// Crash halts the controller abruptly, as a process failure would: no
// pending task is failed, no callback fires — from the outside the
// controller simply goes silent. Without failover the in-flight task
// table dies with it; a replicated standby resumes it (the contrast E11
// measures).
func (c *Controller) Crash() {
	if c.stopped {
		return
	}
	c.halt()
	for _, ts := range c.tasks {
		c.node.Kernel().Cancel(ts.timeout)
		for _, slot := range ts.replicas {
			c.node.Kernel().Cancel(slot.timeout)
		}
	}
}

// halt flips the stopped flag, stops the ticker and detaches handlers.
func (c *Controller) halt() {
	c.stopped = true
	c.ticker.Stop()
	c.node.Handle(kindJoin, nil)
	c.node.Handle(kindLeave, nil)
	c.node.Handle(kindResult, nil)
	c.node.Handle(kindHandover, nil)
	c.node.Handle(kindStageRelay, nil)
	c.node.Handle(kindEstimate, nil)
	if c.cfg.Fencing {
		c.node.Handle(kindAdv, nil)
		c.node.Handle(kindMerge, nil)
		c.node.Handle(kindCkptAck, nil)
		c.node.Handle(kindCkpt, nil)
	}
}

// Addr returns the controller's network address.
func (c *Controller) Addr() vnet.Addr { return c.node.Addr() }

// Stopped reports whether the controller has been stopped or crashed.
func (c *Controller) Stopped() bool { return c.stopped }

// NumMembers returns the live member count.
func (c *Controller) NumMembers() int { return len(c.members) }

// Members returns the live member addresses, sorted.
func (c *Controller) Members() []vnet.Addr {
	out := make([]vnet.Addr, 0, len(c.members))
	for a := range c.members {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetEmergency flips emergency mode; the flag propagates to members in
// advertisements (§V.A: the authority switches an area into emergency
// mode).
func (c *Controller) SetEmergency(on bool) { c.emergency = on }

// Emergency reports the management-plane emergency flag.
func (c *Controller) Emergency() bool { return c.emergency }

// Snapshot returns the controller's current membership view — the §V.A
// "recover the snapshot of the topology" management operation.
func (c *Controller) Snapshot() map[vnet.Addr]Resources {
	out := make(map[vnet.Addr]Resources, len(c.members))
	for a, m := range c.members {
		out[a] = m.res
	}
	return out
}

func (c *Controller) tick() {
	if c.stopped {
		return
	}
	// Expire silent members and immediately reassign their outstanding
	// work — waiting out the generous per-task timeout would leave tasks
	// parked on a vanished vehicle for tens of seconds (§III.A waste).
	now := c.node.Kernel().Now()
	var expired []vnet.Addr
	for a, m := range c.members {
		if now-m.lastSeen > c.cfg.MemberTTL {
			expired = append(expired, a)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, a := range expired {
		delete(c.members, a)
	}
	for _, a := range expired {
		c.reassignOrphans(a)
	}
	if len(expired) > 0 {
		// Expired members may hold storage copies the service can no
		// longer reach: re-replicate from the survivors right away.
		c.repairStorage()
	}
	// (Re)designate the standby before advertising so the advertisement
	// carries the current designation.
	if c.cfg.Failover {
		c.refreshStandby(now)
	}
	c.advertise()
	if c.cfg.Failover && c.standby >= 0 && now-c.lastCkpt >= c.cfg.CheckpointPeriod {
		c.sendCheckpoint(now)
	}
}

// advertise broadcasts the controller's presence.
func (c *Controller) advertise() {
	adv := c.node.NewMessage(vnet.BroadcastAddr, kindAdv, 64, 1, advMsg{
		Controller: c.node.Addr(),
		Emergency:  c.emergency,
		Standby:    c.standby,
		Epoch:      c.epoch,
	})
	c.node.BroadcastLocal(adv)
}

// reassignOrphans moves every task actively assigned to the vanished
// member back into scheduling. Tasks waiting in the no-member retry loop
// are skipped (their pending After callback re-runs assign itself).
func (c *Controller) reassignOrphans(gone vnet.Addr) {
	// Dependable tasks: fail the vanished member's replicas and let the
	// vote (or a retry round) take it from there.
	var depIDs []TaskID
	for id, ts := range c.tasks {
		if ts.policy == nil {
			continue
		}
		for _, slot := range ts.replicas {
			if slot.assignee == gone && !slot.resolved() {
				depIDs = append(depIDs, id)
				break
			}
		}
	}
	sort.Slice(depIDs, func(i, j int) bool { return depIDs[i] < depIDs[j] })
	for _, id := range depIDs {
		if ts, live := c.tasks[id]; live {
			c.expireReplicas(ts, gone)
		}
	}

	var ids []TaskID
	for id, ts := range c.tasks {
		if ts.policy == nil && ts.assignee == gone && ts.timeout.Pending() {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ts := c.tasks[id]
		c.node.Kernel().Cancel(ts.timeout)
		// The member vanished silently: its partial work is lost.
		c.stats.WastedOps += ts.remainingOps
		c.cfg.Trace.Emit(c.node.Kernel().Now(), trace.CatCloud, int32(c.node.Addr()),
			"task %d orphaned by expired member %d, reassigning", id, gone)
		if ts.retries >= c.cfg.RetryLimit {
			c.finish(id, ts, false, ReasonRetriesExhausted)
			continue
		}
		ts.retries++
		c.stats.Retries.Inc()
		c.assign(ts)
	}
}

func (c *Controller) onJoin(msg vnet.Message, _ vnet.Addr) {
	if c.stopped {
		return
	}
	jm, ok := msg.Payload.(joinMsg)
	if !ok {
		return
	}
	if c.cfg.AcceptJoin != nil && !c.cfg.AcceptJoin(msg.Origin) {
		return
	}
	m, exists := c.members[msg.Origin]
	if !exists {
		m = &memberInfo{}
		c.members[msg.Origin] = m
		c.stats.JoinEvents.Inc()
	}
	m.res = jm.Resources
	m.edge = jm.Edge
	m.delay = jm.Delay
	m.lastSeen = c.node.Kernel().Now()
}

func (c *Controller) onLeave(msg vnet.Message, _ vnet.Addr) {
	if c.stopped {
		return
	}
	delete(c.members, msg.Origin)
	// A graceful leave is permanent departure: the leaver's storage goes
	// with it — forget its copies and repair from the survivors.
	c.forgetStorage(msg.Origin)
}

// Submit enters a task into the cloud on the controller's own account.
// done fires exactly once.
func (c *Controller) Submit(task Task, done func(TaskResult)) (TaskID, error) {
	return c.SubmitFor(c.node.Addr(), task, done)
}

// SubmitFor enters a task charged to the given client account (the
// incentive mechanism's payer when a ledger is configured).
func (c *Controller) SubmitFor(client vnet.Addr, task Task, done func(TaskResult)) (TaskID, error) {
	if c.stopped {
		return 0, fmt.Errorf("vcloud: controller stopped")
	}
	if err := task.Validate(); err != nil {
		return 0, err
	}
	// Lease expiry: an armed standby has not acknowledged a checkpoint
	// within FailoverTTL, so it may already have promoted on the far
	// side of a partition. Refuse new work rather than double-dispatch
	// it — safety over availability until the partition resolves.
	if c.leaseExpired(c.node.Kernel().Now()) {
		return 0, fmt.Errorf("vcloud: leadership lease expired (standby unreachable)")
	}
	c.nextID++
	task.ID = epochTaskID(c.epoch.Counter, c.nextID)
	ts := &taskState{
		task:         task,
		client:       client,
		remainingOps: task.Ops,
		submitted:    c.node.Kernel().Now(),
		done:         done,
		policy:       c.effectivePolicy(task),
	}
	c.tasks[task.ID] = ts
	c.stats.Submitted.Inc()
	// Deadline-aware fail-fast: a deadline no eligible member could meet
	// is rejected immediately instead of burning a doomed timeout. The
	// finish runs on the next kernel tick, not inside SubmitFor: callers
	// (the DAG engine included) record the returned TaskID to route the
	// outcome, so finishing before SubmitFor returns would strand it.
	if c.failFastDeadline(task) {
		id := task.ID
		c.node.Kernel().After(0, func() {
			if ts, live := c.tasks[id]; live {
				c.finish(id, ts, false, ReasonDeadline)
			}
		})
		return task.ID, nil
	}
	c.launch(ts)
	return task.ID, nil
}

// pickMember chooses a worker for ts: among fresh members with the
// needed sensor, prefer those whose estimated dwell covers the estimated
// completion time (runtime + queue) with margin; break ties by earliest
// completion. Returns false when no member exists at all.
func (c *Controller) pickMember(ts *taskState) (vnet.Addr, bool) {
	now := c.node.Kernel().Now()
	type cand struct {
		addr     vnet.Addr
		finish   float64 // seconds until it would finish this task
		hasDwell bool
	}
	var ok, short []cand
	for a, m := range c.members {
		if now-m.lastSeen > c.cfg.MemberTTL {
			continue
		}
		if m.res.CPU <= 0 || !m.res.HasSensor(ts.task.NeedsSensor) {
			continue
		}
		if a == ts.assignee && ts.attempt > 0 {
			// Don't immediately re-pick the worker that just failed or
			// handed the task back.
			continue
		}
		runtime := (m.queuedOps + ts.remainingOps) / m.res.CPU
		cd := cand{addr: a, finish: runtime + m.delay.Seconds()}
		if c.cfg.Dwell != nil && !m.edge {
			d := c.cfg.Dwell(a)
			cd.hasDwell = d >= runtime*c.cfg.DwellMargin
		} else {
			// Edge servers are fixed infrastructure: dwell always
			// suffices.
			cd.hasDwell = true
		}
		if cd.hasDwell {
			//vcloudlint:allow nomaporder pool order is immaterial: the best-pick below totally orders on (finish, addr)
			ok = append(ok, cd)
		} else {
			//vcloudlint:allow nomaporder pool order is immaterial: the best-pick below totally orders on (finish, addr)
			short = append(short, cd)
		}
	}
	pool := ok
	if len(pool) == 0 {
		pool = short // nobody qualifies on dwell: best effort
	}
	if len(pool) == 0 {
		return 0, false
	}
	best := pool[0]
	for _, cd := range pool[1:] {
		if cd.finish < best.finish || (cd.finish == best.finish && cd.addr < best.addr) {
			best = cd
		}
	}
	return best.addr, true
}

func (c *Controller) assign(ts *taskState) {
	addr, found := c.pickMember(ts)
	if !found {
		// No members: retry shortly rather than failing outright (the
		// cloud may still be forming).
		if ts.retries >= c.cfg.RetryLimit {
			c.finish(ts.task.ID, ts, false, ReasonNoEligibleMember)
			return
		}
		ts.retries++
		c.stats.Retries.Inc()
		ts.roundPending = true
		c.node.Kernel().After(time.Second, func() {
			ts.roundPending = false
			if _, live := c.tasks[ts.task.ID]; live && !c.stopped {
				c.assign(ts)
			}
		})
		return
	}
	ts.assignee = addr
	ts.attempt++
	c.cfg.Trace.Emit(c.node.Kernel().Now(), trace.CatCloud, int32(c.node.Addr()),
		"task %d assign -> %d (attempt %d, %.0f ops left)", ts.task.ID, addr, ts.attempt, ts.remainingOps)
	m := c.members[addr]
	m.queuedOps += ts.remainingOps
	c.stats.OpsDispatched += ts.remainingOps
	msg := c.node.NewMessage(addr, kindTask, 64+ts.task.InputBytes, 1, taskMsg{
		Task:         ts.task,
		RemainingOps: ts.remainingOps,
		Attempt:      ts.attempt,
		Replica:      -1,
		Epoch:        c.epoch,
	})
	c.node.SendTo(addr, msg)

	// Timeout: generous multiple of the expected completion time.
	expect := (m.queuedOps)/m.res.CPU + 2.0
	deadline := sim.Time(expect*3*float64(time.Second)) + 2*time.Second
	attempt := ts.attempt
	ts.timeout = c.node.Kernel().After(deadline, func() {
		cur, live := c.tasks[ts.task.ID]
		if !live || cur != ts || ts.attempt != attempt || c.stopped {
			return
		}
		// The assignment died silently (member left range, frames lost):
		// all remaining work must be redone — this is the waste the
		// paper's §III.A argument quantifies.
		c.stats.WastedOps += ts.remainingOps
		c.releaseQueue(ts)
		if ts.retries >= c.cfg.RetryLimit {
			c.finish(ts.task.ID, ts, false, ReasonRetriesExhausted)
			return
		}
		ts.retries++
		c.stats.Retries.Inc()
		c.assign(ts)
	})
}

// releaseQueue removes the task's load from its assignee's book-keeping.
func (c *Controller) releaseQueue(ts *taskState) {
	if m, ok := c.members[ts.assignee]; ok {
		m.queuedOps -= ts.remainingOps
		if m.queuedOps < 0 {
			m.queuedOps = 0
		}
	}
}

func (c *Controller) onResult(msg vnet.Message, _ vnet.Addr) {
	if c.stopped {
		return
	}
	rm, ok := msg.Payload.(resultMsg)
	if !ok {
		return
	}
	ts, live := c.tasks[rm.ID]
	if !live {
		return
	}
	if ts.policy != nil {
		c.onReplicaResult(ts, rm, msg.Origin)
		return
	}
	if rm.Attempt != ts.attempt || msg.Origin != ts.assignee {
		return // stale result from a superseded attempt
	}
	c.node.Kernel().Cancel(ts.timeout)
	c.releaseQueue(ts)
	ts.value = rm.Value
	ts.voters = []vnet.Addr{msg.Origin}
	if ts.task.Deadline > 0 && c.node.Kernel().Now() > ts.task.Deadline {
		c.finish(rm.ID, ts, false, ReasonDeadline)
		return
	}
	c.finish(rm.ID, ts, true, "")
}

func (c *Controller) onHandover(msg vnet.Message, _ vnet.Addr) {
	if c.stopped {
		return
	}
	hm, ok := msg.Payload.(handoverMsg)
	if !ok {
		return
	}
	ts, live := c.tasks[hm.ID]
	if !live {
		return
	}
	if ts.policy != nil {
		c.onReplicaHandover(ts, hm, msg.Origin)
		return
	}
	if hm.Attempt != ts.attempt || msg.Origin != ts.assignee {
		return
	}
	c.node.Kernel().Cancel(ts.timeout)
	c.releaseQueue(ts)
	ts.remainingOps = hm.RemainingOps
	ts.handovers++
	c.stats.Handovers.Inc()
	c.cfg.Trace.Emit(c.node.Kernel().Now(), trace.CatCloud, int32(c.node.Addr()),
		"task %d handover from %d (%.0f ops left)", hm.ID, msg.Origin, hm.RemainingOps)
	c.assign(ts)
}

func (c *Controller) finish(id TaskID, ts *taskState, ok bool, reason FailReason) {
	if _, live := c.tasks[id]; !live {
		// Tripwire for the "no task both completed and failed" invariant:
		// a second finish means two code paths both claimed the task.
		c.violations = append(c.violations, fmt.Sprintf("task %d finished twice (ok=%v reason=%q)", id, ok, reason))
		return
	}
	delete(c.tasks, id)
	now := c.node.Kernel().Now()
	c.cfg.Trace.Emit(now, trace.CatCloud, int32(c.node.Addr()),
		"task %d finish ok=%v reason=%q latency=%v", id, ok, reason, now-ts.submitted)
	replicas := len(ts.replicas)
	if ts.policy == nil && ts.attempt > 0 {
		replicas = 1
	}
	e := &parkedEntry{
		po: ParkedOutcome{
			Task:      ts.task,
			Client:    ts.client,
			OK:        ok,
			Reason:    reason,
			Value:     ts.value,
			Voters:    ts.voters,
			Retries:   ts.retries,
			Handovers: ts.handovers,
			Submitted: ts.submitted,
		},
		done:      ts.done,
		replicas:  replicas,
		assignee:  ts.assignee,
		hasPolicy: ts.policy != nil,
	}
	// Apply-after-ack (fenced failover only): while any standby holds an
	// unacknowledged checkpoint copy of our state, applying immediately
	// could duplicate the outcome — the standby might promote from a
	// checkpoint that still lists this task as in flight. Park the
	// outcome until the next checkpoint carrying it is acknowledged;
	// with no standby armed nobody can promote a stale copy, so apply
	// directly (likewise when stopping — the flush machinery is dead).
	if c.cfg.Fencing && c.cfg.Failover && !c.stopped && len(c.armed) > 0 {
		e.po.Seq = c.ckptSeq + 1
		c.parked = append(c.parked, e)
		c.cfg.Trace.Emit(now, trace.CatCloud, int32(c.node.Addr()),
			"task %d outcome parked until ckpt %d acked", id, e.po.Seq)
		return
	}
	c.applyEntry(e)
}

// PendingTasks returns how many tasks are in flight.
func (c *Controller) PendingTasks() int { return len(c.tasks) }
